open Pcc_sim
open Pcc_scenario

let run spec loss =
  let engine = Engine.create () in
  let rng = Rng.create 7 in
  let path =
    Path.build engine ~rng ~bandwidth:(Units.mbps 100.) ~rtt:0.03
      ~buffer:(Units.bdp_bytes ~rate:(Units.mbps 100.) ~rtt:0.03)
      ~loss ~rev_loss:loss
      ~flows:[ Path.flow spec ] ()
  in
  let f = (Path.flows path).(0) in
  Engine.run ~until:5. engine;
  let b0 = Path.goodput_bytes f in
  Engine.run ~until:65. engine;
  let b1 = Path.goodput_bytes f in
  Printf.printf "%8.2f" (float_of_int ((b1 - b0) * 8) /. 60. /. 1e6)

let () =
  Printf.printf "%-6s %8s %8s %8s %8s\n" "loss" "pcc" "cubic" "illinois" "newreno";
  List.iter
    (fun l ->
      Printf.printf "%-6.3f" l;
      run (Transport.pcc ()) l;
      run (Transport.tcp "cubic") l;
      run (Transport.tcp "illinois") l;
      run (Transport.tcp "newreno") l;
      print_newline ())
    [ 0.0; 0.001; 0.005; 0.01; 0.02; 0.03; 0.04; 0.05; 0.06 ]
