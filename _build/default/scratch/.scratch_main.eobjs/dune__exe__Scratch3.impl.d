scratch/scratch3.ml: Array Engine List Multihop Path Pcc_metrics Pcc_scenario Pcc_sim Printf Rng Transport Units
