scratch/scratch2.mli:
