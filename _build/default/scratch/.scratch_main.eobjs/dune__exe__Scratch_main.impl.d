scratch/scratch_main.ml: Array Engine List Path Pcc_scenario Pcc_sim Printf Rng Transport Units
