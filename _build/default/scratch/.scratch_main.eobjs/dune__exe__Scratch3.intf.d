scratch/scratch3.mli:
