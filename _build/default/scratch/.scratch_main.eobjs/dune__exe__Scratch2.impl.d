scratch/scratch2.ml: Array Engine Float List Path Pcc_net Pcc_scenario Pcc_sim Printf Rng Transport Units
