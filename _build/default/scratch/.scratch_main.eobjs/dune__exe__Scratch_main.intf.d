scratch/scratch_main.mli:
