open Pcc_sim
open Pcc_scenario
let () =
  let engine = Engine.create () in
  let rng = Rng.create 9 in
  let net =
    Multihop.build engine ~rng
      ~hops:[ Multihop.hop ~bandwidth:(Units.mbps 30.) ();
              Multihop.hop ~bandwidth:(Units.mbps 30.) () ]
      ~flows:
        [ Multihop.flow ~enter:0 ~exit:2 ~label:"long" (Transport.pcc ());
          Multihop.flow ~enter:0 ~exit:1 ~label:"hop0" (Transport.pcc ());
          Multihop.flow ~enter:1 ~exit:2 ~label:"hop1" (Transport.pcc ()) ]
      ()
  in
  let last = Array.make 3 0 in
  for i = 1 to 16 do
    Engine.run ~until:(float_of_int i *. 5.) engine;
    Printf.printf "t=%3d" (i*5);
    Array.iteri (fun j f ->
      let b = Multihop.goodput_bytes f in
      Printf.printf "  %s=%5.1f" f.Multihop.def.Multihop.label
        (float_of_int ((b - last.(j)) * 8) /. 5e6);
      last.(j) <- b) (Multihop.flows net);
    print_newline ()
  done;
  (* 16-flow fairness too *)
  let engine = Engine.create () in
  let rng = Rng.create 55 in
  let bandwidth = Units.mbps 80. in
  let path =
    Path.build engine ~rng ~bandwidth ~rtt:0.02
      ~buffer:(Units.bdp_bytes ~rate:bandwidth ~rtt:0.02)
      ~flows:(List.init 16 (fun _ -> Path.flow (Transport.pcc ())))
      ()
  in
  Engine.run ~until:60. engine;
  let fs = Path.flows path in
  let b0 = Array.map Path.goodput_bytes fs in
  Engine.run ~until:140. engine;
  let shares = Array.mapi (fun i f -> float_of_int ((Path.goodput_bytes f - b0.(i)) * 8) /. 80. /. 1e6) fs in
  Array.iteri (fun i s -> Printf.printf "f%02d=%5.2f " i s) shares;
  Printf.printf "\ntotal=%.1f jain=%.3f min=%.2f\n"
    (Array.fold_left (+.) 0. shares) (Pcc_metrics.Stats.jain_index shares)
    (Pcc_metrics.Stats.minimum shares)
