open Pcc_sim
open Pcc_scenario

let () =
  (* Two PCC flows, staggered start *)
  let engine = Engine.create () in
  let rng = Rng.create 5 in
  let path =
    Path.build engine ~rng ~bandwidth:(Units.mbps 100.) ~rtt:0.03
      ~buffer:(Units.bdp_bytes ~rate:(Units.mbps 100.) ~rtt:0.03)
      ~flows:
        [ Path.flow (Transport.pcc ());
          Path.flow ~start_at:20. (Transport.pcc ()) ]
      ()
  in
  let f = Path.flows path in
  let last = Array.make 2 0 in
  for i = 1 to 40 do
    Engine.run ~until:(float_of_int i *. 5.) engine;
    Printf.printf "t=%3ds" (i * 5);
    Array.iteri
      (fun j fl ->
        let b = Path.goodput_bytes fl in
        Printf.printf "  f%d=%6.2f" j (float_of_int ((b - last.(j)) * 8) /. 5e6);
        last.(j) <- b)
      f;
    print_newline ()
  done;
  (* Incast: 20 senders, 1 Gbps, 100us RTT, 64KB buffer, 256KB blocks *)
  let engine = Engine.create () in
  let rng = Rng.create 5 in
  let mk spec n =
    let path =
      Path.build engine ~rng ~bandwidth:(Units.gbps 1.) ~rtt:0.0001
        ~buffer:64000
        ~flows:
          (List.init n (fun _ -> Path.flow ~size:(256*1024) spec))
        ()
    in
    path
  in
  let path = mk (Transport.pcc ()) 20 in
  Engine.run ~until:3.0 engine;
  let done_ = Array.fold_left (fun acc f -> if f.Path.sender.Pcc_net.Sender.is_complete () then acc+1 else acc) 0 (Path.flows path) in
  let fcts = Array.to_list (Path.flows path) |> List.filter_map (fun f -> f.Path.fct) in
  let worst = List.fold_left Float.max 0. fcts in
  Printf.printf "incast PCC: %d/20 done, worst fct=%.3fs goodput=%.1f Mbps\n" done_ worst
    (float_of_int (20*256*1024*8) /. worst /. 1e6);
  let engine2 = Engine.create () in
  let rng2 = Rng.create 5 in
  let path2 =
    Path.build engine2 ~rng:rng2 ~bandwidth:(Units.gbps 1.) ~rtt:0.0001
      ~buffer:64000
      ~flows:(List.init 20 (fun _ -> Path.flow ~size:(256*1024) (Transport.tcp "newreno")))
      ()
  in
  Engine.run ~until:3.0 engine2;
  let done2 = Array.fold_left (fun acc f -> if f.Path.sender.Pcc_net.Sender.is_complete () then acc+1 else acc) 0 (Path.flows path2) in
  let fcts2 = Array.to_list (Path.flows path2) |> List.filter_map (fun f -> f.Path.fct) in
  let worst2 = List.fold_left Float.max 0. fcts2 in
  Printf.printf "incast TCP: %d/20 done, worst fct=%.3fs goodput=%.1f Mbps\n" done2 worst2
    (float_of_int (20*256*1024*8) /. worst2 /. 1e6)
