(* Reproduction harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index), plus bechamel
   micro-benchmarks of the simulator's hot paths.

   Usage:
     dune exec bench/main.exe                 -- all experiments, default scale
     dune exec bench/main.exe -- --scale 1.0  -- paper-length runs
     dune exec bench/main.exe -- --only fig7,fig9
     dune exec bench/main.exe -- --micro      -- bechamel micro-benchmarks
     dune exec bench/main.exe -- --list

   Set PCC_DUMP_DIR=<dir> to also write the fig11/fig12 time series as
   CSVs for external plotting.                                              *)

open Pcc_experiments

let experiments : (string * string * (scale:float -> seed:int -> unit)) list =
  [
    ( "game",
      "Theorems 1-2: game dynamics, equilibrium, naive-utility contrast",
      fun ~scale:_ ~seed -> Exp_game.print ~seed () );
    ( "fig5",
      "Fig. 4/5: large-scale Internet experiment (synthetic paths)",
      fun ~scale ~seed -> Exp_internet.print ~scale ~seed () );
    ( "table1",
      "Table 1: inter-data-center paths over reserved bandwidth",
      fun ~scale ~seed -> Exp_interdc.print ~scale ~seed () );
    ( "fig6",
      "Fig. 6: emulated satellite links",
      fun ~scale ~seed -> Exp_satellite.print ~scale ~seed () );
    ( "fig7",
      "Fig. 7: random loss resilience",
      fun ~scale ~seed -> Exp_loss.print ~scale ~seed () );
    ( "fig8",
      "Fig. 8: RTT fairness",
      fun ~scale ~seed -> Exp_rtt_fairness.print ~scale ~seed () );
    ( "fig9",
      "Fig. 9: shallow bottleneck buffers",
      fun ~scale ~seed -> Exp_buffer.print ~scale ~seed () );
    ( "fig10",
      "Fig. 10: data-center incast",
      fun ~scale ~seed -> Exp_incast.print ~scale ~seed () );
    ( "fig11",
      "Fig. 11: rapidly changing network",
      fun ~scale ~seed ->
        let rows, series = Exp_dynamic.run ~scale ~seed () in
        Exp_common.print_table (Exp_dynamic.table rows);
        match Sys.getenv_opt "PCC_DUMP_DIR" with
        | None -> ()
        | Some dir ->
          let all =
            List.concat_map
              (fun (name, pts) ->
                [
                  ( name ^ "-rate",
                    Array.of_list
                      (List.map
                         (fun p ->
                           Exp_dynamic.(p.time, p.rate /. 1e6))
                         pts) );
                  ( name ^ "-optimal",
                    Array.of_list
                      (List.map
                         (fun p ->
                           Exp_dynamic.(p.time, p.optimal /. 1e6))
                         pts) );
                ])
              series
          in
          let path = Filename.concat dir "fig11_rate_tracking.csv" in
          Pcc_metrics.Series_io.write_multi_series ~path all;
          Printf.printf "[series written to %s]\n" path );
    ( "fig12",
      "Fig. 12/13: convergence and fairness of competing flows",
      fun ~scale ~seed ->
        let results = Exp_convergence.run ~scale ~seed () in
        Exp_common.print_table (Exp_convergence.table results);
        match Sys.getenv_opt "PCC_DUMP_DIR" with
        | None -> ()
        | Some dir ->
          List.iter
            (fun r ->
              let open Exp_convergence in
              let series =
                List.mapi
                  (fun i s ->
                    ( Printf.sprintf "flow%d" (i + 1),
                      Array.map (fun (t, v) -> (t, v /. 1e6)) s ))
                  r.series
              in
              let path =
                Filename.concat dir
                  (Printf.sprintf "fig12_%s_rates.csv" r.protocol)
              in
              Pcc_metrics.Series_io.write_multi_series ~path series;
              Printf.printf "[series written to %s]\n" path)
            results );
    ( "fig14",
      "Fig. 14: TCP friendliness vs parallel-TCP selfishness",
      fun ~scale ~seed -> Exp_friendliness.print ~scale ~seed () );
    ( "fig15",
      "Fig. 15: short-flow completion times",
      fun ~scale ~seed -> Exp_fct.print ~scale ~seed () );
    ( "fig16",
      "Fig. 16: stability vs reactiveness trade-off",
      fun ~scale ~seed -> Exp_tradeoff.print ~scale ~seed () );
    ( "fig17",
      "Fig. 17: power under FQ with CoDel vs bufferbloat",
      fun ~scale ~seed -> Exp_power.print ~scale ~seed () );
    ( "highloss",
      "Sec. 4.4.2: loss-resilient utility under 10-50% loss",
      fun ~scale ~seed -> Exp_high_loss.print ~scale ~seed () );
    ( "ablation",
      "Ablations: confidence-bound loss estimate, MI sizing",
      fun ~scale ~seed -> Exp_ablation.print ~scale ~seed () );
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the simulator's hot paths. *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let engine_bench () =
    (* Schedule-and-drain a small event cascade. *)
    let engine = Pcc_sim.Engine.create () in
    let n = ref 0 in
    for i = 1 to 100 do
      ignore
        (Pcc_sim.Engine.schedule engine
           ~at:(float_of_int i *. 1e-3)
           (fun () -> incr n))
    done;
    Pcc_sim.Engine.run engine
  in
  let heap_bench () =
    let h = Pcc_sim.Event_heap.create () in
    for i = 0 to 99 do
      ignore (Pcc_sim.Event_heap.push h ~time:(float_of_int (i * 7919 mod 100)) i)
    done;
    while Pcc_sim.Event_heap.pop h <> None do
      ()
    done
  in
  let rng = Pcc_sim.Rng.create 1 in
  let rng_bench () = ignore (Pcc_sim.Rng.float rng) in
  let utility = Pcc_core.Utility.safe () in
  let metrics =
    Pcc_core.Utility.
      {
        rate = 1e8;
        throughput = 9.5e7;
        loss = 0.01;
        samples = 500;
        avg_rtt = 0.03;
        prev_avg_rtt = 0.03;
        rtt_early = 0.03;
        rtt_late = 0.031;
      }
  in
  let utility_bench () = ignore (utility.Pcc_core.Utility.eval metrics) in
  let sim_second_bench () =
    (* One simulated second of a PCC flow on a 20 Mbps link. *)
    let engine = Pcc_sim.Engine.create () in
    let rng = Pcc_sim.Rng.create 11 in
    let _path =
      Pcc_scenario.Path.build engine ~rng
        ~bandwidth:(Pcc_sim.Units.mbps 20.) ~rtt:0.02
        ~buffer:(Pcc_sim.Units.kib 64)
        ~flows:[ Pcc_scenario.Path.flow (Pcc_scenario.Transport.pcc ()) ]
        ()
    in
    Pcc_sim.Engine.run ~until:1.0 engine
  in
  let tests =
    [
      Test.make ~name:"engine: 100-event cascade" (Staged.stage engine_bench);
      Test.make ~name:"event_heap: 100 push+pop" (Staged.stage heap_bench);
      Test.make ~name:"rng: one float" (Staged.stage rng_bench);
      Test.make ~name:"utility: one safe eval" (Staged.stage utility_bench);
      Test.make ~name:"pcc: 1 simulated second @20Mbps"
        (Staged.stage sim_second_bench);
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  Printf.printf "\n== micro-benchmarks (bechamel, monotonic clock) ==\n";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "%-36s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-36s (no estimate)\n" name)
        results)
    tests;
  flush stdout

(* ------------------------------------------------------------------ *)

let () =
  let scale = ref 0.3 in
  let seed = ref 42 in
  let only = ref [] in
  let run_micro = ref false in
  let list_only = ref false in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--only" :: v :: rest ->
      only := String.split_on_char ',' v;
      parse rest
    | "--micro" :: rest ->
      run_micro := true;
      parse rest
    | "--list" :: rest ->
      list_only := true;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "unknown argument %s\n\
         usage: main.exe [--scale S] [--seed N] [--only a,b] [--micro] [--list]\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list_only then begin
    List.iter
      (fun (name, descr, _) -> Printf.printf "%-10s %s\n" name descr)
      experiments;
    exit 0
  end;
  if !run_micro then micro ()
  else begin
    Printf.printf
      "PCC reproduction benchmarks (scale %.2f of paper durations, seed %d)\n"
      !scale !seed;
    let wanted (name, _, _) = !only = [] || List.mem name !only in
    List.iter
      (fun ((name, descr, f) as e) ->
        if wanted e then begin
          Printf.printf "\n### %s — %s\n%!" name descr;
          let t0 = Unix.gettimeofday () in
          f ~scale:!scale ~seed:!seed;
          Printf.printf "[%s took %.1fs wall]\n%!" name
            (Unix.gettimeofday () -. t0)
        end)
      experiments
  end
