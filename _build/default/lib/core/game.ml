let loss ~c x =
  if c <= 0. then invalid_arg "Game.loss: capacity must be positive";
  let total = Array.fold_left ( +. ) 0. x in
  if total <= c then 0. else 1. -. (c /. total)

let default_alpha n = Float.max 100. (2.2 *. float_of_int (n - 1))

let sigmoid alpha y =
  let z = alpha *. y in
  if z > 700. then 0. else if z < -700. then 1. else 1. /. (1. +. exp z)

let throughput ~c x i =
  let l = loss ~c x in
  x.(i) *. (1. -. l)

let utility ?alpha ~c x i =
  let alpha =
    match alpha with Some a -> a | None -> default_alpha (Array.length x)
  in
  let l = loss ~c x in
  (x.(i) *. (1. -. l) *. sigmoid alpha (l -. 0.05)) -. (x.(i) *. l)

(* Generic synchronous round for an arbitrary utility field. *)
let step_with ~u ?(eps = 0.01) x =
  let n = Array.length x in
  let probe i r =
    let saved = x.(i) in
    x.(i) <- r;
    let v = u x i in
    x.(i) <- saved;
    v
  in
  let next = Array.make n 0. in
  for i = 0 to n - 1 do
    let up = probe i (x.(i) *. (1. +. eps)) in
    let down = probe i (x.(i) *. (1. -. eps)) in
    next.(i) <- (if up > down then x.(i) *. (1. +. eps) else x.(i) *. (1. -. eps))
  done;
  next

let step ?alpha ?(eps = 0.01) ~c x =
  step_with ~u:(fun x i -> utility ?alpha ~c x i) ~eps x

let run_with ~u ?(eps = 0.01) ?(max_steps = 10_000) x0 =
  (* At the equilibrium the multiplicative dynamics settle into a ±ε
     limit cycle (Theorem 2's (x̂(1−ε)², x̂(1+ε)²) band), so convergence
     is detected against the state two rounds ago. *)
  let x = Array.copy x0 in
  let prev2 = Array.copy x0 in
  let steps = ref 0 in
  let cycling = ref false in
  while (not !cycling) && !steps < max_steps do
    let x' = step_with ~u ~eps x in
    if !steps > 0 then begin
      cycling := true;
      Array.iteri
        (fun i v ->
          if Float.abs (v -. prev2.(i)) > eps *. 1e-3 *. Float.abs v then
            cycling := false)
        x'
    end;
    Array.blit x 0 prev2 0 (Array.length x);
    Array.blit x' 0 x 0 (Array.length x);
    incr steps
  done;
  (x, !steps)

let run ?alpha ?(eps = 0.01) ?(max_steps = 10_000) ~c x0 =
  run_with ~u:(fun x i -> utility ?alpha ~c x i) ~eps ~max_steps x0

let equilibrium_rate ?alpha ~n ~c () =
  let alpha = match alpha with Some a -> a | None -> default_alpha n in
  (* At the symmetric state x̂ = s/n, the dynamics are stationary where the
     marginal utility of sender i w.r.t. its own rate crosses zero. Scan
     total traffic s over Theorem 1's bracket (C, 20C/19). *)
  let eps = 1e-4 in
  let gradient s =
    let x = Array.make n (s /. float_of_int n) in
    let i = 0 in
    let xi = x.(i) in
    let x_up = Array.copy x and x_dn = Array.copy x in
    x_up.(i) <- xi *. (1. +. eps);
    x_dn.(i) <- xi *. (1. -. eps);
    utility ~alpha ~c x_up i -. utility ~alpha ~c x_dn i
  in
  let lo = ref (c *. 1.0000001) and hi = ref (c *. 20. /. 19.) in
  (* The gradient is positive just above C (loss ~ 0, pushing up pays) and
     negative at 20C/19 (sigmoid cliff); bisect the crossing. *)
  for _ = 1 to 80 do
    let mid = (!lo +. !hi) /. 2. in
    if gradient mid > 0. then lo := mid else hi := mid
  done;
  (!lo +. !hi) /. 2. /. float_of_int n

let converged_fairly ?(tol = 0.1) x =
  let n = Array.length x in
  if n = 0 then true
  else begin
    let mean = Array.fold_left ( +. ) 0. x /. float_of_int n in
    Array.for_all (fun v -> Float.abs (v -. mean) <= tol *. mean) x
  end
