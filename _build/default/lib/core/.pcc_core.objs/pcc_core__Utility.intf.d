lib/core/utility.mli:
