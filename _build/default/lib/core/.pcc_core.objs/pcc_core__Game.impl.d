lib/core/game.ml: Array Float
