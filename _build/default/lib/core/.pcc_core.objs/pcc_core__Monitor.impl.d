lib/core/monitor.ml: Engine Float Hashtbl List Pcc_sim Rng Units Utility
