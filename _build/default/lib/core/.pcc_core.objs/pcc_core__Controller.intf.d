lib/core/controller.mli: Monitor Pcc_sim
