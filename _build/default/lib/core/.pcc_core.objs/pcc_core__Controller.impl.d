lib/core/controller.ml: Array Float Hashtbl Monitor Pcc_sim Rng Units
