lib/core/utility.ml: Float
