lib/core/pcc_sender.ml: Controller Engine Float List Monitor Packet Pcc_net Pcc_sim Rate_pacer Rng Scoreboard Sender Units Utility
