lib/core/monitor.mli: Pcc_sim Utility
