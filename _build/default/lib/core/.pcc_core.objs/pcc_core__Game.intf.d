lib/core/game.mli:
