lib/core/pcc_sender.mli: Controller Monitor Pcc_net Pcc_sim Utility
