type metrics = {
  rate : float;
  throughput : float;
  loss : float;
  samples : int;
  avg_rtt : float;
  prev_avg_rtt : float;
  rtt_early : float;
  rtt_late : float;
}

(* Lower confidence bound of the per-MI loss rate: with only a handful of
   packets in an interval, one unlucky drop reads as 10% loss and would
   spuriously trip the sigmoid cut-off. One standard error of slack makes
   the cut-off react to evidence of congestion rather than to noise, while
   converging to the raw rate as intervals grow. *)
let loss_lcb loss samples =
  if samples <= 0 then loss
  else begin
    let n = float_of_int samples in
    Float.max 0. (loss -. sqrt (loss *. (1. -. loss) /. n))
  end

type t = { name : string; eval : metrics -> float }

let mbps x = x /. 1e6

let sigmoid alpha y =
  (* Guard the exponential against overflow for large α·y. *)
  let z = alpha *. y in
  if z > 700. then 0. else if z < -700. then 1. else 1. /. (1. +. exp z)

let safe ?(alpha = 100.) ?(loss_threshold = 0.05) ?(conservative = true) () =
  {
    name = "safe";
    eval =
      (fun m ->
        let l_cut = if conservative then loss_lcb m.loss m.samples else m.loss in
        (mbps m.throughput *. sigmoid alpha (l_cut -. loss_threshold))
        -. (mbps m.rate *. m.loss));
  }

let loss_resilient () =
  {
    name = "loss-resilient";
    eval = (fun m -> mbps m.throughput *. (1. -. m.loss));
  }

let latency ?(alpha = 100.) ?(loss_threshold = 0.05) () =
  {
    name = "latency";
    eval =
      (fun m ->
        let rtt = Float.max m.avg_rtt 1e-6 in
        (* The paper's RTTn-1/RTTn factor rewards shrinking RTT. We
           estimate the same signal within the MI (early samples over
           late samples): it attributes queue growth to the rate that
           caused it, where the cross-MI ratio mixes adjacent trials. *)
        let early = Float.max m.rtt_early 1e-6 in
        let late = Float.max m.rtt_late 1e-6 in
        let l_cut = loss_lcb m.loss m.samples in
        ((mbps m.throughput
          *. sigmoid alpha (l_cut -. loss_threshold)
          *. (early /. late))
         -. (mbps m.rate *. m.loss))
        /. rtt);
  }

let simple () =
  {
    name = "simple";
    eval = (fun m -> mbps m.throughput -. (mbps m.rate *. m.loss));
  }

let vivace ?(exponent = 0.9) ?(latency_coeff = 900.) ?(loss_coeff = 11.35) ()
    =
  {
    name = "vivace";
    eval =
      (fun m ->
        let x = mbps m.rate in
        let dur = Float.max 1e-6 (0.5 *. (m.avg_rtt *. 2.2)) in
        (* RTT gradient in seconds/second from the within-MI trend. *)
        let drtt_dt = (m.rtt_late -. m.rtt_early) /. dur in
        (x ** exponent)
        -. (latency_coeff *. x *. Float.max 0. drtt_dt)
        -. (loss_coeff *. x *. m.loss));
  }

let custom ~name eval = { name; eval }
