(** The game-theoretic model of §2.2 (Theorems 1 and 2).

    [n] senders share a bottleneck of capacity [c]. Sender [i] with rate
    [xᵢ] experiences per-packet loss [L(x) = max(0, 1 − c/Σxⱼ)],
    throughput [Tᵢ = xᵢ(1 − L)] and utility
    [uᵢ = Tᵢ·Sigmoid_α(L − 0.05) − xᵢ·L].

    This module evaluates the utility field directly (no packet
    simulation) and runs the §2.2 synchronous dynamics — each sender
    compares [uᵢ(xᵢ(1+ε), x₋ᵢ)] against [uᵢ(xᵢ(1−ε), x₋ᵢ)] and moves
    multiplicatively toward the better side. It is both an analytical
    cross-check of the packet-level implementation and the fluid-model
    ablation of DESIGN.md. *)

val loss : c:float -> float array -> float
(** [loss ~c x] is [L(x)]. @raise Invalid_argument if [c <= 0]. *)

val throughput : c:float -> float array -> int -> float
(** Sender [i]'s goodput under global state [x]. *)

val utility : ?alpha:float -> c:float -> float array -> int -> float
(** Sender [i]'s §2.2 utility ([alpha] defaults to
    [max 100 (2.2(n−1))], Theorem 1's bound). *)

val step : ?alpha:float -> ?eps:float -> c:float -> float array -> float array
(** One synchronous round of the §2.2 dynamics ([eps] defaults to
    0.01). *)

val step_with :
  u:(float array -> int -> float) -> ?eps:float -> float array -> float array
(** {!step} for an arbitrary utility field [u x i] — used to study
    alternate utilities (e.g. the naive [T − x·L] whose equilibrium loss
    degrades with sender count, motivating the sigmoid cut-off). *)

val run_with :
  u:(float array -> int -> float) ->
  ?eps:float ->
  ?max_steps:int ->
  float array ->
  float array * int
(** {!run} for an arbitrary utility field. *)

val run :
  ?alpha:float ->
  ?eps:float ->
  ?max_steps:int ->
  c:float ->
  float array ->
  float array * int
(** Iterate {!step} until no sender moved by more than ε/4 of its rate or
    [max_steps] (default 10_000) rounds elapse. Returns the final state
    and the number of rounds used. *)

val equilibrium_rate : ?alpha:float -> n:int -> c:float -> unit -> float
(** The symmetric stable rate x̂ with [n] senders: the fixed point where
    a sender is indifferent between (1+ε)x̂ and (1−ε)x̂, found by
    bisection. Theorem 1 locates total traffic in (C, 20C/19); the
    bisection scans that bracket. *)

val converged_fairly : ?tol:float -> float array -> bool
(** Whether all rates are within [tol] (default 10%) of their mean —
    the fairness check for Theorem 1/2 experiments. *)
