(** Utility functions: the objective a PCC sender optimizes.

    A monitor interval's packet-level events are aggregated into
    {!metrics}; a utility function collapses them into one number. PCC's
    control loop only ever compares utilities of different rates, so
    utilities are scale-free — we evaluate rates in Mbps to keep the
    magnitudes readable.

    The paper proves convergence for {!safe} and demonstrates two
    alternates enabled by fair queuing: {!loss_resilient} (§4.4.2) and
    {!latency} (§4.4.1). Applications can also supply their own. *)

type metrics = {
  rate : float;  (** The sending rate tested during the MI, bits/s. *)
  throughput : float;  (** Acknowledged goodput over the MI, bits/s. *)
  loss : float;  (** Fraction of the MI's packets lost, in [0,1]. *)
  samples : int;  (** Packets sent in the MI (the loss sample size). *)
  avg_rtt : float;  (** Mean RTT of the MI's acknowledged packets, s. *)
  prev_avg_rtt : float;  (** Same, for the preceding MI. *)
  rtt_early : float;  (** Mean of the MI's first few RTT samples. *)
  rtt_late : float;  (** Mean of the MI's last few RTT samples. *)
}

type t = {
  name : string;
  eval : metrics -> float;  (** Higher is better. *)
}

val safe :
  ?alpha:float -> ?loss_threshold:float -> ?conservative:bool -> unit -> t
(** §2.2's provably-convergent default:
    [u = T·Sigmoid_α(L − 0.05) − x·L] with [Sigmoid_α(y) = 1/(1+e^{αy})].
    The sigmoid caps the equilibrium loss rate near [loss_threshold]
    (default 0.05); [alpha] defaults to 100, satisfying Theorem 1's
    [α ≥ max(2.2(n−1), 100)] for up to ~46 senders.

    With [conservative] (the default), the sigmoid's loss argument is the
    one-standard-error lower confidence bound of the measured loss rate,
    so a single unlucky drop in a 10-packet monitor interval does not
    read as a 10% loss rate and trip the cut-off — §2.1's noisy-decision
    problem. The [−x·L] term always uses the raw measurement, and the
    bound converges to it as intervals grow, so the equilibrium of
    Theorem 1 is unchanged. Pass [~conservative:false] for the paper's
    literal formula (the ablation benchmark compares both). *)

val loss_resilient : unit -> t
(** §4.4.2: [u = T·(1 − L)] — keeps pushing at its fair share under
    arbitrary random loss. Safe only behind per-flow fair queuing. *)

val latency : ?alpha:float -> ?loss_threshold:float -> unit -> t
(** §4.4.1's interactive-flow objective:
    [u = (T·Sigmoid_α(L−0.05)·(RTT_early/RTT_late) − x·L)/RTT_avg] —
    maximizes power (throughput/delay) and penalizes RTT growth. The
    paper writes the growth factor as RTTₙ₋₁/RTTₙ across MIs; we measure
    it within the MI (early/late samples), which attributes queue growth
    to the rate that caused it — see DESIGN.md. *)

val simple : unit -> t
(** The didactic starting point of §2.1, [u = T − x·L]; included for the
    ablation benchmark of the sigmoid cut-off (its equilibrium loss rate
    degrades as senders multiply). *)

val vivace :
  ?exponent:float -> ?latency_coeff:float -> ?loss_coeff:float -> unit -> t
(** The paper's "better learning algorithm" future-work direction, as
    later published in PCC Vivace (NSDI 2018):
    [u = x^t − b·x·(dRTT/dt)⁺ − c·x·L] with the defaults t=0.9, b=900,
    c=11.35 from that paper. The strictly concave rate term gives a
    well-defined gradient everywhere (no sigmoid cliff) and the RTT
    gradient term reacts before queues fill. Included as a
    forward-compatible objective; the reproduction benchmarks all use
    {!safe}. *)

val custom : name:string -> (metrics -> float) -> t
(** Escape hatch for application-defined objectives. *)
