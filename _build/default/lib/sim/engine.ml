type t = { mutable clock : float; q : (unit -> unit) Event_heap.t }

type timer = Event_heap.handle

let create ?(now = 0.) () = { clock = now; q = Event_heap.create () }

let now t = t.clock

let schedule t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %.9f is before now %.9f" at t.clock);
  Event_heap.push t.q ~time:at f

let schedule_in t ~after f =
  let after = if after < 0. then 0. else after in
  Event_heap.push t.q ~time:(t.clock +. after) f

let cancel = Event_heap.cancel

let pending t = Event_heap.size t.q

let step t =
  match Event_heap.pop t.q with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    f ();
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
    let continue = ref true in
    while !continue do
      match Event_heap.peek_time t.q with
      | Some time when time <= limit -> ignore (step t)
      | Some _ | None ->
        if limit > t.clock then t.clock <- limit;
        continue := false
    done

let run_for t d = run ~until:(t.clock +. d) t
