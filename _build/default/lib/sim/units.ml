let mss = 1500
let ack_size = 40

let mbps x = x *. 1e6
let kbps x = x *. 1e3
let gbps x = x *. 1e9
let to_mbps bps = bps /. 1e6

let kib x = x * 1024
let mib x = x * 1024 * 1024

let ms x = x /. 1e3
let us x = x /. 1e6

let bytes_of_bits b = b /. 8.
let bits_of_bytes n = float_of_int n *. 8.

let transmission_time ~size ~rate =
  if rate <= 0. then invalid_arg "Units.transmission_time: rate <= 0";
  bits_of_bytes size /. rate

let packets_of_bytes n = (n + mss - 1) / mss

let bdp_bytes ~rate ~rtt =
  int_of_float (bytes_of_bits (rate *. rtt))
