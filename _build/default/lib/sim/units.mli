(** Unit conventions and conversions used throughout the simulator.

    The whole code base agrees on the following units:
    - time: seconds, as [float];
    - data sizes: bytes, as [int];
    - rates: bits per second, as [float].

    These helpers keep conversions explicit at module boundaries so that a
    rate in Mbps from an experiment description never silently mixes with a
    byte count from a queue. *)

val mss : int
(** Maximum segment size used by every sender, in bytes (Ethernet-style
    1500-byte frames, matching the paper's Emulab setup). *)

val ack_size : int
(** Size of an acknowledgment packet in bytes (TCP/IP header only). *)

val mbps : float -> float
(** [mbps x] is the rate [x] megabits per second in bits per second. *)

val kbps : float -> float
(** [kbps x] is the rate [x] kilobits per second in bits per second. *)

val gbps : float -> float
(** [gbps x] is the rate [x] gigabits per second in bits per second. *)

val to_mbps : float -> float
(** [to_mbps bps] converts a rate in bits per second back to Mbps, for
    reporting. *)

val kib : int -> int
(** [kib x] is [x] kibibytes in bytes. *)

val mib : int -> int
(** [mib x] is [x] mebibytes in bytes. *)

val ms : float -> float
(** [ms x] is [x] milliseconds in seconds. *)

val us : float -> float
(** [us x] is [x] microseconds in seconds. *)

val bytes_of_bits : float -> float
(** [bytes_of_bits b] converts a bit count to bytes. *)

val bits_of_bytes : int -> float
(** [bits_of_bytes n] converts a byte count to bits. *)

val transmission_time : size:int -> rate:float -> float
(** [transmission_time ~size ~rate] is the time in seconds needed to
    serialize [size] bytes onto a link of [rate] bits per second.
    @raise Invalid_argument if [rate <= 0]. *)

val packets_of_bytes : int -> int
(** [packets_of_bytes n] is the number of MSS-sized packets needed to carry
    [n] bytes (rounded up). *)

val bdp_bytes : rate:float -> rtt:float -> int
(** [bdp_bytes ~rate ~rtt] is the bandwidth-delay product in bytes of a path
    with bottleneck [rate] (bits per second) and round-trip time [rtt]. *)
