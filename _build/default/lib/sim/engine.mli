(** Discrete-event simulation engine.

    An engine owns a simulated clock and an event queue. Components schedule
    closures at absolute or relative times; {!run} executes them in
    timestamp order, advancing the clock. All simulator state changes happen
    inside event callbacks, so a single engine is single-threaded and fully
    deterministic. *)

type t
(** A simulation engine. *)

type timer
(** A cancellable handle on a scheduled event. *)

val create : ?now:float -> unit -> t
(** [create ()] is a fresh engine with the clock at [now] (default 0). *)

val now : t -> float
(** [now t] is the current simulated time in seconds. *)

val schedule : t -> at:float -> (unit -> unit) -> timer
(** [schedule t ~at f] runs [f] when the clock reaches [at].
    @raise Invalid_argument if [at] is in the past. *)

val schedule_in : t -> after:float -> (unit -> unit) -> timer
(** [schedule_in t ~after f] runs [f] [after] seconds from now. Negative
    delays are clamped to zero (the event runs after already-queued events
    at the current instant). *)

val cancel : timer -> unit
(** [cancel timer] prevents a pending event from firing. Cancelling an
    already-fired or already-cancelled timer is harmless. *)

val pending : t -> int
(** Number of events still queued. *)

val step : t -> bool
(** [step t] executes the next event, if any; returns [false] when the
    queue is empty. *)

val run : ?until:float -> t -> unit
(** [run t] executes events until the queue drains, or — if [until] is
    given — until the next event would fire strictly after [until], in
    which case the clock is left at [until]. *)

val run_for : t -> float -> unit
(** [run_for t d] is [run t ~until:(now t +. d)]. *)
