(** Binary min-heap of timestamped events.

    Keys are [(time, sequence)] pairs: ties on time break in insertion
    order, which keeps simultaneous events deterministic. Cancellation is
    lazy — a cancelled event stays in the heap until popped, which is O(1)
    per cancellation and fine for timer-heavy workloads such as TCP
    retransmission timers. *)

type 'a t
(** A heap carrying payloads of type ['a]. *)

type handle
(** A handle onto an inserted event, usable to cancel it. *)

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val is_empty : 'a t -> bool
(** Whether the heap holds no live (non-cancelled) events. *)

val size : 'a t -> int
(** Number of events currently stored. Cancelled events still buried in the
    middle of the heap are counted until they surface; the root is always
    purged, so [size t = 0] iff {!is_empty}. *)

val push : 'a t -> time:float -> 'a -> handle
(** [push t ~time v] inserts [v] at key [time] and returns a cancellation
    handle. *)

val pop : 'a t -> (float * 'a) option
(** [pop t] removes and returns the earliest live event, or [None] if the
    heap is empty. Cancelled entries are discarded transparently. *)

val peek_time : 'a t -> float option
(** [peek_time t] is the timestamp of the earliest live event, if any,
    without removing it. *)

val cancel : handle -> unit
(** [cancel h] marks the event behind [h] as dead; it will never be
    returned by {!pop}. Cancelling twice is harmless. *)

val cancelled : handle -> bool
(** Whether the handle has been cancelled. *)
