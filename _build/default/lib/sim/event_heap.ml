type handle = { mutable dead : bool }

type 'a entry = { time : float; seq : int; h : handle; v : 'a }

type 'a t = {
  mutable a : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { a = [||]; len = 0; next_seq = 0 }

let before x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

let grow t =
  let cap = Array.length t.a in
  if t.len >= cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let na =
      if cap = 0 then
        (* The placeholder cell is never read: indices >= len are unused
           and immediately overwritten on push. *)
        Array.make ncap { time = 0.; seq = 0; h = { dead = true }; v = Obj.magic 0 }
      else Array.make ncap t.a.(0)
    in
    Array.blit t.a 0 na 0 t.len;
    t.a <- na
  end

let swap t i j =
  let tmp = t.a.(i) in
  t.a.(i) <- t.a.(j);
  t.a.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.a.(i) t.a.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before t.a.(l) t.a.(!smallest) then smallest := l;
  if r < t.len && before t.a.(r) t.a.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time v =
  grow t;
  let h = { dead = false } in
  let e = { time; seq = t.next_seq; h; v } in
  t.next_seq <- t.next_seq + 1;
  t.a.(t.len) <- e;
  t.len <- t.len + 1;
  sift_up t (t.len - 1);
  h

let pop_root t =
  let e = t.a.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.a.(0) <- t.a.(t.len);
    sift_down t 0
  end;
  e

(* Discard cancelled entries sitting at the root, so that peeks and size
   queries reflect only live events. *)
let rec purge t =
  if t.len > 0 && t.a.(0).h.dead then begin
    ignore (pop_root t);
    purge t
  end

let rec pop t =
  purge t;
  if t.len = 0 then None
  else begin
    let e = pop_root t in
    if e.h.dead then pop t else Some (e.time, e.v)
  end

let peek_time t =
  purge t;
  if t.len = 0 then None else Some t.a.(0).time

let is_empty t =
  purge t;
  t.len = 0

let size t =
  purge t;
  t.len

let cancel h = h.dead <- true
let cancelled h = h.dead
