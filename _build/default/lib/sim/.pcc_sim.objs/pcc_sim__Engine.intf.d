lib/sim/engine.mli:
