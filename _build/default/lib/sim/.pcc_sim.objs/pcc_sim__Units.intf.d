lib/sim/units.mli:
