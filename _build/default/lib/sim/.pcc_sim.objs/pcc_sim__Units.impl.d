lib/sim/units.ml:
