lib/sim/rng.mli:
