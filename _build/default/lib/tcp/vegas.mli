(** TCP Vegas (Brakmo & Peterson 1995): delay-based avoidance. Once per
    RTT it compares expected (cwnd/baseRTT) and actual (cwnd/RTT) rates
    and nudges the window to keep between α and β packets queued. *)

val make : ?alpha:float -> ?beta:float -> ?gamma:float -> unit -> Variant.t
(** Defaults α=2, β=4 (packets of self-inflicted queueing), γ=1 for the
    slow-start exit test. *)
