open Variant

let make () =
  (* Bandwidth estimate in packets/second, EWMA'd over ~RTT-length bins
     as in Westwood+ (robust to ack compression). *)
  let bwe = ref 0. in
  let bin_start = ref 0. in
  let bin_acked = ref 0 in
  let on_ack ctx ~newly_acked =
    let now = ctx.now () in
    if !bin_start = 0. then bin_start := now;
    bin_acked := !bin_acked + newly_acked;
    let bin = Float.max (ctx.srtt ()) 0.01 in
    if now -. !bin_start >= bin then begin
      let sample = float_of_int !bin_acked /. (now -. !bin_start) in
      bwe := if !bwe = 0. then sample else (0.9 *. !bwe) +. (0.1 *. sample);
      bin_start := now;
      bin_acked := 0
    end;
    reno_increase ctx ~newly_acked
  in
  let on_loss ctx =
    let target = !bwe *. ctx.min_rtt () in
    ctx.ssthresh <- Float.max min_cwnd target;
    ctx.cwnd <- Float.min ctx.cwnd ctx.ssthresh;
    clamp ctx
  in
  let on_timeout ctx =
    let target = !bwe *. ctx.min_rtt () in
    ctx.ssthresh <- Float.max min_cwnd target;
    clamp ctx
  in
  { name = "westwood"; on_ack; on_loss; on_timeout }
