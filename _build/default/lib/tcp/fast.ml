open Variant

let make ?(alpha = 20.) ?(gamma = 0.5) () =
  let next_update = ref 0. in
  let on_ack ctx ~newly_acked =
    ignore newly_acked;
    let now = ctx.now () in
    if now >= !next_update then begin
      next_update := now +. ctx.srtt ();
      let base = ctx.min_rtt () and rtt = Float.max (ctx.srtt ()) 1e-9 in
      let target = (base /. rtt *. ctx.cwnd) +. alpha in
      (* FAST caps the per-RTT increase at doubling. *)
      let target = Float.min target (2. *. ctx.cwnd) in
      ctx.cwnd <- ((1. -. gamma) *. ctx.cwnd) +. (gamma *. target);
      clamp ctx
    end
  in
  let on_loss ctx =
    ctx.ssthresh <- ctx.cwnd /. 2.;
    ctx.cwnd <- ctx.ssthresh;
    clamp ctx
  in
  { name = "fast"; on_ack; on_loss; on_timeout = clamp }
