(** TCP Illinois (Liu, Başar & Srikant 2008): a loss–delay hybrid. The
    additive-increase factor α shrinks and the multiplicative-decrease
    factor β grows as measured queueing delay rises. The paper's
    inter-data-center and lossy-link baseline — and its example of a
    sophisticated hardwired mapping that still collapses under random
    loss. *)

val make :
  ?alpha_min:float ->
  ?alpha_max:float ->
  ?beta_min:float ->
  ?beta_max:float ->
  unit ->
  Variant.t
(** Defaults from the Illinois paper: α ∈ [0.3, 10], β ∈ [0.125, 0.5]. *)
