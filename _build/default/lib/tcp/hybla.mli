(** TCP Hybla (Caini & Firrincieli 2004): normalizes window growth by
    ρ = RTT/RTT₀ so long-RTT (satellite) connections grow as fast as a
    reference 25 ms connection — the paper's satellite baseline. *)

val make : ?rtt0:float -> unit -> Variant.t
(** [rtt0] is the reference RTT in seconds (default 0.025). *)
