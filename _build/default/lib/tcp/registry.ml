let table : (string * (unit -> Variant.t)) list =
  [
    ("newreno", Newreno.make);
    ("cubic", fun () -> Cubic.make ());
    ("hybla", fun () -> Hybla.make ());
    ("illinois", fun () -> Illinois.make ());
    ("vegas", fun () -> Vegas.make ());
    ("bic", fun () -> Bic.make ());
    ("westwood", Westwood.make);
    ("fast", fun () -> Fast.make ());
    ("highspeed", Highspeed.make);
  ]

let variants = List.map fst table

let variant name =
  match List.assoc_opt name table with
  | Some make -> make ()
  | None ->
    invalid_arg
      (Printf.sprintf "Registry.variant: unknown TCP variant %S (know: %s)"
         name
         (String.concat ", " variants))

let tcp engine ?(pacing = false) ?min_rto ?size ?on_complete ?rtt_hint ~name
    ~out () =
  let cfg = Tcp_sender.default_config (variant name) in
  let cfg =
    {
      cfg with
      pacing;
      min_rto = (match min_rto with Some v -> v | None -> cfg.min_rto);
      initial_rtt =
        (match rtt_hint with Some v -> v | None -> cfg.initial_rtt);
    }
  in
  let t = Tcp_sender.create engine cfg ?size ?on_complete ~out () in
  Tcp_sender.sender t
