lib/tcp/cubic.ml: Float Variant
