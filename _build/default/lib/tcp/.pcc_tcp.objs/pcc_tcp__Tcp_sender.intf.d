lib/tcp/tcp_sender.mli: Pcc_net Pcc_sim Variant
