lib/tcp/illinois.mli: Variant
