lib/tcp/highspeed.ml: Float Variant
