lib/tcp/hybla.mli: Variant
