lib/tcp/vegas.ml: Float Variant
