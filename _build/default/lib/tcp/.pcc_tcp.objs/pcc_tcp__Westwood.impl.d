lib/tcp/westwood.ml: Float Variant
