lib/tcp/registry.mli: Pcc_net Pcc_sim Variant
