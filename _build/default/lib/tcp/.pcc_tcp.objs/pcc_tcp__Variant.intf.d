lib/tcp/variant.mli:
