lib/tcp/hybla.ml: Float Variant
