lib/tcp/highspeed.mli: Variant
