lib/tcp/cubic.mli: Variant
