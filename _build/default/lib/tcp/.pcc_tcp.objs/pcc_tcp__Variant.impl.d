lib/tcp/variant.ml:
