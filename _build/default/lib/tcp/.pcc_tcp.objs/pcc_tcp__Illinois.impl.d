lib/tcp/illinois.ml: Float Variant
