lib/tcp/sabul.ml: Engine Float Packet Pcc_net Pcc_sim Rate_pacer Rng Scoreboard Sender Units
