lib/tcp/fast.mli: Variant
