lib/tcp/vegas.mli: Variant
