lib/tcp/pcp.mli: Pcc_net Pcc_sim
