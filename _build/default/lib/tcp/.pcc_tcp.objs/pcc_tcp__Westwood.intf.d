lib/tcp/westwood.mli: Variant
