lib/tcp/bic.ml: Float Variant
