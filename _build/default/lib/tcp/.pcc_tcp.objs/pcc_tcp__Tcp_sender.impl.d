lib/tcp/tcp_sender.ml: Engine Float Hashtbl Int List Option Packet Pcc_net Pcc_sim Queue Rtt_estimator Sender Set Units Variant
