lib/tcp/registry.ml: Bic Cubic Fast Highspeed Hybla Illinois List Newreno Printf String Tcp_sender Variant Vegas Westwood
