lib/tcp/pcp.ml: Engine Float List Packet Pcc_net Pcc_sim Rate_pacer Scoreboard Sender Units
