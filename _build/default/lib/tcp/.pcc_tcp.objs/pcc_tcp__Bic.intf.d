lib/tcp/bic.mli: Variant
