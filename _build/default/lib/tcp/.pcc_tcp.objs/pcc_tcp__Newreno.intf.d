lib/tcp/newreno.mli: Variant
