lib/tcp/fast.ml: Float Variant
