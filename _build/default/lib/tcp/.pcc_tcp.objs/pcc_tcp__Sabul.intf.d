lib/tcp/sabul.mli: Pcc_net Pcc_sim
