lib/tcp/newreno.ml: Variant
