type ctx = {
  mutable cwnd : float;
  mutable ssthresh : float;
  now : unit -> float;
  srtt : unit -> float;
  min_rtt : unit -> float;
  max_rtt : unit -> float;
  latest_rtt : unit -> float;
  mss : int;
}

type t = {
  name : string;
  on_ack : ctx -> newly_acked:int -> unit;
  on_loss : ctx -> unit;
  on_timeout : ctx -> unit;
}

let min_cwnd = 2.

let clamp ctx =
  if ctx.cwnd < min_cwnd then ctx.cwnd <- min_cwnd;
  if ctx.ssthresh < min_cwnd then ctx.ssthresh <- min_cwnd

let reno_increase ctx ~newly_acked =
  let n = float_of_int newly_acked in
  if ctx.cwnd < ctx.ssthresh then ctx.cwnd <- ctx.cwnd +. n
  else ctx.cwnd <- ctx.cwnd +. (n /. ctx.cwnd);
  clamp ctx
