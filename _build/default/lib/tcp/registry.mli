(** Name-indexed access to the TCP variants, for CLIs and experiment
    tables. *)

val variants : string list
(** All registered variant names, in a stable order. *)

val variant : string -> Variant.t
(** [variant name] is a fresh instance of the named variant.
    @raise Invalid_argument on an unknown name. *)

val tcp :
  Pcc_sim.Engine.t ->
  ?pacing:bool ->
  ?min_rto:float ->
  ?size:int ->
  ?on_complete:(float -> unit) ->
  ?rtt_hint:float ->
  name:string ->
  out:(Pcc_net.Packet.t -> unit) ->
  unit ->
  Pcc_net.Sender.t
(** Convenience: build a {!Tcp_sender} running the named variant with
    otherwise default configuration. *)
