(** BIC-TCP (Xu, Harfoush & Rhee 2004): binary-search window increase
    between the last window that caused loss and the last safe window,
    with max-probing beyond. CUBIC's predecessor; one of the six TCP
    points in the paper's stability–reactiveness trade-off figure. *)

val make :
  ?beta:float -> ?s_max:float -> ?s_min:float -> ?low_window:float ->
  unit -> Variant.t
(** Defaults from the BIC paper / Linux: β=0.8, S_max=32, S_min=0.01,
    low_window=14 (below which plain Reno behaviour is used). *)
