(** SABUL / UDT-style rate-based reliable transport (Gu & Grossman).

    The paper's "full set of boosting techniques" baseline: packet pacing,
    latency monitoring and loss tolerance — but still a hardwired mapping.
    Control law, following UDT's published algorithm: every SYN period
    (10 ms) without loss the rate increases by a step computed from the
    estimated spare capacity (decade-quantized, as in UDT); each new loss
    event (first NAK of a congestion epoch) multiplies the rate by 8/9.
    The capacity estimate comes from the peak ack arrival rate, standing
    in for UDT's receiver-side packet-pair estimate. The result is the
    aggressive overshoot / deep fallback cycle §4.1.1 describes. *)

val create :
  Pcc_sim.Engine.t ->
  ?init_rate:float ->
  ?max_rate:float ->
  ?rng:Pcc_sim.Rng.t ->
  ?size:int ->
  ?on_complete:(float -> unit) ->
  out:(Pcc_net.Packet.t -> unit) ->
  unit ->
  Pcc_net.Sender.t
(** [init_rate] defaults to 1 Mbps; [max_rate] caps the control (default
    10 Gbps). [size] bounds the transfer in bytes. *)
