(** TCP CUBIC (Ha, Rhee & Xu 2008): window growth follows a cubic of the
    time since the last loss, anchored at the pre-loss window, with the
    TCP-friendly region and fast convergence. Linux's default since
    2.6.19 and the paper's primary Internet baseline. *)

val make :
  ?c:float -> ?beta:float -> ?fast_convergence:bool -> unit -> Variant.t
(** Defaults match Linux: [c = 0.4], [beta = 0.7],
    [fast_convergence = true]. *)
