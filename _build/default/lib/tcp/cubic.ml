open Variant

type state = {
  mutable w_max : float;
  mutable epoch_start : float option;
  mutable k : float;
  mutable origin : float;
  mutable tcp_cwnd : float;  (* TCP-friendly region estimate *)
}

let make ?(c = 0.4) ?(beta = 0.7) ?(fast_convergence = true) () =
  let st =
    { w_max = 0.; epoch_start = None; k = 0.; origin = 0.; tcp_cwnd = 0. }
  in
  let cbrt x = if x < 0. then -.((-.x) ** (1. /. 3.)) else x ** (1. /. 3.) in
  let begin_epoch ctx =
    st.epoch_start <- Some (ctx.now ());
    if ctx.cwnd < st.w_max then begin
      st.k <- cbrt ((st.w_max -. ctx.cwnd) /. c);
      st.origin <- st.w_max
    end
    else begin
      st.k <- 0.;
      st.origin <- ctx.cwnd
    end;
    st.tcp_cwnd <- ctx.cwnd
  in
  let on_ack ctx ~newly_acked =
    if ctx.cwnd < ctx.ssthresh then begin
      ctx.cwnd <- ctx.cwnd +. float_of_int newly_acked;
      clamp ctx
    end
    else begin
      let epoch =
        match st.epoch_start with
        | Some e -> e
        | None ->
          begin_epoch ctx;
          ctx.now ()
      in
      let t = ctx.now () -. epoch in
      let rtt = ctx.srtt () in
      (* Window the cubic predicts one RTT in the future; aiming there
         yields the standard per-ack increment. *)
      let target =
        st.origin +. (c *. (((t +. rtt -. st.k) ** 3.)))
      in
      let n = float_of_int newly_acked in
      (* TCP-friendly region: emulate Reno's average rate. *)
      st.tcp_cwnd <-
        st.tcp_cwnd
        +. (3. *. (1. -. beta) /. (1. +. beta) *. n /. ctx.cwnd);
      let target = Float.max target st.tcp_cwnd in
      if target > ctx.cwnd then
        ctx.cwnd <- ctx.cwnd +. ((target -. ctx.cwnd) /. ctx.cwnd *. n)
      else ctx.cwnd <- ctx.cwnd +. (0.01 *. n /. ctx.cwnd);
      clamp ctx
    end
  in
  let on_loss ctx =
    st.epoch_start <- None;
    if fast_convergence && ctx.cwnd < st.w_max then
      st.w_max <- ctx.cwnd *. (2. -. beta) /. 2.
    else st.w_max <- ctx.cwnd;
    ctx.ssthresh <- ctx.cwnd *. beta;
    ctx.cwnd <- ctx.ssthresh;
    clamp ctx
  in
  let on_timeout ctx =
    st.epoch_start <- None;
    st.w_max <- 0.;
    clamp ctx
  in
  { name = "cubic"; on_ack; on_loss; on_timeout }
