open Variant

let make ?(rtt0 = 0.025) () =
  let rho ctx = Float.max 1. (ctx.srtt () /. rtt0) in
  let on_ack ctx ~newly_acked =
    let r = rho ctx in
    let n = float_of_int newly_acked in
    if ctx.cwnd < ctx.ssthresh then begin
      (* Limited slow start: the kernel bounds the per-ack jump; without a
         bound ρ = 32 (800 ms satellite RTT) would inflate cwnd by 2^32. *)
      let inc = Float.min ((2. ** Float.min r 6.) -. 1.) 32. in
      ctx.cwnd <- ctx.cwnd +. (inc *. n)
    end
    else ctx.cwnd <- ctx.cwnd +. (r *. r *. n /. ctx.cwnd);
    clamp ctx
  in
  let on_loss ctx =
    ctx.ssthresh <- ctx.cwnd /. 2.;
    ctx.cwnd <- ctx.ssthresh;
    clamp ctx
  in
  { name = "hybla"; on_ack; on_loss; on_timeout = clamp }
