(** PCP-style bandwidth-probing transport (Anderson et al., NSDI 2006).

    Emulates fair-queuing behaviour from the edge: the sender keeps a base
    rate it believes is safe and periodically *probes* a higher rate with a
    short packet train. If the acknowledgment train preserves the send
    spacing (no queueing developed), the probe rate is adopted and the
    next target doubles; if dispersion grew, the target binary-searches
    downward. §5 of the PCC paper notes the embedded assumption — that
    ack spacing faithfully reflects bottleneck dispersion — breaks under
    latency jitter, making PCP underestimate; our links' jitter parameter
    reproduces exactly that failure. *)

val create :
  Pcc_sim.Engine.t ->
  ?init_rate:float ->
  ?max_rate:float ->
  ?train_len:int ->
  ?size:int ->
  ?on_complete:(float -> unit) ->
  out:(Pcc_net.Packet.t -> unit) ->
  unit ->
  Pcc_net.Sender.t
(** [init_rate] defaults to 1 Mbps (the paper's PCP configuration),
    [train_len] to 10 packets per probe. *)
