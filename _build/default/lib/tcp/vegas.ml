open Variant

let make ?(alpha = 2.) ?(beta = 4.) ?(gamma = 1.) () =
  let next_adjust = ref 0. in
  let ss_toggle = ref false in
  let diff ctx =
    let base = ctx.min_rtt () and rtt = Float.max (ctx.srtt ()) 1e-9 in
    ctx.cwnd *. (rtt -. base) /. rtt
  in
  let on_ack ctx ~newly_acked =
    ignore newly_acked;
    let now = ctx.now () in
    if now >= !next_adjust then begin
      next_adjust := now +. ctx.srtt ();
      let d = diff ctx in
      if ctx.cwnd < ctx.ssthresh then begin
        (* Slow start: double every other RTT; exit when queueing appears. *)
        if d > gamma then ctx.ssthresh <- ctx.cwnd
        else begin
          ss_toggle := not !ss_toggle;
          if !ss_toggle then ctx.cwnd <- ctx.cwnd *. 2.
        end
      end
      else if d < alpha then ctx.cwnd <- ctx.cwnd +. 1.
      else if d > beta then ctx.cwnd <- ctx.cwnd -. 1.;
      clamp ctx
    end
  in
  let on_loss ctx =
    ctx.ssthresh <- ctx.cwnd /. 2.;
    ctx.cwnd <- ctx.ssthresh;
    clamp ctx
  in
  { name = "vegas"; on_ack; on_loss; on_timeout = clamp }
