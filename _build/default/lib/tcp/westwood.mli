(** TCP Westwood+ (Mascolo et al. 2001): Reno growth, but on loss the
    window is set from an end-to-end bandwidth estimate (ack-rate EWMA)
    times the minimum RTT, instead of blind halving. Designed for wireless
    lossy links. *)

val make : unit -> Variant.t
