(** HighSpeed TCP (RFC 3649) — the high-BDP "patch" family the paper's
    introduction cites: above a window of 38 packets the AIMD parameters
    a(w) (additive step) and b(w) (backoff fraction) scale with the
    window so huge pipes refill in reasonable time; below it the
    behaviour is plain Reno. *)

val make : unit -> Variant.t
