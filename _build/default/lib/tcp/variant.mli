(** The hardwired-mapping interface of the TCP family.

    A variant is exactly what the paper criticizes: a fixed mapping from
    packet-level events (acks, loss, timeout) to control responses
    (congestion-window updates). The window engine ({!Tcp_sender}) owns
    transmission, SACK bookkeeping, recovery and timers; variants only
    update [cwnd] and [ssthresh] through this interface. *)

type ctx = {
  mutable cwnd : float;  (** Congestion window, in packets. *)
  mutable ssthresh : float;  (** Slow-start threshold, in packets. *)
  now : unit -> float;  (** Simulated clock. *)
  srtt : unit -> float;  (** Smoothed RTT (a default before samples). *)
  min_rtt : unit -> float;  (** Propagation-delay estimate. *)
  max_rtt : unit -> float;  (** Largest RTT seen (queueing bound). *)
  latest_rtt : unit -> float;  (** Most recent raw sample. *)
  mss : int;  (** Segment size in bytes. *)
}

type t = {
  name : string;
  on_ack : ctx -> newly_acked:int -> unit;
      (** Called once per arriving ack, with the number of packets newly
          acknowledged (cumulatively or selectively) by it. *)
  on_loss : ctx -> unit;
      (** Called once per loss event (entering fast recovery): perform the
          variant's multiplicative decrease. *)
  on_timeout : ctx -> unit;
      (** Called on retransmission timeout, after the engine has set
          [ssthresh <- max (inflight/2) 2] and [cwnd <- 1]; variants may
          override or record state (e.g. CUBIC epoch reset). *)
}

val min_cwnd : float
(** Floor applied to every cwnd update (2 packets). *)

val reno_increase : ctx -> newly_acked:int -> unit
(** The classic update shared by several variants: slow start below
    [ssthresh] (+1 per acked packet), else congestion avoidance
    (+[newly_acked]/cwnd). *)

val clamp : ctx -> unit
(** Enforce the [min_cwnd] floor and a sane ssthresh. *)
