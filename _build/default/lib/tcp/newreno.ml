open Variant

let make () =
  {
    name = "newreno";
    on_ack = reno_increase;
    on_loss =
      (fun ctx ->
        ctx.ssthresh <- ctx.cwnd /. 2.;
        ctx.cwnd <- ctx.ssthresh;
        clamp ctx);
    on_timeout = (fun ctx -> clamp ctx);
  }
