open Variant

let make ?(alpha_min = 0.3) ?(alpha_max = 10.) ?(beta_min = 0.125)
    ?(beta_max = 0.5) () =
  (* Average queueing delay over the last window of acks. *)
  let sum_rtt = ref 0. in
  let cnt_rtt = ref 0 in
  let avg_delay ctx =
    let avg = if !cnt_rtt = 0 then ctx.srtt () else !sum_rtt /. float_of_int !cnt_rtt in
    Float.max 0. (avg -. ctx.min_rtt ())
  in
  let max_delay ctx = Float.max 1e-6 (ctx.max_rtt () -. ctx.min_rtt ()) in
  let alpha ctx =
    let da = avg_delay ctx and dm = max_delay ctx in
    let d1 = 0.01 *. dm in
    if da <= d1 then alpha_max
    else begin
      (* α(da) = k1 / (k2 + da), fixed by α(d1)=α_max and α(dm)=α_min. *)
      let k1 = (dm -. d1) *. alpha_min *. alpha_max /. (alpha_max -. alpha_min) in
      let k2 = (k1 /. alpha_max) -. d1 in
      Float.max alpha_min (k1 /. (k2 +. da))
    end
  in
  let beta ctx =
    let da = avg_delay ctx and dm = max_delay ctx in
    let d2 = 0.1 *. dm and d3 = 0.8 *. dm in
    if da <= d2 then beta_min
    else if da >= d3 then beta_max
    else
      (* Linear interpolation between (d2, β_min) and (d3, β_max). *)
      beta_min +. ((beta_max -. beta_min) *. (da -. d2) /. (d3 -. d2))
  in
  let on_ack ctx ~newly_acked =
    sum_rtt := !sum_rtt +. ctx.latest_rtt ();
    incr cnt_rtt;
    if !cnt_rtt > int_of_float ctx.cwnd && !cnt_rtt > 8 then begin
      (* Roll the averaging window roughly once per RTT. *)
      sum_rtt := 0.;
      cnt_rtt := 0
    end;
    let n = float_of_int newly_acked in
    if ctx.cwnd < ctx.ssthresh then ctx.cwnd <- ctx.cwnd +. n
    else ctx.cwnd <- ctx.cwnd +. (alpha ctx *. n /. ctx.cwnd);
    clamp ctx
  in
  let on_loss ctx =
    let b = beta ctx in
    ctx.ssthresh <- ctx.cwnd *. (1. -. b);
    ctx.cwnd <- ctx.ssthresh;
    clamp ctx
  in
  { name = "illinois"; on_ack; on_loss; on_timeout = clamp }
