(** TCP New Reno: slow start, AIMD congestion avoidance (+1/cwnd per ack,
    halve on loss). The textbook baseline whose loss-halving assumption
    §2.1 of the paper dissects. *)

val make : unit -> Variant.t
