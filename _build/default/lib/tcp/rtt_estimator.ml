type t = {
  min_rto : float;
  max_rto : float;
  mutable srtt : float option;
  mutable rttvar : float;
  mutable latest : float option;
  mutable min_rtt : float option;
  mutable max_rtt : float option;
  mutable rto : float;
  mutable samples : int;
}

let create ?(min_rto = 0.2) ?(max_rto = 60.) ?(initial_rto = 1.) () =
  {
    min_rto;
    max_rto;
    srtt = None;
    rttvar = 0.;
    latest = None;
    min_rtt = None;
    max_rtt = None;
    rto = Float.max min_rto (Float.min max_rto initial_rto);
    samples = 0;
  }

let clamp t v = Float.max t.min_rto (Float.min t.max_rto v)

let recompute_rto t =
  match t.srtt with
  | None -> ()
  | Some srtt -> t.rto <- clamp t (srtt +. (4. *. t.rttvar))

let sample t rtt =
  if rtt <= 0. then invalid_arg "Rtt_estimator.sample: rtt must be positive";
  t.samples <- t.samples + 1;
  t.latest <- Some rtt;
  (match t.min_rtt with
  | None -> t.min_rtt <- Some rtt
  | Some m -> if rtt < m then t.min_rtt <- Some rtt);
  (match t.max_rtt with
  | None -> t.max_rtt <- Some rtt
  | Some m -> if rtt > m then t.max_rtt <- Some rtt);
  (match t.srtt with
  | None ->
    t.srtt <- Some rtt;
    t.rttvar <- rtt /. 2.
  | Some srtt ->
    let alpha = 1. /. 8. and beta = 1. /. 4. in
    t.rttvar <- ((1. -. beta) *. t.rttvar) +. (beta *. Float.abs (srtt -. rtt));
    t.srtt <- Some (((1. -. alpha) *. srtt) +. (alpha *. rtt)));
  recompute_rto t

let srtt t = t.srtt
let srtt_or t d = match t.srtt with Some v -> v | None -> d
let latest t = t.latest
let min_rtt t = t.min_rtt
let max_rtt t = t.max_rtt
let rto t = t.rto
let backoff t = t.rto <- Float.min t.max_rto (t.rto *. 2.)
let reset_backoff t = recompute_rto t
let samples t = t.samples
