open Variant

let make ?(beta = 0.8) ?(s_max = 32.) ?(s_min = 0.01) ?(low_window = 14.) () =
  let max_win = ref infinity in
  let min_win = ref 0. in
  let target ctx =
    if !max_win = infinity then ctx.cwnd +. s_max
    else (!max_win +. !min_win) /. 2.
  in
  let on_ack ctx ~newly_acked =
    let n = float_of_int newly_acked in
    if ctx.cwnd < ctx.ssthresh then ctx.cwnd <- ctx.cwnd +. n
    else if ctx.cwnd < low_window then ctx.cwnd <- ctx.cwnd +. (n /. ctx.cwnd)
    else begin
      let tgt = target ctx in
      let inc =
        if tgt > ctx.cwnd then Float.min (tgt -. ctx.cwnd) s_max
        else
          (* Max probing: past the previous maximum, accelerate slowly. *)
          Float.min s_max (Float.max s_min (ctx.cwnd -. !max_win))
      in
      let inc = Float.max s_min inc in
      ctx.cwnd <- ctx.cwnd +. (inc *. n /. ctx.cwnd);
      if ctx.cwnd >= tgt && tgt < !max_win then min_win := ctx.cwnd;
      if ctx.cwnd > !max_win && !max_win <> infinity then max_win := infinity
    end;
    clamp ctx
  in
  let on_loss ctx =
    if ctx.cwnd < !max_win then
      (* Fast convergence: release bandwidth for newer flows. *)
      max_win := ctx.cwnd *. (1. +. beta) /. 2.
    else max_win := ctx.cwnd;
    min_win := ctx.cwnd *. beta;
    ctx.ssthresh <- ctx.cwnd *. beta;
    ctx.cwnd <- ctx.ssthresh;
    clamp ctx
  in
  let on_timeout ctx =
    max_win := infinity;
    min_win := 0.;
    clamp ctx
  in
  { name = "bic"; on_ack; on_loss; on_timeout }
