(** FAST TCP (Wei, Jin, Low & Hegde 2006) — the §5 case study of a
    delay-based hardwired mapping.

    Once per RTT the window moves toward
    [w ← (1−γ)·w + γ·(baseRTT/RTT·w + α)], whose fixed point keeps α
    packets queued. §5 of the PCC paper notes the embedded assumptions:
    an accurate baseRTT estimate and a well-behaved queue. Under RTT
    variance, a mis-estimated baseRTT, or loss-based competitors, its
    performance degrades — all three are reproducible with this
    implementation (see the tests). *)

val make : ?alpha:float -> ?gamma:float -> unit -> Variant.t
(** [alpha] is the target queued packets (default 20, a mid value of the
    deployment guidance), [gamma] the update smoothing (default 0.5). *)
