(** The window-based TCP sending engine.

    Owns everything the paper calls TCP's architecture except the
    hardwired event→response mapping itself, which is supplied as a
    {!Variant.t}: transmission clocked by a congestion window, per-packet
    SACK scoreboard, fast retransmit after three selective acks above a
    hole, one window reduction per recovery episode, RTO with exponential
    backoff and a configurable floor, go-back-N after a timeout, and
    optional packet pacing (the "TCP Pacing" baseline of §4.1.6). *)

type config = {
  variant : Variant.t;
  pacing : bool;  (** Space packets at cwnd/srtt instead of ack bursts. *)
  init_cwnd : float;  (** Initial window in packets (default 2). *)
  min_rto : float;  (** RTO floor in seconds (default 0.2). *)
  max_cwnd : float;  (** Receive-window stand-in, in packets. *)
  dupthresh : int;  (** SACKs above a hole before it is declared lost. *)
  initial_rtt : float;  (** RTT guess before the first sample. *)
}

val default_config : Variant.t -> config
(** Linux-like defaults: no pacing, init cwnd 2, min RTO 200 ms,
    max cwnd 10⁶, dupthresh 3, initial RTT 50 ms. *)

type t

val create :
  Pcc_sim.Engine.t ->
  config ->
  ?size:int ->
  ?on_complete:(float -> unit) ->
  out:(Pcc_net.Packet.t -> unit) ->
  unit ->
  t
(** [create engine config ~out ()] is a TCP sender pushing packets into
    [out] (the forward path). [size] bounds the transfer in bytes;
    [on_complete] fires once when the last byte is cumulatively acked. *)

val sender : t -> Pcc_net.Sender.t
(** The uniform transport interface for the scenario harness. *)

(** {1 Introspection (tests, debugging)} *)

val cwnd : t -> float
val ssthresh : t -> float
val in_flight : t -> int
val in_recovery : t -> bool
val timeouts : t -> int
val fast_retransmits : t -> int
val srtt : t -> float option
