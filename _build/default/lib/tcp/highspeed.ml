open Variant

(* RFC 3649's response function, via the closed-form approximation used
   by the Linux implementation: for w > 38,
     b(w) = 0.1 + 0.4 * (log w - log 38) / (log 83000 - log 38)   (capped)
     a(w) = w^2 * p(w) * 2 * b(w) / (2 - b(w))
   with p(w) = 0.078 / w^1.2 (the HSTCP response curve). *)
let low_window = 38.

let b_of w =
  if w <= low_window then 0.5
  else begin
    let frac = (log w -. log low_window) /. (log 83000. -. log low_window) in
    Float.min 0.5 (Float.max 0.1 (0.5 -. (0.4 *. frac)))
  end

let a_of w =
  if w <= low_window then 1.
  else begin
    let p = 0.078 /. (w ** 1.2) in
    let b = b_of w in
    Float.max 1. (w *. w *. p *. 2. *. b /. (2. -. b))
  end

let make () =
  let on_ack ctx ~newly_acked =
    let n = float_of_int newly_acked in
    if ctx.cwnd < ctx.ssthresh then ctx.cwnd <- ctx.cwnd +. n
    else ctx.cwnd <- ctx.cwnd +. (a_of ctx.cwnd *. n /. ctx.cwnd);
    clamp ctx
  in
  let on_loss ctx =
    ctx.ssthresh <- ctx.cwnd *. (1. -. b_of ctx.cwnd);
    ctx.cwnd <- ctx.ssthresh;
    clamp ctx
  in
  { name = "highspeed"; on_ack; on_loss; on_timeout = clamp }
