(** RFC 6298 round-trip-time estimation.

    Maintains SRTT / RTTVAR and derives the retransmission timeout, with a
    configurable floor (Linux defaults to 200 ms — the floor is what makes
    data-center incast collapse so painful, so it is a first-class
    parameter here). Also tracks the minimum RTT seen, which several TCP
    variants (Vegas, Illinois, Westwood) and PCC's monitor need. *)

type t

val create : ?min_rto:float -> ?max_rto:float -> ?initial_rto:float -> unit -> t
(** Defaults: [min_rto] 0.2 s, [max_rto] 60 s, [initial_rto] 1 s. *)

val sample : t -> float -> unit
(** [sample t rtt] folds in a new measurement (Karn-filtered by the
    caller: never pass samples from retransmitted packets).
    @raise Invalid_argument if [rtt <= 0]. *)

val srtt : t -> float option
(** Smoothed RTT, if at least one sample was taken. *)

val srtt_or : t -> float -> float
(** [srtt_or t d] is the smoothed RTT or [d] before the first sample. *)

val latest : t -> float option
(** The most recent raw sample. *)

val min_rtt : t -> float option
(** Smallest sample observed (the propagation-delay estimate). *)

val max_rtt : t -> float option
(** Largest sample observed. *)

val rto : t -> float
(** Current retransmission timeout, clamped to [\[min_rto, max_rto\]]. *)

val backoff : t -> unit
(** Double the RTO (up to [max_rto]) after a timeout. *)

val reset_backoff : t -> unit
(** Recompute the RTO from SRTT/RTTVAR, forgetting exponential backoff;
    called when new acknowledgments arrive. *)

val samples : t -> int
(** Number of samples folded in so far. *)
