(** Periodic sampling of simulation counters into time series.

    A recorder polls a cumulative counter (typically a flow's acked
    bytes) every [interval] of simulated time; the difference between
    consecutive samples gives a windowed throughput series — the 1-second
    granularity rate plots of Figs. 11 and 12. *)

type t

val create :
  Pcc_sim.Engine.t -> ?interval:float -> (unit -> float) -> t
(** [create engine f] samples [f ()] every [interval] seconds (default
    1.0) starting one interval from now, until {!stop}. *)

val stop : t -> unit

val samples : t -> (float * float) array
(** Raw (time, value) samples so far. *)

val rates : t -> (float * float) array
(** Windowed derivative: [(tᵢ, (vᵢ − vᵢ₋₁)/interval)]. For a byte
    counter this is bytes/s; multiply by 8 for bits/s ({!rates_bps}). *)

val rates_bps : t -> (float * float) array
(** {!rates} scaled by 8 — throughput in bits/s from a byte counter. *)

val values_between : (float * float) array -> float -> float -> float array
(** [values_between series t0 t1] extracts the values with
    [t0 <= t < t1]. *)
