lib/metrics/series_io.mli:
