lib/metrics/series_io.ml: Array Fun List Printf String
