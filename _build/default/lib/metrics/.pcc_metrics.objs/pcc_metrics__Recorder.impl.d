lib/metrics/recorder.ml: Array Engine List Pcc_sim
