lib/metrics/recorder.mli: Pcc_sim
