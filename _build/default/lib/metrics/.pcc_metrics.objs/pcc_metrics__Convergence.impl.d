lib/metrics/convergence.ml: Array Float List Stats
