lib/metrics/convergence.mli:
