lib/metrics/stats.mli:
