(** Descriptive statistics over float samples. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val variance : float array -> float
(** Population variance; 0 for fewer than two samples. *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [0,100], linear interpolation between
    order statistics. @raise Invalid_argument on an empty array or
    out-of-range [p]. *)

val median : float array -> float
val minimum : float array -> float
val maximum : float array -> float

val cdf_points : float array -> (float * float) list
(** Sorted (value, cumulative fraction) pairs for CDF-style reporting. *)

val jain_index : float array -> float
(** Jain's fairness index [(Σx)²/(n·Σx²)]; 1 when all equal. Returns 1
    for an empty array. *)
