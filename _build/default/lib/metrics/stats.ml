let mean a =
  let n = Array.length a in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    Array.fold_left (fun acc v -> acc +. ((v -. m) ** 2.)) 0. a /. float_of_int n
  end

let stddev a = sqrt (variance a)

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median a = percentile a 50.

let minimum a =
  if Array.length a = 0 then invalid_arg "Stats.minimum: empty array";
  Array.fold_left Float.min a.(0) a

let maximum a =
  if Array.length a = 0 then invalid_arg "Stats.maximum: empty array";
  Array.fold_left Float.max a.(0) a

let cdf_points a =
  let n = Array.length a in
  if n = 0 then []
  else begin
    let sorted = Array.copy a in
    Array.sort compare sorted;
    List.init n (fun i ->
        (sorted.(i), float_of_int (i + 1) /. float_of_int n))
  end

let jain_index a =
  let n = Array.length a in
  if n = 0 then 1.
  else begin
    let s = Array.fold_left ( +. ) 0. a in
    let s2 = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. a in
    if s2 = 0. then 1. else s *. s /. (float_of_int n *. s2)
  end
