(** The forward-looking convergence-time metric of §4.2.2 and related
    stability measures for the trade-off experiment (Fig. 16). *)

val convergence_time :
  ?window:float ->
  ?tolerance:float ->
  ideal:float ->
  (float * float) array ->
  float option
(** [convergence_time ~ideal series] with [series] a (time, throughput)
    sequence at fixed spacing: the smallest sample time [t] such that
    every sample in [\[t, t + window)] (default 5 s) lies within
    [tolerance] (default 0.25, i.e. ±25%) of [ideal]. [None] if the flow
    never settles. *)

val stddev_after :
  from:float -> duration:float -> (float * float) array -> float
(** Standard deviation of the series values in [\[from, from+duration)]
    — the rate-variance axis of Fig. 16. *)

val jain_over_timescale :
  timescale:float -> (float * float) array list -> float
(** Mean Jain index across flows when each flow's series is re-averaged
    into [timescale]-second buckets (Fig. 13). Buckets start at the
    earliest sample time; incomplete trailing buckets are dropped. *)
