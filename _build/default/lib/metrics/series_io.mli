(** CSV export of time series, for plotting the figure-shaped results
    (Fig. 11's rate tracking, Fig. 12's per-flow rate evolution) with any
    external tool. *)

val write_csv :
  path:string -> header:string list -> float array list -> unit
(** [write_csv ~path ~header columns] writes aligned columns (one row per
    index, shorter columns padded with empty cells). [header] must have
    one label per column.
    @raise Invalid_argument if the header length mismatches. *)

val write_series :
  path:string -> name:string -> (float * float) array -> unit
(** [write_series ~path ~name s] writes a two-column [time,name] CSV. *)

val write_multi_series :
  path:string -> (string * (float * float) array) list -> unit
(** Merge several (time, value) series on their own rows:
    [series,time,value] long format — robust to unaligned sampling. *)
