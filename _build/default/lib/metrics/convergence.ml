let convergence_time ?(window = 5.) ?(tolerance = 0.25) ~ideal series =
  let n = Array.length series in
  let within v = Float.abs (v -. ideal) <= tolerance *. ideal in
  let rec search i =
    if i >= n then None
    else begin
      let t0, _ = series.(i) in
      (* Check every sample falling in [t0, t0 + window). *)
      let ok = ref true in
      let saw_end = ref false in
      let j = ref i in
      while !ok && !j < n do
        let tj, vj = series.(!j) in
        if tj >= t0 +. window then begin
          saw_end := true;
          j := n
        end
        else begin
          if not (within vj) then ok := false;
          incr j
        end
      done;
      (* A window that runs past the end of the series still counts if all
         its samples were good — the flow stayed converged to the end. *)
      ignore !saw_end;
      if !ok then Some t0 else search (i + 1)
    end
  in
  search 0

let stddev_after ~from ~duration series =
  let vals =
    Array.of_list
      (Array.to_list series
      |> List.filter_map (fun (t, v) ->
             if t >= from && t < from +. duration then Some v else None))
  in
  Stats.stddev vals

let jain_over_timescale ~timescale flows =
  match flows with
  | [] -> 1.
  | first :: _ ->
    if Array.length first = 0 then 1.
    else begin
      let t_start = fst first.(0) in
      let t_end =
        List.fold_left
          (fun acc s ->
            if Array.length s = 0 then acc
            else Float.min acc (fst s.(Array.length s - 1)))
          infinity flows
      in
      let nbuckets =
        int_of_float (Float.floor ((t_end -. t_start) /. timescale))
      in
      if nbuckets <= 0 then Stats.jain_index (Array.of_list (List.map (fun s -> Stats.mean (Array.map snd s)) flows))
      else begin
        let indices =
          List.init nbuckets (fun b ->
              let b0 = t_start +. (float_of_int b *. timescale) in
              let b1 = b0 +. timescale in
              let per_flow =
                List.map
                  (fun s ->
                    let vals =
                      Array.to_list s
                      |> List.filter_map (fun (t, v) ->
                             if t >= b0 && t < b1 then Some v else None)
                    in
                    match vals with
                    | [] -> 0.
                    | _ -> Stats.mean (Array.of_list vals))
                  flows
              in
              Stats.jain_index (Array.of_list per_flow))
        in
        Stats.mean (Array.of_list indices)
      end
    end
