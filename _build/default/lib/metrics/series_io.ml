let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let write_csv ~path ~header columns =
  if List.length header <> List.length columns then
    invalid_arg "Series_io.write_csv: header/column count mismatch";
  with_out path (fun oc ->
      output_string oc (String.concat "," header);
      output_char oc '\n';
      let rows =
        List.fold_left (fun acc c -> max acc (Array.length c)) 0 columns
      in
      for i = 0 to rows - 1 do
        let cells =
          List.map
            (fun c ->
              if i < Array.length c then Printf.sprintf "%.6g" c.(i) else "")
            columns
        in
        output_string oc (String.concat "," cells);
        output_char oc '\n'
      done)

let write_series ~path ~name s =
  with_out path (fun oc ->
      Printf.fprintf oc "time,%s\n" name;
      Array.iter (fun (t, v) -> Printf.fprintf oc "%.6g,%.6g\n" t v) s)

let write_multi_series ~path series =
  with_out path (fun oc ->
      output_string oc "series,time,value\n";
      List.iter
        (fun (name, s) ->
          Array.iter
            (fun (t, v) -> Printf.fprintf oc "%s,%.6g,%.6g\n" name t v)
            s)
        series)
