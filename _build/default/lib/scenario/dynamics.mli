(** The rapidly-changing-network driver of §4.1.7: every [period] the
    bottleneck's bandwidth, base RTT and loss rate are redrawn uniformly
    from the given ranges. Records the bandwidth (= optimal send rate)
    series for comparison with each protocol's rate tracking. *)

type t

val start :
  Pcc_sim.Engine.t ->
  rng:Pcc_sim.Rng.t ->
  path:Path.t ->
  ?period:float ->
  ?bw_range:float * float ->
  ?rtt_range:float * float ->
  ?loss_range:float * float ->
  unit ->
  t
(** Paper parameters by default: period 5 s, bandwidth 10–100 Mbps, RTT
    10–100 ms, loss 0–1 %. The first redraw happens immediately. *)

val stop : t -> unit

val optimal_series : t -> (float * float) array
(** [(time, bandwidth_bps)] at each change point. *)

val mean_optimal : t -> until:float -> float
(** Time-weighted mean of the optimal rate from the start until
    [until]. *)
