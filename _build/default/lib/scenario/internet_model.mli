(** Synthetic model of the paper's large-scale Internet experiment
    (§4.1.1, Figs. 4–5).

    The 510 PlanetLab/GENI sender–receiver pairs are replaced by random
    paths drawn from calibrated distributions: BDPs spanning ~14 KB to
    18 MB (the paper's measured range), a substantial fraction of paths
    with mild random loss (old routers, failing wires, wireless segments),
    shallow buffers relative to BDP (the common under-provisioning the
    paper highlights), latency jitter from middleboxes/virtualization, and
    bursty unresponsive cross traffic. Protocols are measured {e solo},
    sequentially on the same path — exactly the iperf-then-PCC methodology
    of §4.1.1. *)

type params = {
  bandwidth : float;  (** Bottleneck, bits/s. *)
  rtt : float;  (** Base round-trip, s. *)
  buffer : int;  (** Bottleneck buffer, bytes. *)
  loss : float;  (** Random forward loss probability. *)
  jitter : float;  (** Uniform extra one-way delay bound, s. *)
  cross_fraction : float;  (** Mean cross-traffic share of capacity. *)
}

val random : Pcc_sim.Rng.t -> params
(** Draw one path. *)

val describe : params -> string

val measure :
  ?duration:float -> seed:int -> params -> Transport.spec -> float
(** [measure ~seed p spec] is the average solo goodput (bits/s) of the
    transport over the path after a short warmup. The [seed] fixes the
    path's stochastic processes so different transports face identical
    conditions. [duration] defaults to 30 simulated seconds. *)
