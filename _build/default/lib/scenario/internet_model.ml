open Pcc_sim

type params = {
  bandwidth : float;
  rtt : float;
  buffer : int;
  loss : float;
  jitter : float;
  cross_fraction : float;
}

let random rng =
  let bandwidth = Rng.log_uniform rng (Units.mbps 10.) (Units.mbps 500.) in
  let rtt = Rng.log_uniform rng 0.01 0.3 in
  let bdp = Units.bdp_bytes ~rate:bandwidth ~rtt in
  (* Buffers between 1% and 60% of BDP — the Internet's long tail of
     shallow-buffered bottlenecks is what CUBIC trips over. *)
  let buffer =
    max (3 * Units.mss)
      (int_of_float (Rng.log_uniform rng 0.01 0.6 *. float_of_int bdp))
  in
  (* 60% of paths carry some random loss (old routers, failing wires,
     wireless segments), up to 1%. *)
  let loss =
    if Rng.bernoulli rng 0.4 then 0. else Rng.log_uniform rng 1e-4 1e-2
  in
  let jitter = Rng.uniform rng 0. 0.008 in
  let cross_fraction = Rng.uniform rng 0. 0.3 in
  { bandwidth; rtt; buffer; loss; jitter; cross_fraction }

let describe p =
  Printf.sprintf
    "bw=%.1fMbps rtt=%.0fms buf=%dKB loss=%.3f%% jitter=%.1fms cross=%.0f%%"
    (Units.to_mbps p.bandwidth) (p.rtt *. 1e3) (p.buffer / 1024)
    (p.loss *. 100.) (p.jitter *. 1e3)
    (p.cross_fraction *. 100.)

let measure ?(duration = 30.) ~seed p spec =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let path =
    Path.build engine ~rng:(Rng.split rng) ~bandwidth:p.bandwidth ~rtt:p.rtt
      ~buffer:p.buffer ~loss:p.loss ~jitter:p.jitter
      ~flows:[ Path.flow spec ] ()
  in
  let cross =
    if p.cross_fraction > 0.001 then
      Some
        (Cross_traffic.onoff engine ~rng:(Rng.split rng)
           ~sink:(Path.send_bottleneck path)
           ~rate:(2. *. p.cross_fraction *. p.bandwidth)
           ~on_mean:0.25 ~off_mean:0.25 ())
    else None
  in
  let warmup = Float.max 3. (20. *. p.rtt) in
  Engine.run ~until:warmup engine;
  let b0 = Path.goodput_bytes (Path.flows path).(0) in
  Engine.run ~until:(warmup +. duration) engine;
  let b1 = Path.goodput_bytes (Path.flows path).(0) in
  (match cross with Some c -> Cross_traffic.stop c | None -> ());
  float_of_int ((b1 - b0) * 8) /. duration
