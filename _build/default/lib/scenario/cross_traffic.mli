(** Unresponsive background traffic for the synthetic Internet model:
    on/off constant-bit-rate bursts sharing the bottleneck queue. The
    resulting queue occupancy and loss noise is what makes the public
    Internet hostile to hardwired mappings. *)

type t

val onoff :
  Pcc_sim.Engine.t ->
  rng:Pcc_sim.Rng.t ->
  sink:(Pcc_net.Packet.t -> unit) ->
  rate:float ->
  on_mean:float ->
  off_mean:float ->
  unit ->
  t
(** [onoff engine ~rng ~sink ~rate ~on_mean ~off_mean ()] alternates
    exponentially-distributed ON periods (sending MSS packets at [rate]
    bits/s into [sink]) and OFF periods. Starts immediately. *)

val stop : t -> unit
val flow_id : t -> int
val sent_pkts : t -> int
