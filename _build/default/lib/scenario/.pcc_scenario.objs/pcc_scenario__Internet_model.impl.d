lib/scenario/internet_model.ml: Array Cross_traffic Engine Float Path Pcc_sim Printf Rng Units
