lib/scenario/transport.mli: Pcc_core Pcc_net Pcc_sim
