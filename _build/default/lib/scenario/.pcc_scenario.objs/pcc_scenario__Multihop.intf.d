lib/scenario/multihop.mli: Pcc_net Pcc_sim Transport
