lib/scenario/path.mli: Pcc_net Pcc_sim Transport
