lib/scenario/transport.ml: Controller Float Monitor Pcc_core Pcc_sender Pcc_sim Pcc_tcp
