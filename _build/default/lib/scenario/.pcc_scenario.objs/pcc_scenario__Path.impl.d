lib/scenario/path.ml: Array Delay_line Engine Hashtbl Link List Packet Pcc_net Pcc_sim Queue_disc Receiver Rng Sender Transport
