lib/scenario/dynamics.ml: Array Engine Float List Path Pcc_net Pcc_sim Rng Units
