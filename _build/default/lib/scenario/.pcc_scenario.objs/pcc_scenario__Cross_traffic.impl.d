lib/scenario/cross_traffic.ml: Engine Packet Pcc_net Pcc_sim Rng Units
