lib/scenario/cross_traffic.mli: Pcc_net Pcc_sim
