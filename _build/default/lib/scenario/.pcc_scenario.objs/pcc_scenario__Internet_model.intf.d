lib/scenario/internet_model.mli: Pcc_sim Transport
