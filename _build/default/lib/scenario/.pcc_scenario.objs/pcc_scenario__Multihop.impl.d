lib/scenario/multihop.ml: Array Delay_line Engine Hashtbl Link List Packet Pcc_net Pcc_sim Printf Queue_disc Receiver Rng Sender Transport Units
