lib/scenario/dynamics.mli: Path Pcc_sim
