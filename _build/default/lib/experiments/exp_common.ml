open Pcc_sim
open Pcc_scenario

type table = {
  title : string;
  header : string list;
  rows : string list list;
  note : string option;
}

let print_table t =
  let all = t.header :: t.rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let render row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let w = List.nth widths i in
           let pad = w - String.length cell in
           if i = 0 then cell ^ String.make pad ' '
           else String.make pad ' ' ^ cell)
         row)
  in
  Printf.printf "\n== %s ==\n" t.title;
  Printf.printf "%s\n" (render t.header);
  Printf.printf "%s\n" (String.make (String.length (render t.header)) '-');
  List.iter (fun r -> Printf.printf "%s\n" (render r)) t.rows;
  (match t.note with
  | Some n -> Printf.printf "%s\n" n
  | None -> ());
  flush stdout

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let mbps v = Printf.sprintf "%.2f" (v /. 1e6)

let ratio a b = if Float.abs b < 1e-9 then infinity else a /. b

let goodput_between engine flow ~t0 ~t1 =
  Engine.run ~until:t0 engine;
  let b0 = Path.goodput_bytes flow in
  Engine.run ~until:t1 engine;
  let b1 = Path.goodput_bytes flow in
  float_of_int ((b1 - b0) * 8) /. (t1 -. t0)

let solo_throughput ?(seed = 42) ?warmup ?(queue = Path.Droptail) ?(loss = 0.)
    ?(rev_loss = 0.) ?(jitter = 0.) ~bandwidth ~rtt ~buffer ~duration spec =
  let warmup =
    match warmup with Some w -> w | None -> Float.max 3. (20. *. rtt)
  in
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let path =
    Path.build engine ~rng ~bandwidth ~rtt ~buffer ~queue ~loss ~rev_loss
      ~jitter
      ~flows:[ Path.flow spec ]
      ()
  in
  goodput_between engine (Path.flows path).(0) ~t0:warmup
    ~t1:(warmup +. duration)
