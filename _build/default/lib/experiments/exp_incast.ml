open Pcc_sim
open Pcc_scenario

type row = { senders : int; block : int; pcc : float; tcp : float }

let default_senders = [ 5; 10; 15; 20; 25; 30; 33 ]
let default_blocks = [ 65536; 131072; 262144 ]

(* One synchronized round: all senders start at t=0 with [block] bytes;
   goodput = total data / time of the last completion. *)
let round ~seed ~senders ~block spec =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let jitter_rng = Rng.create (seed + 3) in
  (* Sub-millisecond start jitter: the barrier is software, not a pulse
     generator, and perfectly synchronized identical senders would act in
     unrealistic lockstep. *)
  let path =
    Path.build engine ~rng ~bandwidth:(Units.gbps 1.) ~rtt:0.0001
      ~buffer:65536
      ~flows:
        (List.init senders (fun _ ->
             Path.flow ~start_at:(Rng.uniform jitter_rng 0. 0.0005) ~size:block
               spec))
      ()
  in
  (* Generous deadline; incomplete flows count as the full horizon. *)
  let horizon = 5.0 in
  Engine.run ~until:horizon engine;
  let worst =
    Array.fold_left
      (fun acc f ->
        match f.Path.fct with Some fct -> Float.max acc fct | None -> horizon)
      0. (Path.flows path)
  in
  float_of_int (senders * block * 8) /. Float.max worst 1e-9

let run ?(scale = 1.) ?(seed = 42) ?(senders = default_senders)
    ?(blocks = default_blocks) () =
  let rounds = max 2 (int_of_float (15. *. scale)) in
  let avg f =
    let total = ref 0. in
    for i = 0 to rounds - 1 do
      total := !total +. f (seed + (i * 7919))
    done;
    !total /. float_of_int rounds
  in
  List.concat_map
    (fun block ->
      List.map
        (fun n ->
          {
            senders = n;
            block;
            pcc = avg (fun s -> round ~seed:s ~senders:n ~block (Transport.pcc ()));
            tcp =
              avg (fun s -> round ~seed:s ~senders:n ~block (Transport.tcp "newreno"));
          })
        senders)
    blocks

let table rows =
  Exp_common.
    {
      title =
        "Fig. 10 - incast goodput (1 Gbps, 100 us RTT, 64 KB switch buffer; \
         Mbps)";
      header = [ "block KB"; "senders"; "PCC"; "TCP"; "PCC/TCP" ];
      rows =
        List.map
          (fun r ->
            [
              string_of_int (r.block / 1024);
              string_of_int r.senders;
              mbps r.pcc;
              mbps r.tcp;
              f1 (ratio r.pcc r.tcp);
            ])
          rows;
      note =
        Some
          "Paper: with >=10 senders PCC holds 60-80% of line rate, 7-8x \
           TCP, and stays flat as senders increase.";
    }

let print ?scale ?seed () =
  Exp_common.print_table (table (run ?scale ?seed ()))
