(** Shared plumbing for the paper-reproduction experiments.

    Every experiment module follows the same convention: a [run] function
    parameterized by a [scale] (multiplying the paper's measurement
    durations, so tests can run cheap versions) and a [seed], returning
    structured rows, plus a [print] that renders the paper-shaped table to
    stdout. *)

type table = {
  title : string;
  header : string list;
  rows : string list list;
  note : string option;
}

val print_table : table -> unit
(** Render with aligned columns. *)

val f1 : float -> string
(** Format with 1 decimal. *)

val f2 : float -> string
val f3 : float -> string

val mbps : float -> string
(** Format a bits/s value as Mbps with 2 decimals. *)

val ratio : float -> float -> float
(** [ratio a b] is [a/b], guarding division by ~0 (returns [inf]). *)

val solo_throughput :
  ?seed:int ->
  ?warmup:float ->
  ?queue:Pcc_scenario.Path.queue_kind ->
  ?loss:float ->
  ?rev_loss:float ->
  ?jitter:float ->
  bandwidth:float ->
  rtt:float ->
  buffer:int ->
  duration:float ->
  Pcc_scenario.Transport.spec ->
  float
(** Average goodput (bits/s) of a single flow over [duration] after
    [warmup] (default [max 3. (20·rtt)]) on a fresh single-path
    topology. *)

val goodput_between :
  Pcc_sim.Engine.t ->
  Pcc_scenario.Path.built_flow ->
  t0:float ->
  t1:float ->
  float
(** Run the engine to [t0], snapshot, run to [t1], return the average
    goodput in bits/s. The engine must not already be past [t0]. *)
