(** Figure 7 — random loss resilience.

    100 Mbps bottleneck, 30 ms RTT, BDP buffer, Bernoulli loss applied to
    both the forward and reverse paths, swept from 0 to 6 %. The paper's
    shape: PCC holds >95 % of capacity through 1 % loss and degrades
    gracefully to ~2 %, then collapses as the safe utility's 5 % loss cap
    bites; CUBIC collapses an order of magnitude below PCC already at
    0.1 %; Illinois is the most loss-tolerant TCP but still far below
    PCC. *)

type row = {
  loss : float;
  pcc : float;  (** bits/s *)
  cubic : float;
  illinois : float;
  newreno : float;
}

val run : ?scale:float -> ?seed:int -> ?losses:float list -> unit -> row list
(** Base duration 60 s per point, multiplied by [scale] (default 1). *)

val table : row list -> Exp_common.table
val print : ?scale:float -> ?seed:int -> unit -> unit
