lib/experiments/exp_power.ml: Array Engine Exp_common Float List Path Pcc_core Pcc_net Pcc_scenario Pcc_sim Printf Rng Transport Units
