lib/experiments/exp_fct.mli: Exp_common
