lib/experiments/exp_fct.ml: Array Engine Exp_common Float List Path Pcc_metrics Pcc_scenario Pcc_sim Printf Rng Stats Transport Units
