lib/experiments/exp_friendliness.mli: Exp_common
