lib/experiments/exp_loss.ml: Exp_common List Pcc_scenario Pcc_sim Transport Units
