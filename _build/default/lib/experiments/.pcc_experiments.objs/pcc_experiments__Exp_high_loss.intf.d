lib/experiments/exp_high_loss.mli: Exp_common
