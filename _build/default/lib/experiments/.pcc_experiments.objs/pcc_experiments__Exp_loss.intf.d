lib/experiments/exp_loss.mli: Exp_common
