lib/experiments/exp_friendliness.ml: Array Engine Exp_common List Path Pcc_scenario Pcc_sim Printf Rng Transport Units
