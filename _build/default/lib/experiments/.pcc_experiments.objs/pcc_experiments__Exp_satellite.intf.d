lib/experiments/exp_satellite.mli: Exp_common
