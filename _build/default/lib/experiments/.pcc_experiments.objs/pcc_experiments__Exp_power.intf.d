lib/experiments/exp_power.mli: Exp_common
