lib/experiments/exp_common.mli: Pcc_scenario Pcc_sim
