lib/experiments/exp_internet.ml: Array Exp_common Float Internet_model List Pcc_metrics Pcc_scenario Pcc_sim Printf Rng Transport
