lib/experiments/exp_convergence.mli: Exp_common
