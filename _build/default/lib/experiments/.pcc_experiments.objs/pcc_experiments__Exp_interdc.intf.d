lib/experiments/exp_interdc.mli: Exp_common
