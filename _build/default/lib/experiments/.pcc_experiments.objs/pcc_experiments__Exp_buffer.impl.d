lib/experiments/exp_buffer.ml: Exp_common List Pcc_scenario Pcc_sim Transport Units
