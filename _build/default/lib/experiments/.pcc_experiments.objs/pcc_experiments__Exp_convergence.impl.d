lib/experiments/exp_convergence.ml: Array Convergence Engine Exp_common Float List Path Pcc_metrics Pcc_scenario Pcc_sim Printf Recorder Rng Stats Transport Units
