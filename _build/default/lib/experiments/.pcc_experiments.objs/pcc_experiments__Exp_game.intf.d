lib/experiments/exp_game.mli: Exp_common
