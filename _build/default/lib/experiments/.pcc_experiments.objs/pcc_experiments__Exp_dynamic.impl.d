lib/experiments/exp_dynamic.ml: Array Dynamics Engine Exp_common Float List Path Pcc_net Pcc_scenario Pcc_sim Printf Rng Transport Units
