lib/experiments/exp_rtt_fairness.ml: Array Engine Exp_common List Path Pcc_scenario Pcc_sim Rng Transport Units
