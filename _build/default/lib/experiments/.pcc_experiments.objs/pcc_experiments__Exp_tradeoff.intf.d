lib/experiments/exp_tradeoff.mli: Exp_common
