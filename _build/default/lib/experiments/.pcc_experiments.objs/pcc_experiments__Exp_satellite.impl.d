lib/experiments/exp_satellite.ml: Exp_common List Pcc_scenario Pcc_sim Transport Units
