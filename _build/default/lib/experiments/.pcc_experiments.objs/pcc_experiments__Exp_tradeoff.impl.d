lib/experiments/exp_tradeoff.ml: Array Convergence Engine Exp_common Float List Path Pcc_core Pcc_metrics Pcc_scenario Pcc_sim Recorder Rng Stats Transport Units
