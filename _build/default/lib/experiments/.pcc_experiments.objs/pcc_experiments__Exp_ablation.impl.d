lib/experiments/exp_ablation.ml: Exp_common List Monitor Pcc_core Pcc_scenario Pcc_sender Pcc_sim Transport Units Utility
