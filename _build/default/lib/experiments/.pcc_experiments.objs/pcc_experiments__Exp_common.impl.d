lib/experiments/exp_common.ml: Array Engine Float List Path Pcc_scenario Pcc_sim Printf Rng String
