lib/experiments/exp_rtt_fairness.mli: Exp_common
