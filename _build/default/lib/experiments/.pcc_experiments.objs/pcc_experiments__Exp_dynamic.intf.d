lib/experiments/exp_dynamic.mli: Exp_common
