lib/experiments/exp_internet.mli: Exp_common Pcc_scenario
