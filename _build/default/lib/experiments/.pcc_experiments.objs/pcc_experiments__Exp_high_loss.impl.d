lib/experiments/exp_high_loss.ml: Exp_common List Path Pcc_core Pcc_scenario Pcc_sim Printf Transport Units
