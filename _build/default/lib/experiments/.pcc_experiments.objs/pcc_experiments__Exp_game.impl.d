lib/experiments/exp_game.ml: Array Exp_common Game List Pcc_core Pcc_metrics Pcc_sim Printf
