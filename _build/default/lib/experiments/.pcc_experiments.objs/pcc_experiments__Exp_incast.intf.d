lib/experiments/exp_incast.mli: Exp_common
