lib/experiments/exp_buffer.mli: Exp_common
