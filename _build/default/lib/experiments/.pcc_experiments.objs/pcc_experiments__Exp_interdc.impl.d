lib/experiments/exp_interdc.ml: Exp_common List Pcc_scenario Pcc_sim Transport Units
