lib/experiments/exp_incast.ml: Array Engine Exp_common Float List Path Pcc_scenario Pcc_sim Rng Transport Units
