lib/net/receiver.mli: Packet Pcc_sim
