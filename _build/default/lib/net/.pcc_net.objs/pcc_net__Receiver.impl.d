lib/net/receiver.ml: Engine Hashtbl Int Packet Pcc_sim Set
