lib/net/packet.mli:
