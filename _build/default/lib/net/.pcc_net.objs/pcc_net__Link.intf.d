lib/net/link.mli: Packet Pcc_sim Queue_disc
