lib/net/scoreboard.mli: Packet
