lib/net/packet.ml: Pcc_sim
