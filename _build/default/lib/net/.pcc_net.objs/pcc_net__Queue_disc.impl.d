lib/net/queue_disc.ml: Format Hashtbl Packet Pcc_sim Queue
