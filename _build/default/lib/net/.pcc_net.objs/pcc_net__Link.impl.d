lib/net/link.ml: Engine Float Packet Pcc_sim Queue_disc Rng Units
