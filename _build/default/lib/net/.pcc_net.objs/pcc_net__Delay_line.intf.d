lib/net/delay_line.mli: Packet Pcc_sim
