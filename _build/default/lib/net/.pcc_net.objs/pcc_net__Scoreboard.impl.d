lib/net/scoreboard.ml: Hashtbl Int List Packet Queue Set
