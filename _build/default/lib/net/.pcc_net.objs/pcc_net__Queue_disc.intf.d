lib/net/queue_disc.mli: Format Packet
