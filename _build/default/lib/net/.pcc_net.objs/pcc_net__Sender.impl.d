lib/net/sender.ml: Packet
