lib/net/rate_pacer.mli: Pcc_sim
