lib/net/delay_line.ml: Engine Float Packet Pcc_sim Rng
