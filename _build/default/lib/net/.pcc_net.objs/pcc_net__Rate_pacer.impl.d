lib/net/rate_pacer.ml: Engine Float Pcc_sim Units
