lib/net/sender.mli: Packet
