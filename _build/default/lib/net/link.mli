(** A unidirectional link: serialization at a bandwidth, a buffer in front
    of it, propagation delay, and optional random channel loss.

    Packets handed to {!send} pass through the queue discipline, are
    serialized one at a time at the link bandwidth, then propagate for the
    link delay (plus optional jitter) before being delivered to the
    receiver callback. Channel loss applies after serialization — a lost
    packet still consumed bottleneck bandwidth, which is how random
    (non-congestion) loss behaves on real lossy links.

    Bandwidth, delay and loss rate can be changed while the simulation runs
    (the rapidly-changing-network experiment of §4.1.7 depends on this); a
    packet already being serialized completes at the old rate. *)

type t

val create :
  Pcc_sim.Engine.t ->
  ?name:string ->
  ?loss:float ->
  ?jitter:float ->
  rng:Pcc_sim.Rng.t ->
  bandwidth:float ->
  delay:float ->
  queue:Queue_disc.t ->
  unit ->
  t
(** [create engine ~rng ~bandwidth ~delay ~queue ()] is a link with the
    given bandwidth (bits per second), one-way propagation [delay]
    (seconds), Bernoulli channel [loss] probability (default 0) and
    uniform extra [jitter] (seconds, default 0). The receiver must be
    attached with {!set_receiver} before any packet finishes propagation.
    @raise Invalid_argument if [bandwidth <= 0] or [delay < 0]. *)

val set_receiver : t -> (Packet.t -> unit) -> unit
(** [set_receiver t f] makes [f] the delivery callback at the far end. *)

val send : t -> Packet.t -> unit
(** [send t p] offers [p] to the link's buffer; it is silently dropped if
    the queue discipline rejects it. *)

val set_bandwidth : t -> float -> unit
(** Change the serialization rate for subsequently transmitted packets. *)

val set_delay : t -> float -> unit
(** Change the propagation delay for subsequently transmitted packets. *)

val set_loss : t -> float -> unit
(** Change the channel loss probability. *)

val bandwidth : t -> float
val delay : t -> float
val loss : t -> float
val queue : t -> Queue_disc.t

val delivered_pkts : t -> int
(** Packets that reached the receiver callback. *)

val delivered_bytes : t -> int
val channel_losses : t -> int
(** Packets dropped by the random-loss process (not by the queue). *)

val busy_time : t -> float
(** Cumulative time the transmitter spent serializing packets — divided by
    elapsed time this is the link utilization. *)
