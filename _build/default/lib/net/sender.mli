(** Common interface every transport sender implements.

    The scenario harness treats transports uniformly: it feeds arriving
    acknowledgments to {!field-handle_ack} and reads progress counters. Each
    concrete transport (the TCP variants, SABUL, PCP, and PCC itself)
    produces one of these records from its [create] function. *)

type t = {
  flow : int;  (** The flow id this sender stamps on its packets. *)
  name : string;  (** Human-readable transport name, e.g. ["cubic"]. *)
  start : unit -> unit;  (** Begin transmitting. Idempotent. *)
  stop : unit -> unit;  (** Cease transmitting and cancel timers. *)
  handle_ack : Packet.ack -> unit;
      (** Process one acknowledgment arriving on the reverse path. *)
  rate_estimate : unit -> float;
      (** The sender's current target sending rate in bits per second —
          cwnd/RTT for window-based transports, the controller's rate for
          rate-based ones. Used for rate-tracking plots (Fig. 11). *)
  acked_bytes : unit -> int;
      (** Payload bytes known delivered (cumulatively acked). *)
  srtt : unit -> float;
      (** Current smoothed RTT estimate, seconds (a configuration guess
          before the first sample). Used for the power metric. *)
  sent_pkts : unit -> int;  (** Data packets transmitted, incl. retx. *)
  is_complete : unit -> bool;
      (** For finite transfers: whether all bytes are acked. *)
}
