type ack = {
  acked_seq : int;
  cum_ack : int;
  recv_bytes : int;
  data_sent_at : float;
  data_retx : bool;
}

type kind = Data of { retx : bool } | Ack of ack

type t = {
  flow : int;
  seq : int;
  size : int;
  sent_at : float;
  mutable enqueued_at : float;
  kind : kind;
}

let data ~flow ~seq ~size ~now ~retx =
  { flow; seq; size; sent_at = now; enqueued_at = now; kind = Data { retx } }

let ack_of pkt ~cum_ack ~recv_bytes ~now =
  match pkt.kind with
  | Ack _ -> invalid_arg "Packet.ack_of: cannot ack an ack"
  | Data { retx } ->
    {
      flow = pkt.flow;
      seq = pkt.seq;
      size = Pcc_sim.Units.ack_size;
      sent_at = now;
      enqueued_at = now;
      kind =
        Ack
          {
            acked_seq = pkt.seq;
            cum_ack;
            recv_bytes;
            data_sent_at = pkt.sent_at;
            data_retx = retx;
          };
    }

let is_data t = match t.kind with Data _ -> true | Ack _ -> false

let flow_counter = ref 0

let fresh_flow_id () =
  incr flow_counter;
  !flow_counter
