open Pcc_sim

type t = {
  engine : Engine.t;
  mutable rate : float;
  send : unit -> int option;
  mutable running : bool;
  mutable pending : Engine.timer option;
  mutable last_send : float;
}

let create engine ~rate ~send =
  if rate <= 0. then invalid_arg "Rate_pacer.create: rate must be positive";
  { engine; rate; send; running = false; pending = None; last_send = neg_infinity }

let interval t size = Units.bits_of_bytes size /. t.rate

let rec schedule_next t ~after =
  if t.running && t.pending = None then begin
    let timer =
      Engine.schedule_in t.engine ~after (fun () ->
          t.pending <- None;
          fire t)
    in
    t.pending <- Some timer
  end

and fire t =
  if t.running then begin
    match t.send () with
    | Some size ->
      t.last_send <- Engine.now t.engine;
      schedule_next t ~after:(interval t size)
    | None ->
      (* No data: pause until kicked. *)
      ()
  end

let start t =
  if not t.running then begin
    t.running <- true;
    schedule_next t ~after:0.
  end

let stop t =
  t.running <- false;
  match t.pending with
  | Some timer ->
    Engine.cancel timer;
    t.pending <- None
  | None -> ()

let kick t =
  if t.running && t.pending = None then begin
    let gap = interval t Units.mss in
    let wait = Float.max 0. (t.last_send +. gap -. Engine.now t.engine) in
    schedule_next t ~after:wait
  end

let set_rate t r =
  if r <= 0. then invalid_arg "Rate_pacer.set_rate: rate must be positive";
  t.rate <- r

let rate t = t.rate
let running t = t.running
