(** Packets exchanged between senders and receivers.

    Data packets carry a per-flow sequence number; acknowledgments carry a
    per-packet selective acknowledgment (the seq being acked plus the
    receiver's cumulative ack) and echo the data packet's send timestamp so
    senders can compute RTT samples without keeping extra state. This is the
    idealized "TCP SACK is enough feedback" receiver the paper assumes. *)

type ack = {
  acked_seq : int;  (** Sequence number of the data packet being acked. *)
  cum_ack : int;  (** Highest seq such that all [<= cum_ack] were received. *)
  recv_bytes : int;  (** Total distinct payload bytes received so far. *)
  data_sent_at : float;  (** Send timestamp echoed from the data packet. *)
  data_retx : bool;  (** Whether the acked data packet was a retransmission. *)
}

type kind =
  | Data of { retx : bool }  (** Application payload. *)
  | Ack of ack  (** Receiver feedback. *)

type t = {
  flow : int;  (** Flow identifier (assigned by {!val-fresh_flow_id}). *)
  seq : int;  (** Per-flow sequence number (data) or echo (ack). *)
  size : int;  (** Wire size in bytes, headers included. *)
  sent_at : float;  (** Time the packet was handed to the first link. *)
  mutable enqueued_at : float;
      (** Time of entry into the current queue; maintained by queue
          disciplines to compute sojourn times (CoDel). *)
  kind : kind;
}

val data : flow:int -> seq:int -> size:int -> now:float -> retx:bool -> t
(** [data ~flow ~seq ~size ~now ~retx] is a data packet sent at [now]. *)

val ack_of : t -> cum_ack:int -> recv_bytes:int -> now:float -> t
(** [ack_of pkt ~cum_ack ~recv_bytes ~now] is the acknowledgment a receiver
    generates for data packet [pkt].
    @raise Invalid_argument if [pkt] is itself an ack. *)

val is_data : t -> bool
(** Whether the packet carries payload. *)

val fresh_flow_id : unit -> int
(** A process-unique flow identifier. *)
