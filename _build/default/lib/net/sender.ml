type t = {
  flow : int;
  name : string;
  start : unit -> unit;
  stop : unit -> unit;
  handle_ack : Packet.ack -> unit;
  rate_estimate : unit -> float;
  acked_bytes : unit -> int;
  srtt : unit -> float;
  sent_pkts : unit -> int;
  is_complete : unit -> bool;
}
