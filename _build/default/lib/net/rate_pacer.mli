(** Clocked transmission at a target rate.

    Rate-based transports (PCC, SABUL, PCP) are not ack-clocked: they emit
    one packet every [packet_bits/rate] seconds regardless of feedback.
    The pacer owns that send timer; the transport supplies a callback that
    actually emits a packet (or declines, e.g. when a finite transfer has
    no data left, which pauses the pacer until {!kick}). *)

type t

val create :
  Pcc_sim.Engine.t -> rate:float -> send:(unit -> int option) -> t
(** [create engine ~rate ~send] is a pacer initially stopped. [send ()]
    transmits one packet and returns its wire size in bytes, or [None] to
    decline; declining pauses the clock. [rate] is in bits per second.
    @raise Invalid_argument if [rate <= 0]. *)

val start : t -> unit
(** Begin (or resume) clocked sending. Idempotent. *)

val stop : t -> unit
(** Cancel the pending send event. Idempotent. *)

val kick : t -> unit
(** Resume after the send callback declined (new data became available).
    No-op if the pacer is stopped or a send is already scheduled. *)

val set_rate : t -> float -> unit
(** Change the target rate; takes effect from the next scheduled send.
    @raise Invalid_argument if the rate is not positive. *)

val rate : t -> float
(** Current target rate in bits per second. *)

val running : t -> bool
