open Pcc_sim

type t = {
  engine : Engine.t;
  mutable delay : float;
  mutable loss : float;
  rng : Rng.t option;
  mutable receiver : Packet.t -> unit;
}

let create engine ?(loss = 0.) ?rng ~delay () =
  if delay < 0. then invalid_arg "Delay_line.create: delay must be non-negative";
  if loss > 0. && rng = None then
    invalid_arg "Delay_line.create: loss requires an rng";
  {
    engine;
    delay;
    loss;
    rng;
    receiver = (fun _ -> failwith "Delay_line: no receiver attached");
  }

let set_receiver t f = t.receiver <- f

let send t p =
  let lost =
    t.loss > 0.
    && match t.rng with Some rng -> Rng.bernoulli rng t.loss | None -> false
  in
  if not lost then
    ignore (Engine.schedule_in t.engine ~after:t.delay (fun () -> t.receiver p))

let set_delay t d =
  if d < 0. then invalid_arg "Delay_line.set_delay: must be non-negative";
  t.delay <- d

let set_loss t l =
  if l > 0. && t.rng = None then
    invalid_arg "Delay_line.set_loss: loss requires an rng";
  t.loss <- Float.max 0. (Float.min 1. l)

let delay t = t.delay
