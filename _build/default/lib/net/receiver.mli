(** Per-flow receiver endpoint.

    Acknowledges every data packet (per-packet SACK: the packet's own seq
    plus the cumulative ack) on the reverse path, counts goodput
    (first-time receptions only) and tracks in-order delivery. This is the
    unmodified-receiver end of the paper's deployment story: "TCP SACK is
    enough feedback". *)

type t

val create : Pcc_sim.Engine.t -> ack_out:(Packet.t -> unit) -> t
(** [create engine ~ack_out] is a receiver that emits acknowledgments via
    [ack_out] (typically the reverse path's [send]). *)

val on_packet : t -> Packet.t -> unit
(** Deliver a packet to the receiver. Data packets are acknowledged; ack
    packets are ignored (they should not reach a receiver). *)

val goodput_bytes : t -> int
(** Distinct payload bytes received so far (duplicates not counted). *)

val received_pkts : t -> int
(** Total data packets received, including duplicates. *)

val cum_ack : t -> int
(** Highest sequence number [n] such that all packets [0..n] arrived
    ([-1] initially). *)
