(** Delivery bookkeeping for reliable senders.

    Tracks which sequence numbers are outstanding, selectively or
    cumulatively acknowledged, or presumed lost, and maintains the
    retransmission queue. Loss is declared either by the SACK-gap rule
    (three acks above a hole — {!detect_losses}) or externally
    ({!mark_lost}, used by PCC when a monitor-interval deadline passes).
    The window engine in [Pcc_tcp.Tcp_sender] keeps its own inline
    scoreboard because recovery is entangled with cwnd state; the
    rate-based transports (SABUL, PCP, PCC) all share this one. *)

type t

val create : ?dupthresh:int -> unit -> t
(** [dupthresh] defaults to 3. *)

val fresh_seq : t -> int option
(** Allocate the next new sequence number, or [None] if the transfer
    bound given to {!limit_pkts} is exhausted. *)

val limit_pkts : t -> int -> unit
(** Bound the transfer to the first [n] sequence numbers. *)

val record_send : t -> int -> now:float -> unit
(** Note that [seq] was put on the wire (fresh or retransmission) at time
    [now]. *)

val on_ack : t -> Packet.ack -> int list
(** Fold in an acknowledgment; returns the sequences newly known
    delivered (empty for duplicates). Besides the directly acked
    sequence this includes any holes covered by the cumulative ack —
    packets whose own acks were lost on the reverse path. *)

val detect_losses : t -> now:float -> min_age:float -> int list
(** Sequences newly presumed lost by the SACK-gap rule, in increasing
    order; they are moved to the retransmission queue as a side effect.
    Holes whose last transmission is younger than [min_age] (typically
    ~one smoothed RTT) are skipped — without this guard an in-flight
    retransmission, which necessarily sits below the SACK frontier, would
    be re-declared lost on every subsequent ack. *)

val mark_lost : t -> int -> now:float -> min_age:float -> bool
(** [mark_lost t seq ~now ~min_age] declares [seq] lost if it is still
    outstanding and its last transmission is at least [min_age] old
    (guarding against declaring an in-flight retransmission lost);
    returns whether anything changed. *)

val sweep_stale : t -> now:float -> min_age:float -> int list
(** Declare lost every outstanding sequence whose last transmission is at
    least [min_age] old, moving them to the retransmission queue. This is
    the retransmission-timeout analogue for rate-based transports (UDT's
    EXP timer): the backstop for tail losses that SACK-gap detection can
    never resolve because nothing was sent after them. *)

val take_retx : t -> int option
(** Next sequence needing retransmission, skipping any that were delivered
    in the meantime. *)

val has_retx : t -> bool
val delivered : t -> int -> bool
val high_ack : t -> int
(** Highest cumulatively acknowledged sequence ([-1] initially). *)

val highest_sacked : t -> int
val inflight : t -> int
val acked_pkts : t -> int
val next_seq : t -> int
(** The next fresh sequence number that {!fresh_seq} would return. *)

val complete : t -> bool
(** Whether a {!limit_pkts}-bounded transfer is fully delivered. *)
