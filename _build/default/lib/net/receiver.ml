open Pcc_sim

module Int_set = Set.Make (Int)

type t = {
  engine : Engine.t;
  ack_out : Packet.t -> unit;
  mutable cum_ack : int;
  mutable out_of_order : Int_set.t;
  mutable goodput_bytes : int;
  mutable received_pkts : int;
  seen : (int, unit) Hashtbl.t;
}

let create engine ~ack_out =
  {
    engine;
    ack_out;
    cum_ack = -1;
    out_of_order = Int_set.empty;
    goodput_bytes = 0;
    received_pkts = 0;
    seen = Hashtbl.create 1024;
  }

let advance t =
  let continue = ref true in
  while !continue do
    let next = t.cum_ack + 1 in
    if Int_set.mem next t.out_of_order then begin
      t.out_of_order <- Int_set.remove next t.out_of_order;
      t.cum_ack <- next
    end
    else continue := false
  done

let on_packet t (p : Packet.t) =
  match p.kind with
  | Packet.Ack _ -> ()
  | Packet.Data _ ->
    t.received_pkts <- t.received_pkts + 1;
    if not (Hashtbl.mem t.seen p.seq) then begin
      Hashtbl.add t.seen p.seq ();
      t.goodput_bytes <- t.goodput_bytes + p.size;
      if p.seq = t.cum_ack + 1 then begin
        t.cum_ack <- p.seq;
        advance t
      end
      else if p.seq > t.cum_ack then
        t.out_of_order <- Int_set.add p.seq t.out_of_order
    end;
    let now = Engine.now t.engine in
    t.ack_out
      (Packet.ack_of p ~cum_ack:t.cum_ack ~recv_bytes:t.goodput_bytes ~now)

let goodput_bytes t = t.goodput_bytes
let received_pkts t = t.received_pkts
let cum_ack t = t.cum_ack
