module Int_set = Set.Make (Int)

type t = {
  dupthresh : int;
  mutable high_ack : int;
  mutable sacked : Int_set.t;
  mutable highest_sacked : int;
  mutable outstanding : Int_set.t;
  mutable inflight : int;
  retx_q : int Queue.t;
  retx_set : (int, unit) Hashtbl.t;
  sent_at : (int, float) Hashtbl.t;  (* last transmission time per seq *)
  mutable next : int;
  mutable limit : int option;
  mutable acked_pkts : int;
}

let create ?(dupthresh = 3) () =
  {
    dupthresh;
    high_ack = -1;
    sacked = Int_set.empty;
    highest_sacked = -1;
    outstanding = Int_set.empty;
    inflight = 0;
    retx_q = Queue.create ();
    retx_set = Hashtbl.create 64;
    sent_at = Hashtbl.create 256;
    next = 0;
    limit = None;
    acked_pkts = 0;
  }

let limit_pkts t n = t.limit <- Some n

let fresh_seq t =
  match t.limit with
  | Some n when t.next >= n -> None
  | Some _ | None ->
    let seq = t.next in
    t.next <- seq + 1;
    Some seq

let delivered t seq = seq <= t.high_ack || Int_set.mem seq t.sacked

let record_send t seq ~now =
  Hashtbl.replace t.sent_at seq now;
  if not (delivered t seq) && not (Int_set.mem seq t.outstanding) then begin
    t.outstanding <- Int_set.add seq t.outstanding;
    t.inflight <- t.inflight + 1
  end

let remove_outstanding t seq =
  if Int_set.mem seq t.outstanding then begin
    t.outstanding <- Int_set.remove seq t.outstanding;
    t.inflight <- t.inflight - 1;
    Hashtbl.remove t.sent_at seq
  end

let on_ack t (a : Packet.ack) =
  let newly = ref [] in
  let seq = a.Packet.acked_seq in
  if seq > t.high_ack && not (Int_set.mem seq t.sacked) then begin
    t.sacked <- Int_set.add seq t.sacked;
    newly := seq :: !newly;
    remove_outstanding t seq;
    if seq > t.highest_sacked then t.highest_sacked <- seq
  end;
  if a.Packet.cum_ack > t.high_ack then begin
    (* Sequences covered only by the cumulative ack were delivered even if
       their own acks were lost on the reverse path. *)
    for s = t.high_ack + 1 to a.Packet.cum_ack do
      if Int_set.mem s t.sacked then t.sacked <- Int_set.remove s t.sacked
      else begin
        newly := s :: !newly;
        remove_outstanding t s
      end
    done;
    t.high_ack <- a.Packet.cum_ack
  end;
  t.acked_pkts <- t.acked_pkts + List.length !newly;
  List.rev !newly

let queue_retx t seq =
  if not (Hashtbl.mem t.retx_set seq) then begin
    Hashtbl.add t.retx_set seq ();
    Queue.push seq t.retx_q
  end

let detect_losses t ~now ~min_age =
  (* Age guard: a hole below the SACK threshold only counts as lost if its
     last transmission is old enough that its ack would have arrived. This
     is what keeps a just-retransmitted low sequence (necessarily below
     [highest_sacked - dupthresh]) from being re-marked lost on every
     subsequent ack — the spurious-retransmission storm. *)
  let threshold = t.highest_sacked - t.dupthresh in
  let lost = ref [] in
  let candidates = ref [] in
  (try
     Int_set.iter
       (fun seq ->
         if seq > threshold then raise Exit;
         candidates := seq :: !candidates)
       t.outstanding
   with Exit -> ());
  List.iter
    (fun seq ->
      let old_enough =
        match Hashtbl.find_opt t.sent_at seq with
        | Some at -> now -. at >= min_age
        | None -> true
      in
      if old_enough then begin
        remove_outstanding t seq;
        queue_retx t seq;
        lost := seq :: !lost
      end)
    (List.rev !candidates);
  List.rev !lost

let mark_lost t seq ~now ~min_age =
  let old_enough =
    match Hashtbl.find_opt t.sent_at seq with
    | Some at -> now -. at >= min_age
    | None -> true
  in
  if old_enough && Int_set.mem seq t.outstanding then begin
    remove_outstanding t seq;
    queue_retx t seq;
    true
  end
  else false

let sweep_stale t ~now ~min_age =
  let stale = ref [] in
  Int_set.iter
    (fun seq ->
      match Hashtbl.find_opt t.sent_at seq with
      | Some at when now -. at < min_age -> ()
      | Some _ | None -> stale := seq :: !stale)
    t.outstanding;
  List.iter
    (fun seq ->
      remove_outstanding t seq;
      queue_retx t seq)
    !stale;
  List.rev !stale

let rec take_retx t =
  match Queue.take_opt t.retx_q with
  | None -> None
  | Some seq ->
    Hashtbl.remove t.retx_set seq;
    if delivered t seq then take_retx t else Some seq

let has_retx t =
  (* Cheap check; stale entries are filtered at take time. *)
  not (Queue.is_empty t.retx_q)

let high_ack t = t.high_ack
let highest_sacked t = t.highest_sacked
let inflight t = t.inflight
let acked_pkts t = t.acked_pkts
let next_seq t = t.next

let complete t =
  match t.limit with Some n -> t.high_ack >= n - 1 | None -> false
