open Pcc_sim

type t = {
  engine : Engine.t;
  name : string;
  rng : Rng.t;
  mutable bandwidth : float;
  mutable delay : float;
  mutable loss : float;
  jitter : float;
  q : Queue_disc.t;
  mutable receiver : Packet.t -> unit;
  mutable busy : bool;
  mutable delivered_pkts : int;
  mutable delivered_bytes : int;
  mutable channel_losses : int;
  mutable busy_time : float;
}

let create engine ?(name = "link") ?(loss = 0.) ?(jitter = 0.) ~rng ~bandwidth
    ~delay ~queue () =
  if bandwidth <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  if delay < 0. then invalid_arg "Link.create: delay must be non-negative";
  {
    engine;
    name;
    rng;
    bandwidth;
    delay;
    loss;
    jitter;
    q = queue;
    receiver =
      (fun _ -> failwith (name ^ ": no receiver attached"));
    busy = false;
    delivered_pkts = 0;
    delivered_bytes = 0;
    channel_losses = 0;
    busy_time = 0.;
  }

let set_receiver t f = t.receiver <- f

let propagate t (p : Packet.t) =
  if Rng.bernoulli t.rng t.loss then t.channel_losses <- t.channel_losses + 1
  else begin
    let extra = if t.jitter > 0. then Rng.uniform t.rng 0. t.jitter else 0. in
    ignore
      (Engine.schedule_in t.engine ~after:(t.delay +. extra) (fun () ->
           t.delivered_pkts <- t.delivered_pkts + 1;
           t.delivered_bytes <- t.delivered_bytes + p.Packet.size;
           t.receiver p))
  end

let rec start_transmission t =
  let now = Engine.now t.engine in
  match t.q.Queue_disc.dequeue ~now with
  | None -> t.busy <- false
  | Some p ->
    t.busy <- true;
    let tx = Units.transmission_time ~size:p.Packet.size ~rate:t.bandwidth in
    t.busy_time <- t.busy_time +. tx;
    ignore
      (Engine.schedule_in t.engine ~after:tx (fun () ->
           propagate t p;
           start_transmission t))

let send t p =
  let now = Engine.now t.engine in
  let accepted = t.q.Queue_disc.enqueue ~now p in
  if accepted && not t.busy then start_transmission t

let set_bandwidth t bw =
  if bw <= 0. then invalid_arg "Link.set_bandwidth: must be positive";
  t.bandwidth <- bw

let set_delay t d =
  if d < 0. then invalid_arg "Link.set_delay: must be non-negative";
  t.delay <- d

let set_loss t l = t.loss <- Float.max 0. (Float.min 1. l)

let bandwidth t = t.bandwidth
let delay t = t.delay
let loss t = t.loss
let queue t = t.q
let delivered_pkts t = t.delivered_pkts
let delivered_bytes t = t.delivered_bytes
let channel_losses t = t.channel_losses
let busy_time t = t.busy_time
