open Pcc_sim
open Pcc_tcp
module Sender = Pcc_net.Sender

(* ------------------------------------------------------------------ *)
(* Rtt_estimator *)

let test_rtt_first_sample () =
  let e = Rtt_estimator.create () in
  Alcotest.(check (option (float 0.))) "no srtt yet" None (Rtt_estimator.srtt e);
  Rtt_estimator.sample e 0.1;
  Alcotest.(check (option (float 1e-9))) "srtt = sample" (Some 0.1)
    (Rtt_estimator.srtt e);
  (* RFC 6298: RTO = srtt + 4*rttvar = 0.1 + 4*0.05 = 0.3. *)
  Alcotest.(check (float 1e-9)) "rto" 0.3 (Rtt_estimator.rto e)

let test_rtt_smoothing () =
  let e = Rtt_estimator.create () in
  Rtt_estimator.sample e 0.1;
  Rtt_estimator.sample e 0.2;
  (* srtt = 7/8*0.1 + 1/8*0.2 = 0.1125 *)
  Alcotest.(check (option (float 1e-9))) "ewma" (Some 0.1125)
    (Rtt_estimator.srtt e);
  Alcotest.(check (option (float 1e-9))) "min" (Some 0.1)
    (Rtt_estimator.min_rtt e);
  Alcotest.(check (option (float 1e-9))) "max" (Some 0.2)
    (Rtt_estimator.max_rtt e)

let test_rtt_min_rto_floor () =
  let e = Rtt_estimator.create ~min_rto:0.2 () in
  Rtt_estimator.sample e 0.001;
  Rtt_estimator.sample e 0.001;
  Rtt_estimator.sample e 0.001;
  Alcotest.(check (float 1e-9)) "floored" 0.2 (Rtt_estimator.rto e)

let test_rtt_backoff () =
  let e = Rtt_estimator.create () in
  Rtt_estimator.sample e 0.1;
  let r0 = Rtt_estimator.rto e in
  Rtt_estimator.backoff e;
  Alcotest.(check (float 1e-9)) "doubled" (r0 *. 2.) (Rtt_estimator.rto e);
  Rtt_estimator.reset_backoff e;
  Alcotest.(check (float 1e-9)) "reset" r0 (Rtt_estimator.rto e)

(* ------------------------------------------------------------------ *)
(* Variant window arithmetic (unit level) *)

let make_ctx ?(cwnd = 10.) ?(ssthresh = 1000.) ?(srtt = 0.1) ?(min_rtt = 0.05)
    () =
  Variant.
    {
      cwnd;
      ssthresh;
      now = (fun () -> 0.);
      srtt = (fun () -> srtt);
      min_rtt = (fun () -> min_rtt);
      max_rtt = (fun () -> srtt *. 2.);
      latest_rtt = (fun () -> srtt);
      mss = Units.mss;
    }

let test_newreno_slow_start () =
  let v = Newreno.make () in
  let ctx = make_ctx ~cwnd:2. () in
  v.Variant.on_ack ctx ~newly_acked:2;
  Alcotest.(check (float 1e-9)) "ss +2" 4. ctx.Variant.cwnd

let test_newreno_congestion_avoidance () =
  let v = Newreno.make () in
  let ctx = make_ctx ~cwnd:10. ~ssthresh:5. () in
  v.Variant.on_ack ctx ~newly_acked:1;
  Alcotest.(check (float 1e-9)) "ca +1/w" 10.1 ctx.Variant.cwnd

let test_newreno_halves_on_loss () =
  let v = Newreno.make () in
  let ctx = make_ctx ~cwnd:20. () in
  v.Variant.on_loss ctx;
  Alcotest.(check (float 1e-9)) "halved" 10. ctx.Variant.cwnd;
  Alcotest.(check (float 1e-9)) "ssthresh" 10. ctx.Variant.ssthresh

let test_min_cwnd_floor () =
  let v = Newreno.make () in
  let ctx = make_ctx ~cwnd:2. () in
  v.Variant.on_loss ctx;
  v.Variant.on_loss ctx;
  Alcotest.(check bool) "floor holds" true (ctx.Variant.cwnd >= Variant.min_cwnd)

let test_cubic_beta_reduction () =
  let v = Cubic.make () in
  let ctx = make_ctx ~cwnd:100. ~ssthresh:50. () in
  v.Variant.on_loss ctx;
  Alcotest.(check (float 1e-6)) "beta=0.7" 70. ctx.Variant.cwnd

let test_cubic_growth_accelerates_past_wmax () =
  let now = ref 0. in
  let ctx =
    Variant.
      {
        cwnd = 100.;
        ssthresh = 50.;
        now = (fun () -> !now);
        srtt = (fun () -> 0.1);
        min_rtt = (fun () -> 0.05);
        max_rtt = (fun () -> 0.2);
        latest_rtt = (fun () -> 0.1);
        mss = Units.mss;
      }
  in
  let v = Cubic.make () in
  v.Variant.on_loss ctx;
  let after_loss = ctx.Variant.cwnd in
  (* Ack steadily for simulated seconds; cwnd should recover toward and
     then beyond the previous maximum (convex region). *)
  (* K = cbrt(w_max*(1-beta)/C) = cbrt(75) ~ 4.2 s: give the cubic 8 s. *)
  for i = 1 to 800 do
    now := float_of_int i *. 0.01;
    v.Variant.on_ack ctx ~newly_acked:1
  done;
  Alcotest.(check bool) "recovered past w_max" true (ctx.Variant.cwnd > 100.);
  Alcotest.(check bool) "grew" true (ctx.Variant.cwnd > after_loss)

let test_hybla_rho_scaling () =
  let v = Hybla.make () in
  (* Long-RTT connection in congestion avoidance: per-ack growth is
     rho^2/cwnd, much faster than Reno's 1/cwnd. *)
  let ctx = make_ctx ~cwnd:10. ~ssthresh:5. ~srtt:0.25 () in
  v.Variant.on_ack ctx ~newly_acked:1;
  let hybla_growth = ctx.Variant.cwnd -. 10. in
  let reno = Newreno.make () in
  let ctx2 = make_ctx ~cwnd:10. ~ssthresh:5. ~srtt:0.25 () in
  reno.Variant.on_ack ctx2 ~newly_acked:1;
  let reno_growth = ctx2.Variant.cwnd -. 10. in
  (* rho = 0.25/0.025 = 10, so growth should be ~100x Reno's. *)
  Alcotest.(check bool) "rho^2 scaling" true
    (hybla_growth > 50. *. reno_growth)

let test_hybla_short_rtt_behaves_like_reno () =
  let v = Hybla.make () in
  let ctx = make_ctx ~cwnd:10. ~ssthresh:5. ~srtt:0.02 () in
  v.Variant.on_ack ctx ~newly_acked:1;
  (* rho clamps at 1: growth = 1/cwnd. *)
  Alcotest.(check (float 1e-9)) "reno-like" 10.1 ctx.Variant.cwnd

let test_illinois_alpha_depends_on_delay () =
  (* Low queueing delay: aggressive alpha; high delay: conservative. *)
  let run srtt =
    let v = Illinois.make () in
    let ctx = make_ctx ~cwnd:10. ~ssthresh:5. ~srtt ~min_rtt:0.05 () in
    (* Feed several acks so the internal delay average forms. *)
    for _ = 1 to 20 do
      v.Variant.on_ack ctx ~newly_acked:1
    done;
    ctx.Variant.cwnd
  in
  let low_delay = run 0.0505 in
  let high_delay = run 0.099 in
  Alcotest.(check bool) "faster growth at low delay" true
    (low_delay > high_delay)

let test_illinois_beta_depends_on_delay () =
  let run srtt =
    let v = Illinois.make () in
    let ctx = make_ctx ~cwnd:100. ~ssthresh:5. ~srtt ~min_rtt:0.05 () in
    for _ = 1 to 20 do
      v.Variant.on_ack ctx ~newly_acked:1
    done;
    let before = ctx.Variant.cwnd in
    v.Variant.on_loss ctx;
    ctx.Variant.cwnd /. before
  in
  let keep_low_delay = run 0.0505 in
  let keep_high_delay = run 0.0995 in
  (* With no queueing evidence the backoff is mild (1/8); deep queues cut
     up to 1/2. *)
  Alcotest.(check bool) "mild cut at low delay" true
    (keep_low_delay > keep_high_delay);
  Alcotest.(check bool) "low-delay cut ~ 12.5%" true (keep_low_delay > 0.85)

let test_vegas_holds_at_target () =
  let v = Vegas.make () in
  (* diff = cwnd*(1 - base/srtt) = 10*(1-0.05/0.0714) = 3 packets: within
     [alpha=2, beta=4] the window should hold. *)
  let now = ref 0. in
  let ctx =
    Variant.
      {
        cwnd = 10.;
        ssthresh = 5.;
        now = (fun () -> !now);
        srtt = (fun () -> 0.0714);
        min_rtt = (fun () -> 0.05);
        max_rtt = (fun () -> 0.08);
        latest_rtt = (fun () -> 0.0714);
        mss = Units.mss;
      }
  in
  for i = 1 to 50 do
    now := float_of_int i *. 0.08;
    v.Variant.on_ack ctx ~newly_acked:1
  done;
  Alcotest.(check (float 0.01)) "holds" 10. ctx.Variant.cwnd

let test_vegas_backs_off_queueing () =
  let v = Vegas.make () in
  let now = ref 0. in
  (* Large diff: srtt far above base. *)
  let ctx =
    Variant.
      {
        cwnd = 20.;
        ssthresh = 5.;
        now = (fun () -> !now);
        srtt = (fun () -> 0.1);
        min_rtt = (fun () -> 0.05);
        max_rtt = (fun () -> 0.12);
        latest_rtt = (fun () -> 0.1);
        mss = Units.mss;
      }
  in
  for i = 1 to 10 do
    now := float_of_int i *. 0.2;
    v.Variant.on_ack ctx ~newly_acked:1
  done;
  Alcotest.(check bool) "decreased" true (ctx.Variant.cwnd < 20.)

let test_bic_binary_search () =
  let v = Bic.make () in
  let ctx = make_ctx ~cwnd:100. ~ssthresh:50. () in
  v.Variant.on_loss ctx;
  Alcotest.(check (float 1e-6)) "beta cut to 80" 80. ctx.Variant.cwnd;
  (* Growth from 80 toward the midpoint (90) decelerates as it nears. *)
  let g1 =
    let before = ctx.Variant.cwnd in
    v.Variant.on_ack ctx ~newly_acked:1;
    ctx.Variant.cwnd -. before
  in
  for _ = 1 to 200 do
    v.Variant.on_ack ctx ~newly_acked:1
  done;
  let g2 =
    let before = ctx.Variant.cwnd in
    v.Variant.on_ack ctx ~newly_acked:1;
    ctx.Variant.cwnd -. before
  in
  Alcotest.(check bool) "decelerates near target" true (g1 > g2)

let test_westwood_bandwidth_based_cut () =
  let now = ref 0. in
  let ctx =
    Variant.
      {
        cwnd = 100.;
        ssthresh = 50.;
        now = (fun () -> !now);
        srtt = (fun () -> 0.1);
        min_rtt = (fun () -> 0.1);
        max_rtt = (fun () -> 0.12);
        latest_rtt = (fun () -> 0.1);
        mss = Units.mss;
      }
  in
  let v = Westwood.make () in
  (* Feed acks at ~1000 pkts/s so BWE ~ 1000 pkts/s, BWE*min_rtt ~ 100. *)
  for i = 1 to 500 do
    now := float_of_int i *. 0.001;
    v.Variant.on_ack ctx ~newly_acked:1
  done;
  v.Variant.on_loss ctx;
  (* Despite the loss, the estimated pipe supports ~100 packets: the cut
     should keep cwnd far above Reno's 50. *)
  Alcotest.(check bool) "keeps estimated pipe" true (ctx.Variant.cwnd > 70.)

let test_fast_holds_alpha_packets_queued () =
  (* At the fixed point, baseRTT/RTT*w + alpha = w, i.e. the queue holds
     exactly alpha packets: with base 50 ms and alpha 20, a pipe of
     base*C packets, w settles at pipe + 20. *)
  let now = ref 0. in
  let w = ref 100. in
  let base = 0.05 in
  let pipe = 100. in
  let ctx =
    Variant.
      {
        cwnd = !w;
        ssthresh = 5.;
        now = (fun () -> !now);
        (* Self-consistent queueing: RTT grows with the standing queue. *)
        srtt = (fun () -> base *. Float.max 1. (!w /. pipe));
        min_rtt = (fun () -> base);
        max_rtt = (fun () -> 0.2);
        latest_rtt = (fun () -> base);
        mss = Units.mss;
      }
  in
  let v = Fast.make ~alpha:20. () in
  for i = 1 to 200 do
    now := float_of_int i *. 0.1;
    ctx.Variant.cwnd <- ctx.Variant.cwnd;
    v.Variant.on_ack ctx ~newly_acked:1;
    w := ctx.Variant.cwnd
  done;
  Alcotest.(check bool) "settles near pipe + alpha" true
    (Float.abs (ctx.Variant.cwnd -. (pipe +. 20.)) < 5.)

let test_fast_misled_by_baseline_misestimate () =
  (* §5: if baseRTT is overestimated (measured during queueing), FAST
     keeps inflating the window — the hardwired assumption failing. *)
  let now = ref 0. in
  let ctx =
    Variant.
      {
        cwnd = 100.;
        ssthresh = 5.;
        now = (fun () -> !now);
        srtt = (fun () -> 0.1);
        min_rtt = (fun () -> 0.1);  (* believes there is no queueing *)
        max_rtt = (fun () -> 0.2);
        latest_rtt = (fun () -> 0.1);
        mss = Units.mss;
      }
  in
  let v = Fast.make ~alpha:20. () in
  for i = 1 to 50 do
    now := float_of_int i *. 0.11;
    v.Variant.on_ack ctx ~newly_acked:1
  done;
  Alcotest.(check bool) "window inflates without bound" true
    (ctx.Variant.cwnd > 500.)

let test_highspeed_scales_with_window () =
  let v = Highspeed.make () in
  let small = make_ctx ~cwnd:30. ~ssthresh:5. () in
  v.Variant.on_ack small ~newly_acked:1;
  Alcotest.(check (float 1e-6)) "reno below low_window" (30. +. (1. /. 30.))
    small.Variant.cwnd;
  let big = make_ctx ~cwnd:10000. ~ssthresh:5. () in
  let before = big.Variant.cwnd in
  v.Variant.on_ack big ~newly_acked:1;
  let growth_big = (big.Variant.cwnd -. before) *. before in
  (* a(w) for w=10000 is ~tens: far above Reno's a=1. *)
  Alcotest.(check bool) "superlinear additive step" true (growth_big > 10.);
  v.Variant.on_loss big;
  Alcotest.(check bool) "gentler backoff at scale" true
    (big.Variant.cwnd > 0.6 *. before)

let test_registry () =
  Alcotest.(check int) "nine variants" 9 (List.length Registry.variants);
  List.iter
    (fun name ->
      let v = Registry.variant name in
      Alcotest.(check string) "name matches" name v.Variant.name)
    Registry.variants;
  Alcotest.(check bool) "unknown rejected" true
    (try
       ignore (Registry.variant "quic");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Tcp_sender integration on a loopback harness *)

(* Minimal harness: a bottleneck link into a receiver, acks return after a
   fixed reverse delay. *)
let harness ?(bandwidth = Units.mbps 10.) ?(rtt = 0.1) ?(loss = 0.)
    ?(buffer = 100 * Units.mss) ?size ?on_complete engine name =
  let open Pcc_net in
  let rng = Rng.create 99 in
  let q = Queue_disc.droptail_bytes ~capacity:buffer () in
  let link =
    Link.create engine ~loss ~rng ~bandwidth ~delay:(rtt /. 2.) ~queue:q ()
  in
  let rev = Delay_line.create engine ~delay:(rtt /. 2.) () in
  let receiver = Receiver.create engine ~ack_out:(Delay_line.send rev) in
  Link.set_receiver link (Receiver.on_packet receiver);
  let cfg = Tcp_sender.default_config (Registry.variant name) in
  let cfg = { cfg with Tcp_sender.initial_rtt = rtt } in
  let t = Tcp_sender.create engine cfg ?size ?on_complete ~out:(Link.send link) () in
  let s = Tcp_sender.sender t in
  Delay_line.set_receiver rev (fun pkt ->
      match pkt.Packet.kind with
      | Packet.Ack a -> s.Sender.handle_ack a
      | Packet.Data _ -> ());
  (t, s, receiver, link)

let test_tcp_fills_clean_link () =
  let engine = Engine.create () in
  let t, s, receiver, _ = harness engine "newreno" in
  s.Sender.start ();
  Engine.run ~until:30. engine;
  let tput =
    float_of_int (Pcc_net.Receiver.goodput_bytes receiver * 8) /. 30.
  in
  Alcotest.(check bool) ""
    true
    (tput > 0.85 *. Units.mbps 10.);
  Alcotest.(check bool) "srtt learned" true (Tcp_sender.srtt t <> None)

let test_tcp_slow_start_doubles () =
  let engine = Engine.create () in
  let t, s, _, _ = harness ~bandwidth:(Units.mbps 100.) engine "newreno" in
  s.Sender.start ();
  (* After ~3 RTTs of slow start from cwnd 2, cwnd should be ~16. *)
  Engine.run ~until:0.35 engine;
  Alcotest.(check bool) "exponential growth" true (Tcp_sender.cwnd t >= 8.)

let test_tcp_fast_retransmit_on_loss () =
  let engine = Engine.create () in
  let t, s, _, _ = harness ~loss:0.02 engine "newreno" in
  s.Sender.start ();
  Engine.run ~until:20. engine;
  Alcotest.(check bool) "fast retransmits happened" true
    (Tcp_sender.fast_retransmits t > 0);
  (* SACK recovery should avoid constant RTOs on a mildly lossy link. *)
  Alcotest.(check bool) "few timeouts" true (Tcp_sender.timeouts t < 10)

let test_tcp_finite_transfer_completes () =
  let engine = Engine.create () in
  let done_at = ref None in
  let size = 50 * Units.mss in
  let t, s, receiver, _ =
    harness ~loss:0.05 ~size ~on_complete:(fun at -> done_at := Some at)
      engine "newreno"
  in
  ignore t;
  s.Sender.start ();
  Engine.run ~until:60. engine;
  Alcotest.(check bool) "completed despite loss" true (!done_at <> None);
  Alcotest.(check bool) "receiver got all bytes" true
    (Pcc_net.Receiver.goodput_bytes receiver >= size)

let test_tcp_timeout_on_blackhole () =
  let engine = Engine.create () in
  let open Pcc_net in
  let rng = Rng.create 1 in
  (* Forward loss of 100%: every transmission times out. *)
  let q = Queue_disc.droptail_bytes ~capacity:(100 * Units.mss) () in
  let link =
    Link.create engine ~loss:1.0 ~rng ~bandwidth:(Units.mbps 10.) ~delay:0.05
      ~queue:q ()
  in
  Link.set_receiver link (fun _ -> ());
  let cfg = Tcp_sender.default_config (Newreno.make ()) in
  let t = Tcp_sender.create engine cfg ~out:(Link.send link) () in
  (Tcp_sender.sender t).Sender.start ();
  Engine.run ~until:10. engine;
  Alcotest.(check bool) "rto fired repeatedly" true (Tcp_sender.timeouts t >= 2);
  Alcotest.(check bool) "cwnd collapsed" true (Tcp_sender.cwnd t <= 2.1)

let test_tcp_pacing_spreads_sends () =
  let engine = Engine.create () in
  let open Pcc_net in
  let sends = ref [] in
  let cfg = Tcp_sender.default_config (Newreno.make ()) in
  let cfg = { cfg with Tcp_sender.pacing = true; initial_rtt = 0.1 } in
  let t =
    Tcp_sender.create engine cfg
      ~out:(fun p -> sends := (Engine.now engine, p) :: !sends)
      ()
  in
  (Tcp_sender.sender t).Sender.start ();
  ignore t;
  Engine.run ~until:0.09 engine;
  (* With cwnd=2 and srtt=0.1, pacing sends one packet every 50 ms instead
     of a 2-packet burst at t=0. *)
  match List.rev !sends with
  | (t0, _) :: (t1, _) :: _ ->
    Alcotest.(check (float 1e-9)) "first immediate" 0. t0;
    Alcotest.(check (float 1e-3)) "second spaced" 0.05 t1
  | _ -> Alcotest.fail "expected at least 2 sends"

let suites =
  [
    ( "tcp.rtt_estimator",
      [
        Alcotest.test_case "first sample" `Quick test_rtt_first_sample;
        Alcotest.test_case "smoothing" `Quick test_rtt_smoothing;
        Alcotest.test_case "min rto floor" `Quick test_rtt_min_rto_floor;
        Alcotest.test_case "backoff" `Quick test_rtt_backoff;
      ] );
    ( "tcp.variants",
      [
        Alcotest.test_case "newreno slow start" `Quick test_newreno_slow_start;
        Alcotest.test_case "newreno avoidance" `Quick
          test_newreno_congestion_avoidance;
        Alcotest.test_case "newreno loss" `Quick test_newreno_halves_on_loss;
        Alcotest.test_case "min cwnd floor" `Quick test_min_cwnd_floor;
        Alcotest.test_case "cubic beta" `Quick test_cubic_beta_reduction;
        Alcotest.test_case "cubic recovery" `Quick
          test_cubic_growth_accelerates_past_wmax;
        Alcotest.test_case "hybla rho" `Quick test_hybla_rho_scaling;
        Alcotest.test_case "hybla short rtt" `Quick
          test_hybla_short_rtt_behaves_like_reno;
        Alcotest.test_case "illinois alpha" `Quick
          test_illinois_alpha_depends_on_delay;
        Alcotest.test_case "illinois beta" `Quick
          test_illinois_beta_depends_on_delay;
        Alcotest.test_case "vegas target" `Quick test_vegas_holds_at_target;
        Alcotest.test_case "vegas backoff" `Quick test_vegas_backs_off_queueing;
        Alcotest.test_case "bic search" `Quick test_bic_binary_search;
        Alcotest.test_case "westwood cut" `Quick
          test_westwood_bandwidth_based_cut;
        Alcotest.test_case "fast fixed point" `Quick
          test_fast_holds_alpha_packets_queued;
        Alcotest.test_case "fast baseRTT misestimate" `Quick
          test_fast_misled_by_baseline_misestimate;
        Alcotest.test_case "highspeed scaling" `Quick
          test_highspeed_scales_with_window;
        Alcotest.test_case "registry" `Quick test_registry;
      ] );
    ( "tcp.sender",
      [
        Alcotest.test_case "fills clean link" `Quick test_tcp_fills_clean_link;
        Alcotest.test_case "slow start" `Quick test_tcp_slow_start_doubles;
        Alcotest.test_case "fast retransmit" `Quick
          test_tcp_fast_retransmit_on_loss;
        Alcotest.test_case "finite transfer" `Quick
          test_tcp_finite_transfer_completes;
        Alcotest.test_case "timeout on blackhole" `Quick
          test_tcp_timeout_on_blackhole;
        Alcotest.test_case "pacing" `Quick test_tcp_pacing_spreads_sends;
      ] );
  ]
