open Pcc_core

let test_loss_function () =
  Alcotest.(check (float 1e-9)) "no overload" 0. (Game.loss ~c:100. [| 40.; 50. |]);
  Alcotest.(check (float 1e-9)) "overload" 0.2
    (Game.loss ~c:80. [| 50.; 50. |]);
  Alcotest.(check bool) "bad capacity" true
    (try
       ignore (Game.loss ~c:0. [| 1. |]);
       false
     with Invalid_argument _ -> true)

let test_throughput () =
  Alcotest.(check (float 1e-9)) "goodput scales" 40.
    (Game.throughput ~c:80. [| 50.; 50. |] 0)

let test_utility_sign () =
  (* Under capacity, positive; deep overload, negative (sigmoid + loss). *)
  Alcotest.(check bool) "positive under capacity" true
    (Game.utility ~c:100. [| 30.; 30. |] 0 > 0.);
  Alcotest.(check bool) "negative in deep overload" true
    (Game.utility ~c:100. [| 150.; 150. |] 0 < 0.)

let test_dynamics_converge_fair () =
  let c = 100. in
  let x0 = [| 90.; 10. |] in
  let final, _ = Game.run ~c x0 in
  Alcotest.(check bool) "fair" true (Game.converged_fairly ~tol:0.05 final);
  let total = Array.fold_left ( +. ) 0. final in
  Alcotest.(check bool) "Theorem 1 band" true
    (total > c *. 0.97 && total < c *. 20. /. 19. *. 1.03)

let test_dynamics_from_tiny_rates () =
  let c = 100. in
  let x0 = [| 0.1; 0.1; 0.1 |] in
  let final, _ = Game.run ~c x0 in
  Alcotest.(check bool) "climbs to capacity" true
    (Array.fold_left ( +. ) 0. final > c *. 0.95)

let test_equilibrium_rate_matches_dynamics () =
  let c = 100. and n = 5 in
  let predicted = Game.equilibrium_rate ~n ~c () in
  let final, _ = Game.run ~c (Array.make n 1.) in
  let mean = Array.fold_left ( +. ) 0. final /. float_of_int n in
  Alcotest.(check bool) "within 5%" true
    (Float.abs (mean -. predicted) /. predicted < 0.05)

let test_equilibrium_rate_in_band () =
  List.iter
    (fun n ->
      let x_hat = Game.equilibrium_rate ~n ~c:100. () in
      let total = x_hat *. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d inside (C, 20C/19)" n)
        true
        (total > 100. && total < 100. *. 20. /. 19.))
    [ 2; 5; 10; 30 ]

let test_converged_fairly () =
  Alcotest.(check bool) "equal" true (Game.converged_fairly [| 5.; 5.; 5. |]);
  Alcotest.(check bool) "unequal" false (Game.converged_fairly [| 9.; 1. |]);
  Alcotest.(check bool) "empty" true (Game.converged_fairly [||])

let prop_dynamics_converge_from_random_states =
  QCheck.Test.make ~name:"Theorem 2: dynamics converge fair from any state"
    ~count:25
    QCheck.(pair (int_range 2 8) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Pcc_sim.Rng.create seed in
      let x0 =
        Array.init n (fun _ -> Pcc_sim.Rng.log_uniform rng 0.5 200.)
      in
      let final, _ = Game.run ~c:100. ~max_steps:12000 x0 in
      Game.converged_fairly ~tol:0.1 final)

let prop_loss_bounded =
  QCheck.Test.make ~name:"loss in [0,1)" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 10) (float_range 0.01 1000.))
    (fun rates ->
      let l = Game.loss ~c:50. (Array.of_list rates) in
      l >= 0. && l < 1.)

let q = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "pcc.game",
      [
        Alcotest.test_case "loss" `Quick test_loss_function;
        Alcotest.test_case "throughput" `Quick test_throughput;
        Alcotest.test_case "utility sign" `Quick test_utility_sign;
        Alcotest.test_case "converges fair" `Quick test_dynamics_converge_fair;
        Alcotest.test_case "climbs from tiny" `Quick test_dynamics_from_tiny_rates;
        Alcotest.test_case "equilibrium matches dynamics" `Quick
          test_equilibrium_rate_matches_dynamics;
        Alcotest.test_case "equilibrium in Theorem-1 band" `Quick
          test_equilibrium_rate_in_band;
        Alcotest.test_case "fairness predicate" `Quick test_converged_fairly;
        q prop_dynamics_converge_from_random_states;
        q prop_loss_bounded;
      ] );
  ]
