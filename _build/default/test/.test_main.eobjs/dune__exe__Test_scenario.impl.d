test/test_scenario.ml: Alcotest Array Engine Float Internet_model Path Pcc_metrics Pcc_net Pcc_scenario Pcc_sim Rng Transport Units
