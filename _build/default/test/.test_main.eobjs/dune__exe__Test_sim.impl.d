test/test_sim.ml: Alcotest Array Engine Event_heap Float List Pcc_sim QCheck QCheck_alcotest Rng Units
