test/test_net.ml: Alcotest Delay_line Engine Link List Packet Pcc_net Pcc_sim QCheck QCheck_alcotest Queue_disc Rate_pacer Receiver Rng Scoreboard Units
