test/test_utility.ml: Alcotest Float Pcc_core QCheck QCheck_alcotest Utility
