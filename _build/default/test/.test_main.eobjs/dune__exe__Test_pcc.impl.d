test/test_pcc.ml: Alcotest Array Controller Engine List Monitor Pcc_core Pcc_net Pcc_scenario Pcc_sim QCheck QCheck_alcotest Rng Units Utility
