test/test_metrics.ml: Alcotest Array Convergence Engine Gen Pcc_metrics Pcc_sim QCheck QCheck_alcotest Recorder Stats
