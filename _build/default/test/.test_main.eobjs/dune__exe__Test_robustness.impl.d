test/test_robustness.ml: Alcotest Array Engine List Path Pcc_metrics Pcc_net Pcc_scenario Pcc_sim QCheck QCheck_alcotest Rng Transport Units
