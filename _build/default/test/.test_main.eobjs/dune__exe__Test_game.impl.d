test/test_game.ml: Alcotest Array Float Game Gen List Pcc_core Pcc_sim Printf QCheck QCheck_alcotest
