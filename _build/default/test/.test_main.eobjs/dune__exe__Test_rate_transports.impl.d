test/test_rate_transports.ml: Alcotest Array Cross_traffic Dynamics Engine Path Pcc_net Pcc_scenario Pcc_sim Rng Transport Units
