test/test_queue.ml: Alcotest Hashtbl List Option Packet Pcc_net Pcc_sim QCheck QCheck_alcotest Queue_disc
