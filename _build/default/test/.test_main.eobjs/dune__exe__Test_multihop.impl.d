test/test_multihop.ml: Alcotest Array Engine Multihop Pcc_net Pcc_scenario Pcc_sim Rng Transport Units
