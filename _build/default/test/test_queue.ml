open Pcc_net

let data ?(flow = 1) ?(size = 1500) ~now seq =
  Packet.data ~flow ~seq ~size ~now ~retx:false

(* ------------------------------------------------------------------ *)
(* DropTail *)

let test_droptail_fifo () =
  let q = Queue_disc.droptail_bytes ~capacity:15000 () in
  for seq = 0 to 4 do
    Alcotest.(check bool) "accepted" true (q.Queue_disc.enqueue ~now:0. (data ~now:0. seq))
  done;
  Alcotest.(check int) "bytes" 7500 (q.Queue_disc.len_bytes ());
  Alcotest.(check int) "pkts" 5 (q.Queue_disc.len_pkts ());
  let out = List.init 5 (fun _ ->
      match q.Queue_disc.dequeue ~now:1. with
      | Some p -> p.Packet.seq
      | None -> -1)
  in
  Alcotest.(check (list int)) "fifo order" [ 0; 1; 2; 3; 4 ] out

let test_droptail_capacity () =
  let q = Queue_disc.droptail_bytes ~capacity:3000 () in
  Alcotest.(check bool) "fits" true (q.Queue_disc.enqueue ~now:0. (data ~now:0. 0));
  Alcotest.(check bool) "fits" true (q.Queue_disc.enqueue ~now:0. (data ~now:0. 1));
  Alcotest.(check bool) "full" false (q.Queue_disc.enqueue ~now:0. (data ~now:0. 2));
  Alcotest.(check int) "drop counted" 1 (q.Queue_disc.drops ())

let test_droptail_min_one_packet () =
  (* A sub-MSS capacity is clamped so one packet can always be buffered. *)
  let q = Queue_disc.droptail_bytes ~capacity:10 () in
  Alcotest.(check bool) "one packet fits" true
    (q.Queue_disc.enqueue ~now:0. (data ~now:0. 0))

let test_droptail_pkts () =
  let q = Queue_disc.droptail_pkts ~capacity:2 () in
  Alcotest.(check bool) "1" true (q.Queue_disc.enqueue ~now:0. (data ~now:0. 0));
  Alcotest.(check bool) "2" true (q.Queue_disc.enqueue ~now:0. (data ~now:0. 1));
  Alcotest.(check bool) "3 dropped" false (q.Queue_disc.enqueue ~now:0. (data ~now:0. 2))

let test_infinite_never_drops () =
  let q = Queue_disc.infinite () in
  for seq = 0 to 9999 do
    Alcotest.(check bool) "accepted" true (q.Queue_disc.enqueue ~now:0. (data ~now:0. seq))
  done;
  Alcotest.(check int) "no drops" 0 (q.Queue_disc.drops ())

(* ------------------------------------------------------------------ *)
(* CoDel *)

let test_codel_low_delay_passthrough () =
  let q = Queue_disc.codel ~capacity:1_000_000 () in
  (* Sojourn under the 5 ms target: CoDel never drops. *)
  for seq = 0 to 99 do
    ignore (q.Queue_disc.enqueue ~now:(float_of_int seq *. 0.001) (data ~now:0. seq))
  done;
  let delivered = ref 0 in
  for i = 0 to 99 do
    match q.Queue_disc.dequeue ~now:(0.002 +. (float_of_int i *. 0.001)) with
    | Some _ -> incr delivered
    | None -> ()
  done;
  Alcotest.(check int) "all pass" 100 !delivered;
  Alcotest.(check int) "no drops" 0 (q.Queue_disc.drops ())

let test_codel_drops_on_persistent_delay () =
  let q = Queue_disc.codel ~capacity:10_000_000 () in
  (* Fill a standing queue, then dequeue far later so sojourn stays far
     above target for well over an interval. *)
  for seq = 0 to 499 do
    ignore (q.Queue_disc.enqueue ~now:0. (data ~now:0. seq))
  done;
  let delivered = ref 0 in
  let now = ref 0.5 in
  for _ = 0 to 499 do
    (match q.Queue_disc.dequeue ~now:!now with
    | Some _ -> incr delivered
    | None -> ());
    now := !now +. 0.002
  done;
  Alcotest.(check bool) "some dropped" true (q.Queue_disc.drops () > 0);
  Alcotest.(check bool) "not everything dropped" true (!delivered > 300)

let test_codel_recovers_when_queue_drains () =
  let q = Queue_disc.codel ~capacity:1_000_000 () in
  for seq = 0 to 99 do
    ignore (q.Queue_disc.enqueue ~now:0. (data ~now:0. seq))
  done;
  let now = ref 0.3 in
  let continue = ref true in
  while !continue do
    match q.Queue_disc.dequeue ~now:!now with
    | Some _ -> now := !now +. 0.001
    | None -> continue := false
  done;
  let drops_before = q.Queue_disc.drops () in
  (* Fresh traffic with low sojourn is not dropped. *)
  ignore (q.Queue_disc.enqueue ~now:!now (data ~now:!now 1000));
  (match q.Queue_disc.dequeue ~now:(!now +. 0.001) with
  | Some p -> Alcotest.(check int) "fresh packet delivered" 1000 p.Packet.seq
  | None -> Alcotest.fail "fresh packet dropped");
  Alcotest.(check int) "no new drops" drops_before (q.Queue_disc.drops ())

(* ------------------------------------------------------------------ *)
(* RED *)

let test_red_accepts_when_empty () =
  let q = Queue_disc.red ~capacity:100_000 () in
  Alcotest.(check bool) "accepted" true (q.Queue_disc.enqueue ~now:0. (data ~now:0. 0))

let test_red_drops_under_sustained_load () =
  let q = Queue_disc.red ~capacity:150_000 () in
  (* Keep the average queue between the thresholds long enough for the
     probabilistic dropping to engage. *)
  let accepted = ref 0 in
  for seq = 0 to 999 do
    if q.Queue_disc.enqueue ~now:0. (data ~now:0. seq) then incr accepted;
    if seq mod 3 = 0 then ignore (q.Queue_disc.dequeue ~now:0.)
  done;
  Alcotest.(check bool) "red dropped some" true (q.Queue_disc.drops () > 0);
  Alcotest.(check bool) "red passed a fair share" true (!accepted > 300)

(* ------------------------------------------------------------------ *)
(* FQ / DRR *)

let test_fq_round_robin_fair () =
  let q =
    Queue_disc.fq
      ~per_flow:(fun () -> Queue_disc.droptail_bytes ~capacity:1_000_000 ())
      ()
  in
  (* Flow 1 floods, flow 2 offers a little; service alternates. *)
  for seq = 0 to 99 do
    ignore (q.Queue_disc.enqueue ~now:0. (data ~flow:1 ~now:0. seq))
  done;
  for seq = 0 to 9 do
    ignore (q.Queue_disc.enqueue ~now:0. (data ~flow:2 ~now:0. (1000 + seq)))
  done;
  let first20 =
    List.init 20 (fun _ ->
        match q.Queue_disc.dequeue ~now:0. with
        | Some p -> p.Packet.flow
        | None -> -1)
  in
  let f1 = List.length (List.filter (fun f -> f = 1) first20) in
  let f2 = List.length (List.filter (fun f -> f = 2) first20) in
  Alcotest.(check int) "flow1 half" 10 f1;
  Alcotest.(check int) "flow2 half" 10 f2

let test_fq_work_conserving () =
  let q =
    Queue_disc.fq
      ~per_flow:(fun () -> Queue_disc.droptail_bytes ~capacity:1_000_000 ())
      ()
  in
  for seq = 0 to 4 do
    ignore (q.Queue_disc.enqueue ~now:0. (data ~flow:7 ~now:0. seq))
  done;
  let served = ref 0 in
  let continue = ref true in
  while !continue do
    match q.Queue_disc.dequeue ~now:0. with
    | Some _ -> incr served
    | None -> continue := false
  done;
  Alcotest.(check int) "single backlogged flow gets everything" 5 !served

let test_fq_unequal_packet_sizes () =
  let q =
    Queue_disc.fq
      ~per_flow:(fun () -> Queue_disc.droptail_bytes ~capacity:1_000_000 ())
      ()
  in
  (* Flow 1 sends MSS packets, flow 2 sends 300-byte packets; DRR should
     give each roughly equal BYTES, i.e. ~5 small packets per big one. *)
  for seq = 0 to 19 do
    ignore (q.Queue_disc.enqueue ~now:0. (data ~flow:1 ~size:1500 ~now:0. seq))
  done;
  for seq = 0 to 99 do
    ignore (q.Queue_disc.enqueue ~now:0. (data ~flow:2 ~size:300 ~now:0. (1000 + seq)))
  done;
  let bytes = Hashtbl.create 4 in
  for _ = 1 to 60 do
    match q.Queue_disc.dequeue ~now:0. with
    | Some p ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt bytes p.Packet.flow) in
      Hashtbl.replace bytes p.Packet.flow (cur + p.Packet.size)
    | None -> ()
  done;
  let b1 = Option.value ~default:0 (Hashtbl.find_opt bytes 1) in
  let b2 = Option.value ~default:0 (Hashtbl.find_opt bytes 2) in
  let ratio = float_of_int b1 /. float_of_int (max 1 b2) in
  Alcotest.(check bool) "byte fairness" true (ratio > 0.7 && ratio < 1.4)

let test_fq_drops_in_overloaded_subqueue_only () =
  let q =
    Queue_disc.fq
      ~per_flow:(fun () -> Queue_disc.droptail_bytes ~capacity:4500 ())
      ()
  in
  for seq = 0 to 9 do
    ignore (q.Queue_disc.enqueue ~now:0. (data ~flow:1 ~now:0. seq))
  done;
  Alcotest.(check bool) "other flow unaffected" true
    (q.Queue_disc.enqueue ~now:0. (data ~flow:2 ~now:0. 100));
  Alcotest.(check int) "drops only from flow1" 7 (q.Queue_disc.drops ())

let prop_droptail_never_exceeds_capacity =
  QCheck.Test.make ~name:"droptail occupancy <= capacity" ~count:200
    QCheck.(pair (int_range 1500 100000) (list (int_range 0 100)))
    (fun (capacity, ops) ->
      let q = Queue_disc.droptail_bytes ~capacity () in
      let capacity = max capacity Pcc_sim.Units.mss in
      List.for_all
        (fun seq ->
          if seq mod 4 = 0 then ignore (q.Queue_disc.dequeue ~now:0.)
          else ignore (q.Queue_disc.enqueue ~now:0. (data ~now:0. seq));
          q.Queue_disc.len_bytes () <= capacity)
        ops)

let q = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "queue.droptail",
      [
        Alcotest.test_case "fifo" `Quick test_droptail_fifo;
        Alcotest.test_case "capacity" `Quick test_droptail_capacity;
        Alcotest.test_case "min one packet" `Quick test_droptail_min_one_packet;
        Alcotest.test_case "packet limit" `Quick test_droptail_pkts;
        Alcotest.test_case "infinite" `Quick test_infinite_never_drops;
        q prop_droptail_never_exceeds_capacity;
      ] );
    ( "queue.codel",
      [
        Alcotest.test_case "low delay passthrough" `Quick
          test_codel_low_delay_passthrough;
        Alcotest.test_case "drops on persistent delay" `Quick
          test_codel_drops_on_persistent_delay;
        Alcotest.test_case "recovers after drain" `Quick
          test_codel_recovers_when_queue_drains;
      ] );
    ( "queue.red",
      [
        Alcotest.test_case "accepts when empty" `Quick test_red_accepts_when_empty;
        Alcotest.test_case "drops under load" `Quick
          test_red_drops_under_sustained_load;
      ] );
    ( "queue.fq",
      [
        Alcotest.test_case "round robin fair" `Quick test_fq_round_robin_fair;
        Alcotest.test_case "work conserving" `Quick test_fq_work_conserving;
        Alcotest.test_case "byte fairness" `Quick test_fq_unequal_packet_sizes;
        Alcotest.test_case "per-flow isolation" `Quick
          test_fq_drops_in_overloaded_subqueue_only;
      ] );
  ]
