open Pcc_sim
open Pcc_scenario

let mbps_of flow duration =
  float_of_int (Multihop.goodput_bytes flow * 8) /. duration /. 1e6

let test_single_hop_equivalent () =
  (* One hop behaves like a plain bottleneck link. *)
  let engine = Engine.create () in
  let rng = Rng.create 2 in
  let net =
    Multihop.build engine ~rng
      ~hops:[ Multihop.hop ~bandwidth:(Units.mbps 50.) ~delay:0.01 () ]
      ~flows:[ Multihop.flow ~enter:0 ~exit:1 (Transport.pcc ()) ]
      ()
  in
  Engine.run ~until:15. engine;
  Alcotest.(check bool) "fills the hop" true
    (mbps_of (Multihop.flows net).(0) 15. > 40.)

let test_flow_bounded_by_narrowest_hop () =
  let engine = Engine.create () in
  let rng = Rng.create 2 in
  let net =
    Multihop.build engine ~rng
      ~hops:
        [
          Multihop.hop ~bandwidth:(Units.mbps 100.) ();
          Multihop.hop ~bandwidth:(Units.mbps 20.) ();
          Multihop.hop ~bandwidth:(Units.mbps 100.) ();
        ]
      ~flows:[ Multihop.flow ~enter:0 ~exit:3 (Transport.pcc ()) ]
      ()
  in
  Engine.run ~until:20. engine;
  let tput = mbps_of (Multihop.flows net).(0) 20. in
  Alcotest.(check bool) "bounded by 20 Mbps hop" true (tput < 21.);
  Alcotest.(check bool) "but fills it" true (tput > 15.)

let test_cross_flows_compete_per_hop () =
  (* A long flow over two hops shares each hop with a local flow. The
     long flow observes the SUM of both hops' loss rates, so the safe
     utility — whose sigmoid caps tolerable loss at 5% — concedes most of
     the capacity to the single-hop locals. (A known property of
     loss-based objectives across multiple bottlenecks; the paper only
     evaluates single-bottleneck topologies.) We assert the qualitative
     outcome: locals prosper, the long flow is squeezed but alive, and no
     hop is oversubscribed. *)
  let engine = Engine.create () in
  let rng = Rng.create 9 in
  let net =
    Multihop.build engine ~rng
      ~hops:
        [
          Multihop.hop ~bandwidth:(Units.mbps 30.) ();
          Multihop.hop ~bandwidth:(Units.mbps 30.) ();
        ]
      ~flows:
        [
          Multihop.flow ~enter:0 ~exit:2 ~label:"long" (Transport.pcc ());
          Multihop.flow ~enter:0 ~exit:1 ~label:"hop0" (Transport.pcc ());
          Multihop.flow ~enter:1 ~exit:2 ~label:"hop1" (Transport.pcc ());
        ]
      ()
  in
  (* Measure after convergence. *)
  Engine.run ~until:40. engine;
  let b0 = Array.map Multihop.goodput_bytes (Multihop.flows net) in
  Engine.run ~until:80. engine;
  let share i =
    float_of_int ((Multihop.goodput_bytes (Multihop.flows net).(i)) - b0.(i))
    *. 8. /. 40. /. 1e6
  in
  let long = share 0 and h0 = share 1 and h1 = share 2 in
  Alcotest.(check bool) "hop capacities respected" true
    (long +. h0 < 31. && long +. h1 < 31.);
  Alcotest.(check bool) "long flow squeezed but alive" true (long > 0.1);
  Alcotest.(check bool) "locals dominate" true
    (h0 > 3. *. long && h1 > 3. *. long);
  Alcotest.(check bool) "local flows fill their hops" true (h0 > 20. && h1 > 20.)

let test_bad_args_rejected () =
  let engine = Engine.create () in
  let rng = Rng.create 1 in
  Alcotest.(check bool) "empty chain" true
    (try
       ignore (Multihop.build engine ~rng ~hops:[] ~flows:[] ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad exit" true
    (try
       ignore
         (Multihop.build engine ~rng
            ~hops:[ Multihop.hop ~bandwidth:(Units.mbps 10.) () ]
            ~flows:[ Multihop.flow ~enter:0 ~exit:2 (Transport.pcc ()) ]
            ());
       false
     with Invalid_argument _ -> true)

let test_finite_transfer_across_hops () =
  let engine = Engine.create () in
  let rng = Rng.create 4 in
  let net =
    Multihop.build engine ~rng
      ~hops:
        [
          Multihop.hop ~bandwidth:(Units.mbps 20.) ~loss:0.01 ();
          Multihop.hop ~bandwidth:(Units.mbps 20.) ~loss:0.01 ();
        ]
      ~flows:
        [
          Multihop.flow ~enter:0 ~exit:2 ~size:(200 * Units.mss)
            (Transport.pcc ());
        ]
      ()
  in
  Engine.run ~until:60. engine;
  let f = (Multihop.flows net).(0) in
  Alcotest.(check bool) "completes across lossy hops" true
    (f.Multihop.sender.Pcc_net.Sender.is_complete ());
  Alcotest.(check bool) "fct recorded" true (f.Multihop.fct <> None)

let suites =
  [
    ( "scenario.multihop",
      [
        Alcotest.test_case "single hop" `Slow test_single_hop_equivalent;
        Alcotest.test_case "narrowest hop binds" `Slow
          test_flow_bounded_by_narrowest_hop;
        Alcotest.test_case "per-hop competition" `Slow
          test_cross_flows_compete_per_hop;
        Alcotest.test_case "bad args" `Quick test_bad_args_rejected;
        Alcotest.test_case "finite transfer" `Slow
          test_finite_transfer_across_hops;
      ] );
  ]
