open Pcc_experiments

(* Tiny-scale runs of every experiment driver: the point is that each one
   executes, produces well-formed rows and — where cheap enough — shows
   the paper's qualitative ordering. Full-scale numbers come from
   bench/main.exe. *)

let test_loss_rows () =
  let rows = Exp_loss.run ~scale:0.05 ~losses:[ 0.0; 0.01 ] () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "throughputs positive" true
        (r.Exp_loss.pcc > 0. && r.Exp_loss.cubic > 0.))
    rows;
  (* At 1% loss PCC must dominate CUBIC. *)
  let lossy = List.nth rows 1 in
  Alcotest.(check bool) "pcc wins at 1%" true
    (lossy.Exp_loss.pcc > 2. *. lossy.Exp_loss.cubic)

let test_satellite_rows () =
  let rows = Exp_satellite.run ~scale:0.15 ~buffers:[ 30000 ] () in
  match rows with
  | [ r ] ->
    Alcotest.(check bool) "pcc above hybla" true
      (r.Exp_satellite.pcc > r.Exp_satellite.hybla)
  | _ -> Alcotest.fail "one row expected"

let test_buffer_rows () =
  let rows = Exp_buffer.run ~scale:0.1 ~buffers:[ 9000 ] () in
  match rows with
  | [ r ] ->
    Alcotest.(check bool) "pcc beats cubic at 6 MSS" true
      (r.Exp_buffer.pcc > r.Exp_buffer.cubic)
  | _ -> Alcotest.fail "one row expected"

let test_interdc_rows () =
  let rows = Exp_interdc.run ~scale:0.05 () in
  Alcotest.(check int) "nine pairs" 9 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "pcc >= cubic" true
        (r.Exp_interdc.pcc >= r.Exp_interdc.cubic))
    rows

let test_internet_summary () =
  let results = Exp_internet.run ~scale:0.1 ~pairs:4 () in
  Alcotest.(check int) "four pairs" 4 (List.length results);
  let summaries = Exp_internet.summarize results in
  Alcotest.(check int) "three baselines" 3 (List.length summaries);
  List.iter
    (fun s ->
      Alcotest.(check bool) "median ratio finite+positive" true
        (s.Exp_internet.median_ratio > 0.))
    summaries

let test_incast_rows () =
  let rows = Exp_incast.run ~scale:0.15 ~senders:[ 15 ] ~blocks:[ 65536 ] () in
  match rows with
  | [ r ] ->
    Alcotest.(check bool) "pcc goodput positive" true (r.Exp_incast.pcc > 0.);
    Alcotest.(check bool) "pcc beats tcp under incast" true
      (r.Exp_incast.pcc > r.Exp_incast.tcp)
  | _ -> Alcotest.fail "one row expected"

let test_dynamic_rows () =
  let rows, series = Exp_dynamic.run ~scale:0.1 () in
  Alcotest.(check int) "three protocols" 3 (List.length rows);
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool) (name ^ " series nonempty") true (s <> []))
    series;
  let pcc = List.find (fun r -> r.Exp_dynamic.protocol = "pcc") rows in
  let cubic = List.find (fun r -> r.Exp_dynamic.protocol = "cubic") rows in
  Alcotest.(check bool) "pcc tracks better" true
    (pcc.Exp_dynamic.fraction > cubic.Exp_dynamic.fraction)

let test_fct_rows () =
  let rows = Exp_fct.run ~scale:0.25 ~loads:[ 0.25 ] () in
  Alcotest.(check int) "two protocols" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "flows completed" true (r.Exp_fct.completed > 3);
      Alcotest.(check bool) "median sane" true
        (r.Exp_fct.median > 0.05 && r.Exp_fct.median < 10.))
    rows

let test_friendliness_rows () =
  let rows =
    Exp_friendliness.run ~scale:0.15 ~selfish_counts:[ 1 ] ()
  in
  Alcotest.(check int) "four configs" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "tcp survives both" true
        (r.Exp_friendliness.tcp_vs_pcc > 0.
        && r.Exp_friendliness.tcp_vs_bundle > 0.))
    rows

let test_high_loss_rows () =
  let rows = Exp_high_loss.run ~scale:0.2 ~losses:[ 0.3 ] () in
  match rows with
  | [ r ] ->
    Alcotest.(check bool) "resilient utility pushes through 30% loss" true
      (r.Exp_high_loss.pcc_resilient
      > 0.5 *. r.Exp_high_loss.achievable);
    Alcotest.(check bool) "resilient >> cubic" true
      (r.Exp_high_loss.pcc_resilient > 5. *. r.Exp_high_loss.cubic)
  | _ -> Alcotest.fail "one row expected"

let test_game_rows () =
  let rows = Exp_game.run ~ns:[ 2; 5 ] () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "fair" true (r.Exp_game.jain > 0.98);
      Alcotest.(check bool) "theorem-1 band" true
        (r.Exp_game.total_over_c > 0.98
        && r.Exp_game.total_over_c < 20. /. 19. *. 1.02))
    rows

let test_ablation_rows () =
  let rows = Exp_ablation.run ~scale:0.1 () in
  Alcotest.(check int) "eight rows" 8 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "positive" true (r.Exp_ablation.throughput > 0.))
    rows

let test_tables_render () =
  (* Rendering must not raise for any experiment's table. *)
  let t = Exp_game.table (Exp_game.run ~ns:[ 2 ] ()) in
  Alcotest.(check bool) "has rows" true (t.Exp_common.rows <> []);
  Exp_common.print_table t

let suites =
  [
    ( "experiments.scaled",
      [
        Alcotest.test_case "fig7 loss" `Slow test_loss_rows;
        Alcotest.test_case "fig6 satellite" `Slow test_satellite_rows;
        Alcotest.test_case "fig9 buffer" `Slow test_buffer_rows;
        Alcotest.test_case "table1 interdc" `Slow test_interdc_rows;
        Alcotest.test_case "fig5 internet" `Slow test_internet_summary;
        Alcotest.test_case "fig10 incast" `Slow test_incast_rows;
        Alcotest.test_case "fig11 dynamic" `Slow test_dynamic_rows;
        Alcotest.test_case "fig15 fct" `Slow test_fct_rows;
        Alcotest.test_case "fig14 friendliness" `Slow test_friendliness_rows;
        Alcotest.test_case "sec4.4.2 high loss" `Slow test_high_loss_rows;
        Alcotest.test_case "theorems game" `Quick test_game_rows;
        Alcotest.test_case "ablation" `Slow test_ablation_rows;
        Alcotest.test_case "tables render" `Quick test_tables_render;
      ] );
  ]
