open Pcc_sim
open Pcc_core

(* ------------------------------------------------------------------ *)
(* Monitor *)

(* Drive a monitor by hand: a fake clock via engine events, sends charged
   explicitly, acks delivered explicitly. *)

let fixed_rate _r ~id:_ = Units.mbps 10.

let make_monitor ?(rate_for_mi = fixed_rate ()) ?(cfg = Monitor.default_config)
    engine =
  let results = ref [] in
  let losses = ref [] in
  let mon =
    Monitor.create engine cfg ~rng:(Rng.create 3) ~utility:(Utility.safe ())
      ~rate_for_mi
      ~on_result:(fun r -> results := r :: !results)
      ~on_mi_losses:(fun l -> losses := l @ !losses)
  in
  (mon, results, losses)

let test_monitor_mi_lifecycle () =
  let engine = Engine.create () in
  let mon, results, _ = make_monitor engine in
  Monitor.start mon;
  Alcotest.(check int) "first MI open" 0 (Monitor.current_mi_id mon);
  (* Send 20 packets and ack them all with a 10 ms RTT. *)
  for seq = 0 to 19 do
    Monitor.on_send mon ~seq ~size:Units.mss
  done;
  ignore
    (Engine.schedule engine ~at:0.01 (fun () ->
         for seq = 0 to 19 do
           Monitor.on_ack mon ~seq ~rtt:(Some 0.01) ~size:Units.mss
         done));
  Engine.run ~until:2. engine;
  Monitor.stop mon;
  Engine.run ~until:5. engine;
  match List.rev !results with
  | r :: _ ->
    Alcotest.(check int) "id 0" 0 r.Monitor.id;
    Alcotest.(check int) "sent" 20 r.Monitor.sent_pkts;
    Alcotest.(check int) "acked" 20 r.Monitor.acked_pkts;
    Alcotest.(check (float 1e-9)) "no loss" 0. r.Monitor.loss;
    (match r.Monitor.avg_rtt with
    | Some v -> Alcotest.(check (float 1e-6)) "avg rtt" 0.01 v
    | None -> Alcotest.fail "expected rtt")
  | [] -> Alcotest.fail "no result"

let test_monitor_loss_accounting () =
  let engine = Engine.create () in
  let mon, results, losses = make_monitor engine in
  Monitor.start mon;
  for seq = 0 to 9 do
    Monitor.on_send mon ~seq ~size:Units.mss
  done;
  (* Ack only even sequences. *)
  ignore
    (Engine.schedule engine ~at:0.01 (fun () ->
         for seq = 0 to 9 do
           if seq mod 2 = 0 then
             Monitor.on_ack mon ~seq ~rtt:(Some 0.01) ~size:Units.mss
         done));
  Monitor.stop mon;
  Engine.run ~until:10. engine;
  (match List.rev !results with
  | r :: _ -> Alcotest.(check (float 1e-9)) "half lost" 0.5 r.Monitor.loss
  | [] -> Alcotest.fail "no result");
  Alcotest.(check (list int)) "unacked reported lost" [ 1; 3; 5; 7; 9 ]
    (List.sort compare !losses)

let test_monitor_on_lost_resolves_early () =
  let engine = Engine.create () in
  let mon, results, _ = make_monitor engine in
  Monitor.start mon;
  Monitor.on_send mon ~seq:0 ~size:Units.mss;
  Monitor.on_send mon ~seq:1 ~size:Units.mss;
  ignore
    (Engine.schedule engine ~at:0.01 (fun () ->
         Monitor.on_ack mon ~seq:0 ~rtt:(Some 0.01) ~size:Units.mss;
         (* Gap detection resolves seq 1 as lost without waiting. *)
         Monitor.on_lost mon ~seq:1));
  Monitor.stop mon;
  Engine.run ~until:0.1 engine;
  (* The MI should have evaluated promptly (all packets resolved), well
     before the fallback deadline. *)
  match List.rev !results with
  | r :: _ ->
    Alcotest.(check int) "acked" 1 r.Monitor.acked_pkts;
    Alcotest.(check (float 1e-9)) "loss 50%" 0.5 r.Monitor.loss
  | [] -> Alcotest.fail "expected prompt evaluation"

let test_monitor_results_in_order () =
  let engine = Engine.create () in
  let mon, results, _ = make_monitor engine in
  Monitor.start mon;
  (* Let several MIs roll over naturally with no traffic; empty MIs
     evaluate immediately at close. *)
  Engine.run ~until:2. engine;
  Monitor.stop mon;
  Engine.run ~until:3. engine;
  let ids = List.rev_map (fun r -> r.Monitor.id) !results in
  let sorted = List.sort compare ids in
  Alcotest.(check (list int)) "in id order" sorted ids;
  Alcotest.(check bool) "several MIs" true (List.length ids >= 3)

let test_monitor_realign_discards_fragment () =
  let engine = Engine.create () in
  let mon, results, losses = make_monitor engine in
  Monitor.start mon;
  Monitor.on_send mon ~seq:0 ~size:Units.mss;
  let id_before = Monitor.current_mi_id mon in
  Monitor.realign mon;
  Alcotest.(check int) "new MI" (id_before + 1) (Monitor.current_mi_id mon);
  Monitor.stop mon;
  Engine.run ~until:5. engine;
  (* The fragment (id 0) must not produce a result or loss report. *)
  Alcotest.(check bool) "fragment discarded" true
    (not (List.exists (fun r -> r.Monitor.id = id_before) !results));
  Alcotest.(check (list int)) "no phantom losses" [] !losses

let test_monitor_duration_respects_min_pkts () =
  (* At 1 Mbps the 10-packet send time (120 ms) exceeds 2.2 RTT (66 ms):
     the MI stretches toward the packet floor but the stretch is capped
     at 4 RTT. *)
  let engine = Engine.create () in
  let seen = ref [] in
  let rate_for_mi ~id:_ =
    seen := Engine.now engine :: !seen;
    Units.mbps 1.
  in
  let cfg = { Monitor.default_config with Monitor.initial_rtt = 0.03 } in
  let mon, _, _ = make_monitor ~rate_for_mi ~cfg engine in
  Monitor.start mon;
  Engine.run ~until:1. engine;
  Monitor.stop mon;
  match List.rev !seen with
  | t0 :: t1 :: _ ->
    let d = t1 -. t0 in
    Alcotest.(check bool) "MI stretched past 2.2 RTT" true (d >= 0.066);
    Alcotest.(check bool) "stretch capped at 4 RTT" true (d <= 0.121)
  | _ -> Alcotest.fail "expected at least two MIs"

(* ------------------------------------------------------------------ *)
(* Controller *)

let result ~id ~rate ~utility =
  Monitor.
    {
      id;
      rate;
      start_time = 0.;
      duration = 0.05;
      sent_pkts = 100;
      acked_pkts = 100;
      sent_bytes = 100 * 1500;
      acked_bytes = 100 * 1500;
      loss = 0.;
      avg_rtt = Some 0.03;
      prev_avg_rtt = Some 0.03;
      utility;
    }

let test_controller_starting_doubles () =
  let ctl = Controller.create ~rng:(Rng.create 1) () in
  let r0 = Controller.rate_for_mi ctl ~id:0 in
  let r1 = Controller.rate_for_mi ctl ~id:1 in
  let r2 = Controller.rate_for_mi ctl ~id:2 in
  Alcotest.(check (float 1e-6)) "doubles" (r0 *. 2.) r1;
  Alcotest.(check (float 1e-6)) "doubles again" (r1 *. 2.) r2;
  Alcotest.(check bool) "still starting" true (Controller.phase ctl = Controller.Starting)

let test_controller_starting_exits_on_utility_drop () =
  let ctl = Controller.create ~rng:(Rng.create 1) () in
  let r0 = Controller.rate_for_mi ctl ~id:0 in
  let r1 = Controller.rate_for_mi ctl ~id:1 in
  let r2 = Controller.rate_for_mi ctl ~id:2 in
  Controller.on_result ctl (result ~id:0 ~rate:r0 ~utility:10.);
  (* A single utility fall does not end the startup (noise tolerance)... *)
  Controller.on_result ctl (result ~id:1 ~rate:r1 ~utility:5.);
  Alcotest.(check bool) "one fall tolerated" true
    (Controller.phase ctl = Controller.Starting);
  (* ...but a second consecutive fall exits to the best rate seen. *)
  Controller.on_result ctl (result ~id:2 ~rate:r2 ~utility:4.);
  Alcotest.(check bool) "entered decision" true
    (Controller.phase ctl = Controller.Decision);
  Alcotest.(check (float 1e-6)) "reverted to best rate" r0
    (Controller.rate ctl)

let test_controller_starting_tolerates_noise_blip () =
  let ctl = Controller.create ~rng:(Rng.create 1) () in
  let rates = List.init 5 (fun id -> (id, Controller.rate_for_mi ctl ~id)) in
  (* Utilities: rising, one blip down, rising again — startup survives. *)
  let utilities = [ 1.; 2.; 1.5; 4.; 8. ] in
  List.iter2
    (fun (id, rate) u -> Controller.on_result ctl (result ~id ~rate ~utility:u))
    rates utilities;
  Alcotest.(check bool) "still starting" true
    (Controller.phase ctl = Controller.Starting)

let feed_decision ctl ~base ~up_u ~down_u ~first_id =
  (* Consume the four trial MIs and answer them. *)
  let ids = List.init 4 (fun i -> first_id + i) in
  let rates = List.map (fun id -> (id, Controller.rate_for_mi ctl ~id)) ids in
  List.iter
    (fun (id, r) ->
      let u = if r > base then up_u else down_u in
      Controller.on_result ctl (result ~id ~rate:r ~utility:u))
    rates

let to_decision ctl =
  (* Drive Starting into Decision with two consecutive utility drops;
     subsequent MI ids start at 3. *)
  let r0 = Controller.rate_for_mi ctl ~id:0 in
  let r1 = Controller.rate_for_mi ctl ~id:1 in
  let r2 = Controller.rate_for_mi ctl ~id:2 in
  Controller.on_result ctl (result ~id:0 ~rate:r0 ~utility:10.);
  Controller.on_result ctl (result ~id:1 ~rate:r1 ~utility:5.);
  Controller.on_result ctl (result ~id:2 ~rate:r2 ~utility:4.);
  Controller.rate ctl

let test_controller_decision_moves_up () =
  let ctl = Controller.create ~rng:(Rng.create 1) () in
  let base = to_decision ctl in
  feed_decision ctl ~base ~up_u:10. ~down_u:5. ~first_id:3;
  Alcotest.(check bool) "adjusting" true
    (Controller.phase ctl = Controller.Adjusting);
  Alcotest.(check bool) "rate increased" true (Controller.rate ctl > base)

let test_controller_decision_moves_down () =
  let ctl = Controller.create ~rng:(Rng.create 1) () in
  let base = to_decision ctl in
  feed_decision ctl ~base ~up_u:5. ~down_u:10. ~first_id:3;
  Alcotest.(check bool) "rate decreased" true (Controller.rate ctl < base)

let test_controller_inconclusive_grows_eps () =
  let ctl = Controller.create ~rng:(Rng.create 1) () in
  let base = to_decision ctl in
  let eps0 = Controller.eps ctl in
  (* Make the two pairs disagree: answer by id parity instead of rate. *)
  let ids = List.init 4 (fun i -> 3 + i) in
  let rates = List.map (fun id -> (id, Controller.rate_for_mi ctl ~id)) ids in
  List.iteri
    (fun i (id, r) ->
      let u = if i < 2 then (if r > base then 10. else 5.)
              else if r > base then 5. else 10. in
      Controller.on_result ctl (result ~id ~rate:r ~utility:u))
    rates;
  Alcotest.(check bool) "still decision" true
    (Controller.phase ctl = Controller.Decision);
  Alcotest.(check (float 1e-9)) "eps grew" (eps0 +. 0.01) (Controller.eps ctl);
  Alcotest.(check (float 1e-6)) "rate unchanged" base (Controller.rate ctl);
  Alcotest.(check int) "decision counted" 1 (Controller.decisions ctl)

let test_controller_rct_randomizes_order () =
  (* Across many controllers, the first trial MI should sometimes be the
     up rate and sometimes the down rate. *)
  let ups = ref 0 in
  for seed = 1 to 40 do
    let ctl = Controller.create ~rng:(Rng.create seed) () in
    let base = to_decision ctl in
    let r = Controller.rate_for_mi ctl ~id:3 in
    if r > base then incr ups
  done;
  Alcotest.(check bool) "order randomized" true (!ups > 5 && !ups < 35)

let test_controller_adjusting_accelerates_and_reverts () =
  let ctl = Controller.create ~rng:(Rng.create 1) () in
  let base = to_decision ctl in
  feed_decision ctl ~base ~up_u:10. ~down_u:5. ~first_id:3;
  let r1 = Controller.rate ctl in
  (* Confirm step 1 with rising utility: the controller plans step 2. *)
  Controller.on_result ctl (result ~id:7 ~rate:(Controller.rate_for_mi ctl ~id:7) ~utility:20.);
  let r2 = Controller.rate ctl in
  Alcotest.(check bool) "accelerating" true (r2 > r1);
  (* Two consecutive falling utilities revert to the last good rate. *)
  Controller.on_result ctl (result ~id:8 ~rate:(Controller.rate_for_mi ctl ~id:8) ~utility:1.);
  Alcotest.(check bool) "single fall holds" true
    (Controller.phase ctl = Controller.Adjusting);
  Controller.on_result ctl (result ~id:9 ~rate:(Controller.rate_for_mi ctl ~id:9) ~utility:0.5);
  Alcotest.(check bool) "second fall reverts to decision" true
    (Controller.phase ctl = Controller.Decision);
  Alcotest.(check bool) "reverted below the failed rate" true
    (Controller.rate ctl < r2)

let test_controller_stale_results_ignored () =
  let ctl = Controller.create ~rng:(Rng.create 1) () in
  let r0 = Controller.rate_for_mi ctl ~id:0 in
  let r1 = Controller.rate_for_mi ctl ~id:1 in
  let r2 = Controller.rate_for_mi ctl ~id:2 in
  let r3 = Controller.rate_for_mi ctl ~id:3 in
  Controller.on_result ctl (result ~id:0 ~rate:r0 ~utility:10.);
  Controller.on_result ctl (result ~id:1 ~rate:r1 ~utility:5.);
  Controller.on_result ctl (result ~id:2 ~rate:r2 ~utility:4.);
  (* id 3 was planned by the Starting phase; its late result must not
     perturb the Decision state. *)
  let base = Controller.rate ctl in
  Controller.on_result ctl (result ~id:3 ~rate:r3 ~utility:1000.);
  Alcotest.(check (float 1e-6)) "unperturbed" base (Controller.rate ctl);
  Alcotest.(check bool) "still decision" true
    (Controller.phase ctl = Controller.Decision)

let test_controller_min_rate_floor () =
  (* A floor above the initial rate clamps the very first plan. *)
  let config =
    {
      Controller.default_config with
      Controller.min_rate = Units.mbps 5.;
      init_rate = Units.mbps 1.;
    }
  in
  let ctl = Controller.create ~config ~rng:(Rng.create 1) () in
  Alcotest.(check bool) "base clamped up" true
    (Controller.rate ctl >= Units.mbps 5.);
  Alcotest.(check bool) "planned rates clamped" true
    (Controller.rate_for_mi ctl ~id:0 >= Units.mbps 5.)

let test_controller_max_rate_ceiling () =
  let config =
    { Controller.default_config with Controller.max_rate = Units.mbps 2. }
  in
  let ctl = Controller.create ~config ~rng:(Rng.create 1) () in
  (* Doubling forever cannot exceed the ceiling. *)
  let last = ref 0. in
  for id = 0 to 20 do
    last := Controller.rate_for_mi ctl ~id
  done;
  Alcotest.(check bool) "ceiling holds" true (!last <= Units.mbps 2. +. 1.)

let prop_controller_rate_bounded =
  QCheck.Test.make
    ~name:"controller rate stays within [min_rate, max_rate] under any            result stream"
    ~count:100
    QCheck.(pair small_int (list (pair (float_range (-50.) 200.) bool)))
    (fun (seed, events) ->
      let config =
        {
          Controller.default_config with
          Controller.min_rate = Units.mbps 1.;
          max_rate = Units.mbps 500.;
          init_rate = Units.mbps 2.;
        }
      in
      let ctl = Controller.create ~config ~rng:(Rng.create seed) () in
      let id = ref 0 in
      List.for_all
        (fun (utility, deliver) ->
          let mi = !id in
          incr id;
          let rate = Controller.rate_for_mi ctl ~id:mi in
          if deliver then Controller.on_result ctl (result ~id:mi ~rate ~utility);
          rate >= Units.mbps 1. -. 1.
          && rate <= Units.mbps 500. +. 1.
          && Controller.rate ctl >= Units.mbps 1. -. 1.
          && Controller.rate ctl <= Units.mbps 500. +. 1.)
        events)

let prop_controller_trials_bracket_base =
  QCheck.Test.make
    ~name:"decision trials stay within (1±eps_max) of the base rate"
    ~count:60
    QCheck.small_int
    (fun seed ->
      let ctl = Controller.create ~rng:(Rng.create seed) () in
      let base = to_decision ctl in
      let ok = ref true in
      for mi = 3 to 6 do
        let r = Controller.rate_for_mi ctl ~id:mi in
        let ratio = r /. base in
        if ratio < 1. -. 0.051 || ratio > 1. +. 0.051 then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Pcc_sender end-to-end basics (detailed scenarios live in
   test_scenario.ml) *)

let test_pcc_sender_completes_transfer () =
  let engine = Engine.create () in
  let rng = Rng.create 8 in
  let path =
    Pcc_scenario.Path.build engine ~rng ~bandwidth:(Units.mbps 20.) ~rtt:0.02
      ~buffer:(Units.kib 64) ~loss:0.03
      ~flows:
        [
          Pcc_scenario.Path.flow ~size:(300 * Units.mss)
            (Pcc_scenario.Transport.pcc ());
        ]
      ()
  in
  Engine.run ~until:60. engine;
  let f = (Pcc_scenario.Path.flows path).(0) in
  Alcotest.(check bool) "complete despite 3% loss" true
    (f.Pcc_scenario.Path.sender.Pcc_net.Sender.is_complete ())

let test_pcc_sender_stop_silences () =
  let engine = Engine.create () in
  let rng = Rng.create 8 in
  let path =
    Pcc_scenario.Path.build engine ~rng ~bandwidth:(Units.mbps 20.) ~rtt:0.02
      ~buffer:(Units.kib 64)
      ~flows:[ Pcc_scenario.Path.flow ~stop_at:1. (Pcc_scenario.Transport.pcc ()) ]
      ()
  in
  Engine.run ~until:1.2 engine;
  let f = (Pcc_scenario.Path.flows path).(0) in
  let sent = f.Pcc_scenario.Path.sender.Pcc_net.Sender.sent_pkts () in
  Engine.run ~until:3. engine;
  Alcotest.(check int) "no sends after stop"
    sent
    (f.Pcc_scenario.Path.sender.Pcc_net.Sender.sent_pkts ())

let suites =
  [
    ( "pcc.monitor",
      [
        Alcotest.test_case "mi lifecycle" `Quick test_monitor_mi_lifecycle;
        Alcotest.test_case "loss accounting" `Quick test_monitor_loss_accounting;
        Alcotest.test_case "on_lost resolves early" `Quick
          test_monitor_on_lost_resolves_early;
        Alcotest.test_case "results in order" `Quick test_monitor_results_in_order;
        Alcotest.test_case "realign discards fragment" `Quick
          test_monitor_realign_discards_fragment;
        Alcotest.test_case "min pkts duration" `Quick
          test_monitor_duration_respects_min_pkts;
      ] );
    ( "pcc.controller",
      [
        Alcotest.test_case "starting doubles" `Quick test_controller_starting_doubles;
        Alcotest.test_case "starting exit" `Quick
          test_controller_starting_exits_on_utility_drop;
        Alcotest.test_case "starting noise blip" `Quick
          test_controller_starting_tolerates_noise_blip;
        Alcotest.test_case "decision up" `Quick test_controller_decision_moves_up;
        Alcotest.test_case "decision down" `Quick test_controller_decision_moves_down;
        Alcotest.test_case "inconclusive eps" `Quick
          test_controller_inconclusive_grows_eps;
        Alcotest.test_case "rct random order" `Quick
          test_controller_rct_randomizes_order;
        Alcotest.test_case "adjusting ladder" `Quick
          test_controller_adjusting_accelerates_and_reverts;
        Alcotest.test_case "stale ignored" `Quick test_controller_stale_results_ignored;
        Alcotest.test_case "min rate floor" `Quick test_controller_min_rate_floor;
        Alcotest.test_case "max rate ceiling" `Quick test_controller_max_rate_ceiling;
        QCheck_alcotest.to_alcotest prop_controller_rate_bounded;
        QCheck_alcotest.to_alcotest prop_controller_trials_bracket_base;
      ] );
    ( "pcc.sender",
      [
        Alcotest.test_case "transfer completes" `Slow
          test_pcc_sender_completes_transfer;
        Alcotest.test_case "stop silences" `Quick test_pcc_sender_stop_silences;
      ] );
  ]
