open Pcc_metrics

let test_mean_var () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [| 1.; 2.; 3. |]);
  Alcotest.(check (float 1e-9)) "empty mean" 0. (Stats.mean [||]);
  Alcotest.(check (float 1e-9)) "variance" (2. /. 3.)
    (Stats.variance [| 1.; 2.; 3. |]);
  Alcotest.(check (float 1e-9)) "stddev of constant" 0.
    (Stats.stddev [| 5.; 5.; 5. |])

let test_percentiles () =
  let a = [| 4.; 1.; 3.; 2.; 5. |] in
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.median a);
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.percentile a 0.);
  Alcotest.(check (float 1e-9)) "p100" 5. (Stats.percentile a 100.);
  Alcotest.(check (float 1e-9)) "p25" 2. (Stats.percentile a 25.);
  (* Interpolation between order statistics. *)
  Alcotest.(check (float 1e-9)) "p90" 4.6 (Stats.percentile a 90.);
  Alcotest.(check bool) "empty raises" true
    (try
       ignore (Stats.percentile [||] 50.);
       false
     with Invalid_argument _ -> true)

let test_min_max_cdf () =
  let a = [| 3.; 1.; 2. |] in
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.minimum a);
  Alcotest.(check (float 1e-9)) "max" 3. (Stats.maximum a);
  match Stats.cdf_points a with
  | [ (1., f1); (2., f2); (3., f3) ] ->
    Alcotest.(check (float 1e-9)) "f1" (1. /. 3.) f1;
    Alcotest.(check (float 1e-9)) "f2" (2. /. 3.) f2;
    Alcotest.(check (float 1e-9)) "f3" 1. f3
  | _ -> Alcotest.fail "unexpected cdf"

let test_jain () =
  Alcotest.(check (float 1e-9)) "equal = 1" 1. (Stats.jain_index [| 5.; 5. |]);
  Alcotest.(check (float 1e-9)) "one hog = 1/n" 0.25
    (Stats.jain_index [| 1.; 0.; 0.; 0. |]);
  Alcotest.(check (float 1e-9)) "empty" 1. (Stats.jain_index [||])

let test_convergence_time () =
  (* Steps to 10 at t=3 and stays. *)
  let series =
    Array.init 20 (fun i ->
        (float_of_int i, if i >= 3 then 10. else 1.))
  in
  (match Convergence.convergence_time ~ideal:10. series with
  | Some t -> Alcotest.(check (float 1e-9)) "t=3" 3. t
  | None -> Alcotest.fail "should converge");
  (* A blip inside the window defers convergence. *)
  let series2 =
    Array.init 20 (fun i ->
        (float_of_int i, if i = 6 then 1. else if i >= 3 then 10. else 1.))
  in
  (match Convergence.convergence_time ~ideal:10. series2 with
  | Some t -> Alcotest.(check (float 1e-9)) "after blip" 7. t
  | None -> Alcotest.fail "should converge");
  Alcotest.(check (option (float 0.))) "never converges" None
    (Convergence.convergence_time ~ideal:10.
       (Array.init 20 (fun i -> (float_of_int i, 1.))))

let test_convergence_tolerance () =
  let series = Array.init 10 (fun i -> (float_of_int i, 8.)) in
  (* 8 is within ±25% of 10. *)
  (match Convergence.convergence_time ~ideal:10. series with
  | Some t -> Alcotest.(check (float 1e-9)) "immediately" 0. t
  | None -> Alcotest.fail "within tolerance");
  Alcotest.(check (option (float 0.))) "tighter tolerance fails" None
    (Convergence.convergence_time ~tolerance:0.1 ~ideal:10. series)

let test_stddev_after () =
  let series = Array.init 10 (fun i -> (float_of_int i, float_of_int i)) in
  Alcotest.(check (float 1e-9)) "window [2,4]" (Stats.stddev [| 2.; 3.; 4. |])
    (Convergence.stddev_after ~from:2. ~duration:3. series)

let test_jain_over_timescale () =
  (* Two flows alternating 10/0 and 0/10 every second: unfair at 1 s,
     perfectly fair at 2 s. *)
  let f1 = Array.init 20 (fun i -> (float_of_int i, if i mod 2 = 0 then 10. else 0.)) in
  let f2 = Array.init 20 (fun i -> (float_of_int i, if i mod 2 = 1 then 10. else 0.)) in
  let j1 = Convergence.jain_over_timescale ~timescale:1. [ f1; f2 ] in
  let j2 = Convergence.jain_over_timescale ~timescale:2. [ f1; f2 ] in
  Alcotest.(check (float 1e-9)) "unfair at fine scale" 0.5 j1;
  Alcotest.(check (float 1e-9)) "fair at coarse scale" 1. j2

let test_recorder () =
  let open Pcc_sim in
  let engine = Engine.create () in
  let counter = ref 0. in
  ignore
    (Engine.schedule engine ~at:0.25 (fun () -> counter := 100.));
  ignore
    (Engine.schedule engine ~at:1.25 (fun () -> counter := 300.));
  let r = Recorder.create engine ~interval:0.5 (fun () -> !counter) in
  ignore (Engine.schedule engine ~at:3. (fun () -> Recorder.stop r));
  Engine.run engine;
  let samples = Recorder.samples r in
  Alcotest.(check bool) "sampled" true (Array.length samples >= 4);
  let rates = Recorder.rates r in
  (* Between t=1.0 and t=1.5 the counter moved 200 -> rate 400/s. *)
  let _, rate_at_1_5 = rates.(1) in
  Alcotest.(check (float 1e-9)) "windowed rate" 400. rate_at_1_5;
  let bps = Recorder.rates_bps r in
  Alcotest.(check (float 1e-9)) "bps scaling" (400. *. 8.) (snd bps.(1))

let prop_jain_bounds =
  QCheck.Test.make ~name:"Jain index in (0,1]" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.001 1000.))
    (fun l ->
      let j = Stats.jain_index (Array.of_list l) in
      j > 0. && j <= 1. +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles monotone" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 30) (float_range (-100.) 100.))
    (fun l ->
      let a = Array.of_list l in
      Stats.percentile a 10. <= Stats.percentile a 50.
      && Stats.percentile a 50. <= Stats.percentile a 90.)

let q = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "metrics.stats",
      [
        Alcotest.test_case "mean/var" `Quick test_mean_var;
        Alcotest.test_case "percentiles" `Quick test_percentiles;
        Alcotest.test_case "min/max/cdf" `Quick test_min_max_cdf;
        Alcotest.test_case "jain" `Quick test_jain;
        q prop_jain_bounds;
        q prop_percentile_monotone;
      ] );
    ( "metrics.convergence",
      [
        Alcotest.test_case "convergence time" `Quick test_convergence_time;
        Alcotest.test_case "tolerance" `Quick test_convergence_tolerance;
        Alcotest.test_case "stddev after" `Quick test_stddev_after;
        Alcotest.test_case "jain over timescale" `Quick test_jain_over_timescale;
      ] );
    ( "metrics.recorder",
      [ Alcotest.test_case "windowed rates" `Quick test_recorder ] );
  ]
