(* Quickstart: one PCC flow on a 100 Mbps, 30 ms link with 0.5% random
   loss — the scenario where TCP collapses and PCC does not.

     dune exec examples/quickstart.exe                                     *)

open Pcc_sim
open Pcc_scenario

let () =
  let engine = Engine.create () in
  let rng = Rng.create 42 in
  let bandwidth = Units.mbps 100. and rtt = 0.03 in

  (* Build a single-bottleneck path carrying one PCC flow. The transport
     uses the paper's defaults: safe utility, monitor intervals of
     max(10 pkts, U[1.7,2.2]*RTT), eps in [0.01,0.05] with RCTs. *)
  let path =
    Path.build engine ~rng ~bandwidth ~rtt
      ~buffer:(Units.bdp_bytes ~rate:bandwidth ~rtt)
      ~loss:0.005
      ~flows:[ Path.flow (Transport.pcc ()) ]
      ()
  in
  let flow = (Path.flows path).(0) in

  Printf.printf "PCC on a 100 Mbps / 30 ms link with 0.5%% random loss\n";
  Printf.printf "%6s %12s %14s\n" "time" "goodput" "controller rate";
  let last = ref 0 in
  for second = 1 to 20 do
    Engine.run ~until:(float_of_int second) engine;
    let bytes = Path.goodput_bytes flow in
    Printf.printf "%5ds %9.2f Mbps %11.2f Mbps\n" second
      (float_of_int ((bytes - !last) * 8) /. 1e6)
      (flow.Path.sender.Pcc_net.Sender.rate_estimate () /. 1e6);
    last := bytes
  done;
  Printf.printf
    "\nA loss-hardwired TCP would sit at a few Mbps here (try the same\n\
     scenario with (Transport.tcp \"cubic\") to compare).\n"
