examples/custom_utility.ml: Array Engine Float Path Pcc_core Pcc_net Pcc_scenario Pcc_sender Pcc_sim Printf Rng Transport Units Utility
