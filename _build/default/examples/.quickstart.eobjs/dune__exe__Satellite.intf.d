examples/satellite.mli:
