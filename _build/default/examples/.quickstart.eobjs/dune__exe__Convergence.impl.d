examples/convergence.ml: Array Engine List Path Pcc_metrics Pcc_scenario Pcc_sim Printf Rng Transport Units
