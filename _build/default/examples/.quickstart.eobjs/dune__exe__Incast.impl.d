examples/incast.ml: Array Engine Float List Path Pcc_scenario Pcc_sim Printf Rng Transport Units
