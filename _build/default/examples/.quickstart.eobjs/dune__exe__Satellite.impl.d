examples/satellite.ml: Array Engine Path Pcc_scenario Pcc_sim Printf Rng Transport Units
