examples/incast.mli:
