examples/quickstart.ml: Array Engine Path Pcc_net Pcc_scenario Pcc_sim Printf Rng Transport Units
