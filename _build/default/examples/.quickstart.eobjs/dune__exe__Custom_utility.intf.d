examples/custom_utility.mli:
