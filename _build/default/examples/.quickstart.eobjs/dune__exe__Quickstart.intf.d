examples/quickstart.mli:
