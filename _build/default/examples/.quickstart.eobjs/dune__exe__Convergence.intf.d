examples/convergence.mli:
