(* Pluggable utility functions (§2.4/§4.4): the same PCC machinery
   optimizing three different objectives on the same bufferbloated link.

   - the safe (throughput) utility fills the pipe and tolerates the queue;
   - the latency utility sacrifices a sliver of throughput to keep the
     queue — and therefore the RTT — near the propagation floor;
   - a custom application objective ("at least 10 Mbps, then minimize
     delay") shows the escape hatch.

     dune exec examples/custom_utility.exe                                 *)

open Pcc_sim
open Pcc_core
open Pcc_scenario

let run name utility =
  let engine = Engine.create () in
  let rng = Rng.create 12 in
  let config = Pcc_sender.config_with ~utility () in
  let path =
    Path.build engine ~rng ~bandwidth:(Units.mbps 40.) ~rtt:0.02
      ~buffer:(Units.mib 1) (* deep, bufferbloat-prone FIFO *)
      ~flows:[ Path.flow (Transport.pcc ~config ()) ]
      ()
  in
  let flow = (Path.flows path).(0) in
  (* Skip the 10 s startup transient, then measure 30 s. *)
  Engine.run ~until:10. engine;
  let b0 = Path.goodput_bytes flow in
  let rtt_sum = ref 0. in
  for i = 1 to 30 do
    Engine.run ~until:(10. +. float_of_int i) engine;
    rtt_sum := !rtt_sum +. flow.Path.sender.Pcc_net.Sender.srtt ()
  done;
  let tput = float_of_int ((Path.goodput_bytes flow - b0) * 8) /. 30. in
  let rtt = !rtt_sum /. 30. in
  Printf.printf "%-22s %6.2f Mbps  avg RTT %6.1f ms  (base 20 ms)\n" name
    (tput /. 1e6) (rtt *. 1e3)

let () =
  Printf.printf
    "One PCC stack, three objectives (40 Mbps link, 20 ms RTT, 1 MB FIFO)\n\n";
  run "safe (throughput)" (Utility.safe ());
  run "latency (power)" (Utility.latency ());
  (* Custom: full marks for the first 10 Mbps, then latency rules. *)
  let app_objective m =
    let open Utility in
    let mbps = m.throughput /. 1e6 in
    let base = Float.min mbps 10. in
    let extra = Float.max 0. (mbps -. 10.) in
    base +. (extra *. 0.02 /. Float.max m.avg_rtt 1e-3 /. 50.)
    -. (m.rate /. 1e6 *. m.loss)
  in
  run "custom (10 Mbps floor)" (Utility.custom ~name:"app" app_objective)
