(* Fairness and stability of competing flows (§4.2, Fig. 12): four PCC
   flows join a 100 Mbps dumbbell one after another; each incumbent
   yields until all four share the link equally — no router help, purely
   from the utility function's equilibrium (Theorem 1).

     dune exec examples/convergence.exe                                    *)

open Pcc_sim
open Pcc_scenario

let () =
  let engine = Engine.create () in
  let rng = Rng.create 5 in
  let bandwidth = Units.mbps 100. and rtt = 0.03 in
  let stagger = 120. in
  let flows = 4 in
  let path =
    Path.build engine ~rng ~bandwidth ~rtt
      ~buffer:(Units.bdp_bytes ~rate:bandwidth ~rtt)
      ~flows:
        (List.init flows (fun i ->
             Path.flow
               ~start_at:(float_of_int i *. stagger)
               ~label:(Printf.sprintf "flow%d" (i + 1))
               (Transport.pcc ())))
      ()
  in
  let fs = Path.flows path in
  let last = Array.make flows 0 in
  Printf.printf "Four PCC flows joining every %.0f s on a 100 Mbps dumbbell\n\n"
    stagger;
  Printf.printf "%6s %10s %10s %10s %10s %8s\n" "time" "flow1" "flow2" "flow3"
    "flow4" "Jain";
  let horizon = int_of_float (float_of_int flows *. stagger) in
  for t = 1 to horizon / 10 do
    Engine.run ~until:(float_of_int (t * 10)) engine;
    let rates =
      Array.mapi
        (fun i f ->
          let b = Path.goodput_bytes f in
          let r = float_of_int ((b - last.(i)) * 8) /. 10. /. 1e6 in
          last.(i) <- b;
          r)
        fs
    in
    let active = Array.of_list (List.filter (fun r -> r > 0.5) (Array.to_list rates)) in
    Printf.printf "%5ds %9.1fM %9.1fM %9.1fM %9.1fM %8.3f\n" (t * 10)
      rates.(0) rates.(1) rates.(2) rates.(3)
      (Pcc_metrics.Stats.jain_index active)
  done;
  Printf.printf
    "\nEach join re-converges to the new fair share; the Jain index across\n\
     active flows returns to ~1 (compare Fig. 12/13 of the paper).\n"
