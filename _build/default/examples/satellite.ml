(* Satellite scenario (§4.1.3): the WINDS link — 42 Mbps, 800 ms RTT,
   0.74% random loss, shallow buffer — where even the purpose-built TCP
   Hybla barely moves data. Runs PCC and Hybla side by side (each solo).

     dune exec examples/satellite.exe                                      *)

open Pcc_sim
open Pcc_scenario

let run name spec =
  let engine = Engine.create () in
  let rng = Rng.create 7 in
  let path =
    Path.build engine ~rng ~bandwidth:(Units.mbps 42.) ~rtt:0.8 ~loss:0.0074
      ~buffer:30_000 (* a 20-packet buffer: tiny relative to the 4.2 MB BDP *)
      ~flows:[ Path.flow spec ]
      ()
  in
  let flow = (Path.flows path).(0) in
  Engine.run ~until:100. engine;
  let tput = float_of_int (Path.goodput_bytes flow * 8) /. 100. in
  Printf.printf "%-10s %6.2f Mbps  (%.0f%% of the 42 Mbps link)\n" name
    (tput /. 1e6)
    (tput /. Units.mbps 42. *. 100.);
  tput

let () =
  Printf.printf
    "Satellite link: 42 Mbps, 800 ms RTT, 0.74%% loss, 20-packet buffer\n";
  Printf.printf "100-second solo transfers:\n\n";
  let pcc = run "PCC" (Transport.pcc ()) in
  let hybla = run "TCP Hybla" (Transport.tcp "hybla") in
  let cubic = run "TCP CUBIC" (Transport.tcp "cubic") in
  Printf.printf "\nPCC/Hybla = %.1fx, PCC/CUBIC = %.1fx (paper: 17x vs Hybla)\n"
    (pcc /. hybla) (pcc /. cubic)
