(* Data-center incast (§4.1.8): 30 senders answer a barrier-synchronized
   request with 128 KB each over a 1 Gbps fabric with a shallow switch
   buffer. TCP collapses on 200 ms RTO stalls; PCC keeps the link busy.

     dune exec examples/incast.exe                                         *)

open Pcc_sim
open Pcc_scenario

let round name spec =
  let engine = Engine.create () in
  let rng = Rng.create 3 in
  let senders = 30 and block = 128 * 1024 in
  let jitter = Rng.create 4 in
  let path =
    Path.build engine ~rng ~bandwidth:(Units.gbps 1.) ~rtt:0.0001
      ~buffer:65536
      ~flows:
        (List.init senders (fun _ ->
             Path.flow ~start_at:(Rng.uniform jitter 0. 0.0005) ~size:block spec))
      ()
  in
  Engine.run ~until:5. engine;
  let worst =
    Array.fold_left
      (fun acc f ->
        match f.Path.fct with Some fct -> Float.max acc fct | None -> 5.0)
      0. (Path.flows path)
  in
  let goodput = float_of_int (senders * block * 8) /. worst in
  Printf.printf "%-6s all %d responses in %6.1f ms -> %7.1f Mbps goodput\n"
    name senders (worst *. 1e3) (goodput /. 1e6);
  goodput

let () =
  Printf.printf
    "Incast: 30 senders x 128 KB to one receiver, 1 Gbps, 64 KB buffer\n\n";
  let pcc = round "PCC" (Transport.pcc ()) in
  let tcp = round "TCP" (Transport.tcp "newreno") in
  Printf.printf "\nPCC/TCP goodput ratio: %.1fx (paper: 7-8x with >=10 senders)\n"
    (pcc /. tcp)
