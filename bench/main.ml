(* Reproduction harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index), plus bechamel
   micro-benchmarks of the simulator's hot paths.

   Usage:
     dune exec bench/main.exe                 -- all experiments, default scale
     dune exec bench/main.exe -- --scale 1.0  -- paper-length runs
     dune exec bench/main.exe -- --only fig7,fig9
     dune exec bench/main.exe -- --jobs 4     -- fan out over 4 domains
     dune exec bench/main.exe -- --micro      -- bechamel micro-benchmarks
     dune exec bench/main.exe -- --controllers -- controller-family section
     dune exec bench/main.exe -- --list

   Experiment runs write a machine-readable BENCH_pcc.json (see --out and
   README.md for the schema). With --jobs N > 1 each experiment is also
   re-run sequentially to measure the speedup and to assert that the
   parallel output is byte-identical to the sequential one.

   Set PCC_DUMP_DIR=<dir> to also write the fig11/fig12 time series as
   CSVs for external plotting.                                              *)

open Pcc_experiments

let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the simulator's hot paths. *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let engine_bench () =
    (* Schedule-and-drain a small event cascade. *)
    let engine = Pcc_sim.Engine.create () in
    let n = ref 0 in
    for i = 1 to 100 do
      ignore
        (Pcc_sim.Engine.schedule engine
           ~at:(float_of_int i *. 1e-3)
           (fun () -> incr n))
    done;
    Pcc_sim.Engine.run engine
  in
  let engine_drain_bench () =
    (* A 10k-event drain: the steady-state run loop without callbacks
       scheduling more work, i.e. pure pop + dispatch cost. *)
    let engine = Pcc_sim.Engine.create () in
    let n = ref 0 in
    for i = 1 to 10_000 do
      ignore
        (Pcc_sim.Engine.schedule engine
           ~at:(float_of_int (i * 7919 mod 10_000) *. 1e-4)
           (fun () -> incr n))
    done;
    Pcc_sim.Engine.run engine
  in
  let heap_bench () =
    let h = Pcc_sim.Event_heap.create () in
    for i = 0 to 99 do
      ignore (Pcc_sim.Event_heap.push h ~time:(float_of_int (i * 7919 mod 100)) i)
    done;
    while Pcc_sim.Event_heap.pop h <> None do
      ()
    done
  in
  let heap_churn_bench () =
    (* Timer-wheel-like churn: push, cancel half (as rescheduled timers
       do), pop the survivors. Exercises the lazy-deletion path. *)
    let h = Pcc_sim.Event_heap.create () in
    let handles =
      Array.init 256 (fun i ->
          Pcc_sim.Event_heap.push h ~time:(float_of_int (i * 7919 mod 256)) i)
    in
    Array.iteri
      (fun i han -> if i land 1 = 0 then Pcc_sim.Event_heap.cancel han)
      handles;
    while Pcc_sim.Event_heap.pop h <> None do
      ()
    done
  in
  let rng = Pcc_sim.Rng.create 1 in
  let rng_bench () = ignore (Pcc_sim.Rng.float rng) in
  let utility = Pcc_core.Utility.safe () in
  let metrics =
    Pcc_core.Utility.
      {
        rate = 1e8;
        throughput = 9.5e7;
        loss = 0.01;
        samples = 500;
        avg_rtt = 0.03;
        prev_avg_rtt = 0.03;
        rtt_early = 0.03;
        rtt_late = 0.031;
        min_rtt = 0.03;
        rtt_samples = 500;
        prev_class = -1;
      }
  in
  let utility_bench () = ignore (utility.Pcc_core.Utility.eval metrics) in
  let sim_second_bench () =
    (* One simulated second of a PCC flow on a 20 Mbps link. *)
    let engine = Pcc_sim.Engine.create () in
    let rng = Pcc_sim.Rng.create 11 in
    let _path =
      Pcc_scenario.Path.build engine ~rng
        ~bandwidth:(Pcc_sim.Units.mbps 20.) ~rtt:0.02
        ~buffer:(Pcc_sim.Units.kib 64)
        ~flows:[ Pcc_scenario.Path.flow (Pcc_scenario.Transport.pcc ()) ]
        ()
    in
    Pcc_sim.Engine.run ~until:1.0 engine
  in
  let tests =
    [
      Test.make ~name:"engine: 100-event cascade" (Staged.stage engine_bench);
      Test.make ~name:"engine: 10k-event drain" (Staged.stage engine_drain_bench);
      Test.make ~name:"event_heap: 100 push+pop" (Staged.stage heap_bench);
      Test.make ~name:"event_heap: 256 push+cancel+pop churn"
        (Staged.stage heap_churn_bench);
      Test.make ~name:"rng: one float" (Staged.stage rng_bench);
      Test.make ~name:"utility: one safe eval" (Staged.stage utility_bench);
      Test.make ~name:"pcc: 1 simulated second @20Mbps"
        (Staged.stage sim_second_bench);
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  Printf.printf "\n== micro-benchmarks (bechamel, monotonic clock) ==\n";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "%-40s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        results)
    tests;
  flush stdout

(* ------------------------------------------------------------------ *)
(* Scheduler micro-benchmarks (--sched): the heap and the timing wheel
   on the same synthetic workloads, at pending counts where their
   asymptotics separate. Methodology: build the pending set, Gc.compact,
   then time only the steady-state loop; the heap and wheel variants are
   written out separately (no closure indirection) so each backend is
   measured at its real call cost. All loops use the allocation-free
   [pop_cb] path — the one the engine dispatch loop runs on.

   Absolute ratios are machine-dependent: the heap's sift loops are
   cache-miss-bound, so a CPU with an L3 large enough to hold a
   million-entry key array (hundreds of MB on big server parts) shows
   smaller wheel-vs-heap ratios than a desktop-class cache does. *)

module EH = Pcc_sim.Event_heap
module TW = Pcc_sim.Timing_wheel

type sched_record = {
  s_name : string;
  s_pending : int;
  s_ops : int;
  s_heap : float;  (* wall seconds, heap backend *)
  s_wheel : float;  (* wall seconds, wheel backend *)
}

let sched_fill_heap n =
  let h = EH.create () in
  for i = 0 to n - 1 do
    EH.push_unit h ~time:(float_of_int i *. 1e-5) i
  done;
  h

let sched_fill_wheel n =
  let w = TW.create ~dummy:0 () in
  for i = 0 to n - 1 do
    TW.push_unit w ~time:(float_of_int i *. 1e-5) i
  done;
  w

(* Timer churn: every pop reschedules 10 ms out, holding the pending
   count constant — the steady state of a simulation where each flow
   keeps one live timer. *)
let sched_churn_heap ~pending ~ops =
  let h = sched_fill_heap pending in
  let k tm v = EH.push_unit h ~time:(tm +. 0.01) v in
  Gc.compact ();
  let t0 = now_s () in
  for _ = 1 to ops do
    ignore (EH.pop_cb h k)
  done;
  now_s () -. t0

let sched_churn_wheel ~pending ~ops =
  let w = sched_fill_wheel pending in
  let k tm v = TW.push_unit w ~time:(tm +. 0.01) v in
  Gc.compact ();
  let t0 = now_s () in
  for _ = 1 to ops do
    ignore (TW.pop_cb w k)
  done;
  now_s () -. t0

(* Full drain of a large pending set, nothing rescheduled. *)
let sched_drain_heap ~pending =
  let h = sched_fill_heap pending in
  let sink _ _ = () in
  Gc.compact ();
  let t0 = now_s () in
  while EH.pop_cb h sink do
    ()
  done;
  now_s () -. t0

let sched_drain_wheel ~pending =
  let w = sched_fill_wheel pending in
  let sink _ _ = () in
  Gc.compact ();
  let t0 = now_s () in
  while TW.pop_cb w sink do
    ()
  done;
  now_s () -. t0

(* Schedule/cancel mix: per iteration one pop, one timer armed, one
   timer armed and immediately cancelled — a retransmission-timer-heavy
   workload. Live count stays constant. *)
let sched_mix_heap ~pending ~iters =
  let h = EH.create () in
  for i = 0 to pending - 1 do
    ignore (EH.push h ~time:(float_of_int i *. 1e-5) i)
  done;
  let last = ref 0. in
  let k tm _ = last := tm in
  Gc.compact ();
  let t0 = now_s () in
  for _ = 1 to iters do
    ignore (EH.pop_cb h k);
    ignore (EH.push h ~time:(!last +. 0.01) 0);
    EH.cancel (EH.push h ~time:(!last +. 0.02) 0)
  done;
  now_s () -. t0

let sched_mix_wheel ~pending ~iters =
  let w = TW.create ~dummy:0 () in
  for i = 0 to pending - 1 do
    ignore (TW.push w ~time:(float_of_int i *. 1e-5) i)
  done;
  let last = ref 0. in
  let k tm _ = last := tm in
  Gc.compact ();
  let t0 = now_s () in
  for _ = 1 to iters do
    ignore (TW.pop_cb w k);
    ignore (TW.push w ~time:(!last +. 0.01) 0);
    TW.cancel (TW.push w ~time:(!last +. 0.02) 0)
  done;
  now_s () -. t0

(* A small hot set self-rescheduling at microsecond scale on top of a
   large cold pending mass parked far in the future: the incast /
   many-flow shape, and the heap's worst case (every push sifts through
   log2(pending) levels of cold keys). *)
let sched_burst_heap ~pending ~ops =
  let h = EH.create () in
  let rng = Pcc_sim.Rng.create 11 in
  for i = 0 to pending - 1 do
    EH.push_unit h ~time:(1000. +. Pcc_sim.Rng.uniform rng 0. 100.) i
  done;
  for i = 0 to 63 do
    EH.push_unit h ~time:(float_of_int i *. 1e-6) i
  done;
  let k tm v = EH.push_unit h ~time:(tm +. 5e-5) v in
  Gc.compact ();
  let t0 = now_s () in
  for _ = 1 to ops do
    ignore (EH.pop_cb h k)
  done;
  now_s () -. t0

let sched_burst_wheel ~pending ~ops =
  let w = TW.create ~dummy:0 () in
  let rng = Pcc_sim.Rng.create 11 in
  for i = 0 to pending - 1 do
    TW.push_unit w ~time:(1000. +. Pcc_sim.Rng.uniform rng 0. 100.) i
  done;
  for i = 0 to 63 do
    TW.push_unit w ~time:(float_of_int i *. 1e-6) i
  done;
  let k tm v = TW.push_unit w ~time:(tm +. 5e-5) v in
  Gc.compact ();
  let t0 = now_s () in
  for _ = 1 to ops do
    ignore (TW.pop_cb w k)
  done;
  now_s () -. t0

let sched_bench () =
  Printf.printf "\n== scheduler micro-bench (heap vs timing wheel) ==\n%!";
  let mk name pending ops heap wheel =
    let r =
      { s_name = name; s_pending = pending; s_ops = ops; s_heap = heap;
        s_wheel = wheel }
    in
    Printf.printf
      "%-10s %9d pending %9d ops   heap %6.2fs (%5.1fM op/s)   wheel %6.2fs \
       (%5.1fM op/s)   wheel/heap %.2fx\n%!"
      r.s_name r.s_pending r.s_ops r.s_heap
      (float_of_int r.s_ops /. r.s_heap /. 1e6)
      r.s_wheel
      (float_of_int r.s_ops /. r.s_wheel /. 1e6)
      (r.s_heap /. r.s_wheel);
    r
  in
  (* Sequential lets, not a list literal: element evaluation order in a
     literal is unspecified, and each benchmark should print as it
     finishes, top to bottom. Heap runs before wheel for the same
     reason. *)
  let churn_small =
    let p = 10_000 and ops = 2_000_000 in
    let heap = sched_churn_heap ~pending:p ~ops in
    mk "churn-10k" p ops heap (sched_churn_wheel ~pending:p ~ops)
  in
  let churn =
    let p = 1_000_000 and ops = 2_000_000 in
    let heap = sched_churn_heap ~pending:p ~ops in
    mk "churn-1M" p ops heap (sched_churn_wheel ~pending:p ~ops)
  in
  let drain =
    let p = 1_000_000 in
    let heap = sched_drain_heap ~pending:p in
    mk "drain-1M" p p heap (sched_drain_wheel ~pending:p)
  in
  let mix =
    let p = 1_000_000 and iters = 500_000 in
    let heap = sched_mix_heap ~pending:p ~iters in
    mk "mix-1M" p (4 * iters) heap (sched_mix_wheel ~pending:p ~iters)
  in
  let burst =
    let p = 1_000_000 and ops = 5_000_000 in
    let heap = sched_burst_heap ~pending:p ~ops in
    mk "burst-1M" p ops heap (sched_burst_wheel ~pending:p ~ops)
  in
  [ churn_small; churn; drain; mix; burst ]

(* ------------------------------------------------------------------ *)
(* Sharded-execution bench (--shards 1,2,4): the clustered fan-in
   scenario at each requested shard count on the conservative parallel
   hub ({!Pcc_sim.Shard}), Parallel mode, reporting aggregate events/sec,
   per-shard balance and barrier overhead, plus an in-process digest
   identity check of every run against the 1-shard run. The digest gate
   is unconditional; speedup is advisory (recorded with the host's core
   count so CI can decide whether parallel wins were even possible). *)

type shard_bench_record = {
  h_shards : int;
  h_wall : float;  (* hub wall seconds (stats clock) *)
  h_events : int;
  h_balance : float;  (* max/mean per-shard events, 1.0 = perfect *)
  h_overhead : float;  (* 1 - sum busy / (domains * wall) *)
  h_rounds : int;
  h_messages : int;
  h_identical : bool;  (* digest matches the 1-shard run *)
}

let shard_bench_flows = 2_000
let shard_bench_clusters = 4
let shard_bench_duration = 20.

let shard_run_digest topo hub =
  let open Pcc_scenario in
  let b = Buffer.create 1024 in
  Array.iteri
    (fun i (f : Topology.built_flow) ->
      Printf.bprintf b "f%d g=%d fct=%s\n" i (Topology.goodput_bytes f)
        (match f.Topology.fct with
        | Some v -> Printf.sprintf "%h" v
        | None -> "-"))
    (Topology.flows topo);
  Printf.bprintf b "events=%d" (Pcc_sim.Shard.executed hub);
  Buffer.contents b

let shard_bench ~seed counts =
  let open Pcc_sim in
  Printf.printf
    "\n== sharded execution (clustered fan-in: %d clusters, %d flows, %.0f \
     simulated s) ==\n%!"
    shard_bench_clusters shard_bench_flows shard_bench_duration;
  let one shards =
    let hub = Shard.create ~shards () in
    let rng = Rng.create seed in
    let topo =
      Exp_manyflow.clustered_topology hub ~rng ~clusters:shard_bench_clusters
        ~n:shard_bench_flows ~bandwidth:Exp_manyflow.default_bandwidth
        ~rtt:Exp_manyflow.default_rtt
    in
    Gc.compact ();
    let st =
      Shard.run_stats ~mode:(Shard.Parallel shards) ~clock:now_s hub
        ~until:shard_bench_duration
    in
    (st, shard_run_digest topo hub)
  in
  (* The identity reference is always the 1-shard run; when 1 is in the
     requested list its record doubles as the reference. *)
  let reference = ref None in
  let ref_digest () =
    match !reference with
    | Some d -> d
    | None ->
      let _, d = one 1 in
      reference := Some d;
      d
  in
  let counts = List.sort_uniq compare counts in
  List.map
    (fun shards ->
      let st, digest = one shards in
      if shards = 1 && !reference = None then reference := Some digest;
      let identical = String.equal digest (ref_digest ()) in
      let per = st.Shard.per_shard_events in
      let events = Array.fold_left ( + ) 0 per in
      let mean = float_of_int events /. float_of_int (Array.length per) in
      let worst = Array.fold_left max 0 per in
      let balance = if events = 0 then 1. else float_of_int worst /. mean in
      let busy = Array.fold_left ( +. ) 0. st.Shard.per_shard_busy_s in
      let overhead =
        if st.Shard.wall_s > 0. && st.Shard.domains_used > 0 then
          1. -. (busy /. (float_of_int st.Shard.domains_used *. st.Shard.wall_s))
        else 0.
      in
      Printf.printf
        "%d shard%s  %8d events  %6.2fs wall (%5.2fM ev/s)  balance %.2f  \
         barrier overhead %4.1f%%  %d rounds  %d msgs  identical %b\n%!"
        shards
        (if shards = 1 then " " else "s")
        events st.Shard.wall_s
        (if st.Shard.wall_s > 0. then
           float_of_int events /. st.Shard.wall_s /. 1e6
         else 0.)
        balance (100. *. overhead) st.Shard.rounds st.Shard.messages identical;
      {
        h_shards = shards;
        h_wall = st.Shard.wall_s;
        h_events = events;
        h_balance = balance;
        h_overhead = overhead;
        h_rounds = st.Shard.rounds;
        h_messages = st.Shard.messages;
        h_identical = identical;
      })
    counts

(* ------------------------------------------------------------------ *)
(* Controller-family bench (--controllers): every rate controller solo
   on the same 30 Mbps bottleneck for a fixed simulated window, with a
   trace collector installed to count the control plane's work —
   gradient steps (Vivace-family decisions), utility-class switches
   (Proteus), and the mean per-MI utility. Wall time and engine events
   make the section double as a perf gate over the controller hot
   paths: a controller that stops deciding (zero MIs or zero gradient
   steps) fails scripts/check_bench.sh even if the simulation still
   moves packets. *)

type controller_bench_record = {
  c_name : string;
  c_wall : float;
  c_events : int;
  c_goodput : float;  (* bits/s over the whole run *)
  c_mis : int;  (* monitor intervals completed *)
  c_mean_utility : float;
  c_gradient_steps : int;
  c_utility_switches : int;
}

let controller_bench_duration = 20.

let controller_bench_names =
  [
    "pcc";
    "pcc-vivace";
    "pcc-proteus";
    "pcc-proteus-scavenger";
    "pcc-proteus-hybrid";
  ]

let controller_bench ~seed =
  let open Pcc_scenario in
  Printf.printf
    "\n== controller family (solo 30 Mbps bottleneck, %.0f simulated s) ==\n%!"
    controller_bench_duration;
  List.map
    (fun name ->
      let spec =
        match Transport.of_name name with
        | Ok s -> s
        | Error m -> failwith ("--controllers: " ^ m)
      in
      (* A private collector per run: counts must not bleed across
         controllers (or into a --trace collector). *)
      let collector = Pcc_trace.Collector.create ~capacity:(1 lsl 19) () in
      Pcc_trace.Collector.install collector;
      let engine = Pcc_sim.Engine.create () in
      let rng = Pcc_sim.Rng.create seed in
      let bw = Pcc_sim.Units.mbps 30. in
      let rtt = 0.03 in
      let path =
        Path.build engine ~rng ~bandwidth:bw ~rtt
          ~buffer:(Pcc_sim.Units.bdp_bytes ~rate:bw ~rtt)
          ~flows:[ Path.flow spec ] ()
      in
      let e0 = Pcc_sim.Engine.total_executed () in
      Gc.compact ();
      let t0 = now_s () in
      Pcc_sim.Engine.run ~until:controller_bench_duration engine;
      let wall = now_s () -. t0 in
      let events = Pcc_sim.Engine.total_executed () - e0 in
      Pcc_trace.Collector.uninstall ();
      let goodput =
        float_of_int (Path.goodput_bytes (Path.flows path).(0) * 8)
        /. controller_bench_duration
      in
      let mis = ref 0 in
      let usum = ref 0. in
      let grads = ref 0 in
      let switches = ref 0 in
      Array.iter
        (fun (e : Pcc_trace.Event.record) ->
          match e.kind with
          | Pcc_trace.Event.Mi_end ->
            incr mis;
            usum := !usum +. e.a
          | Pcc_trace.Event.Gradient_step -> incr grads
          | Pcc_trace.Event.Utility_switch -> incr switches
          | _ -> ())
        (Pcc_trace.Collector.events collector);
      let mean_u = if !mis > 0 then !usum /. float_of_int !mis else 0. in
      Printf.printf
        "%-22s %8.2f Mbps  %4d MIs  mean u %10.3f  %5d gradient steps  %3d \
         switches  %6.2fs wall (%5.2fM ev/s)\n%!"
        name (goodput /. 1e6) !mis mean_u !grads !switches wall
        (if wall > 0. then float_of_int events /. wall /. 1e6 else 0.);
      {
        c_name = name;
        c_wall = wall;
        c_events = events;
        c_goodput = goodput;
        c_mis = !mis;
        c_mean_utility = mean_u;
        c_gradient_steps = !grads;
        c_utility_switches = !switches;
      })
    controller_bench_names

(* ------------------------------------------------------------------ *)
(* BENCH_pcc.json: a hand-rolled writer (no JSON dependency). *)

type bench_record = {
  b_name : string;
  b_wall : float;
  b_events : int;
  (* Present only when --jobs > 1: the sequential re-run. *)
  b_seq_wall : float option;
  b_identical : bool option;
  (* Set when the experiment raised instead of rendering. *)
  b_error : string option;
}

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_bench_json ~path ~scale ~seed ~jobs ~total_wall ?(scheduler = [])
    ?(sharding = []) ?(controllers = []) records =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"pcc-bench/1\",\n";
  p "  \"scale\": %g,\n" scale;
  p "  \"seed\": %d,\n" seed;
  p "  \"jobs\": %d,\n" jobs;
  p "  \"total_wall_s\": %.6f,\n" total_wall;
  if sharding <> [] then begin
    p "  \"sharding\": {\n";
    p "    \"cores\": %d,\n" (Domain.recommended_domain_count ());
    p "    \"scenario\": \"clusters=%d flows=%d duration=%g\",\n"
      shard_bench_clusters shard_bench_flows shard_bench_duration;
    p "    \"runs\": [\n";
    List.iteri
      (fun i r ->
        p "      {\n";
        p "        \"shards\": %d,\n" r.h_shards;
        p "        \"wall_s\": %.6f,\n" r.h_wall;
        p "        \"events\": %d,\n" r.h_events;
        p "        \"events_per_sec\": %.1f,\n"
          (if r.h_wall > 0. then float_of_int r.h_events /. r.h_wall else 0.);
        p "        \"balance\": %.3f,\n" r.h_balance;
        p "        \"barrier_overhead\": %.4f,\n" r.h_overhead;
        p "        \"rounds\": %d,\n" r.h_rounds;
        p "        \"messages\": %d,\n" r.h_messages;
        p "        \"identical\": %b\n" r.h_identical;
        p "      }%s\n" (if i = List.length sharding - 1 then "" else ","))
      sharding;
    p "    ]\n";
    p "  },\n"
  end;
  if controllers <> [] then begin
    p "  \"controllers\": [\n";
    List.iteri
      (fun i r ->
        p "    {\n";
        p "      \"name\": \"%s\",\n" (json_escape r.c_name);
        p "      \"wall_s\": %.6f,\n" r.c_wall;
        p "      \"events\": %d,\n" r.c_events;
        p "      \"events_per_sec\": %.1f,\n"
          (if r.c_wall > 0. then float_of_int r.c_events /. r.c_wall else 0.);
        p "      \"goodput_mbps\": %.3f,\n" (r.c_goodput /. 1e6);
        p "      \"mis\": %d,\n" r.c_mis;
        p "      \"mean_utility\": %.6f,\n" r.c_mean_utility;
        p "      \"gradient_steps\": %d,\n" r.c_gradient_steps;
        p "      \"utility_switches\": %d\n" r.c_utility_switches;
        p "    }%s\n" (if i = List.length controllers - 1 then "" else ","))
      controllers;
    p "  ],\n"
  end;
  if scheduler <> [] then begin
    p "  \"scheduler\": [\n";
    List.iteri
      (fun i r ->
        p "    {\n";
        p "      \"name\": \"%s\",\n" (json_escape r.s_name);
        p "      \"pending\": %d,\n" r.s_pending;
        p "      \"ops\": %d,\n" r.s_ops;
        p "      \"heap_s\": %.6f,\n" r.s_heap;
        p "      \"wheel_s\": %.6f,\n" r.s_wheel;
        p "      \"heap_ops_per_sec\": %.1f,\n"
          (if r.s_heap > 0. then float_of_int r.s_ops /. r.s_heap else 0.);
        p "      \"wheel_ops_per_sec\": %.1f,\n"
          (if r.s_wheel > 0. then float_of_int r.s_ops /. r.s_wheel else 0.);
        p "      \"wheel_speedup\": %.3f\n"
          (if r.s_wheel > 0. then r.s_heap /. r.s_wheel else 0.);
        p "    }%s\n" (if i = List.length scheduler - 1 then "" else ","))
      scheduler;
    p "  ],\n"
  end;
  p "  \"experiments\": [\n";
  List.iteri
    (fun i r ->
      p "    {\n";
      p "      \"name\": \"%s\",\n" (json_escape r.b_name);
      p "      \"wall_s\": %.6f,\n" r.b_wall;
      p "      \"events\": %d,\n" r.b_events;
      p "      \"events_per_sec\": %.1f"
        (if r.b_wall > 0. then float_of_int r.b_events /. r.b_wall else 0.);
      (match r.b_error with
      | Some msg -> p ",\n      \"error\": \"%s\"" (json_escape msg)
      | None -> ());
      (match r.b_seq_wall with
      | Some sw ->
        p ",\n      \"seq_wall_s\": %.6f,\n" sw;
        p "      \"speedup\": %.3f,\n"
          (if r.b_wall > 0. then sw /. r.b_wall else 0.);
        p "      \"identical\": %b\n"
          (match r.b_identical with Some b -> b | None -> false)
      | None -> p "\n");
      p "    }%s\n" (if i = List.length records - 1 then "" else ","))
    records;
  p "  ]\n";
  p "}\n";
  close_out oc

(* ------------------------------------------------------------------ *)

let () =
  let scale = ref 0.3 in
  let seed = ref 42 in
  let only = ref [] in
  let jobs = ref 1 in
  let out = ref "BENCH_pcc.json" in
  let trace_dir = ref None in
  let run_micro = ref false in
  let run_sched = ref false in
  let run_controllers = ref false in
  let shard_counts = ref [] in
  let list_only = ref false in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--only" :: v :: rest ->
      only := String.split_on_char ',' v;
      parse rest
    | "--jobs" :: v :: rest ->
      jobs := int_of_string v;
      parse rest
    | "--out" :: v :: rest ->
      out := v;
      parse rest
    | "--trace" :: v :: rest ->
      trace_dir := Some v;
      parse rest
    | "--micro" :: rest ->
      run_micro := true;
      parse rest
    | "--sched" :: rest ->
      run_sched := true;
      parse rest
    | "--controllers" :: rest ->
      run_controllers := true;
      parse rest
    | "--shards" :: v :: rest ->
      (match
         List.map int_of_string_opt (String.split_on_char ',' v)
       with
      | counts when List.for_all (function Some n -> n >= 1 | None -> false) counts
        -> shard_counts := List.filter_map Fun.id counts
      | _ ->
        Printf.eprintf "--shards wants a comma-separated list of counts >= 1 \
                        (e.g. 1,2,4), got %s\n" v;
        exit 2);
      parse rest
    | "--list" :: rest ->
      list_only := true;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "unknown argument %s\n\
         usage: main.exe [--scale S] [--seed N] [--only a,b|none] [--jobs N] \
         [--out FILE] [--trace DIR] [--micro] [--sched] [--controllers] \
         [--shards 1,2,4] [--list]\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list_only then begin
    List.iter
      (fun e -> Printf.printf "%-10s %s\n" e.Exp_registry.name e.Exp_registry.descr)
      Exp_registry.all;
    exit 0
  end;
  if !run_micro then micro ()
  else begin
    (match
       Cli_validate.(
         all
           [
             positive_f "--scale" !scale;
             at_least "--jobs" 1 !jobs;
             non_negative_i "--seed" !seed;
           ])
     with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "bench: %s\n" msg;
      exit 2);
    (* Trace records live in domain-local state: a traced bench must keep
       every simulation in this domain. *)
    (match !trace_dir with
    | Some _ when !jobs > 1 ->
      Printf.eprintf "--trace forces --jobs 1 (was %d)\n%!" !jobs;
      jobs := 1
    | _ -> ());
    let collector =
      Option.map
        (fun _ ->
          let c = Pcc_trace.Collector.create () in
          Pcc_trace.Collector.install c;
          c)
        !trace_dir
    in
    let dump_dir = Sys.getenv_opt "PCC_DUMP_DIR" in
    Printf.printf
      "PCC reproduction benchmarks (scale %.2f of paper durations, seed %d, \
       jobs %d)\n"
      !scale !seed !jobs;
    (* [--only none] selects no experiments: a run that only wants the
       --sched micro-benchmarks. *)
    let wanted e =
      (!only = [] || List.mem e.Exp_registry.name !only)
      && !only <> [ "none" ]
    in
    (match
       List.filter
         (fun n -> Exp_registry.find n = None)
         (if !only = [ "none" ] then [] else !only)
     with
    | [] -> ()
    | unknown ->
      Printf.eprintf "unknown experiment(s): %s (see --list)\n"
        (String.concat ", " unknown);
      exit 2);
    let pool = if !jobs > 1 then Some (Runner.create ~jobs:!jobs ()) else None in
    let mismatches = ref [] in
    let crashed = ref [] in
    let t_start = now_s () in
    let records =
      List.filter_map
        (fun e ->
          if not (wanted e) then None
          else begin
            let open Exp_registry in
            Printf.printf "\n### %s — %s\n%!" e.name e.descr;
            let e0 = Pcc_sim.Engine.total_executed () in
            (* Sub-second sweeps marked [parallel = false] skip the pool:
               domain fan-out costs more than it saves there (game
               measured 0.44x at --jobs 2 on this workload). *)
            let pool = if e.parallel then pool else None in
            if pool = None && !jobs > 1 then
              Printf.printf "[%s runs sequentially: sweep too small to \
                             amortize the domain pool]\n%!"
                e.name;
            let t0 = now_s () in
            (* A raising experiment must not take the rest of the sweep
               down: record it, keep going, fail the run at the end. *)
            match e.render ?pool ?dump_dir ~scale:!scale ~seed:!seed () with
            | exception exn ->
              let wall = now_s () -. t0 in
              let events = Pcc_sim.Engine.total_executed () - e0 in
              let msg = Printexc.to_string exn in
              crashed := e.name :: !crashed;
              Printf.printf "[%s FAILED after %.1fs: %s]\n%!" e.name wall msg;
              Some
                {
                  b_name = e.name;
                  b_wall = wall;
                  b_events = events;
                  b_seq_wall = None;
                  b_identical = None;
                  b_error = Some msg;
                }
            | rendered ->
              let wall = now_s () -. t0 in
              let events = Pcc_sim.Engine.total_executed () - e0 in
              print_string rendered;
              Printf.printf "[%s took %.1fs wall, %d events]\n%!" e.name wall
                events;
              let seq_wall, identical =
                match pool with
                | None -> (None, None)
                | Some _ ->
                  (* Sequential re-run: measures speedup and proves the
                     parallel output is byte-identical. *)
                  let t0 = now_s () in
                  let seq = e.render ~scale:!scale ~seed:!seed () in
                  let sw = now_s () -. t0 in
                  let same = String.equal seq rendered in
                  if not same then begin
                    mismatches := e.name :: !mismatches;
                    Printf.printf
                      "[%s MISMATCH: parallel output differs from sequential]\n%!"
                      e.name
                  end
                  else
                    Printf.printf "[%s sequential re-run %.1fs, speedup %.2fx, \
                                   outputs identical]\n%!"
                      e.name sw
                      (if wall > 0. then sw /. wall else 0.);
                  (Some sw, Some same)
              in
              Some
                {
                  b_name = e.name;
                  b_wall = wall;
                  b_events = events;
                  b_seq_wall = seq_wall;
                  b_identical = identical;
                  b_error = None;
                }
          end)
        Exp_registry.all
    in
    let scheduler = if !run_sched then sched_bench () else [] in
    let controllers =
      if !run_controllers then controller_bench ~seed:!seed else []
    in
    let sharding =
      if !shard_counts = [] then []
      else shard_bench ~seed:!seed !shard_counts
    in
    (* A sharded run whose digest diverges from the 1-shard run is a
       determinism violation, same as a parallel-vs-sequential
       experiment mismatch. *)
    List.iter
      (fun r ->
        if not r.h_identical then
          mismatches := Printf.sprintf "sharding(shards=%d)" r.h_shards
                        :: !mismatches)
      sharding;
    let total_wall = now_s () -. t_start in
    (match pool with Some p -> Runner.shutdown p | None -> ());
    write_bench_json ~path:!out ~scale:!scale ~seed:!seed ~jobs:!jobs
      ~total_wall ~scheduler ~sharding ~controllers records;
    Printf.printf "\n[bench results written to %s]\n%!" !out;
    (match (collector, !trace_dir) with
    | Some c, Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Pcc_trace.Export.write_chrome_json
        ~path:(Filename.concat dir "trace.json")
        c;
      Pcc_trace.Export.write_decision_log
        ~path:(Filename.concat dir "decisions.log")
        c;
      Pcc_metrics.Series_io.write_multi_series
        ~path:(Filename.concat dir "trace.csv")
        (Pcc_trace.Export.csv_series c);
      Printf.printf
        "[trace: %d events held (%d emitted, %d overwritten) -> %s]\n%!"
        (Pcc_trace.Collector.length c)
        (Pcc_trace.Collector.emitted c)
        (Pcc_trace.Collector.dropped c)
        dir;
      Pcc_trace.Collector.uninstall ()
    | _ -> ());
    if !mismatches <> [] then
      Printf.eprintf "determinism violation in: %s\n"
        (String.concat ", " (List.rev !mismatches));
    if !crashed <> [] then
      Printf.eprintf "bench: %d experiment(s) crashed: %s\n"
        (List.length !crashed)
        (String.concat ", " (List.rev !crashed));
    if !mismatches <> [] || !crashed <> [] then exit 1
  end
