(* pcc_sim — run ad-hoc congestion-control scenarios from the command
   line.

     pcc_sim run --transport pcc --transport cubic --bw 100 --rtt 30 \
       --loss 0.01 --duration 60
     pcc_sim game --senders 10
     pcc_sim list                                                          *)

open Cmdliner
open Pcc_sim
open Pcc_scenario

let transport_of_string s =
  match Transport.of_name s with
  | Ok t -> Ok t
  | Error msg -> Error (`Msg msg)

let transport_conv =
  let parse s = transport_of_string s in
  let print fmt t = Format.pp_print_string fmt (Transport.name t) in
  Arg.conv (parse, print)

(* ------------------------------------------------------------------ *)

(* The scheduler choice must land before any command body runs (engines
   are created early in several commands), so the converter applies it
   as a side effect of parsing: cmdliner converts every argument before
   it evaluates a term. [with_scheduler] then only has to thread the
   option through so the flag is parsed and documented. *)
let scheduler_conv =
  let parse s =
    match Engine.scheduler_of_string (String.lowercase_ascii s) with
    | Some sch ->
      Engine.set_default_scheduler sch;
      Ok sch
    | None ->
      Error (`Msg (Printf.sprintf "unknown scheduler %s (heap, wheel)" s))
  in
  let print fmt s = Format.pp_print_string fmt (Engine.scheduler_name s) in
  Arg.conv (parse, print)

let scheduler_arg =
  Arg.(
    value
    & opt (some scheduler_conv) None
    & info [ "scheduler" ] ~docv:"BACKEND"
        ~doc:
          "Event-queue backend: $(b,wheel) (hierarchical timing wheel, the \
           default) or $(b,heap) (binary heap). Both dispatch in the same \
           deterministic order; this only changes performance. Equivalent \
           to setting $(b,PCC_SCHEDULER).")

let with_scheduler term = Term.(const (fun _sched r -> r) $ scheduler_arg $ term)

let queue_of_string = function
  | "droptail" -> Some Path.Droptail
  | "codel" -> Some Path.Codel
  | "red" -> Some Path.Red
  | "infinite" -> Some Path.Infinite
  | "fq" -> Some (Path.Fq Path.Droptail)
  | "fq-codel" -> Some (Path.Fq Path.Codel)
  | _ -> None

let run_cmd transports bw_mbps rtt_ms loss rev_loss jitter_ms buffer_kb queue
    duration seed interval check_invariants =
  Pcc_experiments.Cli_validate.(
    guarded
      [
        positive_f "--bw" bw_mbps;
        positive_f "--rtt" rtt_ms;
        probability "--loss" loss;
        probability "--rev-loss" rev_loss;
        non_negative_f "--jitter" jitter_ms;
        opt positive_i "--buffer" buffer_kb;
        (match queue_of_string queue with
        | Some _ -> Ok ()
        | None ->
          Error
            (Printf.sprintf "error: unknown queue discipline %s (see pcc_sim list)"
               queue));
        positive_f "--duration" duration;
        positive_f "--interval" interval;
      ])
  @@ fun () ->
  let bandwidth = Units.mbps bw_mbps in
  let rtt = rtt_ms /. 1000. in
  let buffer =
    match buffer_kb with
    | Some kb -> kb * 1000
    | None -> Units.bdp_bytes ~rate:bandwidth ~rtt
  in
  let queue_kind = Option.get (queue_of_string queue) in
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let path =
    Path.build engine ~rng ~bandwidth ~rtt ~buffer ~queue:queue_kind ~loss
      ~rev_loss ~jitter:(jitter_ms /. 1000.)
      ~flows:(List.map (fun t -> Path.flow t) transports)
      ()
  in
  if check_invariants then ignore (Invariant.attach_path path);
  let flows = Path.flows path in
  Printf.printf
    "link: %.1f Mbps, %.1f ms RTT, %d KB %s buffer, loss %.3f%%\n" bw_mbps
    rtt_ms (buffer / 1000) queue (loss *. 100.);
  Printf.printf "%8s" "time";
  Array.iter
    (fun f -> Printf.printf " %14s" f.Path.def.Path.label)
    flows;
  Printf.printf "\n";
  let last = Array.make (Array.length flows) 0 in
  let steps = int_of_float (duration /. interval) in
  for i = 1 to steps do
    Engine.run ~until:(float_of_int i *. interval) engine;
    Printf.printf "%7.1fs" (float_of_int i *. interval);
    Array.iteri
      (fun j f ->
        let b = Path.goodput_bytes f in
        Printf.printf " %9.2f Mbps"
          (float_of_int ((b - last.(j)) * 8) /. interval /. 1e6);
        last.(j) <- b)
      flows;
    Printf.printf "\n%!"
  done;
  Printf.printf "\naverages over the full run:\n";
  Array.iter
    (fun f ->
      Printf.printf "  %-14s %8.2f Mbps (srtt %.1f ms)\n"
        f.Path.def.Path.label
        (float_of_int (Path.goodput_bytes f * 8) /. duration /. 1e6)
        (f.Path.sender.Pcc_net.Sender.srtt () *. 1e3))
    flows;
  `Ok ()

let chaos_cmd transport bw_mbps rtt_ms duration seed rate check_invariants =
  Pcc_experiments.Cli_validate.(
    guarded
      [
        positive_f "--bw" bw_mbps;
        positive_f "--rtt" rtt_ms;
        positive_f "--duration" duration;
        positive_f "--rate" rate;
      ])
  @@ fun () ->
  try
  let bandwidth = Units.mbps bw_mbps in
  let rtt = rtt_ms /. 1000. in
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let fault_rng = Rng.split rng in
  let path =
    Path.build engine ~rng ~bandwidth ~rtt
      ~buffer:(Units.bdp_bytes ~rate:bandwidth ~rtt)
      ~flows:[ Path.flow transport ]
      ()
  in
  if check_invariants then ignore (Invariant.attach_path path);
  let f = (Path.flows path).(0) in
  let recorder =
    Pcc_metrics.Recorder.create engine ~interval:0.25 (fun () ->
        float_of_int (Path.goodput_bytes f))
  in
  let schedule = Fault.chaos ~rng:fault_rng ~rate ~duration () in
  Fault.inject_path path schedule;
  Printf.printf
    "chaos gauntlet: %s on %.1f Mbps / %.1f ms RTT, seed %d, %d faults\n\n"
    f.Path.def.Path.label bw_mbps rtt_ms seed (List.length schedule);
  Format.printf "%a@." Fault.pp_schedule schedule;
  Engine.run ~until:duration engine;
  let series = Pcc_metrics.Recorder.rates_bps recorder in
  let reports =
    Pcc_metrics.Recovery.analyze ~series (Fault.windows schedule)
  in
  Format.printf "%a" Pcc_metrics.Recovery.pp_table reports;
  let recovered =
    List.length
      (List.filter
         (fun r -> r.Pcc_metrics.Recovery.time_to_recover <> None)
         reports)
  in
  Printf.printf
    "\nmean goodput %.2f Mbps; recovered from %d/%d faults (>=90%% of \
     pre-fault throughput)\n"
    (float_of_int (Path.goodput_bytes f * 8) /. duration /. 1e6)
    recovered (List.length reports);
  `Ok ()
  with exn ->
    (* A chaos gauntlet that dies mid-run (engine livelock guard, event
       error, invariant violation) must report and exit nonzero, not
       dump a backtrace. *)
    `Error
      ( false,
        Printf.sprintf "error: chaos run failed: %s" (Printexc.to_string exn)
      )

(* Demo shapes for the graph topology layer. "dumbbell" is what `run`
   builds; "parking" and "revpath" are shapes the flat builders cannot
   express (asymmetric chain, congested ack path); "fanin-large" is the
   many-flow scheduler stress scenario ([--flows] sized PCC transfers
   over one bottleneck, reported in aggregate); "clusters" chains
   [--shards] fan-in dumbbells with slow inter-cluster links — the
   shape whose partition actually spreads over shards. With [hub] the
   graph is built sharded ({!Topology.build_sharded}); [engine] is only
   used monolithically. *)
let topo_shape ~engine ~hub ~rng ~bandwidth ~rtt ~flows_n transports shape =
  let bdp = Units.bdp_bytes ~rate:bandwidth ~rtt in
  let build ~links ~flows =
    match hub with
    | Some h -> Topology.build_sharded h ~rng ~links ~flows ()
    | None -> Topology.build engine ~rng ~links ~flows ()
  in
  match shape with
  | "fanin-large" ->
    Ok
      (match hub with
      | Some h ->
        Pcc_experiments.Exp_manyflow.topology_sharded h ~rng ~n:flows_n
          ~bandwidth ~rtt
      | None ->
        Pcc_experiments.Exp_manyflow.topology engine ~rng ~n:flows_n ~bandwidth
          ~rtt)
  | "clusters" -> (
    match hub with
    | None ->
      Error "shape clusters needs a hub; pass --shards N (e.g. --shards 4)"
    | Some h ->
      (* A fixed cluster count: the graph must not depend on the shard
         count, or cross-shard-count output comparisons would be
         comparing different simulations. *)
      Ok
        (Pcc_experiments.Exp_manyflow.clustered_topology h ~rng ~clusters:4
           ~n:flows_n ~bandwidth ~rtt))
  | "dumbbell" ->
    let links =
      [
        Topology.link ~name:"bottleneck" ~delay:(rtt /. 2.) ~buffer:bdp ~src:0
          ~dst:1 ~bandwidth ();
      ]
    in
    let flows = List.map (fun t -> Topology.flow ~route:[ 0; 1 ] t) transports in
    Ok (build ~links ~flows)
  | "parking" ->
    (* Asymmetric 3-hop parking lot: the middle hop is the narrowest. The
       first transport runs end to end; the rest take one-hop routes,
       spread round-robin, competing with the long flow hop-locally. *)
    let hop i frac =
      Topology.link
        ~name:(Printf.sprintf "hop%d" i)
        ~delay:(rtt /. 6.)
        ~buffer:(Units.bdp_bytes ~rate:(bandwidth *. frac) ~rtt)
        ~src:i ~dst:(i + 1)
        ~bandwidth:(bandwidth *. frac)
        ()
    in
    let links = [ hop 0 1.0; hop 1 0.5; hop 2 0.8 ] in
    let flows =
      List.mapi
        (fun i t ->
          if i = 0 then
            Topology.flow
              ~label:(Transport.name t ^ "-long")
              ~route:[ 0; 1; 2; 3 ] t
          else begin
            let e = (i - 1) mod 3 in
            Topology.flow
              ~label:(Printf.sprintf "%s-hop%d" (Transport.name t) e)
              ~route:[ e; e + 1 ] t
          end)
        transports
    in
    Ok (build ~links ~flows)
  | "revpath" ->
    (* Congested reverse path: acks share a link 100x narrower than the
       data direction, with a shallow buffer. *)
    let links =
      [
        Topology.link ~name:"forward" ~delay:(rtt /. 2.) ~buffer:bdp ~src:0
          ~dst:1 ~bandwidth ();
        Topology.link ~name:"ackpath" ~delay:(rtt /. 2.)
          ~buffer:(Units.kib 4) ~src:1 ~dst:0 ~bandwidth:(bandwidth /. 100.)
          ();
      ]
    in
    let flows =
      List.map
        (fun t -> Topology.flow ~route:[ 0; 1 ] ~rev_route:[ 1; 0 ] t)
        transports
    in
    Ok (build ~links ~flows)
  | other ->
    Error
      (Printf.sprintf
         "unknown shape %s (dumbbell, parking, revpath, fanin-large, clusters)"
         other)

(* Per-flow columns are unreadable past a handful of flows, so large
   populations (fanin-large, clusters) report aggregates per interval
   instead: completions, goodput, and the live event-queue depth. Event
   totals are hub-wide when the topology is sharded. *)
let topo_executed topo =
  match Topology.hub topo with
  | Some h -> Shard.executed h
  | None -> Engine.executed (Topology.engine topo)

let topo_pending topo =
  match Topology.hub topo with
  | Some h -> Shard.pending h
  | None -> Engine.pending (Topology.engine topo)

(* Sharded runs buffer their whole report and print it only on success,
   so a degradation-ladder retry can discard a half-written table and
   the final stdout stays byte-identical to a clean run; monolithic
   runs stream as before. [echo] is that sink, and [kout] its printf. *)
let kout echo fmt = Printf.ksprintf echo fmt

(* After a sharded run, one line of per-shard balance. The reporting
   loops drive [Topology.run] in interval slices and [Shard.last_stats]
   covers only the final slice, so the line reads the hub's lifetime
   counters and each engine's cumulative executed count instead. *)
let report_shard_balance ~echo topo =
  match Topology.hub topo with
  | None -> ()
  | Some h ->
    let per = Array.map Engine.executed (Shard.engines h) in
    let total = Array.fold_left ( + ) 0 per in
    let mean = float_of_int total /. float_of_int (Array.length per) in
    let worst = Array.fold_left max 0 per in
    kout echo
      "shards: %d; %d barrier rounds, %d boundary messages; per-shard events \
       [%s], balance %.2f (max/mean)\n"
      (Array.length per) (Shard.total_rounds h) (Shard.total_messages h)
      (String.concat "; " (Array.to_list (Array.map string_of_int per)))
      (if total = 0 then 1. else float_of_int worst /. mean)

let topo_report_aggregate ~echo ~mode ~clock ~duration ~interval topo =
  let flows = Topology.flows topo in
  let n = Array.length flows in
  let total_bytes () =
    Array.fold_left (fun a f -> a + Topology.goodput_bytes f) 0 flows
  in
  let completed () =
    Array.fold_left
      (fun a (f : Topology.built_flow) ->
        if f.Topology.fct <> None then a + 1 else a)
      0 flows
  in
  kout echo "\n%8s %10s %12s %14s %12s\n" "time" "completed" "agg Mbps"
    "total events" "pending";
  let last = ref 0 in
  let steps = int_of_float (duration /. interval) in
  for i = 1 to steps do
    Topology.run ~mode ?clock topo ~until:(float_of_int i *. interval);
    let b = total_bytes () in
    kout echo "%7.1fs %6d/%-4d %12.2f %14d %12d\n"
      (float_of_int i *. interval)
      (completed ()) n
      (float_of_int ((b - !last) * 8) /. interval /. 1e6)
      (topo_executed topo) (topo_pending topo);
    last := b
  done;
  kout echo "\n%d/%d flows completed; %.1f MB delivered; %d events executed\n"
    (completed ()) n
    (float_of_int (total_bytes ()) /. 1e6)
    (topo_executed topo);
  report_shard_balance ~echo topo

let topo_report_perflow ~echo ~mode ~clock ~duration ~interval topo =
  let flows = Topology.flows topo in
  kout echo "\n%8s" "time";
  Array.iter
    (fun (f : Topology.built_flow) ->
      kout echo " %14s" f.Topology.def.Topology.label)
    flows;
  kout echo "\n";
  let last = Array.make (Array.length flows) 0 in
  let steps = int_of_float (duration /. interval) in
  for i = 1 to steps do
    Topology.run ~mode ?clock topo ~until:(float_of_int i *. interval);
    kout echo "%7.1fs" (float_of_int i *. interval);
    Array.iteri
      (fun j f ->
        let b = Topology.goodput_bytes f in
        kout echo " %9.2f Mbps"
          (float_of_int ((b - last.(j)) * 8) /. interval /. 1e6);
        last.(j) <- b)
      flows;
    kout echo "\n"
  done;
  kout echo "\naverages over the full run:\n";
  Array.iteri
    (fun j (f : Topology.built_flow) ->
      let min_cap =
        List.fold_left
          (fun acc id ->
            Float.min acc (Pcc_net.Link.bandwidth (Topology.link_at topo id)))
          infinity
          (Topology.route_links topo ~flow:j)
      in
      kout echo "  %-14s %8.2f Mbps (route cap %.1f Mbps, srtt %.1f ms)\n"
        f.Topology.def.Topology.label
        (float_of_int (Topology.goodput_bytes f * 8) /. duration /. 1e6)
        (min_cap /. 1e6)
        (f.Topology.sender.Pcc_net.Sender.srtt () *. 1e3))
    flows;
  report_shard_balance ~echo topo

(* Build-independent drive-and-report: the same bytes whether [echo]
   streams to stdout (monolithic) or fills a buffer (sharded). *)
let topo_drive ~echo ~mode ~clock ~describe ~check_invariants ~duration
    ~interval topo =
  if Array.length (Topology.flows topo) > 16 then begin
    kout echo "%d nodes, %d links, %d flows\n" (Topology.num_nodes topo)
      (Topology.num_links topo)
      (Array.length (Topology.flows topo));
    if not describe then begin
      if check_invariants then ignore (Invariant.attach_topology topo);
      topo_report_aggregate ~echo ~mode ~clock ~duration ~interval topo
    end
  end
  else begin
    echo (Topology.describe topo);
    if not describe then begin
      if check_invariants then ignore (Invariant.attach_topology topo);
      topo_report_perflow ~echo ~mode ~clock ~duration ~interval topo
    end
  end

(* The exact single-shard command a forensics bundle names: same
   scenario parameters, sequential 1-shard hub, no chaos. Display names
   that don't round-trip through [Transport.of_name] (the default
   "pcc/safe") are omitted — the sharded shapes generate their own flow
   population and never read [--transport]. *)
let topo_repro ~transports ~shape ~flows_n ~bw_mbps ~rtt_ms ~duration ~seed =
  String.concat " "
    ([ "pcc_sim"; "topo"; "--shape"; shape ]
    @ List.concat_map
        (fun t ->
          let n = Transport.name t in
          match Transport.of_name n with
          | Ok _ -> [ "-t"; n ]
          | Error _ -> [])
        transports
    @ [
        Printf.sprintf "--flows %d" flows_n;
        Printf.sprintf "--bw %g" bw_mbps;
        Printf.sprintf "--rtt %g" rtt_ms;
        Printf.sprintf "--duration %g" duration;
        Printf.sprintf "--seed %d" seed;
        "--shards 1";
      ])

let topo_cmd transports shape flows_n bw_mbps rtt_ms duration seed interval
    describe check_invariants shards domains no_fallback shard_chaos
    forensics_dir =
  Pcc_experiments.Cli_validate.(
    guarded
      [
        positive_f "--bw" bw_mbps;
        positive_f "--rtt" rtt_ms;
        positive_f "--duration" duration;
        positive_f "--interval" interval;
        positive_i "--flows" flows_n;
        non_negative_i "--shards" shards;
        non_negative_i "--domains" domains;
        (if check_invariants && shards > 0 then
           Error
             "error: --check-invariants is incompatible with --shards (the \
              checker's sweeps are engine events on one engine; sharded runs \
              are validated by the fuzz differential and the determinism CI \
              job instead)"
         else Ok ());
        (if domains > 1 && shards = 0 && shape <> "clusters" then
           Error "error: --domains drives the sharded hub; pass --shards N"
         else Ok ());
      ])
  @@ fun () ->
  match
    match shard_chaos with
    | None -> Ok ()
    | Some spec -> (
      try Ok (Shard.set_default_chaos (Shard.chaos_of_string spec))
      with Invalid_argument m -> Error m)
  with
  | Error m -> `Error (false, "error: " ^ m)
  | Ok () -> (
    if no_fallback then Degrade.set_fallback false;
    let bandwidth = Units.mbps bw_mbps in
    let rtt = rtt_ms /. 1000. in
    (* --shards 0 (the default) builds the classic monolithic topology;
       "clusters" is inherently sharded, so give it a 1-shard hub rather
       than reject it. *)
    if shards = 0 && shape <> "clusters" then begin
      let engine = Engine.create () in
      let rng = Rng.create seed in
      match
        topo_shape ~engine ~hub:None ~rng ~bandwidth ~rtt ~flows_n transports
          shape
      with
      | exception Invalid_argument msg -> `Error (false, "error: " ^ msg)
      | Error msg -> `Error (false, msg)
      | Ok topo ->
        let echo s =
          print_string s;
          flush stdout
        in
        topo_drive ~echo ~mode:Shard.Sequential ~clock:None ~describe
          ~check_invariants ~duration ~interval topo;
        `Ok ()
    end
    else begin
      (* Sharded: each degradation-ladder rung rebuilds the whole
         simulation from the seed on a fresh hub and reports into a
         buffer, printed only when a rung completes — the byte-identical
         contract then makes a degraded run's stdout indistinguishable
         from a clean one's. *)
      Printexc.record_backtrace true;
      let shards_n = max 1 shards in
      let current =
        ref { Degrade.shards = shards_n; domains = max 1 domains }
      in
      let attempt (a : Degrade.attempt) =
        current := a;
        let buf = Buffer.create 4096 in
        let echo = Buffer.add_string buf in
        let engine = Engine.create () in
        let hub = Shard.create ~shards:a.Degrade.shards () in
        let mode, clock =
          if a.Degrade.domains > 1 then begin
            Shard.configure ~wedge_grace:2.0 ~sleep:Unix.sleepf hub;
            (Shard.Parallel a.Degrade.domains, Some Unix.gettimeofday)
          end
          else (Shard.Sequential, None)
        in
        let rng = Rng.create seed in
        match
          topo_shape ~engine ~hub:(Some hub) ~rng ~bandwidth ~rtt ~flows_n
            transports shape
        with
        | Error msg -> Error msg
        | Ok topo ->
          topo_drive ~echo ~mode ~clock ~describe ~check_invariants ~duration
            ~interval topo;
          Ok (Buffer.contents buf)
      in
      let steps_taken = ref [] in
      let report (s : Degrade.step) =
        steps_taken := s :: !steps_taken;
        Printf.eprintf
          "pcc_sim: topo: shard %d %s at barrier round %d on the %d-shard / \
           %d-domain rung (%s); retrying narrower (%.2fs lost)\n%!"
          s.Degrade.shard
          (if s.Degrade.wedged then "wedged" else "crashed")
          s.Degrade.round s.Degrade.attempt.Degrade.shards
          s.Degrade.attempt.Degrade.domains s.Degrade.exn_text
          s.Degrade.wall_s
      in
      let plan = Degrade.plan ~domains:(max 1 domains) ~shards:shards_n () in
      match Degrade.run ~clock:Unix.gettimeofday ~report ~plan attempt with
      | exception Invalid_argument msg -> `Error (false, "error: " ^ msg)
      | exception Shard.Lane_failure { shard; round; wedged; origin; backtrace }
        ->
        let ladder =
          List.rev_map
            (fun (s : Degrade.step) ->
              Printf.sprintf
                "%d shard(s) / %d domain(s): shard %d %s at barrier round %d: \
                 %s"
                s.Degrade.attempt.Degrade.shards
                s.Degrade.attempt.Degrade.domains s.Degrade.shard
                (if s.Degrade.wedged then "wedged" else "crashed")
                s.Degrade.round s.Degrade.exn_text)
            !steps_taken
        in
        let bundle =
          Pcc_experiments.Forensics.write_shard_bundle ~dir:forensics_dir
            {
              Pcc_experiments.Forensics.label = "topo-" ^ shape;
              seed = Some seed;
              repro =
                Some
                  (topo_repro ~transports ~shape ~flows_n ~bw_mbps ~rtt_ms
                     ~duration ~seed);
              shards = !current.Degrade.shards;
              domains = !current.Degrade.domains;
              shard;
              round;
              wedged;
              exn_text = Printexc.to_string origin;
              backtrace;
              ladder;
            }
        in
        Option.iter
          (fun d ->
            Printf.eprintf "pcc_sim: topo: forensics bundle in %s/\n%!" d)
          bundle;
        `Error
          ( false,
            Printf.sprintf "error: shard %d %s at barrier round %d: %s" shard
              (if wedged then "wedged" else "crashed")
              round (Printexc.to_string origin) )
      | { Degrade.value = Error msg; _ } -> `Error (false, msg)
      | { Degrade.value = Ok out; steps; attempt = a } ->
        if steps <> [] then
          Printf.eprintf
            "pcc_sim: topo: degradation ladder settled at %d shard(s) / %d \
             domain(s) after %d failed rung(s)\n%!"
            a.Degrade.shards a.Degrade.domains (List.length steps);
        print_string out;
        `Ok ()
    end)

(* ------------------------------------------------------------------ *)
(* Tracing *)

let mask_of_categories s =
  let parts =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  let folded =
    List.fold_left
      (fun acc name ->
        match acc with
        | Error _ -> acc
        | Ok m -> (
          match Pcc_trace.Event.cat_of_string name with
          | Some c -> Ok (m lor c)
          | None ->
            Error
              (Printf.sprintf
                 "unknown trace category %s (engine, link, pcc, tcp, flow, \
                  all, default)"
                 name)))
      (Ok 0) parts
  in
  match folded with
  | Ok 0 -> Error "no trace category selected"
  | r -> r

let write_trace_artifacts ~dir c =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let p name = Filename.concat dir name in
  Pcc_trace.Export.write_chrome_json ~path:(p "trace.json") c;
  Pcc_trace.Export.write_decision_log ~path:(p "decisions.log") c;
  Pcc_metrics.Series_io.write_multi_series ~path:(p "trace.csv")
    (Pcc_trace.Export.csv_series c);
  Printf.printf
    "trace: %d events held (%d emitted, %d overwritten) -> \
     %s/{trace.json,trace.csv,decisions.log}\n"
    (Pcc_trace.Collector.length c)
    (Pcc_trace.Collector.emitted c)
    (Pcc_trace.Collector.dropped c)
    dir

let trace_cmd transports shape bw_mbps rtt_ms duration seed out_dir capacity
    categories probe_ms =
  match mask_of_categories categories with
  | Error msg -> `Error (false, "error: " ^ msg)
  | Ok mask ->
    Pcc_experiments.Cli_validate.(
      guarded
        [
          positive_f "--bw" bw_mbps;
          positive_f "--rtt" rtt_ms;
          positive_f "--duration" duration;
          positive_i "--buffer-events" capacity;
          positive_f "--probe-interval" probe_ms;
        ])
    @@ fun () ->
    begin
      let bandwidth = Units.mbps bw_mbps in
      let rtt = rtt_ms /. 1000. in
      let collector =
        Pcc_trace.Collector.create ~capacity ~mask
          ~probe_interval:(probe_ms /. 1000.) ()
      in
      Pcc_trace.Collector.install collector;
      let engine = Engine.create () in
      let rng = Rng.create seed in
      match
        topo_shape ~engine ~hub:None ~rng ~bandwidth ~rtt ~flows_n:1000
          transports shape
      with
      | Error msg ->
        Pcc_trace.Collector.uninstall ();
        `Error (false, msg)
      | Ok _topo ->
        Engine.run ~until:duration engine;
        write_trace_artifacts ~dir:out_dir collector;
        Pcc_trace.Collector.uninstall ();
        `Ok ()
    end

let game_cmd senders capacity steps =
  Pcc_experiments.Cli_validate.(
    guarded
      [
        at_least "--senders" 1 senders;
        positive_f "--capacity" capacity;
        non_negative_i "--steps" steps;
      ])
  @@ fun () ->
  let x0 =
    Array.init senders (fun i -> capacity /. float_of_int (i + 2))
  in
  let x = ref x0 in
  Printf.printf "step  rates (C = %.0f)\n" capacity;
  for s = 0 to steps do
    if s mod (max 1 (steps / 20)) = 0 then begin
      Printf.printf "%4d " s;
      Array.iter (fun v -> Printf.printf " %7.2f" v) !x;
      Printf.printf "  jain=%.4f\n"
        (Pcc_metrics.Stats.jain_index !x)
    end;
    x := Pcc_core.Game.step ~c:capacity !x
  done;
  `Ok ()

(* Hidden supervision self-test: a sweep with a deliberate hang and a
   deliberate crash, enabled by PCC_TEST_HANG so CI can assert that a
   supervised sweep survives both, names them in the report, and exits
   nonzero. *)
let selftest_entry : Pcc_experiments.Exp_registry.entry =
  let open Pcc_experiments in
  {
    Exp_registry.name = "selftest";
    descr = "supervision self-test: ok / hang / crash / ok (PCC_TEST_HANG)";
    parallel = true;
    render =
      (fun ?pool ?policy ?dump_dir:_ ~scale:_ ~seed:_ () ->
        let hang () =
          (* An engine that reschedules itself forever: only a Task_guard
             deadline or event ceiling gets us out. *)
          let engine = Engine.create () in
          let rec tick () =
            Engine.post_in engine ~after:1e-3 tick
          in
          tick ();
          Engine.run engine;
          0.
        in
        let tasks =
          [
            Exp_common.task ~label:"selftest/ok-before" (fun () -> 1.);
            Exp_common.task ~label:"selftest/hang" hang;
            Exp_common.task ~label:"selftest/crash" (fun () ->
                failwith "selftest: injected crash");
            Exp_common.task ~label:"selftest/ok-after" (fun () -> 2.);
          ]
        in
        let results = Exp_common.run_tasks_opt ?pool ?policy tasks in
        Exp_common.render_table
          {
            Exp_common.title = "supervision self-test";
            header = [ "task"; "result" ];
            rows =
              List.map2
                (fun t r ->
                  [
                    Exp_common.task_label t;
                    (match r with
                    | Some v -> Printf.sprintf "%.0f" v
                    | None -> "n/a");
                  ])
                tasks results;
            note = None;
          });
  }

let exp_cmd names scale seed jobs dump_dir trace_out list_exps deadline
    max_events retries backoff forensics forensic_trace checkpoint resume
    no_fallback shard_chaos =
  let open Pcc_experiments in
  if list_exps then begin
    List.iter
      (fun e ->
        Printf.printf "%-10s %s\n" e.Exp_registry.name e.Exp_registry.descr)
      Exp_registry.all;
    `Ok ()
  end
  else
    Pcc_experiments.Cli_validate.(
      guarded
        [
          positive_f "--scale" scale;
          at_least "--jobs" 1 jobs;
          opt positive_f "--deadline" deadline;
          opt positive_i "--max-task-events" max_events;
          non_negative_i "--retries" retries;
          non_negative_f "--backoff" backoff;
        ])
    @@ fun () ->
    match
      match shard_chaos with
      | None -> Ok ()
      | Some spec -> (
        try Ok (Shard.set_default_chaos (Shard.chaos_of_string spec))
        with Invalid_argument m -> Error m)
    with
    | Error m -> `Error (false, "error: " ^ m)
    | Ok () ->
    if no_fallback then Degrade.set_fallback false;
    (* Tracing records into domain-local state, so a traced run must stay
       in this domain: force the fan-out to be sequential. *)
    let jobs =
      match trace_out with
      | Some _ when jobs > 1 ->
        Printf.eprintf "exp: --trace-out forces --jobs 1 (was %d)\n%!" jobs;
        1
      | _ -> jobs
    in
    let collector =
      Option.map
        (fun _ ->
          let c = Pcc_trace.Collector.create () in
          Pcc_trace.Collector.install c;
          c)
        trace_out
    in
    let registry =
      if Sys.getenv_opt "PCC_TEST_HANG" <> None then
        Exp_registry.all @ [ selftest_entry ]
      else Exp_registry.all
    in
    let entries =
      match names with
      | [] -> Ok Exp_registry.all
      | names ->
        let find n =
          List.find_opt (fun e -> e.Exp_registry.name = n) registry
        in
        let unknown = List.filter (fun n -> find n = None) names in
        if unknown <> [] then
          Error
            (Printf.sprintf "error: unknown experiment(s): %s (try --list)"
               (String.concat ", " unknown))
        else Ok (List.filter_map find names)
    in
    match entries with
    | Error msg -> `Error (false, msg)
    | Ok entries -> (
      let names_list = List.map (fun e -> e.Exp_registry.name) entries in
      (* A resumed run must be the same sweep: same seed, scale and
         experiment selection, or byte-identity is meaningless. *)
      let resume_loaded =
        match resume with
        | None -> Ok []
        | Some path -> (
          try
            let meta, records = Checkpoint.load ~path in
            if Checkpoint.matches meta ~seed ~scale ~names:names_list then
              Ok records
            else
              Error
                (Printf.sprintf
                   "error: checkpoint %s was taken with --seed %d --scale %g \
                    over %d experiment(s); rerun with the same parameters \
                    and selection"
                   path meta.Checkpoint.seed meta.Checkpoint.scale
                   (List.length meta.Checkpoint.names))
          with
          | Pcc_sim.Persist.Corrupt m ->
            Error (Printf.sprintf "error: corrupt checkpoint %s: %s" path m)
          | Sys_error m ->
            Error (Printf.sprintf "error: cannot read checkpoint: %s" m))
      in
      match resume_loaded with
      | Error msg -> `Error (false, msg)
      | Ok stored ->
        if stored <> [] then
          Printf.eprintf
            "exp: resuming: %d/%d experiment(s) restored from checkpoint\n%!"
            (List.length stored) (List.length entries);
        (* --resume without --checkpoint keeps checkpointing into the
           same file, so a resumed run can itself be killed and resumed. *)
        let ckpt_path =
          match (checkpoint, resume) with
          | Some p, _ -> Some p
          | None, p -> p
        in
        let ckpt =
          Option.map
            (fun path ->
              let t =
                Checkpoint.create ~path
                  { Checkpoint.seed; scale; names = names_list }
              in
              List.iter
                (fun (name, output) -> Checkpoint.append t ~name ~output)
                stored;
              t)
            ckpt_path
        in
        Supervisor.reset_failures ();
        let policy =
          {
            Supervisor.default_policy with
            Supervisor.jobs;
            deadline;
            max_events;
            retries;
            backoff;
            transient = (fun _ -> retries > 0);
            forensics_dir = Some forensics;
            forensic_trace;
          }
        in
        let exit_after =
          Option.bind (Sys.getenv_opt "PCC_TEST_EXIT_AFTER") int_of_string_opt
        in
        let completed = ref 0 in
        List.iter
          (fun e ->
            let open Exp_registry in
            Printf.printf "\n### %s — %s\n%!" e.name e.descr;
            let out =
              match List.assoc_opt e.name stored with
              | Some out ->
                Printf.eprintf "exp: %s restored from checkpoint\n%!" e.name;
                out
              | None ->
                let policy =
                  {
                    policy with
                    Supervisor.repro_context =
                      Some
                        (Printf.sprintf "pcc_sim exp %s --scale %g --seed %d"
                           e.name scale seed);
                  }
                in
                let out = e.render ~policy ?dump_dir ~scale ~seed () in
                Option.iter
                  (fun t -> Checkpoint.append t ~name:e.name ~output:out)
                  ckpt;
                out
            in
            print_string out;
            flush stdout;
            incr completed;
            match exit_after with
            | Some n when !completed >= n && !completed < List.length entries
              ->
              (* Checkpoint-resume smoke hook: die mid-sweep, cleanly. *)
              Printf.eprintf "exp: PCC_TEST_EXIT_AFTER=%d, exiting early\n%!"
                n;
              Option.iter Checkpoint.close ckpt;
              exit 3
            | _ -> ())
          entries;
        Option.iter Checkpoint.close ckpt;
        (match (collector, trace_out) with
        | Some c, Some dir ->
          write_trace_artifacts ~dir c;
          Pcc_trace.Collector.uninstall ()
        | _ -> ());
        (* Partial results were printed above; now make the failure
           visible in the exit status with a one-line summary. *)
        (match Supervisor.failures () with
        | [] -> `Ok ()
        | failures ->
          let shown = List.filteri (fun i _ -> i < 6) failures in
          (* A shard-lane failure names its shard and barrier round in
             the one-line summary instead of a bare "crashed". *)
          let lane_prefix = "Shard.Lane_failure: " in
          let names =
            List.map
              (fun (o : Supervisor.outcome) ->
                let status_text =
                  match o.Supervisor.status with
                  | Supervisor.Crashed { Supervisor.exn_text; _ }
                    when String.starts_with ~prefix:lane_prefix exn_text -> (
                    let rest =
                      String.sub exn_text
                        (String.length lane_prefix)
                        (String.length exn_text - String.length lane_prefix)
                    in
                    match String.index_opt rest ':' with
                    | Some i -> String.sub rest 0 i
                    | None -> rest)
                  | s -> Supervisor.status_name s
                in
                Printf.sprintf "%s (%s)" o.Supervisor.label status_text)
              shown
          in
          let suffix =
            if List.length failures > List.length shown then ", ..." else ""
          in
          `Error
            ( false,
              Printf.sprintf "error: %d task(s) failed: %s%s (forensics in %s/)"
                (List.length failures)
                (String.concat ", " names)
                suffix forensics )))

(* ------------------------------------------------------------------ *)
(* Scenario fuzzing *)

let fuzz_cmd runs seed corpus deep_every shard_every chaos_every shards
    shrink_budget transports replay replay_dir =
  Pcc_experiments.Cli_validate.(
    guarded
      [
        non_negative_i "--runs" runs;
        non_negative_i "--deep-every" deep_every;
        non_negative_i "--shard-every" shard_every;
        non_negative_i "--chaos-every" chaos_every;
        at_least "--shards" 2 shards;
        non_negative_i "--shrink-budget" shrink_budget;
      ])
  @@ fun () ->
  let menu_result =
    match transports with
    | None -> Ok None
    | Some spec -> (
      let names =
        List.filter
          (fun s -> s <> "")
          (String.split_on_char ',' spec |> List.map String.trim)
      in
      if names = [] then Error "--transports: empty transport list"
      else
        match
          List.find_map
            (fun n ->
              match Pcc_scenario.Transport.of_name n with
              | Ok _ -> None
              | Error m -> Some m)
            names
        with
        | Some m -> Error ("--transports: " ^ m)
        | None -> Ok (Some names))
  in
  match menu_result with
  | Error m -> `Error (false, "error: " ^ m)
  | Ok menu ->
  match
    try Ok (Pcc_fuzz.Driver.synth_of_env ())
    with Invalid_argument m -> Error m
  with
  | Error m -> `Error (false, "error: " ^ m)
  | Ok synth_opt -> (
    let synth = Option.value synth_opt ~default:(fun _ -> None) in
    match (replay, replay_dir) with
    | Some path, _ -> (
      match Pcc_fuzz.Driver.replay ~synth ~shards path with
      | Ok () ->
        Printf.printf "replay %s: all oracles pass\n" path;
        `Ok ()
      | Error f ->
        `Error
          ( false,
            Printf.sprintf "error: replay %s fails %s: %s" path
              f.Pcc_fuzz.Oracle.oracle f.Pcc_fuzz.Oracle.detail )
      | exception Failure m -> `Error (false, "error: " ^ m)
      | exception Persist.Corrupt m ->
        `Error (false, "error: corrupt repro: " ^ m)
      | exception Sys_error m -> `Error (false, "error: " ^ m))
    | None, Some dir -> (
      match
        Pcc_fuzz.Driver.replay_dir ~synth ~shards ~log:print_endline dir
      with
      | [] ->
        Printf.printf "corpus %s: all repros pass\n" dir;
        `Ok ()
      | failing ->
        `Error
          ( false,
            Printf.sprintf "error: %d corpus repro(s) still fail"
              (List.length failing) )
      | exception Failure m -> `Error (false, "error: " ^ m)
      | exception Persist.Corrupt m ->
        `Error (false, "error: corrupt repro: " ^ m)
      | exception Sys_error m -> `Error (false, "error: " ^ m))
    | None, None -> (
      let summary =
        Pcc_fuzz.Driver.fuzz ~synth ~deep_every ~shard_every ~chaos_every
          ~shards ~shrink_budget ?corpus_dir:corpus ?menu ~log:print_endline
          ~runs ~seed ()
      in
      match summary.Pcc_fuzz.Driver.failed with
      | [] -> `Ok ()
      | failed ->
        let oracles =
          List.map
            (fun (r : Pcc_fuzz.Driver.failure_report) ->
              Printf.sprintf "run %d (%s)" r.Pcc_fuzz.Driver.run
                r.Pcc_fuzz.Driver.failure.Pcc_fuzz.Oracle.oracle)
            failed
        in
        `Error
          ( false,
            Printf.sprintf "error: %d/%d fuzz run(s) failed: %s"
              (List.length failed) runs
              (String.concat ", " oracles) )))

let list_cmd () =
  Printf.printf "transports:\n";
  List.iter (Printf.printf "  %s\n") Transport.all_names;
  Printf.printf "queues:\n  droptail codel red infinite fq fq-codel\n";
  `Ok ()

(* ------------------------------------------------------------------ *)

let transports_arg =
  Arg.(
    value
    & opt_all transport_conv [ Transport.pcc () ]
    & info [ "t"; "transport" ] ~docv:"NAME"
        ~doc:"Transport for one flow (repeatable). See $(b,pcc_sim list).")

let bw_arg =
  Arg.(value & opt float 100. & info [ "bw" ] ~docv:"MBPS" ~doc:"Bottleneck bandwidth.")

let rtt_arg =
  Arg.(value & opt float 30. & info [ "rtt" ] ~docv:"MS" ~doc:"Base round-trip time.")

let loss_arg =
  Arg.(value & opt float 0. & info [ "loss" ] ~docv:"P" ~doc:"Forward random loss probability.")

let rev_loss_arg =
  Arg.(value & opt float 0. & info [ "rev-loss" ] ~docv:"P" ~doc:"Ack-path random loss probability.")

let jitter_arg =
  Arg.(value & opt float 0. & info [ "jitter" ] ~docv:"MS" ~doc:"Uniform extra forward delay bound.")

let buffer_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "buffer" ] ~docv:"KB" ~doc:"Bottleneck buffer (default: one BDP).")

let queue_arg =
  Arg.(
    value & opt string "droptail"
    & info [ "queue" ] ~docv:"KIND" ~doc:"Queue discipline (see $(b,pcc_sim list)).")

let duration_arg =
  Arg.(value & opt float 30. & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")

let interval_arg =
  Arg.(value & opt float 1. & info [ "interval" ] ~docv:"S" ~doc:"Reporting interval.")

let check_invariants_arg =
  Arg.(
    value & flag
    & info [ "check-invariants" ]
        ~doc:
          "Attach the runtime invariant checker (packet conservation, queue \
           occupancy, throughput bounds) to the topology; any violation \
           aborts the run with a diagnostic.")

let run_term =
  Term.(
    ret
      (const run_cmd $ transports_arg $ bw_arg $ rtt_arg $ loss_arg
     $ rev_loss_arg $ jitter_arg $ buffer_arg $ queue_arg $ duration_arg
     $ seed_arg $ interval_arg $ check_invariants_arg))

let chaos_term =
  let transport_arg =
    Arg.(
      value
      & opt transport_conv (Transport.pcc ())
      & info [ "t"; "transport" ] ~docv:"NAME"
          ~doc:"Transport to run through the gauntlet.")
  in
  let chaos_duration_arg =
    Arg.(
      value & opt float 60.
      & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.1
      & info [ "rate" ] ~docv:"HZ"
          ~doc:"Mean Poisson fault arrival rate (faults per second).")
  in
  Term.(
    ret
      (const chaos_cmd $ transport_arg $ bw_arg $ rtt_arg $ chaos_duration_arg
     $ seed_arg $ rate_arg $ check_invariants_arg))

let topo_term =
  let shape_arg =
    Arg.(
      value & opt string "dumbbell"
      & info [ "shape" ] ~docv:"SHAPE"
          ~doc:
            "Topology shape: $(b,dumbbell) (one bottleneck), $(b,parking) \
             (asymmetric 3-hop chain), $(b,revpath) (ack path 100x narrower \
             than the data path), $(b,fanin-large) ($(b,--flows) sized PCC \
             transfers over one bottleneck, reported in aggregate), or \
             $(b,clusters) (chained fan-in dumbbells that spread over \
             $(b,--shards)).")
  in
  let flows_arg =
    Arg.(
      value & opt int 10_000
      & info [ "flows" ] ~docv:"N"
          ~doc:
            "Flow population for $(b,fanin-large) (other shapes take one \
             flow per $(b,--transport)).")
  in
  let describe_arg =
    Arg.(
      value & flag
      & info [ "describe" ]
          ~doc:"Print the built graph (nodes, links, routes) and exit.")
  in
  let shards_arg =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Partition the topology over $(docv) shards and drive it through \
             the conservative parallel hub. Output is byte-identical to the \
             monolithic run for every $(docv); 0 (the default) builds the \
             classic single-engine topology. Incompatible with \
             $(b,--check-invariants).")
  in
  let domains_arg =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Fan the hub's windows out over up to $(docv) worker domains \
             (clamped to the shard count), with the out-of-band wedge \
             watchdog armed. 0 or 1 (the default) executes windows \
             sequentially. Output stays byte-identical at every value.")
  in
  let no_fallback_arg =
    Arg.(
      value & flag
      & info [ "no-fallback" ]
          ~doc:
            "Disable the degradation ladder: the first shard-lane failure \
             exits nonzero immediately (after writing its forensics bundle) \
             instead of transparently retrying the run at half the width.")
  in
  let shard_chaos_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "shard-chaos" ] ~docv:"SPEC"
          ~doc:
            "Deterministic fault injection into the sharded runtime: \
             comma-separated $(b,crash=SHARD:ROUND) and/or \
             $(b,wedge=SHARD:ROUND) fire in that shard's window at that \
             lifetime barrier round. Equivalent to \
             $(b,PCC_TEST_SHARD_CRASH) / $(b,PCC_TEST_SHARD_WEDGE); the \
             flag wins over the environment. Chaos never fires on a 1-shard \
             hub, so the ladder's final rung always runs clean.")
  in
  let topo_forensics_arg =
    Arg.(
      value & opt string "forensics"
      & info [ "forensics" ] ~docv:"DIR"
          ~doc:
            "Directory for the crash-forensics bundle written when a sharded \
             run fails its last ladder rung (or its first, under \
             $(b,--no-fallback)): exception, backtrace, seed, shard, barrier \
             round, the degradation steps taken, and the exact single-shard \
             repro command.")
  in
  Term.(
    ret
      (const topo_cmd $ transports_arg $ shape_arg $ flows_arg $ bw_arg
     $ rtt_arg $ duration_arg $ seed_arg $ interval_arg $ describe_arg
     $ check_invariants_arg $ shards_arg $ domains_arg $ no_fallback_arg
     $ shard_chaos_arg $ topo_forensics_arg))

let game_term =
  let senders =
    Arg.(value & opt int 4 & info [ "senders" ] ~docv:"N" ~doc:"Competing senders.")
  in
  let capacity =
    Arg.(value & opt float 100. & info [ "capacity" ] ~docv:"C" ~doc:"Link capacity.")
  in
  let steps =
    Arg.(value & opt int 2000 & info [ "steps" ] ~docv:"N" ~doc:"Dynamics rounds.")
  in
  Term.(ret (const game_cmd $ senders $ capacity $ steps))

let exp_term =
  let names_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"EXPERIMENT"
          ~doc:"Experiments to run (default: all). See $(b,--list).")
  in
  let scale_arg =
    Arg.(
      value & opt float 0.3
      & info [ "scale" ] ~docv:"S"
          ~doc:"Fraction of the paper's run durations.")
  in
  let jobs_arg =
    Arg.(
      value & opt int (Pcc_experiments.Runner.default_jobs ())
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the simulation fan-out (default: the \
             machine's recommended domain count). Output is byte-identical \
             for every N.")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-dir" ] ~docv:"DIR"
          ~doc:"Also write fig11/fig12 time-series CSVs into $(docv).")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List experiments and exit.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"DIR"
          ~doc:
            "Record a structured event trace of the whole run and write \
             $(docv)/{trace.json,trace.csv,decisions.log}. Forces \
             $(b,--jobs) 1.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"S"
          ~doc:
            "Per-task wall-clock budget in seconds. A task past it is timed \
             out in place (inside the engine) or abandoned by the watchdog \
             (stuck outside it); the sweep continues with partial results.")
  in
  let max_events_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-task-events" ] ~docv:"N"
          ~doc:
            "Per-task engine event ceiling — a deterministic budget, unlike \
             $(b,--deadline).")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Re-run a failing task up to $(docv) times with bounded \
             exponential backoff; a task that exhausts them is quarantined. \
             Timeouts are never retried.")
  in
  let backoff_arg =
    Arg.(
      value & opt float 0.1
      & info [ "backoff" ] ~docv:"S"
          ~doc:"Initial retry delay; doubles per attempt, capped at 2 s.")
  in
  let forensics_arg =
    Arg.(
      value & opt string "forensics"
      & info [ "forensics" ] ~docv:"DIR"
          ~doc:
            "Directory for per-task failure bundles: exception, backtrace, \
             seed and exact repro command line, plus the task's trace ring \
             when one is recording.")
  in
  let forensic_trace_arg =
    Arg.(
      value & flag
      & info [ "forensic-trace" ]
          ~doc:
            "Record every task into a private trace ring so a failure dumps \
             its recent event history into the forensics bundle even in an \
             otherwise untraced run.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write each completed experiment's output to $(docv) (flushed \
             per experiment) so a killed run can continue with \
             $(b,--resume).")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Continue a killed run: completed experiments are re-printed \
             from $(docv) byte-identically, only the rest re-run, and \
             checkpointing continues into the same file. Requires the same \
             --seed, --scale and experiment selection.")
  in
  let no_fallback_arg =
    Arg.(
      value & flag
      & info [ "no-fallback" ]
          ~doc:
            "Disable the shard degradation ladder: a sharded experiment's \
             first lane failure fails the task (named in the exit summary \
             with its shard and barrier round) instead of transparently \
             retrying at half the width.")
  in
  let shard_chaos_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "shard-chaos" ] ~docv:"SPEC"
          ~doc:
            "Deterministic fault injection into sharded experiments: \
             comma-separated $(b,crash=SHARD:ROUND) and/or \
             $(b,wedge=SHARD:ROUND), as in $(b,pcc_sim topo). Equivalent to \
             $(b,PCC_TEST_SHARD_CRASH) / $(b,PCC_TEST_SHARD_WEDGE).")
  in
  Term.(
    ret
      (const exp_cmd $ names_arg $ scale_arg $ seed_arg $ jobs_arg $ dump_arg
     $ trace_out_arg $ list_arg $ deadline_arg $ max_events_arg $ retries_arg
     $ backoff_arg $ forensics_arg $ forensic_trace_arg $ checkpoint_arg
     $ resume_arg $ no_fallback_arg $ shard_chaos_arg))

let trace_term =
  let shape_arg =
    Arg.(
      value & opt string "dumbbell"
      & info [ "shape" ] ~docv:"SHAPE"
          ~doc:
            "Topology shape, as in $(b,pcc_sim topo): $(b,dumbbell), \
             $(b,parking), or $(b,revpath).")
  in
  let out_arg =
    Arg.(
      value & opt string "trace-out"
      & info [ "out"; "o" ] ~docv:"DIR"
          ~doc:"Directory for trace.json, trace.csv and decisions.log.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 262144
      & info [ "buffer-events" ] ~docv:"N"
          ~doc:
            "Ring-buffer capacity in events; once full the oldest events \
             are overwritten.")
  in
  let categories_arg =
    Arg.(
      value & opt string "default"
      & info [ "categories" ] ~docv:"CATS"
          ~doc:
            "Comma-separated event categories to record: $(b,link), \
             $(b,pcc), $(b,tcp), $(b,flow), $(b,engine) (per-dispatch \
             records, voluminous), $(b,all), or $(b,default) (all but \
             engine).")
  in
  let probe_arg =
    Arg.(
      value & opt float 10.
      & info [ "probe-interval" ] ~docv:"MS"
          ~doc:"Link-queue occupancy sampling period.")
  in
  let trace_duration_arg =
    Arg.(
      value & opt float 10.
      & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")
  in
  Term.(
    ret
      (const trace_cmd $ transports_arg $ shape_arg $ bw_arg $ rtt_arg
     $ trace_duration_arg $ seed_arg $ out_arg $ capacity_arg
     $ categories_arg $ probe_arg))

let fuzz_term =
  let runs_arg =
    Arg.(
      value & opt int 100
      & info [ "runs" ] ~docv:"N" ~doc:"Random scenarios to generate and test.")
  in
  let fuzz_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Master seed; each run derives its own. The whole campaign — \
             scenarios, oracle verdicts, shrinking, output — is a pure \
             function of ($(b,--seed), $(b,--runs)).")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Bank a minimized self-contained repro file for every failure \
             into $(docv) (created if missing).")
  in
  let deep_every_arg =
    Arg.(
      value & opt int 8
      & info [ "deep-every" ] ~docv:"N"
          ~doc:
            "Run the expensive supervisor/checkpoint differentials on every \
             $(docv)th scenario (0 disables them).")
  in
  let shard_every_arg =
    Arg.(
      value & opt int 4
      & info [ "shard-every" ] ~docv:"N"
          ~doc:
            "Run the sharded-execution differential (1-shard vs \
             $(b,--shards)-shard hub, bit-identical digests required) on \
             every $(docv)th scenario (0 disables it).")
  in
  let chaos_every_arg =
    Arg.(
      value & opt int 4
      & info [ "chaos-every" ] ~docv:"N"
          ~doc:
            "Run the chaos-ladder differential (a deterministic lane crash \
             injected into the $(b,--shards)-shard run must complete via \
             the degradation ladder with a digest bit-identical to the \
             clean 1-shard run) on every $(docv)th scenario (0 disables \
             it).")
  in
  let shards_arg =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard count the sharded differential compares against the \
             1-shard hub run.")
  in
  let shrink_budget_arg =
    Arg.(
      value & opt int 300
      & info [ "shrink-budget" ] ~docv:"N"
          ~doc:"Oracle invocations the minimizer may spend per failure.")
  in
  let transports_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "transports" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated transport names restricting the generator's \
             menu (e.g. \
             $(b,pcc,pcc-vivace,pcc-proteus,pcc-proteus-scavenger) for a \
             controllers-only campaign). Default: every known transport.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay one repro file under the full oracle suite instead of \
             fuzzing; exits 0 when every oracle passes.")
  in
  let replay_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay-dir" ] ~docv:"DIR"
          ~doc:
            "Replay every $(b,.repro) file in $(docv); exits 0 when the \
             whole corpus passes.")
  in
  Term.(
    ret
      (const fuzz_cmd $ runs_arg $ fuzz_seed_arg $ corpus_arg $ deep_every_arg
     $ shard_every_arg $ chaos_every_arg $ shards_arg $ shrink_budget_arg
     $ transports_arg $ replay_arg $ replay_dir_arg))

let cmds =
  [
    Cmd.v
      (Cmd.info "run" ~doc:"Simulate flows sharing one bottleneck link")
      (with_scheduler run_term);
    Cmd.v
      (Cmd.info "exp"
         ~doc:
           "Reproduce the paper's experiments (optionally in parallel with \
            --jobs)")
      (with_scheduler exp_term);
    Cmd.v
      (Cmd.info "topo"
         ~doc:
           "Simulate flows on a graph topology (multi-hop chains, congested \
            reverse paths)")
      (with_scheduler topo_term);
    Cmd.v
      (Cmd.info "trace"
         ~doc:
           "Run a scenario with the structured tracer on and export \
            Perfetto-loadable JSON, CSV series and a decision log")
      (with_scheduler trace_term);
    Cmd.v
      (Cmd.info "chaos"
         ~doc:
           "Run a transport through a seeded fault gauntlet and report \
            per-fault recovery")
      (with_scheduler chaos_term);
    Cmd.v
      (Cmd.info "game" ~doc:"Run the Sec. 2.2 game dynamics (Theorems 1-2)")
      (with_scheduler game_term);
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:
           "Generate random scenarios, test them against invariant and \
            differential oracles, and minimize any failure into a replayable \
            repro file")
      (with_scheduler fuzz_term);
    Cmd.v
      (Cmd.info "list" ~doc:"List transports and queue disciplines")
      Term.(ret (const list_cmd $ const ()));
  ]

let () =
  let doc = "packet-level simulator for the PCC congestion-control paper" in
  exit (Cmd.eval (Cmd.group (Cmd.info "pcc_sim" ~doc) cmds))
