#!/usr/bin/env bash
# Bench regression gate: compare a fresh BENCH_pcc.json against the
# committed baseline and fail if aggregate event throughput regressed
# beyond the budget.
#
#   check_bench.sh BASELINE.json FRESH.json [MAX_REGRESSION] [MAX_REGRESSION_EACH]
#
# MAX_REGRESSION is a fraction (default 0.30 = fail when the fresh run
# sustains < 70% of the baseline's events/sec). Experiments are joined
# by name, so a baseline regenerated with a different --only set still
# gates on whatever overlaps; the aggregate pools events and wall time
# across the joined set so one tiny, noisy experiment cannot fail the
# gate on its own. On top of the aggregate, each individual experiment
# is gated against the looser MAX_REGRESSION_EACH budget (default 0.50),
# so a single experiment cratering cannot hide behind the pooled mean —
# the slack exists because a lone experiment's events/sec is noisier
# than the pool. A markdown table goes to $GITHUB_STEP_SUMMARY when
# that is set. Experiments reporting zero events on either side (e.g. a
# crashed run, or a computation the event counter cannot see) are listed
# but excluded from the aggregate and the per-experiment gate, since
# they contribute wall time with no events and would skew the pooled
# events/sec arbitrarily.
set -euo pipefail

usage="usage: check_bench.sh BASELINE.json FRESH.json [MAX_REGRESSION] [MAX_REGRESSION_EACH]"
baseline=${1:?$usage}
fresh=${2:?$usage}
max_reg=${3:-0.30}
max_reg_each=${4:-0.50}

for f in "$baseline" "$fresh"; do
  if [ ! -f "$f" ]; then
    echo "check_bench: $f not found" >&2
    exit 1
  fi
done

rows=$(jq -r --slurpfile b "$baseline" '
  ($b[0].experiments | map({(.name): .}) | add) as $base
  | [ .experiments[] | select($base[.name] != null) ][]
  | [ .name,
      $base[.name].events_per_sec,
      .events_per_sec,
      (if $base[.name].events_per_sec > 0
       then .events_per_sec / $base[.name].events_per_sec
       else 1 end) ]
  | @tsv' "$fresh")

if [ -z "$rows" ]; then
  echo "check_bench: no common experiments between $baseline and $fresh" >&2
  exit 1
fi

agg=$(jq -r --slurpfile b "$baseline" '
  ($b[0].experiments | map({(.name): .}) | add) as $base
  | [ .experiments[]
      | select($base[.name] != null
               and $base[.name].events > 0 and .events > 0) ] as $common
  | if ($common | length) == 0 then "0 0 1"
    else
      (([ $common[] | $base[.name].events ] | add)
       / ([ $common[] | $base[.name].wall_s ] | add)) as $be
      | (([ $common[] | .events ] | add)
         / ([ $common[] | .wall_s ] | add)) as $fe
      | "\($be) \($fe) \($fe / $be)"
    end' "$fresh")
read -r base_eps fresh_eps ratio <<<"$agg"

skipped=$(jq -r --slurpfile b "$baseline" '
  ($b[0].experiments | map({(.name): .}) | add) as $base
  | [ .experiments[]
      | select($base[.name] != null
               and ($base[.name].events == 0 or .events == 0))
      | .name ]
  | join(", ")' "$fresh")

threshold=$(awk -v m="$max_reg" 'BEGIN { printf "%.4f", 1 - m }')
ok=$(awk -v r="$ratio" -v t="$threshold" 'BEGIN { print (r >= t) ? "yes" : "no" }')

# Per-experiment gate: every joined experiment with events on both
# sides must individually stay within the (looser) per-experiment
# budget.
each_threshold=$(awk -v m="$max_reg_each" 'BEGIN { printf "%.4f", 1 - m }')
slow=$(jq -r --slurpfile b "$baseline" --argjson t "$each_threshold" '
  ($b[0].experiments | map({(.name): .}) | add) as $base
  | [ .experiments[]
      | select($base[.name] != null
               and $base[.name].events > 0 and .events > 0
               and $base[.name].events_per_sec > 0
               and (.events_per_sec / $base[.name].events_per_sec) < $t)
      | .name ]
  | join(", ")' "$fresh")

{
  echo "## Bench regression gate"
  echo ""
  echo "| experiment | baseline ev/s | fresh ev/s | ratio |"
  echo "|---|---:|---:|---:|"
  while IFS=$'\t' read -r name beps feps r; do
    printf '| %s | %.0f | %.0f | %.2f |\n' "$name" "$beps" "$feps" "$r"
  done <<<"$rows"
  printf '| **aggregate** | %.0f | %.0f | **%.2f** |\n' \
    "$base_eps" "$fresh_eps" "$ratio"
  echo ""
  if [ -n "$skipped" ]; then
    echo "Excluded from the aggregate (zero events): $skipped"
    echo ""
  fi
  if [ "$ok" = yes ]; then
    echo "Aggregate events/sec ratio $ratio ≥ $threshold: within budget."
  else
    echo "**Aggregate events/sec ratio $ratio < $threshold: regression beyond the ${max_reg} budget.**"
  fi
  if [ -n "$slow" ]; then
    echo ""
    echo "**Per-experiment regression beyond the ${max_reg_each} budget (ratio < $each_threshold): $slow**"
  fi
} | tee -a "${GITHUB_STEP_SUMMARY:-/dev/null}"

[ "$ok" = yes ] && [ -z "$slow" ]
