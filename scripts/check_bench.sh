#!/usr/bin/env bash
# Bench regression gate: compare a fresh BENCH_pcc.json against the
# committed baseline and fail if aggregate event throughput regressed
# beyond the budget.
#
#   check_bench.sh BASELINE.json FRESH.json [MAX_REGRESSION] [MAX_REGRESSION_EACH]
#
# MAX_REGRESSION is a fraction (default 0.30 = fail when the fresh run
# sustains < 70% of the baseline's events/sec). Experiments are joined
# by name, so a baseline regenerated with a different --only set still
# gates on whatever overlaps; the aggregate pools events and wall time
# across the joined set so one tiny, noisy experiment cannot fail the
# gate on its own. On top of the aggregate, each individual experiment
# is gated against the looser MAX_REGRESSION_EACH budget (default 0.50),
# so a single experiment cratering cannot hide behind the pooled mean —
# the slack exists because a lone experiment's events/sec is noisier
# than the pool. A markdown table goes to $GITHUB_STEP_SUMMARY when
# that is set. Experiments reporting zero events on either side (e.g. a
# crashed run, or a computation the event counter cannot see) are listed
# but excluded from the aggregate and the per-experiment gate, since
# they contribute wall time with no events and would skew the pooled
# events/sec arbitrarily.
#
# When the fresh run carries a "sharding" section (bench --shards), two
# further gates apply to it alone (no baseline join): every sharded run
# must report identical=true (digest identity with the 1-shard run is
# unconditional), and — only on hosts reporting >= 4 cores — the
# 4-shard run must sustain at least MIN_SHARD_SPEEDUP (default 2.0)
# times the 1-shard events/sec. Few-core hosts record their honest
# numbers and skip the speedup gate.
#
# When the fresh run carries a "controllers" section (bench
# --controllers), its gate checks that each controller's control plane
# actually ran: every controller must complete monitor intervals and
# execute events, every gradient-ascent controller (vivace / proteus
# family) must record gradient steps, and the Proteus scavenger must
# record utility-class switches (its start-up overshoot always forces
# at least one probe->yield->probe round trip).
set -euo pipefail

usage="usage: check_bench.sh BASELINE.json FRESH.json [MAX_REGRESSION] [MAX_REGRESSION_EACH]"
baseline=${1:?$usage}
fresh=${2:?$usage}
max_reg=${3:-0.30}
max_reg_each=${4:-0.50}
min_shard_speedup=${MIN_SHARD_SPEEDUP:-2.0}

for f in "$baseline" "$fresh"; do
  if [ ! -f "$f" ]; then
    echo "check_bench: $f not found" >&2
    exit 1
  fi
done

rows=$(jq -r --slurpfile b "$baseline" '
  ($b[0].experiments | map({(.name): .}) | add) as $base
  | [ .experiments[] | select($base[.name] != null) ][]
  | [ .name,
      $base[.name].events_per_sec,
      .events_per_sec,
      (if $base[.name].events_per_sec > 0
       then .events_per_sec / $base[.name].events_per_sec
       else 1 end) ]
  | @tsv' "$fresh")

if [ -z "$rows" ]; then
  echo "check_bench: no common experiments between $baseline and $fresh" >&2
  exit 1
fi

agg=$(jq -r --slurpfile b "$baseline" '
  ($b[0].experiments | map({(.name): .}) | add) as $base
  | [ .experiments[]
      | select($base[.name] != null
               and $base[.name].events > 0 and .events > 0) ] as $common
  | if ($common | length) == 0 then "0 0 1"
    else
      (([ $common[] | $base[.name].events ] | add)
       / ([ $common[] | $base[.name].wall_s ] | add)) as $be
      | (([ $common[] | .events ] | add)
         / ([ $common[] | .wall_s ] | add)) as $fe
      | "\($be) \($fe) \($fe / $be)"
    end' "$fresh")
read -r base_eps fresh_eps ratio <<<"$agg"

skipped=$(jq -r --slurpfile b "$baseline" '
  ($b[0].experiments | map({(.name): .}) | add) as $base
  | [ .experiments[]
      | select($base[.name] != null
               and ($base[.name].events == 0 or .events == 0))
      | .name ]
  | join(", ")' "$fresh")

threshold=$(awk -v m="$max_reg" 'BEGIN { printf "%.4f", 1 - m }')
ok=$(awk -v r="$ratio" -v t="$threshold" 'BEGIN { print (r >= t) ? "yes" : "no" }')

# Per-experiment gate: every joined experiment with events on both
# sides must individually stay within the (looser) per-experiment
# budget.
each_threshold=$(awk -v m="$max_reg_each" 'BEGIN { printf "%.4f", 1 - m }')
slow=$(jq -r --slurpfile b "$baseline" --argjson t "$each_threshold" '
  ($b[0].experiments | map({(.name): .}) | add) as $base
  | [ .experiments[]
      | select($base[.name] != null
               and $base[.name].events > 0 and .events > 0
               and $base[.name].events_per_sec > 0
               and (.events_per_sec / $base[.name].events_per_sec) < $t)
      | .name ]
  | join(", ")' "$fresh")

{
  echo "## Bench regression gate"
  echo ""
  echo "| experiment | baseline ev/s | fresh ev/s | ratio |"
  echo "|---|---:|---:|---:|"
  while IFS=$'\t' read -r name beps feps r; do
    printf '| %s | %.0f | %.0f | %.2f |\n' "$name" "$beps" "$feps" "$r"
  done <<<"$rows"
  printf '| **aggregate** | %.0f | %.0f | **%.2f** |\n' \
    "$base_eps" "$fresh_eps" "$ratio"
  echo ""
  if [ -n "$skipped" ]; then
    echo "Excluded from the aggregate (zero events): $skipped"
    echo ""
  fi
  if [ "$ok" = yes ]; then
    echo "Aggregate events/sec ratio $ratio ≥ $threshold: within budget."
  else
    echo "**Aggregate events/sec ratio $ratio < $threshold: regression beyond the ${max_reg} budget.**"
  fi
  if [ -n "$slow" ]; then
    echo ""
    echo "**Per-experiment regression beyond the ${max_reg_each} budget (ratio < $each_threshold): $slow**"
  fi
} | tee -a "${GITHUB_STEP_SUMMARY:-/dev/null}"

# --- Sharding gate (fresh file only) -------------------------------
shard_ok=yes
if jq -e '.sharding' "$fresh" >/dev/null 2>&1; then
  cores=$(jq -r '.sharding.cores' "$fresh")
  nonidentical=$(jq -r \
    '[.sharding.runs[] | select(.identical | not) | "\(.shards)"] | join(", ")' \
    "$fresh")
  speedup=$(jq -r '
    (.sharding.runs | map({(.shards|tostring): .}) | add) as $r
    | if $r["1"] and $r["4"] and ($r["1"].events_per_sec > 0)
      then ($r["4"].events_per_sec / $r["1"].events_per_sec)
      else "n/a" end' "$fresh")
  # Verdicts computed here, not inside the tee pipeline — a piped group
  # is a subshell, so assignments made there would be lost.
  [ -n "$nonidentical" ] && shard_ok=no
  speedup_ok=skip
  if [ "$cores" -ge 4 ] && [ "$speedup" != "n/a" ]; then
    if awk -v s="$speedup" -v m="$min_shard_speedup" 'BEGIN { exit !(s >= m) }'; then
      speedup_ok=yes
    else
      speedup_ok=no
      shard_ok=no
    fi
  fi
  {
    echo ""
    echo "## Sharding gate"
    echo ""
    echo "| shards | ev/s | balance | barrier overhead | identical |"
    echo "|---:|---:|---:|---:|---|"
    jq -r '.sharding.runs[]
      | "| \(.shards) | \(.events_per_sec) | \(.balance) | \(.barrier_overhead) | \(.identical) |"' \
      "$fresh"
    echo ""
    if [ -n "$nonidentical" ]; then
      echo "**Sharded digests diverge from the 1-shard run at shard count(s): $nonidentical.**"
    else
      echo "All sharded digests identical to the 1-shard run."
    fi
    case "$speedup_ok" in
      yes) echo "4-shard speedup ${speedup}x >= ${min_shard_speedup}x on a ${cores}-core host: within budget." ;;
      no) echo "**4-shard speedup ${speedup}x < ${min_shard_speedup}x on a ${cores}-core host.**" ;;
      skip) echo "Speedup gate skipped (cores=$cores; needs >= 4 and a 1- and 4-shard run)." ;;
    esac
  } | tee -a "${GITHUB_STEP_SUMMARY:-/dev/null}"
fi

# --- Controller-family gate (fresh file only) ----------------------
ctrl_ok=yes
if jq -e '.controllers' "$fresh" >/dev/null 2>&1; then
  dead=$(jq -r \
    '[.controllers[] | select(.events == 0 or .mis == 0) | .name] | join(", ")' \
    "$fresh")
  no_grad=$(jq -r \
    '[.controllers[]
      | select((.name | test("vivace|proteus")) and .gradient_steps == 0)
      | .name] | join(", ")' "$fresh")
  no_switch=$(jq -r \
    '[.controllers[]
      | select((.name | test("scavenger")) and .utility_switches == 0)
      | .name] | join(", ")' "$fresh")
  [ -n "$dead" ] && ctrl_ok=no
  [ -n "$no_grad" ] && ctrl_ok=no
  [ -n "$no_switch" ] && ctrl_ok=no
  {
    echo ""
    echo "## Controller-family gate"
    echo ""
    echo "| controller | goodput Mbps | MIs | mean utility | gradient steps | switches |"
    echo "|---|---:|---:|---:|---:|---:|"
    jq -r '.controllers[]
      | "| \(.name) | \(.goodput_mbps) | \(.mis) | \(.mean_utility) | \(.gradient_steps) | \(.utility_switches) |"' \
      "$fresh"
    echo ""
    if [ -n "$dead" ]; then
      echo "**Controllers with no monitor intervals or no events: $dead.**"
    fi
    if [ -n "$no_grad" ]; then
      echo "**Gradient controllers with zero gradient steps: $no_grad.**"
    fi
    if [ -n "$no_switch" ]; then
      echo "**Scavengers with zero utility-class switches: $no_switch.**"
    fi
    if [ "$ctrl_ok" = yes ]; then
      echo "All controllers decided: MIs, gradient steps and class switches present."
    fi
  } | tee -a "${GITHUB_STEP_SUMMARY:-/dev/null}"
fi

[ "$ok" = yes ] && [ -z "$slow" ] && [ "$shard_ok" = yes ] && [ "$ctrl_ok" = yes ]
