(** Many-flow fan-in stress scenario (not a paper figure).

    Drives a large population of PCC flows — 10k at [scale = 1], 100k at
    [scale = 10] — through one shared bottleneck to prove the simulator
    sustains that concurrency: hundreds of thousands of pending timers
    through the scheduler, pooled packet events on every hop, and a
    deterministic outcome. The rendered table contains only simulation
    state (completions, goodput, queue high-water mark, event count), so
    a fixed seed renders byte-identically under both the heap and the
    timing-wheel backend. The round fails (for the supervisor to catch)
    if fewer than 90% of flows complete, aggregate goodput exceeds the
    bottleneck capacity, or the peak event-queue depth is implausibly
    small for the flow count. *)

type row = {
  flows : int;
  completed : int;
  goodput_mbps : float;  (** aggregate, over the last completion *)
  mean_fct : float;
  peak_pending : int;  (** high-water mark of queued events *)
  events : int;
}

val topology :
  Pcc_sim.Engine.t ->
  rng:Pcc_sim.Rng.t ->
  n:int ->
  bandwidth:float ->
  rtt:float ->
  Pcc_scenario.Topology.t
(** The fan-in graph itself: [n] sized PCC flows with staggered starts
    and spread RTTs over one bottleneck. Shared with
    [pcc_sim topo --shape fanin-large]. *)

val default_bandwidth : float
val default_rtt : float

val flows_for_scale : float -> int
(** [10_000 * scale], floored at 50. *)

val run :
  ?pool:Runner.t ->
  ?policy:Supervisor.policy ->
  ?scale:float ->
  ?seed:int ->
  ?flows:int ->
  unit ->
  row list
(** [flows] overrides the [scale]-derived population. *)

val table : row list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit
