(** Many-flow fan-in stress scenario (not a paper figure).

    Drives a large population of PCC flows — 10k at [scale = 1], 100k at
    [scale = 10] — through one shared bottleneck to prove the simulator
    sustains that concurrency: hundreds of thousands of pending timers
    through the scheduler, pooled packet events on every hop, and a
    deterministic outcome. The rendered table contains only simulation
    state (completions, goodput, queue high-water mark, event count), so
    a fixed seed renders byte-identically under both the heap and the
    timing-wheel backend. The round fails (for the supervisor to catch)
    if fewer than 90% of flows complete, aggregate goodput exceeds the
    bottleneck capacity, or the peak event-queue depth is implausibly
    small for the flow count. *)

type row = {
  flows : int;
  completed : int;
  goodput_mbps : float;  (** aggregate, over the last completion *)
  mean_fct : float;
  peak_pending : int;  (** high-water mark of queued events *)
  events : int;
}

val topology :
  Pcc_sim.Engine.t ->
  rng:Pcc_sim.Rng.t ->
  n:int ->
  bandwidth:float ->
  rtt:float ->
  Pcc_scenario.Topology.t
(** The fan-in graph itself: [n] sized PCC flows with staggered starts
    and spread RTTs over one bottleneck. Shared with
    [pcc_sim topo --shape fanin-large]. *)

val topology_sharded :
  Pcc_sim.Shard.t ->
  rng:Pcc_sim.Rng.t ->
  n:int ->
  bandwidth:float ->
  rtt:float ->
  Pcc_scenario.Topology.t
(** The same fan-in graph distributed over a hub's shards
    ([pcc_sim topo --shape fanin-large --shards N]). *)

val clustered_topology :
  Pcc_sim.Shard.t ->
  rng:Pcc_sim.Rng.t ->
  clusters:int ->
  n:int ->
  bandwidth:float ->
  rtt:float ->
  Pcc_scenario.Topology.t
(** [clusters] self-contained fan-in dumbbells chained by 1 ms
    inter-cluster links with a few 3-hop flows each — the shape that
    actually spreads over shards ([pcc_sim topo --shape clusters]).
    [n] is the total local-flow population, split evenly. *)

val default_bandwidth : float
val default_rtt : float

val flows_for_scale : float -> int
(** [10_000 * scale], floored at 50. *)

val run :
  ?pool:Runner.t ->
  ?policy:Supervisor.policy ->
  ?scale:float ->
  ?seed:int ->
  ?flows:int ->
  unit ->
  row list
(** [flows] overrides the [scale]-derived population. *)

val table : row list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit

(** {1 Sharded clustered fan-in ("shardflow")}

    Runs the same seeded clustered scenario on a 1-shard and an N-shard
    hub (both {!Pcc_sim.Shard.Sequential}) and asserts the two runs'
    digests — every flow's goodput byte count and completion-time float
    bits, plus the total event count — are identical, then reports the
    N-shard run's balance. The round {b fails} on any divergence, so the
    experiment doubles as a standing determinism check. Runs its two hubs
    back to back on the calling domain; registered with
    [parallel = false] so a runner pool never claims extra slots for
    it. *)

type shard_row = {
  s_shards : int;
  s_populated : int;  (** shards that actually executed events *)
  s_flows : int;
  s_completed : int;
  s_events : int;
  s_balance : float;  (** max/mean per-shard events, 1.0 = perfect *)
  s_identical : bool;  (** 1-shard vs N-shard digests matched *)
}

val shard_flows_for_scale : float -> int
(** [2_000 * scale], floored at 64. *)

val run_sharded :
  ?pool:Runner.t ->
  ?policy:Supervisor.policy ->
  ?scale:float ->
  ?seed:int ->
  ?shards:int ->
  unit ->
  shard_row list
(** [shards] defaults to 4 (compared against 1). *)

val shard_table : shard_row list -> Exp_common.table
