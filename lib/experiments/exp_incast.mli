(** Figure 10 — TCP incast in the data center.

    N senders simultaneously push a fixed block each to one receiver over
    a 1 Gbps, 100 µs-RTT path with a shallow (64 KB) switch buffer —
    the barrier-synchronized request pattern that collapses TCP via
    200 ms RTO stalls. Goodput is the total data divided by the time the
    slowest sender finishes, averaged over rounds. Shape: with ≥10
    senders PCC sustains 60 %+ of line rate while TCP collapses to a
    fraction of it. *)

type row = {
  senders : int;
  block : int;  (** bytes per sender *)
  pcc : float;  (** goodput, bits/s *)
  tcp : float;
}

type sample = {
  s_block : int;
  s_senders : int;
  s_proto : string;
  v : float;  (** one round's goodput, bits/s *)
}
(** One round's measurement, tagged with its cell so {!collect} can
    average rounds without knowing how many [scale] produced. *)

val tasks :
  ?scale:float ->
  ?seed:int ->
  ?senders:int list ->
  ?blocks:int list ->
  unit ->
  sample Exp_common.task list
(** One simulation per (block, senders, protocol, round). Round seeds
    are a pure function of [seed] and the round index. *)

val collect : sample option list -> row list
(** Averages rounds per (block, senders) cell, preserving first-seen
    cell order. *)

val run :
  ?pool:Runner.t ->
  ?policy:Supervisor.policy ->
  ?scale:float ->
  ?seed:int ->
  ?senders:int list ->
  ?blocks:int list ->
  unit ->
  row list
(** [scale] controls the number of averaged rounds (15·scale, min 2). *)

val table : row list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit
