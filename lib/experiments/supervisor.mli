(** Supervised execution of experiment task sweeps.

    {!Runner} is the fast path and assumes every task returns. This
    layer assumes tasks misbehave — hang, crash, livelock — and
    guarantees the sweep still terminates with a per-task outcome and
    partial results:

    - {b in-band limits}: each attempt runs under a
      {!Pcc_sim.Task_guard}, so a wall-clock deadline or event-count
      ceiling raises inside the task at the engine's dispatch loop and
      the worker survives to run the next task;
    - {b out-of-band watchdog}: with a deadline configured and
      [jobs >= 2], the coordinating domain polls per-slot heartbeats
      (stamped by the guard from inside the engine). A task that hangs
      {i outside} the engine — where the in-band guard never runs — is
      abandoned once it is [deadline + grace] stale: its outcome becomes
      [Timed_out], the wedged domain is leaked until process exit, and a
      replacement worker is spawned so the pool keeps its width;
    - {b retries}: failures that [policy.transient] classifies as
      transient are re-queued with bounded exponential backoff
      ([backoff * 2^(attempt-1)], capped at [backoff_cap]); a task that
      exhausts its retries is quarantined. Timeouts are never retried.
    - {b forensics}: when [forensics_dir] is set, every final failure
      writes [<dir>/<index-label>/report.txt] (exception, backtrace,
      seed, repro command line) plus the failing domain's trace ring
      ([trace.json] / [decisions.log] / [trace.csv]) when one was
      recording.

    Determinism: results are slotted by task index and tasks are pure
    thunks, so a sweep whose tasks all succeed produces results
    byte-identical to plain {!Runner} execution at any job count. *)

type 'a task = {
  label : string;  (** for reports and forensics paths *)
  seed : int option;  (** the derived seed the task consumes, if any *)
  repro : string option;  (** exact command line reproducing this task *)
  run : unit -> 'a;  (** pure thunk; retries re-run it verbatim *)
}

type failure = { attempt : int; exn_text : string; backtrace : string }

type status =
  | Completed of { retries : int }  (** succeeded, possibly after retries *)
  | Timed_out of { attempts : int }
      (** guard deadline/event ceiling, or watchdog abandonment *)
  | Crashed of failure  (** raised a non-transient exception *)
  | Quarantined of { attempts : int; last : failure }
      (** transient failures exhausted the retry budget *)

type outcome = {
  index : int;
  label : string;
  seed : int option;
  repro : string option;
  status : status;
  degraded : int;
      (** Shard-ladder degradation steps the successful attempt consumed
          (see {!Pcc_sim.Degrade}); [0] for undegraded or failed
          tasks. *)
  failures : failure list;  (** newest first *)
  forensics : string option;  (** bundle directory, when one was written *)
}

type report = {
  total : int;
  outcomes : outcome array;  (** indexed by task position *)
  ok : int;  (** completed on the first attempt *)
  retried : int;  (** completed after at least one retry *)
  timed_out : int;
  crashed : int;
  quarantined : int;
  degraded : int;
      (** Completed tasks that only succeeded after the shard
          degradation ladder stepped down at least once. *)
}

type policy = {
  jobs : int;  (** worker domains; [1] runs inline in the caller *)
  deadline : float option;  (** per-attempt wall-clock budget, seconds *)
  max_events : int option;  (** per-attempt engine event ceiling *)
  retries : int;  (** max re-runs after a transient failure *)
  backoff : float;  (** first retry delay, seconds *)
  backoff_cap : float;  (** upper bound on any retry delay *)
  grace : float;  (** heartbeat staleness beyond [deadline] before the
                      watchdog abandons a worker *)
  poll : float;  (** watchdog polling period, seconds *)
  transient : exn -> bool;  (** which failures are worth retrying *)
  forensics_dir : string option;  (** root for failure bundles *)
  forensic_trace : bool;
      (** record each attempt into a private trace ring so failures can
          dump their recent history even in otherwise untraced runs *)
  repro_context : string option;
      (** sweep-level repro command, used for tasks without their own *)
}

val default_policy : policy
(** [jobs = 1], no deadline or event ceiling, no retries
    ([backoff = 0.1], [backoff_cap = 2.0] when enabled), [grace = 1.0],
    [poll = 0.05], nothing transient, no forensics. *)

val run : ?policy:policy -> 'a task list -> 'a option list * report
(** Run every task to a final outcome. The result list is positional:
    [None] marks a task that failed. Never raises on task failure; the
    report says what happened. Failing outcomes are also appended to the
    process-wide tally (see {!failures}).
    @raise Invalid_argument on a malformed policy ([jobs < 1],
    negative [retries]/[backoff]/[grace], non-positive [poll]). *)

val failed : report -> bool
(** Whether any task ended in a non-[Completed] status. *)

val summary_line : report -> string
(** One-line sweep summary naming each failing task and its status —
    what CLIs print to stderr before exiting nonzero. *)

val pp_report : Format.formatter -> report -> unit
(** Multi-line per-task listing of the report. *)

val status_name : status -> string
(** ["ok"], ["retried n"], ["timed_out"], ["crashed"],
    ["quarantined"]. *)

val is_failure : status -> bool

(** {2 Process-wide failure tally}

    CLI front-ends render experiments through [Exp_registry] and only
    get strings back; {!run} also records failing outcomes here so
    [pcc_sim] can exit nonzero with a summary without threading reports
    through every render signature. *)

val failures : unit -> outcome list
(** All failing outcomes recorded by {!run} since the last
    {!reset_failures}, oldest first. Thread-safe. *)

val reset_failures : unit -> unit
