(** Figures 12–13 — dynamics of competing flows on a dumbbell.

    Four flows share a 100 Mbps, 30 ms bottleneck with a BDP buffer; they
    start (and later stop) staggered. Fig. 12 contrasts the rate
    evolution of PCC and CUBIC at 1 s granularity; Fig. 13 reduces the
    same runs to Jain's fairness index at growing time scales. Shapes:
    PCC flows hold near-constant equal rates (tiny variance), CUBIC
    oscillates wildly; PCC's Jain index is higher at every time scale. *)

type protocol_result = {
  protocol : string;
  jain : (float * float) list;  (** (timescale s, mean Jain index) *)
  mean_stddev : float;
      (** Rate stddev per flow over the all-flows-active window, averaged
          across flows — Fig. 12's visual stability, quantified. *)
  series : (float * float) array list;  (** Per-flow 1 s throughput. *)
}

val tasks :
  ?scale:float ->
  ?seed:int ->
  ?flows:int ->
  unit ->
  protocol_result Exp_common.task list
(** One simulation per protocol; each task yields its result. *)

val collect : protocol_result option list -> protocol_result list
(** Identity — each task already yields a finished result. *)

val run :
  ?pool:Runner.t ->
  ?policy:Supervisor.policy ->
  ?scale:float ->
  ?seed:int ->
  ?flows:int ->
  unit ->
  protocol_result list
(** Stagger is 500 s · scale (min 60 s); flows run for 4 staggers each.
    Protocols: PCC, CUBIC, New Reno. *)

val table : protocol_result list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit
