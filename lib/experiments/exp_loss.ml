open Pcc_sim
open Pcc_scenario

type row = {
  loss : float;
  pcc : float;
  cubic : float;
  illinois : float;
  newreno : float;
}

let default_losses = [ 0.0; 0.001; 0.005; 0.01; 0.02; 0.03; 0.04; 0.05; 0.06 ]

let specs () =
  [
    ("pcc", Transport.pcc ());
    ("cubic", Transport.tcp "cubic");
    ("illinois", Transport.tcp "illinois");
    ("newreno", Transport.tcp "newreno");
  ]

(* One task per (loss, protocol) pair; the measurement is a pure function
   of the parameters captured at construction time. *)
let tasks ?(scale = 1.) ?(seed = 42) ?(losses = default_losses) () =
  let bandwidth = Units.mbps 100. and rtt = 0.03 in
  let buffer = Units.bdp_bytes ~rate:bandwidth ~rtt in
  let duration = 60. *. scale in
  List.concat_map
    (fun loss ->
      List.map
        (fun (name, spec) ->
          Exp_common.task ~seed
            ~label:(Printf.sprintf "fig7/%s/loss=%g" name loss)
            (fun () ->
              ( loss,
                Exp_common.solo_throughput ~seed ~bandwidth ~rtt ~buffer
                  ~duration ~loss ~rev_loss:loss spec )))
        (specs ()))
    losses

(* Partial inputs: a failed measurement leaves NaN in its cell (rendered
   "n/a"); a loss point where every protocol failed is dropped. *)
let collect results =
  let v = function Some (_, x) -> x | None -> Float.nan in
  List.filter_map
    (function
      | [ p; c; i; n ] as group -> (
        match Exp_common.present group with
        | [] -> None
        | (loss, _) :: _ ->
          Some { loss; pcc = v p; cubic = v c; illinois = v i; newreno = v n })
      | _ -> invalid_arg "Exp_loss.collect: 4 measurements per loss point")
    (Exp_common.chunk (List.length (specs ())) results)

let run ?pool ?policy ?scale ?seed ?losses () =
  collect (Exp_common.run_tasks_opt ?pool ?policy (tasks ?scale ?seed ?losses ()))

let table rows =
  Exp_common.
    {
      title = "Fig. 7 - throughput vs random loss (100 Mbps, 30 ms RTT; Mbps)";
      header =
        [ "loss%"; "PCC"; "CUBIC"; "Illinois"; "NewReno"; "PCC/CUBIC" ];
      rows =
        List.map
          (fun r ->
            [
              f2 (r.loss *. 100.);
              mbps r.pcc;
              mbps r.cubic;
              mbps r.illinois;
              mbps r.newreno;
              f1 (ratio r.pcc r.cubic);
            ])
          rows;
      note =
        Some
          "Paper: PCC >95% capacity to 1% loss, graceful to 2%, collapse by \
           6% (5% utility cap); CUBIC 10x below PCC at 0.1%.";
    }

let print ?pool ?scale ?seed () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ()))
