(** Figure 7 — random loss resilience.

    100 Mbps bottleneck, 30 ms RTT, BDP buffer, Bernoulli loss applied to
    both the forward and reverse paths, swept from 0 to 6 %. The paper's
    shape: PCC holds >95 % of capacity through 1 % loss and degrades
    gracefully to ~2 %, then collapses as the safe utility's 5 % loss cap
    bites; CUBIC collapses an order of magnitude below PCC already at
    0.1 %; Illinois is the most loss-tolerant TCP but still far below
    PCC. *)

type row = {
  loss : float;
  pcc : float;  (** bits/s *)
  cubic : float;
  illinois : float;
  newreno : float;
}

val tasks :
  ?scale:float ->
  ?seed:int ->
  ?losses:float list ->
  unit ->
  (float * float) Exp_common.task list
(** One independent simulation per (loss, protocol); each yields
    [(loss, throughput)]. *)

val collect : (float * float) option list -> row list
(** Reassemble task results (in task order) into rows. *)

val run :
  ?pool:Runner.t ->
  ?policy:Supervisor.policy ->
  ?scale:float ->
  ?seed:int ->
  ?losses:float list ->
  unit ->
  row list
(** Base duration 60 s per point, multiplied by [scale] (default 1).
    [pool] fans the measurements across domains; the rows are identical
    with and without it. *)

val table : row list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit
