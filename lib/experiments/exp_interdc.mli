(** Table 1 — inter-data-center paths over reserved bandwidth.

    The paper's nine GENI site pairs with 800 Mbps reserved end-to-end
    bandwidth. The reservation is enforced by a rate limiter with a small
    buffer — the paper's explanation for TCP's poor showing — which we
    model as an 800 Mbps bottleneck with a 64 packet buffer and a trace
    of mild residual loss. Shape: PCC ≈ 800 Mbps everywhere, SABUL
    somewhat below, Illinois and CUBIC far below and RTT-dependent. *)

type row = {
  name : string;
  rtt : float;  (** seconds *)
  pcc : float;
  sabul : float;
  cubic : float;
  illinois : float;
}

val pairs : (string * float) list
(** The paper's transmission pairs with their RTTs (ms converted to s). *)

val tasks :
  ?scale:float -> ?seed:int -> unit -> float Exp_common.task list
(** One simulation per (pair, protocol), yielding a throughput. *)

val collect : float option list -> row list

val run : ?pool:Runner.t -> ?policy:Supervisor.policy -> ?scale:float -> ?seed:int -> unit -> row list
(** Base duration 100 s per pair and protocol. *)

val table : row list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit
