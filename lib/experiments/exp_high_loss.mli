(** §4.4.2 — enduring excessive loss with the loss-resilient utility.

    Behind fair queuing a flow may optimize [T·(1−L)], which keeps its
    optimum at the fair-share rate regardless of random loss. 100 Mbps,
    30 ms, forward loss 10–50 %. Shape: PCC with the loss-resilient
    utility delivers ≈ the achievable capacity ((1−L)·C); CUBIC is
    orders of magnitude below. *)

type row = {
  loss : float;
  achievable : float;  (** (1−loss)·capacity, bits/s *)
  pcc_resilient : float;
  pcc_safe : float;  (** the default utility, for contrast (its 5% cap) *)
  cubic : float;
}

val tasks :
  ?scale:float ->
  ?seed:int ->
  ?losses:float list ->
  unit ->
  (float * float) Exp_common.task list

val collect : (float * float) option list -> row list

val run :
  ?pool:Runner.t ->
  ?policy:Supervisor.policy ->
  ?scale:float ->
  ?seed:int ->
  ?losses:float list ->
  unit ->
  row list

val table : row list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit
