open Pcc_sim
open Pcc_scenario

type row = { long_rtt : float; pcc : float; cubic : float; newreno : float }

let default_rtts = [ 0.02; 0.04; 0.06; 0.08; 0.1 ]

let measure_ratio ~seed ~duration ~long_rtt spec =
  let bandwidth = Units.mbps 100. in
  let short_rtt = 0.01 in
  let buffer = Units.bdp_bytes ~rate:bandwidth ~rtt:short_rtt in
  let engine = Engine.create () in
  let rng = Rng.create seed in
  (* Base RTT is the short flow's; the long flow adds the difference. *)
  let path =
    Path.build engine ~rng ~bandwidth ~rtt:short_rtt ~buffer
      ~flows:
        [
          Path.flow ~label:"long" ~extra_rtt:(long_rtt -. short_rtt) spec;
          Path.flow ~label:"short" ~start_at:5. spec;
        ]
      ()
  in
  let flows = Path.flows path in
  (* Let the competition settle for a fifth of the run, then measure. *)
  let t0 = 5. +. (duration /. 5.) and t1 = 5. +. duration in
  Engine.run ~until:t0 engine;
  let l0 = Path.goodput_bytes flows.(0) and s0 = Path.goodput_bytes flows.(1) in
  Engine.run ~until:t1 engine;
  let l1 = Path.goodput_bytes flows.(0) and s1 = Path.goodput_bytes flows.(1) in
  Exp_common.ratio (float_of_int (l1 - l0)) (float_of_int (s1 - s0))

let specs () =
  [
    ("pcc", Transport.pcc ());
    ("cubic", Transport.tcp "cubic");
    ("newreno", Transport.tcp "newreno");
  ]

let tasks ?(scale = 1.) ?(seed = 42) ?(rtts = default_rtts) () =
  let duration = 500. *. scale in
  List.concat_map
    (fun long_rtt ->
      List.map
        (fun (name, spec) ->
          Exp_common.task ~seed
            ~label:(Printf.sprintf "rtt_fairness/%s/rtt=%g" name long_rtt)
            (fun () ->
              (long_rtt, measure_ratio ~seed ~duration ~long_rtt spec)))
        (specs ()))
    rtts

let collect results =
  let v = function Some (_, x) -> x | None -> Float.nan in
  List.filter_map
    (function
      | [ p; c; n ] as group -> (
        match Exp_common.present group with
        | [] -> None
        | (long_rtt, _) :: _ ->
          Some { long_rtt; pcc = v p; cubic = v c; newreno = v n })
      | _ -> invalid_arg "Exp_rtt_fairness.collect: 3 measurements per RTT")
    (Exp_common.chunk (List.length (specs ())) results)

let run ?pool ?policy ?scale ?seed ?rtts () =
  collect (Exp_common.run_tasks_opt ?pool ?policy (tasks ?scale ?seed ?rtts ()))

let table rows =
  Exp_common.
    {
      title =
        "Fig. 8 - RTT fairness: long-RTT flow's share of a 10 ms flow's \
         throughput (100 Mbps shared)";
      header = [ "long RTT ms"; "PCC"; "CUBIC"; "NewReno" ];
      rows =
        List.map
          (fun r ->
            [
              f1 (r.long_rtt *. 1e3); f2 r.pcc; f2 r.cubic; f2 r.newreno;
            ])
          rows;
      note =
        Some
          "Ratio of long-RTT to short-RTT throughput; 1.0 = fair. Paper: \
           PCC near 1, CUBIC below, New Reno worst.";
    }

let print ?pool ?scale ?seed () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ()))
