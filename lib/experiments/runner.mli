(** Work-stealing domain pool for embarrassingly parallel experiments.

    The paper's evaluation is hundreds of independent simulation runs;
    this pool fans them out across cores (OCaml 5 domains) while keeping
    the result of a run {b byte-identical} to sequential execution.

    {2 Determinism contract}

    - {!map} writes each task's result into a slot indexed by the task's
      position and returns the slots in order: the output never depends
      on completion order.
    - Seeds must be derived from [(master_seed, task_index)] with
      {!derive_seed} (or any other pure function of the index) {e before}
      tasks are submitted — never from scheduling, wall-clock time, or
      shared RNG streams consumed inside tasks.
    - Tasks must not share mutable state. Each simulation task builds its
      own [Engine]/[Rng]; {!Pcc_scenario.Transport.spec} values are
      immutable and safe to share.
    - If several tasks raise, the exception of the {e lowest-indexed}
      failing task is re-raised — again independent of scheduling.

    Under these rules, [--jobs 1] and [--jobs N] produce identical
    tables, which the test suite checks. *)

type t
(** A pool of worker domains. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size that matches
    the hardware. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns a pool of [jobs] workers (default
    {!default_jobs}). The calling domain participates as a worker during
    {!map}, so [jobs - 1] domains are spawned; [jobs = 1] spawns none
    and runs everything inline. @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** Worker count (including the caller). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f tasks] applies [f] to every element of [tasks], spreading
    the calls across the pool's workers via per-worker deques with
    stealing, and returns the results {b in task order}. Blocks until
    every task finished. Re-raises the lowest-indexed task's exception,
    if any, after the batch completes. Not reentrant: one batch at a
    time per pool. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists. *)

val derive_seed : master:int -> index:int -> int
(** [derive_seed ~master ~index] is a non-negative seed mixed from the
    pair with a splitmix64 finalizer: decorrelated across indices,
    deterministic, and independent of scheduling. *)

val shutdown : t -> unit
(** Join all worker domains. The pool is unusable afterwards. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down on exit,
    also on exceptions. *)
