open Pcc_core

type row = {
  n : int;
  steps : int;
  jain : float;
  total_over_c : float;
  predicted_rate : float;
  mean_rate : float;
  loss_safe : float;
  loss_naive : float;
}

let tasks ?(seed = 42) ?(ns = [ 2; 3; 5; 10; 20 ]) () =
  let c = 100. in
  (* Initial rates for every n are drawn sequentially here, at
     task-construction time, so they depend only on [seed] and [ns]. *)
  let rng = Pcc_sim.Rng.create seed in
  let starts =
    List.map
      (fun n ->
        (* Asymmetric start: rates spread over an order of magnitude. *)
        (n, Array.init n (fun _ -> Pcc_sim.Rng.log_uniform rng (c /. 100.) c)))
      ns
  in
  List.map
    (fun (n, x0) ->
      Exp_common.task ~seed ~label:(Printf.sprintf "game/n=%d" n) (fun () ->
      let eps = 0.01 in
      let x_hat = Game.equilibrium_rate ~n ~c () in
      (* Theorem 2's claim: every sender enters (and stays in) the band
         (x̂(1−ε)², x̂(1+ε)²). We allow 5% slack on the band edges and
         report the first step after which the state never leaves. *)
      let lo = x_hat *. ((1. -. eps) ** 2.) *. 0.95 in
      let hi = x_hat *. ((1. +. eps) ** 2.) *. 1.05 in
      let in_band x = Array.for_all (fun v -> v >= lo && v <= hi) x in
      let max_steps = 5000 in
      let x = ref (Array.copy x0) in
      let entered = ref None in
      for step = 1 to max_steps do
        x := Game.step ~eps ~c !x;
        if in_band !x then begin
          if !entered = None then entered := Some step
        end
        else entered := None
      done;
      let final = !x in
      let steps = match !entered with Some s -> s | None -> max_steps in
      let total = Array.fold_left ( +. ) 0. final in
      let naive_u x i =
        let l = Game.loss ~c x in
        (x.(i) *. (1. -. l)) -. (x.(i) *. l)
      in
      let naive_final, naive_steps = Game.run_with ~u:naive_u (Array.copy x0) in
      (* The fluid model runs no engine, so its work is invisible to
         [Engine.total_executed] unless reported: count one work item
         per sender-rate update so bench event counts stay meaningful. *)
      Pcc_sim.Engine.count_external ((max_steps + naive_steps) * n);
      {
        n;
        steps;
        jain = Pcc_metrics.Stats.jain_index final;
        total_over_c = total /. c;
        predicted_rate = x_hat;
        mean_rate = total /. float_of_int n;
        loss_safe = Game.loss ~c final;
        loss_naive = Game.loss ~c naive_final;
      }))
    starts

let collect results = Exp_common.present results

let run ?pool ?policy ?seed ?ns () =
  collect (Exp_common.run_tasks_opt ?pool ?policy (tasks ?seed ?ns ()))

let table rows =
  Exp_common.
    {
      title =
        "Theorems 1-2 - game dynamics: convergence to the fair equilibrium \
         (C = 100)";
      header =
        [
          "n";
          "steps";
          "Jain";
          "sum/C";
          "x-hat pred";
          "x mean";
          "loss(safe)";
          "loss(T-xL)";
        ];
      rows =
        List.map
          (fun r ->
            [
              string_of_int r.n;
              string_of_int r.steps;
              Printf.sprintf "%.4f" r.jain;
              f3 r.total_over_c;
              f2 r.predicted_rate;
              f2 r.mean_rate;
              f3 r.loss_safe;
              f3 r.loss_naive;
            ])
          rows;
      note =
        Some
          "Theorem 1: sum/C in (1, 20/19=1.053) and Jain = 1; the naive \
           T - x.L utility's equilibrium loss grows toward 50% with n, \
           motivating the sigmoid cut-off.";
    }

let print ?pool ?seed () =
  Exp_common.print_table (table (run ?pool ?seed ()))
