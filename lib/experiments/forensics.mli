(** Crash-forensics bundles, shared by {!Supervisor} (per-task bundles
    for failed sweep tasks) and the CLI (a bundle for a sharded run
    whose degradation ladder was exhausted or disabled). All writers
    swallow [Sys_error] — forensics must never take the run down. *)

val mkdir_p : string -> unit
(** [mkdir p] with parents; existing directories are fine. *)

val sanitize : string -> string
(** Map a task label onto a filesystem-safe slug. *)

val write_trace : dir:string -> Pcc_trace.Collector.t -> unit
(** Dump a collector's ring into [dir] as [trace.json] (chrome),
    [decisions.log] and [trace.csv]. *)

type shard_failure = {
  label : string;
  seed : int option;
  repro : string option;  (** Exact single-shard repro command. *)
  shards : int;  (** Width of the failed attempt. *)
  domains : int;
  shard : int;  (** From {!Pcc_sim.Shard.Lane_failure}. *)
  round : int;
  wedged : bool;
  exn_text : string;
  backtrace : string;
  ladder : string list;
      (** One line per degradation step already taken, ladder order. *)
}

val write_shard_bundle :
  dir:string -> ?collector:Pcc_trace.Collector.t -> shard_failure ->
  string option
(** Write [<dir>/shard-<label>/report.txt] (plus the trace dump when a
    collector is supplied). Returns the bundle directory, or [None]
    when the write failed. *)
