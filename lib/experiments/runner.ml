(* A work-stealing pool of OCaml 5 domains for fanning independent
   simulation tasks across cores.

   Determinism contract: the pool never decides *what* a task computes,
   only *when* it runs. Results land in a slot array indexed by task
   position, seeds are derived from (master_seed, task_index) with
   {!derive_seed}, and the first (lowest-index) exception wins — so the
   observable outcome of [map] is a pure function of the task array,
   independent of worker count and scheduling order.

   Work distribution: each worker owns a deque seeded round-robin at
   submission; a worker drains its own deque first and steals from the
   longest other deque when empty. Tasks here are whole simulations
   (milliseconds to seconds each), so one pool-wide lock around the
   deques is far off the critical path. *)

type batch = {
  run : int -> unit;  (* run task [i] and store its result *)
  queues : int Queue.t array;  (* per-worker pending task indices *)
  mutable remaining : int;  (* submitted tasks not yet completed *)
  mutable error : (int * exn * Printexc.raw_backtrace) option;
      (* lowest-index failure *)
}

type t = {
  m : Mutex.t;
  work : Condition.t;  (* new batch available, or shutting down *)
  finished : Condition.t;  (* a batch just completed *)
  mutable current : batch option;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
  njobs : int;
}

let default_jobs () = Domain.recommended_domain_count ()

(* ---- seed derivation ---------------------------------------------- *)

(* splitmix64's finalizer over a combination of master and index. Pure,
   so a task's seed depends only on its position in the batch, never on
   which worker runs it or in what order tasks complete. *)
let derive_seed ~master ~index =
  let open Int64 in
  let z =
    add (of_int master)
      (mul (of_int (index + 1)) 0x9E3779B97F4A7C15L)
  in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (logand z 0x3FFFFFFFFFFFFFFFL)

(* ---- worker loop --------------------------------------------------- *)

(* Take one task index for worker [w], own deque first, else steal from
   the victim with the most pending work. Caller holds the pool lock. *)
let take b w =
  if not (Queue.is_empty b.queues.(w)) then Some (Queue.pop b.queues.(w))
  else begin
    let victim = ref (-1) and best = ref 0 in
    Array.iteri
      (fun i q ->
        let n = Queue.length q in
        if n > !best then begin
          victim := i;
          best := n
        end)
      b.queues;
    if !victim < 0 then None else Some (Queue.pop b.queues.(!victim))
  end

let run_one t b i =
  Mutex.unlock t.m;
  (try b.run i
   with exn ->
     let bt = Printexc.get_raw_backtrace () in
     Mutex.lock t.m;
     (match b.error with
     | Some (j, _, _) when j <= i -> ()
     | _ -> b.error <- Some (i, exn, bt));
     Mutex.unlock t.m);
  Mutex.lock t.m;
  b.remaining <- b.remaining - 1;
  if b.remaining = 0 then begin
    t.current <- None;
    Condition.broadcast t.finished
  end

let worker t w =
  Mutex.lock t.m;
  let rec loop () =
    if t.stop then Mutex.unlock t.m
    else
      match t.current with
      | Some b -> (
        match take b w with
        | Some i ->
          run_one t b i;
          loop ()
        | None ->
          (* Batch fully distributed but not finished: sleep until the
             next batch (or shutdown) rather than spin. *)
          Condition.wait t.work t.m;
          loop ())
      | None ->
        Condition.wait t.work t.m;
        loop ()
  in
  loop ()

(* ---- pool lifecycle ------------------------------------------------ *)

let create ?jobs () =
  let njobs =
    match jobs with
    | None -> default_jobs ()
    | Some n when n >= 1 -> n
    | Some n ->
      invalid_arg (Printf.sprintf "Runner.create: jobs must be >= 1, got %d" n)
  in
  let t =
    {
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      current = None;
      stop = false;
      domains = [||];
      njobs;
    }
  in
  (* The caller participates as worker 0; spawn the other njobs-1. *)
  t.domains <- Array.init (njobs - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let jobs t = t.njobs

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ---- mapping ------------------------------------------------------- *)

let map t f tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else if t.njobs = 1 || n = 1 then Array.map f tasks
  else begin
    let results = Array.make n None in
    let b =
      {
        run = (fun i -> results.(i) <- Some (f tasks.(i)));
        queues = Array.init t.njobs (fun _ -> Queue.create ());
        remaining = n;
        error = None;
      }
    in
    (* Deal indices round-robin so every worker starts with a share and
       stealing only handles imbalance. *)
    for i = 0 to n - 1 do
      Queue.push i b.queues.(i mod t.njobs)
    done;
    Mutex.lock t.m;
    if t.stop then begin
      Mutex.unlock t.m;
      invalid_arg "Runner.map: pool is shut down"
    end;
    if t.current <> None then begin
      Mutex.unlock t.m;
      invalid_arg "Runner.map: pool is already running a batch"
    end;
    t.current <- Some b;
    Condition.broadcast t.work;
    (* The caller works the batch as worker 0, then waits for stolen
       stragglers to finish. *)
    let rec drive () =
      match take b 0 with
      | Some i ->
        run_one t b i;
        drive ()
      | None -> while b.remaining > 0 do Condition.wait t.finished t.m done
    in
    drive ();
    Mutex.unlock t.m;
    (match b.error with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ());
    Array.map
      (function
        | Some r -> r
        | None -> invalid_arg "Runner.map: task produced no result")
      results
  end

let map_list t f tasks =
  Array.to_list (map t (fun x -> f x) (Array.of_list tasks))
