(** Ablations of this implementation's noise-handling design choices
    (DESIGN.md §4).

    Two knobs distinguish our PCC from a literal reading of the paper's
    formulas, both responses to §2.1's noisy-measurement problem:
    (a) the sigmoid's loss argument uses a one-standard-error lower
    confidence bound instead of the raw per-MI loss estimate, and (b) the
    rate-adjusting ladder reverts only after two consecutive utility
    falls. This experiment quantifies (a), plus the effect of the
    monitor-interval minimum packet count, on a lossy link where
    small-sample noise matters most. *)

type row = {
  label : string;
  loss : float;
  throughput : float;  (** bits/s over the measurement window *)
}

val tasks : ?scale:float -> ?seed:int -> unit -> row Exp_common.task list
(** One simulation per (variant, loss); each task yields its row. *)

val collect : row option list -> row list
(** Identity — each task already yields a finished row. *)

val run : ?pool:Runner.t -> ?policy:Supervisor.policy -> ?scale:float -> ?seed:int -> unit -> row list
val table : row list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit
