(** Figure 11 — rapidly changing network conditions.

    Every 5 s the bottleneck's bandwidth (10–100 Mbps), base RTT
    (10–100 ms) and random loss (0–1 %) are redrawn independently and
    uniformly; the experiment tracks each protocol's achieved throughput
    against the moving optimum over 500 s. Shape: PCC tracks the
    available bandwidth (≈83 % of optimal in the paper) while CUBIC and
    Illinois achieve small fractions of it. *)

type row = {
  protocol : string;
  throughput : float;  (** average goodput, bits/s *)
  optimal : float;  (** time-weighted mean available bandwidth *)
  fraction : float;  (** throughput / optimal *)
}

type series_point = { time : float; optimal : float; rate : float }

val tasks :
  ?scale:float ->
  ?seed:int ->
  unit ->
  (row * (string * series_point list)) Exp_common.task list
(** One simulation per protocol, yielding the summary row and the
    sampled series together. *)

val collect :
  (row * (string * series_point list)) option list ->
  row list * (string * series_point list) list

val run :
  ?pool:Runner.t ->
  ?policy:Supervisor.policy ->
  ?scale:float ->
  ?seed:int ->
  unit ->
  row list * (string * series_point list) list
(** Base duration 500 s, scaled (minimum 50 s). Also returns, per
    protocol, a 5 s-sampled series of (optimal bandwidth, controller
    rate) for rate-tracking plots. *)

val table : row list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit
