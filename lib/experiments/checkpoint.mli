(** Deterministic checkpoint/resume for experiment sweeps.

    One frame per {e completed} experiment: after a registry entry
    renders, {!append} writes its output string and flushes, so a
    killed run loses at most the experiment in flight. State is
    serialized field by field through {!Pcc_sim.Persist} — versioned,
    explicit, never [Marshal] — and because experiments are
    deterministic in [(seed, scale)], a resumed run re-prints the
    stored outputs and recomputes only the rest, byte-identical to an
    uninterrupted run. *)

type meta = { seed : int; scale : float; names : string list }
(** Sweep identity. Resume must refuse a checkpoint whose [meta] does
    not {!matches} the current invocation, or determinism is lost. *)

type t
(** An open checkpoint being written. *)

val create : path:string -> meta -> t
(** Create (truncating) [path] and write the header frame. *)

val append : t -> name:string -> output:string -> unit
(** Record one completed experiment's rendered output; flushed
    immediately. *)

val close : t -> unit

val load : path:string -> meta * (string * string) list
(** Read a checkpoint back: its meta and the [(name, output)] pairs of
    completed experiments, in completion order. A truncated trailing
    frame (killed mid-append) is silently dropped.
    @raise Pcc_sim.Persist.Corrupt on bad magic, an unsupported
    version, or a corrupt complete frame.
    @raise Sys_error if [path] cannot be read. *)

val matches : meta -> seed:int -> scale:float -> names:string list -> bool
(** Whether a loaded checkpoint belongs to this exact sweep. *)
