open Pcc_sim
open Pcc_scenario

type pair_result = {
  params : Internet_model.params;
  pcc : float;
  cubic : float;
  sabul : float;
  pcp : float;
}

type summary = {
  baseline : string;
  median_ratio : float;
  p25 : float;
  p75 : float;
  p90 : float;
  frac_ge_10x : float;
}

let specs () =
  [
    ("pcc", Transport.pcc ());
    ("cubic", Transport.tcp "cubic");
    ("sabul", Transport.sabul);
    ("pcp", Transport.pcp);
  ]

let tasks ?(scale = 1.) ?(seed = 42) ?(pairs = 40) () =
  let duration = 60. *. scale in
  (* Paths are drawn sequentially at task-construction time so the path
     set depends only on [seed] and [pairs], never on which domain runs
     which measurement. *)
  let path_rng = Rng.create seed in
  let drawn =
    List.init pairs (fun i ->
        (i, Internet_model.random path_rng, seed + (1000 * (i + 1))))
  in
  List.concat_map
    (fun (i, params, run_seed) ->
      List.map
        (fun (name, spec) ->
          Exp_common.task ~seed:run_seed
            ~label:(Printf.sprintf "internet/pair%02d/%s" i name)
            (fun () ->
              ( params,
                Internet_model.measure ~duration ~seed:run_seed params spec )))
        (specs ()))
    drawn

let collect results =
  let v = function Some (_, x) -> x | None -> Float.nan in
  List.filter_map
    (function
      | [ p; c; s; q ] as group -> (
        match Exp_common.present group with
        | [] -> None
        | (params, _) :: _ ->
          Some { params; pcc = v p; cubic = v c; sabul = v s; pcp = v q })
      | _ -> invalid_arg "Exp_internet.collect: 4 measurements per pair")
    (Exp_common.chunk (List.length (specs ())) results)

let run ?pool ?policy ?scale ?seed ?pairs () =
  collect (Exp_common.run_tasks_opt ?pool ?policy (tasks ?scale ?seed ?pairs ()))

let summarize results =
  let mk baseline extract =
    let ratios =
      Array.of_list
        (List.map (fun r -> Exp_common.ratio r.pcc (extract r)) results)
    in
    let finite = Array.map (fun v -> Float.min v 1e4) ratios in
    {
      baseline;
      median_ratio = Pcc_metrics.Stats.median finite;
      p25 = Pcc_metrics.Stats.percentile finite 25.;
      p75 = Pcc_metrics.Stats.percentile finite 75.;
      p90 = Pcc_metrics.Stats.percentile finite 90.;
      frac_ge_10x =
        (let n = Array.length finite in
         if n = 0 then 0.
         else
           float_of_int
             (Array.fold_left (fun acc v -> if v >= 10. then acc + 1 else acc) 0 finite)
           /. float_of_int n);
    }
  in
  [
    mk "TCP CUBIC" (fun r -> r.cubic);
    mk "SABUL" (fun r -> r.sabul);
    mk "PCP" (fun r -> r.pcp);
  ]

let table results =
  let summaries = summarize results in
  Exp_common.
    {
      title =
        Printf.sprintf
          "Fig. 5 - Internet experiment: PCC throughput ratio over baseline \
           (%d synthetic paths)"
          (List.length results);
      header =
        [ "baseline"; "p25"; "median"; "p75"; "p90"; ">=10x" ];
      rows =
        List.map
          (fun s ->
            [
              s.baseline;
              f2 s.p25;
              f2 s.median_ratio;
              f2 s.p75;
              f2 s.p90;
              Printf.sprintf "%.0f%%" (s.frac_ge_10x *. 100.);
            ])
          summaries;
      note =
        Some
          "Paper: vs CUBIC median 5.52x, >=10x on 41% of pairs; vs SABUL \
           1.41x median; vs PCP 4.58x median.";
    }

let print ?pool ?scale ?seed ?pairs () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ?pairs ()))
