open Pcc_sim
open Pcc_scenario

(* The controller family head-to-head: the same workloads, one column
   per rate-control algorithm. Allegro is the paper's controller; Vivace
   (NSDI 2018) and Proteus (SIGCOMM 2020) are the successors the repo
   grows toward; CUBIC anchors the comparison to TCP. *)

type row = { workload : string; tputs : (string * float) list }

type phase_row = {
  prot : string;
  before_ : float;  (* goodput before the primary arrives, bits/s *)
  during : float;  (* while the primary holds the bottleneck *)
  after : float;  (* after the primary departs *)
}

let named n =
  match Transport.of_name n with
  | Ok s -> s
  | Error m -> invalid_arg ("Exp_controllers: " ^ m)

let controllers () =
  [
    ("allegro", Transport.pcc ());
    ("vivace", named "pcc-vivace");
    ("proteus", named "pcc-proteus-hybrid");
    ("cubic", Transport.tcp "cubic");
  ]

(* ---------------------------------------------------------------- *)
(* Workload measurements *)

(* Aggregate goodput of [n] identical senders fanning into one
   bottleneck, measured after a warmup window. *)
let incast ~seed ~duration ~n spec =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let path =
    Path.build engine ~rng ~bandwidth:(Units.mbps 100.) ~rtt:0.02
      ~buffer:(Units.kib 128)
      ~flows:(List.init n (fun _ -> Path.flow spec))
      ()
  in
  let warmup = Float.max 2. (duration /. 5.) in
  Engine.run ~until:warmup engine;
  let before = Array.map Path.goodput_bytes (Path.flows path) in
  Engine.run ~until:(warmup +. duration) engine;
  let fl = Path.flows path in
  let total = ref 0 in
  Array.iteri
    (fun i f -> total := !total + Path.goodput_bytes f - before.(i))
    fl;
  float_of_int (!total * 8) /. duration

(* The controller's own goodput while sharing the bottleneck with one
   CUBIC flow — the friendliness angle of the head-to-head. *)
let vs_cubic ~seed ~duration spec =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let path =
    Path.build engine ~rng ~bandwidth:(Units.mbps 50.) ~rtt:0.03
      ~buffer:(Units.bdp_bytes ~rate:(Units.mbps 50.) ~rtt:0.03)
      ~flows:[ Path.flow ~label:"dut" spec; Path.flow (Transport.tcp "cubic") ]
      ()
  in
  let warmup = Float.max 2. (duration /. 5.) in
  Engine.run ~until:warmup engine;
  let dut = (Path.flows path).(0) in
  let before = Path.goodput_bytes dut in
  Engine.run ~until:(warmup +. duration) engine;
  float_of_int ((Path.goodput_bytes dut - before) * 8) /. duration

let workloads ~duration =
  let bw = Units.mbps 50. in
  let rtt = 0.03 in
  let bdp = Units.bdp_bytes ~rate:bw ~rtt in
  let solo ?loss ?jitter ?(buffer = bdp) () ~seed spec =
    Exp_common.solo_throughput ~seed ?loss ?jitter ~bandwidth:bw ~rtt ~buffer
      ~duration spec
  in
  [
    ("clean", fun ~seed spec -> solo () ~seed spec);
    ("loss-1%", fun ~seed spec -> solo ~loss:0.01 () ~seed spec);
    ("loss-3%", fun ~seed spec -> solo ~loss:0.03 () ~seed spec);
    ( "shallow-buf",
      fun ~seed spec -> solo ~buffer:(6 * Units.mss) () ~seed spec );
    ("incast-8", fun ~seed spec -> incast ~seed ~duration ~n:8 spec);
    ("vs-cubic", fun ~seed spec -> vs_cubic ~seed ~duration spec);
  ]

(* ---------------------------------------------------------------- *)
(* Scavenger vs primary *)

(* One long-lived background flow shares a bottleneck with a Proteus
   primary active only during the middle window. The defining Proteus
   behaviour: a scavenger's throughput collapses while the primary is
   present and recovers once it departs; a Vivace flow (the contrast
   row) keeps competing for its share throughout. *)
let scavenger_phases ~seed ~window background =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let bw = Units.mbps 30. in
  let rtt = 0.03 in
  let path =
    Path.build engine ~rng ~bandwidth:bw ~rtt
      ~buffer:(Units.bdp_bytes ~rate:bw ~rtt)
      ~flows:
        [
          Path.flow ~label:"background" background;
          Path.flow ~label:"primary" ~start_at:(2. *. window)
            ~stop_at:(3. *. window) (named "pcc-proteus");
        ]
      ()
  in
  let bg = (Path.flows path).(0) in
  let sample t0 t1 =
    Engine.run ~until:t0 engine;
    let b = Path.goodput_bytes bg in
    Engine.run ~until:t1 engine;
    float_of_int ((Path.goodput_bytes bg - b) * 8) /. (t1 -. t0)
  in
  (* Each sample reads the steady state of its phase, not the
     transition into it: the background flow gets two windows to settle
     before the primary arrives (a scavenger's start-up overshoot
     triggers a self-yield it must walk back from), and the "after"
     sample waits 1.5 windows past the primary's departure so the
     recovery climb from the yield floor has completed. *)
  let before_ = sample (1.5 *. window) (2. *. window) in
  let during = sample (2.5 *. window) (3. *. window) in
  let after = sample (4.5 *. window) (5. *. window) in
  { prot = ""; before_; during; after }

(* ---------------------------------------------------------------- *)
(* Tasks / collect / run *)

let head_tasks ~scale ~seed =
  let duration = Float.max 3. (30. *. scale) in
  List.concat_map
    (fun (wname, measure) ->
      List.map
        (fun (cname, spec) ->
          Exp_common.task ~seed
            ~label:(Printf.sprintf "controllers/%s/%s" wname cname)
            (fun () -> (wname, cname, measure ~seed spec)))
        (controllers ()))
    (workloads ~duration)

let phase_tasks ~scale ~seed =
  (* The window must out-last the primary's start-up: doubling into an
     occupied link ends in a loss burst that crashes the primary to a
     junk rate, and its gradient climb back to pressing strength eats
     ~2.5 s. A shorter window ends the "primary active" sample while the
     link still looks idle to the yielded scavenger. *)
  let window = Float.max 5. (20. *. scale) in
  List.map
    (fun (pname, spec) ->
      Exp_common.task ~seed
        ~label:(Printf.sprintf "controllers/scavenger/%s" pname)
        (fun () ->
          { (scavenger_phases ~seed ~window spec) with prot = pname }))
    [
      ("proteus-scavenger", named "pcc-proteus-scavenger");
      ("vivace", named "pcc-vivace");
    ]

let collect_head results =
  let present = Exp_common.present results in
  List.map
    (fun (wname, cells) ->
      { workload = wname; tputs = List.map (fun (_, c, v) -> (c, v)) cells })
    (Exp_common.group_by (fun (w, _, _) -> w) present)

let run ?pool ?policy ?(scale = 1.) ?(seed = 42) () =
  let head =
    collect_head
      (Exp_common.run_tasks_opt ?pool ?policy (head_tasks ~scale ~seed))
  in
  let phases =
    Exp_common.present
      (Exp_common.run_tasks_opt ?pool ?policy (phase_tasks ~scale ~seed))
  in
  (head, phases)

(* ---------------------------------------------------------------- *)
(* Tables *)

let column_names = List.map fst (controllers ())

let table rows =
  Exp_common.
    {
      title = "Controller family head-to-head (goodput, Mbps)";
      header = "workload" :: column_names;
      rows =
        List.map
          (fun r ->
            r.workload
            :: List.map
                 (fun c ->
                   match List.assoc_opt c r.tputs with
                   | Some v -> mbps v
                   | None -> "n/a")
                 column_names)
          rows;
      note =
        Some
          "50 Mbps / 30 ms dumbbell unless stated; incast-8 is aggregate \
           over a 100 Mbps fan-in; vs-cubic is the controller's share \
           against one CUBIC flow. proteus = hybrid class (2 Mbps floor, \
           scavenges the surplus).";
    }

let phase_table rows =
  Exp_common.
    {
      title = "Proteus scavenger vs a transient primary (30 Mbps bottleneck)";
      header =
        [ "background flow"; "before Mbps"; "primary active"; "after" ];
      rows =
        List.map
          (fun r ->
            [ r.prot; mbps r.before_; mbps r.during; mbps r.after ])
          rows;
      note =
        Some
          "The scavenger should collapse while the primary holds the link \
           and reclaim the bandwidth after it leaves; Vivace (contrast \
           row) keeps competing throughout.";
    }

let print ?pool ?scale ?seed () =
  let head, phases = run ?pool ?scale ?seed () in
  Exp_common.print_table (table head);
  Exp_common.print_table (phase_table phases)
