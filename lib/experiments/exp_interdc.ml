open Pcc_sim
open Pcc_scenario

type row = {
  name : string;
  rtt : float;
  pcc : float;
  sabul : float;
  cubic : float;
  illinois : float;
}

let pairs =
  [
    ("GPO->NYSERNet", 0.0121);
    ("GPO->Missouri", 0.0465);
    ("GPO->Illinois", 0.0354);
    ("NYSERNet->Missouri", 0.0474);
    ("Wisconsin->Illinois", 0.00901);
    ("GPO->Wisc.", 0.0380);
    ("NYSERNet->Wisc.", 0.0383);
    ("Missouri->Wisc.", 0.0209);
    ("NYSERNet->Illinois", 0.0361);
  ]

let specs () =
  [
    ("pcc", Transport.pcc ());
    ("sabul", Transport.sabul);
    ("cubic", Transport.tcp "cubic");
    ("illinois", Transport.tcp "illinois");
  ]

let tasks ?(scale = 1.) ?(seed = 42) () =
  let bandwidth = Units.mbps 800. in
  (* The bandwidth reservation's rate limiter: a shallow, 64-packet
     buffer, far below the BDP of every pair. *)
  let buffer = 64 * Units.mss in
  let duration = 100. *. scale in
  List.concat_map
    (fun (name, rtt) ->
      List.map
        (fun (proto, spec) ->
          Exp_common.task ~seed
            ~label:(Printf.sprintf "table1/%s/%s" proto name)
            (fun () ->
              Exp_common.solo_throughput ~seed ~bandwidth ~rtt ~buffer
                ~duration ~loss:0.0001 spec))
        (specs ()))
    pairs

let collect results =
  let v = Exp_common.value_or_nan in
  List.map2
    (fun (name, rtt) -> function
      | [ pcc; sabul; cubic; illinois ] ->
        {
          name;
          rtt;
          pcc = v pcc;
          sabul = v sabul;
          cubic = v cubic;
          illinois = v illinois;
        }
      | _ -> invalid_arg "Exp_interdc.collect: 4 measurements per pair")
    pairs
    (Exp_common.chunk (List.length (specs ())) results)

let run ?pool ?policy ?scale ?seed () =
  collect (Exp_common.run_tasks_opt ?pool ?policy (tasks ?scale ?seed ()))

let table rows =
  let avg f =
    List.fold_left (fun acc r -> acc +. f r) 0. rows
    /. float_of_int (max 1 (List.length rows))
  in
  Exp_common.
    {
      title = "Table 1 - inter-data-center paths (800 Mbps reserved; Mbps)";
      header = [ "pair"; "RTT ms"; "PCC"; "SABUL"; "CUBIC"; "Illinois" ];
      rows =
        List.map
          (fun r ->
            [
              r.name;
              f1 (r.rtt *. 1e3);
              mbps r.pcc;
              mbps r.sabul;
              mbps r.cubic;
              mbps r.illinois;
            ])
          rows
        @ [
            [
              "average";
              "";
              mbps (avg (fun r -> r.pcc));
              mbps (avg (fun r -> r.sabul));
              mbps (avg (fun r -> r.cubic));
              mbps (avg (fun r -> r.illinois));
            ];
          ];
      note =
        Some
          "Paper: PCC 624-818 Mbps on every pair; 5.2x Illinois on \
           average; SABUL within ~15% of PCC.";
    }

let print ?pool ?scale ?seed () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ()))
