open Pcc_sim
open Pcc_scenario

(* Scheduler/pooling stress scenario: a large fan-in of PCC flows over
   one shared bottleneck. Unlike the paper experiments, the interesting
   output is not a protocol comparison but that the simulator sustains
   tens of thousands of concurrent flows — hundreds of thousands of
   pending timers — and stays deterministic while doing so. The table
   is pure simulation state (no wall-clock), so a run under the heap
   and the wheel backend must render byte-identically. *)

type row = {
  flows : int;
  completed : int;
  goodput_mbps : float;  (** aggregate, over the last completion *)
  mean_fct : float;
  peak_pending : int;  (** high-water mark of queued events *)
  events : int;
}

let default_bandwidth = Units.gbps 10.
let default_rtt = 0.01
let flow_size = 200_000

(* Flow starts are staggered over half a second and RTTs spread over a
   small band so the event queue never degenerates into one synchronized
   burst — the population is what stresses the scheduler, not a single
   instant. Everything is a pure function of [n], so the scenario is
   deterministic for a fixed seed. *)
let fanin_spec ~n ~bandwidth ~rtt =
  let bdp = Units.bdp_bytes ~rate:bandwidth ~rtt in
  let links =
    [
      Topology.link ~name:"fanin" ~delay:(rtt /. 2.) ~buffer:bdp ~src:0 ~dst:1
        ~bandwidth ();
    ]
  in
  let fn = float_of_int n in
  let flows =
    List.init n (fun i ->
        Topology.flow
          ~start_at:(0.5 *. float_of_int i /. fn)
          ~size:flow_size
          ~extra_rtt:(rtt *. float_of_int (i mod 64) /. 64.)
          ~route:[ 0; 1 ] (Transport.pcc ()))
  in
  (links, flows)

let topology engine ~rng ~n ~bandwidth ~rtt =
  let links, flows = fanin_spec ~n ~bandwidth ~rtt in
  Topology.build engine ~rng ~links ~flows ()

let topology_sharded hub ~rng ~n ~bandwidth ~rtt =
  let links, flows = fanin_spec ~n ~bandwidth ~rtt in
  Topology.build_sharded hub ~rng ~links ~flows ()

(* Clustered fan-in: [clusters] self-contained dumbbells whose local
   populations never leave their cluster, chained by 1 ms inter-cluster
   links carrying a handful of 3-hop flows. The inter-cluster delay is
   well above the partitioner's minimum cut, so a hub spreads the
   clusters over its shards with only the thin chain links as boundary
   channels — the shape the sharded engine is built for. *)
let inter_cluster_delay = 0.001
let inter_flows_per_link = 4

let clustered_spec ~clusters ~n ~bandwidth ~rtt =
  if clusters < 1 then
    invalid_arg "Exp_manyflow.clustered_spec: clusters must be >= 1";
  let bdp = Units.bdp_bytes ~rate:bandwidth ~rtt in
  let head c = 2 * c and tail c = (2 * c) + 1 in
  let intra =
    List.init clusters (fun c ->
        Topology.link
          ~name:(Printf.sprintf "fanin%d" c)
          ~delay:(rtt /. 2.) ~buffer:bdp ~src:(head c) ~dst:(tail c)
          ~bandwidth ())
  in
  let inter =
    List.init (clusters - 1) (fun c ->
        Topology.link
          ~name:(Printf.sprintf "xlink%d" c)
          ~delay:inter_cluster_delay ~buffer:bdp ~src:(tail c)
          ~dst:(head (c + 1))
          ~bandwidth ())
  in
  let per = max 1 (n / clusters) in
  let fn = float_of_int (per * clusters) in
  let local_flows =
    List.concat
      (List.init clusters (fun c ->
           List.init per (fun i ->
               let k = (c * per) + i in
               Topology.flow
                 ~label:(Printf.sprintf "c%d-f%d" c i)
                 ~start_at:(0.5 *. float_of_int k /. fn)
                 ~size:flow_size
                 ~extra_rtt:(rtt *. float_of_int (k mod 64) /. 64.)
                 ~route:[ head c; tail c ] (Transport.pcc ()))))
  in
  let inter_flows =
    List.concat
      (List.init (clusters - 1) (fun c ->
           List.init inter_flows_per_link (fun i ->
               Topology.flow
                 ~label:(Printf.sprintf "x%d-f%d" c i)
                 ~start_at:(0.1 *. float_of_int (i + 1))
                 ~size:flow_size
                 ~route:[ head c; tail c; head (c + 1); tail (c + 1) ]
                 (Transport.pcc ()))))
  in
  (intra @ inter, local_flows @ inter_flows)

let clustered_topology hub ~rng ~clusters ~n ~bandwidth ~rtt =
  let links, flows = clustered_spec ~clusters ~n ~bandwidth ~rtt in
  Topology.build_sharded hub ~rng ~links ~flows ()

let round ~seed ~n ~bandwidth ~rtt =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let topo = topology engine ~rng ~n ~bandwidth ~rtt in
  let ideal =
    float_of_int (n * flow_size * 8) /. bandwidth
  in
  let horizon = 10. +. (8. *. ideal) in
  (* Sample the queue depth on a fixed grid: the samples are simulation
     events themselves, so the peak is deterministic and identical under
     every scheduler backend. *)
  let peak = ref 0 in
  let samples = int_of_float (horizon /. 0.05) in
  for k = 0 to samples do
    Engine.post engine
      ~at:(0.05 *. float_of_int k)
      (fun () -> peak := max !peak (Engine.pending engine))
  done;
  Engine.run ~until:horizon engine;
  let flows = Topology.flows topo in
  let completed = ref 0 and fct_sum = ref 0. and last_done = ref 0. in
  let bytes = ref 0 in
  Array.iter
    (fun (f : Topology.built_flow) ->
      bytes := !bytes + Topology.goodput_bytes f;
      match f.Topology.fct with
      | Some fct ->
        incr completed;
        fct_sum := !fct_sum +. fct;
        last_done := Float.max !last_done (f.Topology.def.Topology.start_at +. fct)
      | None -> ())
    flows;
  let row =
    {
      flows = n;
      completed = !completed;
      goodput_mbps =
        (if !last_done > 0. then
           float_of_int (!bytes * 8) /. !last_done /. 1e6
         else 0.);
      mean_fct =
        (if !completed > 0 then !fct_sum /. float_of_int !completed else nan);
      peak_pending = !peak;
      events = Engine.executed engine;
    }
  in
  (* Invariants: the run must actually finish (not stall at the horizon
     with most transfers dangling), stay inside the physical capacity,
     and exhibit real concurrency — each active flow holds at least one
     pending timer, so the peak queue depth of a genuine many-flow run
     cannot be small. *)
  if row.completed * 10 < n * 9 then
    failwith
      (Printf.sprintf "manyflow: only %d/%d flows completed" row.completed n);
  if row.goodput_mbps > 1.02 *. bandwidth /. 1e6 then
    failwith
      (Printf.sprintf "manyflow: goodput %.1f Mbps exceeds capacity"
         row.goodput_mbps);
  if row.peak_pending < n / 4 then
    failwith
      (Printf.sprintf "manyflow: peak pending %d events for %d flows"
         row.peak_pending n);
  row

let flows_for_scale scale = max 50 (int_of_float ((10_000. *. scale) +. 0.5))

let tasks ?(scale = 1.) ?(seed = 42) ?flows () =
  let n = match flows with Some n -> n | None -> flows_for_scale scale in
  [
    Exp_common.task ~seed
      ~label:(Printf.sprintf "manyflow/n=%d" n)
      (fun () ->
        round ~seed ~n ~bandwidth:default_bandwidth ~rtt:default_rtt);
  ]

let run ?pool ?policy ?scale ?seed ?flows () =
  Exp_common.run_tasks_opt ?pool ?policy (tasks ?scale ?seed ?flows ())
  |> Exp_common.present

let table rows =
  Exp_common.
    {
      title = "Many-flow fan-in (10 Gbps shared bottleneck; scheduler stress)";
      header =
        [ "flows"; "completed"; "Mbps"; "mean FCT s"; "peak pending"; "events" ];
      rows =
        List.map
          (fun r ->
            [
              string_of_int r.flows;
              string_of_int r.completed;
              mbps r.goodput_mbps;
              f2 r.mean_fct;
              string_of_int r.peak_pending;
              string_of_int r.events;
            ])
          rows;
      note =
        Some
          "Not a paper figure: scale proof for the timing-wheel scheduler \
           and pooled packet path. Output is simulation state only, so it \
           is byte-identical under --scheduler heap and wheel.";
    }

let print ?pool ?scale ?seed () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ()))

(* ------------------------------------------------------------------ *)
(* Sharded clustered fan-in ("shardflow"): the same seeded scenario on a
   1-shard and an N-shard hub, with the 1-vs-N digest identity asserted
   inside the round — the experiment table doubles as a determinism
   check every `pcc_sim run` exercises. *)

type shard_row = {
  s_shards : int;
  s_populated : int;  (** shards that actually executed events *)
  s_flows : int;
  s_completed : int;
  s_events : int;
  s_balance : float;  (** max/mean per-shard events, 1.0 = perfect *)
  s_identical : bool;  (** 1-shard vs N-shard digests matched *)
}

let shard_digest topo hub =
  let b = Buffer.create 1024 in
  Array.iteri
    (fun i (f : Topology.built_flow) ->
      Printf.bprintf b "f%d g=%d fct=%s\n" i (Topology.goodput_bytes f)
        (match f.Topology.fct with
        | Some v -> Printf.sprintf "%h" v
        | None -> "-"))
    (Topology.flows topo);
  Printf.bprintf b "events=%d" (Shard.executed hub);
  Buffer.contents b

let shard_flows_for_scale scale = max 64 (int_of_float ((2_000. *. scale) +. 0.5))

let shard_round ~seed ~shards ~clusters ~n ~bandwidth ~rtt =
  let per = max 1 (n / clusters) in
  let ideal = float_of_int (per * flow_size * 8) /. bandwidth in
  let horizon = 10. +. (8. *. ideal) in
  let one shards =
    let hub = Shard.create ~shards () in
    let rng = Rng.create seed in
    let topo = clustered_topology hub ~rng ~clusters ~n ~bandwidth ~rtt in
    Shard.run hub ~until:horizon;
    (hub, topo)
  in
  let hub1, topo1 = one 1 in
  (* A lane failure in the N-shard attempt walks the degradation ladder
     (rebuilding from the seed at each narrower width) instead of
     failing the task; the supervisor accounts the steps as [degraded].
     The byte-identical contract keeps the digest check meaningful at
     whatever width finally succeeded. *)
  let degraded =
    Degrade.run
      ~plan:(Degrade.plan ~shards ())
      (fun (a : Degrade.attempt) -> one a.Degrade.shards)
  in
  let hubn, topon = degraded.Degrade.value in
  let identical = String.equal (shard_digest topo1 hub1) (shard_digest topon hubn) in
  if not identical then
    failwith
      (Printf.sprintf
         "shardflow: 1-shard and %d-shard digests differ (seed %d, %d flows)"
         degraded.Degrade.attempt.Degrade.shards seed n);
  let flows = Topology.flows topon in
  let completed =
    Array.fold_left
      (fun a (f : Topology.built_flow) ->
        if f.Topology.fct <> None then a + 1 else a)
      0 flows
  in
  if completed * 10 < Array.length flows * 9 then
    failwith
      (Printf.sprintf "shardflow: only %d/%d flows completed" completed
         (Array.length flows));
  let per_shard =
    match Shard.last_stats hubn with
    | Some st -> st.Shard.per_shard_events
    | None -> [||]
  in
  let populated = Array.fold_left (fun a e -> if e > 0 then a + 1 else a) 0 per_shard in
  let balance =
    if populated = 0 then 1.
    else begin
      let busy = Array.to_list per_shard |> List.filter (fun e -> e > 0) in
      let mx = List.fold_left max 0 busy in
      let mean =
        float_of_int (List.fold_left ( + ) 0 busy) /. float_of_int populated
      in
      if mean > 0. then float_of_int mx /. mean else 1.
    end
  in
  {
    s_shards = shards;
    s_populated = populated;
    s_flows = Array.length flows;
    s_completed = completed;
    s_events = Shard.executed hubn;
    s_balance = balance;
    s_identical = identical;
  }

let shard_tasks ?(scale = 1.) ?(seed = 42) ?(shards = 4) () =
  let n = shard_flows_for_scale scale in
  [
    Exp_common.task ~seed
      ~label:(Printf.sprintf "shardflow/n=%d" n)
      (fun () ->
        shard_round ~seed ~shards ~clusters:4 ~n ~bandwidth:default_bandwidth
          ~rtt:default_rtt);
  ]

let run_sharded ?pool ?policy ?scale ?seed ?shards () =
  Exp_common.run_tasks_opt ?pool ?policy (shard_tasks ?scale ?seed ?shards ())
  |> Exp_common.present

let shard_table rows =
  Exp_common.
    {
      title = "Sharded clustered fan-in (4 clusters; 1-vs-N digest identity)";
      header =
        [ "shards"; "populated"; "flows"; "completed"; "events"; "balance";
          "identical" ];
      rows =
        List.map
          (fun r ->
            [
              string_of_int r.s_shards;
              string_of_int r.s_populated;
              string_of_int r.s_flows;
              string_of_int r.s_completed;
              string_of_int r.s_events;
              f2 r.s_balance;
              (if r.s_identical then "yes" else "NO");
            ])
          rows;
      note =
        Some
          "Not a paper figure: determinism proof for the sharded engine. \
           The round fails outright if the 1-shard and N-shard runs of \
           the same seed diverge in any float bit or event count.";
    }
