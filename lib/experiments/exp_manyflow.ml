open Pcc_sim
open Pcc_scenario

(* Scheduler/pooling stress scenario: a large fan-in of PCC flows over
   one shared bottleneck. Unlike the paper experiments, the interesting
   output is not a protocol comparison but that the simulator sustains
   tens of thousands of concurrent flows — hundreds of thousands of
   pending timers — and stays deterministic while doing so. The table
   is pure simulation state (no wall-clock), so a run under the heap
   and the wheel backend must render byte-identically. *)

type row = {
  flows : int;
  completed : int;
  goodput_mbps : float;  (** aggregate, over the last completion *)
  mean_fct : float;
  peak_pending : int;  (** high-water mark of queued events *)
  events : int;
}

let default_bandwidth = Units.gbps 10.
let default_rtt = 0.01
let flow_size = 200_000

(* Flow starts are staggered over half a second and RTTs spread over a
   small band so the event queue never degenerates into one synchronized
   burst — the population is what stresses the scheduler, not a single
   instant. Everything is a pure function of [n], so the scenario is
   deterministic for a fixed seed. *)
let topology engine ~rng ~n ~bandwidth ~rtt =
  let bdp = Units.bdp_bytes ~rate:bandwidth ~rtt in
  let links =
    [
      Topology.link ~name:"fanin" ~delay:(rtt /. 2.) ~buffer:bdp ~src:0 ~dst:1
        ~bandwidth ();
    ]
  in
  let fn = float_of_int n in
  let flows =
    List.init n (fun i ->
        Topology.flow
          ~start_at:(0.5 *. float_of_int i /. fn)
          ~size:flow_size
          ~extra_rtt:(rtt *. float_of_int (i mod 64) /. 64.)
          ~route:[ 0; 1 ] (Transport.pcc ()))
  in
  Topology.build engine ~rng ~links ~flows ()

let round ~seed ~n ~bandwidth ~rtt =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let topo = topology engine ~rng ~n ~bandwidth ~rtt in
  let ideal =
    float_of_int (n * flow_size * 8) /. bandwidth
  in
  let horizon = 10. +. (8. *. ideal) in
  (* Sample the queue depth on a fixed grid: the samples are simulation
     events themselves, so the peak is deterministic and identical under
     every scheduler backend. *)
  let peak = ref 0 in
  let samples = int_of_float (horizon /. 0.05) in
  for k = 0 to samples do
    Engine.post engine
      ~at:(0.05 *. float_of_int k)
      (fun () -> peak := max !peak (Engine.pending engine))
  done;
  Engine.run ~until:horizon engine;
  let flows = Topology.flows topo in
  let completed = ref 0 and fct_sum = ref 0. and last_done = ref 0. in
  let bytes = ref 0 in
  Array.iter
    (fun (f : Topology.built_flow) ->
      bytes := !bytes + Topology.goodput_bytes f;
      match f.Topology.fct with
      | Some fct ->
        incr completed;
        fct_sum := !fct_sum +. fct;
        last_done := Float.max !last_done (f.Topology.def.Topology.start_at +. fct)
      | None -> ())
    flows;
  let row =
    {
      flows = n;
      completed = !completed;
      goodput_mbps =
        (if !last_done > 0. then
           float_of_int (!bytes * 8) /. !last_done /. 1e6
         else 0.);
      mean_fct =
        (if !completed > 0 then !fct_sum /. float_of_int !completed else nan);
      peak_pending = !peak;
      events = Engine.executed engine;
    }
  in
  (* Invariants: the run must actually finish (not stall at the horizon
     with most transfers dangling), stay inside the physical capacity,
     and exhibit real concurrency — each active flow holds at least one
     pending timer, so the peak queue depth of a genuine many-flow run
     cannot be small. *)
  if row.completed * 10 < n * 9 then
    failwith
      (Printf.sprintf "manyflow: only %d/%d flows completed" row.completed n);
  if row.goodput_mbps > 1.02 *. bandwidth /. 1e6 then
    failwith
      (Printf.sprintf "manyflow: goodput %.1f Mbps exceeds capacity"
         row.goodput_mbps);
  if row.peak_pending < n / 4 then
    failwith
      (Printf.sprintf "manyflow: peak pending %d events for %d flows"
         row.peak_pending n);
  row

let flows_for_scale scale = max 50 (int_of_float ((10_000. *. scale) +. 0.5))

let tasks ?(scale = 1.) ?(seed = 42) ?flows () =
  let n = match flows with Some n -> n | None -> flows_for_scale scale in
  [
    Exp_common.task ~seed
      ~label:(Printf.sprintf "manyflow/n=%d" n)
      (fun () ->
        round ~seed ~n ~bandwidth:default_bandwidth ~rtt:default_rtt);
  ]

let run ?pool ?policy ?scale ?seed ?flows () =
  Exp_common.run_tasks_opt ?pool ?policy (tasks ?scale ?seed ?flows ())
  |> Exp_common.present

let table rows =
  Exp_common.
    {
      title = "Many-flow fan-in (10 Gbps shared bottleneck; scheduler stress)";
      header =
        [ "flows"; "completed"; "Mbps"; "mean FCT s"; "peak pending"; "events" ];
      rows =
        List.map
          (fun r ->
            [
              string_of_int r.flows;
              string_of_int r.completed;
              mbps r.goodput_mbps;
              f2 r.mean_fct;
              string_of_int r.peak_pending;
              string_of_int r.events;
            ])
          rows;
      note =
        Some
          "Not a paper figure: scale proof for the timing-wheel scheduler \
           and pooled packet path. Output is simulation state only, so it \
           is byte-identical under --scheduler heap and wheel.";
    }

let print ?pool ?scale ?seed () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ()))
