(* Deterministic checkpoint/resume for experiment sweeps.

   Granularity is one *completed experiment*: after each registry entry
   renders, its output string is appended to the checkpoint and the
   file is flushed, so a killed run loses at most the experiment in
   flight. We deliberately do not checkpoint mid-experiment — the event
   heap holds closures, which the no-Marshal rule (see Pcc_sim.Persist)
   forbids serializing, and determinism makes re-running the
   interrupted experiment from its derived seed equivalent anyway.

   File layout: a sequence of frames, each a 4-byte little-endian
   length followed by a Persist blob. Frame 0 is the header (seed,
   scale, experiment names — resume refuses a checkpoint taken with
   different parameters); each subsequent frame is one completed
   experiment's (name, rendered output). Loading tolerates a truncated
   trailing frame (the run was killed mid-append) but rejects corrupt
   complete frames. *)

let header_magic = "PCC-CKPT"
let record_magic = "PCC-CKPT-REC"
let version = 1

type meta = { seed : int; scale : float; names : string list }

type t = { oc : out_channel }

let write_frame oc blob =
  let n = String.length blob in
  let len = Bytes.create 4 in
  Bytes.set_uint8 len 0 (n land 0xff);
  Bytes.set_uint8 len 1 ((n lsr 8) land 0xff);
  Bytes.set_uint8 len 2 ((n lsr 16) land 0xff);
  Bytes.set_uint8 len 3 ((n lsr 24) land 0xff);
  output_bytes oc len;
  output_string oc blob;
  flush oc

let create ~path meta =
  let oc = open_out_bin path in
  let w = Pcc_sim.Persist.Writer.create ~magic:header_magic ~version in
  Pcc_sim.Persist.Writer.int w meta.seed;
  Pcc_sim.Persist.Writer.float w meta.scale;
  Pcc_sim.Persist.Writer.list w Pcc_sim.Persist.Writer.string meta.names;
  write_frame oc (Pcc_sim.Persist.Writer.contents w);
  { oc }

let append t ~name ~output =
  let w = Pcc_sim.Persist.Writer.create ~magic:record_magic ~version in
  Pcc_sim.Persist.Writer.string w name;
  Pcc_sim.Persist.Writer.string w output;
  write_frame t.oc (Pcc_sim.Persist.Writer.contents w)

let close t = close_out t.oc

(* Splits [data] into complete frames, silently dropping a truncated
   trailing one. *)
let frames data =
  let len = String.length data in
  let rec go pos acc =
    if pos + 4 > len then List.rev acc
    else begin
      let n =
        Char.code data.[pos]
        lor (Char.code data.[pos + 1] lsl 8)
        lor (Char.code data.[pos + 2] lsl 16)
        lor (Char.code data.[pos + 3] lsl 24)
      in
      if pos + 4 + n > len then List.rev acc
      else go (pos + 4 + n) (String.sub data (pos + 4) n :: acc)
    end
  in
  go 0 []

let load ~path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match frames data with
  | [] -> raise (Pcc_sim.Persist.Corrupt "checkpoint has no complete header")
  | header :: records ->
    let r = Pcc_sim.Persist.Reader.of_string ~magic:header_magic header in
    if Pcc_sim.Persist.Reader.version r <> version then
      raise
        (Pcc_sim.Persist.Corrupt
           (Printf.sprintf "unsupported checkpoint version %d"
              (Pcc_sim.Persist.Reader.version r)));
    let seed = Pcc_sim.Persist.Reader.int r in
    let scale = Pcc_sim.Persist.Reader.float r in
    let names =
      Pcc_sim.Persist.Reader.list r Pcc_sim.Persist.Reader.string
    in
    let read_record blob =
      let r = Pcc_sim.Persist.Reader.of_string ~magic:record_magic blob in
      let name = Pcc_sim.Persist.Reader.string r in
      let output = Pcc_sim.Persist.Reader.string r in
      (name, output)
    in
    ({ seed; scale; names }, List.map read_record records)

let matches m ~seed ~scale ~names =
  m.seed = seed && m.scale = scale && m.names = names
