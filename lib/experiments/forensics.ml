(* Crash-forensics bundles.

   Shared between the supervisor (per-task bundles for a failed sweep)
   and the CLI (a bundle for a sharded run whose degradation ladder was
   exhausted or disabled). Bundle IO must never take the caller down
   with it: every writer swallows [Sys_error] and reports [None]. *)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir

let sanitize label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    label

(* The failing domain's trace ring, in every export format the repo
   reads: chrome trace for timelines, the decision log for controller
   forensics, csv for plotting. *)
let write_trace ~dir c =
  Pcc_trace.Export.write_chrome_json
    ~path:(Filename.concat dir "trace.json")
    c;
  Pcc_trace.Export.write_decision_log
    ~path:(Filename.concat dir "decisions.log")
    c;
  Pcc_metrics.Series_io.write_multi_series
    ~path:(Filename.concat dir "trace.csv")
    (Pcc_trace.Export.csv_series c)

type shard_failure = {
  label : string;
  seed : int option;
  repro : string option;  (* exact single-shard repro command *)
  shards : int;  (* width of the failed attempt *)
  domains : int;
  shard : int;
  round : int;
  wedged : bool;
  exn_text : string;
  backtrace : string;
  ladder : string list;  (* one line per degradation step, ladder order *)
}

let write_shard_bundle ~dir ?collector (f : shard_failure) =
  try
    let id =
      Printf.sprintf "shard-%s"
        (sanitize (if f.label = "" then "run" else f.label))
    in
    let bundle = Filename.concat dir id in
    mkdir_p bundle;
    let oc = open_out (Filename.concat bundle "report.txt") in
    let p fmt = Printf.fprintf oc fmt in
    p "kind: shard-lane-failure\n";
    p "task: %s\n" (if f.label = "" then "(unlabelled)" else f.label);
    p "shard: %d\n" f.shard;
    p "barrier-round: %d\n" f.round;
    p "mode: %d shard(s) / %d domain(s)\n" f.shards f.domains;
    p "failure: %s\n" (if f.wedged then "wedged" else "crashed");
    (match f.seed with
    | Some s -> p "seed: %d\n" s
    | None -> p "seed: (not recorded)\n");
    (match f.repro with
    | Some r -> p "repro: %s\n" r
    | None -> p "repro: (not recorded)\n");
    p "exception: %s\n" f.exn_text;
    List.iter (fun l -> p "ladder: %s\n" l) f.ladder;
    if f.backtrace <> "" then begin
      p "backtrace:\n";
      String.split_on_char '\n' f.backtrace
      |> List.iter (fun l -> if l <> "" then p "    %s\n" l)
    end;
    close_out oc;
    (match collector with Some c -> write_trace ~dir:bundle c | None -> ());
    Some bundle
  with Sys_error _ -> None
