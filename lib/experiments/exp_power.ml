open Pcc_sim
open Pcc_scenario

type row = { combo : string; throughput : float; rtt : float; power : float }

let measure ~seed ~duration ~queue spec name =
  let bandwidth = Units.mbps 40. and rtt = 0.02 in
  let engine = Engine.create () in
  let rng = Rng.create seed in
  (* Per-flow sub-queue capacity: 512 KB is the "bufferbloat" deep buffer
     (~100 ms of queueing at a 20 Mbps fair share); CoDel runs over the
     same capacity but keeps sojourn times near its 5 ms target. *)
  let path =
    Path.build engine ~rng ~bandwidth ~rtt ~buffer:(Units.kib 512) ~queue
      ~flows:[ Path.flow spec; Path.flow spec ]
      ()
  in
  let warmup = Float.max 20. (duration /. 4.) in
  Engine.run ~until:warmup engine;
  let b0 =
    Array.map (fun f -> Path.goodput_bytes f) (Path.flows path)
  in
  (* Sample RTT along the measurement window. *)
  let rtt_sum = ref 0. and rtt_n = ref 0 in
  let steps = 20 in
  for i = 1 to steps do
    Engine.run
      ~until:(warmup +. (duration *. float_of_int i /. float_of_int steps))
      engine;
    Array.iter
      (fun f ->
        rtt_sum := !rtt_sum +. f.Path.sender.Pcc_net.Sender.srtt ();
        incr rtt_n)
      (Path.flows path)
  done;
  let b1 = Array.map (fun f -> Path.goodput_bytes f) (Path.flows path) in
  let tputs =
    Array.mapi (fun i b -> float_of_int ((b - b0.(i)) * 8) /. duration) b1
  in
  let mean a = Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a) in
  let throughput = mean tputs in
  let avg_rtt = !rtt_sum /. float_of_int !rtt_n in
  { combo = name; throughput; rtt = avg_rtt; power = throughput /. avg_rtt }

let combos () =
  let pcc_latency =
    Transport.pcc
      ~config:
        (Pcc_core.Pcc_sender.config_with
           ~utility:(Pcc_core.Utility.latency ())
           ())
      ()
  in
  [
    ("TCP + FQ + CoDel", Path.Fq Path.Codel, Transport.tcp "cubic");
    ("TCP + FQ + Bufferbloat", Path.Fq Path.Droptail, Transport.tcp "cubic");
    ("PCC + FQ + CoDel", Path.Fq Path.Codel, pcc_latency);
    ("PCC + FQ + Bufferbloat", Path.Fq Path.Droptail, pcc_latency);
  ]

let tasks ?(scale = 1.) ?(seed = 42) () =
  let duration = 60. *. scale in
  List.map
    (fun (name, queue, spec) ->
      Exp_common.task ~seed
        ~label:(Printf.sprintf "power/%s" name)
        (fun () -> measure ~seed ~duration ~queue spec name))
    (combos ())

let collect results = Exp_common.present results

let run ?pool ?policy ?scale ?seed () =
  collect (Exp_common.run_tasks_opt ?pool ?policy (tasks ?scale ?seed ()))

let table rows =
  let find name =
    List.find_opt (fun r -> r.combo = name) rows
  in
  let note =
    match
      ( find "TCP + FQ + CoDel",
        find "TCP + FQ + Bufferbloat",
        find "PCC + FQ + CoDel",
        find "PCC + FQ + Bufferbloat" )
    with
    | Some tc, Some tb, Some pc, Some pb ->
      Some
        (Printf.sprintf
           "TCP codel/bloat power ratio: %.1fx | PCC codel/bloat: %.2fx | \
            PCC+bloat vs TCP+codel: %.2fx (paper: 10.5x, ~1.0x, 1.55x)"
           (Exp_common.ratio tc.power tb.power)
           (Exp_common.ratio pc.power pb.power)
           (Exp_common.ratio pb.power tc.power))
    | _ -> None
  in
  Exp_common.
    {
      title =
        "Fig. 17 - power under FQ (40 Mbps, 20 ms; 2 interactive flows)";
      header = [ "combination"; "tput Mbps"; "RTT ms"; "power Mbit/s^2" ];
      rows =
        List.map
          (fun r ->
            [
              r.combo;
              mbps r.throughput;
              f1 (r.rtt *. 1e3);
              f1 (r.power /. 1e6);
            ])
          rows;
      note;
    }

let print ?pool ?scale ?seed () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ()))
