(** Figure 8 — RTT unfairness.

    A 10 ms-RTT flow and a longer-RTT flow (20–100 ms) share a 100 Mbps
    bottleneck whose buffer equals the short flow's BDP. The long flow
    starts first (5 s head start per the paper), then both run and the
    ratio long/short of average throughput is reported. Shape: PCC near
    1 at every RTT (convergence is driven by utility, not by the control
    loop's cycle length); New Reno collapses with RTT; CUBIC in
    between. *)

type row = {
  long_rtt : float;  (** seconds *)
  pcc : float;  (** ratio long/short *)
  cubic : float;
  newreno : float;
}

val tasks :
  ?scale:float ->
  ?seed:int ->
  ?rtts:float list ->
  unit ->
  (float * float) Exp_common.task list
(** One simulation per (RTT, protocol), yielding (long_rtt, ratio). *)

val collect : (float * float) option list -> row list

val run :
  ?pool:Runner.t ->
  ?policy:Supervisor.policy ->
  ?scale:float ->
  ?seed:int ->
  ?rtts:float list ->
  unit ->
  row list
(** Base measurement 500 s per point (paper), scaled. *)

val table : row list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit
