type entry = {
  name : string;
  descr : string;
  parallel : bool;
      (* Whether a Runner pool pays for itself. An experiment whose whole
         sweep is sub-second cannot amortize the domain fan-out (spawn,
         work-stealing handshakes, multi-domain minor-GC coordination),
         so the bench harness runs it sequentially even under --jobs N
         rather than report a meaningless slowdown. *)
  render :
    ?pool:Runner.t ->
    ?policy:Supervisor.policy ->
    ?dump_dir:string ->
    scale:float ->
    seed:int ->
    unit ->
    string;
}

let simple ?(parallel = true) name descr render =
  { name; descr; parallel;
    render = (fun ?pool ?policy ?dump_dir:_ ~scale ~seed () ->
        render ?pool ?policy ~scale ~seed ()) }

let fig11 =
  {
    name = "fig11";
    parallel = true;
    descr = "Fig. 11: rapidly changing network";
    render =
      (fun ?pool ?policy ?dump_dir ~scale ~seed () ->
        let rows, series = Exp_dynamic.run ?pool ?policy ~scale ~seed () in
        let out = Exp_common.render_table (Exp_dynamic.table rows) in
        match dump_dir with
        | None -> out
        | Some dir ->
          let all =
            List.concat_map
              (fun (name, pts) ->
                [
                  ( name ^ "-rate",
                    Array.of_list
                      (List.map
                         (fun p -> Exp_dynamic.(p.time, p.rate /. 1e6))
                         pts) );
                  ( name ^ "-optimal",
                    Array.of_list
                      (List.map
                         (fun p -> Exp_dynamic.(p.time, p.optimal /. 1e6))
                         pts) );
                ])
              series
          in
          let path = Filename.concat dir "fig11_rate_tracking.csv" in
          Pcc_metrics.Series_io.write_multi_series ~path all;
          out ^ Printf.sprintf "[series written to %s]\n" path);
  }

let fig12 =
  {
    name = "fig12";
    parallel = true;
    descr = "Fig. 12/13: convergence and fairness of competing flows";
    render =
      (fun ?pool ?policy ?dump_dir ~scale ~seed () ->
        let results = Exp_convergence.run ?pool ?policy ~scale ~seed () in
        let out = Exp_common.render_table (Exp_convergence.table results) in
        match dump_dir with
        | None -> out
        | Some dir ->
          List.fold_left
            (fun out r ->
              let open Exp_convergence in
              let series =
                List.mapi
                  (fun i s ->
                    ( Printf.sprintf "flow%d" (i + 1),
                      Array.map (fun (t, v) -> (t, v /. 1e6)) s ))
                  r.series
              in
              let path =
                Filename.concat dir
                  (Printf.sprintf "fig12_%s_rates.csv" r.protocol)
              in
              Pcc_metrics.Series_io.write_multi_series ~path series;
              out ^ Printf.sprintf "[series written to %s]\n" path)
            out results);
  }

let all : entry list =
  [
    (* ~300 ms of total work across five uneven tasks: measured 0.44x
       "speedup" at --jobs 2, i.e. the pool costs more than the sweep. *)
    simple ~parallel:false "game"
      "Theorems 1-2: game dynamics, equilibrium, naive-utility contrast"
      (fun ?pool ?policy ~scale:_ ~seed () ->
        Exp_common.render_table (Exp_game.table (Exp_game.run ?pool ?policy ~seed ())));
    simple "fig5" "Fig. 4/5: large-scale Internet experiment (synthetic paths)"
      (fun ?pool ?policy ~scale ~seed () ->
        Exp_common.render_table
          (Exp_internet.table (Exp_internet.run ?pool ?policy ~scale ~seed ())));
    simple "table1" "Table 1: inter-data-center paths over reserved bandwidth"
      (fun ?pool ?policy ~scale ~seed () ->
        Exp_common.render_table
          (Exp_interdc.table (Exp_interdc.run ?pool ?policy ~scale ~seed ())));
    simple "fig6" "Fig. 6: emulated satellite links"
      (fun ?pool ?policy ~scale ~seed () ->
        Exp_common.render_table
          (Exp_satellite.table (Exp_satellite.run ?pool ?policy ~scale ~seed ())));
    simple "fig7" "Fig. 7: random loss resilience"
      (fun ?pool ?policy ~scale ~seed () ->
        Exp_common.render_table
          (Exp_loss.table (Exp_loss.run ?pool ?policy ~scale ~seed ())));
    simple "fig8" "Fig. 8: RTT fairness" (fun ?pool ?policy ~scale ~seed () ->
        Exp_common.render_table
          (Exp_rtt_fairness.table (Exp_rtt_fairness.run ?pool ?policy ~scale ~seed ())));
    simple "fig9" "Fig. 9: shallow bottleneck buffers"
      (fun ?pool ?policy ~scale ~seed () ->
        Exp_common.render_table
          (Exp_buffer.table (Exp_buffer.run ?pool ?policy ~scale ~seed ())));
    simple "fig10" "Fig. 10: data-center incast" (fun ?pool ?policy ~scale ~seed () ->
        Exp_common.render_table
          (Exp_incast.table (Exp_incast.run ?pool ?policy ~scale ~seed ())));
    fig11;
    fig12;
    simple "fig14" "Fig. 14: TCP friendliness vs parallel-TCP selfishness"
      (fun ?pool ?policy ~scale ~seed () ->
        Exp_common.render_table
          (Exp_friendliness.table (Exp_friendliness.run ?pool ?policy ~scale ~seed ())));
    simple "fig15" "Fig. 15: short-flow completion times"
      (fun ?pool ?policy ~scale ~seed () ->
        Exp_common.render_table
          (Exp_fct.table (Exp_fct.run ?pool ?policy ~scale ~seed ())));
    simple "fig16" "Fig. 16: stability vs reactiveness trade-off"
      (fun ?pool ?policy ~scale ~seed () ->
        Exp_common.render_table
          (Exp_tradeoff.table (Exp_tradeoff.run ?pool ?policy ~scale ~seed ())));
    simple "fig17" "Fig. 17: power under FQ with CoDel vs bufferbloat"
      (fun ?pool ?policy ~scale ~seed () ->
        Exp_common.render_table
          (Exp_power.table (Exp_power.run ?pool ?policy ~scale ~seed ())));
    simple "highloss" "Sec. 4.4.2: loss-resilient utility under 10-50% loss"
      (fun ?pool ?policy ~scale ~seed () ->
        Exp_common.render_table
          (Exp_high_loss.table (Exp_high_loss.run ?pool ?policy ~scale ~seed ())));
    simple "ablation" "Ablations: confidence-bound loss estimate, MI sizing"
      (fun ?pool ?policy ~scale ~seed () ->
        Exp_common.render_table
          (Exp_ablation.table (Exp_ablation.run ?pool ?policy ~scale ~seed ())));
    simple "controllers"
      "Controller family: Allegro/Vivace/Proteus/CUBIC head-to-head and \
       scavenger-vs-primary sharing"
      (fun ?pool ?policy ~scale ~seed () ->
        let head, phases =
          Exp_controllers.run ?pool ?policy ~scale ~seed ()
        in
        Exp_common.render_table (Exp_controllers.table head)
        ^ Exp_common.render_table (Exp_controllers.phase_table phases));
    simple "manyflow" "Scale: 10k-flow fan-in stress (scheduler and pooling)"
      (fun ?pool ?policy ~scale ~seed () ->
        Exp_common.render_table
          (Exp_manyflow.table (Exp_manyflow.run ?pool ?policy ~scale ~seed ())));
    (* Runs two whole hubs back to back on the calling domain — a pool
       cannot split one round, so don't let it claim slots for this. *)
    simple ~parallel:false "shardflow"
      "Scale: sharded clustered fan-in with 1-vs-4-shard digest identity"
      (fun ?pool ?policy ~scale ~seed () ->
        Exp_common.render_table
          (Exp_manyflow.shard_table
             (Exp_manyflow.run_sharded ?pool ?policy ~scale ~seed ())));
  ]

let find name = List.find_opt (fun e -> e.name = name) all
let names () = List.map (fun e -> e.name) all
