open Pcc_sim
open Pcc_scenario

type table = {
  title : string;
  header : string list;
  rows : string list list;
  note : string option;
}

let render_table t =
  let all = t.header :: t.rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let render row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let w = List.nth widths i in
           let pad = w - String.length cell in
           if i = 0 then cell ^ String.make pad ' '
           else String.make pad ' ' ^ cell)
         row)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "\n== %s ==\n" t.title);
  Buffer.add_string buf (render t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length (render t.header)) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (render r);
      Buffer.add_char buf '\n')
    t.rows;
  (match t.note with
  | Some n ->
    Buffer.add_string buf n;
    Buffer.add_char buf '\n'
  | None -> ());
  Buffer.contents buf

let print_table t =
  print_string (render_table t);
  flush stdout

(* ------------------------------------------------------------------ *)
(* Task plumbing: every experiment describes its independent simulation
   runs as a list of tasks, executed sequentially or fanned out over a
   Runner pool. Results always come back in task order, so [collect]
   functions may rely on position. *)

module Task = struct
  type 'a t = 'a Supervisor.task = {
    label : string;
    seed : int option;
    repro : string option;
    run : unit -> 'a;
  }
end

type 'a task = 'a Task.t

let task ?(label = "") ?seed ?repro run = { Task.label; seed; repro; run }

let task_label (t : _ task) = t.Task.label

let run_tasks ?pool tasks =
  match pool with
  | Some p when Runner.jobs p > 1 ->
    Runner.map_list p (fun t -> t.Task.run ()) tasks
  | _ -> List.map (fun t -> t.Task.run ()) tasks

(* Supervised variant: with a policy, failures yield [None] slots (and
   land in the supervisor's report/tally) instead of tearing down the
   sweep; without one, behaves exactly like [run_tasks]. *)
let run_tasks_opt ?pool ?policy tasks =
  match policy with
  | Some policy -> fst (Supervisor.run ~policy tasks)
  | None -> List.map Option.some (run_tasks ?pool tasks)

let value_or_nan = function Some v -> v | None -> Float.nan
let present l = List.filter_map Fun.id l

let chunk n l =
  if n <= 0 then invalid_arg "Exp_common.chunk";
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = n then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 l

let group_by key l =
  List.fold_left
    (fun acc x ->
      let k = key x in
      match List.assoc_opt k acc with
      | Some _ ->
        List.map
          (fun (k', xs') -> if k' = k then (k, x :: xs') else (k', xs'))
          acc
      | None -> acc @ [ (k, [ x ]) ])
    [] l
  |> List.map (fun (k, xs) -> (k, List.rev xs))

(* Formatters render NaN as "n/a": under supervised execution a failed
   task leaves NaN in its row's cells, and the table must still print. *)
let fmt_or_na f v = if Float.is_nan v then "n/a" else f v
let f1 = fmt_or_na (Printf.sprintf "%.1f")
let f2 = fmt_or_na (Printf.sprintf "%.2f")
let f3 = fmt_or_na (Printf.sprintf "%.3f")
let mbps = fmt_or_na (fun v -> Printf.sprintf "%.2f" (v /. 1e6))

let ratio a b =
  if Float.is_nan a || Float.is_nan b then Float.nan
  else if Float.abs b < 1e-9 then infinity
  else a /. b

let goodput_between engine flow ~t0 ~t1 =
  Engine.run ~until:t0 engine;
  let b0 = Topology.goodput_bytes flow in
  Engine.run ~until:t1 engine;
  let b1 = Topology.goodput_bytes flow in
  float_of_int ((b1 - b0) * 8) /. (t1 -. t0)

(* Builds the dumbbell on the graph layer directly; the link/flow specs
   mirror what Path.build would produce, so seeded results are identical
   with the pre-graph implementation. *)
let solo_throughput ?(seed = 42) ?warmup ?(queue = Topology.Droptail)
    ?(loss = 0.) ?(rev_loss = 0.) ?(jitter = 0.) ~bandwidth ~rtt ~buffer
    ~duration spec =
  let warmup =
    match warmup with Some w -> w | None -> Float.max 3. (20. *. rtt)
  in
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let topo =
    Topology.build engine ~rng
      ~links:
        [
          Topology.link ~name:"bottleneck" ~delay:(rtt /. 2.) ~buffer ~queue
            ~loss ~jitter ~src:0 ~dst:1 ~bandwidth ();
        ]
      ~rev_loss
      ~flows:[ Topology.flow ~route:[ 0; 1 ] spec ]
      ()
  in
  goodput_between engine (Topology.flows topo).(0) ~t0:warmup
    ~t1:(warmup +. duration)
