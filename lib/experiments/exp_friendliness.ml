open Pcc_sim
open Pcc_scenario

type row = {
  bandwidth : float;
  rtt : float;
  selfish : int;
  tcp_vs_pcc : float;
  tcp_vs_bundle : float;
  unfriendliness : float;
}

let configs =
  [
    (Units.mbps 10., 0.01);
    (Units.mbps 30., 0.02);
    (Units.mbps 30., 0.01);
    (Units.mbps 100., 0.01);
  ]

(* Throughput of one normal New Reno flow competing with [selfish_flows]. *)
let normal_tcp_throughput ~seed ~duration ~bandwidth ~rtt selfish_flows =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  (* At least ~50 packets of buffer: the small-link BDPs here are a
     handful of packets, and an 8-packet FIFO starves any bursty
     (ack-clocked) flow regardless of who it competes with. *)
  let buffer =
    max (Units.bdp_bytes ~rate:bandwidth ~rtt) (50 * Units.mss)
  in
  let path =
    Path.build engine ~rng ~bandwidth ~rtt ~buffer
      ~flows:(Path.flow ~label:"normal" (Transport.tcp "newreno") :: selfish_flows)
      ()
  in
  let warmup = duration /. 5. in
  Exp_common.goodput_between engine
    (Topology.flows (Path.topology path)).(0)
    ~t0:warmup
    ~t1:(warmup +. duration)

let tasks ?(scale = 1.) ?(seed = 42) ?(selfish_counts = [ 1; 2; 4; 8 ]) () =
  let duration = 100. *. scale in
  List.concat_map
    (fun (bandwidth, rtt) ->
      List.concat_map
        (fun n ->
          let label kind =
            Printf.sprintf "friendliness/%s/bw=%g/n=%d" kind (bandwidth /. 1e6)
              n
          in
          [
            Exp_common.task ~seed ~label:(label "vs-pcc") (fun () ->
                normal_tcp_throughput ~seed ~duration ~bandwidth ~rtt
                  (List.init n (fun _ -> Path.flow (Transport.pcc ()))));
            Exp_common.task ~seed ~label:(label "vs-bundle") (fun () ->
                normal_tcp_throughput ~seed ~duration ~bandwidth ~rtt
                  (List.init (n * 10) (fun _ ->
                       Path.flow (Transport.tcp "newreno"))));
          ])
        selfish_counts)
    configs

let collect ?(selfish_counts = [ 1; 2; 4; 8 ]) results =
  let cells =
    List.concat_map
      (fun (bandwidth, rtt) ->
        List.map (fun n -> (bandwidth, rtt, n)) selfish_counts)
      configs
  in
  let v = Exp_common.value_or_nan in
  List.map2
    (fun (bandwidth, rtt, n) -> function
      | [ vs_pcc; vs_bundle ] ->
        {
          bandwidth;
          rtt;
          selfish = n;
          tcp_vs_pcc = v vs_pcc;
          tcp_vs_bundle = v vs_bundle;
          (* >1: the normal flow does better against PCC than against
             the parallel-TCP bundle, i.e. PCC is friendlier. *)
          unfriendliness = Exp_common.ratio (v vs_pcc) (v vs_bundle);
        }
      | _ -> invalid_arg "Exp_friendliness.collect: 2 measurements per cell")
    cells
    (Exp_common.chunk 2 results)

let run ?pool ?policy ?scale ?seed ?selfish_counts () =
  collect ?selfish_counts
    (Exp_common.run_tasks_opt ?pool ?policy (tasks ?scale ?seed ?selfish_counts ()))

let table rows =
  Exp_common.
    {
      title =
        "Fig. 14 - friendliness to a normal TCP flow: 1 PCC vs a bundle of \
         10 parallel TCPs per selfish unit";
      header =
        [
          "link";
          "units";
          "TCP tput vs PCC";
          "vs 10xTCP bundle";
          "PCC-friendlier";
        ];
      rows =
        List.map
          (fun r ->
            [
              Printf.sprintf "%.0fMbps/%.0fms" (r.bandwidth /. 1e6)
                (r.rtt *. 1e3);
              string_of_int r.selfish;
              mbps r.tcp_vs_pcc;
              mbps r.tcp_vs_bundle;
              f2 r.unfriendliness;
            ])
          rows;
      note =
        Some
          "Last column >1 means the normal TCP flow keeps more throughput \
           against PCC than against the common parallel-TCP practice \
           (paper: PCC friendlier for most configurations, more so as \
           units increase).";
    }

let print ?pool ?scale ?seed () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ()))
