(* Centralized validation of pcc_sim's numeric CLI arguments.

   Every subcommand funnels its parameters through these checks before
   building a scenario, so a nonsensical value (zero duration, negative
   rate, --jobs 0) produces one clear `pcc_sim: error: ...` line and a
   nonzero exit instead of an Invalid_argument backtrace from deep
   inside the simulator. *)

let error fmt = Printf.ksprintf (fun m -> Error ("error: " ^ m)) fmt

type check = (unit, string) result

let positive_f name v : check =
  if Float.is_finite v && v > 0. then Ok ()
  else error "%s must be positive (got %g)" name v

let non_negative_f name v : check =
  if Float.is_finite v && v >= 0. then Ok ()
  else error "%s must be >= 0 (got %g)" name v

let probability name v : check =
  if Float.is_finite v && v >= 0. && v <= 1. then Ok ()
  else error "%s must be a probability in [0,1] (got %g)" name v

let positive_i name v : check =
  if v > 0 then Ok () else error "%s must be positive (got %d)" name v

let at_least name lo v : check =
  if v >= lo then Ok () else error "%s must be >= %d (got %d)" name lo v

let non_negative_i name v : check =
  if v >= 0 then Ok () else error "%s must be >= 0 (got %d)" name v

let opt check name = function None -> Ok () | Some v -> check name v

(* First failure wins; checks are listed in flag order so the message
   points at the first bad flag on the command line. *)
let all (checks : check list) : check =
  List.fold_left
    (fun acc c -> match acc with Error _ -> acc | Ok () -> c)
    (Ok ()) checks

(* Adapter for cmdliner's [Term.ret]: [guarded checks k] is [k ()] when
   every check passes, otherwise the error (no usage dump — the message
   already names the flag). *)
let guarded checks k =
  match all checks with Ok () -> k () | Error msg -> `Error (false, msg)
