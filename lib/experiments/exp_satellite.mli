(** Figure 6 — emulated satellite links (WINDS parameters).

    42 Mbps, 800 ms RTT, 0.74 % random loss; bottleneck buffer swept from
    1.5 KB to 1 MB. The paper's shape: PCC reaches ~90 % of capacity even
    with a few-packet buffer and is flat in buffer size; Hybla (the
    deployed satellite TCP) manages only a few Mbps even at 1 MB (17×
    below PCC); Illinois and CUBIC are worse still. *)

type row = {
  buffer : int;  (** bytes *)
  pcc : float;
  hybla : float;
  illinois : float;
  cubic : float;
  newreno : float;
}

val tasks :
  ?scale:float ->
  ?seed:int ->
  ?buffers:int list ->
  unit ->
  (int * float) Exp_common.task list

val collect : (int * float) option list -> row list

val run :
  ?pool:Runner.t ->
  ?policy:Supervisor.policy ->
  ?scale:float ->
  ?seed:int ->
  ?buffers:int list ->
  unit ->
  row list
(** Base duration 100 s per point. *)

val table : row list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit
