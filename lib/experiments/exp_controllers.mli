(** Controller family head-to-head: Allegro vs Vivace vs Proteus vs
    CUBIC on a shared workload menu, plus the scavenger-vs-primary
    sharing scenario that defines Proteus.

    The workload menu covers the registry's recurring axes at one
    setting each — clean link, 1% and 3% random loss, a shallow buffer,
    an 8-way incast and sharing with CUBIC — so one table answers
    "which controller should this flow use". The second table runs a
    long-lived background flow against a Proteus primary active only in
    the middle third of the run: a Proteus scavenger must collapse while
    the primary is present and reclaim the bandwidth afterwards, while a
    Vivace background flow keeps competing throughout. *)

type row = {
  workload : string;
  tputs : (string * float) list;  (** controller name -> goodput, bits/s *)
}

type phase_row = {
  prot : string;
  before_ : float;  (** Goodput before the primary arrives, bits/s. *)
  during : float;  (** While the primary holds the bottleneck. *)
  after : float;  (** After the primary departs. *)
}

val controllers : unit -> (string * Pcc_scenario.Transport.spec) list
(** The four columns: [allegro], [vivace], [proteus] (hybrid class) and
    [cubic], in table order. *)

val run :
  ?pool:Runner.t ->
  ?policy:Supervisor.policy ->
  ?scale:float ->
  ?seed:int ->
  unit ->
  row list * phase_row list
(** Head-to-head matrix (one row per workload) and the
    scavenger/primary phase table. Durations scale with [scale] but are
    floored so tiny scales still measure steady state. *)

val table : row list -> Exp_common.table
val phase_table : phase_row list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit
