(** Figures 4–5 — the large-scale commercial-Internet experiment.

    The paper ran 510 PlanetLab/GENI sender–receiver pairs, measuring each
    protocol solo (iperf TCP for 100 s, then PCC for 100 s). We draw
    random paths from {!Pcc_scenario.Internet_model} and do the same:
    every protocol faces the identical path (same seed, so the same loss
    pattern and cross-traffic). Reported like Fig. 5: the distribution of
    PCC's throughput-improvement ratio over each baseline. *)

type pair_result = {
  params : Pcc_scenario.Internet_model.params;
  pcc : float;
  cubic : float;
  sabul : float;
  pcp : float;
}

type summary = {
  baseline : string;
  median_ratio : float;
  p25 : float;
  p75 : float;
  p90 : float;
  frac_ge_10x : float;  (** Fraction of pairs with PCC ≥ 10× baseline. *)
}

val tasks :
  ?scale:float ->
  ?seed:int ->
  ?pairs:int ->
  unit ->
  (Pcc_scenario.Internet_model.params * float) Exp_common.task list
(** One simulation per (path, protocol). All paths are drawn up front
    from a sequential RNG, so the path set — and every per-pair run seed
    — is a pure function of [seed] and [pairs]. *)

val collect :
  (Pcc_scenario.Internet_model.params * float) option list -> pair_result list

val run :
  ?pool:Runner.t ->
  ?policy:Supervisor.policy ->
  ?scale:float ->
  ?seed:int ->
  ?pairs:int ->
  unit ->
  pair_result list
(** [pairs] defaults to 40; per-protocol run is 60 s · [scale]. *)

val summarize : pair_result list -> summary list
val table : pair_result list -> Exp_common.table
val print :
  ?pool:Runner.t -> ?scale:float -> ?seed:int -> ?pairs:int -> unit -> unit
