(** Figure 17 — power (throughput/delay) under FQ, with and without
    CoDel, for TCP versus PCC with the latency utility.

    Two long-running interactive flows share a 40 Mbps, 20 ms link
    behind per-flow fair queuing whose sub-queues are either deep FIFOs
    ("bufferbloat") or CoDel. Shapes: for TCP, CoDel is essential
    (~10× power gap against bufferbloat); for PCC with the latency
    utility the two AQMs are nearly identical — PCC keeps the queue
    empty on its own — and PCC's power beats TCP+CoDel. *)

type row = {
  combo : string;
  throughput : float;  (** mean per-flow goodput, bits/s *)
  rtt : float;  (** mean smoothed RTT, seconds *)
  power : float;  (** throughput / rtt *)
}

val tasks : ?scale:float -> ?seed:int -> unit -> row Exp_common.task list
(** One simulation per combination; each task yields its row. *)

val collect : row option list -> row list
(** Identity — each task already yields a finished row. *)

val run : ?pool:Runner.t -> ?policy:Supervisor.policy -> ?scale:float -> ?seed:int -> unit -> row list
(** Base duration 60 s · scale per combination. *)

val table : row list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit
