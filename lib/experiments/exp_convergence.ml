open Pcc_sim
open Pcc_scenario
open Pcc_metrics

type protocol_result = {
  protocol : string;
  jain : (float * float) list;
  mean_stddev : float;
  series : (float * float) array list;
}

let timescales = [ 1.; 5.; 15.; 30.; 60. ]

let measure ~seed ~stagger ~flows spec name =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let bandwidth = Units.mbps 100. and rtt = 0.03 in
  let path =
    Path.build engine ~rng ~bandwidth ~rtt
      ~buffer:(Units.bdp_bytes ~rate:bandwidth ~rtt)
      ~flows:
        (List.init flows (fun i ->
             Path.flow ~start_at:(float_of_int i *. stagger) spec))
      ()
  in
  let recorders =
    Array.map
      (fun f ->
        Recorder.create engine ~interval:1. (fun () ->
            float_of_int (Path.goodput_bytes f)))
      (Path.flows path)
  in
  (* All flows are active during [ (flows-1)·stagger, flows·stagger );
     skip the first 40% of that interval so the last joiner's convergence
     transient is not measured as unfairness. *)
  let t_all = float_of_int (flows - 1) *. stagger in
  let t_end = float_of_int flows *. stagger in
  Engine.run ~until:t_end engine;
  Array.iter Recorder.stop recorders;
  let w_start = t_all +. (0.4 *. stagger) in
  let window r =
    Array.of_list
      (Array.to_list (Recorder.rates_bps r)
      |> List.filter (fun (t, _) -> t >= w_start && t < t_end))
  in
  let windows = Array.to_list (Array.map window recorders) in
  let jain =
    List.map
      (fun ts -> (ts, Convergence.jain_over_timescale ~timescale:ts windows))
      timescales
  in
  let stds =
    List.map (fun s -> Stats.stddev (Array.map snd s)) windows
  in
  {
    protocol = name;
    jain;
    mean_stddev =
      List.fold_left ( +. ) 0. stds /. float_of_int (max 1 (List.length stds));
    series = windows;
  }

let specs () =
  [
    ("pcc", Transport.pcc ());
    ("cubic", Transport.tcp "cubic");
    ("newreno", Transport.tcp "newreno");
  ]

let tasks ?(scale = 1.) ?(seed = 42) ?(flows = 4) () =
  let stagger = Float.max 120. (500. *. scale) in
  List.map
    (fun (name, spec) ->
      Exp_common.task ~seed
        ~label:(Printf.sprintf "convergence/%s" name)
        (fun () -> measure ~seed ~stagger ~flows spec name))
    (specs ())

let collect results = Exp_common.present results

let run ?pool ?policy ?scale ?seed ?flows () =
  collect (Exp_common.run_tasks_opt ?pool ?policy (tasks ?scale ?seed ?flows ()))

let table results =
  let header =
    "protocol"
    :: List.map (fun ts -> Printf.sprintf "Jain@%.0fs" ts) timescales
    @ [ "rate stddev Mbps" ]
  in
  Exp_common.
    {
      title =
        "Fig. 12/13 - convergence of 4 staggered flows (100 Mbps dumbbell): \
         Jain index by time scale, per-flow rate stddev";
      header;
      rows =
        List.map
          (fun r ->
            r.protocol
            :: List.map (fun (_, j) -> Printf.sprintf "%.4f" j) r.jain
            @ [ f2 (r.mean_stddev /. 1e6) ])
          results;
      note =
        Some
          "Paper: PCC's Jain index beats CUBIC/New Reno at every time \
           scale; PCC rate variance is a fraction of CUBIC's.";
    }

let print ?pool ?scale ?seed () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ()))
