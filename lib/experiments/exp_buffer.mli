(** Figure 9 — shallow buffers on the bottleneck link.

    100 Mbps, 30 ms RTT, no random loss; buffer swept from one packet to
    one BDP. Shape: PCC needs only ~6 MSS of buffer to reach 90 % of
    capacity (and still moves data with a single-packet buffer); CUBIC
    needs over an order of magnitude more buffer for the same throughput;
    pacing alone does not save Reno. *)

type row = {
  buffer : int;  (** bytes *)
  pcc : float;
  cubic : float;
  paced_reno : float;
}

val tasks :
  ?scale:float ->
  ?seed:int ->
  ?buffers:int list ->
  unit ->
  (int * float) Exp_common.task list
(** One simulation per (buffer, protocol), yielding
    [(buffer, throughput)]. *)

val collect : (int * float) option list -> row list

val run :
  ?pool:Runner.t ->
  ?policy:Supervisor.policy ->
  ?scale:float ->
  ?seed:int ->
  ?buffers:int list ->
  unit ->
  row list
(** Base duration 100 s per point. *)

val table : row list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit
