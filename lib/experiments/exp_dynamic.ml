open Pcc_sim
open Pcc_scenario

type row = {
  protocol : string;
  throughput : float;
  optimal : float;
  fraction : float;
}

type series_point = { time : float; optimal : float; rate : float }

let measure ~seed ~duration spec =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let path =
    Path.build engine ~rng ~bandwidth:(Units.mbps 50.) ~rtt:0.05
      ~buffer:(Units.kib 256)
      ~flows:[ Path.flow spec ]
      ()
  in
  let dyn =
    Dynamics.start engine ~rng:(Rng.create (seed + 1))
      ~topo:(Path.topology path) ()
  in
  let flow = (Path.flows path).(0) in
  let series = ref [] in
  let sample = 5. in
  let steps = int_of_float (duration /. sample) in
  for i = 1 to steps do
    Engine.run ~until:(float_of_int i *. sample) engine;
    series :=
      {
        time = float_of_int i *. sample;
        optimal = Pcc_net.Link.bandwidth (Path.bottleneck path);
        rate = flow.Path.sender.Pcc_net.Sender.rate_estimate ();
      }
      :: !series
  done;
  Dynamics.stop dyn;
  let throughput =
    float_of_int (Path.goodput_bytes flow * 8) /. duration
  in
  let optimal = Dynamics.mean_optimal dyn ~until:duration in
  (throughput, optimal, List.rev !series)

let specs () =
  [
    ("pcc", Transport.pcc ());
    ("cubic", Transport.tcp "cubic");
    ("illinois", Transport.tcp "illinois");
  ]

let tasks ?(scale = 1.) ?(seed = 42) () =
  let duration = Float.max 50. (500. *. scale) in
  List.map
    (fun (name, spec) ->
      Exp_common.task ~seed
        ~label:(Printf.sprintf "dynamic/%s" name)
        (fun () ->
          let throughput, optimal, series = measure ~seed ~duration spec in
          ( {
              protocol = name;
              throughput;
              optimal;
              fraction = Exp_common.ratio throughput optimal;
            },
            (name, series) )))
    (specs ())

let collect results =
  let present = Exp_common.present results in
  (List.map fst present, List.map snd present)

let run ?pool ?policy ?scale ?seed () =
  collect (Exp_common.run_tasks_opt ?pool ?policy (tasks ?scale ?seed ()))

let table rows =
  Exp_common.
    {
      title =
        "Fig. 11 - rapidly changing network (bw 10-100 Mbps, RTT 10-100 ms, \
         loss 0-1% redrawn every 5 s)";
      header = [ "protocol"; "tput Mbps"; "optimal Mbps"; "fraction" ];
      rows =
        List.map
          (fun r ->
            [
              r.protocol;
              mbps r.throughput;
              mbps r.optimal;
              Printf.sprintf "%.0f%%" (r.fraction *. 100.);
            ])
          rows;
      note =
        Some
          "Paper: PCC 83% of optimal over 500 s; CUBIC 14x and Illinois \
           5.6x worse than PCC.";
    }

let print ?pool ?scale ?seed () =
  let rows, _ = run ?pool ?scale ?seed () in
  Exp_common.print_table (table rows)
