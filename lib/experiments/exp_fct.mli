(** Figure 15 — flow completion time for short flows.

    100 KB flows arrive as a Poisson process on a 15 Mbps, 60 ms link;
    the offered load is swept from 5 % to 75 %. Shape: PCC's median and
    95th-percentile FCT track TCP's (within tens of percent at high
    load) — the learning architecture does not fundamentally hurt short
    flows, because its startup doubles like slow start. *)

type row = {
  load : float;  (** offered load fraction *)
  protocol : string;
  median : float;  (** seconds *)
  mean : float;
  p95 : float;
  completed : int;
}

val tasks :
  ?scale:float ->
  ?seed:int ->
  ?loads:float list ->
  unit ->
  row Exp_common.task list
(** One simulation per (load, protocol); each task yields its row. *)

val collect : row option list -> row list
(** Identity — each task already yields a finished row. *)

val run :
  ?pool:Runner.t ->
  ?policy:Supervisor.policy ->
  ?scale:float ->
  ?seed:int ->
  ?loads:float list ->
  unit ->
  row list
(** Arrival horizon 120 s · scale per point. *)

val table : row list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit
