(** Centralized validation of CLI numeric arguments.

    Front-ends ([pcc_sim], the bench driver) funnel their parameters
    through these checks before building a scenario, so a nonsensical
    value (zero duration, negative rate, [--jobs 0]) produces one clear
    [error: ...] message and a nonzero exit instead of an
    [Invalid_argument] backtrace from deep inside the simulator.

    Each check takes the flag name (as it should appear in the message)
    and the value; errors are ["error: <flag> must ..."] so cmdliner's
    [`Error (false, msg)] renders as [pcc_sim: error: ...]. *)

type check = (unit, string) result

val positive_f : string -> float -> check
(** Finite and [> 0]. *)

val non_negative_f : string -> float -> check
(** Finite and [>= 0]. *)

val probability : string -> float -> check
(** Finite and in [\[0, 1\]]. *)

val positive_i : string -> int -> check
val at_least : string -> int -> int -> check
val non_negative_i : string -> int -> check

val opt : (string -> 'a -> check) -> string -> 'a option -> check
(** Lift a check over an optional argument; [None] passes. *)

val all : check list -> check
(** First failure wins; list checks in flag order so the message points
    at the first bad flag on the command line. *)

val guarded : check list -> (unit -> ([> `Error of bool * string ] as 'a)) -> 'a
(** Adapter for cmdliner's [Term.ret]: run the continuation when every
    check passes, otherwise [`Error (false, msg)] without a usage
    dump. *)
