(** Figure 14 — TCP friendliness versus the common selfish practice.

    One normal TCP (New Reno) flow shares a link with N "selfish units",
    where a unit is either one PCC flow or a bundle of 10 parallel TCP
    flows (what download accelerators do). The relative unfriendliness
    ratio is (normal TCP's throughput against TCP-selfish) divided by
    (against PCC): above 1 means PCC is the gentler neighbour. Shape:
    ratio ≥ 1 for most configurations, growing with N. *)

type row = {
  bandwidth : float;
  rtt : float;
  selfish : int;  (** number of selfish units *)
  tcp_vs_pcc : float;  (** normal TCP throughput vs N PCC flows *)
  tcp_vs_bundle : float;  (** vs N bundles of 10 parallel TCPs *)
  unfriendliness : float;  (** tcp_vs_pcc / tcp_vs_bundle... inverted:
      ratio > 1 means PCC friendlier (paper's "relative unfriendliness"). *)
}

val tasks :
  ?scale:float ->
  ?seed:int ->
  ?selfish_counts:int list ->
  unit ->
  float Exp_common.task list
(** Two simulations per (link, N) cell: the normal flow against N PCC
    flows, then against N bundles of 10 TCPs. *)

val collect : ?selfish_counts:int list -> float option list -> row list
(** Pairs up the per-cell measurements; pass the same [selfish_counts]
    given to {!tasks}. *)

val run :
  ?pool:Runner.t ->
  ?policy:Supervisor.policy ->
  ?scale:float ->
  ?seed:int ->
  ?selfish_counts:int list ->
  unit ->
  row list
(** Configurations: (10 Mbps, 10 ms), (30 Mbps, 20 ms), (30 Mbps, 10 ms),
    (100 Mbps, 10 ms); 100 s · scale each. *)

val table : row list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit
