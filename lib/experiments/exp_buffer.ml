open Pcc_sim
open Pcc_scenario

type row = { buffer : int; pcc : float; cubic : float; paced_reno : float }

let default_buffers =
  [ 1500; 4500; 9000; 18000; 45000; 90000; 187500; 375000 ]

let specs () =
  [
    ("pcc", Transport.pcc ());
    ("cubic", Transport.tcp "cubic");
    ("paced-reno", Transport.tcp_paced "newreno");
  ]

let tasks ?(scale = 1.) ?(seed = 42) ?(buffers = default_buffers) () =
  let bandwidth = Units.mbps 100. and rtt = 0.03 in
  let duration = 100. *. scale in
  List.concat_map
    (fun buffer ->
      List.map
        (fun (name, spec) ->
          Exp_common.task
            ~label:(Printf.sprintf "fig9/%s/buf=%d" name buffer)
            (fun () ->
              ( buffer,
                Exp_common.solo_throughput ~seed ~bandwidth ~rtt ~buffer
                  ~duration spec )))
        (specs ()))
    buffers

let collect results =
  List.map
    (function
      | [ (buffer, pcc); (_, cubic); (_, paced_reno) ] ->
        { buffer; pcc; cubic; paced_reno }
      | _ -> invalid_arg "Exp_buffer.collect: 3 measurements per buffer")
    (Exp_common.chunk (List.length (specs ())) results)

let run ?pool ?scale ?seed ?buffers () =
  collect (Exp_common.run_tasks ?pool (tasks ?scale ?seed ?buffers ()))

let table rows =
  Exp_common.
    {
      title = "Fig. 9 - shallow bottleneck buffers (100 Mbps, 30 ms; Mbps)";
      header = [ "buf KB"; "pkts"; "PCC"; "CUBIC"; "TCP+pacing" ];
      rows =
        List.map
          (fun r ->
            [
              f1 (float_of_int r.buffer /. 1000.);
              string_of_int (r.buffer / Units.mss);
              mbps r.pcc;
              mbps r.cubic;
              mbps r.paced_reno;
            ])
          rows;
      note =
        Some
          "Paper: PCC reaches 90% capacity with 6 MSS of buffer; CUBIC \
           needs 13x more; even paced TCP needs 25x more.";
    }

let print ?pool ?scale ?seed () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ()))
