open Pcc_sim
open Pcc_scenario

type row = { buffer : int; pcc : float; cubic : float; paced_reno : float }

let default_buffers =
  [ 1500; 4500; 9000; 18000; 45000; 90000; 187500; 375000 ]

let specs () =
  [
    ("pcc", Transport.pcc ());
    ("cubic", Transport.tcp "cubic");
    ("paced-reno", Transport.tcp_paced "newreno");
  ]

let tasks ?(scale = 1.) ?(seed = 42) ?(buffers = default_buffers) () =
  let bandwidth = Units.mbps 100. and rtt = 0.03 in
  let duration = 100. *. scale in
  List.concat_map
    (fun buffer ->
      List.map
        (fun (name, spec) ->
          Exp_common.task ~seed
            ~label:(Printf.sprintf "fig9/%s/buf=%d" name buffer)
            (fun () ->
              ( buffer,
                Exp_common.solo_throughput ~seed ~bandwidth ~rtt ~buffer
                  ~duration spec )))
        (specs ()))
    buffers

(* Partial inputs: a failed measurement leaves NaN in its cell; a buffer
   point where every protocol failed is dropped (its size is unknown). *)
let collect results =
  let v = function Some (_, x) -> x | None -> Float.nan in
  List.filter_map
    (function
      | [ p; c; pr ] as group -> (
        match Exp_common.present group with
        | [] -> None
        | (buffer, _) :: _ ->
          Some { buffer; pcc = v p; cubic = v c; paced_reno = v pr })
      | _ -> invalid_arg "Exp_buffer.collect: 3 measurements per buffer")
    (Exp_common.chunk (List.length (specs ())) results)

let run ?pool ?policy ?scale ?seed ?buffers () =
  collect (Exp_common.run_tasks_opt ?pool ?policy (tasks ?scale ?seed ?buffers ()))

let table rows =
  Exp_common.
    {
      title = "Fig. 9 - shallow bottleneck buffers (100 Mbps, 30 ms; Mbps)";
      header = [ "buf KB"; "pkts"; "PCC"; "CUBIC"; "TCP+pacing" ];
      rows =
        List.map
          (fun r ->
            [
              f1 (float_of_int r.buffer /. 1000.);
              string_of_int (r.buffer / Units.mss);
              mbps r.pcc;
              mbps r.cubic;
              mbps r.paced_reno;
            ])
          rows;
      note =
        Some
          "Paper: PCC reaches 90% capacity with 6 MSS of buffer; CUBIC \
           needs 13x more; even paced TCP needs 25x more.";
    }

let print ?pool ?scale ?seed () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ()))
