open Pcc_sim
open Pcc_scenario

type row = { senders : int; block : int; pcc : float; tcp : float }

let default_senders = [ 5; 10; 15; 20; 25; 30; 33 ]
let default_blocks = [ 65536; 131072; 262144 ]

(* One synchronized round: all senders start at t=0 with [block] bytes;
   goodput = total data / time of the last completion. *)
let round ~seed ~senders ~block spec =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let jitter_rng = Rng.create (seed + 3) in
  (* Sub-millisecond start jitter: the barrier is software, not a pulse
     generator, and perfectly synchronized identical senders would act in
     unrealistic lockstep. *)
  (* The incast star collapses onto the graph as a dumbbell: every sender
     shares the switch's 1 Gbps egress link. Specs mirror what Path.build
     would produce, so seeded results are identical with the pre-graph
     implementation. *)
  let rtt = 0.0001 in
  let topo =
    Topology.build engine ~rng
      ~links:
        [
          Topology.link ~name:"bottleneck" ~delay:(rtt /. 2.) ~buffer:65536
            ~src:0 ~dst:1 ~bandwidth:(Units.gbps 1.) ();
        ]
      ~flows:
        (List.init senders (fun _ ->
             Topology.flow
               ~start_at:(Rng.uniform jitter_rng 0. 0.0005)
               ~size:block ~route:[ 0; 1 ] spec))
      ()
  in
  (* Generous deadline; incomplete flows count as the full horizon. *)
  let horizon = 5.0 in
  Engine.run ~until:horizon engine;
  let worst =
    Array.fold_left
      (fun acc (f : Topology.built_flow) ->
        match f.Topology.fct with
        | Some fct -> Float.max acc fct
        | None -> horizon)
      0. (Topology.flows topo)
  in
  float_of_int (senders * block * 8) /. Float.max worst 1e-9

(* A task's result carries its cell key so [collect] can re-aggregate the
   per-round measurements regardless of how many rounds [scale] chose. *)
type sample = { s_block : int; s_senders : int; s_proto : string; v : float }

let specs () =
  [ ("pcc", Transport.pcc ()); ("tcp", Transport.tcp "newreno") ]

let tasks ?(scale = 1.) ?(seed = 42) ?(senders = default_senders)
    ?(blocks = default_blocks) () =
  let rounds = max 2 (int_of_float (15. *. scale)) in
  List.concat_map
    (fun block ->
      List.concat_map
        (fun n ->
          List.concat_map
            (fun (proto, spec) ->
              List.init rounds (fun i ->
                  let round_seed = seed + (i * 7919) in
                  Exp_common.task ~seed:round_seed
                    ~label:
                      (Printf.sprintf "incast/%s/block=%d/n=%d/round=%d" proto
                         block n i)
                    (fun () ->
                      {
                        s_block = block;
                        s_senders = n;
                        s_proto = proto;
                        v = round ~seed:round_seed ~senders:n ~block spec;
                      })))
            (specs ()))
        senders)
    blocks

let collect samples =
  let mean = function
    | [] -> nan
    | vs -> List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs)
  in
  Exp_common.group_by (fun s -> (s.s_block, s.s_senders)) (Exp_common.present samples)
  |> List.map (fun ((block, n), cell) ->
         let of_proto p =
           mean (List.filter_map (fun s -> if s.s_proto = p then Some s.v else None) cell)
         in
         { senders = n; block; pcc = of_proto "pcc"; tcp = of_proto "tcp" })

let run ?pool ?policy ?scale ?seed ?senders ?blocks () =
  collect
    (Exp_common.run_tasks_opt ?pool ?policy
       (tasks ?scale ?seed ?senders ?blocks ()))

let table rows =
  Exp_common.
    {
      title =
        "Fig. 10 - incast goodput (1 Gbps, 100 us RTT, 64 KB switch buffer; \
         Mbps)";
      header = [ "block KB"; "senders"; "PCC"; "TCP"; "PCC/TCP" ];
      rows =
        List.map
          (fun r ->
            [
              string_of_int (r.block / 1024);
              string_of_int r.senders;
              mbps r.pcc;
              mbps r.tcp;
              f1 (ratio r.pcc r.tcp);
            ])
          rows;
      note =
        Some
          "Paper: with >=10 senders PCC holds 60-80% of line rate, 7-8x \
           TCP, and stays flat as senders increase.";
    }

let print ?pool ?scale ?seed () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ()))
