(** Figure 16 — the stability/reactiveness trade-off.

    Flow A owns a 100 Mbps, 30 ms link; flow B joins 20 s later. B's
    convergence time is the paper's forward-looking definition (first
    second from which 5 s of throughput stays within ±25 % of the fair
    share) and stability is B's throughput stddev over the following
    60 s. PCC traces a frontier by sweeping the monitor-interval length
    Tm and the step ε, with and without RCT; the TCP variants appear as
    fixed points. Shape: the PCC frontier dominates every TCP point, and
    RCT buys lower variance at nearly unchanged convergence time. *)

type point = {
  label : string;
  convergence_time : float option;  (** seconds from B's start; averaged *)
  stddev : float;  (** bits/s *)
}

type sample = {
  s_label : string;
  s_ct : float option;
  s_sd : float;
}
(** One trial's measurement, tagged with its configuration label so
    {!collect} can average trials without knowing how many ran. *)

val tasks :
  ?scale:float -> ?seed:int -> ?trials:int -> unit -> sample Exp_common.task list
(** One simulation per (configuration, trial). Trial seeds are a pure
    function of [seed] and the trial index. *)

val collect : sample option list -> point list
(** Averages trials per configuration, preserving configuration order. *)

val run :
  ?pool:Runner.t ->
  ?policy:Supervisor.policy ->
  ?scale:float ->
  ?seed:int ->
  ?trials:int ->
  unit ->
  point list
(** [trials] (default max 2 (15·scale)) runs are averaged per point. *)

val table : point list -> Exp_common.table
val print : ?pool:Runner.t -> ?scale:float -> ?seed:int -> unit -> unit
