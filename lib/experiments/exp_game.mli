(** Theorems 1 and 2 — the §2.2 game, checked numerically.

    Runs the synchronous best-direction dynamics from asymmetric initial
    rates for several sender counts and verifies: convergence, fairness
    of the final state (Jain index ≈ 1), total traffic inside Theorem 1's
    (C, 20C/19) band, and agreement with the independently bisected
    symmetric equilibrium. Also contrasts the equilibrium loss rate of
    the [safe] utility with the naive [T − x·L] utility — the motivation
    for the sigmoid cut-off. *)

type row = {
  n : int;
  steps : int;  (** First step from which all senders stay inside
      Theorem 2's band (x̂(1−ε)², x̂(1+ε)²) (with 5% slack). *)
  jain : float;
  total_over_c : float;  (** Σx / C at the final state *)
  predicted_rate : float;  (** bisected symmetric equilibrium x̂ *)
  mean_rate : float;  (** mean of the dynamics' final state *)
  loss_safe : float;  (** equilibrium loss rate, safe utility *)
  loss_naive : float;  (** equilibrium loss rate, T − x·L utility *)
}

val tasks : ?seed:int -> ?ns:int list -> unit -> row Exp_common.task list
(** One dynamics run per sender count. Initial rates for every n are
    drawn up front from a sequential RNG, so they are a pure function of
    [seed] and [ns]. *)

val collect : row option list -> row list
(** Identity — each task already yields a finished row. *)

val run : ?pool:Runner.t -> ?policy:Supervisor.policy -> ?seed:int -> ?ns:int list -> unit -> row list
val table : row list -> Exp_common.table
val print : ?pool:Runner.t -> ?seed:int -> unit -> unit
