open Pcc_sim
open Pcc_scenario
open Pcc_core

type row = { label : string; loss : float; throughput : float }

let pcc_conservative b =
  Transport.pcc
    ~config:
      (Pcc_sender.config_with ~utility:(Utility.safe ~conservative:b ()) ())
    ()

let pcc_min_pkts n =
  let c = Pcc_sender.default_config in
  Transport.pcc
    ~config:
      { c with Pcc_sender.monitor = { c.Pcc_sender.monitor with Monitor.min_pkts = n } }
    ()

let variants () =
  [
    ("safe utility, LCB loss (default)", pcc_conservative true);
    ("safe utility, raw loss (paper literal)", pcc_conservative false);
    ("MI >= 10 pkts (default)", pcc_min_pkts 10);
    ("MI >= 40 pkts", pcc_min_pkts 40);
  ]

let tasks ?(scale = 1.) ?(seed = 42) () =
  let bandwidth = Units.mbps 100. and rtt = 0.03 in
  let buffer = Units.bdp_bytes ~rate:bandwidth ~rtt in
  let duration = 60. *. scale in
  List.concat_map
    (fun loss ->
      List.map
        (fun (label, spec) ->
          Exp_common.task ~seed
            ~label:(Printf.sprintf "ablation/%s/loss=%g" label loss)
            (fun () ->
              {
                label;
                loss;
                throughput =
                  Exp_common.solo_throughput ~seed ~bandwidth ~rtt ~buffer
                    ~duration ~loss spec;
              }))
        (variants ()))
    [ 0.0; 0.01 ]

let collect results = Exp_common.present results

let run ?pool ?policy ?scale ?seed () =
  collect (Exp_common.run_tasks_opt ?pool ?policy (tasks ?scale ?seed ()))

let table rows =
  Exp_common.
    {
      title = "Ablation - noise handling on a lossy link (100 Mbps, 30 ms)";
      header = [ "variant"; "loss%"; "tput Mbps" ];
      rows =
        List.map
          (fun r ->
            [ r.label; f1 (r.loss *. 100.); mbps r.throughput ])
          rows;
      note =
        Some
          "The confidence-bound variant climbs through random loss that \
           stalls the literal formula (one drop in a 10-packet MI reads \
           as 10% loss); larger MIs help the literal formula at the cost \
           of decision latency.";
    }

let print ?pool ?scale ?seed () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ()))
