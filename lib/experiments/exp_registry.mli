(** The catalogue of paper-reproduction experiments.

    Each entry renders its tables to a string — the same string whether
    the underlying simulations ran sequentially or fanned out over a
    {!Runner} pool, which is what lets callers assert byte-identical
    output across [--jobs] settings. Entries whose figures have
    plottable time series ([fig11], [fig12]) also write CSVs when
    [dump_dir] is given, appending a note line per file to the rendered
    output. *)

type entry = {
  name : string;  (** Short key, e.g. ["fig7"], used by [--only]. *)
  descr : string;
  parallel : bool;
      (** Whether a {!Runner} pool pays for itself on this experiment.
          [false] marks sweeps whose total work is too small to amortize
          the domain fan-out (spawn cost plus multi-domain minor-GC
          coordination) — the bench harness runs those sequentially even
          under [--jobs N] instead of reporting a meaningless slowdown.
          Output is unaffected either way: the registry's determinism
          contract already makes pooled and sequential runs
          byte-identical. *)
  render :
    ?pool:Runner.t ->
    ?policy:Supervisor.policy ->
    ?dump_dir:string ->
    scale:float ->
    seed:int ->
    unit ->
    string;
      (** Runs the experiment and returns the rendered tables. The
          result is a pure function of [scale] and [seed] (plus
          [dump_dir] note lines) — never of the pool's job count or
          scheduling. With a [policy], simulations run under
          {!Supervisor.run}: failed measurements render as ["n/a"] (or
          drop their row) and the failures land in the supervisor's
          process-wide tally instead of raising. *)
}

val all : entry list
(** In the paper's presentation order. *)

val find : string -> entry option
val names : unit -> string list
