(* Supervised execution of experiment task sweeps.

   The Runner pool (runner.ml) is the fast path: it assumes every task
   returns. This layer assumes tasks misbehave — hang, crash, livelock —
   and guarantees the sweep still terminates with per-task outcomes:

   - in-band limits: each attempt runs under a Pcc_sim.Task_guard, so a
     wall-clock deadline or event ceiling raises *inside* the task and
     the worker survives;
   - out-of-band watchdog: the coordinating domain polls per-slot
     heartbeats; a task that never reaches the engine's dispatch loop
     (stuck in non-engine code) is abandoned — its outcome is recorded
     as timed out, its domain is leaked until process exit, and a
     replacement worker is spawned so the sweep keeps its parallelism;
   - retries: failures the policy classifies transient are re-queued
     with bounded exponential backoff; tasks that exhaust their retries
     are quarantined;
   - forensics: every final failure can write a bundle (exception,
     backtrace, seed, repro command, and the failing domain's trace
     ring when one is recording) for offline reproduction.

   Determinism: results land in slots indexed by task position, and
   retries re-run the same pure thunk, so a sweep whose tasks all
   succeed is byte-identical to Runner execution at any job count.
   Timeouts are wall-clock and therefore inherently nondeterministic —
   they only occur on runs that would otherwise hang or be killed. *)

type 'a task = {
  label : string;
  seed : int option;
  repro : string option;
  run : unit -> 'a;
}

type failure = { attempt : int; exn_text : string; backtrace : string }

type status =
  | Completed of { retries : int }
  | Timed_out of { attempts : int }
  | Crashed of failure
  | Quarantined of { attempts : int; last : failure }

type outcome = {
  index : int;
  label : string;
  seed : int option;
  repro : string option;
  status : status;
  degraded : int;
      (* shard-ladder degradation steps the successful attempt consumed *)
  failures : failure list;  (* newest first *)
  forensics : string option;  (* bundle directory, when one was written *)
}

type report = {
  total : int;
  outcomes : outcome array;
  ok : int;
  retried : int;
  timed_out : int;
  crashed : int;
  quarantined : int;
  degraded : int;  (* completed tasks that needed the degradation ladder *)
}

type policy = {
  jobs : int;
  deadline : float option;
  max_events : int option;
  retries : int;
  backoff : float;
  backoff_cap : float;
  grace : float;
  poll : float;
  transient : exn -> bool;
  forensics_dir : string option;
  forensic_trace : bool;
  repro_context : string option;
}

let default_policy =
  {
    jobs = 1;
    deadline = None;
    max_events = None;
    retries = 0;
    backoff = 0.1;
    backoff_cap = 2.0;
    grace = 1.0;
    poll = 0.05;
    transient = (fun _ -> false);
    forensics_dir = None;
    forensic_trace = false;
    repro_context = None;
  }

let clock = Unix.gettimeofday

let status_name = function
  | Completed { retries = 0 } -> "ok"
  | Completed { retries } -> Printf.sprintf "retried %d" retries
  | Timed_out _ -> "timed_out"
  | Crashed _ -> "crashed"
  | Quarantined _ -> "quarantined"

let is_failure = function
  | Completed _ -> false
  | Timed_out _ | Crashed _ | Quarantined _ -> true

(* ---- forensics (shared helpers live in Forensics) ------------------ *)

let mkdir_p = Forensics.mkdir_p
let sanitize = Forensics.sanitize

(* Writes <root>/<NNN-label>/{report.txt,trace.*}. Returns the bundle
   directory, or None when no root is configured or the write failed
   (forensics must never take the sweep down with them). *)
let write_bundle policy ~index ~(task : _ task) ~status ~failures ~collector =
  match policy.forensics_dir with
  | None -> None
  | Some root -> (
    try
      let id =
        Printf.sprintf "%03d-%s" index
          (sanitize (if task.label = "" then "task" else task.label))
      in
      let dir = Filename.concat root id in
      mkdir_p dir;
      let oc = open_out (Filename.concat dir "report.txt") in
      let p fmt = Printf.fprintf oc fmt in
      p "task: %s\n" (if task.label = "" then "(unlabelled)" else task.label);
      p "index: %d\n" index;
      p "status: %s\n" (status_name status);
      (match task.seed with
      | Some s -> p "seed: %d\n" s
      | None -> p "seed: (not recorded)\n");
      (match (task.repro, policy.repro_context) with
      | Some r, _ -> p "repro: %s\n" r
      | None, Some ctx -> p "repro: %s   # task %s\n" ctx task.label
      | None, None -> p "repro: (not recorded)\n");
      List.iter
        (fun f ->
          p "attempt %d: %s\n" f.attempt f.exn_text;
          if f.backtrace <> "" then
            String.split_on_char '\n' f.backtrace
            |> List.iter (fun l -> if l <> "" then p "    %s\n" l))
        (List.rev failures);
      close_out oc;
      (match collector with
      | Some c -> Forensics.write_trace ~dir c
      | None -> ());
      Some dir
    with Sys_error _ -> None)

(* ---- the process-wide failure tally -------------------------------- *)

(* CLI front-ends render experiments through Exp_registry and only get a
   string back; failing outcomes are also recorded here so `pcc_sim exp`
   and friends can exit nonzero with a summary without threading reports
   through every render signature. *)
let tally_m = Mutex.create ()
let tally : outcome list ref = ref []  (* newest first *)

let record_failures (report : report) =
  Mutex.lock tally_m;
  Array.iter
    (fun o -> if is_failure o.status then tally := o :: !tally)
    report.outcomes;
  Mutex.unlock tally_m

let failures () =
  Mutex.lock tally_m;
  let l = List.rev !tally in
  Mutex.unlock tally_m;
  l

let reset_failures () =
  Mutex.lock tally_m;
  tally := [];
  Mutex.unlock tally_m

(* ---- one attempt --------------------------------------------------- *)

(* Runs one attempt under a Task_guard (and, when configured, a private
   trace ring so a failure has its own recent history to dump). Returns
   the result and, on failure, the collector that was recording in this
   domain — either the private forensic ring or whatever the caller had
   installed (e.g. a traced jobs=1 run). *)
let attempt_run policy (task : _ task) ~heartbeat =
  (* Forensics bundles are only as good as their backtraces; recording is
     domain-local in OCaml 5, so arm it here in the running domain. *)
  if not (Printexc.backtrace_status ()) then Printexc.record_backtrace true;
  let prev =
    if policy.forensic_trace then Pcc_trace.Collector.current () else None
  in
  if policy.forensic_trace then
    Pcc_trace.Collector.install
      (Pcc_trace.Collector.create ~capacity:16384 ());
  Pcc_sim.Task_guard.install ?deadline:policy.deadline
    ?max_events:policy.max_events ~heartbeat ~clock ();
  (* Drain any leftover ladder steps from this domain so the task is
     only accounted for its own degradations. *)
  ignore (Pcc_sim.Degrade.take_tally ());
  let result =
    try Ok (task.run ())
    with exn -> Error (exn, Printexc.get_raw_backtrace ())
  in
  let degraded = Pcc_sim.Degrade.take_tally () in
  Pcc_sim.Task_guard.uninstall ();
  let failing_collector =
    match result with
    | Ok _ -> None
    | Error _ -> Pcc_trace.Collector.current ()
  in
  if policy.forensic_trace then begin
    Pcc_trace.Collector.uninstall ();
    match prev with
    | Some c -> Pcc_trace.Collector.install c
    | None -> ()
  end;
  (result, failing_collector, degraded)

let rec is_timeout_exn exn =
  Pcc_sim.Task_guard.is_guard_exn exn
  ||
  match exn with
  | Pcc_sim.Engine.Event_error { exn; _ } ->
    Pcc_sim.Task_guard.is_guard_exn exn
  | Pcc_sim.Shard.Lane_failure { origin; _ } ->
    (* A lane guard tripping inside a sharded window is still this
       task's deadline/ceiling: classify as timeout, not crash. *)
    is_timeout_exn origin
  | _ -> false

(* ---- scheduler state ----------------------------------------------- *)

type slot = {
  mutable s_epoch : int;  (* bumped when the watchdog abandons the slot *)
  mutable s_task : int;  (* running task index, -1 when idle *)
  mutable s_attempt : int;
  mutable s_started : float;
  s_beat : float Atomic.t;  (* stamped by the task's guard *)
}

type 'a sched = {
  policy : policy;
  tasks : 'a task array;
  n : int;
  m : Mutex.t;
  cv : Condition.t;
  mutable fresh : int;  (* next never-attempted task *)
  mutable retry_q : (float * int * int) list;
      (* (ready_at, index, attempt), sorted by ready_at *)
  mutable inflight : int;
  mutable completed : int;  (* tasks with a final outcome *)
  mutable live_workers : int;
  results : 'a option array;
  outcomes : outcome option array;
  failures : failure list array;  (* per task, newest first *)
  slots : slot array;
}

let push_retry s ~ready_at ~index ~attempt =
  let rec insert = function
    | [] -> [ (ready_at, index, attempt) ]
    | (r, _, _) :: _ as rest when ready_at < r ->
      (ready_at, index, attempt) :: rest
    | e :: rest -> e :: insert rest
  in
  s.retry_q <- insert s.retry_q

(* Caller holds the lock. Records the final outcome for task [i] and
   writes its forensics bundle. Bundle IO happens under the lock: it
   only runs on failure paths, where contention is the least concern. *)
let finalize s i ?(degraded = 0) status collector =
  let task = s.tasks.(i) in
  let forensics =
    if is_failure status then
      write_bundle s.policy ~index:i ~task ~status ~failures:s.failures.(i)
        ~collector
    else None
  in
  s.outcomes.(i) <-
    Some
      {
        index = i;
        label = task.label;
        seed = task.seed;
        repro = task.repro;
        status;
        degraded;
        failures = s.failures.(i);
        forensics;
      };
  s.completed <- s.completed + 1;
  Condition.broadcast s.cv

(* Caller holds the lock. Settles one finished attempt: success, retry,
   or final failure. *)
let settle s ~index:i ~attempt ~degraded result collector =
  match result with
  | Ok v ->
    s.results.(i) <- Some v;
    finalize s i ~degraded (Completed { retries = attempt - 1 }) None
  | Error (exn, bt) ->
    let f =
      {
        attempt;
        exn_text = Printexc.to_string exn;
        backtrace = Printexc.raw_backtrace_to_string bt;
      }
    in
    s.failures.(i) <- f :: s.failures.(i);
    if is_timeout_exn exn then
      finalize s i (Timed_out { attempts = attempt }) collector
    else if s.policy.transient exn then
      if attempt <= s.policy.retries then begin
        let backoff =
          Float.min s.policy.backoff_cap
            (s.policy.backoff *. Float.pow 2. (float_of_int (attempt - 1)))
        in
        push_retry s ~ready_at:(clock () +. backoff) ~index:i
          ~attempt:(attempt + 1);
        Condition.broadcast s.cv
      end
      else finalize s i (Quarantined { attempts = attempt; last = f }) collector
    else finalize s i (Crashed f) collector

(* ---- worker -------------------------------------------------------- *)

type work = Run of int * int | Wait_until of float | Wait | Done

let take_work s =
  if s.completed >= s.n then Done
  else begin
    let now = clock () in
    match s.retry_q with
    | (ready, i, attempt) :: rest when ready <= now ->
      s.retry_q <- rest;
      Run (i, attempt)
    | _ ->
      if s.fresh < s.n then begin
        let i = s.fresh in
        s.fresh <- s.fresh + 1;
        Run (i, 1)
      end
      else begin
        match s.retry_q with
        | (ready, _, _) :: _ -> Wait_until ready
        | [] -> Wait
      end
  end

(* The worker bound to [slot] while [slot.s_epoch = epoch]. Holds the
   lock except while running a task or sleeping out a backoff. *)
let worker s slot epoch =
  Mutex.lock s.m;
  let rec loop () =
    match take_work s with
    | Done -> Mutex.unlock s.m
    | Wait ->
      Condition.wait s.cv s.m;
      loop ()
    | Wait_until ready ->
      Mutex.unlock s.m;
      Unix.sleepf (Float.min 0.05 (Float.max 0.001 (ready -. clock ())));
      Mutex.lock s.m;
      loop ()
    | Run (i, attempt) ->
      slot.s_task <- i;
      slot.s_attempt <- attempt;
      slot.s_started <- clock ();
      Atomic.set slot.s_beat slot.s_started;
      s.inflight <- s.inflight + 1;
      Mutex.unlock s.m;
      let result, collector, degraded =
        attempt_run s.policy s.tasks.(i) ~heartbeat:slot.s_beat
      in
      Mutex.lock s.m;
      if slot.s_epoch <> epoch then
        (* The watchdog abandoned us mid-task: our outcome was already
           recorded as timed out and a replacement owns the slot. This
           domain must touch nothing and die. *)
        Mutex.unlock s.m
      else begin
        slot.s_task <- -1;
        s.inflight <- s.inflight - 1;
        settle s ~index:i ~attempt ~degraded result collector;
        loop ()
      end
  in
  loop ()

(* ---- watchdog / coordinator ---------------------------------------- *)

(* Caller holds the lock. Abandons the task in [slot]: final timed-out
   outcome, epoch bump so the hung worker's eventual return is
   discarded, and a replacement worker so the pool keeps its width. *)
let abandon s w slot =
  let i = slot.s_task in
  let stale = clock () -. Float.max slot.s_started (Atomic.get slot.s_beat) in
  slot.s_epoch <- slot.s_epoch + 1;
  slot.s_task <- -1;
  s.inflight <- s.inflight - 1;
  s.failures.(i) <-
    {
      attempt = slot.s_attempt;
      exn_text =
        Printf.sprintf
          "watchdog: no heartbeat for %.1fs (task stuck outside the engine); \
           worker domain abandoned"
          stale;
      backtrace = "";
    }
    :: s.failures.(i);
  finalize s i (Timed_out { attempts = slot.s_attempt }) None;
  let epoch = slot.s_epoch in
  match Domain.spawn (fun () -> worker s slot epoch) with
  | d -> Some (w, epoch, d)
  | exception _ ->
    (* Could not replace the worker (domain limit): the pool narrows. *)
    s.live_workers <- s.live_workers - 1;
    None

let run_pooled policy tasks n =
  let s =
    {
      policy;
      tasks;
      n;
      m = Mutex.create ();
      cv = Condition.create ();
      fresh = 0;
      retry_q = [];
      inflight = 0;
      completed = 0;
      live_workers = policy.jobs;
      results = Array.make n None;
      outcomes = Array.make n None;
      failures = Array.make n [];
      slots =
        Array.init policy.jobs (fun _ ->
            {
              s_epoch = 0;
              s_task = -1;
              s_attempt = 0;
              s_started = 0.;
              s_beat = Atomic.make 0.;
            });
    }
  in
  let handles = ref [] in
  Array.iteri
    (fun w slot -> handles := (w, 0, Domain.spawn (fun () -> worker s slot 0)) :: !handles)
    s.slots;
  let hard_deadline =
    match policy.deadline with
    | Some d -> Some (d +. policy.grace)
    | None -> None
  in
  Mutex.lock s.m;
  let rec supervise () =
    if s.completed < s.n then begin
      match hard_deadline with
      | None ->
        (* Nothing to watchdog: just wait for completions. *)
        Condition.wait s.cv s.m;
        supervise ()
      | Some hd ->
        Mutex.unlock s.m;
        Unix.sleepf policy.poll;
        Mutex.lock s.m;
        let now = clock () in
        Array.iteri
          (fun w slot ->
            if slot.s_task >= 0 then begin
              let last =
                Float.max slot.s_started (Atomic.get slot.s_beat)
              in
              if now -. last > hd then
                match abandon s w slot with
                | Some h -> handles := h :: !handles
                | None -> ()
            end)
          s.slots;
        if s.live_workers = 0 then begin
          (* Every worker hung and could not be replaced: fail the rest
             of the sweep rather than spin forever. *)
          for i = 0 to s.n - 1 do
            if s.outcomes.(i) = None && not (Array.exists (fun sl -> sl.s_task = i) s.slots)
            then begin
              s.failures.(i) <-
                {
                  attempt = 0;
                  exn_text = "supervisor: no worker domains left";
                  backtrace = "";
                }
                :: s.failures.(i);
              finalize s i
                (Crashed (List.hd s.failures.(i)))
                None
            end
          done
        end;
        supervise ()
    end
  in
  supervise ();
  Mutex.unlock s.m;
  (* Join the workers that still own their slot; abandoned domains are
     leaked by design (they are wedged) and die with the process. *)
  List.iter
    (fun (w, epoch, d) ->
      if s.slots.(w).s_epoch = epoch then Domain.join d)
    !handles;
  s

let run_inline policy tasks n =
  let s =
    {
      policy;
      tasks;
      n;
      m = Mutex.create ();
      cv = Condition.create ();
      fresh = 0;
      retry_q = [];
      inflight = 0;
      completed = 0;
      live_workers = 1;
      results = Array.make n None;
      outcomes = Array.make n None;
      failures = Array.make n [];
      slots =
        [|
          {
            s_epoch = 0;
            s_task = -1;
            s_attempt = 0;
            s_started = 0.;
            s_beat = Atomic.make 0.;
          };
        |];
    }
  in
  (* The caller is the only worker: in-band guard limits apply, the
     out-of-band watchdog does not (there is no domain to abandon the
     caller from). *)
  worker s s.slots.(0) 0;
  s

(* ---- entry point --------------------------------------------------- *)

let report_of s =
  let outcomes =
    Array.mapi
      (fun i o ->
        match o with
        | Some o -> o
        | None ->
          (* Unreachable: every task gets a final outcome before the
             scheduler returns. *)
          {
            index = i;
            label = s.tasks.(i).label;
            seed = s.tasks.(i).seed;
            repro = s.tasks.(i).repro;
            status =
              Crashed
                { attempt = 0; exn_text = "missing outcome"; backtrace = "" };
            degraded = 0;
            failures = [];
            forensics = None;
          })
      s.outcomes
  in
  let count f = Array.fold_left (fun a o -> if f o.status then a + 1 else a) 0 outcomes in
  {
    total = s.n;
    outcomes;
    ok = count (function Completed { retries = 0 } -> true | _ -> false);
    retried = count (function Completed { retries } -> retries > 0 | _ -> false);
    timed_out = count (function Timed_out _ -> true | _ -> false);
    crashed = count (function Crashed _ -> true | _ -> false);
    quarantined = count (function Quarantined _ -> true | _ -> false);
    degraded =
      Array.fold_left
        (fun a (o : outcome) ->
          if o.degraded > 0 && not (is_failure o.status) then a + 1 else a)
        0 outcomes;
  }

let failed (r : report) = r.timed_out + r.crashed + r.quarantined > 0

let summary_line (r : report) =
  let failing =
    Array.to_list r.outcomes
    |> List.filter (fun o -> is_failure o.status)
    |> List.map (fun o ->
           Printf.sprintf "%s (%s)"
             (if o.label = "" then string_of_int o.index else o.label)
             (status_name o.status))
  in
  let base =
    Printf.sprintf "%d/%d task(s) ok%s%s" (r.ok + r.retried) r.total
      (if r.retried > 0 then Printf.sprintf " (%d after retries)" r.retried
       else "")
      (if r.degraded > 0 then
         Printf.sprintf " (%d on a degraded shard ladder)" r.degraded
       else "")
  in
  if failing = [] then base
  else
    Printf.sprintf "%s; %d timed out, %d crashed, %d quarantined: %s" base
      r.timed_out r.crashed r.quarantined
      (String.concat ", " failing)

let pp_report fmt (r : report) =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun o ->
      Format.fprintf fmt "%3d %-40s %s%s@,"
        o.index
        (if o.label = "" then "(unlabelled)" else o.label)
        (status_name o.status)
        (if o.degraded > 0 then
           Printf.sprintf " (degraded x%d)" o.degraded
         else ""))
    r.outcomes;
  Format.fprintf fmt "@]"

let run ?(policy = default_policy) tasks_list =
  if policy.jobs < 1 then invalid_arg "Supervisor.run: jobs must be >= 1";
  if policy.retries < 0 then invalid_arg "Supervisor.run: retries must be >= 0";
  if policy.backoff < 0. || policy.backoff_cap < 0. then
    invalid_arg "Supervisor.run: backoff must be >= 0";
  if policy.poll <= 0. then invalid_arg "Supervisor.run: poll must be positive";
  if policy.grace < 0. then invalid_arg "Supervisor.run: grace must be >= 0";
  let tasks = Array.of_list tasks_list in
  let n = Array.length tasks in
  if n = 0 then
    ( [],
      {
        total = 0;
        outcomes = [||];
        ok = 0;
        retried = 0;
        timed_out = 0;
        crashed = 0;
        quarantined = 0;
        degraded = 0;
      } )
  else begin
    let s =
      if policy.jobs = 1 then run_inline policy tasks n
      else run_pooled policy tasks n
    in
    let report = report_of s in
    record_failures report;
    (Array.to_list s.results, report)
  end
