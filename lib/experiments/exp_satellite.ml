open Pcc_sim
open Pcc_scenario

type row = {
  buffer : int;
  pcc : float;
  hybla : float;
  illinois : float;
  cubic : float;
  newreno : float;
}

let default_buffers =
  [ 1500; 7500; 15000; 30000; 75000; 150000; 375000; 1000000 ]

let specs () =
  [
    ("pcc", Transport.pcc ());
    ("hybla", Transport.tcp "hybla");
    ("illinois", Transport.tcp "illinois");
    ("cubic", Transport.tcp "cubic");
    ("newreno", Transport.tcp "newreno");
  ]

let tasks ?(scale = 1.) ?(seed = 42) ?(buffers = default_buffers) () =
  let bandwidth = Units.mbps 42. and rtt = 0.8 and loss = 0.0074 in
  let duration = 100. *. scale in
  (* PCC's paper-faithful 2*MSS/RTT start is 30 kbps here and the climb
     through monitor intervals of ~1.4 s takes tens of seconds, so steady
     state needs a long warmup (the paper reports 100 s averages where the
     ramp is a modest fraction). *)
  List.concat_map
    (fun buffer ->
      List.map
        (fun (name, spec) ->
          Exp_common.task ~seed
            ~label:(Printf.sprintf "fig6/%s/buf=%d" name buffer)
            (fun () ->
              ( buffer,
                Exp_common.solo_throughput ~seed ~warmup:(60. *. rtt)
                  ~bandwidth ~rtt ~buffer ~duration ~loss spec )))
        (specs ()))
    buffers

let collect results =
  let v = function Some (_, x) -> x | None -> Float.nan in
  List.filter_map
    (function
      | [ p; h; i; c; n ] as group -> (
        match Exp_common.present group with
        | [] -> None
        | (buffer, _) :: _ ->
          Some
            {
              buffer;
              pcc = v p;
              hybla = v h;
              illinois = v i;
              cubic = v c;
              newreno = v n;
            })
      | _ -> invalid_arg "Exp_satellite.collect: 5 measurements per buffer")
    (Exp_common.chunk (List.length (specs ())) results)

let run ?pool ?policy ?scale ?seed ?buffers () =
  collect (Exp_common.run_tasks_opt ?pool ?policy (tasks ?scale ?seed ?buffers ()))

let table rows =
  Exp_common.
    {
      title =
        "Fig. 6 - satellite link (42 Mbps, 800 ms RTT, 0.74% loss; Mbps)";
      header =
        [ "buf KB"; "PCC"; "Hybla"; "Illinois"; "CUBIC"; "NewReno"; "PCC/Hybla" ];
      rows =
        List.map
          (fun r ->
            [
              f1 (float_of_int r.buffer /. 1000.);
              mbps r.pcc;
              mbps r.hybla;
              mbps r.illinois;
              mbps r.cubic;
              mbps r.newreno;
              f1 (ratio r.pcc r.hybla);
            ])
          rows;
      note =
        Some
          "Paper: PCC ~90% of capacity from 7.5 KB buffers; Hybla 17x and \
           Illinois 54x below PCC at 1 MB.";
    }

let print ?pool ?scale ?seed () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ()))
