open Pcc_sim
open Pcc_scenario

type row = {
  loss : float;
  achievable : float;
  pcc_resilient : float;
  pcc_safe : float;
  cubic : float;
}

let bandwidth = Units.mbps 100.

let specs () =
  let resilient =
    Transport.pcc
      ~config:
        (Pcc_core.Pcc_sender.config_with
           ~utility:(Pcc_core.Utility.loss_resilient ())
           ())
      ()
  in
  [
    ("pcc-resilient", resilient);
    ("pcc-safe", Transport.pcc ());
    ("cubic", Transport.tcp "cubic");
  ]

let tasks ?(scale = 1.) ?(seed = 42) ?(losses = [ 0.1; 0.2; 0.3; 0.4; 0.5 ])
    () =
  let rtt = 0.03 in
  let buffer = Units.bdp_bytes ~rate:bandwidth ~rtt in
  let duration = 100. *. scale in
  List.concat_map
    (fun loss ->
      List.map
        (fun (name, spec) ->
          Exp_common.task ~seed
            ~label:(Printf.sprintf "highloss/%s/loss=%g" name loss)
            (fun () ->
              ( loss,
                Exp_common.solo_throughput ~seed ~bandwidth ~rtt ~buffer
                  ~duration ~loss
                  ~queue:(Path.Fq Path.Droptail) spec )))
        (specs ()))
    losses

let collect results =
  let v = function Some (_, x) -> x | None -> Float.nan in
  List.filter_map
    (function
      | [ r; s; c ] as group -> (
        match Exp_common.present group with
        | [] -> None
        | (loss, _) :: _ ->
          Some
            {
              loss;
              achievable = bandwidth *. (1. -. loss);
              pcc_resilient = v r;
              pcc_safe = v s;
              cubic = v c;
            })
      | _ -> invalid_arg "Exp_high_loss.collect: 3 measurements per loss")
    (Exp_common.chunk (List.length (specs ())) results)

let run ?pool ?policy ?scale ?seed ?losses () =
  collect (Exp_common.run_tasks_opt ?pool ?policy (tasks ?scale ?seed ?losses ()))

let table rows =
  Exp_common.
    {
      title =
        "Sec. 4.4.2 - excessive random loss with the loss-resilient \
         utility (100 Mbps, 30 ms, FQ; Mbps)";
      header =
        [
          "loss%";
          "achievable";
          "PCC T(1-L)";
          "% of achievable";
          "PCC safe";
          "CUBIC";
        ];
      rows =
        List.map
          (fun r ->
            [
              Printf.sprintf "%.0f" (r.loss *. 100.);
              mbps r.achievable;
              mbps r.pcc_resilient;
              Printf.sprintf "%.0f%%"
                (100. *. ratio r.pcc_resilient r.achievable);
              mbps r.pcc_safe;
              mbps r.cubic;
            ])
          rows;
      note =
        Some
          "Paper: loss-resilient PCC within 97% of achievable even at 50% \
           loss; 151x CUBIC at 10% loss. The safe utility collapses past \
           its 5% cap, as designed.";
    }

let print ?pool ?scale ?seed () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ()))
