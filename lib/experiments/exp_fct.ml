open Pcc_sim
open Pcc_scenario
open Pcc_metrics

type row = {
  load : float;
  protocol : string;
  median : float;
  mean : float;
  p95 : float;
  completed : int;
}

let flow_size = 100 * 1024

let measure ~seed ~horizon ~load spec name =
  let bandwidth = Units.mbps 15. and rtt = 0.06 in
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let arrival_rng = Rng.create (seed + 17) in
  (* Poisson arrivals with the mean spacing matching the offered load. *)
  let mean_gap =
    float_of_int (flow_size * 8) /. (load *. bandwidth)
  in
  let arrivals =
    let rec build t acc =
      let t = t +. Rng.exponential arrival_rng mean_gap in
      if t > horizon then List.rev acc else build t (t :: acc)
    in
    build 0. []
  in
  let path =
    Path.build engine ~rng ~bandwidth ~rtt
      ~buffer:(Units.bdp_bytes ~rate:bandwidth ~rtt)
      ~flows:
        (List.map (fun at -> Path.flow ~start_at:at ~size:flow_size spec) arrivals)
      ()
  in
  (* Drain time after the last arrival. *)
  Engine.run ~until:(horizon +. 30.) engine;
  let fcts =
    Array.to_list (Path.flows path) |> List.filter_map (fun f -> f.Path.fct)
  in
  let a = Array.of_list fcts in
  {
    load;
    protocol = name;
    median = (if a = [||] then nan else Stats.median a);
    mean = Stats.mean a;
    p95 = (if a = [||] then nan else Stats.percentile a 95.);
    completed = Array.length a;
  }

let specs () =
  [ ("pcc", Transport.pcc ()); ("tcp", Transport.tcp "newreno") ]

let tasks ?(scale = 1.) ?(seed = 42) ?(loads = [ 0.05; 0.25; 0.5; 0.75 ]) () =
  let horizon = Float.max 30. (120. *. scale) in
  List.concat_map
    (fun load ->
      List.map
        (fun (name, spec) ->
          Exp_common.task ~seed
            ~label:(Printf.sprintf "fct/%s/load=%g" name load)
            (fun () -> measure ~seed ~horizon ~load spec name))
        (specs ()))
    loads

let collect results = Exp_common.present results

let run ?pool ?policy ?scale ?seed ?loads () =
  collect (Exp_common.run_tasks_opt ?pool ?policy (tasks ?scale ?seed ?loads ()))

let table rows =
  Exp_common.
    {
      title =
        "Fig. 15 - short-flow FCT (100 KB flows, 15 Mbps, 60 ms; seconds)";
      header = [ "load"; "protocol"; "median"; "mean"; "p95"; "flows" ];
      rows =
        List.map
          (fun r ->
            [
              Printf.sprintf "%.0f%%" (r.load *. 100.);
              r.protocol;
              f3 r.median;
              f3 r.mean;
              f3 r.p95;
              string_of_int r.completed;
            ])
          rows;
      note =
        Some
          "Paper: PCC matches TCP's median and 95th-percentile FCT up to \
           75% load (95th pct ~20% above TCP at 75%).";
    }

let print ?pool ?scale ?seed () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ()))
