(** Shared plumbing for the paper-reproduction experiments.

    Every experiment module follows the same convention: a [run] function
    parameterized by a [scale] (multiplying the paper's measurement
    durations, so tests can run cheap versions) and a [seed], returning
    structured rows, plus a [print] that renders the paper-shaped table to
    stdout. *)

type table = {
  title : string;
  header : string list;
  rows : string list list;
  note : string option;
}

val render_table : table -> string
(** Render with aligned columns, exactly as {!print_table} prints it —
    used to compare parallel and sequential runs byte-for-byte. *)

val print_table : table -> unit
(** [print_string (render_table t)], flushed. *)

(** {2 Task plumbing}

    Every experiment module splits into [tasks] (a pure, cheap
    description of its independent simulation runs — all randomness
    derived from the seed at construction time) and [collect] (folds the
    per-task results, {e in task order}, back into rows). {!run_tasks}
    executes a task list either sequentially or on a {!Runner} pool; by
    the Runner's determinism contract both give identical results. *)

module Task : sig
  type 'a t = 'a Supervisor.task = {
    label : string;
    seed : int option;
    repro : string option;
    run : unit -> 'a;
  }
end

type 'a task = 'a Task.t
(** One independent simulation run. The [label] identifies it in logs
    and forensics; [seed]/[repro] feed crash bundles. (The record lives
    in {!Task} so its fields don't shadow experiment row fields under
    local opens of this module; it is equal to {!Supervisor.task} so
    experiments run unchanged under supervision.) *)

val task : ?label:string -> ?seed:int -> ?repro:string -> (unit -> 'a) -> 'a task
val task_label : 'a task -> string

val run_tasks : ?pool:Runner.t -> 'a task list -> 'a list
(** Execute the tasks and return their results in task order. With no
    [pool] (or a 1-worker pool) runs sequentially in the calling
    domain. Strict: the first task exception propagates. *)

val run_tasks_opt :
  ?pool:Runner.t -> ?policy:Supervisor.policy -> 'a task list -> 'a option list
(** Like {!run_tasks}, but positional-with-holes. With a [policy], tasks
    run under {!Supervisor.run}: a failing task yields [None] in its
    slot (its outcome lands in the supervisor report and process-wide
    tally) and the rest of the sweep completes. Without a [policy],
    identical to [run_tasks] with every result wrapped in [Some]. *)

val value_or_nan : float option -> float
(** [None] becomes [nan] — pair with the NaN-aware formatters below so a
    failed measurement renders as ["n/a"]. *)

val present : 'a option list -> 'a list
(** Drop the holes, keeping order. *)

val chunk : int -> 'a list -> 'a list list
(** [chunk n l] splits [l] into consecutive groups of [n] (last group
    may be shorter). @raise Invalid_argument if [n <= 0]. *)

val group_by : ('a -> 'k) -> 'a list -> ('k * 'a list) list
(** Group consecutive-or-not elements by key, preserving first-seen key
    order and within-group element order. *)

val f1 : float -> string
(** Format with 1 decimal; NaN (a measurement missing under supervised
    execution) renders as ["n/a"], as in all formatters here. *)

val f2 : float -> string
val f3 : float -> string

val mbps : float -> string
(** Format a bits/s value as Mbps with 2 decimals. *)

val ratio : float -> float -> float
(** [ratio a b] is [a/b], guarding division by ~0 (returns [inf]) and
    propagating NaN from either operand. *)

val solo_throughput :
  ?seed:int ->
  ?warmup:float ->
  ?queue:Pcc_scenario.Topology.queue_kind ->
  ?loss:float ->
  ?rev_loss:float ->
  ?jitter:float ->
  bandwidth:float ->
  rtt:float ->
  buffer:int ->
  duration:float ->
  Pcc_scenario.Transport.spec ->
  float
(** Average goodput (bits/s) of a single flow over [duration] after
    [warmup] (default [max 3. (20·rtt)]) on a fresh single-bottleneck
    dumbbell built on the graph layer. *)

val goodput_between :
  Pcc_sim.Engine.t ->
  Pcc_scenario.Topology.built_flow ->
  t0:float ->
  t1:float ->
  float
(** Run the engine to [t0], snapshot, run to [t1], return the average
    goodput in bits/s. The engine must not already be past [t0].
    Wrapper-built flows convert via e.g.
    [(Topology.flows (Path.topology path)).(0)]. *)
