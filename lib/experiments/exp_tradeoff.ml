open Pcc_sim
open Pcc_scenario
open Pcc_metrics

type point = {
  label : string;
  convergence_time : float option;
  stddev : float;
}

let pcc_with ?(rct = true) ?(eps = 0.01) ~tm () =
  Transport.pcc
    ~config:
      (Pcc_core.Pcc_sender.config_with ~rct ~eps_min:eps ~mi_rtt:(tm, tm) ())
    ()

let configs () =
  [
    ("pcc Tm=4.8 e=.01", pcc_with ~tm:4.8 ());
    ("pcc Tm=3.0 e=.01", pcc_with ~tm:3.0 ());
    ("pcc Tm=2.0 e=.01", pcc_with ~tm:2.0 ());
    ("pcc Tm=1.0 e=.01", pcc_with ~tm:1.0 ());
    ("pcc Tm=1.0 e=.02", pcc_with ~tm:1.0 ~eps:0.02 ());
    ("pcc Tm=1.0 e=.05", pcc_with ~tm:1.0 ~eps:0.05 ());
    ("pcc noRCT Tm=1.0 e=.01", pcc_with ~rct:false ~tm:1.0 ());
    ("pcc noRCT Tm=2.0 e=.01", pcc_with ~rct:false ~tm:2.0 ());
    ("cubic", Transport.tcp "cubic");
    ("newreno", Transport.tcp "newreno");
    ("vegas", Transport.tcp "vegas");
    ("bic", Transport.tcp "bic");
    ("hybla", Transport.tcp "hybla");
    ("westwood", Transport.tcp "westwood");
  ]

let single ~seed ~horizon spec =
  let bandwidth = Units.mbps 100. and rtt = 0.03 in
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let b_start = 20. in
  let path =
    Path.build engine ~rng ~bandwidth ~rtt
      ~buffer:(Units.bdp_bytes ~rate:bandwidth ~rtt)
      ~flows:[ Path.flow spec; Path.flow ~start_at:b_start spec ]
      ()
  in
  let flow_b = (Path.flows path).(1) in
  let rec_b =
    Recorder.create engine ~interval:1. (fun () ->
        float_of_int (Path.goodput_bytes flow_b))
  in
  Engine.run ~until:(b_start +. horizon) engine;
  Recorder.stop rec_b;
  let series =
    Array.map (fun (t, v) -> (t -. b_start, v)) (Recorder.rates_bps rec_b)
  in
  let series = Array.of_list (Array.to_list series |> List.filter (fun (t, _) -> t >= 0.)) in
  let ideal = bandwidth /. 2. in
  let ct = Convergence.convergence_time ~ideal series in
  let sd =
    match ct with
    | Some t -> Convergence.stddev_after ~from:t ~duration:60. series
    | None ->
      Convergence.stddev_after ~from:(horizon -. 60.) ~duration:60. series
  in
  (ct, sd)

type sample = { s_label : string; s_ct : float option; s_sd : float }

let tasks ?(scale = 1.) ?(seed = 42) ?trials () =
  let trials =
    match trials with Some t -> t | None -> max 2 (int_of_float (4. *. scale))
  in
  let horizon = Float.max 80. (150. *. scale) in
  List.concat_map
    (fun (label, spec) ->
      List.init trials (fun i ->
          let trial_seed = seed + (101 * i) in
          Exp_common.task ~seed:trial_seed
            ~label:(Printf.sprintf "tradeoff/%s/trial=%d" label i)
            (fun () ->
              let ct, sd = single ~seed:trial_seed ~horizon spec in
              { s_label = label; s_ct = ct; s_sd = sd })))
    (configs ())

let collect samples =
  Exp_common.group_by (fun s -> s.s_label) (Exp_common.present samples)
  |> List.map (fun (label, cell) ->
         let cts = List.filter_map (fun s -> s.s_ct) cell in
         {
           label;
           convergence_time =
             (if cts = [] then None
              else Some (Stats.mean (Array.of_list cts)));
           stddev = Stats.mean (Array.of_list (List.map (fun s -> s.s_sd) cell));
         })

let run ?pool ?policy ?scale ?seed ?trials () =
  collect (Exp_common.run_tasks_opt ?pool ?policy (tasks ?scale ?seed ?trials ()))

let table points =
  Exp_common.
    {
      title =
        "Fig. 16 - stability vs reactiveness (flow B joining a 100 Mbps \
         link; convergence to fair share, stddev after convergence)";
      header = [ "configuration"; "conv time s"; "stddev Mbps" ];
      rows =
        List.map
          (fun p ->
            [
              p.label;
              (match p.convergence_time with
              | Some t -> f1 t
              | None -> "n/a");
              f2 (p.stddev /. 1e6);
            ])
          points;
      note =
        Some
          "Paper: the PCC sweep traces a frontier dominating all TCP \
           points; RCT cuts variance up to 35% for ~3% extra convergence \
           time at Tm=1.0.";
    }

let print ?pool ?scale ?seed () =
  Exp_common.print_table (table (run ?pool ?scale ?seed ()))
