type metrics = {
  rate : float;
  throughput : float;
  loss : float;
  samples : int;
  avg_rtt : float;
  prev_avg_rtt : float;
  rtt_early : float;
  rtt_late : float;
  min_rtt : float;
  rtt_samples : int;
  prev_class : int;
}

(* Lower confidence bound of the per-MI loss rate: with only a handful of
   packets in an interval, one unlucky drop reads as 10% loss and would
   spuriously trip the sigmoid cut-off. One standard error of slack makes
   the cut-off react to evidence of congestion rather than to noise, while
   converging to the raw rate as intervals grow. *)
let loss_lcb loss samples =
  if samples <= 0 then loss
  else begin
    let n = float_of_int samples in
    Float.max 0. (loss -. sqrt (loss *. (1. -. loss) /. n))
  end

type t = {
  name : string;
  eval : metrics -> float;
  classify : (metrics -> int) option;
}

let mbps x = x /. 1e6

let sigmoid alpha y =
  (* Guard the exponential against overflow for large α·y. *)
  let z = alpha *. y in
  if z > 700. then 0. else if z < -700. then 1. else 1. /. (1. +. exp z)

let safe ?(alpha = 100.) ?(loss_threshold = 0.05) ?(conservative = true) () =
  {
    name = "safe";
    classify = None;
    eval =
      (fun m ->
        let l_cut = if conservative then loss_lcb m.loss m.samples else m.loss in
        (mbps m.throughput *. sigmoid alpha (l_cut -. loss_threshold))
        -. (mbps m.rate *. m.loss));
  }

let loss_resilient () =
  {
    name = "loss-resilient";
    classify = None;
    eval = (fun m -> mbps m.throughput *. (1. -. m.loss));
  }

let latency ?(alpha = 100.) ?(loss_threshold = 0.05) () =
  {
    name = "latency";
    classify = None;
    eval =
      (fun m ->
        let rtt = Float.max m.avg_rtt 1e-6 in
        (* The paper's RTTn-1/RTTn factor rewards shrinking RTT. We
           estimate the same signal within the MI (early samples over
           late samples): it attributes queue growth to the rate that
           caused it, where the cross-MI ratio mixes adjacent trials. *)
        let early = Float.max m.rtt_early 1e-6 in
        let late = Float.max m.rtt_late 1e-6 in
        let l_cut = loss_lcb m.loss m.samples in
        ((mbps m.throughput
          *. sigmoid alpha (l_cut -. loss_threshold)
          *. (early /. late))
         -. (mbps m.rate *. m.loss))
        /. rtt);
  }

let simple () =
  {
    name = "simple";
    classify = None;
    eval = (fun m -> mbps m.throughput -. (mbps m.rate *. m.loss));
  }

(* RTT gradient in seconds/second from the within-MI trend. The MI
   duration estimate mirrors the sender's default MI length (~1.1 RTT,
   split in half by the early/late sample windows). *)
let drtt_dt m =
  let dur = Float.max 1e-6 (0.5 *. (m.avg_rtt *. 2.2)) in
  (m.rtt_late -. m.rtt_early) /. dur

let vivace_eval ~exponent ~latency_coeff ~loss_coeff m =
  let x = mbps m.rate in
  (x ** exponent)
  -. (latency_coeff *. x *. Float.max 0. (drtt_dt m))
  -. (loss_coeff *. x *. m.loss)

let vivace ?(exponent = 0.9) ?(latency_coeff = 900.) ?(loss_coeff = 11.35) ()
    =
  {
    name = "vivace";
    classify = None;
    eval = vivace_eval ~exponent ~latency_coeff ~loss_coeff;
  }

let class_probe = 0
let class_suspect = 1
let class_yield = 3

(* The scavenger's congestion sentinel: any sustained RTT inflation or
   non-noise loss reads as "a primary is present". The loss side uses the
   lower confidence bound so one unlucky drop in a short MI does not
   trigger a yield. *)
let congested ?(rtt_slope = 0.005) ?(loss_cut = 0.015) m =
  drtt_dt m > rtt_slope || loss_lcb m.loss m.samples > loss_cut

(* Proteus orders utility classes by aggressiveness: a primary must keep
   pressing through queueing that makes a scavenger cede. Vivace's
   default b=900 flips the gradient at dRTT/dt ≈ 0.0007 s/s for a
   30 Mbps flow — more timid than the scavenger's own yield trigger, so
   a b=900 "primary" crashes on its start-up overshoot and then cannot
   climb back into a scavenger-saturated link (at low rates the latency
   term is pure probe noise). b=10 tolerates queue growth two orders of
   magnitude past [rtt_slope]: the primary presses until it holds a
   visible standing queue at the bottleneck, which is precisely the
   persistence signal the scavenger's sentinel pins itself on — a
   gradient-sharing primary that kept queues empty would be
   indistinguishable from an idle link to a yielded scavenger. *)
let proteus_primary ?exponent ?(latency_coeff = 10.) ?loss_coeff () =
  let u = vivace ?exponent ~latency_coeff ?loss_coeff () in
  { u with name = "proteus-primary" }

let proteus_scavenger ?(exponent = 0.9) ?(latency_coeff = 900.)
    ?(loss_coeff = 11.35) ?(rtt_slope = 0.005) ?(loss_cut = 0.015)
    ?(yield_floor = 2e6) () =
  (* Hysteresis via [prev_class], in both directions, with no state
     beyond the class integer itself.

     Entry is debounced: a congested MI makes the flow a fresh suspect,
     and a second congested MI within the next two confirms the yield
     (suspect decays fresh → stale → probe through clean MIs). The
     one-clean-MI grace matters because the controller probes in ±ε
     pairs: competing at a saturated bottleneck, the flow's own −ε half
     dips the link below capacity and reads clean even though every +ε
     half congests, so a strict two-in-a-row rule would never confirm.
     Solo, the signature of hovering at capacity is
     [+ε congested; −ε clean; base clean] — the base-rate MI sits below
     capacity too, so the suspect decays and the flow hovers under its
     ordinary Vivace dynamics instead of self-yielding.

     Exit is a clean-streak countdown encoded in the class value: a
     confirmed yield starts at [yield_hi] and must observe [exit_clean]
     consecutive MIs that are neither congested nor holding a standing
     queue before probing resumes; any hot MI resets the countdown. The
     standing-queue test ([avg_rtt] elevated over the path's observed
     [min_rtt]) covers primaries that park a queue at the bottleneck
     without growing it further. A false self-yield (the flow briefly
     overdriving an empty link) sees the queue drain within an MI or
     two and exits after ~[exit_clean] MIs, having ceded little. *)
  let suspect_fresh = class_suspect + 1 in
  let exit_clean = 6 in
  let yield_hi = class_yield + exit_clean - 1 in
  (* The standing-queue test only trusts MIs with real RTT samples:
     during a retransmission storm Karn's rule suppresses samples and
     every RTT statistic is a frozen estimator fallback — treating that
     guess as a hot queue would pin the flow in yield with no way to
     gather the fresh evidence needed to leave it. *)
  let hot m =
    congested ~rtt_slope ~loss_cut m
    || (m.rtt_samples > 0 && m.avg_rtt > 1.1 *. m.min_rtt)
  in
  let scavenger_class m =
    if m.prev_class >= class_yield then
      if hot m then yield_hi
      else if m.prev_class = class_yield then class_probe
      else m.prev_class - 1
    else if congested ~rtt_slope ~loss_cut m then
      if m.prev_class >= class_suspect then yield_hi else suspect_fresh
    else if m.prev_class = suspect_fresh then class_suspect
    else class_probe
  in
  {
    name = "proteus-scavenger";
    classify = Some scavenger_class;
    eval =
      (fun m ->
        if scavenger_class m >= class_yield then
          (* Steeply decreasing in rate: the gradient controller sees a
             strictly better utility at any lower rate and walks the
             scavenger down. The gain keeps the gradient above the
             controller's change boundary (and above RTT-sample noise),
             so every yield step is a full ω·base back-off and the
             boundary widens each decision — the descent compounds
             instead of creeping down 1 Mbps per decision while the
             primary waits. Below [yield_floor] the objective is flat
             (zero gradient), so the descent parks there rather than
             crashing to the sender's absolute minimum, where the flow
             could not even drain a retransmission backlog. *)
          let x = Float.max (mbps m.rate) (mbps yield_floor) in
          -.(10. *. (x ** exponent))
          -. (latency_coeff *. x *. Float.max 0. (drtt_dt m))
          -. (loss_coeff *. x *. m.loss)
        else vivace_eval ~exponent ~latency_coeff ~loss_coeff m);
  }

let proteus_hybrid ?(floor_rate = 2e6) ?exponent ?latency_coeff ?loss_coeff
    ?rtt_slope ?loss_cut () =
  let primary = proteus_primary ?exponent ?latency_coeff ?loss_coeff () in
  let scav =
    proteus_scavenger ?exponent ?latency_coeff ?loss_coeff ?rtt_slope
      ?loss_cut ~yield_floor:floor_rate ()
  in
  {
    name = "proteus-hybrid";
    classify =
      Some
        (fun m ->
          if m.rate <= floor_rate then class_probe
          else Option.get scav.classify m);
    eval =
      (fun m ->
        (* Below the floor the flow demands its share like a primary;
           past it, the surplus is scavenged. *)
        if m.rate <= floor_rate then primary.eval m else scav.eval m);
  }

let custom ~name eval = { name; eval; classify = None }
