open Pcc_sim
open Pcc_net

type config = {
  controller : Controller.config;
  monitor : Monitor.config;
  utility : Utility.t;
}

let default_config =
  {
    controller = Controller.default_config;
    monitor = Monitor.default_config;
    utility = Utility.safe ();
  }

let config_with ?utility ?rct ?eps_min ?eps_max ?mi_rtt ?init_rate ?algorithm
    () =
  let c = default_config in
  let controller =
    {
      c.controller with
      algorithm =
        (match algorithm with
        | Some a -> a
        | None -> c.controller.Controller.algorithm);
      rct = (match rct with Some v -> v | None -> c.controller.Controller.rct);
      eps_min =
        (match eps_min with Some v -> v | None -> c.controller.Controller.eps_min);
      eps_max =
        (match eps_max with Some v -> v | None -> c.controller.Controller.eps_max);
      init_rate =
        (match init_rate with
        | Some v -> v
        | None -> c.controller.Controller.init_rate);
    }
  in
  let monitor =
    match mi_rtt with
    | Some (lo, hi) -> { c.monitor with Monitor.rtt_lo = lo; rtt_hi = hi }
    | None -> c.monitor
  in
  {
    controller;
    monitor;
    utility = (match utility with Some u -> u | None -> c.utility);
  }

type t = {
  engine : Engine.t;
  cfg : config;
  flow : int;
  out : Packet.t -> unit;
  sb : Scoreboard.t;
  ctl : Controller.t;
  mutable mon : Monitor.t option;  (* tied after create (cyclic deps) *)
  mutable pacer : Rate_pacer.t option;
  mutable running : bool;
  mutable completed : bool;
  mutable sent_pkts : int;
  on_complete : (float -> unit) option;
}

let monitor t = match t.mon with Some m -> m | None -> assert false
let pacer t = match t.pacer with Some p -> p | None -> assert false
let controller t = t.ctl
let current_rate t = Controller.rate t.ctl

let finish t =
  if not t.completed then begin
    t.completed <- true;
    t.running <- false;
    Rate_pacer.stop (pacer t);
    Monitor.stop (monitor t);
    match t.on_complete with
    | Some f -> f (Engine.now t.engine)
    | None -> ()
  end

let send_one t () =
  if t.completed || not t.running then None
  else begin
    let seq, retx =
      match Scoreboard.take_retx t.sb with
      | Some seq -> (Some seq, true)
      | None -> (Scoreboard.fresh_seq t.sb, false)
    in
    match seq with
    | None -> None
    | Some seq ->
      let now = Engine.now t.engine in
      let pkt = Packet.data ~flow:t.flow ~seq ~size:Units.mss ~now ~retx in
      Scoreboard.record_send t.sb seq ~now;
      t.sent_pkts <- t.sent_pkts + 1;
      Monitor.on_send (monitor t) ~seq ~size:Units.mss;
      t.out pkt;
      Some Units.mss
  end

let handle_ack t (a : Packet.ack) =
  if t.running && not t.completed then begin
    let now = Engine.now t.engine in
    let rtt =
      if a.Packet.data_retx then None else Some (now -. a.Packet.data_sent_at)
    in
    let delivered = Scoreboard.on_ack t.sb a in
    let mon0 = monitor t in
    List.iter
      (fun seq ->
        let rtt = if seq = a.Packet.acked_seq then rtt else None in
        Monitor.on_ack mon0 ~seq ~rtt ~size:Units.mss)
      delivered;
    (* Even a duplicate ack still carries a fresh RTT sample. *)
    if delivered = [] then
      Monitor.on_ack mon0 ~seq:a.Packet.acked_seq ~rtt ~size:Units.mss;
    (* Gap-based detection keeps retransmissions prompt; the monitor's
       deadline-based accounting is what feeds the utility. *)
    let mon = monitor t in
    let min_age = 0.8 *. Monitor.rtt_estimate mon in
    let losses = Scoreboard.detect_losses t.sb ~now ~min_age in
    List.iter (fun seq -> Monitor.on_lost mon ~seq) losses;
    if Scoreboard.complete t.sb then finish t
    else Rate_pacer.kick (pacer t)
  end

let create engine ?(config = default_config) ?size ?on_complete ~rng ~out () =
  let flow = Packet.fresh_flow_id () in
  let sb = Scoreboard.create () in
  (match size with
  | Some bytes -> Scoreboard.limit_pkts sb (Units.packets_of_bytes bytes)
  | None -> ());
  let ctl = Controller.create ~config:config.controller ~rng:(Rng.split rng) () in
  let t =
    {
      engine;
      cfg = config;
      flow;
      out;
      sb;
      ctl;
      mon = None;
      pacer = None;
      running = false;
      completed = false;
      sent_pkts = 0;
      on_complete;
    }
  in
  let p = Rate_pacer.create engine ~rate:(Controller.rate ctl) ~send:(send_one t) in
  t.pacer <- Some p;
  let rate_for_mi ~id =
    let r = Controller.rate_for_mi ctl ~id in
    Rate_pacer.set_rate p r;
    r
  in
  let on_mi_losses seqs =
    let now = Engine.now engine in
    let mon = monitor t in
    let min_age = 0.8 *. Monitor.rtt_estimate mon in
    let any =
      List.fold_left
        (fun acc s -> Scoreboard.mark_lost sb s ~now ~min_age || acc)
        false seqs
    in
    (* Kick whenever anything is waiting: the pacer pauses once fresh data
       runs out, and a tail loss must be able to restart it. *)
    if (any || Scoreboard.has_retx sb) && t.running && not t.completed then
      Rate_pacer.kick p
  in
  let mon =
    Monitor.create engine config.monitor ~rng:(Rng.split rng)
      ~utility:config.utility ~rate_for_mi
      ~on_result:(fun r -> Controller.on_result ctl r)
      ~on_mi_losses
  in
  t.mon <- Some mon;
  Monitor.set_trace_id mon flow;
  Controller.set_trace ctl ~id:flow ~now:(fun () -> Engine.now engine);
  Pcc_trace.Collector.register Pcc_trace.Event.Flow_scope ~id:flow "pcc";
  Controller.on_rate_change ctl (fun _new_rate ->
      (* Re-align the monitor interval with the rate change (§3.1); the
         fresh MI's rate_for_mi call retunes the pacer. *)
      if t.running && not t.completed then Monitor.realign mon);
  t

(* Retransmission-timeout backstop (UDT's EXP timer): without it a tail
   loss whose monitor interval was discarded by a re-alignment would leave
   the flow silent forever — SACK gaps need successor traffic to detect
   anything. *)
let rec watchdog t () =
  if t.running && not t.completed then begin
    let now = Engine.now t.engine in
    let rtt = Monitor.rtt_estimate (monitor t) in
    let lost = Scoreboard.sweep_stale t.sb ~now ~min_age:(3. *. rtt) in
    List.iter (fun seq -> Monitor.on_lost (monitor t) ~seq) lost;
    if lost <> [] || Scoreboard.has_retx t.sb then Rate_pacer.kick (pacer t);
    ignore
      (Engine.schedule_in t.engine
         ~after:(Float.max (2. *. rtt) 0.001)
         (watchdog t))
  end

let start t =
  if (not t.running) && not t.completed then begin
    t.running <- true;
    Monitor.start (monitor t);
    Rate_pacer.start (pacer t);
    ignore
      (Engine.schedule_in t.engine
         ~after:(Float.max (2. *. Monitor.rtt_estimate (monitor t)) 0.001)
         (watchdog t))
  end

let stop t =
  t.running <- false;
  Rate_pacer.stop (pacer t);
  Monitor.stop (monitor t)

let sender t =
  let flow = t.flow in
  Sender.
    {
      flow;
      name = "pcc";
      start = (fun () -> start t);
      stop = (fun () -> stop t);
      handle_ack = (fun a -> handle_ack t a);
      rate_estimate = (fun () -> Controller.rate t.ctl);
      acked_bytes = (fun () -> Scoreboard.acked_pkts t.sb * Units.mss);
      srtt = (fun () -> Monitor.rtt_estimate (monitor t));
      sent_pkts = (fun () -> t.sent_pkts);
      is_complete = (fun () -> t.completed);
    }
