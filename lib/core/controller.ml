open Pcc_sim

type vivace_config = {
  viv_eps : float;
  theta : float;
  amp_max : int;
  omega0 : float;
  omega_delta : float;
  omega_max : float;
}

let default_vivace =
  {
    viv_eps = 0.05;
    theta = 1.0;
    amp_max = 30;
    omega0 = 0.05;
    omega_delta = 0.1;
    omega_max = 0.5;
  }

type algorithm = Allegro | Vivace of vivace_config

type config = {
  eps_min : float;
  eps_max : float;
  rct : bool;
  init_rate : float;
  min_rate : float;
  max_rate : float;
  algorithm : algorithm;
}

let default_config =
  {
    eps_min = 0.01;
    eps_max = 0.05;
    rct = true;
    init_rate = 2. *. float_of_int (Units.mss * 8) /. 0.05;
    min_rate = Units.kbps 50.;
    max_rate = Units.gbps 20.;
    algorithm = Allegro;
  }

type phase = Starting | Decision | Adjusting

type pair = {
  up_first : bool;
  mutable up_u : float option;
  mutable down_u : float option;
}

(* What a given MI was planned to test. Tagged with the phase epoch so
   results from MIs planned before a phase change are discarded. *)
type role =
  | R_start
  | R_trial of { pair : int; up : bool }
  | R_wait
  | R_adjust of { step : int; prev_rate : float }

type t = {
  cfg : config;
  rng : Rng.t;
  mutable base : float;  (* current base rate, bps *)
  mutable ph : phase;
  mutable tag : int;  (* phase epoch *)
  plan : (int, int * role) Hashtbl.t;  (* mi id -> (tag, role) *)
  mutable notify : float -> unit;
  mutable trace_id : int;  (* flow id for trace records *)
  mutable trace_now : unit -> float;  (* clock for trace timestamps *)
  mutable eps : float;
  mutable decisions : int;
  (* Starting state *)
  mutable start_prev_u : float option;
  mutable start_best : (float * float) option;  (* best (rate, u) so far *)
  mutable start_falls : int;  (* consecutive utility falls *)
  mutable doubled : bool;  (* whether rate_for_mi already issued MI 0 *)
  (* Decision state *)
  mutable pairs : pair array;
  mutable assigned : int;
  (* Adjusting state *)
  mutable dir : float;
  mutable adj_step : int;
  mutable adj_confirmed : int;  (* steps whose results came back good *)
  mutable adj_falls : int;  (* consecutive utility falls at current step *)
  mutable adj_planned_rate : float;  (* rate of the last planned step *)
  mutable adj_prev : (float * float) option;  (* last accepted (rate, u) *)
  (* Vivace state *)
  mutable viv_dir : int;  (* −1 / 0 (no step yet) / +1 *)
  mutable viv_amp : int;  (* confidence amplifier m *)
  mutable viv_omega : float;  (* dynamic change boundary ω *)
  (* Utility bookkeeping (all delivered results) *)
  mutable util_sum : float;
  mutable util_count : int;
  mutable gradient_steps : int;
}

let create ?(config = default_config) ~rng () =
  {
    cfg = config;
    rng;
    base = Float.max config.min_rate config.init_rate;
    ph = Starting;
    tag = 0;
    plan = Hashtbl.create 64;
    notify = (fun _ -> ());
    trace_id = -1;
    trace_now = (fun () -> 0.);
    eps =
      (* Vivace probes at a fixed ±ε; Allegro's granularity escalation
         never touches it because decide is bypassed. *)
      (match config.algorithm with
      | Allegro -> config.eps_min
      | Vivace vc -> vc.viv_eps);
    decisions = 0;
    start_prev_u = None;
    start_best = None;
    start_falls = 0;
    doubled = false;
    pairs = [||];
    assigned = 0;
    dir = 1.;
    adj_step = 0;
    adj_confirmed = 0;
    adj_falls = 0;
    adj_planned_rate = 0.;
    adj_prev = None;
    viv_dir = 0;
    viv_amp = 1;
    viv_omega =
      (match config.algorithm with
      | Allegro -> 0.
      | Vivace vc -> vc.omega0);
    util_sum = 0.;
    util_count = 0;
    gradient_steps = 0;
  }

let rate t = t.base
let phase t = t.ph
let eps t = t.eps
let decisions t = t.decisions
let gradient_steps t = t.gradient_steps

let mean_utility t =
  if t.util_count = 0 then 0. else t.util_sum /. float_of_int t.util_count

let on_rate_change t f = t.notify <- f

let set_trace t ~id ~now =
  t.trace_id <- id;
  t.trace_now <- now

let clamp t r = Float.max t.cfg.min_rate (Float.min t.cfg.max_rate r)

let set_base t r =
  let r = clamp t r in
  if r <> t.base then begin
    let prev = t.base in
    t.base <- r;
    if Pcc_trace.Collector.enabled () then begin
      let phase =
        match t.ph with Starting -> 0 | Decision -> 1 | Adjusting -> 2
      in
      let step = match t.ph with Adjusting -> t.adj_step | _ -> 0 in
      Pcc_trace.Collector.emit Pcc_trace.Event.Rate_change
        ~time:(t.trace_now ()) ~id:t.trace_id ~a:r ~b:prev
        ~i:(Pcc_trace.Event.pack_rate_info ~phase ~step)
    end;
    t.notify r
  end

let npairs t =
  match t.cfg.algorithm with
  | Vivace _ -> 1 (* one ±ε probe pair per gradient step *)
  | Allegro -> if t.cfg.rct then 2 else 1

let enter_decision t =
  t.ph <- Decision;
  t.tag <- t.tag + 1;
  t.pairs <-
    Array.init (npairs t) (fun _ ->
        { up_first = Rng.bool t.rng; up_u = None; down_u = None });
  t.assigned <- 0

(* Starting always hands off to the probing state; which decision logic
   runs on the probe results depends on the algorithm. *)
let exit_starting t =
  t.eps <-
    (match t.cfg.algorithm with
    | Allegro -> t.cfg.eps_min
    | Vivace vc -> vc.viv_eps);
  enter_decision t

let enter_adjusting t ~dir ~first:(rate0, u0) =
  (* rate0 was already tested by the winning trials, so the first step of
     the ladder starts one ε beyond it. *)
  t.ph <- Adjusting;
  t.tag <- t.tag + 1;
  t.dir <- dir;
  t.adj_step <- 1;
  t.adj_confirmed <- 0;
  t.adj_falls <- 0;
  t.adj_planned_rate <- clamp t (rate0 *. (1. +. (t.cfg.eps_min *. dir)));
  t.adj_prev <- Some (rate0, u0)

let rate_for_mi t ~id =
  let tagged role = Hashtbl.replace t.plan id (t.tag, role) in
  match t.ph with
  | Starting ->
    let r =
      if not t.doubled then begin
        t.doubled <- true;
        t.base
      end
      else begin
        t.base <- clamp t (t.base *. 2.);
        t.base
      end
    in
    tagged R_start;
    r
  | Decision ->
    let total = 2 * npairs t in
    if t.assigned < total then begin
      let a = t.assigned in
      t.assigned <- a + 1;
      let pair = a / 2 in
      let first_of_pair = a mod 2 = 0 in
      let up = if first_of_pair then t.pairs.(pair).up_first
               else not t.pairs.(pair).up_first in
      tagged (R_trial { pair; up });
      let f = if up then 1. +. t.eps else 1. -. t.eps in
      clamp t (t.base *. f)
    end
    else begin
      (* All trials emitted: hold the base rate while results return. *)
      tagged R_wait;
      t.base
    end
  | Adjusting ->
    (* Rate advances are result-clocked (§3.1's re-alignment): every MI in
       this phase sends at the current step's rate; the step only moves
       when the step's first utility result arrives (see on_result). *)
    let prev_rate =
      match t.adj_prev with Some (r, _) -> r | None -> t.adj_planned_rate
    in
    Hashtbl.replace t.plan id
      (t.tag, R_adjust { step = t.adj_step; prev_rate });
    t.adj_planned_rate

let decide t =
  let ups = Array.for_all (fun p -> p.up_u > p.down_u) t.pairs in
  let downs = Array.for_all (fun p -> p.up_u < p.down_u) t.pairs in
  t.decisions <- t.decisions + 1;
  let avg f =
    Array.fold_left (fun acc p -> acc +. f p) 0. t.pairs
    /. float_of_int (Array.length t.pairs)
  in
  let get o = match o with Some v -> v | None -> 0. in
  if ups then begin
    let r = clamp t (t.base *. (1. +. t.eps)) in
    let u = avg (fun p -> get p.up_u) in
    enter_adjusting t ~dir:1. ~first:(r, u);
    t.eps <- t.cfg.eps_min;
    set_base t t.adj_planned_rate
  end
  else if downs then begin
    let r = clamp t (t.base *. (1. -. t.eps)) in
    let u = avg (fun p -> get p.down_u) in
    enter_adjusting t ~dir:(-1.) ~first:(r, u);
    t.eps <- t.cfg.eps_min;
    set_base t t.adj_planned_rate
  end
  else begin
    (* Inconclusive: stay put, look harder. *)
    t.eps <- Float.min t.cfg.eps_max (t.eps +. t.cfg.eps_min);
    enter_decision t
  end

(* Vivace's gradient-ascent update (NSDI 2018 §4): finish one ±ε probe
   pair, estimate the utility gradient, take a step θ·m·γ whose size is
   amplified by m consecutive same-direction steps and clamped to the
   dynamic change boundary ±ω·base; ω inflates while the clamp binds and
   collapses back to ω₀ the moment the gradient flips or fits. *)
let vivace_decide t vc =
  t.decisions <- t.decisions + 1;
  let p = t.pairs.(0) in
  let get o = match o with Some v -> v | None -> 0. in
  let u_plus = get p.up_u and u_minus = get p.down_u in
  let base_mbps = Float.max 1e-9 (t.base /. 1e6) in
  let gamma = (u_plus -. u_minus) /. (2. *. vc.viv_eps *. base_mbps) in
  if gamma = 0. then begin
    (* A flat gradient carries no direction: forget momentum, re-probe. *)
    t.viv_dir <- 0;
    t.viv_amp <- 1;
    t.viv_omega <- vc.omega0;
    enter_decision t
  end
  else begin
    let up = gamma > 0. in
    let dir = if up then 1 else -1 in
    if t.viv_dir = dir then
      t.viv_amp <- min vc.amp_max (t.viv_amp + 1)
    else begin
      t.viv_amp <- 1;
      t.viv_omega <- vc.omega0
    end;
    t.viv_dir <- dir;
    let step_mbps = vc.theta *. float_of_int t.viv_amp *. gamma in
    let bound_mbps = t.viv_omega *. base_mbps in
    let clamped = Float.abs step_mbps > bound_mbps in
    let step_mbps =
      if clamped then Float.copy_sign bound_mbps step_mbps else step_mbps
    in
    if clamped then
      t.viv_omega <- Float.min vc.omega_max (t.viv_omega +. vc.omega_delta)
    else t.viv_omega <- vc.omega0;
    let next = clamp t (t.base +. (step_mbps *. 1e6)) in
    t.gradient_steps <- t.gradient_steps + 1;
    if Pcc_trace.Collector.enabled () then
      Pcc_trace.Collector.emit Pcc_trace.Event.Gradient_step
        ~time:(t.trace_now ()) ~id:t.trace_id ~a:gamma ~b:next
        ~i:
          (Pcc_trace.Event.pack_gradient_info ~up ~clamped ~amp:t.viv_amp);
    enter_decision t;
    set_base t next
  end

let on_result t (r : Monitor.result) =
  t.util_sum <- t.util_sum +. r.Monitor.utility;
  t.util_count <- t.util_count + 1;
  match Hashtbl.find_opt t.plan r.Monitor.id with
  | None -> ()
  | Some (tag, role) ->
    Hashtbl.remove t.plan r.Monitor.id;
    if tag = t.tag then begin
      match role with
      | R_start -> (
        (* Track the best (rate, utility) seen while doubling. As in the
           adjusting state, one noisy MI (a competitor's transient burst)
           should not end the startup: exit on two consecutive utility
           falls, reverting to the best rate observed. *)
        (match t.start_best with
        | Some (_, bu) when r.Monitor.utility <= bu -> ()
        | Some _ | None ->
          t.start_best <- Some (r.Monitor.rate, r.Monitor.utility));
        match t.start_prev_u with
        | Some prev when r.Monitor.utility < prev ->
          t.start_falls <- t.start_falls + 1;
          t.start_prev_u <- Some r.Monitor.utility;
          if t.start_falls >= 2 then begin
            exit_starting t;
            match t.start_best with
            | Some (br, _) -> set_base t br
            | None -> set_base t (r.Monitor.rate /. 2.)
          end
        | Some _ | None ->
          t.start_falls <- 0;
          t.start_prev_u <- Some r.Monitor.utility)
      | R_wait -> ()
      | R_trial { pair; up } ->
        let p = t.pairs.(pair) in
        if up then p.up_u <- Some r.Monitor.utility
        else p.down_u <- Some r.Monitor.utility;
        if
          Array.for_all
            (fun p -> p.up_u <> None && p.down_u <> None)
            t.pairs
        then begin
          match t.cfg.algorithm with
          | Vivace vc -> vivace_decide t vc
          | Allegro -> decide t
        end
      | R_adjust { step; prev_rate } ->
        (* Only the current step's first result drives the ladder; later
           results for an already-decided step are stale. *)
        if step = t.adj_step then begin
          match t.adj_prev with
          | Some (_, prev_u) when r.Monitor.utility < prev_u ->
            (* Utility fell while accelerating. A single noisy MI (one
               unlucky loss) should not abort the climb — the RCT
               principle applied to this state — so hold the rate and
               revert only on a second consecutive fall. *)
            t.adj_falls <- t.adj_falls + 1;
            if t.adj_falls >= 2 then begin
              t.eps <- t.cfg.eps_min;
              enter_decision t;
              set_base t prev_rate
            end
          | Some _ | None ->
            t.adj_falls <- 0;
            t.adj_confirmed <- t.adj_confirmed + 1;
            t.adj_prev <- Some (r.Monitor.rate, r.Monitor.utility);
            t.adj_step <- t.adj_step + 1;
            let factor =
              1. +. (float_of_int t.adj_step *. t.cfg.eps_min *. t.dir)
            in
            t.adj_planned_rate <-
              clamp t (r.Monitor.rate *. Float.max 0.05 factor);
            set_base t t.adj_planned_rate
        end
    end
