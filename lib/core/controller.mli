(** The performance-oriented control module of §3.2.

    A learning loop over sending rates, driven purely by per-MI
    (rate, utility) observations:

    - {b Starting}: double the rate each MI; when utility first falls,
      return to the previous rate and enter decision making (slow-start
      analogue that ignores loss per se).
    - {b Decision}: run randomized controlled trials — 2 pairs of MIs,
      each pair testing r(1+ε) and r(1−ε) in random order (1 pair when RCT
      is disabled). Move only if both pairs agree; otherwise stay at r and
      grow the trial granularity ε by ε_min (up to ε_max).
    - {b Rate adjusting}: accelerate in the chosen direction,
      rₙ = rₙ₋₁·(1 + n·ε_min·dir), until utility falls, then revert to
      the last good rate and re-enter decision making.

    Results for MIs planned by a superseded phase are ignored (they were
    sent before the phase change took effect). *)

type vivace_config = {
  viv_eps : float;  (** Probe amplitude ε: trials at base·(1±ε). *)
  theta : float;  (** Gradient-to-Mbps conversion factor θ. *)
  amp_max : int;  (** Confidence amplifier cap. *)
  omega0 : float;  (** Initial change boundary ω₀ (rate fraction). *)
  omega_delta : float;  (** ω growth per consecutive clamped step. *)
  omega_max : float;  (** ω ceiling. *)
}

val default_vivace : vivace_config
(** ε = 0.05, θ = 1, m ≤ 30, ω₀ = 0.05 growing by 0.1 to 0.5 — the
    shape of the NSDI 2018 defaults, scaled to this simulator's Mbps
    utility magnitudes. *)

type algorithm =
  | Allegro  (** §3.2's trial/decision/adjusting state machine. *)
  | Vivace of vivace_config
      (** Gradient ascent with confidence amplification and a dynamic
          change boundary (PCC Vivace, NSDI 2018). Reuses Allegro's
          Starting phase; afterwards alternates one ±ε probe pair with
          one gradient step, never entering Adjusting. *)

type config = {
  eps_min : float;  (** Trial granularity step, paper: 0.01. *)
  eps_max : float;  (** Granularity cap, paper: 0.05. *)
  rct : bool;  (** Two trial pairs (true, paper default) or one. *)
  init_rate : float;  (** Starting rate, bits/s (paper: 2·MSS/RTT). *)
  min_rate : float;  (** Control floor, bits/s. *)
  max_rate : float;  (** Control ceiling, bits/s. *)
  algorithm : algorithm;  (** Which rate-update rule drives the flow. *)
}

val default_config : config
(** ε ∈ [0.01, 0.05], RCT on, init 0.48 Mbps (2 MSS / 50 ms),
    floor 50 kbps, ceiling 20 Gbps, Allegro. *)

type phase = Starting | Decision | Adjusting
(** Exposed for tests and rate-evolution traces. *)

type t

val create : ?config:config -> rng:Pcc_sim.Rng.t -> unit -> t

val rate : t -> float
(** The rate the sender should currently use (base rate; per-MI trial
    rates are handed out via {!rate_for_mi}). *)

val rate_for_mi : t -> id:int -> float
(** Rate plan for a freshly opened MI — wire this to
    {!Monitor.create}'s [rate_for_mi]. *)

val on_result : t -> Monitor.result -> unit
(** Feed an evaluated MI back; may change the current rate. *)

val on_rate_change : t -> (float -> unit) -> unit
(** Register a callback fired whenever the base rate changes outside the
    per-MI plan (phase transitions and reversions) — the sender uses it to
    retune its pacer and re-align the monitor. *)

val set_trace : t -> id:int -> now:(unit -> float) -> unit
(** Identify this controller's trace records: [id] is the flow id stamped
    on [Rate_change] events, [now] the clock used for their timestamps
    (defaults: [-1] and a constant-zero clock). The PCC sender wires both
    right after construction. *)

val phase : t -> phase
val eps : t -> float
(** Current trial granularity. *)

val decisions : t -> int
(** Number of completed decision rounds (conclusive or not). *)

val gradient_steps : t -> int
(** Number of Vivace gradient steps taken (0 under Allegro). *)

val mean_utility : t -> float
(** Mean utility over every MI result delivered to this controller
    (0 before the first result) — the bench's per-controller summary. *)
