open Pcc_sim

type result = {
  id : int;
  rate : float;
  start_time : float;
  duration : float;
  sent_pkts : int;
  acked_pkts : int;
  sent_bytes : int;
  acked_bytes : int;
  loss : float;
  avg_rtt : float option;
  prev_avg_rtt : float option;
  utility : float;
}

type config = {
  min_pkts : int;
  rtt_lo : float;
  rtt_hi : float;
  eval_margin : float;
  initial_rtt : float;
}

let default_config =
  { min_pkts = 10; rtt_lo = 1.7; rtt_hi = 2.2; eval_margin = 2.0; initial_rtt = 0.05 }

type mi = {
  mi_id : int;
  mi_rate : float;
  start : float;
  mutable close_time : float;
  mutable closed : bool;
  mutable evaluated : bool;
  mutable rollover : Engine.timer option;
  mutable fallback : Engine.timer option;
  mutable sent_pkts : int;
  mutable sent_bytes : int;
  mutable acked_pkts : int;
  mutable acked_bytes : int;
  mutable rtt_sum : float;
  mutable rtt_cnt : int;
  mutable planned_dur : float;
  mutable rtt_early_sum : float;  (* samples in the MI's first quarter *)
  mutable rtt_early_cnt : int;
  mutable rtt_late_sum : float;  (* samples in (or after) the last quarter *)
  mutable rtt_late_cnt : int;
  (* Sequences charged to this MI: an append-only vector (duplicates
     possible when a sequence is re-sent within the MI) plus a count of
     those still unresolved. A sequence is unresolved by this MI exactly
     while [seq_owner] still names this MI; a later MI re-sending it
     steals ownership (the ack credit follows the latest transmission)
     without decrementing [unresolved] — the stolen sequence then counts
     as this MI's loss at evaluation, matching the hash-table version. *)
  mutable sent_list : int array;
  mutable sent_len : int;
  mutable unresolved : int;
}

type t = {
  engine : Engine.t;
  cfg : config;
  rng : Rng.t;
  utility : Utility.t;
  rate_for_mi : id:int -> float;
  on_result : result -> unit;
  on_mi_losses : int list -> unit;
  (* seq -> owning MI id (-1 none), directly indexed: sequences are
     dense per flow, and this lookup runs once per sent packet and once
     per ack — the Hashtbl it replaces dominated ack processing. *)
  mutable seq_owner : int array;
  (* MIs that may still own sequences (current + closed-unevaluated) —
     a handful at any instant, scanned linearly to map an owner id back
     to its MI. Evaluated and discarded MIs first clear their owned
     sequences, so a stale id can never surface from [seq_owner]. *)
  mutable live_mis : mi list;
  mutable trace_id : int;  (* flow id, for the trace layer *)
  mutable current : mi option;
  mutable next_id : int;
  mutable rtt_est : float;
  mutable rtt_latest : float;
  mutable rtt_min : float;  (* lifetime minimum RTT sample (∞ before any) *)
  mutable have_rtt : bool;
  mutable last_avg_rtt : float option;
  mutable last_class : int;  (* last utility class seen (-1 before any) *)
  mutable running : bool;
  (* In-order release of evaluated results. *)
  ready : (int, result) Hashtbl.t;
  discarded : (int, unit) Hashtbl.t;
  mutable expected : int;
}

let create engine cfg ~rng ~utility ~rate_for_mi ~on_result ~on_mi_losses =
  {
    engine;
    cfg;
    rng;
    utility;
    rate_for_mi;
    on_result;
    on_mi_losses;
    seq_owner = Array.make 1024 (-1);
    live_mis = [];
    trace_id = -1;
    current = None;
    next_id = 0;
    rtt_est = cfg.initial_rtt;
    rtt_latest = cfg.initial_rtt;
    rtt_min = Float.infinity;
    have_rtt = false;
    last_avg_rtt = None;
    last_class = -1;
    running = false;
    ready = Hashtbl.create 16;
    discarded = Hashtbl.create 16;
    expected = 0;
  }

let ensure_seq t seq =
  let cap = Array.length t.seq_owner in
  if seq >= cap then begin
    let ncap = ref (cap * 2) in
    while seq >= !ncap do
      ncap := !ncap * 2
    done;
    let nown = Array.make !ncap (-1) in
    Array.blit t.seq_owner 0 nown 0 cap;
    t.seq_owner <- nown
  end

let drop_live t (mi : mi) =
  t.live_mis <- List.filter (fun m -> m != mi) t.live_mis

(* Collect the sequences still owned by [mi] (its losses), releasing
   ownership as they are visited so a duplicate in [sent_list] cannot
   be collected twice. *)
let take_owned t (mi : mi) =
  let owned = ref [] in
  for k = 0 to mi.sent_len - 1 do
    let seq = mi.sent_list.(k) in
    if t.seq_owner.(seq) = mi.mi_id then begin
      t.seq_owner.(seq) <- -1;
      owned := seq :: !owned
    end
  done;
  mi.sent_len <- 0;
  mi.unresolved <- 0;
  !owned

let rtt_estimate t = t.rtt_est
let current_mi_id t = match t.current with Some mi -> mi.mi_id | None -> -1
let set_trace_id t id = t.trace_id <- id

let current_rate t = match t.current with Some mi -> mi.mi_rate | None -> 0.

let mi_duration t rate =
  let send_time =
    float_of_int (t.cfg.min_pkts * Units.mss * 8) /. Float.max rate 1.
  in
  let rtt_mult =
    if t.cfg.rtt_lo >= t.cfg.rtt_hi then t.cfg.rtt_lo
    else Rng.uniform t.rng t.cfg.rtt_lo t.cfg.rtt_hi
  in
  (* The 10-packet floor exists so loss estimates have samples, but at
     very low rates it would stretch an MI to many RTTs and make startup
     doubling far slower than TCP slow start (hurting short-flow FCT,
     which §4.3.2 shows staying close to TCP's). Cap the stretch at 4
     RTTs; the confidence-bound loss estimate covers the smaller sample. *)
  let send_time = Float.min send_time (4. *. t.rtt_est) in
  Float.max send_time (rtt_mult *. t.rtt_est)

let release_ready t =
  let continue = ref true in
  while !continue do
    if Hashtbl.mem t.discarded t.expected then begin
      Hashtbl.remove t.discarded t.expected;
      t.expected <- t.expected + 1
    end
    else begin
      match Hashtbl.find_opt t.ready t.expected with
      | Some r ->
        Hashtbl.remove t.ready t.expected;
        t.expected <- t.expected + 1;
        t.last_avg_rtt <-
          (match r.avg_rtt with Some _ as v -> v | None -> t.last_avg_rtt);
        t.on_result r
      | None -> continue := false
    end
  done

(* Evaluate a closed MI. Packets still unresolved at this point (only
   possible on the fallback path) count as lost. *)
let evaluate t (mi : mi) =
  mi.evaluated <- true;
  (match mi.fallback with
  | Some timer ->
    Engine.cancel timer;
    mi.fallback <- None
  | None -> ());
  let losses = take_owned t mi in
  drop_live t mi;
  let duration = Float.max (mi.close_time -. mi.start) 1e-9 in
  let loss =
    if mi.sent_pkts = 0 then 0.
    else 1. -. (float_of_int mi.acked_pkts /. float_of_int mi.sent_pkts)
  in
  let avg_rtt =
    if mi.rtt_cnt = 0 then None else Some (mi.rtt_sum /. float_of_int mi.rtt_cnt)
  in
  let throughput = float_of_int (mi.acked_bytes * 8) /. duration in
  let prev_avg_rtt = t.last_avg_rtt in
  let rtt_for_utility =
    match avg_rtt with Some v -> v | None -> t.rtt_est
  in
  let prev_rtt_for_utility =
    match prev_avg_rtt with Some v -> v | None -> rtt_for_utility
  in
  let rtt_early =
    if mi.rtt_early_cnt = 0 then rtt_for_utility
    else mi.rtt_early_sum /. float_of_int mi.rtt_early_cnt
  in
  let rtt_late =
    if mi.rtt_late_cnt = 0 then rtt_for_utility
    else mi.rtt_late_sum /. float_of_int mi.rtt_late_cnt
  in
  let metrics =
    Utility.
      {
        rate = mi.mi_rate;
        throughput;
        loss;
        samples = mi.sent_pkts;
        avg_rtt = rtt_for_utility;
        prev_avg_rtt = prev_rtt_for_utility;
        rtt_early;
        rtt_late;
        min_rtt =
          (if t.rtt_min < Float.infinity then t.rtt_min
           else rtt_for_utility);
        rtt_samples = mi.rtt_cnt;
        prev_class = t.last_class;
      }
  in
  let result =
    {
      id = mi.mi_id;
      rate = mi.mi_rate;
      start_time = mi.start;
      duration;
      sent_pkts = mi.sent_pkts;
      acked_pkts = mi.acked_pkts;
      sent_bytes = mi.sent_bytes;
      acked_bytes = mi.acked_bytes;
      loss;
      avg_rtt;
      prev_avg_rtt;
      utility = t.utility.Utility.eval metrics;
    }
  in
  if Pcc_trace.Collector.enabled () then
    Pcc_trace.Collector.emit Pcc_trace.Event.Mi_end
      ~time:(Engine.now t.engine) ~id:t.trace_id ~a:result.utility ~b:loss
      ~i:mi.mi_id;
  (* Class-switching utilities (Proteus): trace the moment the class in
     force changes, e.g. a scavenger flipping from probing to yielding. *)
  (match t.utility.Utility.classify with
  | Some classify ->
    let cls = classify metrics in
    if t.last_class >= 0 && cls <> t.last_class then
      if Pcc_trace.Collector.enabled () then
        Pcc_trace.Collector.emit Pcc_trace.Event.Utility_switch
          ~time:(Engine.now t.engine) ~id:t.trace_id
          ~a:(float_of_int cls)
          ~b:(float_of_int t.last_class)
          ~i:mi.mi_id;
    t.last_class <- cls
  | None -> ());
  if losses <> [] then t.on_mi_losses (List.sort compare losses);
  Hashtbl.replace t.ready result.id result;
  release_ready t

let maybe_evaluate t (mi : mi) =
  if mi.closed && (not mi.evaluated) && mi.unresolved = 0 then evaluate t mi

let close_mi t (mi : mi) =
  (match mi.rollover with
  | Some timer ->
    Engine.cancel timer;
    mi.rollover <- None
  | None -> ());
  mi.close_time <- Engine.now t.engine;
  mi.closed <- true;
  if mi.unresolved = 0 then evaluate t mi
  else begin
    (* Normally every packet resolves through SACK feedback (ack or gap
       detection) about one RTT after the close. The fallback timer only
       fires when feedback dries up entirely — e.g. every remaining packet
       and its successors were lost — and then counts the rest as lost. *)
    let wait =
      (t.cfg.eval_margin *. Float.max t.rtt_est t.rtt_latest) +. 0.002
    in
    (* Before the first RTT sample the estimate is only a configuration
       guess; do not let a low guess declare unacked packets lost. *)
    let wait = if t.have_rtt then wait else Float.max wait 1.0 in
    mi.fallback <-
      Some
        (Engine.schedule_in t.engine ~after:wait (fun () ->
             mi.fallback <- None;
             if not mi.evaluated then evaluate t mi))
  end

let rec open_mi t =
  if t.running then begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let rate = t.rate_for_mi ~id in
    let now = Engine.now t.engine in
    let mi =
      {
        mi_id = id;
        mi_rate = rate;
        start = now;
        close_time = now;
        closed = false;
        evaluated = false;
        rollover = None;
        fallback = None;
        sent_pkts = 0;
        sent_bytes = 0;
        acked_pkts = 0;
        acked_bytes = 0;
        rtt_sum = 0.;
        rtt_cnt = 0;
        planned_dur = 0.;
        rtt_early_sum = 0.;
        rtt_early_cnt = 0;
        rtt_late_sum = 0.;
        rtt_late_cnt = 0;
        sent_list = Array.make 64 0;
        sent_len = 0;
        unresolved = 0;
      }
    in
    t.live_mis <- mi :: t.live_mis;
    let duration = mi_duration t rate in
    mi.planned_dur <- duration;
    if Pcc_trace.Collector.enabled () then
      Pcc_trace.Collector.emit Pcc_trace.Event.Mi_start ~time:now
        ~id:t.trace_id ~a:rate ~b:duration ~i:id;
    mi.rollover <-
      Some
        (Engine.schedule_in t.engine ~after:duration (fun () ->
             mi.rollover <- None;
             (* Guard: a realign may already have replaced this MI. *)
             match t.current with
             | Some cur when cur == mi ->
               t.current <- None;
               close_mi t mi;
               open_mi t
             | Some _ | None -> ()));
    t.current <- Some mi
  end

let start t =
  if not t.running then begin
    t.running <- true;
    open_mi t
  end

let stop t =
  t.running <- false;
  match t.current with
  | Some mi ->
    t.current <- None;
    close_mi t mi
  | None -> ()

(* §3.1's re-alignment: the rate just changed, so the partially elapsed MI
   no longer measures a single (rate, utility) pair. Its fragment is
   discarded — packets already charged to it stop being monitored — and a
   fresh MI opens at the new rate. *)
let discard_mi t (mi : mi) =
  (match mi.rollover with
  | Some timer ->
    Engine.cancel timer;
    mi.rollover <- None
  | None -> ());
  mi.evaluated <- true;
  ignore (take_owned t mi);
  drop_live t mi;
  Hashtbl.replace t.discarded mi.mi_id ();
  if Pcc_trace.Collector.enabled () then
    Pcc_trace.Collector.emit Pcc_trace.Event.Mi_discard
      ~time:(Engine.now t.engine) ~id:t.trace_id ~a:0. ~b:0. ~i:mi.mi_id;
  release_ready t

let realign t =
  match t.current with
  | Some mi ->
    t.current <- None;
    discard_mi t mi;
    open_mi t
  | None -> if t.running then open_mi t

let on_send t ~seq ~size =
  match t.current with
  | None -> ()
  | Some mi ->
    mi.sent_pkts <- mi.sent_pkts + 1;
    mi.sent_bytes <- mi.sent_bytes + size;
    ensure_seq t seq;
    if t.seq_owner.(seq) <> mi.mi_id then mi.unresolved <- mi.unresolved + 1;
    t.seq_owner.(seq) <- mi.mi_id;
    if mi.sent_len >= Array.length mi.sent_list then begin
      let nlist = Array.make (2 * mi.sent_len) 0 in
      Array.blit mi.sent_list 0 nlist 0 mi.sent_len;
      mi.sent_list <- nlist
    end;
    mi.sent_list.(mi.sent_len) <- seq;
    mi.sent_len <- mi.sent_len + 1

let on_ack t ~seq ~rtt ~size =
  (match rtt with
  | Some sample ->
    t.rtt_latest <- sample;
    if sample < t.rtt_min then t.rtt_min <- sample;
    if t.have_rtt then t.rtt_est <- (0.9 *. t.rtt_est) +. (0.1 *. sample)
    else begin
      t.rtt_est <- sample;
      t.have_rtt <- true
    end
  | None -> ());
  let owner =
    if seq < Array.length t.seq_owner then t.seq_owner.(seq) else -1
  in
  match
    if owner < 0 then None
    else List.find_opt (fun m -> m.mi_id = owner) t.live_mis
  with
  | None -> ()
  | Some mi ->
    begin
      t.seq_owner.(seq) <- -1;
      mi.unresolved <- mi.unresolved - 1;
      mi.acked_pkts <- mi.acked_pkts + 1;
      mi.acked_bytes <- mi.acked_bytes + size;
      (match rtt with
      | Some sample ->
        mi.rtt_sum <- mi.rtt_sum +. sample;
        mi.rtt_cnt <- mi.rtt_cnt + 1;
        (* Attribute the sample to the MI's first or last quarter (by the
           data packet's send time relative to the planned duration) so
           the latency utility can read the within-MI RTT trend. *)
        let now = Engine.now t.engine in
        let sent_at = now -. sample in
        if sent_at < mi.start +. (0.25 *. mi.planned_dur) then begin
          mi.rtt_early_sum <- mi.rtt_early_sum +. sample;
          mi.rtt_early_cnt <- mi.rtt_early_cnt + 1
        end
        else if sent_at >= mi.start +. (0.75 *. mi.planned_dur) then begin
          mi.rtt_late_sum <- mi.rtt_late_sum +. sample;
          mi.rtt_late_cnt <- mi.rtt_late_cnt + 1
        end
      | None -> ());
      maybe_evaluate t mi
    end

(* A sequence was declared lost by the sender's SACK-gap detection:
   resolve it in its owning MI (the loss is already implicit in
   sent - acked; resolution just lets the MI evaluate promptly). *)
let on_lost t ~seq =
  let owner =
    if seq < Array.length t.seq_owner then t.seq_owner.(seq) else -1
  in
  match
    if owner < 0 then None
    else List.find_opt (fun m -> m.mi_id = owner) t.live_mis
  with
  | None -> ()
  | Some mi ->
    t.seq_owner.(seq) <- -1;
    mi.unresolved <- mi.unresolved - 1;
    maybe_evaluate t mi
