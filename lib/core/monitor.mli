(** The performance-monitoring module of §3.1.

    Slices the timeline into monitor intervals (MIs). Every data packet the
    sender emits is charged to the MI open at that instant; as SACKs come
    back the monitor aggregates them, and one RTT (plus margin) after an MI
    closes it is evaluated: throughput, loss rate and average RTT over
    exactly the packets sent within it. Results are delivered to the
    control module strictly in MI order.

    MI length follows the paper: the maximum of (a) the time to send
    [min_pkts] packets at the MI's rate and (b) a uniformly random multiple
    in [[rtt_lo, rtt_hi]] of the current RTT estimate (default [1.7,2.2]);
    randomization avoids phase-locking with periodic network events. When
    the controller changes rate mid-MI, {!realign} restarts the MI at the
    new rate (the optimization described at the end of §3.1). *)

type result = {
  id : int;  (** MI sequence number, starting at 0. *)
  rate : float;  (** Target rate during the MI, bits/s. *)
  start_time : float;
  duration : float;  (** Actual open interval length, s. *)
  sent_pkts : int;
  acked_pkts : int;
  sent_bytes : int;
  acked_bytes : int;
  loss : float;  (** 1 − acked/sent; 0 for an empty MI. *)
  avg_rtt : float option;  (** Mean RTT sample over the MI's acks. *)
  prev_avg_rtt : float option;
  utility : float;  (** Filled by the monitor via its utility function. *)
}

type config = {
  min_pkts : int;  (** MI must cover at least this many packets (10). *)
  rtt_lo : float;  (** Lower RTT multiple for MI length (1.7). *)
  rtt_hi : float;  (** Upper RTT multiple (2.2). *)
  eval_margin : float;
      (** Fallback deadline, in RTT multiples past the MI close, after
          which unresolved packets are declared lost (2.0). Normally every
          packet resolves earlier through acks or gap detection. *)
  initial_rtt : float;  (** RTT estimate before any sample (0.05 s). *)
}

val default_config : config

type t

val create :
  Pcc_sim.Engine.t ->
  config ->
  rng:Pcc_sim.Rng.t ->
  utility:Utility.t ->
  rate_for_mi:(id:int -> float) ->
  on_result:(result -> unit) ->
  on_mi_losses:(int list -> unit) ->
  t
(** [rate_for_mi] is consulted each time a new MI opens — this is how the
    controller drives the rate plan. [on_result] receives evaluated MIs in
    id order. [on_mi_losses] reports sequence numbers still unacknowledged
    at evaluation time (the sender retransmits them). *)

val start : t -> unit
(** Open MI 0 at the current time. *)

val stop : t -> unit
(** Stop opening MIs; pending ones still evaluate. *)

val on_send : t -> seq:int -> size:int -> unit
(** Charge one transmitted data packet to the current MI. *)

val on_ack : t -> seq:int -> rtt:float option -> size:int -> unit
(** Credit an acknowledged packet to whichever pending MI sent it
    (duplicate acks for the same seq are counted once). *)

val on_lost : t -> seq:int -> unit
(** Resolve a packet the sender's SACK-gap detection declared lost, so
    its MI can evaluate without waiting for the fallback deadline. *)

val realign : t -> unit
(** Close the current MI immediately and open a fresh one (rate change). *)

val current_rate : t -> float
(** Rate of the currently open MI. *)

val rtt_estimate : t -> float
(** EWMA of RTT samples, used for MI sizing and evaluation deadlines. *)

val current_mi_id : t -> int

val set_trace_id : t -> int -> unit
(** Set the flow id the monitor stamps on its trace records (MI open /
    result / discard, see [Pcc_trace]); default [-1]. The PCC sender
    sets it to its packet flow id right after wiring. *)
