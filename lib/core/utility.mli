(** Utility functions: the objective a PCC sender optimizes.

    A monitor interval's packet-level events are aggregated into
    {!metrics}; a utility function collapses them into one number. PCC's
    control loop only ever compares utilities of different rates, so
    utilities are scale-free — we evaluate rates in Mbps to keep the
    magnitudes readable.

    The paper proves convergence for {!safe} and demonstrates two
    alternates enabled by fair queuing: {!loss_resilient} (§4.4.2) and
    {!latency} (§4.4.1). Applications can also supply their own. *)

type metrics = {
  rate : float;  (** The sending rate tested during the MI, bits/s. *)
  throughput : float;  (** Acknowledged goodput over the MI, bits/s. *)
  loss : float;  (** Fraction of the MI's packets lost, in [0,1]. *)
  samples : int;  (** Packets sent in the MI (the loss sample size). *)
  avg_rtt : float;  (** Mean RTT of the MI's acknowledged packets, s. *)
  prev_avg_rtt : float;  (** Same, for the preceding MI. *)
  rtt_early : float;  (** Mean of the MI's first few RTT samples. *)
  rtt_late : float;  (** Mean of the MI's last few RTT samples. *)
  min_rtt : float;
      (** Minimum RTT observed over the connection's lifetime — the
          monitor's estimate of the un-queued path RTT. [avg_rtt]
          elevated over it means a standing queue at the bottleneck. *)
  rtt_samples : int;
      (** RTT samples actually taken in the MI. [0] means every RTT
          statistic above is an estimator fallback, not a measurement
          (e.g. all of the MI's acks were for retransmissions, which
          carry no sample under Karn's rule). *)
  prev_class : int;
      (** The utility class in force for the previous evaluated MI, or
          [-1] before any (and always [-1] for single-class utilities).
          Maintained by the monitor; lets class-switching utilities
          implement hysteresis while staying pure functions. *)
}

type t = {
  name : string;
  eval : metrics -> float;  (** Higher is better. *)
  classify : (metrics -> int) option;
      (** For class-switching utilities (Proteus): map an MI's metrics to
          the utility class in force for that MI. [None] for single-class
          utilities. The monitor traces class changes as
          [Utility_switch] events; classes are small ints
          ({!class_probe}, {!class_yield}). *)
}

val safe :
  ?alpha:float -> ?loss_threshold:float -> ?conservative:bool -> unit -> t
(** §2.2's provably-convergent default:
    [u = T·Sigmoid_α(L − 0.05) − x·L] with [Sigmoid_α(y) = 1/(1+e^{αy})].
    The sigmoid caps the equilibrium loss rate near [loss_threshold]
    (default 0.05); [alpha] defaults to 100, satisfying Theorem 1's
    [α ≥ max(2.2(n−1), 100)] for up to ~46 senders.

    With [conservative] (the default), the sigmoid's loss argument is the
    one-standard-error lower confidence bound of the measured loss rate,
    so a single unlucky drop in a 10-packet monitor interval does not
    read as a 10% loss rate and trip the cut-off — §2.1's noisy-decision
    problem. The [−x·L] term always uses the raw measurement, and the
    bound converges to it as intervals grow, so the equilibrium of
    Theorem 1 is unchanged. Pass [~conservative:false] for the paper's
    literal formula (the ablation benchmark compares both). *)

val loss_resilient : unit -> t
(** §4.4.2: [u = T·(1 − L)] — keeps pushing at its fair share under
    arbitrary random loss. Safe only behind per-flow fair queuing. *)

val latency : ?alpha:float -> ?loss_threshold:float -> unit -> t
(** §4.4.1's interactive-flow objective:
    [u = (T·Sigmoid_α(L−0.05)·(RTT_early/RTT_late) − x·L)/RTT_avg] —
    maximizes power (throughput/delay) and penalizes RTT growth. The
    paper writes the growth factor as RTTₙ₋₁/RTTₙ across MIs; we measure
    it within the MI (early/late samples), which attributes queue growth
    to the rate that caused it — see DESIGN.md. *)

val simple : unit -> t
(** The didactic starting point of §2.1, [u = T − x·L]; included for the
    ablation benchmark of the sigmoid cut-off (its equilibrium loss rate
    degrades as senders multiply). *)

val vivace :
  ?exponent:float -> ?latency_coeff:float -> ?loss_coeff:float -> unit -> t
(** The paper's "better learning algorithm" future-work direction, as
    later published in PCC Vivace (NSDI 2018):
    [u = x^t − b·x·(dRTT/dt)⁺ − c·x·L] with the defaults t=0.9, b=900,
    c=11.35 from that paper. The strictly concave rate term gives a
    well-defined gradient everywhere (no sigmoid cliff) and the RTT
    gradient term reacts before queues fill. Included as a
    forward-compatible objective; the reproduction benchmarks all use
    {!safe}. *)

(** {1 Proteus utility classes}

    PCC Proteus (SIGCOMM 2020) selects a utility class per flow. A
    {e primary} competes for its share like Vivace; a {e scavenger}
    probes only while the path is uncongested and flips to a
    monotone-decreasing "yield" objective the moment RTT inflation or
    loss says a primary is present, so the gradient controller walks it
    down and the primary keeps the bottleneck; a {e hybrid} defends a
    floor rate like a primary and scavenges the surplus. *)

val class_probe : int
(** Class code: probing for bandwidth (the default class). *)

val class_suspect : int
(** Class code: a congested MI was seen recently while probing; a second
    congested MI while suspect confirms the yield
    ({!proteus_scavenger}'s entry debounce). Suspicion spans two class
    codes ([class_suspect] and [class_suspect + 1]) encoding its age — a
    fresh suspect survives one clean MI before decaying back to
    {!class_probe}. Evaluated with the probing objective. *)

val class_yield : int
(** Class code: yielding to a competing primary. Every class
    [>= class_yield] is a yield state: a confirmed yield starts several
    steps above [class_yield] and counts down one per clean MI, so the
    class value encodes the remaining clean-streak length required
    before probing resumes (see {!proteus_scavenger}). *)

val proteus_primary :
  ?exponent:float -> ?latency_coeff:float -> ?loss_coeff:float -> unit -> t
(** The Vivace objective with an aggressive latency coefficient
    ([latency_coeff] defaults to 10 rather than Vivace's 900): a primary
    keeps pressing through queue growth that makes a {!proteus_scavenger}
    cede — Proteus orders its utility classes by aggressiveness, and the
    scavenger's congestion sentinel can only detect a competitor that
    out-ranks it. Single-class ([classify = None]). *)

val proteus_scavenger :
  ?exponent:float ->
  ?latency_coeff:float ->
  ?loss_coeff:float ->
  ?rtt_slope:float ->
  ?loss_cut:float ->
  ?yield_floor:float ->
  unit ->
  t
(** Scavenger: the Vivace objective while the path is clean; once two
    MIs within a three-MI window show the within-MI RTT slope above
    [rtt_slope] (default 0.005 s/s) or the loss lower confidence bound
    above [loss_cut] (default 0.015), the utility becomes steeply
    decreasing in rate so every gradient step down is a full
    change-boundary back-off and the flow collapses to [yield_floor]
    (default 2 Mbps), below which the yield objective is flat and the
    descent parks.

    Both transitions are debounced via [metrics.prev_class]. Entry takes
    two congested MIs with at most one clean MI between them: at a
    saturated bottleneck the controller's own −ε probe half dips the
    link below capacity and reads clean, so a strict two-in-a-row rule
    would never confirm against a competing primary, while the solo
    hovering signature ([+ε congested; −ε clean; base clean]) decays
    back to probing without a yield. Exit is a clean-streak
    countdown encoded in the class value: probing resumes only after
    several consecutive MIs with no congestion signal {e and} no
    standing queue ([avg_rtt] within 10% of [min_rtt]); any hot MI
    resets the streak. A competing primary holds a standing queue even
    when the RTT slope reads flat, so the scavenger stays pinned at its
    minimum rate for the primary's lifetime, while a false self-yield
    on an otherwise empty link drains within an MI or two and exits
    cheaply. *)

val proteus_hybrid :
  ?floor_rate:float ->
  ?exponent:float ->
  ?latency_coeff:float ->
  ?loss_coeff:float ->
  ?rtt_slope:float ->
  ?loss_cut:float ->
  unit ->
  t
(** Hybrid: primary behaviour at or below [floor_rate] (default 2 Mbps),
    scavenger behaviour above it — the flow defends a minimum rate and
    scavenges any surplus. *)

val custom : name:string -> (metrics -> float) -> t
(** Escape hatch for application-defined objectives. *)
