(** A complete PCC transport endpoint (Fig. 2 of the paper).

    Wires together the sending module (a rate pacer), the monitor module,
    the utility function and the performance-oriented control module, plus
    the reliability scoreboard shared with the other rate-based
    transports. Data flows continuously: the pacer emits packets at the
    controller's rate, the monitor charges them to monitor intervals and
    aggregates the returning SACKs, evaluated intervals feed the
    controller, and the controller's rate changes re-align the monitor and
    retune the pacer. *)

type config = {
  controller : Controller.config;
  monitor : Monitor.config;
  utility : Utility.t;
}

val default_config : config
(** Paper defaults: safe utility, ε ∈ [0.01, 0.05] with RCT, MI of
    max(10 pkts, U[1.7,2.2]·RTT). *)

val config_with :
  ?utility:Utility.t ->
  ?rct:bool ->
  ?eps_min:float ->
  ?eps_max:float ->
  ?mi_rtt:float * float ->
  ?init_rate:float ->
  ?algorithm:Controller.algorithm ->
  unit ->
  config
(** Convenience for experiment sweeps over the interesting knobs. *)

type t

val create :
  Pcc_sim.Engine.t ->
  ?config:config ->
  ?size:int ->
  ?on_complete:(float -> unit) ->
  rng:Pcc_sim.Rng.t ->
  out:(Pcc_net.Packet.t -> unit) ->
  unit ->
  t
(** [create engine ~rng ~out ()] is a PCC sender pushing packets into
    [out]. [size] bounds the transfer in bytes; [on_complete] fires when
    the last byte is cumulatively acknowledged. *)

val sender : t -> Pcc_net.Sender.t
(** The uniform transport interface for the scenario harness. *)

(** {1 Introspection} *)

val controller : t -> Controller.t
val monitor : t -> Monitor.t
val current_rate : t -> float
(** The controller's base rate, bits/s. *)
