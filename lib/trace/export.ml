(* Exporters renumber raw ids densely by first appearance so that two
   seeded runs in the same process (whose process-global flow/link
   counters have advanced) still render byte-identical artifacts. *)

type renumber = {
  get : Event.scope -> int -> int * bool;  (* dense id, seen before *)
  label : Event.scope -> int -> string;
}

let make_renumber c =
  let table : (Event.scope * int, int) Hashtbl.t = Hashtbl.create 16 in
  let counters : (Event.scope, int) Hashtbl.t = Hashtbl.create 4 in
  let get scope raw =
    match Hashtbl.find_opt table (scope, raw) with
    | Some d -> (d, true)
    | None ->
      let d =
        match Hashtbl.find_opt counters scope with Some n -> n | None -> 0
      in
      Hashtbl.replace counters scope (d + 1);
      Hashtbl.replace table (scope, raw) d;
      (d, false)
  in
  let label scope raw =
    let d, _ = get scope raw in
    let generic =
      match scope with
      | Event.Flow_scope -> "flow"
      | Event.Link_scope -> "link"
      | Event.Engine_scope -> "engine"
    in
    match Collector.name c scope raw with
    | Some n -> Printf.sprintf "%s#%d" n d
    | None -> Printf.sprintf "%s#%d" generic d
  in
  { get; label }

(* A sharded run records events in barrier-window execution order: each
   engine drains its own window in turn, so records from different shards
   interleave non-chronologically (though still time-sorted per shard).
   Sorting the full record — every field, not just the timestamp — gives
   one canonical order that is independent of the shard count, which is
   what lets CI [cmp] a 1-shard trace against a 4-shard one. The sort is
   stable, so fully identical records cannot reorder, and renumbering by
   first appearance stays deterministic because it runs on the sorted
   stream. *)
let ordered_events ~canonical c =
  if not canonical then Collector.events c
  else begin
    let evs = Array.copy (Collector.events c) in
    let key (e : Event.record) = (e.time, e.kind, e.id, e.a, e.b, e.i) in
    Array.stable_sort (fun x y -> compare (key x) (key y)) evs;
    evs
  end

(* Fixed float formats keep artifacts byte-stable; non-finite values
   (a utility of -inf from a zero-throughput log term) must not produce
   invalid JSON. *)
let num v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

let ts time = Printf.sprintf "%.3f" (time *. 1e6)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON *)

let chrome_json ?(canonical = false) c =
  let events = ordered_events ~canonical c in
  let r = make_renumber c in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let first = ref true in
  let entry s =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf s
  in
  entry
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"engine\"}}";
  entry
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"flows\"}}";
  entry
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"args\":{\"name\":\"links\"}}";
  (* Metadata has no timestamp, so announcing a thread lazily — at the
     subject's first event — keeps file order deterministic. *)
  let announce scope raw =
    let dense, seen = r.get scope raw in
    (if not seen then
       let pid =
         match scope with
         | Event.Flow_scope -> 1
         | Event.Link_scope -> 2
         | Event.Engine_scope -> 0
       in
       entry
         (Printf.sprintf
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
            pid dense (r.label scope raw)));
    dense
  in
  Array.iter
    (fun (e : Event.record) ->
      let t = ts e.time in
      match e.kind with
      | Event.Dispatch ->
        entry
          (Printf.sprintf
             "{\"name\":\"pending\",\"cat\":\"engine\",\"ph\":\"C\",\"pid\":0,\"ts\":%s,\"args\":{\"events\":%s}}"
             t (num e.a))
      | Event.Enqueue ->
        let _ = announce Event.Link_scope e.id in
        entry
          (Printf.sprintf
             "{\"name\":\"queue:%s\",\"cat\":\"link\",\"ph\":\"C\",\"pid\":2,\"ts\":%s,\"args\":{\"bytes\":%s}}"
             (r.label Event.Link_scope e.id)
             t (num e.a))
      | Event.Drop ->
        let tid = announce Event.Link_scope e.id in
        (* The dropped packet's flow id is process-global too: renumber
           (and announce) it like any flow-scoped subject. *)
        let flow = announce Event.Flow_scope e.i in
        entry
          (Printf.sprintf
             "{\"name\":\"drop:%s\",\"cat\":\"link\",\"ph\":\"i\",\"s\":\"t\",\"pid\":2,\"tid\":%d,\"ts\":%s,\"args\":{\"flow\":%d}}"
             (r.label Event.Link_scope e.id)
             tid t flow)
      | Event.Queue_sample ->
        let _ = announce Event.Link_scope e.id in
        entry
          (Printf.sprintf
             "{\"name\":\"queue:%s\",\"cat\":\"link\",\"ph\":\"C\",\"pid\":2,\"ts\":%s,\"args\":{\"bytes\":%s,\"pkts\":%d}}"
             (r.label Event.Link_scope e.id)
             t (num e.a) e.i)
      | Event.Mi_start ->
        let tid = announce Event.Flow_scope e.id in
        entry
          (Printf.sprintf
             "{\"name\":\"MI %d\",\"cat\":\"pcc\",\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"args\":{\"mbps\":%s,\"planned_ms\":%s}}"
             e.i tid t
             (num (e.a /. 1e6))
             (num (e.b *. 1e3)))
      | Event.Mi_end ->
        let tid = announce Event.Flow_scope e.id in
        entry
          (Printf.sprintf
             "{\"name\":\"MI %d\",\"cat\":\"pcc\",\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"args\":{\"utility\":%s,\"loss\":%s}}"
             e.i tid t (num e.a) (num e.b))
      | Event.Mi_discard ->
        let tid = announce Event.Flow_scope e.id in
        entry
          (Printf.sprintf
             "{\"name\":\"MI %d\",\"cat\":\"pcc\",\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"args\":{\"discarded\":1}}"
             e.i tid t)
      | Event.Rate_change ->
        let _ = announce Event.Flow_scope e.id in
        entry
          (Printf.sprintf
             "{\"name\":\"rate:%s\",\"cat\":\"pcc\",\"ph\":\"C\",\"pid\":1,\"ts\":%s,\"args\":{\"mbps\":%s}}"
             (r.label Event.Flow_scope e.id)
             t
             (num (e.a /. 1e6)))
      | Event.Cwnd ->
        let _ = announce Event.Flow_scope e.id in
        entry
          (Printf.sprintf
             "{\"name\":\"cwnd:%s\",\"cat\":\"tcp\",\"ph\":\"C\",\"pid\":1,\"ts\":%s,\"args\":{\"pkts\":%s}}"
             (r.label Event.Flow_scope e.id)
             t (num e.a))
      | Event.Gradient_step ->
        let tid = announce Event.Flow_scope e.id in
        entry
          (Printf.sprintf
             "{\"name\":\"gradient\",\"cat\":\"pcc\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"args\":{\"gamma\":%s,\"mbps\":%s,\"dir\":\"%s\",\"amp\":%d,\"clamped\":%b}}"
             tid t (num e.a)
             (num (e.b /. 1e6))
             (if Event.gradient_up e.i then "up" else "down")
             (Event.gradient_amp e.i)
             (Event.gradient_clamped e.i))
      | Event.Utility_switch ->
        let tid = announce Event.Flow_scope e.id in
        entry
          (Printf.sprintf
             "{\"name\":\"utility-switch\",\"cat\":\"pcc\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"args\":{\"to\":%s,\"from\":%s,\"mi\":%d}}"
             tid t (num e.a) (num e.b) e.i)
      | Event.Flow_start | Event.Flow_stop | Event.Flow_complete ->
        let tid = announce Event.Flow_scope e.id in
        let name =
          match e.kind with
          | Event.Flow_start -> "start"
          | Event.Flow_stop -> "stop"
          | _ -> "complete"
        in
        let args =
          match e.kind with
          | Event.Flow_complete -> Printf.sprintf "{\"fct_s\":%s}" (num e.a)
          | _ -> "{}"
        in
        entry
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"args\":%s}"
             name tid t args))
    events;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write_chrome_json ?(canonical = false) ~path c =
  write_file path (chrome_json ~canonical c)

(* ------------------------------------------------------------------ *)
(* Decision log *)

let decision_log ?(canonical = false) c =
  let events = ordered_events ~canonical c in
  let r = make_renumber c in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  Array.iter
    (fun (e : Event.record) ->
      match e.kind with
      | Event.Mi_start ->
        line "t=%.9f %s mi %d open rate=%s Mbps planned=%s ms\n" e.time
          (r.label Event.Flow_scope e.id)
          e.i
          (num (e.a /. 1e6))
          (num (e.b *. 1e3))
      | Event.Mi_end ->
        line "t=%.9f %s mi %d result utility=%s loss=%.4f\n" e.time
          (r.label Event.Flow_scope e.id)
          e.i (num e.a) e.b
      | Event.Mi_discard ->
        line "t=%.9f %s mi %d discarded (realign)\n" e.time
          (r.label Event.Flow_scope e.id)
          e.i
      | Event.Rate_change ->
        let phase =
          match Event.rate_phase e.i with
          | 0 -> "starting"
          | 1 -> "decision"
          | _ -> "adjusting"
        in
        let step = Event.rate_step e.i in
        let dir = if e.a >= e.b then "up" else "down" in
        line "t=%.9f %s rate %s -> %s Mbps (%s%s, %s)\n" e.time
          (r.label Event.Flow_scope e.id)
          (num (e.b /. 1e6))
          (num (e.a /. 1e6))
          phase
          (if step > 0 then Printf.sprintf " step %d" step else "")
          dir
      | Event.Flow_start ->
        line "t=%.9f %s start\n" e.time (r.label Event.Flow_scope e.id)
      | Event.Flow_stop ->
        line "t=%.9f %s stop\n" e.time (r.label Event.Flow_scope e.id)
      | Event.Flow_complete ->
        line "t=%.9f %s complete fct=%s s\n" e.time
          (r.label Event.Flow_scope e.id)
          (num e.a)
      | Event.Gradient_step ->
        line "t=%.9f %s gradient %s -> %s Mbps (%s, m=%d%s)\n" e.time
          (r.label Event.Flow_scope e.id)
          (num e.a)
          (num (e.b /. 1e6))
          (if Event.gradient_up e.i then "up" else "down")
          (Event.gradient_amp e.i)
          (if Event.gradient_clamped e.i then ", clamped" else "")
      | Event.Utility_switch ->
        line "t=%.9f %s utility class %s -> %s (mi %d)\n" e.time
          (r.label Event.Flow_scope e.id)
          (num e.b) (num e.a) e.i
      | Event.Dispatch | Event.Enqueue | Event.Drop | Event.Queue_sample
      | Event.Cwnd ->
        ())
    events;
  Buffer.contents buf

let write_decision_log ?(canonical = false) ~path c =
  write_file path (decision_log ~canonical c)

(* ------------------------------------------------------------------ *)
(* CSV time series *)

let csv_series ?(canonical = false) c =
  let events = ordered_events ~canonical c in
  let r = make_renumber c in
  let series : (string, (float * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  let push name point =
    (match Hashtbl.find_opt series name with
    | Some l -> l := point :: !l
    | None ->
      Hashtbl.replace series name (ref [ point ]);
      order := name :: !order)
  in
  Array.iter
    (fun (e : Event.record) ->
      match e.kind with
      | Event.Rate_change ->
        push
          ("rate:" ^ r.label Event.Flow_scope e.id)
          (e.time, e.a /. 1e6)
      | Event.Mi_end ->
        push ("utility:" ^ r.label Event.Flow_scope e.id) (e.time, e.a)
      | Event.Cwnd ->
        push ("cwnd:" ^ r.label Event.Flow_scope e.id) (e.time, e.a)
      | Event.Enqueue | Event.Drop | Event.Queue_sample ->
        push ("queue:" ^ r.label Event.Link_scope e.id) (e.time, e.a)
      | Event.Gradient_step ->
        push ("gradient:" ^ r.label Event.Flow_scope e.id) (e.time, e.a)
      | Event.Dispatch | Event.Mi_start | Event.Mi_discard
      | Event.Flow_start | Event.Flow_stop | Event.Flow_complete
      | Event.Utility_switch ->
        ())
    events;
  List.rev_map
    (fun name ->
      let l = !(Hashtbl.find series name) in
      (name, Array.of_list (List.rev l)))
    !order
