type t = {
  cap : int;
  mask : int;
  probe_dt : float;
  mutable total : int;  (* events accepted over the collector's lifetime *)
  times : float array;
  kinds : int array;
  ids : int array;
  a : float array;
  b : float array;
  i : int array;
  names : (Event.scope * int, string) Hashtbl.t;
}

(* [hint] is the cross-domain fast-path gate: it only ever goes false ->
   true (when the first collector anywhere is installed), so a stale
   read in another domain merely skips the domain-local lookup a little
   longer. The authoritative state is the domain-local slot. *)
let hint = Atomic.make false
let key = Domain.DLS.new_key (fun () : t option ref -> ref None)

let create ?(capacity = 65536) ?(mask = Event.cat_default)
    ?(probe_interval = 0.01) () =
  if capacity <= 0 then
    invalid_arg "Collector.create: capacity must be positive";
  if probe_interval <= 0. then
    invalid_arg "Collector.create: probe_interval must be positive";
  if mask land Event.cat_all = 0 then
    invalid_arg "Collector.create: mask selects no category";
  {
    cap = capacity;
    mask;
    probe_dt = probe_interval;
    total = 0;
    times = Array.make capacity 0.;
    kinds = Array.make capacity 0;
    ids = Array.make capacity 0;
    a = Array.make capacity 0.;
    b = Array.make capacity 0.;
    i = Array.make capacity 0;
    names = Hashtbl.create 32;
  }

let slot () = Domain.DLS.get key

let install c =
  slot () := Some c;
  Atomic.set hint true

let uninstall () = slot () := None
let current () = !(slot ())
let enabled () = Atomic.get hint && !(slot ()) <> None
let wants c cat = c.mask land cat <> 0
let probe_interval c = c.probe_dt

let emit kind ~time ~id ~a ~b ~i =
  if Atomic.get hint then
    match !(slot ()) with
    | Some c when c.mask land Event.cat_of_kind kind <> 0 ->
      let pos = c.total mod c.cap in
      c.times.(pos) <- time;
      c.kinds.(pos) <- Event.int_of_kind kind;
      c.ids.(pos) <- id;
      c.a.(pos) <- a;
      c.b.(pos) <- b;
      c.i.(pos) <- i;
      c.total <- c.total + 1
    | Some _ | None -> ()

let register scope ~id name =
  if Atomic.get hint then
    match !(slot ()) with
    | Some c -> Hashtbl.replace c.names (scope, id) name
    | None -> ()

let name c scope id = Hashtbl.find_opt c.names (scope, id)
let capacity c = c.cap
let length c = min c.total c.cap
let emitted c = c.total
let dropped c = max 0 (c.total - c.cap)

let events c =
  let len = length c in
  let start = if c.total <= c.cap then 0 else c.total mod c.cap in
  Array.init len (fun k ->
      let pos = (start + k) mod c.cap in
      Event.
        {
          time = c.times.(pos);
          kind = Event.kind_of_int c.kinds.(pos);
          id = c.ids.(pos);
          a = c.a.(pos);
          b = c.b.(pos);
          i = c.i.(pos);
        })

let clear c = c.total <- 0

let link_ids = Atomic.make 0
let fresh_link_id () = Atomic.fetch_and_add link_ids 1
