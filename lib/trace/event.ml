type kind =
  | Dispatch
  | Enqueue
  | Drop
  | Queue_sample
  | Mi_start
  | Mi_end
  | Mi_discard
  | Rate_change
  | Cwnd
  | Flow_start
  | Flow_stop
  | Flow_complete
  | Gradient_step
  | Utility_switch

type scope = Engine_scope | Link_scope | Flow_scope

let scope_of_kind = function
  | Dispatch -> Engine_scope
  | Enqueue | Drop | Queue_sample -> Link_scope
  | Mi_start | Mi_end | Mi_discard | Rate_change | Cwnd | Flow_start
  | Flow_stop | Flow_complete | Gradient_step | Utility_switch ->
    Flow_scope

let cat_engine = 1
let cat_link = 2
let cat_pcc = 4
let cat_tcp = 8
let cat_flow = 16
let cat_all = cat_engine lor cat_link lor cat_pcc lor cat_tcp lor cat_flow
let cat_default = cat_all land lnot cat_engine

let cat_of_kind = function
  | Dispatch -> cat_engine
  | Enqueue | Drop | Queue_sample -> cat_link
  | Mi_start | Mi_end | Mi_discard | Rate_change | Gradient_step
  | Utility_switch ->
    cat_pcc
  | Cwnd -> cat_tcp
  | Flow_start | Flow_stop | Flow_complete -> cat_flow

let cat_of_string = function
  | "engine" -> Some cat_engine
  | "link" -> Some cat_link
  | "pcc" -> Some cat_pcc
  | "tcp" -> Some cat_tcp
  | "flow" -> Some cat_flow
  | "all" -> Some cat_all
  | "default" -> Some cat_default
  | _ -> None

let kind_name = function
  | Dispatch -> "dispatch"
  | Enqueue -> "enqueue"
  | Drop -> "drop"
  | Queue_sample -> "queue"
  | Mi_start -> "mi-start"
  | Mi_end -> "mi-end"
  | Mi_discard -> "mi-discard"
  | Rate_change -> "rate"
  | Cwnd -> "cwnd"
  | Flow_start -> "flow-start"
  | Flow_stop -> "flow-stop"
  | Flow_complete -> "flow-complete"
  | Gradient_step -> "gradient"
  | Utility_switch -> "utility-switch"

let all_kinds =
  [|
    Dispatch;
    Enqueue;
    Drop;
    Queue_sample;
    Mi_start;
    Mi_end;
    Mi_discard;
    Rate_change;
    Cwnd;
    Flow_start;
    Flow_stop;
    Flow_complete;
    Gradient_step;
    Utility_switch;
  |]

let int_of_kind = function
  | Dispatch -> 0
  | Enqueue -> 1
  | Drop -> 2
  | Queue_sample -> 3
  | Mi_start -> 4
  | Mi_end -> 5
  | Mi_discard -> 6
  | Rate_change -> 7
  | Cwnd -> 8
  | Flow_start -> 9
  | Flow_stop -> 10
  | Flow_complete -> 11
  | Gradient_step -> 12
  | Utility_switch -> 13

let kind_of_int n =
  if n < 0 || n >= Array.length all_kinds then
    invalid_arg (Printf.sprintf "Event.kind_of_int: %d" n);
  all_kinds.(n)

(* phase in the low 2 bits, step above. *)
let pack_rate_info ~phase ~step = (step lsl 2) lor (phase land 3)
let rate_phase packed = packed land 3
let rate_step packed = packed lsr 2

(* direction bit 0, boundary-clamp bit 1, confidence amplifier above. *)
let pack_gradient_info ~up ~clamped ~amp =
  (amp lsl 2) lor (if clamped then 2 else 0) lor (if up then 1 else 0)

let gradient_up packed = packed land 1 = 1
let gradient_clamped packed = packed land 2 = 2
let gradient_amp packed = packed lsr 2

type record = {
  time : float;
  kind : kind;
  id : int;
  a : float;
  b : float;
  i : int;
}
