(** Preallocated ring-buffer trace collector.

    A collector owns a fixed-capacity ring of typed event cells
    (structure-of-arrays, allocated once at {!create}) plus a small
    side table of human-readable names for flow and link ids. Emitting
    an event writes one cell — no allocation — and once the ring is
    full the oldest cells are overwritten, with the overwritten count
    reported by {!dropped}.

    {b Installation and the off fast path.} Instrumentation sites all
    over the simulator call {!emit} (or test {!enabled} first when
    computing the payload costs something). The collector those calls
    reach is per-domain state set by {!install}: the hot loops of
    engines running in other domains — the parallel experiment runner —
    see no collector and record nothing. When no collector was ever
    installed anywhere, {!enabled} is a single atomic load and branch;
    that is the whole cost tracing adds to an untraced run.

    {b Determinism.} Emission order is event-callback execution order
    and timestamps come from the engine clock, so for a fixed seed the
    cell stream is identical run to run. Raw flow and link ids come
    from process-global counters and are {e not} stable across runs in
    one process; exporters renumber them by first appearance, which
    restores byte-identical output (see [Export]). *)

type t

val create :
  ?capacity:int -> ?mask:int -> ?probe_interval:float -> unit -> t
(** [create ()] preallocates a ring of [capacity] cells (default
    65536). [mask] is the accepted-category bitmask (default
    [Event.cat_default]). [probe_interval] (default 0.01 s) is how
    often scenario layers should sample link-queue occupancy while this
    collector is installed.
    @raise Invalid_argument if [capacity <= 0], [probe_interval <= 0],
    or [mask] selects no category. *)

val install : t -> unit
(** Make [t] the current domain's collector. *)

val uninstall : unit -> unit
(** Clear the current domain's collector; {!emit} becomes a no-op
    again. *)

val current : unit -> t option
(** The collector installed in this domain, if any. *)

val enabled : unit -> bool
(** Cheap hint for instrumentation sites: [false] means no collector is
    installed in this domain and any payload computation can be
    skipped. A single atomic load plus (when some domain ever installed
    a collector) a domain-local lookup. *)

val wants : t -> int -> bool
(** [wants t cat] is whether the collector's mask accepts category
    [cat]. *)

val probe_interval : t -> float

val emit :
  Event.kind -> time:float -> id:int -> a:float -> b:float -> i:int -> unit
(** Record one event in the current domain's collector, if one is
    installed and its mask accepts the kind's category; otherwise do
    nothing. Never raises, never allocates on the accept path. *)

val register : Event.scope -> id:int -> string -> unit
(** Attach a human-readable name to an id (in the current domain's
    collector); exporters print it alongside the renumbered id. Safe to
    call when no collector is installed (no-op). Re-registration
    replaces. *)

val name : t -> Event.scope -> int -> string option

(** {1 Reading the ring} *)

val capacity : t -> int

val length : t -> int
(** Cells currently held (≤ capacity). *)

val emitted : t -> int
(** Total events accepted over the collector's lifetime. *)

val dropped : t -> int
(** Events overwritten after the ring wrapped:
    [emitted - length]. *)

val events : t -> Event.record array
(** The held cells, oldest first. Allocates fresh records. *)

val clear : t -> unit
(** Empty the ring and reset {!emitted}/{!dropped}; names are kept. *)

(** {1 Link trace ids}

    Links get their trace identity from a process-global counter so
    instrumented components need no plumbing; exporters renumber. *)

val fresh_link_id : unit -> int
