(** The trace event vocabulary.

    Every trace record is a fixed-size cell: a timestamp (simulated
    seconds, from [Engine.now]), a {!kind}, one subject id (whose meaning
    — flow, link, or engine-global — is fixed by the kind's {!scope}),
    two float payload slots [a]/[b] and one integer payload slot [i].
    Keeping the payload unboxed and positional is what lets the collector
    preallocate its ring as plain arrays; the per-kind payload meaning is
    documented on each constructor and decoded by [Pcc_trace.Export]. *)

type kind =
  | Dispatch
      (** Engine executed one event. [a] = events still pending after the
          pop, [i] = the engine's lifetime executed counter. *)
  | Enqueue
      (** A link accepted a packet into its queue. [id] = link,
          [a] = queue occupancy in bytes after the enqueue, [i] = flow id
          of the packet. *)
  | Drop
      (** A link's queue discipline rejected a packet. [id] = link,
          [a] = queue occupancy in bytes at the drop, [i] = flow id. *)
  | Queue_sample
      (** Periodic occupancy probe. [id] = link, [a] = queued bytes,
          [i] = queued packets. *)
  | Mi_start
      (** A monitor interval opened. [id] = flow, [a] = MI target rate
          (bits/s), [b] = planned duration (s), [i] = MI id. *)
  | Mi_end
      (** A monitor interval was evaluated. [id] = flow, [a] = utility,
          [b] = loss rate, [i] = MI id. *)
  | Mi_discard
      (** A partially elapsed MI was discarded by a §3.1 re-alignment.
          [id] = flow, [i] = MI id. *)
  | Rate_change
      (** The controller moved its base rate. [id] = flow, [a] = new rate
          (bits/s), [b] = previous rate (bits/s), [i] = phase and step
          packed by {!pack_rate_info}. *)
  | Cwnd
      (** A TCP sender's congestion window changed. [id] = flow,
          [a] = cwnd (packets), [b] = ssthresh (packets), [i] = cause
          (0 = ack growth, 1 = loss / fast retransmit, 2 = RTO). *)
  | Flow_start  (** A scenario flow started. [id] = flow. *)
  | Flow_stop  (** A scenario flow was stopped. [id] = flow. *)
  | Flow_complete
      (** A sized flow finished. [id] = flow, [a] = flow completion
          time (s). *)
  | Gradient_step
      (** A Vivace controller took one gradient-ascent step. [id] = flow,
          [a] = the measured utility gradient (utility units per Mbps),
          [b] = the new base rate (bits/s), [i] = direction, boundary
          clamp and confidence amplifier packed by
          {!pack_gradient_info}. *)
  | Utility_switch
      (** A Proteus utility changed class (e.g. a scavenger moving
          between probing and yielding). [id] = flow, [a] = the class it
          switched to (as a float of {!Pcc_core.Utility} class codes),
          [b] = the class it left, [i] = the MI id whose metrics
          triggered the switch. *)

type scope = Engine_scope | Link_scope | Flow_scope
(** The id space a record's [id] field indexes. *)

val scope_of_kind : kind -> scope

(** {1 Categories}

    Kinds are grouped into categories so a collector can mask whole
    subsystems out; the hot-path cost of a masked-out category is the
    emit call's mask test. *)

val cat_engine : int
val cat_link : int
val cat_pcc : int
val cat_tcp : int
val cat_flow : int

val cat_all : int

val cat_default : int
(** Everything except {!cat_engine} — per-dispatch records are an order
    of magnitude more voluminous than the rest and are opt-in. *)

val cat_of_kind : kind -> int

val cat_of_string : string -> int option
(** Parse one category name (["engine"], ["link"], ["pcc"], ["tcp"],
    ["flow"], ["all"], ["default"]). *)

val kind_name : kind -> string

val int_of_kind : kind -> int
(** Dense encoding for the collector's ring. *)

val kind_of_int : int -> kind
(** @raise Invalid_argument on an out-of-range encoding. *)

(** {1 Payload packing} *)

val pack_rate_info : phase:int -> step:int -> int
(** [phase] is 0 (starting), 1 (decision) or 2 (adjusting); [step] is
    the adjusting ladder step (0 outside the adjusting phase). *)

val rate_phase : int -> int
val rate_step : int -> int

val pack_gradient_info : up:bool -> clamped:bool -> amp:int -> int
(** [up] is the step direction, [clamped] whether the step hit the
    dynamic change boundary, [amp] the confidence amplifier m. *)

val gradient_up : int -> bool
val gradient_clamped : int -> bool
val gradient_amp : int -> int

type record = {
  time : float;  (** Simulated seconds. *)
  kind : kind;
  id : int;
  a : float;
  b : float;
  i : int;
}
(** A decoded ring cell, as returned by [Collector.events]. *)
