(** Render a collector's ring into consumable artifacts.

    All three exporters renumber raw flow/link ids densely by first
    appearance in the event stream, so the output of a seeded run is
    byte-identical run to run even though the underlying ids come from
    process-global counters. Floating-point fields are printed with
    fixed [Printf] formats — no locale, no environment dependence —
    which is what lets CI diff two runs' artifacts for equality.

    Every exporter takes a [?canonical] flag (default [false]). A
    sharded run ({!Pcc_sim.Shard}) records events in barrier-window
    execution order, so records from different shards interleave
    non-chronologically and the interleaving depends on the shard
    count. [~canonical:true] first stable-sorts the ring by the full
    record — timestamp, kind, subject id and payload fields — giving
    one canonical order (and hence byte-identical artifacts) at every
    shard count; renumbering then runs on the sorted stream. Leave it
    off for monolithic runs so existing golden artifacts are
    unaffected. *)

val chrome_json : ?canonical:bool -> Collector.t -> string
(** The Chrome trace-event JSON format (the ["traceEvents"] array
    form), loadable in Perfetto / [chrome://tracing]. Flows become
    threads of process 1 (monitor intervals as B/E spans, rate and cwnd
    as counter series), links become process 2 (queue occupancy
    counters, drops as instant events), engine dispatch records become
    process 0 counters. Timestamps are microseconds, non-negative and
    monotone non-decreasing in file order. *)

val write_chrome_json : ?canonical:bool -> path:string -> Collector.t -> unit

val decision_log : ?canonical:bool -> Collector.t -> string
(** Human-readable per-decision log: flow lifecycle, MI open / result /
    discard, and controller rate transitions with phase, direction and
    ladder step — one line per event, chronological. *)

val write_decision_log : ?canonical:bool -> path:string -> Collector.t -> unit

val csv_series :
  ?canonical:bool -> Collector.t -> (string * (float * float) array) list
(** Per-subject time series suitable for
    [Pcc_metrics.Series_io.write_multi_series]: [rate:<flow>] (Mbps),
    [utility:<flow>], [cwnd:<flow>] (packets), [queue:<link>] (bytes),
    in first-appearance order. *)
