open Pcc_sim
open Pcc_net

let syn_period = 0.01

let create engine ?(init_rate = Units.mbps 1.) ?(max_rate = Units.gbps 10.)
    ?rng ?size ?on_complete ~out () =
  let flow = Packet.fresh_flow_id () in
  let rng = match rng with Some r -> r | None -> Rng.create flow in
  let sb = Scoreboard.create () in
  (match size with
  | Some bytes -> Scoreboard.limit_pkts sb (Units.packets_of_bytes bytes)
  | None -> ());
  let sent_pkts = ref 0 in
  let completed = ref false in
  let running = ref false in
  let srtt = ref 0.1 in
  (* Ack-rate based capacity estimate: peak packets/sec over short bins. *)
  let bin_start = ref 0. in
  let bin_count = ref 0 in
  let capacity_est = ref init_rate in
  let loss_since_syn = ref false in
  let last_dec_seq = ref (-1) in
  let pacer = ref None in
  let get_pacer () =
    match !pacer with Some p -> p | None -> assert false
  in
  let send_one () =
    if !completed || not !running then None
    else begin
      let seq, retx =
        match Scoreboard.take_retx sb with
        | Some seq -> (Some seq, true)
        | None -> (Scoreboard.fresh_seq sb, false)
      in
      match seq with
      | None -> None
      | Some seq ->
        let now = Engine.now engine in
        let pkt = Packet.data ~flow ~seq ~size:Units.mss ~now ~retx in
        Scoreboard.record_send sb seq ~now;
        incr sent_pkts;
        out pkt;
        Some Units.mss
    end
  in
  let finish () =
    if not !completed then begin
      completed := true;
      (match !pacer with Some p -> Rate_pacer.stop p | None -> ());
      match on_complete with
      | Some f -> f (Engine.now engine)
      | None -> ()
    end
  in
  let handle_ack (a : Packet.ack) =
    if !running && not !completed then begin
      let now = Engine.now engine in
      if not a.Packet.data_retx then begin
        let sample = now -. a.Packet.data_sent_at in
        srtt := (0.875 *. !srtt) +. (0.125 *. sample)
      end;
      (* Update the bandwidth estimate from ack arrival rate. *)
      if !bin_start = 0. then bin_start := now;
      incr bin_count;
      if now -. !bin_start >= 0.05 then begin
        let rate_bps =
          float_of_int (!bin_count * Units.mss) *. 8. /. (now -. !bin_start)
        in
        if rate_bps > !capacity_est then capacity_est := rate_bps
        else capacity_est := (0.98 *. !capacity_est) +. (0.02 *. rate_bps);
        bin_start := now;
        bin_count := 0
      end;
      ignore (Scoreboard.on_ack sb a);
      let losses =
        Scoreboard.detect_losses sb ~now ~min_age:(0.8 *. !srtt)
      in
      (match losses with
      | [] -> ()
      | first :: _ ->
        loss_since_syn := true;
        (* UDT decreases by 1/9 on the first NAK of a congestion epoch,
           then again with some probability on further NAKs of the same
           epoch — a burst of losses produces the deep fallback the paper
           observes. *)
        let cut () =
          let p = get_pacer () in
          Rate_pacer.set_rate p
            (Float.max (Units.kbps 100.) (Rate_pacer.rate p *. 8. /. 9.))
        in
        if first > !last_dec_seq then begin
          cut ();
          last_dec_seq := Scoreboard.next_seq sb
        end
        else if Rng.bernoulli rng 0.08 then cut ());
      if Scoreboard.complete sb then finish ()
      else Rate_pacer.kick (get_pacer ())
    end
  in
  let rec syn_tick () =
    if !running && not !completed then begin
      let p = get_pacer () in
      if not !loss_since_syn then begin
        (* Rate increase per SYN, scaled by the bandwidth estimate like
           UDT's: an aggressive ~5%-per-10ms ramp (calibrated so a clean
           gigabit link fills within seconds, as UDT does) that keeps
           probing past the estimate — producing the overshoot/deep-
           fallback cycle the paper describes. *)
        let c = Rate_pacer.rate p in
        (* 5% of the estimated spare capacity per SYN, with a floor that
           keeps probing past the estimate: fast exponential approach from
           below, persistent overshoot at the top — UDT's signature. *)
        let spare = Float.max (!capacity_est -. c) 0. in
        let inc_bps = Float.max (0.05 *. spare) (Units.kbps 500.) in
        Rate_pacer.set_rate p (Float.min max_rate (c +. inc_bps))
      end;
      loss_since_syn := false;
      (* Tail-loss watchdog (UDT's EXP timer): requeue stale packets and
         resume the pacer if retransmissions wait. *)
      let now = Engine.now engine in
      ignore (Scoreboard.sweep_stale sb ~now ~min_age:(4. *. !srtt));
      if Scoreboard.has_retx sb then Rate_pacer.kick p;
      Engine.post_in engine ~after:syn_period syn_tick
    end
  in
  let p = Rate_pacer.create engine ~rate:init_rate ~send:send_one in
  pacer := Some p;
  let start () =
    if (not !running) && not !completed then begin
      running := true;
      Rate_pacer.start p;
      Engine.post_in engine ~after:syn_period syn_tick
    end
  in
  let stop () =
    running := false;
    Rate_pacer.stop p
  in
  Sender.
    {
      flow;
      name = "sabul";
      start;
      stop;
      handle_ack;
      rate_estimate = (fun () -> Rate_pacer.rate p);
      acked_bytes = (fun () -> Scoreboard.acked_pkts sb * Units.mss);
      srtt = (fun () -> !srtt);
      sent_pkts = (fun () -> !sent_pkts);
      is_complete = (fun () -> !completed);
    }
