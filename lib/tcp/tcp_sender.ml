open Pcc_sim
open Pcc_net

module Int_set = Set.Make (Int)

type config = {
  variant : Variant.t;
  pacing : bool;
  init_cwnd : float;
  min_rto : float;
  max_cwnd : float;
  dupthresh : int;
  initial_rtt : float;
}

let default_config variant =
  {
    variant;
    pacing = false;
    init_cwnd = 2.;
    min_rto = 0.2;
    max_cwnd = 1e6;
    dupthresh = 3;
    initial_rtt = 0.05;
  }

type t = {
  engine : Engine.t;
  cfg : config;
  out : Packet.t -> unit;
  flow : int;
  total_pkts : int option;
  est : Rtt_estimator.t;
  ctx : Variant.ctx;
  mutable running : bool;
  mutable next_seq : int;
  mutable high_ack : int;
  mutable sacked : Int_set.t;  (* received seqs above high_ack *)
  mutable outstanding : Int_set.t;  (* sent, unacked, not marked lost *)
  mutable inflight : int;
  mutable highest_sacked : int;
  retx : int Queue.t;
  retx_set : (int, unit) Hashtbl.t;
  sent_at : (int, float) Hashtbl.t;
  mutable in_recovery : bool;
  mutable recover_seq : int;
  mutable rto_timer : Engine.timer option;
  mutable pacing_pending : bool;
  mutable last_send : float;
  mutable sent_pkts : int;
  mutable acked_pkts : int;
  mutable timeouts : int;
  mutable fast_retransmits : int;
  mutable completed : bool;
  on_complete : (float -> unit) option;
}

let make_ctx engine cfg est =
  Variant.
    {
      cwnd = cfg.init_cwnd;
      ssthresh = cfg.max_cwnd;
      now = (fun () -> Engine.now engine);
      srtt = (fun () -> Rtt_estimator.srtt_or est cfg.initial_rtt);
      min_rtt =
        (fun () ->
          match Rtt_estimator.min_rtt est with
          | Some v -> v
          | None -> cfg.initial_rtt);
      max_rtt =
        (fun () ->
          match Rtt_estimator.max_rtt est with
          | Some v -> v
          | None -> cfg.initial_rtt);
      latest_rtt =
        (fun () ->
          match Rtt_estimator.latest est with
          | Some v -> v
          | None -> cfg.initial_rtt);
      mss = Units.mss;
    }

let create engine cfg ?size ?on_complete ~out () =
  let est = Rtt_estimator.create ~min_rto:cfg.min_rto () in
  let flow = Packet.fresh_flow_id () in
  Pcc_trace.Collector.register Pcc_trace.Event.Flow_scope ~id:flow
    cfg.variant.Variant.name;
  {
    engine;
    cfg;
    out;
    flow;
    total_pkts = Option.map Units.packets_of_bytes size;
    est;
    ctx = make_ctx engine cfg est;
    running = false;
    next_seq = 0;
    high_ack = -1;
    sacked = Int_set.empty;
    outstanding = Int_set.empty;
    inflight = 0;
    highest_sacked = -1;
    retx = Queue.create ();
    retx_set = Hashtbl.create 64;
    sent_at = Hashtbl.create 256;
    in_recovery = false;
    recover_seq = 0;
    rto_timer = None;
    pacing_pending = false;
    last_send = neg_infinity;
    sent_pkts = 0;
    acked_pkts = 0;
    timeouts = 0;
    fast_retransmits = 0;
    completed = false;
    on_complete;
  }

let cancel_rto t =
  match t.rto_timer with
  | Some timer ->
    Engine.cancel timer;
    t.rto_timer <- None
  | None -> ()

let effective_cwnd t =
  int_of_float (Float.min t.ctx.Variant.cwnd t.cfg.max_cwnd)

let already_delivered t seq = seq <= t.high_ack || Int_set.mem seq t.sacked

(* Trace: congestion-window change. [cause] 0 = ack-clocked growth,
   1 = fast-recovery entry, 2 = retransmission timeout. *)
let trace_cwnd t ~cause =
  if Pcc_trace.Collector.enabled () then
    Pcc_trace.Collector.emit Pcc_trace.Event.Cwnd
      ~time:(Engine.now t.engine) ~id:t.flow ~a:t.ctx.Variant.cwnd
      ~b:t.ctx.Variant.ssthresh ~i:cause

(* Next sequence to put on the wire: pending retransmissions first, then
   fresh data (bounded by the transfer size). *)
let rec next_to_send t =
  match Queue.take_opt t.retx with
  | Some seq ->
    Hashtbl.remove t.retx_set seq;
    if already_delivered t seq then next_to_send t else Some (seq, true)
  | None -> (
    match t.total_pkts with
    | Some n when t.next_seq >= n -> None
    | Some _ | None ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      Some (seq, false))

let has_data t =
  (not (Queue.is_empty t.retx))
  ||
  match t.total_pkts with Some n -> t.next_seq < n | None -> true

let rec arm_rto t =
  if t.rto_timer = None && t.inflight > 0 && t.running then begin
    let timer =
      Engine.schedule_in t.engine ~after:(Rtt_estimator.rto t.est) (fun () ->
          t.rto_timer <- None;
          on_timeout t)
    in
    t.rto_timer <- Some timer
  end

and on_timeout t =
  if t.running && not t.completed then begin
    t.timeouts <- t.timeouts + 1;
    let flight_at_timeout = t.inflight in
    (* Go-back-N: everything unacked is presumed lost. *)
    Int_set.iter
      (fun seq ->
        if (not (already_delivered t seq)) && not (Hashtbl.mem t.retx_set seq)
        then begin
          Hashtbl.add t.retx_set seq ();
          Queue.push seq t.retx
        end)
      t.outstanding;
    t.outstanding <- Int_set.empty;
    t.inflight <- 0;
    t.in_recovery <- false;
    t.ctx.Variant.ssthresh <-
      Float.max (float_of_int flight_at_timeout /. 2.) Variant.min_cwnd;
    t.ctx.Variant.cwnd <- Variant.min_cwnd;
    t.cfg.variant.Variant.on_timeout t.ctx;
    trace_cwnd t ~cause:2;
    Rtt_estimator.backoff t.est;
    try_send t
  end

and do_send t seq retx =
  let now = Engine.now t.engine in
  let pkt = Packet.data ~flow:t.flow ~seq ~size:Units.mss ~now ~retx in
  Hashtbl.replace t.sent_at seq now;
  t.outstanding <- Int_set.add seq t.outstanding;
  t.inflight <- t.inflight + 1;
  t.sent_pkts <- t.sent_pkts + 1;
  t.last_send <- now;
  t.out pkt;
  arm_rto t

and try_send t =
  if t.running && not t.completed then
    if t.cfg.pacing then pace_send t
    else begin
      let continue = ref true in
      while !continue do
        if t.inflight < effective_cwnd t && has_data t then begin
          match next_to_send t with
          | Some (seq, retx) -> do_send t seq retx
          | None -> continue := false
        end
        else continue := false
      done
    end

and pace_send t =
  if (not t.pacing_pending) && t.inflight < effective_cwnd t && has_data t
  then begin
    let now = Engine.now t.engine in
    let spacing =
      Rtt_estimator.srtt_or t.est t.cfg.initial_rtt
      /. Float.max t.ctx.Variant.cwnd 1.
    in
    let at = Float.max now (t.last_send +. spacing) in
    t.pacing_pending <- true;
    ignore
      (Engine.schedule t.engine ~at (fun () ->
           t.pacing_pending <- false;
           if t.running && (not t.completed) && t.inflight < effective_cwnd t
           then begin
             match next_to_send t with
             | Some (seq, retx) ->
               do_send t seq retx;
               pace_send t
             | None -> ()
           end))
  end

let complete t =
  if not t.completed then begin
    t.completed <- true;
    t.running <- false;
    cancel_rto t;
    match t.on_complete with
    | Some f -> f (Engine.now t.engine)
    | None -> ()
  end

let detect_losses t =
  (* A hole is declared lost once [dupthresh] packets above it have been
     selectively acknowledged — the SACK analogue of 3 dup-acks. The age
     guard keeps an in-flight retransmission (necessarily below the SACK
     frontier) from being re-declared lost on every subsequent ack. *)
  let now = Engine.now t.engine in
  let min_age = 0.8 *. Rtt_estimator.srtt_or t.est t.cfg.initial_rtt in
  let threshold = t.highest_sacked - t.cfg.dupthresh in
  let candidates = ref [] in
  (try
     Int_set.iter
       (fun seq ->
         if seq > threshold then raise Exit;
         candidates := seq :: !candidates)
       t.outstanding
   with Exit -> ());
  let newly_lost = ref [] in
  List.iter
    (fun seq ->
      let old_enough =
        match Hashtbl.find_opt t.sent_at seq with
        | Some at -> now -. at >= min_age
        | None -> true
      in
      if old_enough then begin
        t.outstanding <- Int_set.remove seq t.outstanding;
        t.inflight <- t.inflight - 1;
        newly_lost := seq :: !newly_lost;
        if not (Hashtbl.mem t.retx_set seq) then begin
          Hashtbl.add t.retx_set seq ();
          Queue.push seq t.retx
        end
      end)
    !candidates;
  !newly_lost

let handle_ack t (a : Packet.ack) =
  if t.running then begin
    (* Karn's rule: no RTT sample from a retransmitted packet. *)
    if not a.Packet.data_retx then
      Rtt_estimator.sample t.est
        (Engine.now t.engine -. a.Packet.data_sent_at);
    let newly = ref 0 in
    let seq = a.Packet.acked_seq in
    if seq > t.high_ack && not (Int_set.mem seq t.sacked) then begin
      t.sacked <- Int_set.add seq t.sacked;
      incr newly;
      if Int_set.mem seq t.outstanding then begin
        t.outstanding <- Int_set.remove seq t.outstanding;
        t.inflight <- t.inflight - 1
      end;
      Hashtbl.remove t.sent_at seq;
      if seq > t.highest_sacked then t.highest_sacked <- seq
    end;
    if a.Packet.cum_ack > t.high_ack then begin
      for s = t.high_ack + 1 to a.Packet.cum_ack do
        if Int_set.mem s t.sacked then t.sacked <- Int_set.remove s t.sacked
        else begin
          incr newly;
          if Int_set.mem s t.outstanding then begin
            t.outstanding <- Int_set.remove s t.outstanding;
            t.inflight <- t.inflight - 1
          end
        end;
        Hashtbl.remove t.sent_at s
      done;
      t.high_ack <- a.Packet.cum_ack
    end;
    if !newly > 0 then begin
      t.acked_pkts <- t.acked_pkts + !newly;
      Rtt_estimator.reset_backoff t.est;
      cancel_rto t;
      (* cwnd growth is suppressed during recovery, as in fast recovery. *)
      if not t.in_recovery then begin
        t.cfg.variant.Variant.on_ack t.ctx ~newly_acked:!newly;
        if t.ctx.Variant.cwnd > t.cfg.max_cwnd then
          t.ctx.Variant.cwnd <- t.cfg.max_cwnd;
        trace_cwnd t ~cause:0
      end
    end;
    let lost = detect_losses t in
    if lost <> [] && not t.in_recovery then begin
      t.in_recovery <- true;
      t.recover_seq <- t.next_seq;
      t.fast_retransmits <- t.fast_retransmits + 1;
      t.cfg.variant.Variant.on_loss t.ctx;
      trace_cwnd t ~cause:1
    end;
    if t.in_recovery && t.high_ack >= t.recover_seq then
      t.in_recovery <- false;
    (match t.total_pkts with
    | Some n when t.high_ack >= n - 1 -> complete t
    | Some _ | None -> ());
    arm_rto t;
    try_send t
  end

let start t =
  if (not t.running) && not t.completed then begin
    t.running <- true;
    try_send t
  end

let stop t =
  t.running <- false;
  cancel_rto t

let rate_estimate t =
  t.ctx.Variant.cwnd *. float_of_int Units.mss *. 8.
  /. Rtt_estimator.srtt_or t.est t.cfg.initial_rtt

let sender t =
  let name =
    t.cfg.variant.Variant.name ^ if t.cfg.pacing then "+pacing" else ""
  in
  let flow = t.flow in
  Sender.
    {
      flow;
      name;
      start = (fun () -> start t);
      stop = (fun () -> stop t);
      handle_ack = (fun a -> handle_ack t a);
      rate_estimate = (fun () -> rate_estimate t);
      acked_bytes = (fun () -> t.acked_pkts * Units.mss);
      srtt = (fun () -> Rtt_estimator.srtt_or t.est t.cfg.initial_rtt);
      sent_pkts = (fun () -> t.sent_pkts);
      is_complete = (fun () -> t.completed);
    }

let cwnd t = t.ctx.Variant.cwnd
let ssthresh t = t.ctx.Variant.ssthresh
let in_flight t = t.inflight
let in_recovery t = t.in_recovery
let timeouts t = t.timeouts
let fast_retransmits t = t.fast_retransmits
let srtt t = Rtt_estimator.srtt t.est
