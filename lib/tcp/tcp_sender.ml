open Pcc_sim
open Pcc_net

type config = {
  variant : Variant.t;
  pacing : bool;
  init_cwnd : float;
  min_rto : float;
  max_cwnd : float;
  dupthresh : int;
  initial_rtt : float;
}

let default_config variant =
  {
    variant;
    pacing = false;
    init_cwnd = 2.;
    min_rto = 0.2;
    max_cwnd = 1e6;
    dupthresh = 3;
    initial_rtt = 0.05;
  }

(* Per-sequence tracking lives in flat arrays indexed by sequence number
   (sequences are dense from 0). [state] packs, per sequence, a kind in
   the low two bits — 0 none, 1 outstanding (sent, unacked, not marked
   lost), 2 selectively acked above [high_ack] — and "queued for
   retransmission" in bit 2. [sent_at] keeps the last transmission time;
   entries for resolved sequences go stale, but every read is guarded by
   an outstanding check, so staleness is unobservable. [min_out] is a
   monotone cursor below which nothing is outstanding.

   Loss detection needs "outstanding sequences at or below the SACK
   frontier minus dupthresh" on every ack. Scanning the window for them
   would be O(cwnd) per ack, so candidates are tracked incrementally in
   [cand] (bit 3 of [state] marks membership): a sequence enters when
   the frontier first passes it (the frontier advance scans only the
   newly covered delta, amortized O(1) per sequence) or when it is
   retransmitted below the frontier, and leaves when it resolves or is
   declared lost. [cand] therefore holds exactly the holes — typically
   a handful of entries. *)

type t = {
  engine : Engine.t;
  cfg : config;
  out : Packet.t -> unit;
  flow : int;
  total_pkts : int option;
  est : Rtt_estimator.t;
  ctx : Variant.ctx;
  mutable running : bool;
  mutable next_seq : int;
  mutable high_ack : int;
  mutable state : Bytes.t;
  mutable sent_at : float array;
  mutable min_out : int;
  mutable inflight : int;
  mutable highest_sacked : int;
  mutable cand : int array;  (* loss candidates (unsorted) *)
  mutable cand_len : int;
  retx : int Queue.t;
  mutable in_recovery : bool;
  mutable recover_seq : int;
  mutable rto_timer : Engine.timer option;
  mutable pacing_pending : bool;
  mutable last_send : float;
  mutable sent_pkts : int;
  mutable acked_pkts : int;
  mutable timeouts : int;
  mutable fast_retransmits : int;
  mutable completed : bool;
  on_complete : (float -> unit) option;
}

let make_ctx engine cfg est =
  Variant.
    {
      cwnd = cfg.init_cwnd;
      ssthresh = cfg.max_cwnd;
      now = (fun () -> Engine.now engine);
      srtt = (fun () -> Rtt_estimator.srtt_or est cfg.initial_rtt);
      min_rtt =
        (fun () ->
          match Rtt_estimator.min_rtt est with
          | Some v -> v
          | None -> cfg.initial_rtt);
      max_rtt =
        (fun () ->
          match Rtt_estimator.max_rtt est with
          | Some v -> v
          | None -> cfg.initial_rtt);
      latest_rtt =
        (fun () ->
          match Rtt_estimator.latest est with
          | Some v -> v
          | None -> cfg.initial_rtt);
      mss = Units.mss;
    }

let create engine cfg ?size ?on_complete ~out () =
  let est = Rtt_estimator.create ~min_rto:cfg.min_rto () in
  let flow = Packet.fresh_flow_id () in
  Pcc_trace.Collector.register Pcc_trace.Event.Flow_scope ~id:flow
    cfg.variant.Variant.name;
  {
    engine;
    cfg;
    out;
    flow;
    total_pkts = Option.map Units.packets_of_bytes size;
    est;
    ctx = make_ctx engine cfg est;
    running = false;
    next_seq = 0;
    high_ack = -1;
    state = Bytes.make 1024 '\000';
    sent_at = Array.make 1024 0.;
    min_out = 0;
    inflight = 0;
    highest_sacked = -1;
    cand = Array.make 16 0;
    cand_len = 0;
    retx = Queue.create ();
    in_recovery = false;
    recover_seq = 0;
    rto_timer = None;
    pacing_pending = false;
    last_send = neg_infinity;
    sent_pkts = 0;
    acked_pkts = 0;
    timeouts = 0;
    fast_retransmits = 0;
    completed = false;
    on_complete;
  }

let ensure t seq =
  let cap = Bytes.length t.state in
  if seq >= cap then begin
    let ncap = ref (cap * 2) in
    while seq >= !ncap do
      ncap := !ncap * 2
    done;
    let nstate = Bytes.make !ncap '\000' in
    Bytes.blit t.state 0 nstate 0 cap;
    t.state <- nstate;
    let nsent = Array.make !ncap 0. in
    Array.blit t.sent_at 0 nsent 0 cap;
    t.sent_at <- nsent
  end

(* Every sequence below [next_seq] has been through [do_send] and hence
   [ensure], so unguarded accesses in that range are in bounds. *)
let kind t seq = Char.code (Bytes.unsafe_get t.state seq) land 3

let set_kind t seq k =
  let b = Char.code (Bytes.unsafe_get t.state seq) in
  Bytes.unsafe_set t.state seq (Char.unsafe_chr (b land 12 lor k))

let retx_queued t seq = Char.code (Bytes.unsafe_get t.state seq) land 4 <> 0

let set_retx_queued t seq q =
  let b = Char.code (Bytes.unsafe_get t.state seq) in
  Bytes.unsafe_set t.state seq
    (Char.unsafe_chr (if q then b lor 4 else b land 11))

let untrack t seq =
  let b = Char.code (Bytes.unsafe_get t.state seq) in
  Bytes.unsafe_set t.state seq (Char.unsafe_chr (b land 7))

(* Add [seq] to the loss-candidate set unless already tracked. *)
let track t seq =
  let b = Char.code (Bytes.unsafe_get t.state seq) in
  if b land 8 = 0 then begin
    Bytes.unsafe_set t.state seq (Char.unsafe_chr (b lor 8));
    if t.cand_len = Array.length t.cand then begin
      let ncand = Array.make (2 * t.cand_len) 0 in
      Array.blit t.cand 0 ncand 0 t.cand_len;
      t.cand <- ncand
    end;
    t.cand.(t.cand_len) <- seq;
    t.cand_len <- t.cand_len + 1
  end

(* The SACK frontier moved from [old_hs] to [t.highest_sacked]: any
   still-outstanding sequence in the newly covered band becomes a loss
   candidate. Bands are disjoint across calls, so the total scan work
   over a connection is O(highest sequence). *)
let frontier_advanced t old_hs =
  let lo = max t.min_out (old_hs - t.cfg.dupthresh + 1) in
  let hi = t.highest_sacked - t.cfg.dupthresh in
  for s = max 0 lo to hi do
    if kind t s = 1 then track t s
  done

let advance_min_out t =
  while t.min_out < t.next_seq && kind t t.min_out <> 1 do
    t.min_out <- t.min_out + 1
  done

let cancel_rto t =
  match t.rto_timer with
  | Some timer ->
    Engine.cancel timer;
    t.rto_timer <- None
  | None -> ()

let effective_cwnd t =
  int_of_float (Float.min t.ctx.Variant.cwnd t.cfg.max_cwnd)

let already_delivered t seq = seq <= t.high_ack || kind t seq = 2

(* Trace: congestion-window change. [cause] 0 = ack-clocked growth,
   1 = fast-recovery entry, 2 = retransmission timeout. *)
let trace_cwnd t ~cause =
  if Pcc_trace.Collector.enabled () then
    Pcc_trace.Collector.emit Pcc_trace.Event.Cwnd
      ~time:(Engine.now t.engine) ~id:t.flow ~a:t.ctx.Variant.cwnd
      ~b:t.ctx.Variant.ssthresh ~i:cause

(* Next sequence to put on the wire: pending retransmissions first, then
   fresh data (bounded by the transfer size). *)
let rec next_to_send t =
  match Queue.take_opt t.retx with
  | Some seq ->
    set_retx_queued t seq false;
    if already_delivered t seq then next_to_send t else Some (seq, true)
  | None -> (
    match t.total_pkts with
    | Some n when t.next_seq >= n -> None
    | Some _ | None ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      Some (seq, false))

let has_data t =
  (not (Queue.is_empty t.retx))
  ||
  match t.total_pkts with Some n -> t.next_seq < n | None -> true

let rec arm_rto t =
  if t.rto_timer = None && t.inflight > 0 && t.running then begin
    let timer =
      Engine.schedule_in t.engine ~after:(Rtt_estimator.rto t.est) (fun () ->
          t.rto_timer <- None;
          on_timeout t)
    in
    t.rto_timer <- Some timer
  end

and on_timeout t =
  if t.running && not t.completed then begin
    t.timeouts <- t.timeouts + 1;
    let flight_at_timeout = t.inflight in
    (* Go-back-N: everything unacked is presumed lost. *)
    advance_min_out t;
    for seq = t.min_out to t.next_seq - 1 do
      if kind t seq = 1 then begin
        set_kind t seq 0;
        if (not (already_delivered t seq)) && not (retx_queued t seq) then begin
          set_retx_queued t seq true;
          Queue.push seq t.retx
        end
      end
    done;
    t.min_out <- t.next_seq;
    t.inflight <- 0;
    t.in_recovery <- false;
    t.ctx.Variant.ssthresh <-
      Float.max (float_of_int flight_at_timeout /. 2.) Variant.min_cwnd;
    t.ctx.Variant.cwnd <- Variant.min_cwnd;
    t.cfg.variant.Variant.on_timeout t.ctx;
    trace_cwnd t ~cause:2;
    Rtt_estimator.backoff t.est;
    try_send t
  end

and do_send t seq retx =
  let now = Engine.now t.engine in
  let pkt = Packet.data ~flow:t.flow ~seq ~size:Units.mss ~now ~retx in
  ensure t seq;
  t.sent_at.(seq) <- now;
  set_kind t seq 1;
  if seq <= t.highest_sacked - t.cfg.dupthresh then track t seq;
  if seq < t.min_out then t.min_out <- seq;
  t.inflight <- t.inflight + 1;
  t.sent_pkts <- t.sent_pkts + 1;
  t.last_send <- now;
  t.out pkt;
  arm_rto t

and try_send t =
  if t.running && not t.completed then
    if t.cfg.pacing then pace_send t
    else begin
      let continue = ref true in
      while !continue do
        if t.inflight < effective_cwnd t && has_data t then begin
          match next_to_send t with
          | Some (seq, retx) -> do_send t seq retx
          | None -> continue := false
        end
        else continue := false
      done
    end

and pace_send t =
  if (not t.pacing_pending) && t.inflight < effective_cwnd t && has_data t
  then begin
    let now = Engine.now t.engine in
    let spacing =
      Rtt_estimator.srtt_or t.est t.cfg.initial_rtt
      /. Float.max t.ctx.Variant.cwnd 1.
    in
    let at = Float.max now (t.last_send +. spacing) in
    t.pacing_pending <- true;
    ignore
      (Engine.schedule t.engine ~at (fun () ->
           t.pacing_pending <- false;
           if t.running && (not t.completed) && t.inflight < effective_cwnd t
           then begin
             match next_to_send t with
             | Some (seq, retx) ->
               do_send t seq retx;
               pace_send t
             | None -> ()
           end))
  end

let complete t =
  if not t.completed then begin
    t.completed <- true;
    t.running <- false;
    cancel_rto t;
    match t.on_complete with
    | Some f -> f (Engine.now t.engine)
    | None -> ()
  end

let detect_losses t =
  (* A hole is declared lost once [dupthresh] packets above it have been
     selectively acknowledged — the SACK analogue of 3 dup-acks. The age
     guard keeps an in-flight retransmission (necessarily below the SACK
     frontier) from being re-declared lost on every subsequent ack. *)
  if t.cand_len = 0 then []
  else begin
    let now = Engine.now t.engine in
    let min_age = 0.8 *. Rtt_estimator.srtt_or t.est t.cfg.initial_rtt in
    let n = t.cand_len in
    (* In-place insertion sort: [cand] is small (it holds only the
       holes), and ascending order fixes the retransmission-queue push
       order below, which must match the tree-based implementation. *)
    for i = 1 to n - 1 do
      let v = t.cand.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && t.cand.(!j) > v do
        t.cand.(!j + 1) <- t.cand.(!j);
        decr j
      done;
      t.cand.(!j + 1) <- v
    done;
    (* Ascending walk, consed into a descending list: processing order
       (and hence retx push order) matches the original exactly. Entries
       that resolved since being tracked drop out here. *)
    let candidates = ref [] in
    for i = 0 to n - 1 do
      let seq = t.cand.(i) in
      if kind t seq = 1 then candidates := seq :: !candidates
      else untrack t seq
    done;
    t.cand_len <- 0;
    let newly_lost = ref [] in
    List.iter
      (fun seq ->
        if now -. t.sent_at.(seq) >= min_age then begin
          set_kind t seq 0;
          untrack t seq;
          t.inflight <- t.inflight - 1;
          newly_lost := seq :: !newly_lost;
          if not (retx_queued t seq) then begin
            set_retx_queued t seq true;
            Queue.push seq t.retx
          end
        end
        else begin
          (* Too young to declare lost: stays a candidate. *)
          t.cand.(t.cand_len) <- seq;
          t.cand_len <- t.cand_len + 1
        end)
      !candidates;
    (* Survivors were appended in descending order; restore ascending
       so the next drain's insertion sort stays linear (only entries
       tracked by a retransmission since then can be out of place). *)
    let i = ref 0 and j = ref (t.cand_len - 1) in
    while !i < !j do
      let tmp = t.cand.(!i) in
      t.cand.(!i) <- t.cand.(!j);
      t.cand.(!j) <- tmp;
      incr i;
      decr j
    done;
    !newly_lost
  end

let handle_ack t (a : Packet.ack) =
  if t.running then begin
    (* Karn's rule: no RTT sample from a retransmitted packet. *)
    if not a.Packet.data_retx then
      Rtt_estimator.sample t.est (Engine.now t.engine -. a.Packet.data_sent_at);
    let newly = ref 0 in
    let seq = a.Packet.acked_seq in
    ensure t seq;
    if seq > t.high_ack && kind t seq <> 2 then begin
      if kind t seq = 1 then t.inflight <- t.inflight - 1;
      set_kind t seq 2;
      incr newly;
      if seq > t.highest_sacked then begin
        let old_hs = t.highest_sacked in
        t.highest_sacked <- seq;
        frontier_advanced t old_hs
      end
    end;
    if a.Packet.cum_ack > t.high_ack then begin
      ensure t a.Packet.cum_ack;
      for s = t.high_ack + 1 to a.Packet.cum_ack do
        (match kind t s with
        | 2 -> ()
        | k ->
          incr newly;
          if k = 1 then t.inflight <- t.inflight - 1);
        set_kind t s 0
      done;
      t.high_ack <- a.Packet.cum_ack;
      if t.min_out <= t.high_ack then t.min_out <- t.high_ack + 1
    end;
    if !newly > 0 then begin
      t.acked_pkts <- t.acked_pkts + !newly;
      Rtt_estimator.reset_backoff t.est;
      cancel_rto t;
      (* cwnd growth is suppressed during recovery, as in fast recovery. *)
      if not t.in_recovery then begin
        t.cfg.variant.Variant.on_ack t.ctx ~newly_acked:!newly;
        if t.ctx.Variant.cwnd > t.cfg.max_cwnd then
          t.ctx.Variant.cwnd <- t.cfg.max_cwnd;
        trace_cwnd t ~cause:0
      end
    end;
    let lost = detect_losses t in
    if lost <> [] && not t.in_recovery then begin
      t.in_recovery <- true;
      t.recover_seq <- t.next_seq;
      t.fast_retransmits <- t.fast_retransmits + 1;
      t.cfg.variant.Variant.on_loss t.ctx;
      trace_cwnd t ~cause:1
    end;
    if t.in_recovery && t.high_ack >= t.recover_seq then
      t.in_recovery <- false;
    (match t.total_pkts with
    | Some n when t.high_ack >= n - 1 -> complete t
    | Some _ | None -> ());
    arm_rto t;
    try_send t
  end

let start t =
  if (not t.running) && not t.completed then begin
    t.running <- true;
    try_send t
  end

let stop t =
  t.running <- false;
  cancel_rto t

let rate_estimate t =
  t.ctx.Variant.cwnd *. float_of_int Units.mss *. 8.
  /. Rtt_estimator.srtt_or t.est t.cfg.initial_rtt

let sender t =
  let name =
    t.cfg.variant.Variant.name ^ if t.cfg.pacing then "+pacing" else ""
  in
  let flow = t.flow in
  Sender.
    {
      flow;
      name;
      start = (fun () -> start t);
      stop = (fun () -> stop t);
      handle_ack = (fun a -> handle_ack t a);
      rate_estimate = (fun () -> rate_estimate t);
      acked_bytes = (fun () -> t.acked_pkts * Units.mss);
      srtt = (fun () -> Rtt_estimator.srtt_or t.est t.cfg.initial_rtt);
      sent_pkts = (fun () -> t.sent_pkts);
      is_complete = (fun () -> t.completed);
    }

let cwnd t = t.ctx.Variant.cwnd
let ssthresh t = t.ctx.Variant.ssthresh
let in_flight t = t.inflight
let in_recovery t = t.in_recovery
let timeouts t = t.timeouts
let fast_retransmits t = t.fast_retransmits
let srtt t = Rtt_estimator.srtt t.est
