open Pcc_sim
open Pcc_net

type probe = {
  target : float;  (* probed rate, bps *)
  first_seq : int;
  last_seq : int;  (* inclusive; train is [first_seq, last_seq] *)
  mutable first_ack : float option;
  mutable last_ack : float option;
  mutable acks : int;
  mutable lost : bool;
}

let create engine ?(init_rate = Units.mbps 1.) ?(max_rate = Units.gbps 10.)
    ?(train_len = 10) ?size ?on_complete ~out () =
  let flow = Packet.fresh_flow_id () in
  let sb = Scoreboard.create () in
  (match size with
  | Some bytes -> Scoreboard.limit_pkts sb (Units.packets_of_bytes bytes)
  | None -> ());
  let sent_pkts = ref 0 in
  let completed = ref false in
  let running = ref false in
  let base_rate = ref init_rate in
  let ceiling = ref max_rate in
  let srtt = ref 0.1 in
  let probe : probe option ref = ref None in
  let probe_left = ref 0 in
  let pacer = ref None in
  let get_pacer () = match !pacer with Some p -> p | None -> assert false in
  let send_one () =
    if !completed || not !running then None
    else begin
      let seq, retx =
        match Scoreboard.take_retx sb with
        | Some seq -> (Some seq, true)
        | None -> (Scoreboard.fresh_seq sb, false)
      in
      match seq with
      | None -> None
      | Some seq ->
        let now = Engine.now engine in
        let pkt = Packet.data ~flow ~seq ~size:Units.mss ~now ~retx in
        Scoreboard.record_send sb seq ~now;
        incr sent_pkts;
        out pkt;
        if !probe_left > 0 then begin
          decr probe_left;
          if !probe_left = 0 then
            (* Train fully emitted: fall back to the base rate while the
               acks come home. *)
            Rate_pacer.set_rate (get_pacer ()) !base_rate
        end;
        Some Units.mss
    end
  in
  let finish () =
    if not !completed then begin
      completed := true;
      (match !pacer with Some p -> Rate_pacer.stop p | None -> ());
      match on_complete with Some f -> f (Engine.now engine) | None -> ()
    end
  in
  let next_target () =
    if !ceiling > !base_rate *. 1.9 then Float.min max_rate (!base_rate *. 2.)
    else if !ceiling > !base_rate *. 1.1 then
      (* Binary search between what worked and what did not. *)
      (!base_rate +. !ceiling) /. 2.
    else !base_rate *. 1.05
  in
  let conclude_probe (p : probe) success =
    if success then begin
      base_rate := Float.min max_rate p.target;
      (* Forget the old ceiling slowly so PCP keeps re-probing upward. *)
      if !ceiling < !base_rate *. 2. then ceiling := !base_rate *. 4.
    end
    else ceiling := p.target;
    probe := None;
    Rate_pacer.set_rate (get_pacer ()) !base_rate
  in
  let evaluate_probe (p : probe) =
    match (p.first_ack, p.last_ack) with
    | Some t0, Some t1 when p.acks >= max 2 (train_len - 2) && not p.lost ->
      let measured_gap = (t1 -. t0) /. float_of_int (p.acks - 1) in
      let sent_gap = float_of_int (Units.mss * 8) /. p.target in
      (* Success iff the train's dispersion did not grow: the available
         bandwidth sustained the probe rate without queueing. *)
      conclude_probe p (measured_gap <= sent_gap *. 1.15)
    | _ -> conclude_probe p false
  in
  let rec probe_tick () =
    if !running && not !completed then begin
      (if !probe = None then begin
         let target = next_target () in
         if target > !base_rate *. 1.01 then begin
           let first_seq = Scoreboard.next_seq sb in
           let p =
             {
               target;
               first_seq;
               last_seq = first_seq + train_len - 1;
               first_ack = None;
               last_ack = None;
               acks = 0;
               lost = false;
             }
           in
           probe := Some p;
           probe_left := train_len;
           Rate_pacer.set_rate (get_pacer ()) target;
           Rate_pacer.kick (get_pacer ());
           (* Deadline: if the acks never arrive, count as failure. *)
           let train_time =
             float_of_int (train_len * Units.mss * 8) /. target
           in
           ignore
             (Engine.schedule_in engine
                ~after:(train_time +. (3. *. !srtt))
                (fun () ->
                  match !probe with
                  | Some p' when p' == p -> evaluate_probe p
                  | Some _ | None -> ()))
         end
       end);
      (* Tail-loss watchdog: requeue stale packets and resume the pacer if
         retransmissions wait. *)
      ignore
        (Scoreboard.sweep_stale sb ~now:(Engine.now engine)
           ~min_age:(4. *. !srtt));
      if Scoreboard.has_retx sb then Rate_pacer.kick (get_pacer ());
      ignore
        (Engine.schedule_in engine
           ~after:(Float.max (2. *. !srtt) 0.05)
           probe_tick)
    end
  in
  let handle_ack (a : Packet.ack) =
    if !running && not !completed then begin
      let now = Engine.now engine in
      if not a.Packet.data_retx then begin
        let sample = now -. a.Packet.data_sent_at in
        srtt := (0.875 *. !srtt) +. (0.125 *. sample)
      end;
      ignore (Scoreboard.on_ack sb a);
      (match !probe with
      | Some p
        when a.Packet.acked_seq >= p.first_seq
             && a.Packet.acked_seq <= p.last_seq ->
        if p.first_ack = None then p.first_ack <- Some now;
        p.last_ack <- Some now;
        p.acks <- p.acks + 1;
        if a.Packet.acked_seq = p.last_seq then evaluate_probe p
      | Some _ | None -> ());
      let losses =
        Scoreboard.detect_losses sb ~now ~min_age:(0.8 *. !srtt)
      in
      if losses <> [] then begin
        (match !probe with
        | Some p
          when List.exists (fun s -> s >= p.first_seq && s <= p.last_seq) losses
          -> p.lost <- true
        | Some _ | None -> ());
        base_rate := Float.max (Units.kbps 100.) (!base_rate *. 0.8);
        if !probe = None then Rate_pacer.set_rate (get_pacer ()) !base_rate
      end;
      if Scoreboard.complete sb then finish ()
      else Rate_pacer.kick (get_pacer ())
    end
  in
  let p = Rate_pacer.create engine ~rate:init_rate ~send:send_one in
  pacer := Some p;
  let start () =
    if (not !running) && not !completed then begin
      running := true;
      Rate_pacer.start p;
      Engine.post_in engine ~after:0.01 probe_tick
    end
  in
  let stop () =
    running := false;
    Rate_pacer.stop p
  in
  Sender.
    {
      flow;
      name = "pcp";
      start;
      stop;
      handle_ack;
      rate_estimate = (fun () -> !base_rate);
      acked_bytes = (fun () -> Scoreboard.acked_pkts sb * Units.mss);
      srtt = (fun () -> !srtt);
      sent_pkts = (fun () -> !sent_pkts);
      is_complete = (fun () -> !completed);
    }
