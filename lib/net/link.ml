open Pcc_sim

type t = {
  engine : Engine.t;
  name : string;
  trace_id : int;
  rng : Rng.t;
  mutable bandwidth : float;
  mutable delay : float;
  mutable loss : float;
  mutable jitter : float;
  mutable dup_prob : float;
  mutable reorder_prob : float;
  mutable reorder_extra : float;
  q : Queue_disc.t;
  mutable receiver : Packet.t -> unit;
  (* Sharded boundary endpoint: when set, propagation completion is
     handed to the cross-shard channel with the exact arrival instant
     instead of being posted into this engine — see DESIGN.md §13. The
     floor is the channel's lookahead contract; [set_delay] may not go
     below it. *)
  mutable remote : (arrival:float -> Packet.t -> unit) option;
  mutable floor : float;
  (* Pooled per-slot closures for the two per-packet events (transmit
     complete, propagation complete): no closure or handle allocation
     per packet after warm-up (see {!Pool}). *)
  propagating_pool : Packet.t Pool.t;
  tx_pool : Packet.t Pool.t;
  mutable busy : bool;
  mutable offered_pkts : int;
  mutable propagating : int;
  mutable delivered_pkts : int;
  mutable delivered_bytes : int;
  mutable channel_losses : int;
  mutable duplicated_pkts : int;
  mutable duplicated_bytes : int;
  mutable reordered_pkts : int;
  mutable busy_time : float;
}

(* Scrub value for released pool slots; never delivered. *)
let dummy_packet =
  Packet.data ~flow:(-1) ~seq:(-1) ~size:0 ~now:0. ~retx:false

let create engine ?(name = "link") ?(loss = 0.) ?(jitter = 0.) ~rng ~bandwidth
    ~delay ~queue () =
  if bandwidth <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  if delay < 0. then invalid_arg "Link.create: delay must be non-negative";
  let trace_id = Pcc_trace.Collector.fresh_link_id () in
  Pcc_trace.Collector.register Pcc_trace.Event.Link_scope ~id:trace_id name;
  let t = {
    engine;
    name;
    trace_id;
    rng;
    bandwidth;
    delay;
    loss;
    jitter;
    dup_prob = 0.;
    reorder_prob = 0.;
    reorder_extra = 0.;
    q = queue;
    receiver =
      (fun _ -> failwith (name ^ ": no receiver attached"));
    remote = None;
    floor = 0.;
    propagating_pool = Pool.create ~dummy:dummy_packet ();
    tx_pool = Pool.create ~dummy:dummy_packet ();
    busy = false;
    offered_pkts = 0;
    propagating = 0;
    delivered_pkts = 0;
    delivered_bytes = 0;
    channel_losses = 0;
    duplicated_pkts = 0;
    duplicated_bytes = 0;
    reordered_pkts = 0;
    busy_time = 0.;
  }
  in
  Pool.set_fire t.propagating_pool (fun p ->
      t.propagating <- t.propagating - 1;
      t.delivered_pkts <- t.delivered_pkts + 1;
      t.delivered_bytes <- t.delivered_bytes + p.Packet.size;
      t.receiver p);
  (* Worker domains executing this engine's windows must own the pools
     they fire (see Pool, Engine.adopt_owned). *)
  Engine.add_owned engine (fun () ->
      Pool.adopt t.propagating_pool;
      Pool.adopt t.tx_pool);
  (* On a sharded abort, in-flight records' release events never fire;
     the hub reclaims them instead of leaking (see Engine.add_reclaim). *)
  Engine.add_reclaim engine (fun () ->
      Pool.clear t.propagating_pool;
      Pool.clear t.tx_pool);
  t

let set_receiver t f = t.receiver <- f

let set_remote_delivery t ~floor f =
  if not (floor > 0.) then
    invalid_arg "Link.set_remote_delivery: floor must be positive";
  if floor > t.delay then
    invalid_arg "Link.set_remote_delivery: floor exceeds the link delay";
  t.remote <- Some f;
  t.floor <- floor

let deliver_remote t (p : Packet.t) =
  (* Destination-shard half of a boundary link: runs on the shard that
     owns the receiving node, so the delivery counters are single-writer
     there (the source shard never takes the local delivery path on a
     remote link). *)
  t.delivered_pkts <- t.delivered_pkts + 1;
  t.delivered_bytes <- t.delivered_bytes + p.Packet.size;
  t.receiver p

let deliver_after t (p : Packet.t) ~extra =
  match t.remote with
  | None ->
    t.propagating <- t.propagating + 1;
    Engine.post_in t.engine ~after:(t.delay +. extra)
      (Pool.event t.propagating_pool p)
  | Some send ->
    (* Same float expression as the local path's [post_in]: the arrival
       instant is bit-identical whether or not the link is cut, which
       is what keeps sharded runs byte-identical. The [propagating]
       counter is deliberately not touched — its decrement would land
       on the destination domain (see {!in_flight_pkts}). *)
    send ~arrival:(Engine.now t.engine +. (t.delay +. extra)) p

let propagate t (p : Packet.t) =
  if Rng.bernoulli t.rng t.loss then t.channel_losses <- t.channel_losses + 1
  else begin
    let jit = if t.jitter > 0. then Rng.uniform t.rng 0. t.jitter else 0. in
    let reordered =
      t.reorder_prob > 0. && Rng.bernoulli t.rng t.reorder_prob
    in
    if reordered then t.reordered_pkts <- t.reordered_pkts + 1;
    let extra = if reordered then jit +. t.reorder_extra else jit in
    deliver_after t p ~extra;
    if t.dup_prob > 0. && Rng.bernoulli t.rng t.dup_prob then begin
      t.duplicated_pkts <- t.duplicated_pkts + 1;
      t.duplicated_bytes <- t.duplicated_bytes + p.Packet.size;
      deliver_after t p ~extra:jit
    end
  end

let start_transmission t =
  let now = Engine.now t.engine in
  match t.q.Queue_disc.dequeue ~now with
  | None -> t.busy <- false
  | Some p ->
    t.busy <- true;
    let tx = Units.transmission_time ~size:p.Packet.size ~rate:t.bandwidth in
    t.busy_time <- t.busy_time +. tx;
    Engine.post_in t.engine ~after:tx (Pool.event t.tx_pool p)

(* The transmit-complete action needs [start_transmission], which needs
   the pools, so it is installed lazily on the first send. *)
let arm_tx_pool t =
  Pool.set_fire t.tx_pool (fun p ->
      propagate t p;
      start_transmission t)

let send t p =
  if t.offered_pkts = 0 then arm_tx_pool t;
  t.offered_pkts <- t.offered_pkts + 1;
  let now = Engine.now t.engine in
  let accepted = t.q.Queue_disc.enqueue ~now p in
  if Pcc_trace.Collector.enabled () then
    Pcc_trace.Collector.emit
      (if accepted then Pcc_trace.Event.Enqueue else Pcc_trace.Event.Drop)
      ~time:now ~id:t.trace_id
      ~a:(float_of_int (t.q.Queue_disc.len_bytes ()))
      ~b:0. ~i:p.Packet.flow;
  if accepted && not t.busy then start_transmission t

let set_bandwidth t bw =
  if bw <= 0. then invalid_arg "Link.set_bandwidth: must be positive";
  t.bandwidth <- bw

let set_delay t d =
  if d < 0. then invalid_arg "Link.set_delay: must be non-negative";
  if t.remote <> None && d < t.floor then
    invalid_arg
      (Printf.sprintf
         "Link.set_delay: %g is below the %g lookahead floor of this \
          cross-shard link"
         d t.floor);
  t.delay <- d

let set_loss t l = t.loss <- Float.max 0. (Float.min 1. l)

let set_jitter t j =
  if j < 0. then invalid_arg "Link.set_jitter: must be non-negative";
  t.jitter <- j

let set_duplication t p = t.dup_prob <- Float.max 0. (Float.min 1. p)

let set_reordering t ~prob ~extra =
  if extra < 0. then invalid_arg "Link.set_reordering: extra must be non-negative";
  t.reorder_prob <- Float.max 0. (Float.min 1. prob);
  t.reorder_extra <- extra

let bandwidth t = t.bandwidth
let delay t = t.delay
let loss t = t.loss
let jitter t = t.jitter
let queue t = t.q
let offered_pkts t = t.offered_pkts
let in_flight_pkts t = (if t.busy then 1 else 0) + t.propagating
let delivered_pkts t = t.delivered_pkts
let delivered_bytes t = t.delivered_bytes
let channel_losses t = t.channel_losses
let duplicated_pkts t = t.duplicated_pkts
let duplicated_bytes t = t.duplicated_bytes
let reordered_pkts t = t.reordered_pkts
let busy_time t = t.busy_time
let name t = t.name
let trace_id t = t.trace_id
