(** A pure propagation-delay element with no bandwidth constraint or
    buffer, optionally with Bernoulli loss. Used for per-flow access
    segments (so competing flows can have different RTTs while sharing one
    bottleneck {!Link}) and for uncongested-but-lossy reverse paths. *)

type t

val create :
  Pcc_sim.Engine.t ->
  ?loss:float ->
  ?rng:Pcc_sim.Rng.t ->
  delay:float ->
  unit ->
  t
(** [create engine ~delay ()] delays every packet by [delay] seconds. If
    [loss] is positive an [rng] must be supplied; packets are then dropped
    independently with that probability.
    @raise Invalid_argument if [delay < 0], or if [loss > 0] without
    an [rng]. *)

val set_receiver : t -> (Packet.t -> unit) -> unit
(** Attach the downstream delivery callback. *)

val set_remote : t -> floor:float -> (arrival:float -> Packet.t -> unit) -> unit
(** Turn this line into a cross-shard boundary (see
    {!Link.set_remote_delivery}): {!send} computes loss sender-side —
    preserving the RNG stream order — then hands surviving packets to
    the channel with their exact arrival instant. {!set_delay} below
    [floor] is rejected.
    @raise Invalid_argument if [floor] is not positive or exceeds the
    current delay. *)

val deliver_remote : t -> Packet.t -> unit
(** Destination-shard delivery: runs the receiver callback. Call only
    from the shard owning the downstream component, at arrival time. *)

val send : t -> Packet.t -> unit
(** Forward a packet; it arrives downstream after the configured delay
    unless lost. *)

val set_delay : t -> float -> unit
(** Change the delay for subsequent packets. *)

val set_loss : t -> float -> unit
(** Change the loss probability (requires an [rng] at creation if > 0). *)

val delay : t -> float
