(** Queue disciplines for link buffers.

    A queue discipline is a first-class value so links can be composed with
    DropTail, CoDel, RED or fair-queuing buffers without functorizing the
    link code. Disciplines are allowed to drop packets at enqueue time
    (DropTail, RED) or at dequeue time (CoDel); all drops are counted. *)

type t = {
  name : string;
  enqueue : now:float -> Packet.t -> bool;
      (** [enqueue ~now p] accepts or drops [p]; [false] means dropped. *)
  dequeue : now:float -> Packet.t option;
      (** [dequeue ~now] removes the next packet to transmit, possibly
          dropping packets internally first (CoDel). *)
  peek : unit -> Packet.t option;
      (** The packet {!dequeue} would consider next, without removing it.
          For disciplines with dequeue-time drops this is a hint only. *)
  len_bytes : unit -> int;  (** Bytes currently buffered. *)
  len_pkts : unit -> int;  (** Packets currently buffered. *)
  drops : unit -> int;  (** Total packets dropped so far. *)
  capacity_bytes : unit -> int option;
      (** The discipline's byte-occupancy bound, if it has one: the
          invariant checker asserts [len_bytes () <= capacity]. [None] for
          unbounded queues. Packet-limited queues report
          [capacity * MSS]; fair queuing reports the sum of its current
          sub-queues' bounds, which grows as flows appear. *)
}

val droptail_bytes : capacity:int -> unit -> t
(** FIFO with a byte-capacity limit: an arriving packet that does not fit
    entirely is dropped. [capacity] is clamped up to one MSS so a single
    packet can always be buffered (a zero-buffer router could never forward
    anything). *)

val droptail_pkts : capacity:int -> unit -> t
(** FIFO limited to [capacity] packets (at least 1). *)

val infinite : unit -> t
(** FIFO that never drops — used for uncongested reverse paths and for
    "bufferbloat" scenarios. *)

val codel :
  ?target:float -> ?interval:float -> capacity:int -> unit -> t
(** The CoDel AQM (Nichols & Jacobson) over a byte-limited FIFO:
    packets whose queue sojourn time stays above [target] (default 5 ms)
    for at least [interval] (default 100 ms) are dropped at dequeue, with
    the drop rate increasing by the inverse-sqrt control law. *)

val red :
  ?min_th:int -> ?max_th:int -> ?max_p:float -> capacity:int -> unit -> t
(** Random Early Detection over a byte-limited FIFO: arriving packets are
    dropped with probability rising linearly from 0 at [min_th] bytes of
    average queue to [max_p] at [max_th], and always beyond. The averaging
    uses an EWMA with the classic 1/512 weight per arrival. Thresholds
    default to capacity/4 and capacity/2. *)

val fq : ?quantum:int -> per_flow:(unit -> t) -> unit -> t
(** Deficit-round-robin fair queuing: each flow gets its own sub-queue
    built by [per_flow] and service rotates with byte [quantum] (default
    one MSS, clamped up to one MSS). Models Linux [fq] used in §4.4. *)

val pp_stats : Format.formatter -> t -> unit
(** Render occupancy and drop counters, for debugging and logs. *)
