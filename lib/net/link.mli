(** A unidirectional link: serialization at a bandwidth, a buffer in front
    of it, propagation delay, and optional random channel loss.

    Packets handed to {!send} pass through the queue discipline, are
    serialized one at a time at the link bandwidth, then propagate for the
    link delay (plus optional jitter) before being delivered to the
    receiver callback. Channel loss applies after serialization — a lost
    packet still consumed bottleneck bandwidth, which is how random
    (non-congestion) loss behaves on real lossy links.

    Bandwidth, delay, loss rate and jitter can be changed while the
    simulation runs (the rapidly-changing-network experiment of §4.1.7 and
    the fault-injection layer depend on this). The link can also be put
    into pathological-path episodes — packet duplication and reordering —
    via {!set_duplication} and {!set_reordering}.

    The link keeps conservation counters ({!offered_pkts},
    {!in_flight_pkts}, {!delivered_pkts}, {!channel_losses},
    {!duplicated_pkts}) precise enough that at any instant between events

    {[offered + duplicated
      = delivered + channel_losses + queue drops + queued + in flight]}

    which is the packet-conservation invariant checked by
    [Pcc_scenario.Invariant]. *)

type t

val create :
  Pcc_sim.Engine.t ->
  ?name:string ->
  ?loss:float ->
  ?jitter:float ->
  rng:Pcc_sim.Rng.t ->
  bandwidth:float ->
  delay:float ->
  queue:Queue_disc.t ->
  unit ->
  t
(** [create engine ~rng ~bandwidth ~delay ~queue ()] is a link with the
    given bandwidth (bits per second), one-way propagation [delay]
    (seconds), Bernoulli channel [loss] probability (default 0) and
    uniform extra [jitter] (seconds, default 0). The receiver must be
    attached with {!set_receiver} before any packet finishes propagation.
    @raise Invalid_argument if [bandwidth <= 0] or [delay < 0]. *)

val set_receiver : t -> (Packet.t -> unit) -> unit
(** [set_receiver t f] makes [f] the delivery callback at the far end. *)

val set_remote_delivery :
  t -> floor:float -> (arrival:float -> Packet.t -> unit) -> unit
(** Turn this link into a cross-shard boundary: propagation completion
    calls the given channel-send with the exact arrival instant (the
    same float expression the local path would post at) instead of
    scheduling into this engine. [floor] is the channel's lookahead
    contract: {!set_delay} below it is rejected. The destination shard
    completes deliveries with {!deliver_remote}.
    @raise Invalid_argument if [floor] is not positive or exceeds the
    current delay. *)

val deliver_remote : t -> Packet.t -> unit
(** Destination-shard half of a boundary link: counts the delivery
    ({!delivered_pkts}/{!delivered_bytes} are single-writer on the
    destination domain for a remote link) and runs the receiver
    callback. Call only from the shard owning the receiving node, at
    the packet's arrival time. *)

val send : t -> Packet.t -> unit
(** [send t p] offers [p] to the link's buffer; it is silently dropped if
    the queue discipline rejects it. *)

val set_bandwidth : t -> float -> unit
(** Change the serialization rate for subsequently transmitted packets.

    {b Mid-transmission semantics:} a packet whose serialization is already
    in progress completes at the {e old} rate — its completion event was
    scheduled when serialization began and is deliberately not rescheduled.
    The new rate takes effect with the next packet dequeued. This mirrors a
    real-world rate change taking effect at the next frame boundary, and it
    means a bandwidth-cliff fault injected mid-packet delays the rate
    change's first observable effect by at most one serialization time.
    The regression test ["bandwidth change mid-transmission"] in
    [test/test_net.ml] pins this behaviour.
    @raise Invalid_argument if the rate is not positive. *)

val set_delay : t -> float -> unit
(** Change the propagation delay for subsequently transmitted packets.
    Packets already propagating keep their old arrival time, so a delay
    {e decrease} can reorder deliveries — exactly as on a real rerouted
    path. *)

val set_loss : t -> float -> unit
(** Change the channel loss probability (clamped to [\[0,1\]]). *)

val set_jitter : t -> float -> unit
(** Change the uniform extra propagation-delay bound (seconds).
    @raise Invalid_argument if negative. *)

val set_duplication : t -> float -> unit
(** [set_duplication t p] makes each successfully propagated packet be
    delivered a second time with probability [p] (clamped to [\[0,1\]]).
    Duplicates consume no extra serialization time — they model a
    duplicating middlebox after the bottleneck. *)

val set_reordering : t -> prob:float -> extra:float -> unit
(** [set_reordering t ~prob ~extra] delays each propagated packet by an
    additional [extra] seconds with probability [prob], causing it to
    arrive behind later-sent packets.
    @raise Invalid_argument if [extra < 0]. *)

val bandwidth : t -> float
val delay : t -> float
val loss : t -> float
val jitter : t -> float
val queue : t -> Queue_disc.t

val offered_pkts : t -> int
(** Packets ever handed to {!send}, whether or not the queue accepted
    them. *)

val in_flight_pkts : t -> int
(** Packets currently being serialized (0 or 1) plus packets propagating
    toward the receiver (including scheduled duplicates). On a
    cross-shard link ({!set_remote_delivery}) packets in the channel are
    not counted — the propagating counter would need writes from two
    domains — so the conservation invariant is only checked on unsharded
    runs. *)

val delivered_pkts : t -> int
(** Packets that reached the receiver callback (duplicates included). *)

val delivered_bytes : t -> int
val channel_losses : t -> int
(** Packets dropped by the random-loss process (not by the queue). *)

val duplicated_pkts : t -> int
(** Extra deliveries scheduled by the duplication episode. *)

val duplicated_bytes : t -> int
(** Bytes of those extra deliveries — duplicates consume no serialization
    time, so throughput bounds subtract them from {!delivered_bytes}. *)

val reordered_pkts : t -> int
(** Packets given the reordering extra delay. *)

val busy_time : t -> float
(** Cumulative time the transmitter spent serializing packets — divided by
    elapsed time this is the link utilization. *)

val name : t -> string
(** The diagnostics label given at {!create}. *)

val trace_id : t -> int
(** The link's identity in the trace layer's link id space (see
    [Pcc_trace]); assigned at {!create} from a process-global counter. *)
