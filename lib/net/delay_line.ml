open Pcc_sim

type t = {
  engine : Engine.t;
  mutable delay : float;
  mutable loss : float;
  rng : Rng.t option;
  mutable receiver : Packet.t -> unit;
  (* In-flight packets ride pooled slots: one reusable closure per slot
     instead of a fresh capture per packet (see {!Pool}). *)
  inflight : Packet.t Pool.t;
  (* Sharded boundary endpoint, as on {!Link}: when set, delivery goes
     through the cross-shard channel at the exact arrival instant. *)
  mutable remote : (arrival:float -> Packet.t -> unit) option;
  mutable floor : float;
}

(* Scrub value for released pool slots; never delivered. *)
let dummy_packet =
  Packet.data ~flow:(-1) ~seq:(-1) ~size:0 ~now:0. ~retx:false

let create engine ?(loss = 0.) ?rng ~delay () =
  if delay < 0. then invalid_arg "Delay_line.create: delay must be non-negative";
  if loss > 0. && rng = None then
    invalid_arg "Delay_line.create: loss requires an rng";
  let t =
    {
      engine;
      delay;
      loss;
      rng;
      receiver = (fun _ -> failwith "Delay_line: no receiver attached");
      inflight = Pool.create ~dummy:dummy_packet ();
      remote = None;
      floor = 0.;
    }
  in
  Pool.set_fire t.inflight (fun p -> t.receiver p);
  Engine.add_owned engine (fun () -> Pool.adopt t.inflight);
  Engine.add_reclaim engine (fun () -> Pool.clear t.inflight);
  t

let set_receiver t f = t.receiver <- f

let set_remote t ~floor f =
  if not (floor > 0.) then
    invalid_arg "Delay_line.set_remote: floor must be positive";
  if floor > t.delay then
    invalid_arg "Delay_line.set_remote: floor exceeds the line delay";
  t.remote <- Some f;
  t.floor <- floor

let deliver_remote t p = t.receiver p

let send t p =
  (* Loss is decided sender-side in both paths, so the RNG stream is
     consumed in the same order whether or not the line is cut. *)
  let lost =
    t.loss > 0.
    && match t.rng with Some rng -> Rng.bernoulli rng t.loss | None -> false
  in
  if not lost then
    match t.remote with
    | None -> Engine.post_in t.engine ~after:t.delay (Pool.event t.inflight p)
    | Some send -> send ~arrival:(Engine.now t.engine +. t.delay) p

let set_delay t d =
  if d < 0. then invalid_arg "Delay_line.set_delay: must be non-negative";
  if t.remote <> None && d < t.floor then
    invalid_arg
      (Printf.sprintf
         "Delay_line.set_delay: %g is below the %g lookahead floor of this \
          cross-shard line"
         d t.floor);
  t.delay <- d

let set_loss t l =
  if l > 0. && t.rng = None then
    invalid_arg "Delay_line.set_loss: loss requires an rng";
  t.loss <- Float.max 0. (Float.min 1. l)

let delay t = t.delay
