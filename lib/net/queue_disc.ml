type t = {
  name : string;
  enqueue : now:float -> Packet.t -> bool;
  dequeue : now:float -> Packet.t option;
  peek : unit -> Packet.t option;
  len_bytes : unit -> int;
  len_pkts : unit -> int;
  drops : unit -> int;
  capacity_bytes : unit -> int option;
}

(* Shared FIFO core: all disciplines below are policies layered on it. *)
module Fifo = struct
  type fifo = { q : Packet.t Queue.t; mutable bytes : int }

  let create () = { q = Queue.create (); bytes = 0 }

  let push f (p : Packet.t) =
    Queue.push p f.q;
    f.bytes <- f.bytes + p.size

  let pop f =
    match Queue.take_opt f.q with
    | None -> None
    | Some p ->
      f.bytes <- f.bytes - p.size;
      Some p

  let peek f = Queue.peek_opt f.q
  let bytes f = f.bytes
  let pkts f = Queue.length f.q
end

let droptail_generic ~name ~fits ?(capacity_bytes = fun () -> None) () =
  let f = Fifo.create () in
  let drops = ref 0 in
  {
    name;
    enqueue =
      (fun ~now p ->
        if fits f p then begin
          p.Packet.enqueued_at <- now;
          Fifo.push f p;
          true
        end
        else begin
          incr drops;
          false
        end);
    dequeue = (fun ~now:_ -> Fifo.pop f);
    peek = (fun () -> Fifo.peek f);
    len_bytes = (fun () -> Fifo.bytes f);
    len_pkts = (fun () -> Fifo.pkts f);
    drops = (fun () -> !drops);
    capacity_bytes;
  }

let droptail_bytes ~capacity () =
  let capacity = max capacity Pcc_sim.Units.mss in
  droptail_generic ~name:"droptail"
    ~fits:(fun f p -> Fifo.bytes f + p.Packet.size <= capacity)
    ~capacity_bytes:(fun () -> Some capacity)
    ()

let droptail_pkts ~capacity () =
  let capacity = max capacity 1 in
  droptail_generic ~name:"droptail-pkts" ~fits:(fun f _ -> Fifo.pkts f < capacity)
    ~capacity_bytes:(fun () -> Some (capacity * Pcc_sim.Units.mss))
    ()

let infinite () = droptail_generic ~name:"infinite" ~fits:(fun _ _ -> true) ()

(* CoDel per the ACM Queue pseudocode (Nichols & Jacobson, 2012). *)
let codel ?(target = 0.005) ?(interval = 0.1) ~capacity () =
  let capacity = max capacity Pcc_sim.Units.mss in
  let f = Fifo.create () in
  let drops = ref 0 in
  let first_above = ref 0. in
  let drop_next = ref 0. in
  let count = ref 0 in
  let lastcount = ref 0 in
  let dropping = ref false in
  let control_law t cnt = t +. (interval /. sqrt (float_of_int (max 1 cnt))) in
  (* Pop one packet and decide whether CoDel would drop it. *)
  let dodeque now =
    match Fifo.pop f with
    | None ->
      first_above := 0.;
      None
    | Some p ->
      let sojourn = now -. p.Packet.enqueued_at in
      let ok_to_drop =
        if sojourn < target || Fifo.bytes f <= Pcc_sim.Units.mss then begin
          first_above := 0.;
          false
        end
        else if !first_above = 0. then begin
          first_above := now +. interval;
          false
        end
        else now >= !first_above
      in
      Some (p, ok_to_drop)
  in
  let dequeue ~now =
    match dodeque now with
    | None ->
      dropping := false;
      None
    | Some (p, ok) ->
      if !dropping then begin
        if not ok then begin
          dropping := false;
          Some p
        end
        else begin
          (* While in dropping state, drop at the control-law schedule. *)
          let result = ref (Some p) in
          let continue = ref true in
          while !continue && !dropping && now >= !drop_next do
            match !result with
            | None -> continue := false
            | Some victim -> (
              ignore victim;
              incr drops;
              incr count;
              match dodeque now with
              | None ->
                dropping := false;
                result := None
              | Some (p', ok') ->
                result := Some p';
                if not ok' then dropping := false
                else drop_next := control_law !drop_next !count)
          done;
          !result
        end
      end
      else begin
        if ok && (now -. !drop_next < interval || now -. !first_above >= interval)
        then begin
          (* Enter dropping state: drop this packet, deliver the next. *)
          incr drops;
          dropping := true;
          let cnt =
            if now -. !drop_next < interval then
              if !count > 2 then !count - 2 else 1
            else 1
          in
          count := cnt;
          lastcount := cnt;
          drop_next := control_law now !count;
          match dodeque now with
          | None ->
            dropping := false;
            None
          | Some (p', _) -> Some p'
        end
        else Some p
      end
  in
  {
    name = "codel";
    enqueue =
      (fun ~now p ->
        if Fifo.bytes f + p.Packet.size <= capacity then begin
          p.Packet.enqueued_at <- now;
          Fifo.push f p;
          true
        end
        else begin
          incr drops;
          false
        end);
    dequeue;
    peek = (fun () -> Fifo.peek f);
    len_bytes = (fun () -> Fifo.bytes f);
    len_pkts = (fun () -> Fifo.pkts f);
    drops = (fun () -> !drops);
    capacity_bytes = (fun () -> Some capacity);
  }

let red ?min_th ?max_th ?(max_p = 0.1) ~capacity () =
  let capacity = max capacity Pcc_sim.Units.mss in
  let min_th = match min_th with Some v -> v | None -> capacity / 4 in
  let max_th = match max_th with Some v -> max (min_th + 1) v | None -> capacity / 2 in
  let f = Fifo.create () in
  let drops = ref 0 in
  let avg = ref 0. in
  let weight = 1. /. 512. in
  (* Deterministic thinning: drop every ceil(1/p)-th marked packet instead of
     coin flips, so RED queues stay reproducible without threading an RNG. *)
  let since_drop = ref 0 in
  {
    name = "red";
    enqueue =
      (fun ~now p ->
        avg := ((1. -. weight) *. !avg) +. (weight *. float_of_int (Fifo.bytes f));
        let drop =
          if Fifo.bytes f + p.Packet.size > capacity then true
          else if !avg >= float_of_int max_th then true
          else if !avg <= float_of_int min_th then false
          else begin
            let frac =
              (!avg -. float_of_int min_th) /. float_of_int (max_th - min_th)
            in
            let prob = frac *. max_p in
            incr since_drop;
            if prob > 0. && float_of_int !since_drop >= 1. /. prob then begin
              since_drop := 0;
              true
            end
            else false
          end
        in
        if drop then begin
          incr drops;
          false
        end
        else begin
          p.Packet.enqueued_at <- now;
          Fifo.push f p;
          true
        end);
    dequeue = (fun ~now:_ -> Fifo.pop f);
    peek = (fun () -> Fifo.peek f);
    len_bytes = (fun () -> Fifo.bytes f);
    len_pkts = (fun () -> Fifo.pkts f);
    drops = (fun () -> !drops);
    capacity_bytes = (fun () -> Some capacity);
  }

(* Deficit round robin (Shreedhar & Varghese) with pluggable per-flow
   sub-queues, so FQ+CoDel composes from the pieces above. *)
let fq ?(quantum = Pcc_sim.Units.mss) ~per_flow () =
  let quantum = max quantum Pcc_sim.Units.mss in
  let flows : (int, t * int ref * bool ref) Hashtbl.t = Hashtbl.create 16 in
  let active : int Queue.t = Queue.create () in
  let drops_here = ref 0 in
  let flow_state id =
    match Hashtbl.find_opt flows id with
    | Some st -> st
    | None ->
      let st = (per_flow (), ref 0, ref false) in
      Hashtbl.add flows id st;
      st
  in
  let total f = Hashtbl.fold (fun _ (q, _, _) acc -> acc + f q) flows 0 in
  let enqueue ~now (p : Packet.t) =
    let q, _, is_active = flow_state p.flow in
    let accepted = q.enqueue ~now p in
    if accepted && not !is_active then begin
      is_active := true;
      Queue.push p.flow active
    end;
    accepted
  in
  let rec dequeue ~now =
    match Queue.peek_opt active with
    | None -> None
    | Some id -> (
      let q, deficit, is_active = flow_state id in
      match q.peek () with
      | None ->
        (* Sub-queue drained (or only holds packets CoDel will drop):
           retire the flow from the active list and keep going. *)
        ignore (Queue.pop active);
        is_active := false;
        deficit := 0;
        dequeue ~now
      | Some head ->
        if head.size <= !deficit then begin
          match q.dequeue ~now with
          | Some p ->
            deficit := !deficit - p.size;
            if q.peek () = None then begin
              ignore (Queue.pop active);
              is_active := false;
              deficit := 0
            end;
            Some p
          | None ->
            (* CoDel consumed the remaining packets at dequeue time. *)
            ignore (Queue.pop active);
            is_active := false;
            deficit := 0;
            dequeue ~now
        end
        else begin
          deficit := !deficit + quantum;
          ignore (Queue.pop active);
          Queue.push id active;
          dequeue ~now
        end)
  in
  {
    name = "fq";
    enqueue;
    dequeue;
    peek =
      (fun () ->
        match Queue.peek_opt active with
        | None -> None
        | Some id ->
          let q, _, _ = flow_state id in
          q.peek ());
    len_bytes = (fun () -> total (fun q -> q.len_bytes ()));
    len_pkts = (fun () -> total (fun q -> q.len_pkts ()));
    drops = (fun () -> !drops_here + total (fun q -> q.drops ()));
    (* The aggregate bound depends on how many flows have appeared, so it
       is only meaningful as a point-in-time figure. *)
    capacity_bytes =
      (fun () ->
        Hashtbl.fold
          (fun _ (q, _, _) acc ->
            match (acc, q.capacity_bytes ()) with
            | Some a, Some c -> Some (a + c)
            | _ -> None)
          flows (Some 0));
  }

let pp_stats fmt t =
  Format.fprintf fmt "%s: %d pkts / %d bytes queued, %d drops" t.name
    (t.len_pkts ()) (t.len_bytes ()) (t.drops ())
