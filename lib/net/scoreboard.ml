(* Flat SACK scoreboard.

   Sequence numbers are dense (allocated 0,1,2,... by [fresh_seq]), so
   per-sequence tracking lives in directly-indexed flat arrays instead
   of [Set]/[Hashtbl]: one state byte and one send-time float per
   sequence. Profiling the fig7/fig9 experiments put over half the
   simulation time in [Hashtbl] and [Set] operations; the flat layout
   replaces every hot lookup with an array load.

   State byte, per sequence: the low two bits are the tracking kind
   (0 untracked, 1 outstanding, 2 SACKed above the cumulative ack);
   bit 2 flags membership in the retransmission queue. [sent_at] keeps
   the last transmission time and is only consulted for sequences
   currently outstanding, so stale values for resolved sequences are
   harmless (the hash-table version deleted them; the reads are guarded
   by the outstanding check either way).

   Ascending iteration over outstanding sequences (loss detection,
   stale sweeps) is a byte scan from [min_out] — a cursor below which
   no sequence is outstanding. Windows are bounded by the flow's
   bandwidth-delay product, so the scan touches a few hundred
   contiguous bytes where the sets walked pointer-linked balanced
   trees. Memory is O(total sequences sent) per flow rather than
   O(window); at 9 bytes per packet a 60-second gigabit flow costs a
   few megabytes, which the many-flow experiments bound by giving each
   flow a finite transfer. *)

type t = {
  dupthresh : int;
  mutable high_ack : int;
  mutable highest_sacked : int;
  mutable state : Bytes.t;
  mutable sent_at : float array;
  mutable min_out : int;  (* no outstanding sequence lies below this *)
  mutable inflight : int;
  retx_q : int Queue.t;
  mutable next : int;
  mutable limit : int option;
  mutable acked_pkts : int;
}

let initial_cap = 256

let create ?(dupthresh = 3) () =
  {
    dupthresh;
    high_ack = -1;
    highest_sacked = -1;
    state = Bytes.make initial_cap '\000';
    sent_at = Array.make initial_cap 0.;
    min_out = 0;
    inflight = 0;
    retx_q = Queue.create ();
    next = 0;
    limit = None;
    acked_pkts = 0;
  }

let ensure t seq =
  let cap = Bytes.length t.state in
  if seq >= cap then begin
    let ncap = ref (cap * 2) in
    while seq >= !ncap do
      ncap := !ncap * 2
    done;
    let nstate = Bytes.make !ncap '\000' in
    Bytes.blit t.state 0 nstate 0 cap;
    t.state <- nstate;
    let nsent = Array.make !ncap 0. in
    Array.blit t.sent_at 0 nsent 0 cap;
    t.sent_at <- nsent
  end

let kind t seq = Char.code (Bytes.unsafe_get t.state seq) land 3

let set_kind t seq k =
  Bytes.unsafe_set t.state seq
    (Char.unsafe_chr ((Char.code (Bytes.unsafe_get t.state seq) land lnot 3) lor k))

let limit_pkts t n = t.limit <- Some n

let fresh_seq t =
  match t.limit with
  | Some n when t.next >= n -> None
  | Some _ | None ->
    let seq = t.next in
    t.next <- seq + 1;
    ensure t seq;
    Some seq

(* All sequences reaching the scoreboard were issued by [fresh_seq], so
   they are below [next] and in capacity after [ensure] at issue time. *)
let delivered t seq = seq <= t.high_ack || kind t seq = 2

let record_send t seq ~now =
  ensure t seq;
  t.sent_at.(seq) <- now;
  if (not (delivered t seq)) && kind t seq <> 1 then begin
    set_kind t seq 1;
    t.inflight <- t.inflight + 1;
    if seq < t.min_out then t.min_out <- seq
  end

let remove_outstanding t seq =
  if kind t seq = 1 then begin
    set_kind t seq 0;
    t.inflight <- t.inflight - 1
  end

let on_ack t (a : Packet.ack) =
  let newly = ref [] in
  let seq = a.Packet.acked_seq in
  ensure t seq;
  if seq > t.high_ack && kind t seq <> 2 then begin
    newly := seq :: !newly;
    remove_outstanding t seq;
    set_kind t seq 2;
    if seq > t.highest_sacked then t.highest_sacked <- seq
  end;
  if a.Packet.cum_ack > t.high_ack then begin
    (* Sequences covered only by the cumulative ack were delivered even if
       their own acks were lost on the reverse path. *)
    ensure t a.Packet.cum_ack;
    for s = t.high_ack + 1 to a.Packet.cum_ack do
      if kind t s = 2 then set_kind t s 0 (* now covered by [high_ack] *)
      else begin
        newly := s :: !newly;
        remove_outstanding t s
      end
    done;
    t.high_ack <- a.Packet.cum_ack
  end;
  t.acked_pkts <- t.acked_pkts + List.length !newly;
  List.rev !newly

let queue_retx t seq =
  let st = Char.code (Bytes.unsafe_get t.state seq) in
  if st land 4 = 0 then begin
    Bytes.unsafe_set t.state seq (Char.unsafe_chr (st lor 4));
    Queue.push seq t.retx_q
  end

(* Advance the outstanding cursor past resolved sequences. *)
let advance_min_out t =
  while t.min_out < t.next && kind t t.min_out <> 1 do
    t.min_out <- t.min_out + 1
  done

let detect_losses t ~now ~min_age =
  (* Age guard: a hole below the SACK threshold only counts as lost if its
     last transmission is old enough that its ack would have arrived. This
     is what keeps a just-retransmitted low sequence (necessarily below
     [highest_sacked - dupthresh]) from being re-marked lost on every
     subsequent ack — the spurious-retransmission storm. *)
  let threshold = t.highest_sacked - t.dupthresh in
  let lost = ref [] in
  advance_min_out t;
  let hi = if threshold < t.next - 1 then threshold else t.next - 1 in
  for seq = t.min_out to hi do
    if kind t seq = 1 && now -. t.sent_at.(seq) >= min_age then begin
      remove_outstanding t seq;
      queue_retx t seq;
      lost := seq :: !lost
    end
  done;
  List.rev !lost

let mark_lost t seq ~now ~min_age =
  if
    kind t seq = 1
    && now -. t.sent_at.(seq) >= min_age
  then begin
    remove_outstanding t seq;
    queue_retx t seq;
    true
  end
  else false

let sweep_stale t ~now ~min_age =
  let stale = ref [] in
  advance_min_out t;
  for seq = t.min_out to t.next - 1 do
    if kind t seq = 1 && now -. t.sent_at.(seq) >= min_age then
      stale := seq :: !stale
  done;
  List.iter
    (fun seq ->
      remove_outstanding t seq;
      queue_retx t seq)
    !stale;
  List.rev !stale

let rec take_retx t =
  match Queue.take_opt t.retx_q with
  | None -> None
  | Some seq ->
    let st = Char.code (Bytes.unsafe_get t.state seq) in
    Bytes.unsafe_set t.state seq (Char.unsafe_chr (st land lnot 4));
    if delivered t seq then take_retx t else Some seq

let has_retx t =
  (* Cheap check; stale entries are filtered at take time. *)
  not (Queue.is_empty t.retx_q)

let high_ack t = t.high_ack
let highest_sacked t = t.highest_sacked
let inflight t = t.inflight
let acked_pkts t = t.acked_pkts
let next_seq t = t.next

let complete t =
  match t.limit with Some n -> t.high_ack >= n - 1 | None -> false
