open Pcc_sim

(* Duplicate detection and cumulative-ack reassembly over a flat
   per-sequence byte array. Sequences are dense, so [seen] is directly
   indexed; the out-of-order set of the tree-based version is implicit —
   it is exactly the seen sequences above [cum_ack], and advancing the
   cumulative ack is a walk over contiguous seen bytes. This removes the
   per-packet [Hashtbl] probe and [Set] rebalance from the hottest
   receive path. *)

type t = {
  engine : Engine.t;
  ack_out : Packet.t -> unit;
  mutable cum_ack : int;
  mutable goodput_bytes : int;
  mutable received_pkts : int;
  mutable seen : Bytes.t;  (* one byte per sequence; 1 = received *)
}

let create engine ~ack_out =
  {
    engine;
    ack_out;
    cum_ack = -1;
    goodput_bytes = 0;
    received_pkts = 0;
    seen = Bytes.make 1024 '\000';
  }

let ensure t seq =
  let cap = Bytes.length t.seen in
  if seq >= cap then begin
    let ncap = ref (cap * 2) in
    while seq >= !ncap do
      ncap := !ncap * 2
    done;
    let nseen = Bytes.make !ncap '\000' in
    Bytes.blit t.seen 0 nseen 0 cap;
    t.seen <- nseen
  end

let advance t =
  let len = Bytes.length t.seen in
  while
    t.cum_ack + 1 < len && Bytes.unsafe_get t.seen (t.cum_ack + 1) = '\001'
  do
    t.cum_ack <- t.cum_ack + 1
  done

let on_packet t (p : Packet.t) =
  match p.kind with
  | Packet.Ack _ -> ()
  | Packet.Data _ ->
    t.received_pkts <- t.received_pkts + 1;
    ensure t p.seq;
    if Bytes.unsafe_get t.seen p.seq = '\000' then begin
      Bytes.unsafe_set t.seen p.seq '\001';
      t.goodput_bytes <- t.goodput_bytes + p.size;
      if p.seq = t.cum_ack + 1 then advance t
    end;
    let now = Engine.now t.engine in
    t.ack_out
      (Packet.ack_of p ~cum_ack:t.cum_ack ~recv_bytes:t.goodput_bytes ~now)

let goodput_bytes t = t.goodput_bytes
let received_pkts t = t.received_pkts
let cum_ack t = t.cum_ack
