(** The rapidly-changing-network driver of §4.1.7: every [period] one
    topology link's bandwidth, base RTT and loss rate are redrawn
    uniformly from the given ranges. Records the bandwidth (= optimal
    send rate) series for comparison with each protocol's rate tracking.

    Drive a [Path] dumbbell with
    [start engine ~rng ~topo:(Path.topology path) ()] — link 0 is the
    bottleneck. *)

type t

val start :
  Pcc_sim.Engine.t ->
  rng:Pcc_sim.Rng.t ->
  topo:Topology.t ->
  ?link:Topology.link_id ->
  ?period:float ->
  ?bw_range:float * float ->
  ?rtt_range:float * float ->
  ?loss_range:float * float ->
  unit ->
  t
(** Paper parameters by default: link 0, period 5 s, bandwidth
    10–100 Mbps, RTT 10–100 ms, loss 0–1 %. The first redraw happens
    immediately. RTT redraw goes through {!Topology.set_base_rtt}, so it
    retargets the chosen link's delay plus every ideal reverse line.
    @raise Invalid_argument if [link] is out of range. *)

val stop : t -> unit

val optimal_series : t -> (float * float) array
(** [(time, bandwidth_bps)] at each change point. *)

val mean_optimal : t -> until:float -> float
(** Time-weighted mean of the optimal rate from the start until
    [until]. *)
