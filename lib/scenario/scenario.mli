(** First-class scenario programs: a serializable, generatable description
    of one complete simulation — topology, sender mix, fault schedule,
    link dynamics and cross traffic.

    The hand-written experiments cover the paper's evaluation points; a
    {!t} covers the space {e between} them. It is plain data: it can be
    drawn at random from a seeded {!generate}, stored and replayed
    byte-for-byte through {!to_string}/{!of_string} (explicit
    {!Pcc_sim.Persist} framing, never [Marshal]), minimized by the
    fuzzer's shrinker, and compiled onto an engine with {!build}. The
    fuzzing harness ([Pcc_fuzz]) and the [pcc_sim fuzz] subcommand are
    the main consumers; the ROADMAP's declarative scenario bank grows
    from this type.

    {b Determinism.} [build] derives every random stream from
    [t.seed] alone, in a fixed split order (topology, then dynamics,
    then one stream per cross-traffic source), so running the same
    scenario value twice reproduces every simulated event bit-for-bit —
    the property the fuzzer's determinism oracle checks. *)

type link = {
  src : int;
  dst : int;
  bandwidth : float;  (** bits/s *)
  delay : float;  (** one-way propagation, s *)
  buffer : int;  (** bytes *)
  queue : Topology.queue_kind;
  loss : float;
  jitter : float;
}

type flow = {
  transport : string;  (** A {!Transport.of_name} name. *)
  route : int list;
  rev_route : int list option;
  rev_lossy : bool;
  start_at : float;
  stop_at : float option;
  size : int option;
  extra_rtt : float;
}

type cross = {
  cross_link : int;  (** Link the on/off source shares. *)
  rate : float;  (** bits/s while ON. *)
  on_mean : float;
  off_mean : float;
}

type dynamics = {
  dyn_link : int;
  period : float;
  bw_lo : float;
  bw_hi : float;
  rtt_lo : float;
  rtt_hi : float;
  loss_lo : float;
  loss_hi : float;
}

type t = {
  seed : int;  (** Seed of every random stream [build] derives. *)
  duration : float;  (** Simulated seconds the scenario runs for. *)
  links : link list;
  flows : flow list;
  faults : Fault.schedule;
  cross : cross list;
  dynamics : dynamics option;
}

val equal : t -> t -> bool
(** Structural equality ([compare]-based, so NaN equals itself) — what
    the serialization roundtrip oracle checks. *)

val describe : t -> string
(** One-line summary: shape, flow mix, fault/cross/dynamics counts. *)

(** {1 Building} *)

type built = {
  topo : Topology.t;
  stop : unit -> unit;
      (** Stop the dynamics driver and cross-traffic sources (flow
          start/stop is already scheduled by the topology). *)
}

val build : Pcc_sim.Engine.t -> t -> built
(** Compile the scenario onto an engine: build the {!Topology}, inject
    the fault schedule, start dynamics and cross traffic. Run it with
    [Engine.run ~until:t.duration].
    @raise Invalid_argument on an unknown transport name, non-positive
    [duration], an out-of-range [cross_link]/[dyn_link], or anything
    {!Topology.build}/{!Fault.inject}/{!Dynamics.start} rejects. *)

val shard_applicable : t -> bool
(** Whether {!build_sharded} accepts this scenario — currently, whether
    it carries no {!dynamics} block (dynamics retarget link delays
    mid-run, which could drop a cut link below its lookahead floor). *)

val build_sharded : Pcc_sim.Shard.t -> t -> built
(** {!build} distributed over a hub's shards: the topology goes through
    {!Topology.build_sharded}, faults are compiled onto hub controls
    ({!Fault.inject_hub}) so they fire identically at every shard count
    without adding engine events, and each cross-traffic source runs on
    the engine owning the link it feeds. The RNG split order is exactly
    {!build}'s, so a scenario built on a 1-shard hub runs
    byte-identically to the same scenario on N shards.
    @raise Invalid_argument on everything {!build} rejects, or if the
    scenario has a {!dynamics} block (see {!shard_applicable}). *)

val shard_preview : shards:int -> t -> int
(** How many shards {!build_sharded} on a [shards]-shard hub would
    actually populate (via {!Partition.partition} with default
    parameters) — lets the fuzzer's shrinker keep candidates that still
    exercise cross-shard channels. *)

(** {1 Serialization} *)

val to_string : t -> string
(** Versioned binary encoding via {!Pcc_sim.Persist.Writer}. The current
    version is 2: layout-identical to version 1, but written by binaries
    whose transport vocabulary includes the Vivace/Proteus controllers,
    so an older reader rejects the blob at its header. *)

val of_string : string -> t
(** Accepts versions 1 and 2 (same layout).
    @raise Pcc_sim.Persist.Corrupt on bad magic, an unsupported version
    or a malformed encoding. *)

(** {1 Generation} *)

val generate : ?menu:string list -> rng:Pcc_sim.Rng.t -> unit -> t
(** Draw a random-but-valid scenario: a dumbbell, 2–4-hop chain or
    congested-reverse-path shape; 1–4 flows with transports from the
    full {!Transport.all_names} menu, random routes, start/stop times,
    sizes and extra RTTs; link parameters spanning bandwidths of
    1–60 Mbps, shallow-to-bloated buffers and every queue discipline;
    an optional chaos fault schedule, cross-traffic source and dynamic
    link perturbation. The result always satisfies {!build}'s
    validation — the generator's envelope is the fuzzer's input space.
    All values are drawn from [rng] in a fixed order, so a seed
    determines the scenario.

    [menu] restricts the transports flows are drawn from (e.g. the
    nightly controllers axis fuzzing only the PCC family); it defaults
    to {!Transport.all_names}. The same seed with a different menu
    yields a different scenario — determinism holds per (seed, menu).
    @raise Invalid_argument if [menu] is empty or has an unknown name. *)
