(** Uniform construction of every transport the paper evaluates. *)

type spec =
  | Pcc of Pcc_core.Pcc_sender.config
  | Tcp of { variant : string; pacing : bool; min_rto : float option }
  | Sabul
  | Pcp

val pcc : ?config:Pcc_core.Pcc_sender.config -> unit -> spec
(** PCC with the paper-default safe utility unless overridden. *)

val tcp : string -> spec
(** A TCP variant by registry name (["cubic"], ["newreno"], …). *)

val tcp_paced : string -> spec
(** Same, with packet pacing at cwnd/RTT (the "TCP Pacing" baseline). *)

val sabul : spec
val pcp : spec

val name : spec -> string

val of_name : string -> (spec, string) result
(** The CLI/scenario-file vocabulary: ["pcc"], ["pcc-latency"],
    ["pcc-resilient"], ["pcc-vivace"] (the gradient-ascent Vivace
    controller), ["pcc-proteus"] / ["pcc-proteus-scavenger"] /
    ["pcc-proteus-hybrid"] (Vivace controller with the Proteus utility
    classes), ["sabul"], ["pcp"], any {!Pcc_tcp.Registry} variant name,
    or ["paced-<variant>"]. The error is a human-readable message. *)

val all_names : string list
(** Every name {!of_name} accepts, in a stable order. *)

val build :
  Pcc_sim.Engine.t ->
  rng:Pcc_sim.Rng.t ->
  ?size:int ->
  ?on_complete:(float -> unit) ->
  ?rtt_hint:float ->
  spec ->
  out:(Pcc_net.Packet.t -> unit) ->
  Pcc_net.Sender.t
(** Instantiate the transport; [rng] seeds any internal randomness (PCC's
    RCT ordering and MI lengths). [rtt_hint] is the base path RTT a real
    connection would learn from its handshake — it seeds RTT estimators
    and PCC's 2·MSS/RTT initial rate. *)
