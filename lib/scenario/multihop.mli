(** Parking-lot (multi-bottleneck) topology.

    §1 of the paper calls out "number of bottlenecks" as one of the
    real-network dimensions that break hardwired mappings (Remy's
    performance degrades when it deviates from the assumed single
    bottleneck). This builder chains several bottleneck links; each flow
    enters at one hop and leaves at another, so long flows compete with a
    different set of short flows on every hop.

    Hop [i] connects node [i] to node [i+1]. A flow with [enter = a] and
    [exit = b] (0 ≤ a < b ≤ hops) traverses hops [a .. b-1]. Acks return
    over an uncongested reverse path of matching propagation delay.

    This module is a thin wrapper over {!Topology} — hop [i] is the graph
    link [i -> i+1] — and shares its flow lifecycle and validation. Use
    {!topology} to reach the graph directly (asymmetric shapes, dynamic
    per-hop knobs). *)

type hop_spec = {
  bandwidth : float;  (** bits/s *)
  delay : float;  (** one-way propagation, s *)
  buffer : int;  (** bytes *)
  loss : float;  (** Bernoulli channel loss *)
}

val hop :
  ?delay:float -> ?buffer:int -> ?loss:float -> bandwidth:float -> unit -> hop_spec
(** Defaults: 5 ms delay, one-BDP buffer at 30 ms, no loss. *)

type flow_def = {
  transport : Transport.spec;
  enter : int;
  exit : int;
  start_at : float;
  size : int option;
  label : string;
}

val flow :
  ?start_at:float ->
  ?size:int ->
  ?label:string ->
  enter:int ->
  exit:int ->
  Transport.spec ->
  flow_def

type built_flow = {
  def : flow_def;
  sender : Pcc_net.Sender.t;
  receiver : Pcc_net.Receiver.t;
  mutable fct : float option;
}

type t

val build :
  Pcc_sim.Engine.t ->
  rng:Pcc_sim.Rng.t ->
  hops:hop_spec list ->
  flows:flow_def list ->
  unit ->
  t
(** @raise Invalid_argument on an empty hop list or a flow whose
    [enter]/[exit] fall outside the chain — rejections come from
    {!Topology.build}'s shared validation. *)

val flows : t -> built_flow array

val links : t -> Pcc_net.Link.t array
(** The hop links in chain order (a fresh array). *)

val engine : t -> Pcc_sim.Engine.t
(** The engine the topology was built on. *)

val topology : t -> Topology.t
(** The underlying graph: link [i] is hop [i]; flow indices match
    {!flows}. *)

val goodput_bytes : built_flow -> int
