open Pcc_sim

type link = {
  src : int;
  dst : int;
  bandwidth : float;
  delay : float;
  buffer : int;
  queue : Topology.queue_kind;
  loss : float;
  jitter : float;
}

type flow = {
  transport : string;
  route : int list;
  rev_route : int list option;
  rev_lossy : bool;
  start_at : float;
  stop_at : float option;
  size : int option;
  extra_rtt : float;
}

type cross = {
  cross_link : int;
  rate : float;
  on_mean : float;
  off_mean : float;
}

type dynamics = {
  dyn_link : int;
  period : float;
  bw_lo : float;
  bw_hi : float;
  rtt_lo : float;
  rtt_hi : float;
  loss_lo : float;
  loss_hi : float;
}

type t = {
  seed : int;
  duration : float;
  links : link list;
  flows : flow list;
  faults : Fault.schedule;
  cross : cross list;
  dynamics : dynamics option;
}

let equal a b = compare a b = 0

let describe t =
  let flow_names =
    String.concat "," (List.map (fun f -> f.transport) t.flows)
  in
  Printf.sprintf
    "seed=%d dur=%.2fs links=%d flows=%d(%s) faults=%d cross=%d dyn=%s"
    t.seed t.duration (List.length t.links) (List.length t.flows) flow_names
    (List.length t.faults) (List.length t.cross)
    (match t.dynamics with Some _ -> "yes" | None -> "no")

(* ------------------------------------------------------------------ *)
(* Building *)

type built = { topo : Topology.t; stop : unit -> unit }

(* Shared front half of [build]/[build_sharded]: validation and the fixed
   RNG split order both entry points must reproduce exactly. *)
let prepare ~what (s : t) =
  if s.duration <= 0. || not (Float.is_finite s.duration) then
    invalid_arg (what ^ ": duration must be positive");
  let num_links = List.length s.links in
  List.iter
    (fun c ->
      if c.cross_link < 0 || c.cross_link >= num_links then
        invalid_arg (what ^ ": cross-traffic link out of range"))
    s.cross;
  let specs =
    List.map
      (fun f ->
        match Transport.of_name f.transport with
        | Ok sp -> sp
        | Error m -> invalid_arg (what ^ ": " ^ m))
      s.flows
  in
  (* Fixed split order — the determinism contract of the mli. *)
  let rng = Rng.create s.seed in
  let topo_rng = Rng.split rng in
  let dyn_rng = Rng.split rng in
  let cross_rngs = List.map (fun _ -> Rng.split rng) s.cross in
  let links =
    List.map
      (fun l ->
        Topology.link ~delay:l.delay ~buffer:l.buffer ~queue:l.queue
          ~loss:l.loss ~jitter:l.jitter ~src:l.src ~dst:l.dst
          ~bandwidth:l.bandwidth ())
      s.links
  in
  let tflows =
    List.map2
      (fun f sp ->
        Topology.flow ?stop_at:f.stop_at ?size:f.size ?rev_route:f.rev_route
          ~rev_lossy:f.rev_lossy ~start_at:f.start_at ~extra_rtt:f.extra_rtt
          ~route:f.route sp)
      s.flows specs
  in
  (topo_rng, dyn_rng, cross_rngs, links, tflows)

let start_cross ~engine_for topo (s : t) cross_rngs =
  List.map2
    (fun c crng ->
      Cross_traffic.onoff (engine_for c) ~rng:crng
        ~sink:(fun p -> Topology.send_link topo c.cross_link p)
        ~rate:c.rate ~on_mean:c.on_mean ~off_mean:c.off_mean ())
    s.cross cross_rngs

let build engine (s : t) =
  let topo_rng, dyn_rng, cross_rngs, links, tflows =
    prepare ~what:"Scenario.build" s
  in
  let topo = Topology.build engine ~rng:topo_rng ~links ~flows:tflows () in
  if s.faults <> [] then Fault.inject (Fault.target_of_topology topo) s.faults;
  let crosses =
    start_cross ~engine_for:(fun _ -> engine) topo s cross_rngs
  in
  let dyn =
    Option.map
      (fun d ->
        Dynamics.start engine ~rng:dyn_rng ~topo ~link:d.dyn_link
          ~period:d.period ~bw_range:(d.bw_lo, d.bw_hi)
          ~rtt_range:(d.rtt_lo, d.rtt_hi) ~loss_range:(d.loss_lo, d.loss_hi)
          ())
      s.dynamics
  in
  {
    topo;
    stop =
      (fun () ->
        List.iter Cross_traffic.stop crosses;
        Option.iter Dynamics.stop dyn);
  }

let shard_applicable (s : t) = s.dynamics = None

let build_sharded hub (s : t) =
  if s.dynamics <> None then
    invalid_arg
      "Scenario.build_sharded: dynamics drive link delays mid-run and can \
       invalidate cut-link lookahead; sharded builds reject them";
  let topo_rng, _dyn_rng, cross_rngs, links, tflows =
    prepare ~what:"Scenario.build_sharded" s
  in
  let topo =
    Topology.build_sharded hub ~rng:topo_rng ~links ~flows:tflows ()
  in
  if s.faults <> [] then
    Fault.inject_hub hub (Fault.target_of_topology topo) s.faults;
  (* Each cross-traffic source self-schedules its on/off bursts, so it
     must live on the engine owning the link queue it feeds. *)
  let link_arr = Array.of_list s.links in
  let engine_for c =
    Shard.engine hub (Topology.shard_of_node topo link_arr.(c.cross_link).src)
  in
  let crosses = start_cross ~engine_for topo s cross_rngs in
  { topo; stop = (fun () -> List.iter Cross_traffic.stop crosses) }

let shard_preview ~shards (s : t) =
  let max_node =
    List.fold_left (fun m l -> max m (max l.src l.dst)) 0 s.links
  in
  let max_node =
    List.fold_left
      (fun m f ->
        let m = List.fold_left max m f.route in
        match f.rev_route with
        | None -> m
        | Some r -> List.fold_left max m r)
      max_node s.flows
  in
  let input =
    {
      Partition.nodes = max_node + 1;
      edges = List.map (fun l -> (l.src, l.dst, l.delay)) s.links;
      routes =
        List.concat_map
          (fun f ->
            f.route :: (match f.rev_route with None -> [] | Some r -> [ r ]))
          s.flows;
    }
  in
  (Partition.partition ~shards input).shards_used

(* ------------------------------------------------------------------ *)
(* Serialization *)

let magic = "PCCSCN"

(* Version history:
   1 — initial format.
   2 — identical layout; marks the extended transport vocabulary
       (pcc-vivace as a true Vivace controller, the pcc-proteus family)
       so an old binary rejects a new blob at the header instead of
       failing later in Transport.of_name. *)
let version = 2

let rec write_queue w (q : Topology.queue_kind) =
  let open Persist.Writer in
  match q with
  | Topology.Droptail -> u8 w 0
  | Topology.Droptail_pkts n ->
    u8 w 1;
    int w n
  | Topology.Codel -> u8 w 2
  | Topology.Red -> u8 w 3
  | Topology.Infinite -> u8 w 4
  | Topology.Fq inner ->
    u8 w 5;
    write_queue w inner

let rec read_queue r : Topology.queue_kind =
  let open Persist.Reader in
  match u8 r with
  | 0 -> Topology.Droptail
  | 1 -> Topology.Droptail_pkts (int r)
  | 2 -> Topology.Codel
  | 3 -> Topology.Red
  | 4 -> Topology.Infinite
  | 5 -> Topology.Fq (read_queue r)
  | n -> raise (Persist.Corrupt (Printf.sprintf "unknown queue tag %d" n))

let write_fault_kind w (k : Fault.kind) =
  let open Persist.Writer in
  match k with
  | Fault.Blackout { duration } ->
    u8 w 0;
    float w duration
  | Fault.Loss_burst { duration; loss } ->
    u8 w 1;
    float w duration;
    float w loss
  | Fault.Bandwidth_cliff { duration; factor } ->
    u8 w 2;
    float w duration;
    float w factor
  | Fault.Bandwidth_flap { count; period; factor } ->
    u8 w 3;
    int w count;
    float w period;
    float w factor
  | Fault.Delay_spike { duration; extra } ->
    u8 w 4;
    float w duration;
    float w extra
  | Fault.Jitter_burst { duration; jitter } ->
    u8 w 5;
    float w duration;
    float w jitter
  | Fault.Reverse_blackhole { duration } ->
    u8 w 6;
    float w duration
  | Fault.Reverse_loss_burst { duration; loss } ->
    u8 w 7;
    float w duration;
    float w loss
  | Fault.Duplication_episode { duration; prob } ->
    u8 w 8;
    float w duration;
    float w prob
  | Fault.Reordering_episode { duration; prob; extra } ->
    u8 w 9;
    float w duration;
    float w prob;
    float w extra
  | Fault.Partition { duration; hop } ->
    u8 w 10;
    float w duration;
    int w hop

let read_fault_kind r : Fault.kind =
  let open Persist.Reader in
  match u8 r with
  | 0 -> Fault.Blackout { duration = float r }
  | 1 ->
    let duration = float r in
    Fault.Loss_burst { duration; loss = float r }
  | 2 ->
    let duration = float r in
    Fault.Bandwidth_cliff { duration; factor = float r }
  | 3 ->
    let count = int r in
    let period = float r in
    Fault.Bandwidth_flap { count; period; factor = float r }
  | 4 ->
    let duration = float r in
    Fault.Delay_spike { duration; extra = float r }
  | 5 ->
    let duration = float r in
    Fault.Jitter_burst { duration; jitter = float r }
  | 6 -> Fault.Reverse_blackhole { duration = float r }
  | 7 ->
    let duration = float r in
    Fault.Reverse_loss_burst { duration; loss = float r }
  | 8 ->
    let duration = float r in
    Fault.Duplication_episode { duration; prob = float r }
  | 9 ->
    let duration = float r in
    let prob = float r in
    Fault.Reordering_episode { duration; prob; extra = float r }
  | 10 ->
    let duration = float r in
    Fault.Partition { duration; hop = int r }
  | n -> raise (Persist.Corrupt (Printf.sprintf "unknown fault tag %d" n))

let to_string t =
  let open Persist.Writer in
  let w = create ~magic ~version in
  int w t.seed;
  float w t.duration;
  list w
    (fun w l ->
      int w l.src;
      int w l.dst;
      float w l.bandwidth;
      float w l.delay;
      int w l.buffer;
      write_queue w l.queue;
      float w l.loss;
      float w l.jitter)
    t.links;
  list w
    (fun w f ->
      string w f.transport;
      list w int f.route;
      option w (fun w r -> list w int r) f.rev_route;
      bool w f.rev_lossy;
      float w f.start_at;
      option w float f.stop_at;
      option w int f.size;
      float w f.extra_rtt)
    t.flows;
  list w
    (fun w (e : Fault.event) ->
      float w e.Fault.at;
      write_fault_kind w e.Fault.kind)
    t.faults;
  list w
    (fun w c ->
      int w c.cross_link;
      float w c.rate;
      float w c.on_mean;
      float w c.off_mean)
    t.cross;
  option w
    (fun w d ->
      int w d.dyn_link;
      float w d.period;
      float w d.bw_lo;
      float w d.bw_hi;
      float w d.rtt_lo;
      float w d.rtt_hi;
      float w d.loss_lo;
      float w d.loss_hi)
    t.dynamics;
  contents w

let of_string s =
  let open Persist.Reader in
  let r = of_string ~magic s in
  (* v1 blobs parse unchanged: the layout never moved, only the transport
     name vocabulary grew. *)
  if version r <> 1 && version r <> 2 then
    raise
      (Persist.Corrupt
         (Printf.sprintf "unsupported scenario version %d" (version r)));
  let seed = int r in
  let duration = float r in
  let links =
    list r (fun r ->
        let src = int r in
        let dst = int r in
        let bandwidth = float r in
        let delay = float r in
        let buffer = int r in
        let queue = read_queue r in
        let loss = float r in
        let jitter = float r in
        { src; dst; bandwidth; delay; buffer; queue; loss; jitter })
  in
  let flows =
    list r (fun r ->
        let transport = string r in
        let route = list r int in
        let rev_route = option r (fun r -> list r int) in
        let rev_lossy = bool r in
        let start_at = float r in
        let stop_at = option r float in
        let size = option r int in
        let extra_rtt = float r in
        {
          transport;
          route;
          rev_route;
          rev_lossy;
          start_at;
          stop_at;
          size;
          extra_rtt;
        })
  in
  let faults =
    list r (fun r ->
        let at = float r in
        let kind = read_fault_kind r in
        { Fault.at; kind })
  in
  let cross =
    list r (fun r ->
        let cross_link = int r in
        let rate = float r in
        let on_mean = float r in
        let off_mean = float r in
        { cross_link; rate; on_mean; off_mean })
  in
  let dynamics =
    option r (fun r ->
        let dyn_link = int r in
        let period = float r in
        let bw_lo = float r in
        let bw_hi = float r in
        let rtt_lo = float r in
        let rtt_hi = float r in
        let loss_lo = float r in
        let loss_hi = float r in
        { dyn_link; period; bw_lo; bw_hi; rtt_lo; rtt_hi; loss_lo; loss_hi })
  in
  if not (at_end r) then
    raise (Persist.Corrupt "trailing bytes after scenario");
  { seed; duration; links; flows; faults; cross; dynamics }

(* ------------------------------------------------------------------ *)
(* Generation *)

(* Round to a fixed number of decimals: keeps generated values readable
   in repro files and gives the shrinker clean magnitudes to preserve. *)
let round_to ~decimals v =
  let scale = 10. ** float_of_int decimals in
  Float.round (v *. scale) /. scale

let gen_queue rng : Topology.queue_kind =
  match Rng.int rng 7 with
  | 0 -> Topology.Droptail
  | 1 -> Topology.Droptail_pkts (8 + Rng.int rng 56)
  | 2 -> Topology.Codel
  | 3 -> Topology.Red
  | 4 -> Topology.Infinite
  | 5 -> Topology.Fq Topology.Droptail
  | _ -> Topology.Fq Topology.Codel

let gen_link rng ~src ~dst =
  let bandwidth = round_to ~decimals:0 (Rng.log_uniform rng 1e6 6e7) in
  let delay = round_to ~decimals:4 (Rng.uniform rng 0.001 0.04) in
  let buffer =
    match Rng.int rng 3 with
    | 0 ->
      (* A random fraction of the 30 ms BDP: shallow to bloated. *)
      let bdp = Units.bdp_bytes ~rate:bandwidth ~rtt:0.03 in
      max (2 * Units.mss)
        (int_of_float (float_of_int bdp *. Rng.uniform rng 0.25 2.))
    | 1 -> Units.mss * (4 + Rng.int rng 28)
    | _ -> Units.bdp_bytes ~rate:bandwidth ~rtt:0.03
  in
  let queue = gen_queue rng in
  let loss =
    if Rng.bernoulli rng 0.35 then round_to ~decimals:4 (Rng.uniform rng 0. 0.03)
    else 0.
  in
  let jitter =
    if Rng.bernoulli rng 0.25 then
      round_to ~decimals:4 (Rng.uniform rng 0. 0.005)
    else 0.
  in
  { src; dst; bandwidth; delay; buffer; queue; loss; jitter }

let transport_menu = Array.of_list Transport.all_names

let gen_flow rng ~menu ~duration ~shape ~hops =
  let transport = Rng.pick rng menu in
  let route, rev_route =
    match shape with
    | `Dumbbell -> ([ 0; 1 ], None)
    | `Revpath ->
      ([ 0; 1 ], if Rng.bernoulli rng 0.5 then Some [ 1; 0 ] else None)
    | `Chain ->
      let a = Rng.int rng hops in
      let len = 1 + Rng.int rng (hops - a) in
      (List.init (len + 1) (fun k -> a + k), None)
  in
  let rev_lossy =
    match rev_route with Some _ -> true | None -> Rng.bernoulli rng 0.8
  in
  let start_at =
    if Rng.bernoulli rng 0.5 then 0.
    else round_to ~decimals:3 (Rng.uniform rng 0. (duration /. 3.))
  in
  let stop_at =
    if Rng.bernoulli rng 0.25 then
      Some
        (round_to ~decimals:3
           (start_at +. Rng.uniform rng 0.5 (Float.max 1. (duration -. start_at))))
    else None
  in
  let size =
    if Rng.bernoulli rng 0.3 then Some (Units.mss * (20 + Rng.int rng 1500))
    else None
  in
  let extra_rtt =
    if Rng.bernoulli rng 0.25 then
      round_to ~decimals:4 (Rng.uniform rng 0. 0.06)
    else 0.
  in
  { transport; route; rev_route; rev_lossy; start_at; stop_at; size; extra_rtt }

let generate ?menu ~rng () =
  let menu =
    match menu with
    | None -> transport_menu
    | Some names ->
      if names = [] then invalid_arg "Scenario.generate: empty transport menu";
      List.iter
        (fun n ->
          match Transport.of_name n with
          | Ok _ -> ()
          | Error m -> invalid_arg ("Scenario.generate: " ^ m))
        names;
      Array.of_list names
  in
  let duration = round_to ~decimals:2 (Rng.uniform rng 2. 6.) in
  let shape =
    match Rng.int rng 4 with
    | 0 | 1 -> `Dumbbell
    | 2 -> `Chain
    | _ -> `Revpath
  in
  let hops = match shape with `Chain -> 2 + Rng.int rng 3 | _ -> 1 in
  let links =
    match shape with
    | `Dumbbell -> [ gen_link rng ~src:0 ~dst:1 ]
    | `Revpath -> [ gen_link rng ~src:0 ~dst:1; gen_link rng ~src:1 ~dst:0 ]
    | `Chain -> List.init hops (fun i -> gen_link rng ~src:i ~dst:(i + 1))
  in
  let n_flows = 1 + Rng.int rng 4 in
  let flows =
    List.init n_flows (fun _ -> gen_flow rng ~menu ~duration ~shape ~hops)
  in
  (* Sub-streams are split unconditionally so the draw order stays fixed
     whether or not the feature is enabled. *)
  let fault_rng = Rng.split rng in
  let faults =
    if Rng.bernoulli rng 0.55 then
      Fault.chaos ~rng:fault_rng ~rate:0.5 ~start:(duration /. 5.) ~gap:0.3
        ~duration ()
    else []
  in
  let num_links = List.length links in
  let cross =
    if Rng.bernoulli rng 0.25 then begin
      let cross_link = Rng.int rng num_links in
      let bw = (List.nth links cross_link).bandwidth in
      [
        {
          cross_link;
          rate = round_to ~decimals:0 (bw *. Rng.uniform rng 0.05 0.4);
          on_mean = round_to ~decimals:3 (Rng.uniform rng 0.2 1.0);
          off_mean = round_to ~decimals:3 (Rng.uniform rng 0.2 1.0);
        };
      ]
    end
    else []
  in
  let dynamics =
    if Rng.bernoulli rng 0.15 then begin
      let dyn_link = Rng.int rng num_links in
      let bw = (List.nth links dyn_link).bandwidth in
      Some
        {
          dyn_link;
          period = round_to ~decimals:3 (duration /. 4.);
          bw_lo = round_to ~decimals:0 (bw *. 0.3);
          bw_hi = bw;
          rtt_lo = 0.01;
          rtt_hi = 0.08;
          loss_lo = 0.;
          loss_hi = 0.01;
        }
    end
    else None
  in
  let seed = Rng.int rng 1_000_000_000 in
  { seed; duration; links; flows; faults; cross; dynamics }
