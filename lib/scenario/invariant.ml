open Pcc_sim
open Pcc_net

type violation = { time : float; check : string; detail : string }

exception Violation of violation

let () =
  Printexc.register_printer (function
    | Violation { time; check; detail } ->
      Some
        (Printf.sprintf "Invariant.Violation: [%s] at t=%.6f: %s" check time
           detail)
    | _ -> None)

type link_watch = {
  link : Link.t;
  lname : string;
  mutable last_bw : float;
  mutable cap_bits : float;  (* integral of serialization capacity, bits *)
  base_bytes : int;  (* delivered - duplicated bytes at attach time *)
}

type t = {
  engine : Engine.t;
  interval : float;
  on_violation : violation -> unit;
  links : link_watch array;
  goodputs : (unit -> int) array;  (* per watched flow *)
  mutable last_goodput : int array;
  mutable last_time : float;
  mutable checks_run : int;
  mutable stopped : bool;
}

let watch_of_link link name =
  {
    link;
    lname = name;
    last_bw = Link.bandwidth link;
    cap_bits = 0.;
    base_bytes = Link.delivered_bytes link - Link.duplicated_bytes link;
  }

let fail t ~check fmt =
  Printf.ksprintf
    (fun detail ->
      t.on_violation { time = Engine.now t.engine; check; detail })
    fmt

let check_link t w =
  let l = w.link in
  let q = Link.queue l in
  let now = Engine.now t.engine in
  (* Packet conservation: everything offered to the link is accounted for
     exactly once (plus scheduled duplicates). *)
  let offered = Link.offered_pkts l + Link.duplicated_pkts l in
  let accounted =
    Link.delivered_pkts l + Link.channel_losses l
    + q.Queue_disc.drops ()
    + q.Queue_disc.len_pkts ()
    + Link.in_flight_pkts l
  in
  if offered <> accounted then
    fail t ~check:"conservation"
      "%s: offered+duplicated=%d but delivered=%d + losses=%d + qdrops=%d + \
       queued=%d + in-flight=%d = %d"
      w.lname offered (Link.delivered_pkts l) (Link.channel_losses l)
      (q.Queue_disc.drops ())
      (q.Queue_disc.len_pkts ())
      (Link.in_flight_pkts l) accounted;
  (* Queue occupancy within the discipline's advertised bound. *)
  (match q.Queue_disc.capacity_bytes () with
  | Some cap ->
    let len = q.Queue_disc.len_bytes () in
    if len > cap then
      fail t ~check:"occupancy" "%s: %d bytes queued exceeds capacity %d"
        w.lname len cap
  | None -> ());
  (* Serialized bytes bounded by the capacity integral. Bandwidth changes
     are sampled at check ticks; taking the max of the endpoints is exact
     as long as at most one change falls inside a tick (fault timescales
     are much coarser than the default 50 ms interval). *)
  let dt = now -. t.last_time in
  let bw = Link.bandwidth l in
  w.cap_bits <- w.cap_bits +. (dt *. Float.max bw w.last_bw);
  w.last_bw <- bw;
  let unique = Link.delivered_bytes l - Link.duplicated_bytes l - w.base_bytes in
  let slack = float_of_int (8 * 2 * Units.mss) in
  if float_of_int (8 * unique) > w.cap_bits +. slack then
    fail t ~check:"throughput"
      "%s: %d delivered bytes exceed the capacity integral %.0f bits"
      w.lname unique w.cap_bits

let check_goodputs t =
  Array.iteri
    (fun i g ->
      let v = g () in
      if v < t.last_goodput.(i) then
        fail t ~check:"goodput-monotone" "flow %d goodput fell from %d to %d" i
          t.last_goodput.(i) v;
      t.last_goodput.(i) <- v)
    t.goodputs

let sweep t =
  let now = Engine.now t.engine in
  if now < t.last_time then
    fail t ~check:"clock-monotone" "clock moved backwards: %.9f after %.9f" now
      t.last_time;
  Array.iter (check_link t) t.links;
  check_goodputs t;
  t.last_time <- now;
  t.checks_run <- t.checks_run + 1

let check_now = sweep

(* Reschedule before sweeping: a sweep that raises (default on_violation)
   must not kill the recurring timer, or the engine's Collect policy would
   only ever record the first violation. *)
let rec tick t =
  if not t.stopped then begin
    Engine.post_in t.engine ~after:t.interval (fun () -> tick t);
    sweep t
  end

let start engine ?(interval = 0.05) ?on_violation ~links ~goodputs () =
  if interval <= 0. then
    invalid_arg "Invariant.attach: interval must be positive";
  let on_violation =
    match on_violation with
    | Some f -> f
    | None -> fun v -> raise (Violation v)
  in
  let t =
    {
      engine;
      interval;
      on_violation;
      links;
      goodputs;
      last_goodput = Array.map (fun g -> g ()) goodputs;
      last_time = Engine.now engine;
      checks_run = 0;
      stopped = false;
    }
  in
  Engine.post_in engine ~after:interval (fun () -> tick t);
  t

let attach_link engine ?interval ?on_violation ?(name = "link") link =
  start engine ?interval ?on_violation
    ~links:[| watch_of_link link name |]
    ~goodputs:[||] ()

let attach_topology ?interval ?on_violation topo =
  start (Topology.engine topo) ?interval ?on_violation
    ~links:
      (Array.mapi
         (fun i l -> watch_of_link l (Topology.link_name topo i))
         (Topology.links topo))
    ~goodputs:
      (Array.map
         (fun f () -> Topology.goodput_bytes f)
         (Topology.flows topo))
    ()

let attach_path ?interval ?on_violation path =
  let topo = Path.topology path in
  start (Topology.engine topo) ?interval ?on_violation
    ~links:[| watch_of_link (Topology.link_at topo 0) "bottleneck" |]
    ~goodputs:
      (Array.map
         (fun f () -> Topology.goodput_bytes f)
         (Topology.flows topo))
    ()

let attach_multihop ?interval ?on_violation mh =
  let topo = Multihop.topology mh in
  start (Topology.engine topo) ?interval ?on_violation
    ~links:
      (Array.mapi
         (fun i l -> watch_of_link l (Printf.sprintf "hop%d" i))
         (Topology.links topo))
    ~goodputs:
      (Array.map
         (fun f () -> Topology.goodput_bytes f)
         (Topology.flows topo))
    ()

let stop t = t.stopped <- true
let checks_run t = t.checks_run
