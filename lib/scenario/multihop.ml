open Pcc_sim
open Pcc_net

type hop_spec = {
  bandwidth : float;
  delay : float;
  buffer : int;
  loss : float;
}

let hop ?(delay = 0.005) ?buffer ?(loss = 0.) ~bandwidth () =
  let buffer =
    match buffer with
    | Some b -> b
    | None -> Units.bdp_bytes ~rate:bandwidth ~rtt:0.03
  in
  { bandwidth; delay; buffer; loss }

type flow_def = {
  transport : Transport.spec;
  enter : int;
  exit : int;
  start_at : float;
  size : int option;
  label : string;
}

let flow ?(start_at = 0.) ?size ?label ~enter ~exit transport =
  let label =
    match label with Some l -> l | None -> Transport.name transport
  in
  { transport; enter; exit; start_at; size; label }

type built_flow = {
  def : flow_def;
  sender : Sender.t;
  receiver : Receiver.t;
  mutable fct : float option;
}

type t = {
  engine : Engine.t;
  links : Link.t array;
  built : built_flow array;
}

let build engine ~rng ~hops ~flows:defs () =
  let n = List.length hops in
  if n = 0 then invalid_arg "Multihop.build: need at least one hop";
  List.iter
    (fun d ->
      if d.enter < 0 || d.exit > n || d.enter >= d.exit then
        invalid_arg
          (Printf.sprintf "Multihop.build: flow %s enters %d exits %d on a %d-hop chain"
             d.label d.enter d.exit n))
    defs;
  let links =
    Array.of_list
      (List.map
         (fun h ->
           Link.create engine ~loss:h.loss ~rng:(Rng.split rng)
             ~bandwidth:h.bandwidth ~delay:h.delay
             ~queue:(Queue_disc.droptail_bytes ~capacity:h.buffer ())
             ())
         hops)
  in
  (* exits.(flow_id) = node index where the flow leaves the chain. *)
  let exits : (int, int * (Packet.t -> unit)) Hashtbl.t = Hashtbl.create 16 in
  let route_at node (pkt : Packet.t) =
    match Hashtbl.find_opt exits pkt.Packet.flow with
    | None -> ()
    | Some (exit, deliver) ->
      if node >= exit then deliver pkt else Link.send links.(node) pkt
  in
  Array.iteri
    (fun i link -> Link.set_receiver link (fun pkt -> route_at (i + 1) pkt))
    links;
  let hop_delays = Array.of_list (List.map (fun h -> h.delay) hops) in
  let built =
    List.map
      (fun def ->
        let fwd_prop = ref 0. in
        for i = def.enter to def.exit - 1 do
          fwd_prop := !fwd_prop +. hop_delays.(i)
        done;
        let rev = Delay_line.create engine ~delay:!fwd_prop () in
        let receiver = Receiver.create engine ~ack_out:(Delay_line.send rev) in
        let bf = ref None in
        let on_complete at =
          match !bf with
          | Some b -> b.fct <- Some (at -. b.def.start_at)
          | None -> ()
        in
        let sender =
          Transport.build engine ~rng:(Rng.split rng) ?size:def.size
            ~on_complete
            ~rtt_hint:(2. *. !fwd_prop)
            def.transport
            ~out:(Link.send links.(def.enter))
        in
        Hashtbl.replace exits sender.Sender.flow
          (def.exit, Receiver.on_packet receiver);
        Delay_line.set_receiver rev (fun pkt ->
            match pkt.Packet.kind with
            | Packet.Ack a -> sender.Sender.handle_ack a
            | Packet.Data _ -> ());
        let b = { def; sender; receiver; fct = None } in
        bf := Some b;
        ignore
          (Engine.schedule engine ~at:def.start_at (fun () ->
               sender.Sender.start ()));
        b)
      defs
  in
  { engine; links; built = Array.of_list built }

let flows t = t.built
let links t = t.links
let engine t = t.engine
let goodput_bytes b = Receiver.goodput_bytes b.receiver
