open Pcc_sim
open Pcc_net

(* Thin wrapper over Topology: hop [i] becomes the link [i -> i+1] of a
   chain graph, and a flow entering at [a] and exiting at [b] walks the
   node path [a; a+1; ...; b]. Reverse lines are ideal and carry no RNG
   (rev_lossy = false), matching the pre-graph builder's streams so
   seeded parking-lot runs reproduce bit-for-bit. Validation of
   enter/exit lives in Topology's route checks. *)

type hop_spec = {
  bandwidth : float;
  delay : float;
  buffer : int;
  loss : float;
}

let hop ?(delay = 0.005) ?buffer ?(loss = 0.) ~bandwidth () =
  let buffer =
    match buffer with
    | Some b -> b
    | None -> Units.bdp_bytes ~rate:bandwidth ~rtt:0.03
  in
  { bandwidth; delay; buffer; loss }

type flow_def = {
  transport : Transport.spec;
  enter : int;
  exit : int;
  start_at : float;
  size : int option;
  label : string;
}

let flow ?(start_at = 0.) ?size ?label ~enter ~exit transport =
  let label =
    match label with Some l -> l | None -> Transport.name transport
  in
  { transport; enter; exit; start_at; size; label }

type built_flow = {
  def : flow_def;
  sender : Sender.t;
  receiver : Receiver.t;
  mutable fct : float option;
}

type t = {
  topo : Topology.t;
  built : built_flow array;
}

let build engine ~rng ~hops ~flows:defs () =
  let links =
    List.mapi
      (fun i (h : hop_spec) ->
        Topology.link ~delay:h.delay ~buffer:h.buffer ~loss:h.loss ~src:i
          ~dst:(i + 1) ~bandwidth:h.bandwidth ())
      hops
  in
  let tflows =
    List.map
      (fun d ->
        (* A backwards enter/exit yields a one-node route here and is
           rejected by Topology's route validation. *)
        let route = List.init (max 0 (d.exit - d.enter) + 1) (fun k -> d.enter + k) in
        Topology.flow ~start_at:d.start_at ?size:d.size ~label:d.label
          ~rev_lossy:false ~route d.transport)
      defs
  in
  let topo = Topology.build engine ~rng ~links ~flows:tflows () in
  let defs_a = Array.of_list defs in
  let built =
    Array.mapi
      (fun i (tb : Topology.built_flow) ->
        {
          def = defs_a.(i);
          sender = tb.Topology.sender;
          receiver = tb.Topology.receiver;
          fct = None;
        })
      (Topology.flows topo)
  in
  Array.iteri
    (fun i b -> Topology.on_complete topo ~flow:i (fun fct -> b.fct <- Some fct))
    built;
  { topo; built }

let flows t = t.built
let links t = Topology.links t.topo
let engine t = Topology.engine t.topo
let topology t = t.topo
let goodput_bytes b = Receiver.goodput_bytes b.receiver
