open Pcc_sim

type t = {
  engine : Engine.t;
  rng : Rng.t;
  topo : Topology.t;
  link : Topology.link_id;
  period : float;
  bw_lo : float;
  bw_hi : float;
  rtt_lo : float;
  rtt_hi : float;
  loss_lo : float;
  loss_hi : float;
  mutable running : bool;
  mutable changes : (float * float) list;  (* reversed (time, bw) *)
}

let redraw t =
  let bw = Rng.uniform t.rng t.bw_lo t.bw_hi in
  let rtt = Rng.uniform t.rng t.rtt_lo t.rtt_hi in
  let loss = Rng.uniform t.rng t.loss_lo t.loss_hi in
  Topology.set_link_bandwidth t.topo t.link bw;
  Topology.set_link_loss t.topo t.link loss;
  Topology.set_base_rtt t.topo ~link:t.link rtt;
  t.changes <- (Engine.now t.engine, bw) :: t.changes

let rec tick t () =
  if t.running then begin
    redraw t;
    Engine.post_in t.engine ~after:t.period (tick t)
  end

let start engine ~rng ~topo ?(link = 0) ?(period = 5.)
    ?(bw_range = (Units.mbps 10., Units.mbps 100.))
    ?(rtt_range = (0.01, 0.1)) ?(loss_range = (0., 0.01)) () =
  let bw_lo, bw_hi = bw_range in
  let rtt_lo, rtt_hi = rtt_range in
  let loss_lo, loss_hi = loss_range in
  ignore (Topology.link_at topo link);
  let t =
    {
      engine;
      rng;
      topo;
      link;
      period;
      bw_lo;
      bw_hi;
      rtt_lo;
      rtt_hi;
      loss_lo;
      loss_hi;
      running = true;
      changes = [];
    }
  in
  tick t ();
  t

let stop t = t.running <- false

let optimal_series t = Array.of_list (List.rev t.changes)

let mean_optimal t ~until =
  let series = optimal_series t in
  let n = Array.length series in
  if n = 0 then 0.
  else begin
    let total = ref 0. in
    for i = 0 to n - 1 do
      let t0, bw = series.(i) in
      let t1 = if i + 1 < n then fst series.(i + 1) else until in
      let t1 = Float.min t1 until in
      if t1 > t0 then total := !total +. (bw *. (t1 -. t0))
    done;
    let t_begin = fst series.(0) in
    !total /. Float.max (until -. t_begin) 1e-9
  end
