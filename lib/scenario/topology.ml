open Pcc_sim
open Pcc_net

type queue_kind =
  | Droptail
  | Droptail_pkts of int
  | Codel
  | Red
  | Infinite
  | Fq of queue_kind

type node = int
type link_id = int

type link_spec = {
  src : node;
  dst : node;
  bandwidth : float;
  delay : float;
  buffer : int;
  queue : queue_kind;
  loss : float;
  jitter : float;
  name : string option;
}

let link ?name ?(delay = 0.005) ?buffer ?(queue = Droptail) ?(loss = 0.)
    ?(jitter = 0.) ~src ~dst ~bandwidth () =
  let buffer =
    match buffer with
    | Some b -> b
    | None -> Units.bdp_bytes ~rate:bandwidth ~rtt:0.03
  in
  { src; dst; bandwidth; delay; buffer; queue; loss; jitter; name }

type flow_def = {
  transport : Transport.spec;
  route : node list;
  rev_route : node list option;
  rev_lossy : bool;
  start_at : float;
  stop_at : float option;
  size : int option;
  extra_rtt : float;
  label : string;
}

let flow ?(start_at = 0.) ?stop_at ?size ?(extra_rtt = 0.) ?rev_route
    ?(rev_lossy = true) ?label ~route transport =
  let label =
    match label with Some l -> l | None -> Transport.name transport
  in
  {
    transport;
    route;
    rev_route;
    rev_lossy;
    start_at;
    stop_at;
    size;
    extra_rtt;
    label;
  }

type built_flow = {
  def : flow_def;
  sender : Sender.t;
  receiver : Receiver.t;
  mutable fct : float option;
}

(* How a flow's acks travel back: an ideal delay line (possibly carrying an
   RNG so reverse loss can be applied), or over real topology links. *)
type reverse = { line : Delay_line.t option; lossy : bool }

type t = {
  engine : Engine.t;
      (* Shard 0's engine when sharded; the single engine otherwise. *)
  hub : Shard.t option;
  shard_of : int array;  (* node -> shard; all zero when unsharded *)
  num_nodes : int;
  links : Link.t array;
  specs : link_spec array;
  names : string array;
  edges : (node * node, link_id) Hashtbl.t;
  built : built_flow array;
  routes : link_id array array;  (* forward link ids, per flow *)
  revs : reverse array;
  fwd_tables : (int, Packet.t -> unit) Hashtbl.t array;  (* data, per node *)
  rev_tables : (int, Packet.t -> unit) Hashtbl.t array;  (* acks, per node *)
  hooks : (float -> unit) list ref array;
  mutable rev_loss : float;
}

(* Where each piece of the simulation lives. The unsharded backend puts
   everything on one engine; the sharded backend maps nodes to shard
   engines and splices a {!Shard.channel} into every boundary element.
   Component creation order — and therefore the RNG split order — is
   identical under both, which is what keeps a 1-shard hub run
   byte-identical to an N-shard one. *)
type backend = {
  be_hub : Shard.t option;
  be_shard : node -> int;
  be_engine : node -> Engine.t;
  be_floor : float option;
      (* Optional cap on channel floors, for callers that intend to
         lower cut-link delays mid-run (down to the floor, never
         below). *)
}

(* Scrub value for boundary-injection pool slots; never delivered. *)
let dummy_packet =
  Packet.data ~flow:(-1) ~seq:(-1) ~size:0 ~now:0. ~retx:false

(* A boundary element delivers through a channel: payloads buffered at
   the hub, injected at the next barrier into a destination-shard pool
   whose fire completes the delivery. *)
let wire_channel hub ~src_shard ~dst_shard ~src_engine ~dst_engine ~floor
    ~deliver =
  let pool = Pool.create ~dummy:dummy_packet () in
  Pool.set_fire pool deliver;
  Engine.add_owned dst_engine (fun () -> Pool.adopt pool);
  Engine.add_reclaim dst_engine (fun () -> Pool.clear pool);
  let ch =
    Shard.channel hub ~src:src_shard ~dst:dst_shard ~floor
      ~inject:(fun ~arrival ~sent p ->
        Engine.post_from dst_engine ~sent ~at:arrival (Pool.event pool p))
  in
  fun ~arrival p -> Shard.send ch ~now:(Engine.now src_engine) ~arrival p

let rec make_queue kind ~capacity =
  match kind with
  | Droptail -> Queue_disc.droptail_bytes ~capacity ()
  | Droptail_pkts n -> Queue_disc.droptail_pkts ~capacity:n ()
  | Codel -> Queue_disc.codel ~capacity ()
  | Red -> Queue_disc.red ~capacity ()
  | Infinite -> Queue_disc.infinite ()
  | Fq inner ->
    Queue_disc.fq ~per_flow:(fun () -> make_queue inner ~capacity) ()

let fail fmt = Printf.ksprintf invalid_arg fmt

(* ------------------------------------------------------------------ *)
(* Validation — the single checkpoint the Path/Multihop wrappers rely
   on. Runs before any RNG split or component creation so a rejected
   build leaves the caller's RNG stream untouched. *)

let validate_links ~num_nodes specs =
  if specs = [] then fail "Topology.build: need at least one link";
  let edges = Hashtbl.create 16 in
  List.iteri
    (fun i (s : link_spec) ->
      let who =
        match s.name with Some n -> n | None -> Printf.sprintf "link%d" i
      in
      if s.src < 0 || s.dst < 0 then
        fail "Topology.build: %s has a negative endpoint (%d -> %d)" who s.src
          s.dst;
      if s.src >= num_nodes || s.dst >= num_nodes then
        fail "Topology.build: %s endpoint outside the %d-node graph" who
          num_nodes;
      if s.src = s.dst then
        fail "Topology.build: %s is a self-loop at node %d" who s.src;
      if Hashtbl.mem edges (s.src, s.dst) then
        fail "Topology.build: duplicate link %d -> %d (%s)" s.src s.dst who;
      if s.bandwidth <= 0. then
        fail "Topology.build: %s bandwidth must be positive" who;
      if s.delay < 0. then fail "Topology.build: %s delay is negative" who;
      (match s.queue with
      | Infinite -> ()
      | _ ->
        if s.buffer <= 0 then
          fail "Topology.build: %s buffer must be positive" who);
      if s.loss < 0. || s.loss > 1. then
        fail "Topology.build: %s loss %g outside [0,1]" who s.loss;
      if s.jitter < 0. then fail "Topology.build: %s jitter is negative" who;
      Hashtbl.replace edges (s.src, s.dst) i)
    specs;
  edges

let validate_route ~num_nodes ~edges ~what ~label route =
  (match route with
  | [] | [ _ ] ->
    fail "Topology.build: flow %s %s needs at least two nodes" label what
  | _ -> ());
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if n < 0 || n >= num_nodes then
        fail "Topology.build: flow %s %s visits node %d outside the %d-node \
              graph"
          label what n num_nodes;
      if Hashtbl.mem seen n then
        fail "Topology.build: flow %s %s visits node %d twice" label what n;
      Hashtbl.replace seen n ())
    route;
  let rec hops = function
    | a :: (b :: _ as rest) ->
      (match Hashtbl.find_opt edges (a, b) with
      | Some id -> id :: hops rest
      | None ->
        fail "Topology.build: flow %s %s has no link %d -> %d" label what a b)
    | _ -> []
  in
  Array.of_list (hops route)

let validate_flow ~num_nodes ~edges def =
  if def.start_at < 0. then
    fail "Topology.build: flow %s starts at negative time %g" def.label
      def.start_at;
  (match def.stop_at with
  | Some s when s <= def.start_at ->
    fail "Topology.build: flow %s stops at %g, not after its start %g"
      def.label s def.start_at
  | _ -> ());
  (match def.size with
  | Some z when z <= 0 ->
    fail "Topology.build: flow %s size must be positive" def.label
  | _ -> ());
  if def.extra_rtt < 0. then
    fail "Topology.build: flow %s extra_rtt is negative" def.label;
  let fwd =
    validate_route ~num_nodes ~edges ~what:"route" ~label:def.label def.route
  in
  let rev =
    match def.rev_route with
    | None -> None
    | Some r ->
      let first = List.hd def.route
      and last = List.nth def.route (List.length def.route - 1) in
      if List.hd r <> last || List.nth r (List.length r - 1) <> first then
        fail "Topology.build: flow %s reverse route must run %d -> %d, back \
              along the forward route's endpoints"
          def.label last first;
      Some
        (validate_route ~num_nodes ~edges ~what:"reverse route"
           ~label:def.label r)
  in
  (fwd, rev)

(* ------------------------------------------------------------------ *)

let build_with be ~rng ?nodes ~links:specs ?(rev_loss = 0.) ~flows:defs () =
  let computed_nodes =
    1 + List.fold_left (fun acc s -> max acc (max s.src s.dst)) 0 specs
  in
  let num_nodes =
    match nodes with
    | None -> computed_nodes
    | Some n ->
      if n < computed_nodes then
        fail "Topology.build: %d nodes but a link reaches node %d" n
          (computed_nodes - 1);
      n
  in
  if rev_loss < 0. || rev_loss > 1. then
    fail "Topology.build: rev_loss %g outside [0,1]" rev_loss;
  let edges = validate_links ~num_nodes specs in
  let flow_routes =
    List.map (fun def -> validate_flow ~num_nodes ~edges def) defs
  in
  (* Wiring below consumes the RNG in a frozen order: one split per link
     in list order, then per flow (in list order) one split for the ideal
     reverse line iff the flow is reverse-loss-capable, then one split
     for the transport. The Path/Multihop wrappers depend on this to keep
     seeded simulations bit-identical with their pre-graph builders. *)
  let specs_a = Array.of_list specs in
  let names =
    Array.mapi
      (fun i (s : link_spec) ->
        match s.name with Some n -> n | None -> Printf.sprintf "link%d" i)
      specs_a
  in
  let links =
    Array.of_list
      (List.mapi
         (fun i (s : link_spec) ->
           Link.create (be.be_engine s.src) ~name:names.(i) ~loss:s.loss
             ~jitter:s.jitter ~rng:(Rng.split rng) ~bandwidth:s.bandwidth
             ~delay:s.delay
             ~queue:(make_queue s.queue ~capacity:s.buffer)
             ())
         specs)
  in
  (* Boundary links deliver through hub channels. The floor is the
     link's (initial) propagation delay — its conservative lookahead. *)
  (match be.be_hub with
  | None -> ()
  | Some hub ->
    Array.iteri
      (fun i l ->
        let s = specs_a.(i) in
        let ss = be.be_shard s.src and ds = be.be_shard s.dst in
        if ss <> ds then begin
          let floor =
            match be.be_floor with
            | None -> s.delay
            | Some f -> Float.min s.delay f
          in
          if not (floor > 0.) then
            fail
              "Topology.build_sharded: link %s crosses shards with zero \
               delay (no lookahead); lower the shard count or raise \
               min_cut_delay"
              names.(i);
          Link.set_remote_delivery l ~floor
            (wire_channel hub ~src_shard:ss ~dst_shard:ds
               ~src_engine:(be.be_engine s.src) ~dst_engine:(be.be_engine s.dst)
               ~floor ~deliver:(Link.deliver_remote l))
        end)
      links);
  let fwd_tables = Array.init num_nodes (fun _ -> Hashtbl.create 8) in
  let rev_tables = Array.init num_nodes (fun _ -> Hashtbl.create 8) in
  Array.iteri
    (fun i l ->
      let dst = specs_a.(i).dst in
      Link.set_receiver l (fun pkt ->
          let tbl =
            match pkt.Packet.kind with
            | Packet.Data _ -> fwd_tables.(dst)
            | Packet.Ack _ -> rev_tables.(dst)
          in
          match Hashtbl.find_opt tbl pkt.Packet.flow with
          | Some deliver -> deliver pkt
          | None -> ()))
    links;
  let n = List.length defs in
  let built = Array.make n None in
  let revs = Array.make n { line = None; lossy = false } in
  let routes = Array.make n [||] in
  let hooks = Array.init n (fun _ -> ref []) in
  List.iteri
    (fun i (def, (fwd_ids, rev_ids)) ->
      routes.(i) <- fwd_ids;
      let head = List.hd def.route in
      let tail = List.nth def.route (List.length def.route - 1) in
      let head_engine = be.be_engine head in
      let tail_engine = be.be_engine tail in
      let prop ids =
        Array.fold_left (fun acc id -> acc +. specs_a.(id).delay) 0. ids
      in
      let fwd_prop = prop fwd_ids in
      let rev_line, ack_out, rtt_hint =
        match rev_ids with
        | None ->
          (* Ideal reverse: matching propagation delay plus this flow's
             extra share, lossy iff the flow opted in. Lives where the
             acks originate (the receiver's shard); when the sender is
             elsewhere, delivery crosses back through a hub channel
             whose floor is the line's delay — at least the cut links'
             delays, since it matches the forward path's propagation. *)
          let delay = fwd_prop +. (def.extra_rtt /. 2.) in
          let rev =
            if def.rev_lossy then
              Delay_line.create tail_engine ~loss:rev_loss ~rng:(Rng.split rng)
                ~delay ()
            else Delay_line.create tail_engine ~delay ()
          in
          (match be.be_hub with
          | Some hub when be.be_shard head <> be.be_shard tail ->
            let floor =
              match be.be_floor with
              | None -> delay
              | Some f -> Float.min delay f
            in
            Delay_line.set_remote rev ~floor
              (wire_channel hub ~src_shard:(be.be_shard tail)
                 ~dst_shard:(be.be_shard head) ~src_engine:tail_engine
                 ~dst_engine:head_engine ~floor
                 ~deliver:(Delay_line.deliver_remote rev))
          | Some _ | None -> ());
          (Some rev, Delay_line.send rev, (2. *. fwd_prop) +. def.extra_rtt)
        | Some ids ->
          ( None,
            Link.send links.(ids.(0)),
            fwd_prop +. prop ids +. def.extra_rtt )
      in
      revs.(i) <-
        { line = rev_line; lossy = def.rev_lossy && Option.is_some rev_line };
      let receiver = Receiver.create tail_engine ~ack_out in
      let fwd : (Packet.t -> unit) ref = ref (fun _ -> ()) in
      let on_complete at =
        match built.(i) with
        | Some b ->
          let fct = at -. b.def.start_at in
          b.fct <- Some fct;
          if Pcc_trace.Collector.enabled () then
            Pcc_trace.Collector.emit Pcc_trace.Event.Flow_complete ~time:at
              ~id:b.sender.Sender.flow ~a:fct ~b:0. ~i:0;
          List.iter (fun f -> f fct) !(hooks.(i))
        | None -> ()
      in
      let sender =
        Transport.build head_engine ~rng:(Rng.split rng) ?size:def.size
          ~on_complete ~rtt_hint def.transport
          ~out:(fun pkt -> !fwd pkt)
      in
      (* Forward entry: optional per-flow access delay, then the route's
         first link. *)
      let first_link = links.(fwd_ids.(0)) in
      (if def.extra_rtt > 0. then begin
         let access =
           Delay_line.create head_engine ~delay:(def.extra_rtt /. 2.) ()
         in
         Delay_line.set_receiver access (Link.send first_link);
         fwd := Delay_line.send access
       end
       else fwd := Link.send first_link);
      let fid = sender.Sender.flow in
      (* The scenario label ("pcc #2", "cubic-competitor", ...) is more
         telling than the transport's own registration; overwrite it. *)
      Pcc_trace.Collector.register Pcc_trace.Event.Flow_scope ~id:fid
        def.label;
      let route_a = Array.of_list def.route in
      for k = 1 to Array.length route_a - 1 do
        if k = Array.length route_a - 1 then
          Hashtbl.replace fwd_tables.(route_a.(k)) fid
            (Receiver.on_packet receiver)
        else
          Hashtbl.replace fwd_tables.(route_a.(k)) fid
            (Link.send links.(fwd_ids.(k)))
      done;
      let ack_handler pkt =
        match pkt.Packet.kind with
        | Packet.Ack a -> sender.Sender.handle_ack a
        | Packet.Data _ -> ()
      in
      (match (rev_line, rev_ids, def.rev_route) with
      | Some line, _, _ -> Delay_line.set_receiver line ack_handler
      | None, Some ids, Some rroute ->
        let final =
          if def.extra_rtt > 0. then begin
            let tail_line =
              Delay_line.create head_engine ~delay:(def.extra_rtt /. 2.) ()
            in
            Delay_line.set_receiver tail_line ack_handler;
            Delay_line.send tail_line
          end
          else ack_handler
        in
        let rroute_a = Array.of_list rroute in
        for k = 1 to Array.length rroute_a - 1 do
          if k = Array.length rroute_a - 1 then
            Hashtbl.replace rev_tables.(rroute_a.(k)) fid final
          else
            Hashtbl.replace rev_tables.(rroute_a.(k)) fid
              (Link.send links.(ids.(k)))
        done
      | None, _, _ -> assert false);
      built.(i) <- Some { def; sender; receiver; fct = None };
      ignore
        (Engine.schedule head_engine ~at:def.start_at (fun () ->
             if Pcc_trace.Collector.enabled () then
               Pcc_trace.Collector.emit Pcc_trace.Event.Flow_start
                 ~time:(Engine.now head_engine) ~id:fid ~a:0. ~b:0. ~i:0;
             sender.Sender.start ()));
      match def.stop_at with
      | Some at ->
        ignore
          (Engine.schedule head_engine ~at (fun () ->
               if Pcc_trace.Collector.enabled () then
                 Pcc_trace.Collector.emit Pcc_trace.Event.Flow_stop
                   ~time:(Engine.now head_engine) ~id:fid ~a:0. ~b:0. ~i:0;
               sender.Sender.stop ()))
      | None -> ())
    (List.combine defs flow_routes);
  (* Periodic link-queue occupancy samples. The probe reschedules itself
     without end, so it is armed only while a collector is installed in
     this domain — traced runs are always time-bounded ([run ~until]).
     Unsharded, the probe chain rides the engine; sharded, it becomes a
     recurring hub control, so it samples every link at a barrier (all
     shards fenced at the probe instant) and — controls not being
     engine events — leaves event counts identical at every shard
     count. *)
  (match Pcc_trace.Collector.current () with
  | Some c when Pcc_trace.Collector.wants c Pcc_trace.Event.cat_link ->
    let dt = Pcc_trace.Collector.probe_interval c in
    let sample now =
      Array.iter
        (fun l ->
          let q = Link.queue l in
          Pcc_trace.Collector.emit Pcc_trace.Event.Queue_sample ~time:now
            ~id:(Link.trace_id l)
            ~a:(float_of_int (q.Queue_disc.len_bytes ()))
            ~b:0.
            ~i:(q.Queue_disc.len_pkts ()))
        links
    in
    (match be.be_hub with
    | None ->
      let e = be.be_engine 0 in
      let rec probe () =
        sample (Engine.now e);
        Engine.post_in e ~after:dt probe
      in
      Engine.post_in e ~after:dt probe
    | Some hub ->
      let rec probe at () =
        sample at;
        Shard.at hub ~time:(at +. dt) (probe (at +. dt))
      in
      Shard.at hub ~time:dt (probe dt))
  | Some _ | None -> ());
  let strip = function Some x -> x | None -> assert false in
  {
    engine =
      (match be.be_hub with
      | None -> be.be_engine 0
      | Some hub -> Shard.engine hub 0);
    hub = be.be_hub;
    shard_of = Array.init num_nodes be.be_shard;
    num_nodes;
    links;
    specs = specs_a;
    names;
    edges;
    built = Array.map strip built;
    routes;
    revs;
    fwd_tables;
    rev_tables;
    hooks;
    rev_loss;
  }

let build engine ~rng ?nodes ~links ?rev_loss ~flows () =
  build_with
    {
      be_hub = None;
      be_shard = (fun _ -> 0);
      be_engine = (fun _ -> engine);
      be_floor = None;
    }
    ~rng ?nodes ~links ?rev_loss ~flows ()

let default_min_cut_delay = 0.0005

let build_sharded hub ~rng ?nodes ?(min_cut_delay = default_min_cut_delay)
    ?delay_floor ~links:specs ?rev_loss ~flows:defs () =
  if not (min_cut_delay > 0.) then
    fail "Topology.build_sharded: min_cut_delay must be positive";
  (match delay_floor with
  | Some f when not (f > 0.) ->
    fail "Topology.build_sharded: delay_floor must be positive"
  | _ -> ());
  (* Validate before partitioning, so rejections carry the build errors
     (and, as in [build], precede any RNG consumption). *)
  let computed_nodes =
    1 + List.fold_left (fun acc s -> max acc (max s.src s.dst)) 0 specs
  in
  let num_nodes =
    match nodes with
    | None -> computed_nodes
    | Some n ->
      if n < computed_nodes then
        fail "Topology.build: %d nodes but a link reaches node %d" n
          (computed_nodes - 1);
      n
  in
  let edges = validate_links ~num_nodes specs in
  List.iter (fun def -> ignore (validate_flow ~num_nodes ~edges def)) defs;
  let part =
    Partition.partition ~min_cut_delay ~shards:(Shard.shards hub)
      {
        Partition.nodes = num_nodes;
        edges = List.map (fun (s : link_spec) -> (s.src, s.dst, s.delay)) specs;
        routes =
          List.concat_map
            (fun def ->
              def.route :: (match def.rev_route with Some r -> [ r ] | None -> []))
            defs;
      }
  in
  let shard_of = part.Partition.shard_of in
  build_with
    {
      be_hub = Some hub;
      be_shard = (fun n -> shard_of.(n));
      be_engine = (fun n -> Shard.engine hub shard_of.(n));
      be_floor = delay_floor;
    }
    ~rng ~nodes:num_nodes ~links:specs ?rev_loss ~flows:defs ()

(* ------------------------------------------------------------------ *)
(* Accessors *)

let engine t = t.engine
let hub t = t.hub
let shard_of_node t n =
  if n < 0 || n >= t.num_nodes then
    fail "Topology.shard_of_node: node %d outside [0,%d)" n t.num_nodes;
  t.shard_of.(n)

let run ?mode ?max_events ?clock t ~until =
  match t.hub with
  | None ->
    ignore clock;
    ignore mode;
    Engine.run ?max_events ~until t.engine
  | Some hub -> Shard.run ?mode ?max_events ?clock hub ~until

let flows t = t.built
let num_nodes t = t.num_nodes
let num_links t = Array.length t.links
let links t = Array.copy t.links

let check_link t id =
  if id < 0 || id >= Array.length t.links then
    fail "Topology: link id %d outside [0,%d)" id (Array.length t.links)

let check_flow t id =
  if id < 0 || id >= Array.length t.built then
    fail "Topology: flow %d outside [0,%d)" id (Array.length t.built)

let link_at t id =
  check_link t id;
  t.links.(id)

let link_name t id =
  check_link t id;
  t.names.(id)

let link_between t a b = Hashtbl.find_opt t.edges (a, b)

let route_links t ~flow =
  check_flow t flow;
  Array.to_list t.routes.(flow)

let goodput_bytes b = Receiver.goodput_bytes b.receiver

let on_complete t ~flow f =
  check_flow t flow;
  t.hooks.(flow) := f :: !(t.hooks.(flow))

(* ------------------------------------------------------------------ *)
(* Dynamic knobs *)

let set_link_bandwidth t id bw =
  check_link t id;
  Link.set_bandwidth t.links.(id) bw

let set_link_delay t id d =
  check_link t id;
  Link.set_delay t.links.(id) d

let set_link_loss t id l =
  check_link t id;
  Link.set_loss t.links.(id) l

let rev_loss t = t.rev_loss

let set_rev_loss t l =
  t.rev_loss <- Float.max 0. (Float.min 1. l);
  Array.iter
    (fun r ->
      match r.line with
      | Some line when r.lossy -> Delay_line.set_loss line t.rev_loss
      | _ -> ())
    t.revs

let set_rev_delay t ~flow d =
  check_flow t flow;
  match t.revs.(flow).line with
  | Some line -> Delay_line.set_delay line d
  | None ->
    fail "Topology.set_rev_delay: flow %d routes its acks over links" flow

let set_base_rtt t ?(link = 0) rtt =
  check_link t link;
  Link.set_delay t.links.(link) (rtt /. 2.);
  Array.iteri
    (fun i r ->
      match r.line with
      | Some line ->
        let extra = t.built.(i).def.extra_rtt in
        Delay_line.set_delay line ((rtt /. 2.) +. (extra /. 2.))
      | None -> ())
    t.revs

(* ------------------------------------------------------------------ *)
(* Cross traffic *)

let send_link t id pkt =
  check_link t id;
  Link.send t.links.(id) pkt

let deliver_at t ~node ~flow deliver =
  if node < 0 || node >= t.num_nodes then
    fail "Topology.deliver_at: node %d outside [0,%d)" node t.num_nodes;
  Hashtbl.replace t.fwd_tables.(node) flow deliver

(* ------------------------------------------------------------------ *)

let rec queue_label = function
  | Droptail -> "droptail"
  | Droptail_pkts n -> Printf.sprintf "droptail(%d pkts)" n
  | Codel -> "codel"
  | Red -> "red"
  | Infinite -> "infinite"
  | Fq inner -> Printf.sprintf "fq(%s)" (queue_label inner)

let describe t =
  let b = Buffer.create 512 in
  Printf.bprintf b "topology: %d nodes, %d links, %d flows\n" t.num_nodes
    (Array.length t.links) (Array.length t.built);
  (match t.hub with
  | None -> ()
  | Some hub ->
    let cut =
      Array.to_list t.specs
      |> List.filter (fun (s : link_spec) ->
             t.shard_of.(s.src) <> t.shard_of.(s.dst))
      |> List.length
    in
    let la = Shard.lookahead hub in
    Printf.bprintf b
      "  sharded over %d shards (%d cut links, lookahead %s)\n"
      (Shard.shards hub) cut
      (if la < infinity then Printf.sprintf "%.3g ms" (la *. 1e3)
       else "unbounded");
    Printf.bprintf b "  shard of node:";
    Array.iteri (fun n s -> Printf.bprintf b " %d:%d" n s) t.shard_of;
    Buffer.add_char b '\n');
  Array.iteri
    (fun i l ->
      let s = t.specs.(i) in
      Printf.bprintf b
        "  link %-12s %d -> %d  %.3g Mbps  %.3g ms  buffer %d B  %s" t.names.(i)
        s.src s.dst
        (Link.bandwidth l /. 1e6)
        (Link.delay l *. 1e3)
        s.buffer (queue_label s.queue);
      if Link.loss l > 0. then Printf.bprintf b "  loss %g" (Link.loss l);
      if Link.jitter l > 0. then
        Printf.bprintf b "  jitter %.3g ms" (Link.jitter l *. 1e3);
      Buffer.add_char b '\n')
    t.links;
  Array.iteri
    (fun i bf ->
      let d = bf.def in
      let route_str r = String.concat "->" (List.map string_of_int r) in
      Printf.bprintf b "  flow %-12s %-8s route %s  reverse %s" d.label
        (Transport.name d.transport)
        (route_str d.route)
        (match d.rev_route with
        | Some r -> route_str r
        | None -> (
          match t.revs.(i).line with
          | Some line ->
            Printf.sprintf "ideal (%.3g ms%s)"
              (Delay_line.delay line *. 1e3)
              (if t.revs.(i).lossy then ", lossy-capable" else "")
          | None -> "ideal"));
      Printf.bprintf b "  start %g" d.start_at;
      (match d.stop_at with Some s -> Printf.bprintf b "  stop %g" s | None -> ());
      (match d.size with
      | Some z -> Printf.bprintf b "  size %d B" z
      | None -> ());
      if d.extra_rtt > 0. then
        Printf.bprintf b "  extra_rtt %.3g ms" (d.extra_rtt *. 1e3);
      Buffer.add_char b '\n')
    t.built;
  Buffer.contents b
