(** Deterministic topology partitioner for sharded execution.

    Produces the fixed node→shard assignment the determinism contract
    requires: a pure function of the topology graph and flow routes,
    with no RNG and no dependence on unordered-container iteration.

    The rule, in order:
    - edges with propagation delay below [min_cut_delay] can never be
      cut (they would give the hub near-zero lookahead), so their
      endpoints are fused into one component (union-find, lowest node
      id canonical);
    - components are placed largest-first (heuristic load: flow
      endpoints weigh 3/2, intermediate hops 1, link sources 1) onto
      the shard with the strongest flow-affinity to components already
      there, subject to a 1.2× balance cap; ties break toward the
      least-loaded, then lowest-indexed shard.

    See DESIGN.md §13. *)

type input = {
  nodes : int;
  edges : (int * int * float) list;
      (** [(src, dst, delay)] per link, in link-list order. *)
  routes : int list list;
      (** Every flow route (forward, and explicit reverse routes). *)
}

type result = {
  shard_of : int array;  (** Node to shard, length [nodes]. *)
  shards_used : int;  (** Distinct shards actually populated. *)
  cut_links : int;  (** Edges with endpoints on different shards. *)
  loads : int array;  (** Heuristic load placed on each shard. *)
}

val partition : ?min_cut_delay:float -> shards:int -> input -> result
(** [partition ~shards input] assigns every node to a shard in
    [0, shards)]. [min_cut_delay] (default 0.5 ms) is the smallest link
    delay the partitioner is willing to cut. Shards may end up empty
    when the graph has fewer viable components than shards.
    @raise Invalid_argument if [shards < 1], [nodes < 1], or an edge or
    route references a node outside the graph. *)
