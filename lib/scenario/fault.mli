(** Declarative fault injection.

    PCC's headline claim is {e consistent} performance under adverse
    conditions — random loss, shallow buffers, link flaps, satellite-grade
    delay (§4.1, Fig. 11). This module makes the adverse conditions
    first-class, reusable objects: a fault {!schedule} is plain data that
    can be printed, stored and replayed, and {!inject} compiles it onto
    engine timers against any {!target} topology.

    {b Determinism contract.} A schedule is pure data; injecting the same
    schedule into the same seeded topology reproduces every simulated event
    bit-for-bit. The {!chaos} generator draws Poisson fault arrivals and
    fault magnitudes exclusively from the [Rng.t] it is given, so a seed
    fully determines the gauntlet.

    {b Restoration semantics.} Each fault snapshots the knob it perturbs at
    onset and restores that snapshot when it ends, so faults compose with a
    standing baseline impairment. Schedules with overlapping faults on the
    same knob have last-restorer-wins semantics; {!chaos} produces
    non-overlapping schedules by construction. *)

type kind =
  | Blackout of { duration : float }
      (** Forward loss to 100% on every target link. *)
  | Loss_burst of { duration : float; loss : float }
      (** Forward Bernoulli loss raised to [loss]. *)
  | Bandwidth_cliff of { duration : float; factor : float }
      (** Bandwidth multiplied by [factor] (e.g. 0.1 = 90% cut), then
          restored. *)
  | Bandwidth_flap of { count : int; period : float; factor : float }
      (** [count] cycles of [period] seconds, each spending the first half
          at [bandwidth *. factor]. *)
  | Delay_spike of { duration : float; extra : float }
      (** Propagation delay increased by [extra] seconds (reroute via a
          longer path). *)
  | Jitter_burst of { duration : float; jitter : float }
      (** Uniform extra delay bound set to [jitter] seconds. *)
  | Reverse_blackhole of { duration : float }
      (** All acknowledgments dropped — every monitor interval during the
          hole reads 100% loss. *)
  | Reverse_loss_burst of { duration : float; loss : float }
      (** Ack-path Bernoulli loss raised to [loss]. *)
  | Duplication_episode of { duration : float; prob : float }
      (** Each delivered packet duplicated with probability [prob]. *)
  | Reordering_episode of { duration : float; prob : float; extra : float }
      (** Each packet delayed an extra [extra] seconds with probability
          [prob], arriving behind later-sent packets. *)
  | Partition of { duration : float; hop : int }
      (** Total loss on one hop of a multihop chain (index into
          {!target}[.links]). *)

type event = { at : float; kind : kind }

type schedule = event list

val at : float -> kind -> event
(** [at t kind] is [kind] striking at simulated time [t].
    @raise Invalid_argument if [t < 0]. *)

val duration : kind -> float
(** Total active span of a fault ([count * period] for a flap). *)

val describe : kind -> string
(** Short human-readable label, e.g. ["blackout 1.50s"]. *)

val window : event -> float * float
(** [(start, stop)] of the fault's active span. *)

val windows : schedule -> (string * float * float) list
(** [(describe, start, stop)] per event — the shape
    [Pcc_metrics.Recovery.analyze] consumes. *)

val pp_event : Format.formatter -> event -> unit
val pp_schedule : Format.formatter -> schedule -> unit

(** {1 Targets} *)

type target = {
  engine : Pcc_sim.Engine.t;
  links : Pcc_net.Link.t array;  (** Forward links faults perturb. *)
  set_rev_loss : float -> unit;  (** Ack-path loss knob (may be a no-op). *)
  rev_loss : unit -> float;  (** Current ack-path loss. *)
}

val target_of_topology : ?links:Topology.link_id list -> Topology.t -> target
(** General graph target. Link faults hit the listed links ([links]
    defaults to every link in the graph); {!Partition} indexes into that
    list. Reverse-path faults drive {!Topology.set_rev_loss}, which only
    affects flows whose ideal reverse lines are loss-capable. *)

val target_of_path : Path.t -> target
(** [target_of_topology (Path.topology p)]: faults hit the bottleneck
    link and the reverse delay lines. *)

val target_of_multihop : Multihop.t -> target
(** [target_of_topology (Multihop.topology mh)]: link faults hit
    {e every} hop; {!Partition} singles one out. Reverse-path faults have
    no effect (multihop reverse lines carry no RNG). *)

(** {1 Injection} *)

val inject : target -> schedule -> unit
(** Compile the schedule onto the target's engine: one timer per fault
    onset, one per restoration. Must be called before the engine passes
    the earliest [at].
    @raise Invalid_argument on a {!Partition} hop outside the target. *)

val inject_path : Path.t -> schedule -> unit
(** [inject_path p s] is [inject (target_of_path p) s]. *)

val inject_hub : Pcc_sim.Shard.t -> target -> schedule -> unit
(** Like {!inject}, but compiled onto hub {e controls}
    ({!Pcc_sim.Shard.at}) instead of engine timers: each knob flip fires
    between barrier windows at its exact fault instant, identically at
    every shard count, without adding engine events — so sharded and
    monolithic control timelines stay comparable. Targets whose links
    span several shards are still driven safely because controls run in
    the coordinator while every shard is parked at the barrier.
    @raise Invalid_argument on a {!Partition} hop outside the target. *)

(** {1 Chaos gauntlets} *)

val chaos :
  rng:Pcc_sim.Rng.t ->
  ?rate:float ->
  ?start:float ->
  ?gap:float ->
  ?kinds:kind array ->
  duration:float ->
  unit ->
  schedule
(** [chaos ~rng ~duration ()] draws a deterministic (per [rng] state)
    gauntlet of faults with Poisson arrivals at mean [rate] per second
    (default 0.1), none starting before [start] (default 5 s, giving flows
    time to converge), consecutive faults separated by at least [gap]
    seconds of healthy network (default 4 s, so per-fault recovery is
    measurable), and every fault ending by [duration]. Kinds and
    magnitudes are drawn from a built-in menu covering every [kind] except
    {!Partition}, or uniformly from [kinds] if given.
    @raise Invalid_argument if [rate <= 0], [gap < 0] or [kinds] is
    empty. *)
