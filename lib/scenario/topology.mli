(** General directed-graph topology layer.

    The paper's §1 argument is that real networks vary along dimensions —
    number of bottlenecks, reverse-path congestion, heterogeneous per-hop
    buffers and AQMs — that break hardwired assumptions. This module makes
    those dimensions first-class: a topology is a directed graph of
    {!link_spec} edges between integer nodes, and each flow names its
    forward route (and optionally an explicit reverse route, so a
    congested or lossy ack path is expressible) as a list of nodes.

    {!Path} (single bottleneck) and {!Multihop} (parking-lot chain) are
    thin wrappers over this module; both share one flow-lifecycle
    implementation here — start/stop scheduling, sized transfers with
    flow-completion-time recording, goodput accounting, cross-traffic
    attachment, and the dynamic knobs ({!set_link_bandwidth},
    {!set_link_delay}, {!set_link_loss}, {!set_rev_loss},
    {!set_base_rtt}) that the fault-injection and dynamic-network layers
    drive.

    {b Determinism.} [build] derives every random stream by splitting the
    supplied RNG in a fixed order: one split per link in list order, then
    per flow (in list order) one split for the ideal reverse line if the
    flow is reverse-loss-capable, then one split for the transport. The
    wrappers preserve the exact split order of their pre-graph
    implementations, so seeded simulations reproduce bit-for-bit. *)

type queue_kind =
  | Droptail  (** FIFO, byte capacity = the link's [buffer]. *)
  | Droptail_pkts of int  (** FIFO limited to a packet count. *)
  | Codel  (** CoDel over a [buffer]-byte FIFO. *)
  | Red
  | Infinite  (** Unbounded FIFO — "bufferbloat". *)
  | Fq of queue_kind
      (** DRR fair queuing with the given per-flow inner discipline, each
          with [buffer] bytes. *)

type node = int
(** Nodes are consecutive integers [0 .. num_nodes - 1]. *)

type link_id = int
(** Index into the topology's link array, in [links] list order. *)

type link_spec = {
  src : node;
  dst : node;
  bandwidth : float;  (** bits/s *)
  delay : float;  (** one-way propagation, s *)
  buffer : int;  (** bytes *)
  queue : queue_kind;
  loss : float;  (** Bernoulli channel loss *)
  jitter : float;  (** uniform extra propagation delay bound, s *)
  name : string option;  (** diagnostics label; default ["link<i>"] *)
}

val link :
  ?name:string ->
  ?delay:float ->
  ?buffer:int ->
  ?queue:queue_kind ->
  ?loss:float ->
  ?jitter:float ->
  src:node ->
  dst:node ->
  bandwidth:float ->
  unit ->
  link_spec
(** Defaults: 5 ms delay, one-BDP buffer at 30 ms, droptail, no loss, no
    jitter. *)

type flow_def = {
  transport : Transport.spec;
  route : node list;  (** Forward data route; at least two nodes, every
                          consecutive pair joined by a link. *)
  rev_route : node list option;
      (** Explicit ack route from the route's last node back to its
          first, every consecutive pair joined by a link — acks then
          compete for those links' bandwidth and buffers. [None] (the
          default) gives an ideal reverse delay line of matching
          propagation delay. *)
  rev_lossy : bool;
      (** Whether the ideal reverse line carries an RNG so ack-path loss
          ({!set_rev_loss}, reverse-path faults) can be applied to it.
          Ignored when [rev_route] is given. *)
  start_at : float;
  stop_at : float option;
  size : int option;  (** Transfer bytes; [None] = long-running. *)
  extra_rtt : float;  (** Extra per-flow propagation, split between an
                          access delay line before the first link and the
                          reverse direction. *)
  label : string;
}

val flow :
  ?start_at:float ->
  ?stop_at:float ->
  ?size:int ->
  ?extra_rtt:float ->
  ?rev_route:node list ->
  ?rev_lossy:bool ->
  ?label:string ->
  route:node list ->
  Transport.spec ->
  flow_def
(** [rev_lossy] defaults to [true]. *)

type built_flow = {
  def : flow_def;
  sender : Pcc_net.Sender.t;
  receiver : Pcc_net.Receiver.t;
  mutable fct : float option;  (** Completion duration, for sized flows. *)
}

type t

val build :
  Pcc_sim.Engine.t ->
  rng:Pcc_sim.Rng.t ->
  ?nodes:int ->
  links:link_spec list ->
  ?rev_loss:float ->
  flows:flow_def list ->
  unit ->
  t
(** [build engine ~rng ~links ~flows ()] wires the graph and schedules
    every flow's start/stop. [nodes] defaults to one past the highest
    node any link names. [rev_loss] is the initial Bernoulli loss of
    every reverse-loss-capable ideal reverse line.

    All inputs are validated here — this is the single validation point
    the {!Path} and {!Multihop} wrappers rely on.
    @raise Invalid_argument if [links] is empty; if a link has a negative
    endpoint, is a self-loop, duplicates another link's [(src, dst)]
    edge, or has non-positive bandwidth/buffer, negative delay/jitter or
    loss outside [0, 1]; if [rev_loss] is outside [0, 1]; or if a flow
    has [start_at < 0], [stop_at <= start_at], [size <= 0],
    [extra_rtt < 0], a route with fewer than two nodes, a route step
    with no link, a node outside the graph, or a reverse route that does
    not run from the forward route's last node back to its first. *)

val build_sharded :
  Pcc_sim.Shard.t ->
  rng:Pcc_sim.Rng.t ->
  ?nodes:int ->
  ?min_cut_delay:float ->
  ?delay_floor:float ->
  links:link_spec list ->
  ?rev_loss:float ->
  flows:flow_def list ->
  unit ->
  t
(** [build_sharded hub ~rng ~links ~flows ()] is {!build} distributed
    over the hub's shards: nodes are assigned by {!Partition.partition}
    (edges faster than [min_cut_delay], default 0.5 ms, are never cut),
    every component lands on the shard owning its node, and each
    boundary element — a cut link, or the ideal reverse line of a flow
    whose endpoints sit on different shards — delivers through a
    {!Pcc_sim.Shard.channel} whose lookahead floor is its (initial)
    propagation delay, capped at [delay_floor] when given (for callers
    that intend to lower cut delays mid-run; lowering below the floor
    raises).

    The RNG split order, validation and flow lifecycle are exactly
    {!build}'s; a seeded scenario built on a 1-shard hub therefore runs
    byte-identically to the same scenario on N shards (see {!Shard} for
    the protocol and the one tie-break caveat).

    Queue-occupancy trace probes are registered as recurring hub
    controls rather than engine events, so event counts also match
    across shard counts.
    @raise Invalid_argument for everything {!build} rejects, plus a
    non-positive [min_cut_delay]/[delay_floor], or a cut link whose
    floor would be zero. *)

(** {1 Accessors} *)

val engine : t -> Pcc_sim.Engine.t
(** The engine — shard 0's engine when built with {!build_sharded}
    (drive those through {!run} or the hub, not this engine alone). *)

val hub : t -> Pcc_sim.Shard.t option
(** The hub this topology was built on, if sharded. *)

val shard_of_node : t -> node -> int
(** The shard owning a node (always 0 when unsharded).
    @raise Invalid_argument if the node is out of range. *)

val run :
  ?mode:Pcc_sim.Shard.mode ->
  ?max_events:int ->
  ?clock:(unit -> float) ->
  t ->
  until:float ->
  unit
(** Advance the simulation to [until]: {!Pcc_sim.Shard.run} when
    sharded (honouring [mode]), plain {!Pcc_sim.Engine.run} otherwise
    ([mode] and [clock] are then ignored). *)

val flows : t -> built_flow array
val num_nodes : t -> int
val num_links : t -> int

val links : t -> Pcc_net.Link.t array
(** A fresh array of every link, in {!link_id} order. *)

val link_at : t -> link_id -> Pcc_net.Link.t
(** @raise Invalid_argument if the id is out of range. *)

val link_name : t -> link_id -> string

val link_between : t -> node -> node -> link_id option
(** The directed edge from one node to another, if present. *)

val route_links : t -> flow:int -> link_id list
(** The links a flow's forward route traverses, in order. *)

val goodput_bytes : built_flow -> int
(** Distinct payload bytes the flow's receiver has accepted so far. *)

val on_complete : t -> flow:int -> (float -> unit) -> unit
(** Register an extra callback invoked with the flow-completion time
    (completion instant minus [start_at]) when the sized flow finishes —
    after the built flow's [fct] field is set. Used by the wrappers to
    mirror FCTs into their own records.
    @raise Invalid_argument if the flow index is out of range. *)

val describe : t -> string
(** Multi-line human-readable summary: nodes, links with their
    parameters, flows with their routes — what [pcc_sim topo --describe]
    prints. *)

(** {1 Dynamic knobs}

    These subsume the pre-graph [Path.set_base_rtt] / [Path.set_rev_loss]
    knobs and are what {!Fault}, {!Dynamics} and the invariant checker
    drive. All raise [Invalid_argument] on an out-of-range link id. *)

val set_link_bandwidth : t -> link_id -> float -> unit
val set_link_delay : t -> link_id -> float -> unit
val set_link_loss : t -> link_id -> float -> unit

val rev_loss : t -> float
(** Current ack-path Bernoulli loss of the ideal reverse lines. *)

val set_rev_loss : t -> float -> unit
(** Set the loss probability (clamped to [\[0, 1\]]) on every
    reverse-loss-capable ideal reverse line. Flows with explicit reverse
    routes are unaffected — impair their links directly instead. *)

val set_rev_delay : t -> flow:int -> float -> unit
(** Retarget one flow's ideal reverse line delay.
    @raise Invalid_argument if the flow is out of range or routes its
    acks over explicit links. *)

val set_base_rtt : t -> ?link:link_id -> float -> unit
(** [set_base_rtt t ~link rtt] retargets a base RTT carried by one link
    (default 0): the link's delay becomes [rtt /. 2] and every flow's
    ideal reverse line is retargeted to [rtt /. 2 +. extra_rtt /. 2] —
    the rapidly-changing-network knob on a dumbbell. *)

(** {1 Cross traffic} *)

val send_link : t -> link_id -> Pcc_net.Packet.t -> unit
(** Push a packet straight into a link's queue (cross traffic). *)

val deliver_at : t -> node:node -> flow:int -> (Pcc_net.Packet.t -> unit) -> unit
(** Register a delivery handler for an extra (cross-traffic) data flow id
    at a node; data packets of unknown flows are silently dropped. *)
