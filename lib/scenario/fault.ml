open Pcc_sim
open Pcc_net

type kind =
  | Blackout of { duration : float }
  | Loss_burst of { duration : float; loss : float }
  | Bandwidth_cliff of { duration : float; factor : float }
  | Bandwidth_flap of { count : int; period : float; factor : float }
  | Delay_spike of { duration : float; extra : float }
  | Jitter_burst of { duration : float; jitter : float }
  | Reverse_blackhole of { duration : float }
  | Reverse_loss_burst of { duration : float; loss : float }
  | Duplication_episode of { duration : float; prob : float }
  | Reordering_episode of { duration : float; prob : float; extra : float }
  | Partition of { duration : float; hop : int }

type event = { at : float; kind : kind }
type schedule = event list

let at time kind =
  if time < 0. then invalid_arg "Fault.at: time must be non-negative";
  { at = time; kind }

let duration = function
  | Blackout { duration }
  | Loss_burst { duration; _ }
  | Bandwidth_cliff { duration; _ }
  | Delay_spike { duration; _ }
  | Jitter_burst { duration; _ }
  | Reverse_blackhole { duration }
  | Reverse_loss_burst { duration; _ }
  | Duplication_episode { duration; _ }
  | Reordering_episode { duration; _ }
  | Partition { duration; _ } -> duration
  | Bandwidth_flap { count; period; _ } -> float_of_int count *. period

let describe = function
  | Blackout { duration } -> Printf.sprintf "blackout %.2fs" duration
  | Loss_burst { duration; loss } ->
    Printf.sprintf "loss-burst p=%.2f %.2fs" loss duration
  | Bandwidth_cliff { duration; factor } ->
    Printf.sprintf "bw-cliff x%.2f %.2fs" factor duration
  | Bandwidth_flap { count; period; factor } ->
    Printf.sprintf "bw-flap x%.2f %dx%.2fs" factor count period
  | Delay_spike { duration; extra } ->
    Printf.sprintf "delay-spike +%.0fms %.2fs" (extra *. 1e3) duration
  | Jitter_burst { duration; jitter } ->
    Printf.sprintf "jitter-burst %.0fms %.2fs" (jitter *. 1e3) duration
  | Reverse_blackhole { duration } ->
    Printf.sprintf "rev-blackhole %.2fs" duration
  | Reverse_loss_burst { duration; loss } ->
    Printf.sprintf "rev-loss p=%.2f %.2fs" loss duration
  | Duplication_episode { duration; prob } ->
    Printf.sprintf "duplication p=%.2f %.2fs" prob duration
  | Reordering_episode { duration; prob; extra } ->
    Printf.sprintf "reordering p=%.2f +%.0fms %.2fs" prob (extra *. 1e3)
      duration
  | Partition { duration; hop } ->
    Printf.sprintf "partition hop=%d %.2fs" hop duration

let window ev = (ev.at, ev.at +. duration ev.kind)

let windows sched =
  List.map (fun ev -> (describe ev.kind, ev.at, ev.at +. duration ev.kind)) sched

let pp_event fmt ev =
  Format.fprintf fmt "t=%-8.2f %s" ev.at (describe ev.kind)

let pp_schedule fmt sched =
  List.iter (fun ev -> Format.fprintf fmt "%a@." pp_event ev) sched

(* ------------------------------------------------------------------ *)
(* Targets *)

type target = {
  engine : Engine.t;
  links : Link.t array;
  set_rev_loss : float -> unit;
  rev_loss : unit -> float;
}

let target_of_topology ?links:ids topo =
  let links =
    match ids with
    | None -> Topology.links topo
    | Some ids ->
      Array.of_list (List.map (fun id -> Topology.link_at topo id) ids)
  in
  {
    engine = Topology.engine topo;
    links;
    set_rev_loss = Topology.set_rev_loss topo;
    rev_loss = (fun () -> Topology.rev_loss topo);
  }

let target_of_path path = target_of_topology (Path.topology path)
let target_of_multihop mh = target_of_topology (Multihop.topology mh)

(* ------------------------------------------------------------------ *)
(* Compilation onto engine timers *)

(* Each fault snapshots the knob it perturbs at onset and restores that
   snapshot when it ends, so a schedule of non-overlapping faults composes
   with a baseline impairment (e.g. standing 1% loss). Overlapping faults
   on the same knob have last-restorer-wins semantics; {!chaos} generates
   non-overlapping schedules by construction.

   The compilation is parameterized over the timer primitive so the same
   fault semantics can ride either plain engine timers (monolithic runs)
   or hub controls (sharded runs, where engine events would perturb the
   per-shard event counts the determinism tests compare). *)

let apply_event_gen ~sched tgt ev =
  let each f = Array.iter f tgt.links in
  let on_all_links ~at:t0 ~duration ~apply ~restore =
    sched ~at:t0 (fun () ->
        let saved = Array.map (fun l -> restore l) tgt.links in
        each apply;
        sched ~at:(t0 +. duration) (fun () ->
            Array.iteri (fun i l -> saved.(i) l) tgt.links))
  in
  match ev.kind with
  | Blackout { duration } ->
    on_all_links ~at:ev.at ~duration
      ~apply:(fun l -> Link.set_loss l 1.)
      ~restore:(fun l ->
        let saved = Link.loss l in
        fun l -> Link.set_loss l saved)
  | Loss_burst { duration; loss } ->
    on_all_links ~at:ev.at ~duration
      ~apply:(fun l -> Link.set_loss l loss)
      ~restore:(fun l ->
        let saved = Link.loss l in
        fun l -> Link.set_loss l saved)
  | Bandwidth_cliff { duration; factor } ->
    let factor = Float.max 1e-6 factor in
    on_all_links ~at:ev.at ~duration
      ~apply:(fun l -> Link.set_bandwidth l (Link.bandwidth l *. factor))
      ~restore:(fun l ->
        let saved = Link.bandwidth l in
        fun l -> Link.set_bandwidth l saved)
  | Bandwidth_flap { count; period; factor } ->
    let factor = Float.max 1e-6 factor in
    for i = 0 to count - 1 do
      let t0 = ev.at +. (float_of_int i *. period) in
      on_all_links ~at:t0 ~duration:(period /. 2.)
        ~apply:(fun l -> Link.set_bandwidth l (Link.bandwidth l *. factor))
        ~restore:(fun l ->
          let saved = Link.bandwidth l in
          fun l -> Link.set_bandwidth l saved)
    done
  | Delay_spike { duration; extra } ->
    on_all_links ~at:ev.at ~duration
      ~apply:(fun l -> Link.set_delay l (Link.delay l +. extra))
      ~restore:(fun l ->
        let saved = Link.delay l in
        fun l -> Link.set_delay l saved)
  | Jitter_burst { duration; jitter } ->
    on_all_links ~at:ev.at ~duration
      ~apply:(fun l -> Link.set_jitter l jitter)
      ~restore:(fun l ->
        let saved = Link.jitter l in
        fun l -> Link.set_jitter l saved)
  | Reverse_blackhole { duration } ->
    sched ~at:ev.at (fun () ->
        let saved = tgt.rev_loss () in
        tgt.set_rev_loss 1.;
        sched ~at:(ev.at +. duration) (fun () -> tgt.set_rev_loss saved))
  | Reverse_loss_burst { duration; loss } ->
    sched ~at:ev.at (fun () ->
        let saved = tgt.rev_loss () in
        tgt.set_rev_loss loss;
        sched ~at:(ev.at +. duration) (fun () -> tgt.set_rev_loss saved))
  | Duplication_episode { duration; prob } ->
    on_all_links ~at:ev.at ~duration
      ~apply:(fun l -> Link.set_duplication l prob)
      ~restore:(fun _ -> fun l -> Link.set_duplication l 0.)
  | Reordering_episode { duration; prob; extra } ->
    on_all_links ~at:ev.at ~duration
      ~apply:(fun l -> Link.set_reordering l ~prob ~extra)
      ~restore:(fun _ -> fun l -> Link.set_reordering l ~prob:0. ~extra:0.)
  | Partition { duration; hop } ->
    if hop < 0 || hop >= Array.length tgt.links then
      invalid_arg
        (Printf.sprintf "Fault.inject: partition hop %d outside [0,%d)" hop
           (Array.length tgt.links));
    let link = tgt.links.(hop) in
    sched ~at:ev.at (fun () ->
        let saved = Link.loss link in
        Link.set_loss link 1.;
        sched ~at:(ev.at +. duration) (fun () -> Link.set_loss link saved))

let apply_event tgt ev =
  apply_event_gen
    ~sched:(fun ~at f -> ignore (Engine.schedule tgt.engine ~at f))
    tgt ev

let inject tgt sched = List.iter (apply_event tgt) sched

let inject_path path sched = inject (target_of_path path) sched

let inject_hub hub tgt sched =
  List.iter
    (apply_event_gen ~sched:(fun ~at f -> Shard.at hub ~time:at f) tgt)
    sched

(* ------------------------------------------------------------------ *)
(* Seeded chaos generator *)

let draw_kind rng =
  match Rng.int rng 8 with
  | 0 -> Blackout { duration = Rng.uniform rng 0.5 2. }
  | 1 ->
    Loss_burst
      { duration = Rng.uniform rng 1. 3.; loss = Rng.uniform rng 0.05 0.3 }
  | 2 ->
    Bandwidth_cliff
      { duration = Rng.uniform rng 2. 5.; factor = Rng.uniform rng 0.1 0.5 }
  | 3 ->
    Bandwidth_flap
      {
        count = 2 + Rng.int rng 3;
        period = Rng.uniform rng 0.5 1.5;
        factor = Rng.uniform rng 0.1 0.5;
      }
  | 4 ->
    Delay_spike
      {
        duration = Rng.uniform rng 1. 3.;
        extra = Rng.uniform rng 0.02 0.1;
      }
  | 5 ->
    Jitter_burst
      {
        duration = Rng.uniform rng 1. 3.;
        jitter = Rng.uniform rng 0.005 0.02;
      }
  | 6 -> Reverse_blackhole { duration = Rng.uniform rng 0.5 1.5 }
  | _ ->
    Reordering_episode
      {
        duration = Rng.uniform rng 1. 3.;
        prob = Rng.uniform rng 0.05 0.2;
        extra = Rng.uniform rng 0.01 0.05;
      }

let kind_duration = duration

let chaos ~rng ?(rate = 0.1) ?(start = 5.) ?(gap = 4.) ?kinds ~duration () =
  if rate <= 0. then invalid_arg "Fault.chaos: rate must be positive";
  if gap < 0. then invalid_arg "Fault.chaos: gap must be non-negative";
  let next_kind =
    match kinds with
    | None -> fun () -> draw_kind rng
    | Some [||] -> invalid_arg "Fault.chaos: empty kind pool"
    | Some pool -> fun () -> Rng.pick rng pool
  in
  (* Poisson arrivals, pushed apart so that one fault ends (plus a
     recovery gap) before the next begins — keeps per-fault recovery
     measurable and restoration semantics trivial. *)
  let rec grow acc t =
    let arrival = t +. Rng.exponential rng (1. /. rate) in
    let kind = next_kind () in
    let d = kind_duration kind in
    if arrival +. d > duration then List.rev acc
    else grow ({ at = arrival; kind } :: acc) (arrival +. d +. gap)
  in
  grow [] (Float.max 0. start)
