open Pcc_sim
open Pcc_net

type t = {
  engine : Engine.t;
  rng : Rng.t;
  sink : Packet.t -> unit;
  rate : float;
  on_mean : float;
  off_mean : float;
  flow : int;
  mutable on_until : float;
  mutable running : bool;
  mutable seq : int;
  mutable sent : int;
}

let gap t = float_of_int (Units.mss * 8) /. t.rate

let rec send_tick t () =
  if t.running then begin
    let now = Engine.now t.engine in
    if now < t.on_until then begin
      let pkt =
        Packet.data ~flow:t.flow ~seq:t.seq ~size:Units.mss ~now ~retx:false
      in
      t.seq <- t.seq + 1;
      t.sent <- t.sent + 1;
      t.sink pkt;
      Engine.post_in t.engine ~after:(gap t) (send_tick t)
    end
    else begin
      (* OFF period, then a fresh burst. *)
      let off = Rng.exponential t.rng t.off_mean in
      ignore
        (Engine.schedule_in t.engine ~after:off (fun () ->
             if t.running then begin
               t.on_until <-
                 Engine.now t.engine +. Rng.exponential t.rng t.on_mean;
               send_tick t ()
             end))
    end
  end

let onoff engine ~rng ~sink ~rate ~on_mean ~off_mean () =
  if rate <= 0. then invalid_arg "Cross_traffic.onoff: rate must be positive";
  let t =
    {
      engine;
      rng;
      sink;
      rate;
      on_mean;
      off_mean;
      flow = Packet.fresh_flow_id ();
      on_until = 0.;
      running = true;
      seq = 0;
      sent = 0;
    }
  in
  t.on_until <- Engine.now engine +. Rng.exponential rng on_mean;
  send_tick t ();
  t

let stop t = t.running <- false
let flow_id t = t.flow
let sent_pkts t = t.sent
