type spec =
  | Pcc of Pcc_core.Pcc_sender.config
  | Tcp of { variant : string; pacing : bool; min_rto : float option }
  | Sabul
  | Pcp

let pcc ?(config = Pcc_core.Pcc_sender.default_config) () = Pcc config
let tcp variant = Tcp { variant; pacing = false; min_rto = None }
let tcp_paced variant = Tcp { variant; pacing = true; min_rto = None }
let sabul = Sabul
let pcp = Pcp

let name = function
  | Pcc cfg ->
    let algo =
      match
        cfg.Pcc_core.Pcc_sender.controller.Pcc_core.Controller.algorithm
      with
      | Pcc_core.Controller.Allegro -> "pcc"
      | Pcc_core.Controller.Vivace _ -> "vivace"
    in
    algo ^ "/" ^ cfg.Pcc_core.Pcc_sender.utility.Pcc_core.Utility.name
  | Tcp { variant; pacing; _ } -> variant ^ if pacing then "+pacing" else ""
  | Sabul -> "sabul"
  | Pcp -> "pcp"

(* Name-indexed construction, shared by the CLI and the scenario
   generator. The names here are the serialization vocabulary of
   [Scenario]: every spec a generated scenario can carry must round-trip
   through [of_name]. *)
let of_name s =
  match String.lowercase_ascii s with
  | "pcc" -> Ok (pcc ())
  | "pcc-latency" ->
    Ok
      (pcc
         ~config:
           (Pcc_core.Pcc_sender.config_with
              ~utility:(Pcc_core.Utility.latency ())
              ())
         ())
  | "pcc-resilient" ->
    Ok
      (pcc
         ~config:
           (Pcc_core.Pcc_sender.config_with
              ~utility:(Pcc_core.Utility.loss_resilient ())
              ())
         ())
  | "pcc-vivace" ->
    (* The full Vivace sender: gradient-ascent controller driving the
       latency-aware Vivace utility. *)
    Ok
      (pcc
         ~config:
           (Pcc_core.Pcc_sender.config_with
              ~utility:(Pcc_core.Utility.vivace ())
              ~algorithm:
                (Pcc_core.Controller.Vivace Pcc_core.Controller.default_vivace)
              ())
         ())
  | "pcc-proteus" ->
    Ok
      (pcc
         ~config:
           (Pcc_core.Pcc_sender.config_with
              ~utility:(Pcc_core.Utility.proteus_primary ())
              ~algorithm:
                (Pcc_core.Controller.Vivace Pcc_core.Controller.default_vivace)
              ())
         ())
  | "pcc-proteus-scavenger" ->
    Ok
      (pcc
         ~config:
           (Pcc_core.Pcc_sender.config_with
              ~utility:(Pcc_core.Utility.proteus_scavenger ())
              ~algorithm:
                (Pcc_core.Controller.Vivace Pcc_core.Controller.default_vivace)
              ())
         ())
  | "pcc-proteus-hybrid" ->
    Ok
      (pcc
         ~config:
           (Pcc_core.Pcc_sender.config_with
              ~utility:(Pcc_core.Utility.proteus_hybrid ())
              ~algorithm:
                (Pcc_core.Controller.Vivace Pcc_core.Controller.default_vivace)
              ())
         ())
  | "sabul" -> Ok sabul
  | "pcp" -> Ok pcp
  | s when String.length s > 6 && String.sub s 0 6 = "paced-" ->
    let v = String.sub s 6 (String.length s - 6) in
    if List.mem v Pcc_tcp.Registry.variants then Ok (tcp_paced v)
    else Error ("unknown TCP variant " ^ v)
  | s when List.mem s Pcc_tcp.Registry.variants -> Ok (tcp s)
  | s -> Error ("unknown transport " ^ s)

let all_names =
  [
    "pcc";
    "pcc-latency";
    "pcc-resilient";
    "pcc-vivace";
    "pcc-proteus";
    "pcc-proteus-scavenger";
    "pcc-proteus-hybrid";
    "sabul";
    "pcp";
  ]
  @ Pcc_tcp.Registry.variants
  @ List.map (fun v -> "paced-" ^ v) Pcc_tcp.Registry.variants

let build engine ~rng ?size ?on_complete ?rtt_hint spec ~out =
  match spec with
  | Pcc config ->
    (* A real connection learns the base RTT from its handshake; seed the
       monitor's estimate and the 2·MSS/RTT initial rate with it. *)
    let config =
      match rtt_hint with
      | None -> config
      | Some rtt ->
        let open Pcc_core in
        {
          config with
          Pcc_sender.monitor =
            { config.Pcc_sender.monitor with Monitor.initial_rtt = rtt };
          controller =
            {
              config.Pcc_sender.controller with
              Controller.init_rate =
                2. *. float_of_int (Pcc_sim.Units.mss * 8) /. rtt;
              min_rate =
                (* The control floor scales with the path like the initial
                   rate: a quarter packet per RTT-pair. 50 kbps would be a
                   reasonable floor on a WAN but a death sentence on a
                   100 µs data-center path. *)
                Float.max
                  config.Pcc_sender.controller.Controller.min_rate
                  (float_of_int (Pcc_sim.Units.mss * 8) /. (4. *. rtt));
            };
        }
    in
    let t =
      Pcc_core.Pcc_sender.create engine ~config ?size ?on_complete ~rng ~out ()
    in
    Pcc_core.Pcc_sender.sender t
  | Tcp { variant; pacing; min_rto } ->
    Pcc_tcp.Registry.tcp engine ~pacing ?min_rto ?size ?on_complete ?rtt_hint
      ~name:variant ~out ()
  | Sabul -> Pcc_tcp.Sabul.create engine ~rng ?size ?on_complete ~out ()
  | Pcp -> Pcc_tcp.Pcp.create engine ?size ?on_complete ~out ()
