(** Single-bottleneck topology builder — the shape of every testbed in the
    paper's evaluation (Emulab links, dumbbells, the incast star).

    N flows share one bottleneck link. Each flow may add its own extra
    propagation delay (RTT-unfairness experiments), have a bounded size
    (FCT, incast) and start/stop on schedule. The forward direction
    carries data through the bottleneck's queue discipline; the reverse
    direction is an uncongested (optionally lossy) delay line, since none
    of the paper's experiments congest the ack path.

    This module is a thin wrapper over {!Topology} — a two-node dumbbell
    with one link named ["bottleneck"] — and shares its flow lifecycle,
    validation and dynamic knobs. Use {!topology} to reach the graph
    directly (e.g. for congested reverse paths, which this flat API
    cannot express). *)

type queue_kind = Topology.queue_kind =
  | Droptail  (** FIFO, byte capacity = [buffer]. *)
  | Droptail_pkts of int  (** FIFO limited to a packet count. *)
  | Codel  (** CoDel over a [buffer]-byte FIFO. *)
  | Red
  | Infinite  (** Unbounded FIFO — "bufferbloat". *)
  | Fq of queue_kind  (** DRR fair queuing with the given per-flow inner
                          discipline, each with [buffer] bytes. *)

type flow_def = {
  transport : Transport.spec;
  start_at : float;
  stop_at : float option;
  size : int option;  (** Transfer bytes; [None] = long-running. *)
  extra_rtt : float;  (** Added to the base RTT, split between paths. *)
  label : string;
}

val flow :
  ?start_at:float ->
  ?stop_at:float ->
  ?size:int ->
  ?extra_rtt:float ->
  ?label:string ->
  Transport.spec ->
  flow_def

type built_flow = {
  def : flow_def;
  sender : Pcc_net.Sender.t;
  receiver : Pcc_net.Receiver.t;
  mutable fct : float option;  (** Completion duration, for sized flows. *)
}

type t

val build :
  Pcc_sim.Engine.t ->
  rng:Pcc_sim.Rng.t ->
  bandwidth:float ->
  rtt:float ->
  buffer:int ->
  ?queue:queue_kind ->
  ?loss:float ->
  ?rev_loss:float ->
  ?jitter:float ->
  flows:flow_def list ->
  unit ->
  t
(** [build engine ~rng ~bandwidth ~rtt ~buffer ~flows ()] wires the
    topology and schedules every flow's start/stop. [loss] is the forward
    channel loss of the bottleneck, [rev_loss] the ack-path loss,
    [jitter] uniform extra forward delay (what breaks PCP).
    @raise Invalid_argument on invalid link or flow parameters — see
    {!Topology.build}, which performs all validation. *)

val flows : t -> built_flow array
val bottleneck : t -> Pcc_net.Link.t

val engine : t -> Pcc_sim.Engine.t
(** The engine the topology was built on. *)

val topology : t -> Topology.t
(** The underlying graph: link 0 is the bottleneck (node [0 -> 1]); flow
    indices match {!flows}. *)

val rev_loss : t -> float
(** Current ack-path Bernoulli loss probability. *)

val set_rev_loss : t -> float -> unit
(** Change the ack-path loss on every flow's reverse delay line (clamped
    to [\[0,1\]]) — the knob behind reverse-path fault injection. *)

val goodput_bytes : built_flow -> int
(** Distinct payload bytes the flow's receiver has accepted so far.
    Sample it before and after an [Engine.run ~until] window to compute
    average goodput. *)

val set_base_rtt : t -> float -> unit
(** Retarget the base RTT (bottleneck + reverse delays) — used by the
    rapidly-changing-network driver. *)

val inject : t -> flow:int -> (Pcc_net.Packet.t -> unit) -> unit
(** Register a delivery handler for an extra (cross-traffic) flow id at
    the far end of the bottleneck; unknown flows go to a sink. *)

val send_bottleneck : t -> Pcc_net.Packet.t -> unit
(** Push a packet into the bottleneck queue directly (cross traffic). *)
