open Pcc_net

(* Thin wrapper over Topology: a two-node dumbbell with one forward link
   named "bottleneck" and per-flow ideal (lossy-capable) reverse lines.
   All wiring, validation, FCT recording and dynamic knobs live in
   Topology; this module only translates the flat single-bottleneck
   vocabulary into graph terms and mirrors FCTs into its own records. *)

type queue_kind = Topology.queue_kind =
  | Droptail
  | Droptail_pkts of int
  | Codel
  | Red
  | Infinite
  | Fq of queue_kind

type flow_def = {
  transport : Transport.spec;
  start_at : float;
  stop_at : float option;
  size : int option;
  extra_rtt : float;
  label : string;
}

let flow ?(start_at = 0.) ?stop_at ?size ?(extra_rtt = 0.) ?label transport =
  let label =
    match label with Some l -> l | None -> Transport.name transport
  in
  { transport; start_at; stop_at; size; extra_rtt; label }

type built_flow = {
  def : flow_def;
  sender : Sender.t;
  receiver : Receiver.t;
  mutable fct : float option;
}

type t = {
  topo : Topology.t;
  built : built_flow array;
}

let build engine ~rng ~bandwidth ~rtt ~buffer ?(queue = Droptail) ?(loss = 0.)
    ?(rev_loss = 0.) ?(jitter = 0.) ~flows:defs () =
  let links =
    [
      Topology.link ~name:"bottleneck" ~delay:(rtt /. 2.) ~buffer ~queue ~loss
        ~jitter ~src:0 ~dst:1 ~bandwidth ();
    ]
  in
  let tflows =
    List.map
      (fun d ->
        Topology.flow ~start_at:d.start_at ?stop_at:d.stop_at ?size:d.size
          ~extra_rtt:d.extra_rtt ~label:d.label ~route:[ 0; 1 ] d.transport)
      defs
  in
  let topo = Topology.build engine ~rng ~links ~rev_loss ~flows:tflows () in
  let defs_a = Array.of_list defs in
  let built =
    Array.mapi
      (fun i (tb : Topology.built_flow) ->
        {
          def = defs_a.(i);
          sender = tb.Topology.sender;
          receiver = tb.Topology.receiver;
          fct = None;
        })
      (Topology.flows topo)
  in
  Array.iteri
    (fun i b -> Topology.on_complete topo ~flow:i (fun fct -> b.fct <- Some fct))
    built;
  { topo; built }

let flows t = t.built
let bottleneck t = Topology.link_at t.topo 0
let engine t = Topology.engine t.topo
let topology t = t.topo
let rev_loss t = Topology.rev_loss t.topo
let set_rev_loss t l = Topology.set_rev_loss t.topo l
let goodput_bytes b = Receiver.goodput_bytes b.receiver
let set_base_rtt t rtt = Topology.set_base_rtt t.topo rtt
let inject t ~flow deliver = Topology.deliver_at t.topo ~node:1 ~flow deliver
let send_bottleneck t pkt = Topology.send_link t.topo 0 pkt
