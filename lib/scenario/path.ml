open Pcc_sim
open Pcc_net

type queue_kind =
  | Droptail
  | Droptail_pkts of int
  | Codel
  | Red
  | Infinite
  | Fq of queue_kind

type flow_def = {
  transport : Transport.spec;
  start_at : float;
  stop_at : float option;
  size : int option;
  extra_rtt : float;
  label : string;
}

let flow ?(start_at = 0.) ?stop_at ?size ?(extra_rtt = 0.) ?label transport =
  let label =
    match label with Some l -> l | None -> Transport.name transport
  in
  { transport; start_at; stop_at; size; extra_rtt; label }

type built_flow = {
  def : flow_def;
  sender : Sender.t;
  receiver : Receiver.t;
  mutable fct : float option;
}

type t = {
  engine : Engine.t;
  link : Link.t;
  built : built_flow array;
  routes : (int, Packet.t -> unit) Hashtbl.t;
  rev_lines : Delay_line.t array;  (* per built flow *)
  mutable rev_loss : float;  (* current ack-path loss, mirrored on rev_lines *)
}

let rec make_queue kind ~capacity =
  match kind with
  | Droptail -> Queue_disc.droptail_bytes ~capacity ()
  | Droptail_pkts n -> Queue_disc.droptail_pkts ~capacity:n ()
  | Codel -> Queue_disc.codel ~capacity ()
  | Red -> Queue_disc.red ~capacity ()
  | Infinite -> Queue_disc.infinite ()
  | Fq inner ->
    Queue_disc.fq ~per_flow:(fun () -> make_queue inner ~capacity) ()

let build engine ~rng ~bandwidth ~rtt ~buffer ?(queue = Droptail) ?(loss = 0.)
    ?(rev_loss = 0.) ?(jitter = 0.) ~flows () =
  let q = make_queue queue ~capacity:buffer in
  let link =
    Link.create engine ~name:"bottleneck" ~loss ~jitter ~rng:(Rng.split rng)
      ~bandwidth ~delay:(rtt /. 2.) ~queue:q ()
  in
  let routes = Hashtbl.create 32 in
  Link.set_receiver link (fun pkt ->
      match Hashtbl.find_opt routes pkt.Packet.flow with
      | Some deliver -> deliver pkt
      | None -> ());
  let n = List.length flows in
  let built = Array.make n None in
  let rev_lines = Array.make n None in
  List.iteri
    (fun i def ->
      (* Reverse path: uncongested, possibly lossy, carries half the base
         RTT plus this flow's extra share. *)
      let rev =
        Delay_line.create engine ~loss:rev_loss ~rng:(Rng.split rng)
          ~delay:((rtt /. 2.) +. (def.extra_rtt /. 2.))
          ()
      in
      rev_lines.(i) <- Some rev;
      let receiver = Receiver.create engine ~ack_out:(Delay_line.send rev) in
      let fwd : (Packet.t -> unit) ref = ref (fun _ -> ()) in
      let bf = ref None in
      let on_complete at =
        match !bf with
        | Some b -> b.fct <- Some (at -. b.def.start_at)
        | None -> ()
      in
      let sender =
        Transport.build engine ~rng:(Rng.split rng) ?size:def.size
          ~on_complete
          ~rtt_hint:(rtt +. def.extra_rtt)
          def.transport
          ~out:(fun pkt -> !fwd pkt)
      in
      (* Forward path: optional per-flow extra delay, then the shared
         bottleneck. *)
      (if def.extra_rtt > 0. then begin
         let access =
           Delay_line.create engine ~delay:(def.extra_rtt /. 2.) ()
         in
         Delay_line.set_receiver access (Link.send link);
         fwd := Delay_line.send access
       end
       else fwd := Link.send link);
      Hashtbl.replace routes sender.Sender.flow (Receiver.on_packet receiver);
      Delay_line.set_receiver rev (fun pkt ->
          match pkt.Packet.kind with
          | Packet.Ack a -> sender.Sender.handle_ack a
          | Packet.Data _ -> ());
      let b = { def; sender; receiver; fct = None } in
      bf := Some b;
      built.(i) <- Some b;
      ignore
        (Engine.schedule engine ~at:def.start_at (fun () ->
             sender.Sender.start ()));
      match def.stop_at with
      | Some at ->
        ignore (Engine.schedule engine ~at (fun () -> sender.Sender.stop ()))
      | None -> ())
    flows;
  let strip = function Some x -> x | None -> assert false in
  {
    engine;
    link;
    built = Array.map strip built;
    routes;
    rev_lines = Array.map strip rev_lines;
    rev_loss;
  }

let flows t = t.built
let bottleneck t = t.link
let engine t = t.engine
let rev_loss t = t.rev_loss

let set_rev_loss t l =
  t.rev_loss <- Float.max 0. (Float.min 1. l);
  Array.iter (fun line -> Delay_line.set_loss line t.rev_loss) t.rev_lines

let goodput_bytes b = Receiver.goodput_bytes b.receiver

let set_base_rtt t rtt =
  Link.set_delay t.link (rtt /. 2.);
  Array.iteri
    (fun i line ->
      let extra = t.built.(i).def.extra_rtt in
      Delay_line.set_delay line ((rtt /. 2.) +. (extra /. 2.)))
    t.rev_lines

let inject t ~flow deliver = Hashtbl.replace t.routes flow deliver
let send_bottleneck t pkt = Link.send t.link pkt
