(** Runtime invariant checking for simulated topologies.

    A checker sweeps its target every [interval] of simulated time
    (piggybacking on the engine's own timers, so checks are deterministic
    and cost nothing when not attached) and asserts:

    - {b packet conservation} — every packet offered to a link is accounted
      for exactly once:
      [offered + duplicated = delivered + channel losses + queue drops +
       queued + in-flight];
    - {b queue occupancy} — buffered bytes never exceed the discipline's
      advertised {!Pcc_net.Queue_disc.t}[.capacity_bytes];
    - {b clock monotonicity} — simulated time never moves backwards;
    - {b throughput bound} — serialized (non-duplicate) delivered bytes
      never exceed the integral of link capacity over time (goodput ≤
      capacity × time follows, since goodput counts a subset of delivered
      bytes), with two packets of slack for serialization granularity;
    - {b goodput monotonicity} — per-flow receiver goodput never
      decreases (topology, path and multihop targets).

    A violation raises {!Violation} by default (inside an engine callback,
    so under the engine's [Raise] policy it surfaces as
    [Engine.Event_error] carrying the violation); pass [on_violation] to
    collect instead. Enabled in the test suite and behind the
    [--check-invariants] flag of the [pcc_sim] CLI. *)

type violation = { time : float; check : string; detail : string }

exception Violation of violation

type t

val attach_link :
  Pcc_sim.Engine.t ->
  ?interval:float ->
  ?on_violation:(violation -> unit) ->
  ?name:string ->
  Pcc_net.Link.t ->
  t
(** Watch a single link. [interval] defaults to 50 ms of simulated time.
    @raise Invalid_argument if [interval <= 0]. *)

val attach_topology :
  ?interval:float -> ?on_violation:(violation -> unit) -> Topology.t -> t
(** Watch every link of a graph topology (named per
    {!Topology.link_name}) plus per-flow goodput monotonicity. *)

val attach_path :
  ?interval:float -> ?on_violation:(violation -> unit) -> Path.t -> t
(** Watch a single-bottleneck topology: its bottleneck link plus per-flow
    goodput monotonicity. *)

val attach_multihop :
  ?interval:float -> ?on_violation:(violation -> unit) -> Multihop.t -> t
(** Watch every hop of a parking-lot topology. *)

val check_now : t -> unit
(** Run one sweep immediately (outside the periodic schedule) — raises
    {!Violation} directly on failure, which makes it convenient at the end
    of a test. *)

val stop : t -> unit
(** Cease checking; the pending timer fires once more as a no-op. *)

val checks_run : t -> int
(** Number of completed sweeps. *)
