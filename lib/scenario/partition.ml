(* Deterministic topology partitioner.

   Sharding is only sound when every cross-shard link carries enough
   propagation delay to serve as conservative lookahead, so the
   partitioner first collapses all edges faster than [min_cut_delay]
   with a union-find — those can never be cut — and then deals the
   resulting components onto shards with a greedy pass that is a pure
   function of the topology: components in (load desc, min-node asc)
   order, each placed on the shard with the strongest edge affinity to
   what is already there, subject to a load cap. No RNG, no hashing of
   unordered containers — the same topology always partitions the same
   way, which is half of the sharded determinism contract (the other
   half is the hub's canonical merge order). *)

type input = {
  nodes : int;
  edges : (int * int * float) list;  (* src, dst, delay; list order fixed *)
  routes : int list list;  (* every flow route (forward and reverse) *)
}

type result = {
  shard_of : int array;  (* node -> shard *)
  shards_used : int;
  cut_links : int;  (* edges whose endpoints landed on different shards *)
  loads : int array;  (* per-shard heuristic load *)
}

let find parent i =
  let rec root i = if parent.(i) = i then i else root parent.(i) in
  let r = root i in
  (* Path compression keeps repeated lookups cheap; purely an
     optimization, the roots are what matter. *)
  let rec compress i =
    if parent.(i) <> r then begin
      let next = parent.(i) in
      parent.(i) <- r;
      compress next
    end
  in
  compress i;
  r

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then
    (* Lower node id wins the root, so component identity is canonical
       regardless of union order. *)
    if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb

let partition ?(min_cut_delay = 0.0005) ~shards input =
  if shards < 1 then invalid_arg "Partition.partition: shards must be >= 1";
  if input.nodes < 1 then
    invalid_arg "Partition.partition: need at least one node";
  let n = input.nodes in
  let check_node what i =
    if i < 0 || i >= n then
      invalid_arg
        (Printf.sprintf "Partition.partition: %s references node %d outside \
                         the %d-node graph"
           what i n)
  in
  List.iter
    (fun (s, d, _) ->
      check_node "an edge" s;
      check_node "an edge" d)
    input.edges;
  List.iter (List.iter (check_node "a route")) input.routes;
  (* 1. Fuse everything joined by a low-latency edge. *)
  let parent = Array.init n Fun.id in
  List.iter
    (fun (s, d, delay) -> if delay < min_cut_delay then union parent s d)
    input.edges;
  (* 2. Heuristic node loads: a flow's endpoints dominate its event
     volume (sender timers, receiver acks), hops serialize packets,
     and a link's queue lives at its source. *)
  let load = Array.make n 0 in
  List.iter
    (fun route ->
      match route with
      | [] -> ()
      | [ only ] -> load.(only) <- load.(only) + 3
      | head :: rest ->
        load.(head) <- load.(head) + 3;
        let rec walk = function
          | [ tail ] -> load.(tail) <- load.(tail) + 2
          | mid :: rest ->
            load.(mid) <- load.(mid) + 1;
            walk rest
          | [] -> ()
        in
        walk rest)
    input.routes;
  List.iter (fun (s, _, _) -> load.(s) <- load.(s) + 1) input.edges;
  (* 3. Components, canonically identified by their minimum node id. *)
  let comp_load = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    let r = find parent i in
    let prev = Option.value ~default:0 (Hashtbl.find_opt comp_load r) in
    Hashtbl.replace comp_load r (prev + load.(i))
  done;
  let comps =
    Hashtbl.fold (fun root load acc -> (root, load) :: acc) comp_load []
    |> List.sort (fun (ra, la) (rb, lb) ->
           if la <> lb then compare lb la else compare ra rb)
  in
  (* 4. Inter-component affinity: flows crossing an edge pull its two
     components toward the same shard. *)
  let edge_uses = Hashtbl.create 16 in
  List.iter
    (fun route ->
      let rec walk = function
        | a :: (b :: _ as rest) ->
          let key = (a, b) in
          Hashtbl.replace edge_uses key
            (1 + Option.value ~default:0 (Hashtbl.find_opt edge_uses key));
          walk rest
        | _ -> ()
      in
      walk route)
    input.routes;
  let affinity = Hashtbl.create 16 in
  List.iter
    (fun (s, d, _) ->
      let rs = find parent s and rd = find parent d in
      if rs <> rd then begin
        let key = if rs < rd then (rs, rd) else (rd, rs) in
        let w =
          1 + Option.value ~default:0 (Hashtbl.find_opt edge_uses (s, d))
        in
        Hashtbl.replace affinity key
          (w + Option.value ~default:0 (Hashtbl.find_opt affinity key))
      end)
    input.edges;
  (* 5. Greedy placement under a slack-capped balance target. *)
  let total = Array.fold_left ( + ) 0 load in
  let cap =
    int_of_float (ceil (1.2 *. float_of_int total /. float_of_int shards))
  in
  let shard_load = Array.make shards 0 in
  let comp_shard = Hashtbl.create 16 in
  List.iter
    (fun (root, cload) ->
      let affinity_to shard =
        Hashtbl.fold
          (fun other s acc ->
            if s <> shard then acc
            else
              let key = if root < other then (root, other) else (other, root) in
              acc + Option.value ~default:0 (Hashtbl.find_opt affinity key))
          comp_shard 0
      in
      let best = ref (-1) and best_aff = ref (-1) and best_load = ref max_int in
      for s = 0 to shards - 1 do
        if shard_load.(s) + cload <= cap then begin
          let aff = affinity_to s in
          if
            aff > !best_aff
            || (aff = !best_aff && shard_load.(s) < !best_load)
          then begin
            best := s;
            best_aff := aff;
            best_load := shard_load.(s)
          end
        end
      done;
      let chosen =
        if !best >= 0 then !best
        else begin
          (* Nothing fits under the cap (one huge component): least
             loaded shard, lowest index on ties. *)
          let m = ref 0 in
          for s = 1 to shards - 1 do
            if shard_load.(s) < shard_load.(!m) then m := s
          done;
          !m
        end
      in
      shard_load.(chosen) <- shard_load.(chosen) + cload;
      Hashtbl.replace comp_shard root chosen)
    comps;
  let shard_of =
    Array.init n (fun i -> Hashtbl.find comp_shard (find parent i))
  in
  let cut_links =
    List.fold_left
      (fun acc (s, d, _) -> if shard_of.(s) <> shard_of.(d) then acc + 1 else acc)
      0 input.edges
  in
  let used = Array.make shards false in
  Array.iter (fun s -> used.(s) <- true) shard_of;
  let shards_used = Array.fold_left (fun a u -> if u then a + 1 else a) 0 used in
  { shard_of; shards_used; cut_links; loads = shard_load }
