(** Discrete-event simulation engine.

    An engine owns a simulated clock and an event queue. Components schedule
    closures at absolute or relative times; {!run} executes them in
    timestamp order, advancing the clock. All simulator state changes happen
    inside event callbacks, so a single engine is single-threaded and fully
    deterministic.

    The engine is hardened against two failure modes of event-driven code:

    - {b Raising callbacks.} An event callback that raises would otherwise
      unwind {!run} mid-step with no indication of {e which} event failed.
      Dispatch is exception-safe: the offending exception is wrapped in
      {!Event_error} together with the event's scheduled time, and the
      engine remains steppable (the clock has advanced, the event is
      consumed, the rest of the queue is intact). Under the {!Collect}
      policy errors are recorded in {!errors} and execution continues.
    - {b Livelock.} A zero-delay event that (transitively) reschedules
      itself at the current instant would spin {!run} forever without
      advancing the clock. A watchdog counts events executed without the
      clock moving and raises {!Livelock} once the stall budget is
      exceeded, turning a hang into a diagnosable error. [run ~max_events]
      additionally bounds the total number of events one call may execute.

    When a {!Task_guard} is installed in the running domain, dispatch
    additionally reports each event to it, so supervised tasks get
    wall-clock deadlines and cross-engine event ceilings delivered as
    exceptions from inside {!run} (see {!Task_guard}). *)

type t
(** A simulation engine. *)

type timer = Handle.t
(** A cancellable handle on a scheduled event, independent of the
    scheduler backend. *)

type scheduler =
  | Heap  (** Binary min-heap ({!Event_heap}): O(log n) operations. *)
  | Wheel
      (** Hierarchical timing wheel ({!Timing_wheel}): O(1) schedule and
          near-O(1) dispatch at millions of pending events. *)

(** Both backends dispatch in the identical exact
    [(time, sent, sequence)] order, where [sent] is the engine clock at
    the moment the event was pushed. For events posted by this engine
    the extra component is inert — posts happen in clock order, so ties
    break in scheduling order exactly as under a plain [(time, seq)]
    key — but it lets {!post_from} interleave a cross-engine boundary
    event at its true source-side posting instant (see {!Shard}). A
    seeded simulation produces byte-identical output under either
    backend. The
    per-engine choice resolves, in priority order: the [?scheduler]
    argument to {!create}, {!set_default_scheduler} (the CLI's
    [--scheduler]), the [PCC_SCHEDULER] environment variable
    ("heap"/"wheel"), and finally the built-in default (wheel). *)

val scheduler_of_string : string -> scheduler option
(** ["heap"] / ["wheel"] (already lowercased) to a scheduler. *)

val scheduler_name : scheduler -> string

val set_default_scheduler : scheduler -> unit
(** Override the process-wide default backend for subsequently created
    engines (thread-safe; worker domains observe it). *)

val default_scheduler : unit -> scheduler
(** The backend a parameterless {!create} would pick right now.
    @raise Invalid_argument if [PCC_SCHEDULER] is set to garbage and no
    override is installed. *)

val scheduler : t -> scheduler
(** The backend this engine runs on. *)

type error_policy =
  | Raise  (** Wrap the exception in {!Event_error} and re-raise (default). *)
  | Collect
      (** Record [(time, exn)] in {!errors} and keep executing events. *)

type livelock_kind =
  | Stall  (** The stall budget was exceeded at one simulated instant. *)
  | Budget  (** [run ~max_events] executed its full event budget. *)

exception Event_error of { time : float; exn : exn }
(** Raised (under the {!Raise} policy) when an event callback raises:
    [time] is the instant the event fired, [exn] the original exception. *)

exception Livelock of { time : float; events : int; kind : livelock_kind }
(** Raised by the watchdog: [events] callbacks ran without the clock
    leaving [time] ({!Stall}), or a [run ~max_events] budget ran out
    ({!Budget}). *)

val create :
  ?now:float ->
  ?stall_budget:int ->
  ?on_error:error_policy ->
  ?scheduler:scheduler ->
  unit ->
  t
(** [create ()] is a fresh engine with the clock at [now] (default 0).
    [stall_budget] (default 1_000_000) is the number of events that may
    execute at a single simulated instant before {!Livelock} is raised;
    legitimate bursts of simultaneous events are orders of magnitude
    smaller. [scheduler] picks the queue backend (default: see
    {!default_scheduler}). @raise Invalid_argument if
    [stall_budget <= 0]. *)

val now : t -> float
(** [now t] is the current simulated time in seconds. *)

val schedule : t -> at:float -> (unit -> unit) -> timer
(** [schedule t ~at f] runs [f] when the clock reaches [at].
    @raise Invalid_argument if [at] is in the past. *)

val schedule_in : t -> after:float -> (unit -> unit) -> timer
(** [schedule_in t ~after f] runs [f] [after] seconds from now. Negative
    delays are clamped to zero (the event runs after already-queued events
    at the current instant). *)

val post : t -> at:float -> (unit -> unit) -> unit
(** {!schedule} without a cancellation handle: the event cannot be
    cancelled, and the queue allocates nothing beyond its arena slot.
    Use for fire-and-forget events on hot paths (packet deliveries).
    Ordering is identical to {!schedule} at the same time. *)

val post_in : t -> after:float -> (unit -> unit) -> unit
(** {!schedule_in}, handle-free (see {!post}). *)

val post_from : t -> sent:float -> at:float -> (unit -> unit) -> unit
(** [post_from t ~sent ~at f] posts a handle-free event carrying an
    explicit send instant into the dispatch key: the event sorts
    exactly where a local [post ~at] issued when the clock read [sent]
    would have. This is how {!Shard}'s barrier loop injects boundary
    messages so that same-float-time ties against local events resolve
    identically at any shard count.
    @raise Invalid_argument if [at] is in the past or [sent > at]. *)

val cancel : timer -> unit
(** [cancel timer] prevents a pending event from firing. Cancelling an
    already-fired or already-cancelled timer is harmless. *)

val pending : t -> int
(** Number of live events still queued. Exact: cancelled timers stop
    counting immediately, even while still buried in the heap. *)

val next_time : t -> float option
(** Scheduled time of the earliest pending event, or [None] when the
    queue is empty. This is the engine's safe lower bound for
    conservative synchronization: no state change can occur before it.
    Never earlier than {!now}. *)

val add_owned : t -> (unit -> unit) -> unit
(** Register a domain-adoption thunk — typically [fun () -> Pool.adopt p]
    for a {!Pool} whose events this engine dispatches. {!Shard.run}
    replays the registry on whichever domain executes this engine's
    windows, so pooled events fire on their owner domain. *)

val adopt_owned : t -> unit
(** Run every thunk registered with {!add_owned} on the calling domain.
    Idempotent per domain; called by the sharded runner before the first
    window a domain executes and again by the coordinator after a
    parallel run, handing ownership back. *)

val add_reclaim : t -> (unit -> unit) -> unit
(** Register an abort-path reclamation thunk — typically
    [fun () -> Pool.clear p] for a {!Pool} whose release events this
    engine dispatches. When a sharded run aborts after a lane failure,
    in-flight pooled records' release events will never fire;
    {!Shard.run}'s abort path replays this registry (after
    {!adopt_owned}) so those records are reclaimed rather than leaked.
    Never run on the success path: across incremental [run] calls a pool
    legitimately holds in-flight records. *)

val reclaim_owned : t -> unit
(** Run every thunk registered with {!add_reclaim}. Called only by the
    sharded runner's abort path; the engine and its pools must be
    considered dead for simulation purposes afterwards. *)

val set_stall_budget : t -> int -> unit
(** Adjust the livelock watchdog's per-instant event budget.
    @raise Invalid_argument if the budget is not positive. *)

val set_on_error : t -> error_policy -> unit
(** Switch how raising callbacks are handled (default {!Raise}). *)

val errors : t -> (float * exn) list
(** Errors collected so far under the {!Collect} policy, oldest first. *)

val clear_errors : t -> unit

val executed : t -> int
(** Total events executed over the engine's lifetime. *)

val total_executed : unit -> int
(** Process-wide tally of events executed by {e all} engines across all
    domains, for benchmark reporting (events/second). Engines flush
    their contribution once per {!run}/{!step} call, so concurrent
    readers may lag an in-flight [run] by that call's events. *)

val count_external : int -> unit
(** Add [n] externally-executed work items to {!total_executed} —
    for engine-free computations (e.g. the fluid-model game dynamics)
    whose per-step updates would otherwise be invisible to benchmark
    event counts. Thread-safe; non-positive [n] is ignored. *)

val step : t -> bool
(** [step t] executes the next event, if any; returns [false] when the
    queue is empty.
    @raise Event_error under the {!Raise} policy if the callback raises.
    @raise Livelock if the stall budget is exceeded. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** [run t] executes events until the queue drains, or — if [until] is
    given — until the next event would fire strictly after [until], in
    which case the clock is left at [until]. If [max_events] is given the
    call executes at most that many events before raising
    {!Livelock}[ {kind = Budget; _}]. *)

val run_for : ?max_events:int -> t -> float -> unit
(** [run_for t d] is [run t ~until:(now t +. d)]. *)
