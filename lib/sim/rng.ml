type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let copy t = { state = t.state }

(* Explicit state capture for checkpointing: the full generator state
   is one int64, serialized field-by-field by Persist (never Marshal). *)
let state t = t.state
let of_state s = { state = s }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int and stays
     non-negative; rejection-free modulo is fine for our bounds. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let float t =
  (* 53 random bits into [0,1). *)
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v *. 0x1p-53

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = if p <= 0. then false else if p >= 1. then true else float t < p

let exponential t mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1. -. float t in
  -.mean *. log u

let gaussian t ~mean ~stddev =
  let u1 = 1. -. float t and u2 = float t in
  let r = sqrt (-2. *. log u1) in
  mean +. (stddev *. r *. cos (2. *. Float.pi *. u2))

let pareto t ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Rng.pareto: parameters must be positive";
  let u = 1. -. float t in
  scale /. (u ** (1. /. shape))

let log_uniform t lo hi =
  if lo <= 0. || hi < lo then invalid_arg "Rng.log_uniform: need 0 < lo <= hi";
  exp (uniform t (log lo) (log hi))

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
