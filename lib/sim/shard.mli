(** Conservative parallel discrete-event hub.

    A hub partitions one simulation across [N] engines ("shards"), each
    with its own queue backend, clock and pools. Cross-shard traffic
    flows through {!channel}s whose [floor] is the minimum propagation
    delay of the underlying link; the hub advances every shard in
    lockstep windows bounded by the global lookahead (the minimum floor
    over all channels), so no shard can ever observe an event out of
    causal order.

    {b Protocol} (one round): inject buffered boundary messages in the
    canonical [(arrival, sent, channel, sequence)] order; compute
    [tmin], the earliest pending event over all shards; fire due
    coordinator {!at}-controls; then run every engine to the fence
    [min (tmin + lookahead) (next control time)] (exclusive), or to
    [until] when the fence overshoots the horizon. A message sent at
    [s] arrives at [>= s + floor >= tmin + lookahead], strictly beyond
    the fence — injection at the next barrier is always causally safe.

    {b Determinism.} Windows advance over the same global time fence
    regardless of the shard count or execution mode, so a seeded run is
    byte-identical on one shard, N shards, {!Sequential} or
    {!Parallel} — the property the fuzz differential and the CI [cmp]
    job enforce. Boundary messages are injected with
    {!Engine.post_from}, which carries the source-side send instant
    into the destination's [(time, sent, seq)] dispatch key, so an
    injected event ties with local events exactly as a local post at
    that instant would. The residual caveat is a double coincidence —
    a boundary event and an unrelated local event agreeing in both
    arrival and send instant, float-bit exact; the differential
    polices it.

    Controls are not engine events: a hub with [N] shards executes
    exactly the same number of engine events as the same scenario on a
    1-shard hub, which keeps event-count digests comparable.

    {b Failure containment.} Any exception escaping a shard's window —
    a crashing event callback, a {!Task_guard} limit, injected {!chaos}
    — aborts the run cleanly: workers are stopped, buffered boundary
    messages dropped, pooled records reclaimed ({!Engine.reclaim_owned})
    and the hub poisoned; the caller sees a single structured
    {!Lane_failure} naming the shard and barrier round. Because a seeded
    run is byte-identical at any width, the caller can transparently
    rebuild and retry narrower — see {!Degrade}.

    See DESIGN.md §13 "Sharded execution" and §15 "Failure model and
    the degradation ladder". *)

type t
(** A hub: the shards, their channels, and pending controls. *)

exception Shard_error of string
(** Protocol violations: a {!send} below its channel's floor, a control
    livelock, re-entrant {!run}, or a {!run} on a poisoned hub. *)

exception Chaos_crash of { shard : int; round : int }
(** The injected failure raised by a [crash] chaos spec. *)

exception Lane_wedged of { shard : int; round : int; stale : float }
(** A lane stopped heartbeating for longer than the configured grace
    and was abandoned by the watchdog ([stale] is the observed
    heartbeat age), or a [wedge] chaos spec fired on a hub without an
    armed watchdog and degenerated to this synchronous failure
    ([stale = 0.]). *)

exception
  Lane_failure of {
    shard : int;  (** Shard whose window failed (lowest index wins). *)
    round : int;  (** Lifetime barrier round, as {!total_rounds} counts. *)
    wedged : bool;  (** [true] when the origin is {!Lane_wedged}. *)
    origin : exn;  (** The underlying exception. *)
    backtrace : string;  (** Its backtrace; [""] when unavailable. *)
  }
(** The single exception a failed sharded run raises after its clean
    abort. [Engine.Livelock {kind = Budget}] under a caller-supplied
    [max_events] is {e not} wrapped — a global event budget is the
    caller's own limit, not a shard fault. *)

(** {1 Chaos injection}

    Deterministic fault injection for exercising the containment and
    degradation paths end to end: a spec names a shard and the lifetime
    barrier round at which the fault fires. Chaos only fires on hubs
    with more than one shard, so the ladder's final 1-shard rung always
    runs clean. *)

type chaos = {
  crash : (int * int) option;
      (** Raise {!Chaos_crash} in (shard, round)'s window. *)
  wedge : (int * int) option;
      (** Stop (shard, round)'s lane heartbeating until the watchdog
          abandons it (synchronous {!Lane_wedged} when no watchdog is
          armed). *)
}

val no_chaos : chaos

val chaos_of_string : string -> chaos
(** Parse a CLI spec: comma-separated [crash=<shard>:<round>] and/or
    [wedge=<shard>:<round>]. @raise Invalid_argument on malformed
    specs. *)

val chaos_of_env : unit -> chaos
(** Read [PCC_TEST_SHARD_CRASH] / [PCC_TEST_SHARD_WEDGE] (each a
    [<shard>:<round>] pair; unset or empty means none).
    @raise Invalid_argument on malformed values. *)

val set_default_chaos : chaos -> unit
(** Process-wide default applied to hubs created afterwards, mirroring
    {!Engine.set_default_scheduler}: an explicit CLI override beats the
    environment. *)

val default_chaos : unit -> chaos
(** The default a fresh hub starts with: {!set_default_chaos}'s value
    when set, else {!chaos_of_env}. *)

val create :
  ?scheduler:Engine.scheduler ->
  ?on_error:Engine.error_policy ->
  shards:int ->
  unit ->
  t
(** [create ~shards ()] builds a hub of [shards] fresh engines (all on
    the same queue backend), with {!default_chaos} applied.
    @raise Invalid_argument if [shards < 1]. *)

val configure :
  ?chaos:chaos ->
  ?lane_deadline:float ->
  ?lane_max_events:int ->
  ?wedge_grace:float ->
  ?sleep:(float -> unit) ->
  t ->
  unit
(** Per-hub resilience settings; only the supplied fields change.
    [lane_deadline] (wall-clock seconds) and [lane_max_events] install
    a {!Task_guard} per execution lane — worker domains always, the
    calling domain only when it has no guard already (a supervisor's
    guard keeps authority). The per-lane event ceiling counts the
    events that lane executes, across all its shards. [wedge_grace]
    and [sleep] arm the out-of-band watchdog for parallel runs: a lane
    whose heartbeat (stamped per barrier window and every few hundred
    events) is staler than [wedge_grace] seconds is abandoned and the
    run aborts with a wedged {!Lane_failure}. [sleep] is injected
    (e.g. [Unix.sleepf]) because this library has no unix dependency;
    the watchdog also needs {!run}'s [clock]. [wedge_grace] must
    comfortably exceed a worst-case 512-event batch — any value above
    milliseconds is safe.
    @raise Invalid_argument on non-positive limits. *)

val poisoned : t -> bool
(** Whether a lane failure aborted this hub. A poisoned hub's shards
    stopped at different windows and cannot be resumed coherently:
    {!run} raises {!Shard_error}; rebuild the simulation instead (the
    degradation ladder does). *)

val shards : t -> int
val engines : t -> Engine.t array

val engine : t -> int -> Engine.t
(** The engine owning shard [i].
    @raise Invalid_argument if [i] is out of range. *)

type 'a channel
(** A unidirectional bounded-lookahead message channel between two
    shards. *)

val channel :
  t ->
  src:int ->
  dst:int ->
  floor:float ->
  inject:(arrival:float -> sent:float -> 'a -> unit) ->
  'a channel
(** [channel t ~src ~dst ~floor ~inject] registers a boundary channel.
    [floor] must be positive: it is this channel's contribution to the
    global lookahead, and the {!send}-side contract is
    [arrival >= now + floor]. [inject] is called on the coordinator at
    a barrier, once per message in canonical order; it must schedule
    the payload into the destination shard's engine at exactly
    [arrival] with send instant [sent] — use {!Engine.post_from}, which
    threads [sent] into the dispatch key so the event sorts as if
    posted locally at the sender's clock (checkout of a pooled event on
    the coordinator is the sanctioned {!Pool} hand-off).
    @raise Invalid_argument on a non-positive floor, out-of-range or
    equal shard indices. *)

val send : 'a channel -> now:float -> arrival:float -> 'a -> unit
(** [send ch ~now ~arrival v] buffers [v] for injection at the next
    barrier. [now] is the sender's current clock, [arrival] the exact
    delivery time computed with the same float expression the
    unsharded path uses ([now +. (delay +. jitter)]) — bit-identical
    arrivals are what make sharded runs byte-identical.
    @raise Shard_error if [arrival < now +. floor]. *)

val channel_src : 'a channel -> int
val channel_dst : 'a channel -> int

val at : t -> time:float -> (unit -> unit) -> unit
(** [at t ~time f] registers a coordinator control: [f] runs between
    windows, after every engine event strictly before [time] and before
    any event at or after it (ties with events at exactly [time]
    resolve control-first, at every shard count). Controls at the same
    time fire in registration order and may register further controls —
    recurring probes re-arm themselves. A control never counts as an
    engine event. Controls later than a {!run}'s [until] stay pending
    for a subsequent run. *)

val lookahead : t -> float
(** The global lookahead: minimum channel floor, [infinity] when no
    channel is registered (windows then bound only by controls and
    [until], i.e. a 1-shard hub degenerates to plain {!Engine.run}). *)

type mode =
  | Sequential
      (** All windows execute on the calling domain, shard 0 first.
          Deterministic, no domain overhead — the default, and what
          fuzzing uses. *)
  | Parallel of int
      (** Windows fan out over up to that many domains (clamped to the
          shard count; values [<= 1] degrade to sequential). Shards are
          dealt round-robin onto lanes; pools are re-owned by their
          lane's domain for the duration of the run and handed back to
          the caller afterwards. Byte-identical to {!Sequential}. A
          traced run (an installed {!Pcc_trace.Collector}) or a
          [max_events] budget forces sequential execution — one trace
          ring, one deterministic budget accounting. *)

val run :
  ?mode:mode ->
  ?max_events:int ->
  ?clock:(unit -> float) ->
  t ->
  until:float ->
  unit
(** Advance every shard to [until] (clocks end exactly there, like
    {!Engine.run}[ ~until]). [max_events] bounds the total events
    across all shards, raising {!Engine.Livelock}[ {kind = Budget}]
    like the monolithic engine. [clock] (e.g. a monotonic wall clock)
    enables the busy/wall fields of {!last_stats}; without it they read
    zero — and, together with {!configure}'s [sleep] and [wedge_grace],
    arms the watchdog on parallel runs.

    A failure inside any shard's window aborts the run cleanly and
    raises {!Lane_failure}; when several shards fail in one window the
    lowest shard index wins — the same failure a sequential run would
    have hit first. Only [Engine.Livelock {kind = Budget}] from the
    caller's own [max_events] budget propagates unwrapped.

    When a {!Task_guard} is active on the calling domain it is charged
    one event and heartbeat-stamped once per round; in parallel mode
    worker-domain events count toward the {e lane} guards installed
    per {!configure}, not the caller's guard.
    @raise Shard_error on re-entrant or post-abort runs. *)

type stats = {
  rounds : int;  (** Barrier rounds executed. *)
  messages : int;  (** Boundary messages injected. *)
  controls_fired : int;
  per_shard_events : int array;  (** Events executed by this run. *)
  per_shard_busy_s : float array;
      (** Wall time inside each shard's windows (zero without [clock]). *)
  wall_s : float;
  domains_used : int;
}

val last_stats : t -> stats option
(** Stats of the most recent {!run}, for bench reporting: barrier
    overhead is [1 - sum busy / (domains * wall)]. *)

val total_rounds : t -> int
(** Barrier rounds executed across every {!run} on this hub — unlike
    {!last_stats}, not reset when a caller drives the simulation in
    interval slices. *)

val total_messages : t -> int
(** Boundary messages injected across every {!run} on this hub. *)

val run_stats :
  ?mode:mode ->
  ?max_events:int ->
  ?clock:(unit -> float) ->
  t ->
  until:float ->
  stats
(** {!run}, returning the stats. *)

val executed : t -> int
(** Total events executed across all shards (lifetime, like
    {!Engine.executed} summed). *)

val pending : t -> int
(** Live queued events across all shards. Boundary messages buffered at
    a mid-run barrier are not included; after {!run} returns none are
    buffered below the horizon. *)
