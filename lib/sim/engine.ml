type error_policy = Raise | Collect

type livelock_kind = Stall | Budget

exception Event_error of { time : float; exn : exn }

exception Livelock of { time : float; events : int; kind : livelock_kind }

let () =
  Printexc.register_printer (function
    | Event_error { time; exn } ->
      Some
        (Printf.sprintf "Engine.Event_error: event scheduled at t=%.9f raised %s"
           time (Printexc.to_string exn))
    | Livelock { time; events; kind = Stall } ->
      Some
        (Printf.sprintf
           "Engine.Livelock: %d events executed at simulated time t=%.9f \
            without the clock advancing (zero-delay event loop?)"
           events time)
    | Livelock { time; events; kind = Budget } ->
      Some
        (Printf.sprintf
           "Engine.Livelock: event budget exhausted after %d events with the \
            clock at t=%.9f"
           events time)
    | _ -> None)

type scheduler = Heap | Wheel

(* One engine runs on exactly one queue backend. Both issue the shared
   {!Handle} type and dispatch in the identical exact (time, seq)
   order, so the choice is invisible to seeded simulations (asserted by
   the differential tests and the fuzz oracle). *)
type queue =
  | Q_heap of (unit -> unit) Event_heap.t
  | Q_wheel of (unit -> unit) Timing_wheel.t

type t = {
  mutable clock : float;
  q : queue;
  mutable on_error : error_policy;
  mutable errors : (float * exn) list;  (* newest first *)
  mutable stall_budget : int;
  mutable stall_count : int;
  mutable executed : int;
  mutable owned : (unit -> unit) list;
      (* Domain-adoption thunks (typically [Pool.adopt] closures) run by
         [adopt_owned] when a sharded runner moves this engine's window
         execution onto a worker domain. *)
  mutable reclaim : (unit -> unit) list;
      (* Abort-path reclamation thunks (typically [Pool.clear] closures)
         run by [reclaim_owned] when a sharded runner aborts a window
         after a lane failure: checked-out pooled records whose release
         events will never fire must be reclaimed, not leaked. *)
}

type timer = Handle.t

let scheduler_of_string = function
  | "heap" -> Some Heap
  | "wheel" -> Some Wheel
  | _ -> None

let scheduler_name = function Heap -> "heap" | Wheel -> "wheel"

(* Process-wide default backend: [Engine.create ()] call sites are
   scattered through experiments and scenarios, so selection flows
   through this rather than a threaded parameter. Resolution order:
   explicit [set_default_scheduler] (CLI) beats PCC_SCHEDULER in the
   environment beats the built-in default. *)
let builtin_default = Wheel

let env_default () =
  match Sys.getenv_opt "PCC_SCHEDULER" with
  | None -> builtin_default
  | Some s -> (
    match scheduler_of_string (String.lowercase_ascii s) with
    | Some sch -> sch
    | None ->
      invalid_arg
        (Printf.sprintf
           "PCC_SCHEDULER=%s: expected \"heap\" or \"wheel\"" s))

(* 0 = unset, 1 = Heap, 2 = Wheel; an Atomic because worker domains
   read it while the main domain may be applying a CLI override. *)
let default_cell = Atomic.make 0

let set_default_scheduler sch =
  Atomic.set default_cell (match sch with Heap -> 1 | Wheel -> 2)

let default_scheduler () =
  match Atomic.get default_cell with
  | 1 -> Heap
  | 2 -> Wheel
  | _ -> env_default ()

let default_stall_budget = 1_000_000

let create ?(now = 0.) ?(stall_budget = default_stall_budget)
    ?(on_error = Raise) ?scheduler () =
  if stall_budget <= 0 then
    invalid_arg "Engine.create: stall_budget must be positive";
  let scheduler =
    match scheduler with Some s -> s | None -> default_scheduler ()
  in
  {
    clock = now;
    q =
      (match scheduler with
      | Heap -> Q_heap (Event_heap.create ())
      | Wheel -> Q_wheel (Timing_wheel.create ~dummy:ignore ()));
    on_error;
    errors = [];
    stall_budget;
    stall_count = 0;
    executed = 0;
    owned = [];
    reclaim = [];
  }

let scheduler t = match t.q with Q_heap _ -> Heap | Q_wheel _ -> Wheel

let now t = t.clock

(* Every local push carries the posting clock as the [sent] tie-break
   component: posts happen in clock order, so local dispatch stays the
   classic (time, seq) while [post_from] can interleave a cross-engine
   event at its true source-side posting instant. *)
let q_push t ~time f =
  match t.q with
  | Q_heap q -> Event_heap.push q ~time ~sent:t.clock f
  | Q_wheel q -> Timing_wheel.push q ~time ~sent:t.clock f

let q_pop t =
  match t.q with
  | Q_heap q -> Event_heap.pop q
  | Q_wheel q -> Timing_wheel.pop q

let q_pop_cb t k =
  match t.q with
  | Q_heap q -> Event_heap.pop_cb q k
  | Q_wheel q -> Timing_wheel.pop_cb q k

let q_pop_le_cb t ~max_time k =
  match t.q with
  | Q_heap q -> Event_heap.pop_le_cb q ~max_time k
  | Q_wheel q -> Timing_wheel.pop_le_cb q ~max_time k

let q_peek_time t =
  match t.q with
  | Q_heap q -> Event_heap.peek_time q
  | Q_wheel q -> Timing_wheel.peek_time q

let q_size t =
  match t.q with
  | Q_heap q -> Event_heap.size q
  | Q_wheel q -> Timing_wheel.size q

let schedule t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %.9f is before now %.9f" at t.clock);
  q_push t ~time:at f

let schedule_in t ~after f =
  let after = if after < 0. then 0. else after in
  q_push t ~time:(t.clock +. after) f

let q_push_unit t ~time f =
  match t.q with
  | Q_heap q -> Event_heap.push_unit q ~time ~sent:t.clock f
  | Q_wheel q -> Timing_wheel.push_unit q ~time ~sent:t.clock f

let post t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.post: time %.9f is before now %.9f" at t.clock);
  q_push_unit t ~time:at f

let post_in t ~after f =
  let after = if after < 0. then 0. else after in
  q_push_unit t ~time:(t.clock +. after) f

let post_from t ~sent ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.post_from: time %.9f is before now %.9f" at
         t.clock);
  if sent > at then
    invalid_arg
      (Printf.sprintf
         "Engine.post_from: sent instant %.9f lies after the event time %.9f"
         sent at);
  match t.q with
  | Q_heap q -> Event_heap.push_unit q ~time:at ~sent f
  | Q_wheel q -> Timing_wheel.push_unit q ~time:at ~sent f

let cancel = Handle.cancel

let pending t = q_size t
let next_time t = q_peek_time t
let add_owned t f = t.owned <- f :: t.owned
let adopt_owned t = List.iter (fun f -> f ()) t.owned
let add_reclaim t f = t.reclaim <- f :: t.reclaim
let reclaim_owned t = List.iter (fun f -> f ()) t.reclaim

let set_stall_budget t n =
  if n <= 0 then invalid_arg "Engine.set_stall_budget: must be positive";
  t.stall_budget <- n

let set_on_error t p = t.on_error <- p
let errors t = List.rev t.errors
let clear_errors t = t.errors <- []
let executed t = t.executed

(* A global (cross-engine, cross-domain) tally of executed events, for
   benchmark reporting. Engines batch their contribution once per [run]
   call rather than per event, so the atomic is off the hot path. *)
let global_executed = Atomic.make 0

let total_executed () = Atomic.get global_executed

let count_external n =
  if n > 0 then ignore (Atomic.fetch_and_add global_executed n)

(* Dispatch one already-popped event: advance the clock, police the
   stall budget, run the callback under the error policy. *)
let execute t time f =
  if time > t.clock then begin
    t.clock <- time;
    t.stall_count <- 0
  end
  else begin
    (* The heap never yields times before the clock, so this event fires
       at the current instant: charge it against the stall budget. *)
    t.stall_count <- t.stall_count + 1;
    if t.stall_count > t.stall_budget then
      raise (Livelock { time; events = t.stall_count; kind = Stall })
  end;
  t.executed <- t.executed + 1;
  (* Supervision guard (deadline / event ceiling / heartbeat). Placed
     before the callback so a limit raises out of [run] naked rather
     than wrapped in [Event_error]; like the trace test below, inactive
     guards cost one atomic load and a branch. *)
  if Task_guard.active () then Task_guard.on_event ();
  (* Dispatch span for the trace layer. The [enabled] test is the only
     cost an untraced run pays on this hottest of paths, and the record
     itself is mask-gated (engine category, off by default). *)
  if Pcc_trace.Collector.enabled () then
    Pcc_trace.Collector.emit Pcc_trace.Event.Dispatch ~time ~id:0
      ~a:(float_of_int (q_size t))
      ~b:0. ~i:t.executed;
  try f () with
  | Livelock _ as watchdog -> raise watchdog
  | exn -> (
    match t.on_error with
    | Raise -> raise (Event_error { time; exn })
    | Collect -> t.errors <- (time, exn) :: t.errors)

let step t =
  match q_pop t with
  | None -> false
  | Some (time, f) ->
    let before = t.executed in
    Fun.protect
      ~finally:(fun () ->
        ignore (Atomic.fetch_and_add global_executed (t.executed - before)))
      (fun () -> execute t time f);
    true

let run ?until ?max_events t =
  let before = t.executed in
  Fun.protect
    ~finally:(fun () ->
      ignore (Atomic.fetch_and_add global_executed (t.executed - before)))
  @@ fun () ->
  match max_events with
  | Some budget ->
    (* Slow path: the budget check must fire only when another runnable
       event exists, so peek before popping. *)
    let ran = ref 0 in
    let spend () =
      if !ran >= budget then
        raise (Livelock { time = t.clock; events = !ran; kind = Budget });
      incr ran
    in
    let continue = ref true in
    while !continue do
      match q_peek_time t with
      | Some time when (match until with None -> true | Some l -> time <= l)
        ->
        spend ();
        (match q_pop t with
        | Some (time, f) -> execute t time f
        | None -> assert false)
      | Some _ | None ->
        (match until with
        | Some limit when limit > t.clock -> t.clock <- limit
        | _ -> ());
        continue := false
    done
  | None -> (
    (* Fast paths: continuation-style pops — one queue descent per event
       (no peek-then-pop) and no option/tuple allocation per event. *)
    let k time f = execute t time f in
    match until with
    | None -> while q_pop_cb t k do () done
    | Some limit ->
      while q_pop_le_cb t ~max_time:limit k do () done;
      if limit > t.clock then t.clock <- limit)

let run_for ?max_events t d = run ?max_events ~until:(t.clock +. d) t
