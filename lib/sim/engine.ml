type error_policy = Raise | Collect

type livelock_kind = Stall | Budget

exception Event_error of { time : float; exn : exn }

exception Livelock of { time : float; events : int; kind : livelock_kind }

let () =
  Printexc.register_printer (function
    | Event_error { time; exn } ->
      Some
        (Printf.sprintf "Engine.Event_error: event scheduled at t=%.9f raised %s"
           time (Printexc.to_string exn))
    | Livelock { time; events; kind = Stall } ->
      Some
        (Printf.sprintf
           "Engine.Livelock: %d events executed at simulated time t=%.9f \
            without the clock advancing (zero-delay event loop?)"
           events time)
    | Livelock { time; events; kind = Budget } ->
      Some
        (Printf.sprintf
           "Engine.Livelock: event budget exhausted after %d events with the \
            clock at t=%.9f"
           events time)
    | _ -> None)

type t = {
  mutable clock : float;
  q : (unit -> unit) Event_heap.t;
  mutable on_error : error_policy;
  mutable errors : (float * exn) list;  (* newest first *)
  mutable stall_budget : int;
  mutable stall_count : int;
  mutable executed : int;
}

type timer = Event_heap.handle

let default_stall_budget = 1_000_000

let create ?(now = 0.) ?(stall_budget = default_stall_budget)
    ?(on_error = Raise) () =
  if stall_budget <= 0 then
    invalid_arg "Engine.create: stall_budget must be positive";
  {
    clock = now;
    q = Event_heap.create ();
    on_error;
    errors = [];
    stall_budget;
    stall_count = 0;
    executed = 0;
  }

let now t = t.clock

let schedule t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %.9f is before now %.9f" at t.clock);
  Event_heap.push t.q ~time:at f

let schedule_in t ~after f =
  let after = if after < 0. then 0. else after in
  Event_heap.push t.q ~time:(t.clock +. after) f

let cancel = Event_heap.cancel

let pending t = Event_heap.size t.q

let set_stall_budget t n =
  if n <= 0 then invalid_arg "Engine.set_stall_budget: must be positive";
  t.stall_budget <- n

let set_on_error t p = t.on_error <- p
let errors t = List.rev t.errors
let clear_errors t = t.errors <- []
let executed t = t.executed

(* A global (cross-engine, cross-domain) tally of executed events, for
   benchmark reporting. Engines batch their contribution once per [run]
   call rather than per event, so the atomic is off the hot path. *)
let global_executed = Atomic.make 0

let total_executed () = Atomic.get global_executed

let count_external n =
  if n > 0 then ignore (Atomic.fetch_and_add global_executed n)

(* Dispatch one already-popped event: advance the clock, police the
   stall budget, run the callback under the error policy. *)
let execute t time f =
  if time > t.clock then begin
    t.clock <- time;
    t.stall_count <- 0
  end
  else begin
    (* The heap never yields times before the clock, so this event fires
       at the current instant: charge it against the stall budget. *)
    t.stall_count <- t.stall_count + 1;
    if t.stall_count > t.stall_budget then
      raise (Livelock { time; events = t.stall_count; kind = Stall })
  end;
  t.executed <- t.executed + 1;
  (* Supervision guard (deadline / event ceiling / heartbeat). Placed
     before the callback so a limit raises out of [run] naked rather
     than wrapped in [Event_error]; like the trace test below, inactive
     guards cost one atomic load and a branch. *)
  if Task_guard.active () then Task_guard.on_event ();
  (* Dispatch span for the trace layer. The [enabled] test is the only
     cost an untraced run pays on this hottest of paths, and the record
     itself is mask-gated (engine category, off by default). *)
  if Pcc_trace.Collector.enabled () then
    Pcc_trace.Collector.emit Pcc_trace.Event.Dispatch ~time ~id:0
      ~a:(float_of_int (Event_heap.size t.q))
      ~b:0. ~i:t.executed;
  try f () with
  | Livelock _ as watchdog -> raise watchdog
  | exn -> (
    match t.on_error with
    | Raise -> raise (Event_error { time; exn })
    | Collect -> t.errors <- (time, exn) :: t.errors)

let step t =
  match Event_heap.pop t.q with
  | None -> false
  | Some (time, f) ->
    let before = t.executed in
    Fun.protect
      ~finally:(fun () ->
        ignore (Atomic.fetch_and_add global_executed (t.executed - before)))
      (fun () -> execute t time f);
    true

let run ?until ?max_events t =
  let before = t.executed in
  Fun.protect
    ~finally:(fun () ->
      ignore (Atomic.fetch_and_add global_executed (t.executed - before)))
  @@ fun () ->
  match max_events with
  | Some budget ->
    (* Slow path: the budget check must fire only when another runnable
       event exists, so peek before popping. *)
    let ran = ref 0 in
    let spend () =
      if !ran >= budget then
        raise (Livelock { time = t.clock; events = !ran; kind = Budget });
      incr ran
    in
    let continue = ref true in
    while !continue do
      match Event_heap.peek_time t.q with
      | Some time when (match until with None -> true | Some l -> time <= l)
        ->
        spend ();
        (match Event_heap.pop t.q with
        | Some (time, f) -> execute t time f
        | None -> assert false)
      | Some _ | None ->
        (match until with
        | Some limit when limit > t.clock -> t.clock <- limit
        | _ -> ());
        continue := false
    done
  | None -> (
    match until with
    | None ->
      (* Fast path: pop directly — one heap descent per event instead of
         a peek followed by a pop. *)
      let continue = ref true in
      while !continue do
        match Event_heap.pop t.q with
        | Some (time, f) -> execute t time f
        | None -> continue := false
      done
    | Some limit ->
      let continue = ref true in
      while !continue do
        match Event_heap.pop_le t.q ~max_time:limit with
        | Some (time, f) -> execute t time f
        | None ->
          if limit > t.clock then t.clock <- limit;
          continue := false
      done)

let run_for ?max_events t d = run ?max_events ~until:(t.clock +. d) t
