(* Conservative parallel discrete-event hub.

   A hub owns N engines ("shards"), each with its own queue backend,
   clock, pools and — at the scenario layer — RNG stream. Cross-shard
   traffic flows through bounded channels whose [floor] is the link's
   minimum propagation delay; the global lookahead L (minimum floor
   over all channels) bounds how far any shard may run ahead of the
   others without risking a causality violation.

   The synchronization protocol is a barrier-window loop (YAWNS-style
   null messages degenerate to a global reduction because every shard
   synchronizes every round):

     round:
       1. inject buffered boundary messages, in canonical order
       2. tmin  := min over engines of next pending event time
       3. fire coordinator controls with time <= min(tmin, until)
       4. cap   := min(tmin + L, earliest pending control time)
          target:= if cap > until then until
                   else max(Float.pred cap, tmin)
       5. every engine runs [Engine.run ~until:target]

   Safety: every event executed in a window fires at some s in
   [tmin, target]; a boundary message it sends has
   arrival >= s + floor >= tmin + L >= cap > target, so the message's
   arrival lies strictly beyond every clock at the next barrier — it is
   injected there, before any event that could observe it. (When the
   ulp guard pins target to tmin the bound tightens to
   arrival >= tmin + L > tmin = target.)

   Determinism: shard windows advance in lockstep over the same global
   time fence regardless of how many shards (or domains) execute them,
   boundary messages are merged in the canonical
   (arrival, sent, channel, sequence) order, and controls fire at a
   fixed point of the event stream (after all events before their time,
   before any event at or after it). A seeded hub run is therefore
   byte-identical at any shard count and under Sequential or Parallel
   execution. Boundary messages are injected with {!Engine.post_from},
   carrying the source-side send instant into the destination's
   (time, sent, seq) dispatch key, so an injected event sorts exactly
   where a local post at that instant would have — same-float-time ties
   between a boundary delivery and a local event (which are structural
   in ack-clocked equilibrium, not measure-zero) resolve identically at
   any shard count. The residual caveat is the double coincidence of a
   boundary event and an unrelated local event agreeing in BOTH arrival
   and send instant, float-bit exact; the fuzz differential polices
   it.

   Failure containment (DESIGN.md §15): any exception escaping a
   shard's window — including injected chaos and a watchdog-abandoned
   wedge — aborts the run cleanly (channels drained, pools reclaimed,
   hub poisoned) and surfaces as one structured {!Lane_failure} naming
   the shard and barrier round. The byte-identical contract is what
   makes the degradation ladder in {!Degrade} sound: a retry at any
   narrower width reproduces the same output. *)

type message = {
  m_arrival : float;
  m_sent : float;
  m_chan : int;
  m_seq : int;
  m_fire : unit -> unit;
}

type control = { c_time : float; c_ord : int; c_fn : unit -> unit }

type chan_state = {
  cs_id : int;
  cs_floor : float;
  mutable cs_buf : message list;  (* newest first; drained at barriers *)
}

type stats = {
  rounds : int;
  messages : int;
  controls_fired : int;
  per_shard_events : int array;
  per_shard_busy_s : float array;
  wall_s : float;
  domains_used : int;
}

(* ----- chaos injection ----- *)

type chaos = {
  crash : (int * int) option;  (* (shard, lifetime barrier round) *)
  wedge : (int * int) option;
}

let no_chaos = { crash = None; wedge = None }

let chaos_pair ~what spec =
  let fail () =
    invalid_arg
      (Printf.sprintf
         "%s: %S does not parse as <shard>:<round> (shard >= 0, round >= 1)"
         what spec)
  in
  match String.index_opt spec ':' with
  | None -> fail ()
  | Some i -> (
    let s = String.sub spec 0 i
    and r = String.sub spec (i + 1) (String.length spec - i - 1) in
    match (int_of_string_opt s, int_of_string_opt r) with
    | Some s, Some r when s >= 0 && r >= 1 -> (s, r)
    | _ -> fail ())

let chaos_of_env () =
  let get name =
    match Sys.getenv_opt name with
    | None | Some "" -> None
    | Some spec -> Some (chaos_pair ~what:name spec)
  in
  { crash = get "PCC_TEST_SHARD_CRASH"; wedge = get "PCC_TEST_SHARD_WEDGE" }

let chaos_of_string spec =
  let part acc part =
    let part = String.trim part in
    match String.index_opt part '=' with
    | Some i -> (
      let key = String.sub part 0 i
      and v = String.sub part (i + 1) (String.length part - i - 1) in
      match key with
      | "crash" ->
        { acc with crash = Some (chaos_pair ~what:"--shard-chaos crash" v) }
      | "wedge" ->
        { acc with wedge = Some (chaos_pair ~what:"--shard-chaos wedge" v) }
      | _ ->
        invalid_arg
          (Printf.sprintf
             "--shard-chaos: unknown key %S (want crash=<shard>:<round> or \
              wedge=<shard>:<round>)"
             key))
    | None ->
      invalid_arg
        (Printf.sprintf
           "--shard-chaos: %S is not key=<shard>:<round> (keys: crash, wedge)"
           part)
  in
  List.fold_left part no_chaos (String.split_on_char ',' spec)

(* Process-wide default, mirroring [Engine.set_default_scheduler]:
   hubs are created deep inside experiments and scenario builders, so
   chaos flows through this rather than a threaded parameter.
   Resolution: explicit [set_default_chaos] (CLI) beats PCC_TEST_SHARD_*
   in the environment beats none. *)
let chaos_override = ref None
let set_default_chaos c = chaos_override := Some c

let default_chaos () =
  match !chaos_override with Some c -> c | None -> chaos_of_env ()

type t = {
  engines : Engine.t array;
  mutable chans : chan_state list;  (* registration order, newest first *)
  mutable controls : control list;  (* unsorted *)
  mutable ctrl_ord : int;
  mutable fired_controls : int;
  mutable injected : int;
  mutable all_rounds : int;  (* lifetime, across runs *)
  mutable all_messages : int;
  mutable last_stats : stats option;
  mutable running : bool;
  mutable poisoned : bool;  (* a lane failure aborted this hub *)
  mutable chaos : chaos;
  mutable lane_deadline : float option;
  mutable lane_max_events : int option;
  mutable wedge_grace : float option;
  mutable sleep : (float -> unit) option;
}

type 'a channel = {
  ch_state : chan_state;
  ch_src : int;
  ch_dst : int;
  ch_inject : arrival:float -> sent:float -> 'a -> unit;
  mutable ch_seq : int;
}

exception Shard_error of string
exception Chaos_crash of { shard : int; round : int }
exception Lane_wedged of { shard : int; round : int; stale : float }

exception
  Lane_failure of {
    shard : int;
    round : int;
    wedged : bool;
    origin : exn;
    backtrace : string;
  }

let () =
  Printexc.register_printer (function
    | Shard_error msg -> Some (Printf.sprintf "Shard_error: %s" msg)
    | Chaos_crash { shard; round } ->
      Some
        (Printf.sprintf
           "Shard.Chaos_crash: injected crash on shard %d at barrier round %d"
           shard round)
    | Lane_wedged { shard; round; stale } ->
      Some
        (Printf.sprintf
           "Shard.Lane_wedged: shard %d wedged at barrier round %d \
            (heartbeat stale %.2fs)"
           shard round stale)
    | Lane_failure { shard; round; wedged; origin; _ } ->
      Some
        (Printf.sprintf
           "Shard.Lane_failure: shard %d %s at barrier round %d: %s" shard
           (if wedged then "wedged" else "crashed")
           round (Printexc.to_string origin))
    | _ -> None)

let create ?scheduler ?on_error ~shards () =
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  {
    engines =
      Array.init shards (fun _ -> Engine.create ?on_error ?scheduler ());
    chans = [];
    controls = [];
    ctrl_ord = 0;
    fired_controls = 0;
    injected = 0;
    all_rounds = 0;
    all_messages = 0;
    last_stats = None;
    running = false;
    poisoned = false;
    chaos = default_chaos ();
    lane_deadline = None;
    lane_max_events = None;
    wedge_grace = None;
    sleep = None;
  }

let configure ?chaos ?lane_deadline ?lane_max_events ?wedge_grace ?sleep t =
  (match lane_deadline with
  | Some d when d <= 0. ->
    invalid_arg "Shard.configure: lane_deadline must be positive"
  | _ -> ());
  (match lane_max_events with
  | Some n when n <= 0 ->
    invalid_arg "Shard.configure: lane_max_events must be positive"
  | _ -> ());
  (match wedge_grace with
  | Some g when g <= 0. ->
    invalid_arg "Shard.configure: wedge_grace must be positive"
  | _ -> ());
  Option.iter (fun c -> t.chaos <- c) chaos;
  Option.iter (fun d -> t.lane_deadline <- Some d) lane_deadline;
  Option.iter (fun n -> t.lane_max_events <- Some n) lane_max_events;
  Option.iter (fun g -> t.wedge_grace <- Some g) wedge_grace;
  Option.iter (fun s -> t.sleep <- Some s) sleep

let poisoned t = t.poisoned
let shards t = Array.length t.engines

let engine t i =
  if i < 0 || i >= Array.length t.engines then
    invalid_arg (Printf.sprintf "Shard.engine: no shard %d" i);
  t.engines.(i)

let engines t = Array.copy t.engines

let channel t ~src ~dst ~floor ~inject =
  let n = Array.length t.engines in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Shard.channel: shard index out of range";
  if src = dst then invalid_arg "Shard.channel: src and dst coincide";
  if not (floor > 0.) then
    invalid_arg "Shard.channel: floor must be positive (zero lookahead \
                 would stall the window protocol)";
  let cs = { cs_id = List.length t.chans; cs_floor = floor; cs_buf = [] } in
  t.chans <- cs :: t.chans;
  { ch_state = cs; ch_src = src; ch_dst = dst; ch_inject = inject; ch_seq = 0 }

let send ch ~now ~arrival v =
  if arrival < now +. ch.ch_state.cs_floor then
    raise
      (Shard_error
         (Printf.sprintf
            "channel %d: arrival %.9f violates floor %.9f from t=%.9f"
            ch.ch_state.cs_id arrival ch.ch_state.cs_floor now));
  let seq = ch.ch_seq in
  ch.ch_seq <- seq + 1;
  let inject = ch.ch_inject in
  ch.ch_state.cs_buf <-
    {
      m_arrival = arrival;
      m_sent = now;
      m_chan = ch.ch_state.cs_id;
      m_seq = seq;
      m_fire = (fun () -> inject ~arrival ~sent:now v);
    }
    :: ch.ch_state.cs_buf

let channel_src ch = ch.ch_src
let channel_dst ch = ch.ch_dst

let at t ~time f =
  let ord = t.ctrl_ord in
  t.ctrl_ord <- ord + 1;
  t.controls <- { c_time = time; c_ord = ord; c_fn = f } :: t.controls

let lookahead t =
  List.fold_left (fun acc c -> Float.min acc c.cs_floor) infinity t.chans

let executed t =
  Array.fold_left (fun acc e -> acc + Engine.executed e) 0 t.engines

let pending t =
  Array.fold_left (fun acc e -> acc + Engine.pending e) 0 t.engines

let last_stats t = t.last_stats
let total_rounds t = t.all_rounds
let total_messages t = t.all_messages

type mode = Sequential | Parallel of int

(* ----- coordinator-side barrier machinery (single-threaded) ----- *)

let msg_before a b =
  a.m_arrival < b.m_arrival
  || (a.m_arrival = b.m_arrival
      && (a.m_sent < b.m_sent
          || (a.m_sent = b.m_sent
              && (a.m_chan < b.m_chan
                  || (a.m_chan = b.m_chan && a.m_seq < b.m_seq)))))

let drain_inbox t =
  let all =
    List.fold_left
      (fun acc cs ->
        match cs.cs_buf with
        | [] -> acc
        | buf ->
          cs.cs_buf <- [];
          List.rev_append buf acc)
      [] t.chans
  in
  match all with
  | [] -> ()
  | all ->
    let all =
      List.sort (fun a b -> if msg_before a b then -1 else 1) all
    in
    List.iter
      (fun m ->
        t.injected <- t.injected + 1;
        m.m_fire ())
      all

let tmin t =
  Array.fold_left
    (fun acc e ->
      match Engine.next_time e with
      | Some time -> Float.min acc time
      | None -> acc)
    infinity t.engines

let ctrl_min t =
  List.fold_left (fun acc c -> Float.min acc c.c_time) infinity t.controls

(* Fire every control due at or before [min tmin until], in
   (time, registration) order, re-checking after each batch because a
   control may register further controls (recurring probes) or post
   events (shifting tmin). Returns the post-firing tmin. *)
let fire_controls t ~until =
  let budget = ref 10_000_000 in
  let rec loop () =
    let tmin = tmin t in
    let bound = Float.min tmin until in
    let due, rest =
      List.partition (fun c -> c.c_time <= bound) t.controls
    in
    match due with
    | [] -> tmin
    | due ->
      t.controls <- rest;
      let due =
        List.sort
          (fun a b ->
            if a.c_time < b.c_time then -1
            else if a.c_time > b.c_time then 1
            else compare a.c_ord b.c_ord)
          due
      in
      List.iter
        (fun c ->
          decr budget;
          if !budget < 0 then
            raise
              (Shard_error
                 (Printf.sprintf
                    "control livelock: 10M controls fired in one round \
                     near t=%.9f"
                    c.c_time));
          t.fired_controls <- t.fired_controls + 1;
          c.c_fn ())
        due;
      loop ()
  in
  loop ()

(* The fence every engine runs to this round. Events execute strictly
   below [tmin + L] (so every boundary message lands beyond the next
   barrier) and strictly below the earliest pending control; when the
   window would be empty by ulp-rounding, it degenerates to exactly
   [tmin], which is still safe because a message sent at tmin arrives
   at >= tmin + L > tmin. *)
let window_target t ~until ~tmin =
  let cap = Float.min (tmin +. lookahead t) (ctrl_min t) in
  if cap > until then until
  else
    let p = Float.pred cap in
    if p < tmin then tmin else p

(* Chaos fires only on multi-shard hubs: the faults being modelled are
   lane-level, and gating on [shards > 1] guarantees the ladder's final
   1-shard rung always runs clean — injected chaos can never exhaust
   the ladder (a genuine deterministic bug still fails every rung,
   which is the correct outcome). *)
let chaos_raise t ~shard ~round =
  if Array.length t.engines > 1 then begin
    (match t.chaos.crash with
    | Some (s, r) when s = shard && r = round ->
      raise (Chaos_crash { shard; round })
    | _ -> ());
    match t.chaos.wedge with
    | Some (s, r) when s = shard && r = round ->
      (* Without lanes there is nothing to wedge out-of-band: the
         injection degenerates to a synchronous failure, which still
         exercises the abort and ladder paths. *)
      raise (Lane_wedged { shard; round; stale = 0. })
    | _ -> ()
  end

(* ----- parallel lanes ----- *)

type cmd = Go of { target : float; round : int } | Quit

type lane = {
  l_mutex : Mutex.t;
  l_cond : Condition.t;
  mutable l_cmd : cmd option;
  mutable l_done : bool;
  mutable l_failed : (int * exn * string) option;
      (* (shard, origin, backtrace); first failure wins *)
  l_shards : int array;  (* shard indices this lane executes, ascending *)
  l_beat : float Atomic.t;  (* wall-clock heartbeat for the watchdog *)
  mutable l_abandoned : bool;  (* the watchdog gave up on this lane *)
  mutable l_release : bool;  (* wakes a chaos-wedged lane *)
  mutable l_recovered : bool;  (* an abandoned lane rejoined the protocol *)
}

let lane_fail lane shard exn bt =
  Mutex.lock lane.l_mutex;
  if lane.l_failed = None then lane.l_failed <- Some (shard, exn, bt);
  Mutex.unlock lane.l_mutex

let lane_failed lane =
  Mutex.lock lane.l_mutex;
  let f = lane.l_failed in
  Mutex.unlock lane.l_mutex;
  f

(* A chaos-wedged lane parks here, silent (no heartbeat), until the
   watchdog abandons it — unlike a real wedge it then rejoins the
   protocol so the test run can join its domain. *)
let wedge_wait lane =
  Mutex.lock lane.l_mutex;
  while not lane.l_release do
    Condition.wait lane.l_cond lane.l_mutex
  done;
  lane.l_recovered <- true;
  Mutex.unlock lane.l_mutex

let lane_run t lane ~clock ~busy ~target ~round ~blocking =
  let n = Array.length t.engines in
  try
    Array.iter
      (fun i ->
        if lane_failed lane = None then begin
          let e = t.engines.(i) in
          let t0 = clock () in
          (try
             Atomic.set lane.l_beat t0;
             (* Window-granularity deadline + heartbeat for this lane's
                guard (installed by [worker_loop], or the caller's own
                guard on lane 0). *)
             Task_guard.stamp ();
             (match t.chaos.wedge with
             | Some (s, r) when n > 1 && s = i && r = round && blocking ->
               wedge_wait lane
             | _ -> ());
             chaos_raise t ~shard:i ~round;
             Engine.run ~until:target e
           with exn -> lane_fail lane i exn (Printexc.get_backtrace ()));
          busy.(i) <- busy.(i) +. (clock () -. t0)
        end)
      lane.l_shards
  with exn ->
    (* Defensive: nothing above should raise outside the per-engine
       handler, but a lane must never die without reporting. *)
    lane_fail lane lane.l_shards.(0) exn (Printexc.get_backtrace ())

let worker_loop t lane ~clock ~busy ~blocking =
  (* Pools wired to this lane's engines must fire on this domain. *)
  Array.iter (fun i -> Engine.adopt_owned t.engines.(i)) lane.l_shards;
  (* Install a per-lane guard whenever limits are configured, and also
     whenever the watchdog is armed: the guard's every-512-events check
     stamps [l_beat], so a long legitimate window never looks stale. *)
  let guarded =
    blocking || t.lane_deadline <> None || t.lane_max_events <> None
  in
  if guarded then
    Task_guard.install ?deadline:t.lane_deadline
      ?max_events:t.lane_max_events ~heartbeat:lane.l_beat ~clock ();
  Fun.protect ~finally:(fun () -> if guarded then Task_guard.uninstall ())
  @@ fun () ->
  let rec loop () =
    Mutex.lock lane.l_mutex;
    let rec await () =
      match lane.l_cmd with
      | Some cmd ->
        lane.l_cmd <- None;
        cmd
      | None ->
        Condition.wait lane.l_cond lane.l_mutex;
        await ()
    in
    let cmd = await () in
    Mutex.unlock lane.l_mutex;
    match cmd with
    | Quit -> ()
    | Go { target; round } ->
      lane_run t lane ~clock ~busy ~target ~round ~blocking;
      Mutex.lock lane.l_mutex;
      lane.l_done <- true;
      Condition.signal lane.l_cond;
      Mutex.unlock lane.l_mutex;
      loop ()
  in
  loop ()

let lane_go lane ~target ~round =
  Mutex.lock lane.l_mutex;
  lane.l_cmd <- Some (Go { target; round });
  Condition.signal lane.l_cond;
  Mutex.unlock lane.l_mutex

(* Wakes on completion or on watchdog abandonment ([abandon_lane]
   broadcasts the same condition). [l_done] is deliberately left set:
   the watchdog reads it to tell a finished lane from a wedged one, so
   the coordinator only clears it once the whole round is awaited (see
   [await_lanes]). *)
let lane_await lane =
  Mutex.lock lane.l_mutex;
  while not (lane.l_done || lane.l_abandoned) do
    Condition.wait lane.l_cond lane.l_mutex
  done;
  Mutex.unlock lane.l_mutex

let lane_quit lane =
  Mutex.lock lane.l_mutex;
  lane.l_cmd <- Some Quit;
  Condition.signal lane.l_cond;
  Mutex.unlock lane.l_mutex

(* The out-of-band watchdog gave up on a lane whose heartbeat went
   stale. Record a synthetic wedge failure (blaming the chaos-targeted
   shard when the staleness was injected, the lane's first shard
   otherwise), then release the lane in case it is parked in
   [wedge_wait]. A genuinely wedged domain never wakes; it is leaked,
   exactly like the supervisor's abandoned workers. *)
let abandon_lane t lane ~round ~stale =
  Mutex.lock lane.l_mutex;
  (* [l_done] re-checked under the mutex: the lane may have completed
     between the watchdog's staleness probe and this call. *)
  if (not lane.l_abandoned) && not lane.l_done then begin
    let shard =
      match t.chaos.wedge with
      | Some (s, r)
        when r = round && Array.exists (fun i -> i = s) lane.l_shards ->
        s
      | _ -> lane.l_shards.(0)
    in
    if lane.l_failed = None then
      lane.l_failed <- Some (shard, Lane_wedged { shard; round; stale }, "");
    lane.l_abandoned <- true;
    lane.l_release <- true;
    Condition.broadcast lane.l_cond
  end;
  Mutex.unlock lane.l_mutex

(* ----- the run loop ----- *)

let run ?(mode = Sequential) ?max_events ?clock t ~until =
  if t.poisoned then
    raise
      (Shard_error
         "Shard.run: hub was aborted by a lane failure; rebuild the \
          simulation (the degradation ladder in Degrade does this)");
  if t.running then raise (Shard_error "Shard.run: hub already running");
  let n = Array.length t.engines in
  let wall_clock = match clock with Some c -> c | None -> fun () -> 0. in
  let busy_clock = wall_clock in
  (* One trace ring per process (Domain.DLS in the collector), so a
     traced run must stay on the calling domain; likewise a global
     [max_events] budget is only meaningful when windows execute in a
     deterministic order. Both force sequential execution — output is
     unaffected, per the determinism contract. *)
  let domains_used =
    match mode with
    | Sequential -> 1
    | Parallel d ->
      if max_events <> None || Pcc_trace.Collector.enabled () then 1
      else max 1 (min d n)
  in
  (* The watchdog needs a real clock to compare heartbeats against and
     a way to sleep between polls (injected: this library has no unix
     dependency). Without all three ingredients lanes run unwatched,
     exactly as before. *)
  let watchdog =
    if domains_used > 1 then
      match (clock, t.sleep, t.wedge_grace) with
      | Some c, Some sl, Some g -> Some (c, sl, g)
      | _ -> None
    else None
  in
  let blocking = watchdog <> None in
  (* Guard the coordinator's own windows (lane 0, or everything in
     sequential mode) with the configured lane limits — unless the
     caller already installed a guard (the supervisor does), which then
     keeps authority over this domain. *)
  let own_guard =
    (t.lane_deadline <> None || t.lane_max_events <> None)
    && not (Task_guard.active ())
  in
  if own_guard then
    Task_guard.install ?deadline:t.lane_deadline
      ?max_events:t.lane_max_events ~clock:wall_clock ();
  let start_events = Array.map Engine.executed t.engines in
  let busy = Array.make n 0. in
  let wall0 = wall_clock () in
  t.running <- true;
  t.injected <- 0;
  t.fired_controls <- 0;
  let rounds = ref 0 in
  let budget_left = ref (match max_events with Some b -> b | None -> 0) in
  let run_engine_seq target i =
    let e = t.engines.(i) in
    let t0 = busy_clock () in
    Fun.protect
      ~finally:(fun () -> busy.(i) <- busy.(i) +. (busy_clock () -. t0))
      (fun () ->
        match max_events with
        | None -> Engine.run ~until:target e
        | Some _ ->
          let before = Engine.executed e in
          Fun.protect
            ~finally:(fun () ->
              budget_left := !budget_left - (Engine.executed e - before))
            (fun () -> Engine.run ~until:target ~max_events:!budget_left e))
  in
  let lanes =
    if domains_used <= 1 then [||]
    else
      Array.init domains_used (fun l ->
          let mine =
            Array.of_list
              (List.filter
                 (fun i -> i mod domains_used = l)
                 (List.init n Fun.id))
          in
          {
            l_mutex = Mutex.create ();
            l_cond = Condition.create ();
            l_cmd = None;
            l_done = false;
            l_failed = None;
            l_shards = mine;
            l_beat = Atomic.make (wall_clock ());
            l_abandoned = false;
            l_release = false;
            l_recovered = false;
          })
  in
  let doms =
    if domains_used <= 1 then [||]
    else
      Array.init (domains_used - 1) (fun k ->
          let lane = lanes.(k + 1) in
          Domain.spawn (fun () ->
              worker_loop t lane ~clock:busy_clock ~busy ~blocking))
  in
  (* The out-of-band watchdog runs on its own domain so the coordinator
     can block on lane conditions at full speed: polling in the await
     path would add a sleep to every barrier round. [wd_round] is the
     round the coordinator is currently awaiting (0 between rounds —
     idle lanes legitimately stop heartbeating and must not be
     abandoned); an abandonment broadcasts the lane condition, waking
     the coordinator. *)
  let wd_round = Atomic.make 0 in
  let wd_stop = Atomic.make false in
  let watchdog_dom =
    match watchdog with
    | None -> None
    | Some (wclock, sleep, grace) ->
      Some
        (Domain.spawn (fun () ->
             let period = Float.max 0.0005 (grace /. 20.) in
             while not (Atomic.get wd_stop) do
               let round = Atomic.get wd_round in
               if round > 0 then
                 for l = 1 to domains_used - 1 do
                   let lane = lanes.(l) in
                   Mutex.lock lane.l_mutex;
                   let busy_lane = (not lane.l_done) && not lane.l_abandoned in
                   Mutex.unlock lane.l_mutex;
                   if busy_lane then begin
                     let stale = wclock () -. Atomic.get lane.l_beat in
                     (* Re-read the round gate right before acting: the
                        coordinator clears [wd_round] before resetting
                        [l_done], so a lane that merely finished between
                        our two reads can never be blamed. *)
                     if stale > grace && Atomic.get wd_round = round then
                       abandon_lane t lane ~round ~stale
                   end
                 done;
               sleep period
             done))
  in
  let stopped = ref false in
  let stop_workers () =
    if not !stopped then begin
      stopped := true;
      Atomic.set wd_stop true;
      Option.iter Domain.join watchdog_dom;
      if Array.length doms > 0 then begin
        for l = 1 to Array.length lanes - 1 do
          lane_quit lanes.(l)
        done;
        Array.iteri
          (fun k d ->
            let lane = lanes.(k + 1) in
            let joinable =
              Mutex.lock lane.l_mutex;
              let j = (not lane.l_abandoned) || lane.l_recovered in
              Mutex.unlock lane.l_mutex;
              j
            in
            (* An abandoned lane that never recovered is wedged in user
               code and would block [join] forever: leak the domain,
               like the supervisor leaks its abandoned workers. *)
            if joinable then Domain.join d)
          doms;
        (* Hand every pool back to the coordinator so post-run
           inspection (digests, clears, further sequential runs) fires
           cleanly. *)
        Array.iter Engine.adopt_owned t.engines
      end
    end
  in
  (* Clean abort: quit and join the lanes, drop every buffered boundary
     message (checkout of pooled records happens at injection, so the
     buffers hold only plain closures), reclaim pooled records whose
     release events will never fire, and poison the hub — its shards
     stopped at different windows and can never be resumed coherently.
     The single structured exception is what the supervisor, the
     degradation ladder and the CLI all consume. *)
  let abort ~round (shard, origin, backtrace) =
    stop_workers ();
    List.iter (fun cs -> cs.cs_buf <- []) t.chans;
    Array.iter Engine.adopt_owned t.engines;
    Array.iter Engine.reclaim_owned t.engines;
    t.poisoned <- true;
    let wedged = match origin with Lane_wedged _ -> true | _ -> false in
    raise (Lane_failure { shard; round; wedged; origin; backtrace })
  in
  let await_lanes ~round =
    if watchdog_dom <> None then Atomic.set wd_round round;
    for l = 1 to domains_used - 1 do
      lane_await lanes.(l)
    done;
    (* Order matters: take the watchdog off-round BEFORE clearing the
       completion flags, so it never mistakes a just-finished lane (done
       cleared, heartbeat going stale) for a wedged one. *)
    if watchdog_dom <> None then Atomic.set wd_round 0;
    for l = 1 to domains_used - 1 do
      let lane = lanes.(l) in
      Mutex.lock lane.l_mutex;
      lane.l_done <- false;
      Mutex.unlock lane.l_mutex
    done
  in
  let finish () =
    t.running <- false;
    t.all_rounds <- t.all_rounds + !rounds;
    t.all_messages <- t.all_messages + t.injected;
    if own_guard then Task_guard.uninstall ();
    t.last_stats <-
      Some
        {
          rounds = !rounds;
          messages = t.injected;
          controls_fired = t.fired_controls;
          per_shard_events =
            Array.mapi
              (fun i e -> Engine.executed e - start_events.(i))
              t.engines;
          per_shard_busy_s = busy;
          wall_s = wall_clock () -. wall0;
          domains_used;
        }
  in
  Fun.protect ~finally:(fun () -> stop_workers (); finish ())
  @@ fun () ->
  let continue = ref true in
  while !continue do
    drain_inbox t;
    let tmin = fire_controls t ~until in
    if tmin > until && ctrl_min t > until then begin
      (* Quiescent below the horizon: park every clock at [until],
         exactly as a monolithic [Engine.run ~until] would. *)
      Array.iter (fun e -> Engine.run ~until e) t.engines;
      continue := false
    end
    else begin
      incr rounds;
      (* Lifetime numbering: callers that drive the hub in interval
         slices see one continuous round counter, so a chaos spec or a
         forensics report names the same round either way. *)
      let round = t.all_rounds + !rounds in
      if Task_guard.active () then begin
        Task_guard.on_event ();
        Task_guard.stamp ()
      end;
      let target = window_target t ~until ~tmin in
      if domains_used <= 1 then begin
        let failed = ref None in
        for i = 0 to n - 1 do
          if !failed = None then
            try
              chaos_raise t ~shard:i ~round;
              run_engine_seq target i
            with
            | Engine.Livelock { kind = Engine.Budget; _ } as b
              when max_events <> None ->
              (* The caller's global event budget, not a shard fault:
                 propagate unwrapped, as every budgeted consumer (the
                 fuzzer) expects. *)
              raise b
            | exn -> failed := Some (i, exn, Printexc.get_backtrace ())
        done;
        match !failed with Some f -> abort ~round f | None -> ()
      end
      else begin
        for l = 1 to domains_used - 1 do
          Atomic.set lanes.(l).l_beat (wall_clock ());
          lane_go lanes.(l) ~target ~round
        done;
        lane_run t lanes.(0) ~clock:busy_clock ~busy ~target ~round
          ~blocking:false;
        await_lanes ~round;
        let worst =
          Array.fold_left
            (fun acc lane ->
              match (lane_failed lane, acc) with
              | None, acc -> acc
              | (Some _ as f), None -> f
              | (Some (i, _, _) as f), Some (j, _, _) ->
                if i < j then f else acc)
            None lanes
        in
        match worst with Some f -> abort ~round f | None -> ()
      end
    end
  done

let run_stats ?mode ?max_events ?clock t ~until =
  run ?mode ?max_events ?clock t ~until;
  match t.last_stats with Some s -> s | None -> assert false
