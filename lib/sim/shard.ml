(* Conservative parallel discrete-event hub.

   A hub owns N engines ("shards"), each with its own queue backend,
   clock, pools and — at the scenario layer — RNG stream. Cross-shard
   traffic flows through bounded channels whose [floor] is the link's
   minimum propagation delay; the global lookahead L (minimum floor
   over all channels) bounds how far any shard may run ahead of the
   others without risking a causality violation.

   The synchronization protocol is a barrier-window loop (YAWNS-style
   null messages degenerate to a global reduction because every shard
   synchronizes every round):

     round:
       1. inject buffered boundary messages, in canonical order
       2. tmin  := min over engines of next pending event time
       3. fire coordinator controls with time <= min(tmin, until)
       4. cap   := min(tmin + L, earliest pending control time)
          target:= if cap > until then until
                   else max(Float.pred cap, tmin)
       5. every engine runs [Engine.run ~until:target]

   Safety: every event executed in a window fires at some s in
   [tmin, target]; a boundary message it sends has
   arrival >= s + floor >= tmin + L >= cap > target, so the message's
   arrival lies strictly beyond every clock at the next barrier — it is
   injected there, before any event that could observe it. (When the
   ulp guard pins target to tmin the bound tightens to
   arrival >= tmin + L > tmin = target.)

   Determinism: shard windows advance in lockstep over the same global
   time fence regardless of how many shards (or domains) execute them,
   boundary messages are merged in the canonical
   (arrival, sent, channel, sequence) order, and controls fire at a
   fixed point of the event stream (after all events before their time,
   before any event at or after it). A seeded hub run is therefore
   byte-identical at any shard count and under Sequential or Parallel
   execution. Boundary messages are injected with {!Engine.post_from},
   carrying the source-side send instant into the destination's
   (time, sent, seq) dispatch key, so an injected event sorts exactly
   where a local post at that instant would have — same-float-time ties
   between a boundary delivery and a local event (which are structural
   in ack-clocked equilibrium, not measure-zero) resolve identically at
   any shard count. The residual caveat is the double coincidence of a
   boundary event and an unrelated local event agreeing in BOTH arrival
   and send instant, float-bit exact; the fuzz differential polices
   it. *)

type message = {
  m_arrival : float;
  m_sent : float;
  m_chan : int;
  m_seq : int;
  m_fire : unit -> unit;
}

type control = { c_time : float; c_ord : int; c_fn : unit -> unit }

type chan_state = {
  cs_id : int;
  cs_floor : float;
  mutable cs_buf : message list;  (* newest first; drained at barriers *)
}

type stats = {
  rounds : int;
  messages : int;
  controls_fired : int;
  per_shard_events : int array;
  per_shard_busy_s : float array;
  wall_s : float;
  domains_used : int;
}

type t = {
  engines : Engine.t array;
  mutable chans : chan_state list;  (* registration order, newest first *)
  mutable controls : control list;  (* unsorted *)
  mutable ctrl_ord : int;
  mutable fired_controls : int;
  mutable injected : int;
  mutable all_rounds : int;  (* lifetime, across runs *)
  mutable all_messages : int;
  mutable last_stats : stats option;
  mutable running : bool;
}

type 'a channel = {
  ch_state : chan_state;
  ch_src : int;
  ch_dst : int;
  ch_inject : arrival:float -> sent:float -> 'a -> unit;
  mutable ch_seq : int;
}

exception Shard_error of string

let () =
  Printexc.register_printer (function
    | Shard_error msg -> Some (Printf.sprintf "Shard_error: %s" msg)
    | _ -> None)

let create ?scheduler ?on_error ~shards () =
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  {
    engines =
      Array.init shards (fun _ -> Engine.create ?on_error ?scheduler ());
    chans = [];
    controls = [];
    ctrl_ord = 0;
    fired_controls = 0;
    injected = 0;
    all_rounds = 0;
    all_messages = 0;
    last_stats = None;
    running = false;
  }

let shards t = Array.length t.engines

let engine t i =
  if i < 0 || i >= Array.length t.engines then
    invalid_arg (Printf.sprintf "Shard.engine: no shard %d" i);
  t.engines.(i)

let engines t = Array.copy t.engines

let channel t ~src ~dst ~floor ~inject =
  let n = Array.length t.engines in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Shard.channel: shard index out of range";
  if src = dst then invalid_arg "Shard.channel: src and dst coincide";
  if not (floor > 0.) then
    invalid_arg "Shard.channel: floor must be positive (zero lookahead \
                 would stall the window protocol)";
  let cs = { cs_id = List.length t.chans; cs_floor = floor; cs_buf = [] } in
  t.chans <- cs :: t.chans;
  { ch_state = cs; ch_src = src; ch_dst = dst; ch_inject = inject; ch_seq = 0 }

let send ch ~now ~arrival v =
  if arrival < now +. ch.ch_state.cs_floor then
    raise
      (Shard_error
         (Printf.sprintf
            "channel %d: arrival %.9f violates floor %.9f from t=%.9f"
            ch.ch_state.cs_id arrival ch.ch_state.cs_floor now));
  let seq = ch.ch_seq in
  ch.ch_seq <- seq + 1;
  let inject = ch.ch_inject in
  ch.ch_state.cs_buf <-
    {
      m_arrival = arrival;
      m_sent = now;
      m_chan = ch.ch_state.cs_id;
      m_seq = seq;
      m_fire = (fun () -> inject ~arrival ~sent:now v);
    }
    :: ch.ch_state.cs_buf

let channel_src ch = ch.ch_src
let channel_dst ch = ch.ch_dst

let at t ~time f =
  let ord = t.ctrl_ord in
  t.ctrl_ord <- ord + 1;
  t.controls <- { c_time = time; c_ord = ord; c_fn = f } :: t.controls

let lookahead t =
  List.fold_left (fun acc c -> Float.min acc c.cs_floor) infinity t.chans

let executed t =
  Array.fold_left (fun acc e -> acc + Engine.executed e) 0 t.engines

let pending t =
  Array.fold_left (fun acc e -> acc + Engine.pending e) 0 t.engines

let last_stats t = t.last_stats
let total_rounds t = t.all_rounds
let total_messages t = t.all_messages

type mode = Sequential | Parallel of int

(* ----- coordinator-side barrier machinery (single-threaded) ----- *)

let msg_before a b =
  a.m_arrival < b.m_arrival
  || (a.m_arrival = b.m_arrival
      && (a.m_sent < b.m_sent
          || (a.m_sent = b.m_sent
              && (a.m_chan < b.m_chan
                  || (a.m_chan = b.m_chan && a.m_seq < b.m_seq)))))

let drain_inbox t =
  let all =
    List.fold_left
      (fun acc cs ->
        match cs.cs_buf with
        | [] -> acc
        | buf ->
          cs.cs_buf <- [];
          List.rev_append buf acc)
      [] t.chans
  in
  match all with
  | [] -> ()
  | all ->
    let all =
      List.sort (fun a b -> if msg_before a b then -1 else 1) all
    in
    List.iter
      (fun m ->
        t.injected <- t.injected + 1;
        m.m_fire ())
      all

let tmin t =
  Array.fold_left
    (fun acc e ->
      match Engine.next_time e with
      | Some time -> Float.min acc time
      | None -> acc)
    infinity t.engines

let ctrl_min t =
  List.fold_left (fun acc c -> Float.min acc c.c_time) infinity t.controls

(* Fire every control due at or before [min tmin until], in
   (time, registration) order, re-checking after each batch because a
   control may register further controls (recurring probes) or post
   events (shifting tmin). Returns the post-firing tmin. *)
let fire_controls t ~until =
  let budget = ref 10_000_000 in
  let rec loop () =
    let tmin = tmin t in
    let bound = Float.min tmin until in
    let due, rest =
      List.partition (fun c -> c.c_time <= bound) t.controls
    in
    match due with
    | [] -> tmin
    | due ->
      t.controls <- rest;
      let due =
        List.sort
          (fun a b ->
            if a.c_time < b.c_time then -1
            else if a.c_time > b.c_time then 1
            else compare a.c_ord b.c_ord)
          due
      in
      List.iter
        (fun c ->
          decr budget;
          if !budget < 0 then
            raise
              (Shard_error
                 (Printf.sprintf
                    "control livelock: 10M controls fired in one round \
                     near t=%.9f"
                    c.c_time));
          t.fired_controls <- t.fired_controls + 1;
          c.c_fn ())
        due;
      loop ()
  in
  loop ()

(* The fence every engine runs to this round. Events execute strictly
   below [tmin + L] (so every boundary message lands beyond the next
   barrier) and strictly below the earliest pending control; when the
   window would be empty by ulp-rounding, it degenerates to exactly
   [tmin], which is still safe because a message sent at tmin arrives
   at >= tmin + L > tmin. *)
let window_target t ~until ~tmin =
  let cap = Float.min (tmin +. lookahead t) (ctrl_min t) in
  if cap > until then until
  else
    let p = Float.pred cap in
    if p < tmin then tmin else p

(* ----- parallel lanes ----- *)

type cmd = Go of float | Quit

type lane = {
  l_mutex : Mutex.t;
  l_cond : Condition.t;
  mutable l_cmd : cmd option;
  mutable l_done : bool;
  mutable l_failed : (int * exn) option;  (* lowest shard index first *)
  l_shards : int array;  (* shard indices this lane executes, ascending *)
}

let lane_run t lane ~clock ~busy ~target =
  (try
     Array.iter
       (fun i ->
         match lane.l_failed with
         | Some _ -> ()
         | None -> (
           let e = t.engines.(i) in
           let t0 = clock () in
           (try Engine.run ~until:target e
            with exn -> lane.l_failed <- Some (i, exn));
           busy.(i) <- busy.(i) +. (clock () -. t0)))
       lane.l_shards
   with exn ->
     (* Defensive: nothing above should raise outside the per-engine
        handler, but a lane must never die without reporting. *)
     if lane.l_failed = None then lane.l_failed <- Some (max_int, exn));
  ()

let worker_loop t lane ~clock ~busy =
  (* Pools wired to this lane's engines must fire on this domain. *)
  Array.iter (fun i -> Engine.adopt_owned t.engines.(i)) lane.l_shards;
  let rec loop () =
    Mutex.lock lane.l_mutex;
    let rec await () =
      match lane.l_cmd with
      | Some cmd ->
        lane.l_cmd <- None;
        cmd
      | None ->
        Condition.wait lane.l_cond lane.l_mutex;
        await ()
    in
    let cmd = await () in
    Mutex.unlock lane.l_mutex;
    match cmd with
    | Quit -> ()
    | Go target ->
      lane_run t lane ~clock ~busy ~target;
      Mutex.lock lane.l_mutex;
      lane.l_done <- true;
      Condition.signal lane.l_cond;
      Mutex.unlock lane.l_mutex;
      loop ()
  in
  loop ()

let lane_go lane ~target =
  Mutex.lock lane.l_mutex;
  lane.l_cmd <- Some (Go target);
  Condition.signal lane.l_cond;
  Mutex.unlock lane.l_mutex

let lane_await lane =
  Mutex.lock lane.l_mutex;
  while not lane.l_done do
    Condition.wait lane.l_cond lane.l_mutex
  done;
  lane.l_done <- false;
  Mutex.unlock lane.l_mutex

let lane_quit lane =
  Mutex.lock lane.l_mutex;
  lane.l_cmd <- Some Quit;
  Condition.signal lane.l_cond;
  Mutex.unlock lane.l_mutex

(* ----- the run loop ----- *)

let run ?(mode = Sequential) ?max_events ?clock t ~until =
  if t.running then raise (Shard_error "Shard.run: hub already running");
  let n = Array.length t.engines in
  let wall_clock = match clock with Some c -> c | None -> fun () -> 0. in
  let busy_clock = wall_clock in
  (* One trace ring per process (Domain.DLS in the collector), so a
     traced run must stay on the calling domain; likewise a global
     [max_events] budget is only meaningful when windows execute in a
     deterministic order. Both force sequential execution — output is
     unaffected, per the determinism contract. *)
  let domains_used =
    match mode with
    | Sequential -> 1
    | Parallel d ->
      if max_events <> None || Pcc_trace.Collector.enabled () then 1
      else max 1 (min d n)
  in
  let start_events = Array.map Engine.executed t.engines in
  let busy = Array.make n 0. in
  let wall0 = wall_clock () in
  t.running <- true;
  t.injected <- 0;
  t.fired_controls <- 0;
  let rounds = ref 0 in
  let budget_left = ref (match max_events with Some b -> b | None -> 0) in
  let run_engine_seq target i =
    let e = t.engines.(i) in
    let t0 = busy_clock () in
    Fun.protect
      ~finally:(fun () -> busy.(i) <- busy.(i) +. (busy_clock () -. t0))
      (fun () ->
        match max_events with
        | None -> Engine.run ~until:target e
        | Some _ ->
          let before = Engine.executed e in
          Fun.protect
            ~finally:(fun () ->
              budget_left := !budget_left - (Engine.executed e - before))
            (fun () -> Engine.run ~until:target ~max_events:!budget_left e))
  in
  let lanes =
    if domains_used <= 1 then [||]
    else
      Array.init domains_used (fun l ->
          let mine =
            Array.of_list
              (List.filter
                 (fun i -> i mod domains_used = l)
                 (List.init n Fun.id))
          in
          {
            l_mutex = Mutex.create ();
            l_cond = Condition.create ();
            l_cmd = None;
            l_done = false;
            l_failed = None;
            l_shards = mine;
          })
  in
  let doms =
    if domains_used <= 1 then [||]
    else
      Array.init (domains_used - 1) (fun k ->
          let lane = lanes.(k + 1) in
          Domain.spawn (fun () -> worker_loop t lane ~clock:busy_clock ~busy))
  in
  let stop_workers () =
    if Array.length doms > 0 then begin
      for l = 1 to Array.length lanes - 1 do
        lane_quit lanes.(l)
      done;
      Array.iter Domain.join doms;
      (* Hand every pool back to the coordinator so post-run inspection
         (digests, clears, further sequential runs) fires cleanly. *)
      Array.iter Engine.adopt_owned t.engines
    end
  in
  let finish () =
    t.running <- false;
    t.all_rounds <- t.all_rounds + !rounds;
    t.all_messages <- t.all_messages + t.injected;
    t.last_stats <-
      Some
        {
          rounds = !rounds;
          messages = t.injected;
          controls_fired = t.fired_controls;
          per_shard_events =
            Array.mapi
              (fun i e -> Engine.executed e - start_events.(i))
              t.engines;
          per_shard_busy_s = busy;
          wall_s = wall_clock () -. wall0;
          domains_used;
        }
  in
  Fun.protect ~finally:(fun () -> stop_workers (); finish ())
  @@ fun () ->
  let continue = ref true in
  while !continue do
    drain_inbox t;
    let tmin = fire_controls t ~until in
    if tmin > until && ctrl_min t > until then begin
      (* Quiescent below the horizon: park every clock at [until],
         exactly as a monolithic [Engine.run ~until] would. *)
      Array.iter (fun e -> Engine.run ~until e) t.engines;
      continue := false
    end
    else begin
      incr rounds;
      if Task_guard.active () then Task_guard.on_event ();
      let target = window_target t ~until ~tmin in
      if domains_used <= 1 then
        for i = 0 to n - 1 do
          run_engine_seq target i
        done
      else begin
        for l = 1 to domains_used - 1 do
          lane_go lanes.(l) ~target
        done;
        lane_run t lanes.(0) ~clock:busy_clock ~busy ~target;
        for l = 1 to domains_used - 1 do
          lane_await lanes.(l)
        done;
        let worst =
          Array.fold_left
            (fun acc lane ->
              match (lane.l_failed, acc) with
              | None, acc -> acc
              | Some _, None -> lane.l_failed
              | Some (i, _), Some (j, _) -> if i < j then lane.l_failed else acc)
            None lanes
        in
        match worst with
        | Some (_, exn) -> raise exn
        | None -> ()
      end
    end
  done

let run_stats ?mode ?max_events ?clock t ~until =
  run ?mode ?max_events ?clock t ~until;
  match t.last_stats with Some s -> s | None -> assert false
