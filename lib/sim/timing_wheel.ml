(* Hierarchical timing wheel over a flat slot-chained arena.

   Geometry: [levels] pages of [slots] slots each, one tick =
   [tick_seconds]. An event's tick is trunc(time / tick_seconds); level
   l slot j covers ticks with (tk lsr (bits*l)) land (slots-1) = j.
   Placement is page-aligned: an entry lives at the lowest level whose
   *page* (the bits above that level) matches the cursor's, so every
   stored index is strictly ahead of the cursor within its page and
   advancement never wraps a page or mixes epochs. With 16 bits per
   level the bottom page alone spans 65.5 simulated milliseconds, so
   the common scheduling horizon (packet deliveries, RTO timers) lands
   directly in level 0 and is chained exactly once before dispatch;
   only far-future timers pay a cascade, and there are at most two.
   Anything beyond the top page (>= 2^48 ticks ~ 3.26 simulated years
   ahead) waits in an overflow heap and is drained into the wheel when
   the cursor's epoch reaches it.

   Exact ordering contract: dispatch order is exactly (time, sent, seq)
   — the same total order as {!Event_heap} — even though ticks quantize
   time ([sent] is the posting instant; see Event_heap on why the key
   carries it).
   Every entry funnels through a small "ready" binary heap keyed on the
   exact event time (sequence number breaking ties): harvesting a
   level-0 slot moves entries whose tick equals the cursor into
   [ready], and a push at or before the cursor's tick goes straight
   there. Any entry still in the wheel has a tick strictly greater than
   the cursor, hence a time strictly greater than every ready entry's,
   so popping the ready minimum is globally minimal.

   The layout is built to minimize cache-line touches per event, which
   is what actually separates it from the binary heap at millions of
   pending events (the heap's sift loops chase ~log n scattered lines
   per pop):

   - arena entry i spans [times.(i)] plus two adjacent words of [meta]
     (chain link; sequence tagged with a has-handle bit) — the key
     arrays the hot paths touch sit in 2-3 lines per entry, and the
     LIFO free list hands clustered slots to clustered pushes, so
     chain walks run over dense lines;
   - the ready and overflow heaps copy (time, seq) next to the arena
     index, so their sift comparisons run over small unboxed arrays
     (L1-resident, no GC write barriers) instead of dereferencing the
     arena per compare;
   - slot occupancy is mirrored in a two-tier bitmap (32 slots per mask
     word, 32 mask words per summary bit; find-first-set by de Bruijn
     multiply), so advancing over sparse regions costs a handful of
     word reads, never a 65536-slot scan;
   - {!push_unit} queues an uncancellable event with no {!Handle}
     allocated at all — the packet-delivery events that dominate
     simulations pay zero allocation and never touch the handle array.

   Cancellation is lazy (shared {!Handle} state flip); dead entries are
   freed when a harvest or heap pop surfaces them. A workload that
   cancels far-future timers en masse could strand dead entries in
   never-visited slots, so pushes trigger a sweep (walking only
   occupied slots, via the bitmap) once dead entries outnumber live
   ones past a floor — amortized O(1). *)

type handle = Handle.t

let tick_seconds = 1e-6
let inv_tick = 1. /. tick_seconds
let bits = 16
let slots = 65536 (* 1 lsl bits *)
let levels = 3
let horizon_bits = bits * levels (* 48 *)
let mask_words = 2048 (* slots / 32 *)
let summary_words = 64 (* mask_words / 32 *)

(* A binary min-heap on (time, sent, seq) with the arena index along
   for the ride. Keys are copied in so sift compares stay inside these unboxed
   arrays — no pointers, hence no GC write barrier per sift move. *)
type kheap = {
  mutable ktimes : float array;
  mutable ksents : float array;
  mutable kseqs : int array; (* tagged: (seq lsl 1) lor has-handle *)
  mutable kidx : int array;
  mutable klen : int;
}

type 'a t = {
  mutable times : float array;
  mutable sents : float array;
  (* meta.(2i) = chain / free-list link (-1 ends);
     meta.(2i+1) = (seq lsl 1) lor 1-if-cancellable. *)
  mutable meta : int array;
  mutable handles : handle array; (* dummy for handleless entries *)
  mutable payloads : 'a array;
  dummy : 'a; (* seeds payload slack; freed slots reset to it *)
  mutable free : int; (* head of the arena free list *)
  mutable in_use : int; (* allocated arena slots (live + unswept dead) *)
  mutable next_seq : int;
  mutable cur : int; (* current tick: all wheel entries are beyond it *)
  heads : int array; (* levels * slots chain heads; -1 empty *)
  masks : int array; (* levels * mask_words occupancy bitmap, 32 b/word *)
  summary : int array; (* levels * summary_words: mask word <> 0 bits *)
  lvl_count : int array; (* entries stored per level *)
  ready : kheap;
  overflow : kheap;
  live : int ref;
}

let mk_kheap () =
  { ktimes = [||]; ksents = [||]; kseqs = [||]; kidx = [||]; klen = 0 }

(* [dummy] seeds the payload arena ([Array.make] needs a value of type
   ['a] before any payload exists) and replaces freed slots' payloads so
   the arena never pins a dropped value. Storing ['a] directly — rather
   than boxing each payload in an option-like wrapper — keeps push free
   of minor-heap allocation, which is measurable at millions of events
   per second. *)
let create ~dummy () =
  {
    times = [||];
    sents = [||];
    meta = [||];
    handles = [||];
    payloads = [||];
    dummy;
    free = -1;
    in_use = 0;
    next_seq = 0;
    cur = 0;
    heads = Array.make (levels * slots) (-1);
    masks = Array.make (levels * mask_words) 0;
    summary = Array.make (levels * summary_words) 0;
    lvl_count = Array.make levels 0;
    ready = mk_kheap ();
    overflow = mk_kheap ();
    live = ref 0;
  }

let is_empty t = !(t.live) = 0
let size t = !(t.live)

let tick_of_time time = int_of_float (time *. inv_tick)

(* Entry state, reading the handle only when one exists. *)
let entry_live t i =
  t.meta.((2 * i) + 1) land 1 = 0 || t.handles.(i).Handle.state = 0

(* ---- find-first-set ---------------------------------------------- *)

(* De Bruijn multiplication over 32-bit words: index of the lowest set
   bit of [w] (w <> 0, w < 2^32). The multiply must wrap at 32 bits,
   which native ints don't do on their own — hence the explicit mask. *)
let debruijn = 0x077CB531

let ctz_table =
  let t = Array.make 32 0 in
  for i = 0 to 31 do
    t.(((debruijn lsl i) land 0xFFFFFFFF) lsr 27) <- i
  done;
  t

let ctz32 w = ctz_table.((((w land -w) * debruijn) land 0xFFFFFFFF) lsr 27)

(* ---- key heap ---------------------------------------------------- *)

(* Key order: (time, sent, tagged seq). Seqs are unique, so the tag
   bit never decides. *)
let kh_key_before time sent seq (h : kheap) j =
  time < h.ktimes.(j)
  || (time = h.ktimes.(j)
      && (sent < h.ksents.(j)
          || (sent = h.ksents.(j) && seq < h.kseqs.(j))))

let kh_push (h : kheap) time sent seq i =
  if h.klen >= Array.length h.kidx then begin
    let ncap = if h.klen = 0 then 64 else h.klen * 2 in
    let nt = Array.make ncap time in
    let nst = Array.make ncap sent in
    let ns = Array.make ncap seq in
    let ni = Array.make ncap i in
    Array.blit h.ktimes 0 nt 0 h.klen;
    Array.blit h.ksents 0 nst 0 h.klen;
    Array.blit h.kseqs 0 ns 0 h.klen;
    Array.blit h.kidx 0 ni 0 h.klen;
    h.ktimes <- nt;
    h.ksents <- nst;
    h.kseqs <- ns;
    h.kidx <- ni
  end;
  let pos = ref h.klen in
  h.klen <- h.klen + 1;
  let continue = ref true in
  while !continue && !pos > 0 do
    let parent = (!pos - 1) / 2 in
    if kh_key_before time sent seq h parent then begin
      h.ktimes.(!pos) <- h.ktimes.(parent);
      h.ksents.(!pos) <- h.ksents.(parent);
      h.kseqs.(!pos) <- h.kseqs.(parent);
      h.kidx.(!pos) <- h.kidx.(parent);
      pos := parent
    end
    else continue := false
  done;
  h.ktimes.(!pos) <- time;
  h.ksents.(!pos) <- sent;
  h.kseqs.(!pos) <- seq;
  h.kidx.(!pos) <- i

(* Remove the root of a non-empty key heap. *)
let kh_remove_root (h : kheap) =
  h.klen <- h.klen - 1;
  if h.klen > 0 then begin
    let time = h.ktimes.(h.klen)
    and sent = h.ksents.(h.klen)
    and seq = h.kseqs.(h.klen)
    and i = h.kidx.(h.klen) in
    let pos = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !pos) + 1 in
      if l >= h.klen then continue := false
      else begin
        let r = l + 1 in
        let child =
          if r < h.klen && kh_key_before h.ktimes.(r) h.ksents.(r) h.kseqs.(r) h l
          then r
          else l
        in
        (* Distinct seqs make the order total, so child < key is
           exactly [not (key < child)]. *)
        if not (kh_key_before time sent seq h child) then begin
          h.ktimes.(!pos) <- h.ktimes.(child);
          h.ksents.(!pos) <- h.ksents.(child);
          h.kseqs.(!pos) <- h.kseqs.(child);
          h.kidx.(!pos) <- h.kidx.(child);
          pos := child
        end
        else continue := false
      end
    done;
    h.ktimes.(!pos) <- time;
    h.ksents.(!pos) <- sent;
    h.kseqs.(!pos) <- seq;
    h.kidx.(!pos) <- i
  end

(* ---- arena ------------------------------------------------------- *)

let dummy_handle = Handle.make (ref 0)

let grow t =
  let cap = Array.length t.payloads in
  let ncap = if cap = 0 then 64 else cap * 2 in
  let ntimes = Array.make ncap 0. in
  let nsents = Array.make ncap 0. in
  let nmeta = Array.make (2 * ncap) (-1) in
  let nhandles = Array.make ncap dummy_handle in
  let npayloads = Array.make ncap t.dummy in
  Array.blit t.times 0 ntimes 0 cap;
  Array.blit t.sents 0 nsents 0 cap;
  Array.blit t.meta 0 nmeta 0 (2 * cap);
  Array.blit t.handles 0 nhandles 0 cap;
  Array.blit t.payloads 0 npayloads 0 cap;
  t.times <- ntimes;
  t.sents <- nsents;
  t.meta <- nmeta;
  t.handles <- nhandles;
  t.payloads <- npayloads;
  for i = ncap - 1 downto cap do
    nmeta.(2 * i) <- t.free;
    t.free <- i
  done

let alloc t time sent tagged_seq v =
  if t.free < 0 then grow t;
  let i = t.free in
  t.free <- t.meta.(2 * i);
  t.times.(i) <- time;
  t.sents.(i) <- sent;
  t.meta.(2 * i) <- -1;
  t.meta.((2 * i) + 1) <- tagged_seq;
  t.payloads.(i) <- v;
  t.in_use <- t.in_use + 1;
  i

let free_slot t i =
  t.payloads.(i) <- t.dummy;
  if t.meta.((2 * i) + 1) land 1 = 1 then t.handles.(i) <- dummy_handle;
  t.meta.(2 * i) <- t.free;
  t.free <- i;
  t.in_use <- t.in_use - 1

(* ---- placement --------------------------------------------------- *)

let link_slot t level idx i =
  let cell = (level * slots) + idx in
  let head = t.heads.(cell) in
  t.meta.(2 * i) <- head;
  t.heads.(cell) <- i;
  if head < 0 then begin
    let w = (level * mask_words) + (idx lsr 5) in
    if t.masks.(w) = 0 then begin
      let sw = (level * summary_words) + (idx lsr 10) in
      t.summary.(sw) <- t.summary.(sw) lor (1 lsl ((idx lsr 5) land 31))
    end;
    t.masks.(w) <- t.masks.(w) lor (1 lsl (idx land 31))
  end;
  t.lvl_count.(level) <- t.lvl_count.(level) + 1

(* File arena entry [i] by its tick, relative to the current cursor:
   at or before the cursor -> ready heap; within the top page -> the
   lowest level whose page matches the cursor's; beyond -> overflow. *)
let place t i =
  let time = t.times.(i) in
  let tk = tick_of_time time in
  if tk <= t.cur then kh_push t.ready time t.sents.(i) t.meta.((2 * i) + 1) i
  else if tk lsr horizon_bits <> t.cur lsr horizon_bits then
    kh_push t.overflow time t.sents.(i) t.meta.((2 * i) + 1) i
  else begin
    let l = ref 0 in
    while tk lsr (bits * (!l + 1)) <> t.cur lsr (bits * (!l + 1)) do
      incr l
    done;
    let l = !l in
    link_slot t l ((tk lsr (bits * l)) land (slots - 1)) i
  end

(* ---- dead-entry sweep -------------------------------------------- *)

(* Clear the occupancy bit of an emptied slot (and its summary bit if
   the whole mask word emptied). *)
let clear_slot_bit t level idx =
  let w = (level * mask_words) + (idx lsr 5) in
  t.masks.(w) <- t.masks.(w) land lnot (1 lsl (idx land 31));
  if t.masks.(w) = 0 then begin
    let sw = (level * summary_words) + (idx lsr 10) in
    t.summary.(sw) <- t.summary.(sw) land lnot (1 lsl ((idx lsr 5) land 31))
  end

(* Walk only occupied slots (via the occupancy bitmap) and rebuild each
   chain keeping live entries. *)
let sweep_chains t =
  for level = 0 to levels - 1 do
    if t.lvl_count.(level) > 0 then
      for w = 0 to mask_words - 1 do
        let word = ref t.masks.((level * mask_words) + w) in
        while !word <> 0 do
          let b = ctz32 !word in
          word := !word land lnot (1 lsl b);
          let idx = (w lsl 5) lor b in
          let cell = (level * slots) + idx in
          let i = ref t.heads.(cell) in
          t.heads.(cell) <- -1;
          while !i >= 0 do
            let next = t.meta.(2 * !i) in
            if entry_live t !i then begin
              t.meta.(2 * !i) <- t.heads.(cell);
              t.heads.(cell) <- !i
            end
            else begin
              free_slot t !i;
              t.lvl_count.(level) <- t.lvl_count.(level) - 1
            end;
            i := next
          done;
          if t.heads.(cell) < 0 then clear_slot_bit t level idx
        done
      done
  done

let sweep_kheap t (h : kheap) =
  let kept = ref [] in
  for pos = 0 to h.klen - 1 do
    let i = h.kidx.(pos) in
    if entry_live t i then
      kept := (h.ktimes.(pos), h.ksents.(pos), h.kseqs.(pos), i) :: !kept
    else free_slot t i
  done;
  h.klen <- 0;
  List.iter (fun (time, sent, seq, i) -> kh_push h time sent seq i) !kept

let maybe_sweep t =
  let dead = t.in_use - !(t.live) in
  if dead > 4096 && dead > t.in_use / 2 then begin
    sweep_chains t;
    sweep_kheap t t.ready;
    sweep_kheap t t.overflow
  end

(* ---- push -------------------------------------------------------- *)

let check_time time =
  (* Also rejects NaN. *)
  if not (time >= 0.) then
    invalid_arg "Timing_wheel.push: time must be non-negative"

let push t ~time ?(sent = neg_infinity) v =
  check_time time;
  maybe_sweep t;
  let h = Handle.make t.live in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  incr t.live;
  let i = alloc t time sent ((seq lsl 1) lor 1) v in
  t.handles.(i) <- h;
  place t i;
  h

(* Uncancellable push: no handle is allocated or stored; the entry is
   live until dispatched. Ordering is identical to {!push} (same
   sequence counter). *)
let push_unit t ~time ?(sent = neg_infinity) v =
  check_time time;
  maybe_sweep t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  incr t.live;
  let i = alloc t time sent (seq lsl 1) v in
  place t i

(* ---- advancement ------------------------------------------------- *)

(* Harvest the chain at slot [idx] of [level]: live entries go through
   [place] (which routes tick <= cur to ready), dead ones are freed. *)
let harvest t level idx =
  let cell = (level * slots) + idx in
  let i = ref t.heads.(cell) in
  t.heads.(cell) <- -1;
  clear_slot_bit t level idx;
  while !i >= 0 do
    let next = t.meta.(2 * !i) in
    t.lvl_count.(level) <- t.lvl_count.(level) - 1;
    if entry_live t !i then place t !i else free_slot t !i;
    i := next
  done

(* Lowest occupied slot index > [from] at [level], or -1. Two-tier
   scan: the partial mask word at [from], then the summary bitmap to
   jump straight to the next non-empty mask word. *)
let next_occupied t level from =
  let start = from + 1 in
  if start >= slots then -1
  else begin
    let base = level * mask_words in
    let w0 = start lsr 5 in
    let word = t.masks.(base + w0) land lnot ((1 lsl (start land 31)) - 1) in
    if word <> 0 then (w0 lsl 5) lor ctz32 word
    else begin
      let sbase = level * summary_words in
      let result = ref (-1) in
      let sw = ref ((w0 + 1) lsr 5) in
      let sfirst = !sw in
      while !result < 0 && !sw < summary_words do
        let sword = t.summary.(sbase + !sw) in
        let sword =
          if !sw = sfirst then
            sword land lnot ((1 lsl ((w0 + 1) land 31)) - 1)
          else sword
        in
        if sword <> 0 then begin
          let wi = (!sw lsl 5) lor ctz32 sword in
          (* Summary invariant: the flagged mask word is non-zero. *)
          result := (wi lsl 5) lor ctz32 t.masks.(base + wi)
        end
        else incr sw
      done;
      !result
    end
  end

(* Scan the rest of the cursor's level-0 page; harvest the first
   occupied slot into [ready]. True if a slot was harvested. *)
let try_level0 t =
  if t.lvl_count.(0) = 0 then false
  else begin
    match next_occupied t 0 (t.cur land (slots - 1)) with
    | -1 -> false
    | idx ->
      t.cur <- ((t.cur lsr bits) lsl bits) lor idx;
      harvest t 0 idx;
      true
  end

(* Find the lowest non-empty level >= 1, advance the cursor to its next
   occupied slot and cascade that slot down. True if one was found. *)
let cascade_lowest t =
  let rec level l =
    if l >= levels then false
    else if t.lvl_count.(l) = 0 then level (l + 1)
    else begin
      let cur_l = (t.cur lsr (bits * l)) land (slots - 1) in
      match next_occupied t l cur_l with
      | -1 ->
        (* Page-aligned placement guarantees a non-empty level has an
           entry ahead of the cursor within the current page. *)
        assert false
      | idx ->
        (* Jump the cursor to the start of that slot's tick range. *)
        t.cur <- ((t.cur lsr (bits * l)) + (idx - cur_l)) lsl (bits * l);
        harvest t l idx;
        true
    end
  in
  level 1

(* The wheel proper is empty: jump to the overflow's epoch and drain
   every overflow entry sharing it back through [place]. *)
let pull_overflow t =
  (* Drop dead overflow minima first so the epoch jump lands on a live
     entry. *)
  let continue = ref true in
  while !continue && t.overflow.klen > 0 do
    let i = t.overflow.kidx.(0) in
    if entry_live t i then continue := false
    else begin
      kh_remove_root t.overflow;
      free_slot t i
    end
  done;
  if t.overflow.klen > 0 then begin
    let epoch = tick_of_time t.overflow.ktimes.(0) lsr horizon_bits in
    t.cur <- epoch lsl horizon_bits;
    let continue = ref true in
    while !continue && t.overflow.klen > 0 do
      let i = t.overflow.kidx.(0) in
      if tick_of_time t.overflow.ktimes.(0) lsr horizon_bits = epoch then begin
        kh_remove_root t.overflow;
        if entry_live t i then place t i else free_slot t i
      end
      else continue := false
    done
  end

let advance t =
  let continue = ref true in
  while !continue do
    if t.ready.klen > 0 then continue := false
    else if try_level0 t then ()
    else if cascade_lowest t then ()
    else if t.overflow.klen > 0 then pull_overflow t
    else continue := false
  done

(* Drop dead entries off the top of the ready heap. *)
let prune_ready t =
  let continue = ref true in
  while !continue && t.ready.klen > 0 do
    let i = t.ready.kidx.(0) in
    if entry_live t i then continue := false
    else begin
      kh_remove_root t.ready;
      free_slot t i
    end
  done

(* Dispatch the live root of the ready heap. *)
let take_ready t =
  let i = t.ready.kidx.(0) in
  let time = t.ready.ktimes.(0) in
  kh_remove_root t.ready;
  if t.meta.((2 * i) + 1) land 1 = 1 then t.handles.(i).Handle.state <- 2;
  decr t.live;
  let v = t.payloads.(i) in
  free_slot t i;
  (time, v)

let rec pop t =
  prune_ready t;
  if t.ready.klen > 0 then Some (take_ready t)
  else if !(t.live) > 0 then begin
    advance t;
    pop t
  end
  else None

(* [take_ready] without the result tuple: the slot is freed before the
   callback runs, so the callback may push (and reuse the slot). *)
let take_ready_cb t k =
  let i = t.ready.kidx.(0) in
  let time = t.ready.ktimes.(0) in
  kh_remove_root t.ready;
  if t.meta.((2 * i) + 1) land 1 = 1 then t.handles.(i).Handle.state <- 2;
  decr t.live;
  let v = t.payloads.(i) in
  free_slot t i;
  k time v

let rec pop_cb t k =
  prune_ready t;
  if t.ready.klen > 0 then begin
    take_ready_cb t k;
    true
  end
  else if !(t.live) > 0 then begin
    advance t;
    pop_cb t k
  end
  else false

let rec pop_le t ~max_time =
  prune_ready t;
  if t.ready.klen > 0 then
    if t.ready.ktimes.(0) <= max_time then Some (take_ready t) else None
  else if !(t.live) > 0 then begin
    advance t;
    pop_le t ~max_time
  end
  else None

let rec pop_le_cb t ~max_time k =
  prune_ready t;
  if t.ready.klen > 0 then
    if t.ready.ktimes.(0) <= max_time then begin
      take_ready_cb t k;
      true
    end
    else false
  else if !(t.live) > 0 then begin
    advance t;
    pop_le_cb t ~max_time k
  end
  else false

let rec peek_time t =
  prune_ready t;
  if t.ready.klen > 0 then Some t.ready.ktimes.(0)
  else if !(t.live) > 0 then begin
    advance t;
    peek_time t
  end
  else None

let cancel = Handle.cancel
let cancelled = Handle.cancelled

(* Introspection for tests and benchmarks. *)
let stats t =
  ( Array.length t.payloads,
    t.in_use,
    t.ready.klen,
    t.overflow.klen,
    Array.fold_left ( + ) 0 t.lvl_count )
