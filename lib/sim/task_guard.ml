(* Cooperative per-domain execution guard.

   The supervisor (Pcc_experiments.Supervisor) installs a guard in a
   worker domain before running a task; the engine's dispatch loop calls
   {!on_event} once per executed event. The guard turns two failure
   modes into ordinary exceptions raised *inside* the task:

   - a wall-clock deadline, checked every [check_period] events so the
     clock syscall stays off the per-event path;
   - an event-count ceiling across every engine the task drives (unlike
     [Engine.run ~max_events], which bounds one call on one engine).

   It also publishes a heartbeat timestamp into an atomic shared with
   the supervisor's watchdog, so a task stuck *outside* any engine
   (never reaching [on_event]) is detectable out-of-band.

   Mirrors the trace collector's install pattern: [active] is one
   atomic load and a branch until the first guard anywhere is
   installed, which is the whole cost an unguarded run pays. *)

exception Deadline_exceeded of { elapsed : float; limit : float }
exception Event_budget_exceeded of { events : int; limit : int }

let () =
  Printexc.register_printer (function
    | Deadline_exceeded { elapsed; limit } ->
      Some
        (Printf.sprintf
           "Task_guard.Deadline_exceeded: task ran %.1fs against a %.1fs \
            wall-clock deadline"
           elapsed limit)
    | Event_budget_exceeded { events; limit } ->
      Some
        (Printf.sprintf
           "Task_guard.Event_budget_exceeded: task executed %d events \
            against a ceiling of %d"
           events limit)
    | _ -> None)

type t = {
  deadline_at : float;  (* absolute wall time; infinity when unbounded *)
  deadline : float;  (* the configured limit, for the error message *)
  started : float;
  max_events : int;  (* max_int when unbounded *)
  clock : unit -> float;
  heartbeat : float Atomic.t;
  mutable events : int;
}

(* Wall-clock reads happen every [check_period] events; at the >=10^6
   events/s the engine sustains that is a deadline granularity of well
   under a millisecond. *)
let check_period = 512

let hint = Atomic.make false
let key = Domain.DLS.new_key (fun () : t option ref -> ref None)
let slot () = Domain.DLS.get key

let install ?deadline ?max_events ?heartbeat ~clock () =
  (match deadline with
  | Some d when d <= 0. ->
    invalid_arg "Task_guard.install: deadline must be positive"
  | _ -> ());
  (match max_events with
  | Some n when n <= 0 ->
    invalid_arg "Task_guard.install: max_events must be positive"
  | _ -> ());
  let now = clock () in
  let g =
    {
      deadline_at =
        (match deadline with Some d -> now +. d | None -> infinity);
      deadline = (match deadline with Some d -> d | None -> infinity);
      started = now;
      max_events = (match max_events with Some n -> n | None -> max_int);
      clock;
      heartbeat =
        (match heartbeat with Some h -> h | None -> Atomic.make now);
      events = 0;
    }
  in
  Atomic.set g.heartbeat now;
  slot () := Some g;
  Atomic.set hint true

let uninstall () = slot () := None
let active () = Atomic.get hint && !(slot ()) <> None

let check g =
  let now = g.clock () in
  Atomic.set g.heartbeat now;
  if now > g.deadline_at then
    raise (Deadline_exceeded { elapsed = now -. g.started; limit = g.deadline })

let on_event () =
  if Atomic.get hint then
    match !(slot ()) with
    | None -> ()
    | Some g ->
      g.events <- g.events + 1;
      if g.events > g.max_events then
        raise
          (Event_budget_exceeded { events = g.events; limit = g.max_events });
      if g.events mod check_period = 0 then check g

let stamp () =
  if Atomic.get hint then
    match !(slot ()) with None -> () | Some g -> check g

let events () = match !(slot ()) with Some g -> g.events | None -> 0

let is_guard_exn = function
  | Deadline_exceeded _ | Event_budget_exceeded _ -> true
  | _ -> false
