(** Cooperative per-domain execution guard for supervised tasks.

    A guard bounds one task's execution with a wall-clock deadline and
    an event-count ceiling, and publishes a heartbeat the supervisor's
    watchdog can read from another domain. The engine's dispatch loop
    calls {!on_event} once per executed event, so both limits fire {e
    inside} the task as ordinary exceptions — a hung simulation unwinds
    cleanly instead of wedging its worker domain. Tasks stuck outside
    any engine never reach {!on_event}; their stale heartbeat is the
    watchdog's out-of-band signal (see
    {!Pcc_experiments.Supervisor}).

    Like the trace collector, the guard is per-domain state: until a
    guard is installed somewhere, {!active} is a single atomic load and
    branch — the only cost unguarded runs pay. *)

exception Deadline_exceeded of { elapsed : float; limit : float }
(** The wall clock passed the installed deadline. Checked every few
    hundred events, so delivery lags the deadline by well under a
    millisecond at normal event rates. *)

exception Event_budget_exceeded of { events : int; limit : int }
(** The task executed more events (across {e all} engines it drives)
    than its installed ceiling. *)

val install :
  ?deadline:float ->
  ?max_events:int ->
  ?heartbeat:float Atomic.t ->
  clock:(unit -> float) ->
  unit ->
  unit
(** [install ~clock ()] guards the current domain until {!uninstall}.
    [deadline] is in wall-clock seconds from now; [max_events] caps
    total executed events; [heartbeat] is an atomic the guard stamps
    with [clock ()] at install time and on every deadline check, for an
    external watchdog to poll. [clock] must be monotone enough to
    compare against a deadline (e.g. [Unix.gettimeofday]).
    @raise Invalid_argument if [deadline <= 0] or [max_events <= 0]. *)

val uninstall : unit -> unit
(** Remove the current domain's guard; {!on_event} becomes a no-op. *)

val active : unit -> bool
(** Whether the current domain has a guard installed. *)

val on_event : unit -> unit
(** Called by [Engine] once per dispatched event when {!active}.
    @raise Deadline_exceeded or @raise Event_budget_exceeded when a
    limit is hit. *)

val stamp : unit -> unit
(** Publish a heartbeat and enforce the deadline {e now}, regardless of
    event count. The sharded hub calls this once per barrier window so a
    lane that executes only a handful of events per window still
    heartbeats — and honours its wall-clock deadline — at window
    granularity. No-op when no guard is installed.
    @raise Deadline_exceeded when past the installed deadline. *)

val events : unit -> int
(** Events counted by the current domain's guard (0 when none). *)

val is_guard_exn : exn -> bool
(** Whether an exception is one of the two guard limits — the
    supervisor classifies these as timeouts, never retries. *)
