(** Versioned, explicit binary serialization for checkpoints.

    The checkpoint/resume layer (see [Pcc_experiments.Checkpoint])
    writes state field by field through {!Writer} and reads it back
    through {!Reader} — primitives only, never [Marshal], so closures
    cannot end up in a checkpoint and malformed input raises {!Corrupt}
    rather than crashing the runtime. Every blob starts with a magic
    string and an explicit format version; bump the version whenever
    the field layout changes and branch on {!Reader.version} (or
    reject) when loading. *)

exception Corrupt of string
(** Raised by {!Reader} on truncated input, bad magic, or malformed
    encodings. *)

module Writer : sig
  type t

  val create : magic:string -> version:int -> t
  (** A fresh blob opening with [magic] and [version]. *)

  val u8 : t -> int -> unit
  val int : t -> int -> unit
  (** Zig-zag LEB128: compact for small magnitudes of either sign. *)

  val int64 : t -> int64 -> unit
  val float : t -> float -> unit
  (** IEEE-754 bit pattern — exact round-trip, NaN and infinities
      included. *)

  val bool : t -> bool -> unit
  val string : t -> string -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit

  val contents : t -> string
  (** The serialized bytes, header included. *)
end

module Reader : sig
  type t

  val of_string : magic:string -> string -> t
  (** Parse the header. @raise Corrupt if the magic does not match. *)

  val version : t -> int
  (** The version the blob was written with. *)

  val u8 : t -> int
  val int : t -> int
  val int64 : t -> int64
  val float : t -> float
  val bool : t -> bool
  val string : t -> string
  val option : t -> (t -> 'a) -> 'a option
  val list : t -> (t -> 'a) -> 'a list

  val at_end : t -> bool
  (** Whether every byte has been consumed. *)
end
