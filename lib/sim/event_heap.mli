(** Binary min-heap of timestamped events.

    Keys are [(time, sent, sequence)] triples: ties on time break on
    [sent] (the simulated instant the event was posted), then in
    insertion order, which keeps simultaneous events deterministic. A
    single poster pushing with its own monotone clock never observes the
    [sent] component — posts happen in clock order, so the order is the
    classic [(time, sequence)] — but a cross-engine injector
    ({!Engine.post_from}, used by the Shard barrier loop) can supply a
    foreign [sent] to place a boundary event exactly where it would have
    sorted had it been posted locally at its source-side send instant. Cancellation is
    lazy — a cancelled event stays in the heap until it surfaces at the
    root, which is O(1) per cancellation and fine for timer-heavy
    workloads such as TCP retransmission timers — but the heap maintains
    an exact live-entry count, so {!size} and {!is_empty} are O(1) and
    never over-report dead entries buried below the root.

    Internally the timestamps live in their own [float array] (unboxed),
    separate from the payload cells, so the sift loops compare keys
    without chasing a pointer per element. *)

type 'a t
(** A heap carrying payloads of type ['a]. *)

type handle = Handle.t
(** A handle onto an inserted event, usable to cancel it. The concrete
    type is shared with {!Timing_wheel} so {!Engine} can expose one
    [timer] type across scheduler backends. *)

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val is_empty : 'a t -> bool
(** Whether the heap holds no live (non-cancelled) events. O(1). *)

val size : 'a t -> int
(** Number of live events currently stored — exact even when cancelled
    entries are still buried in the middle of the heap. O(1). *)

val push : 'a t -> time:float -> ?sent:float -> 'a -> handle
(** [push t ~time ?sent v] inserts [v] at key [(time, sent)] and returns
    a cancellation handle. [sent] defaults to [neg_infinity], which
    sorts before every explicit posting instant; pushers that never mix
    defaulted and explicit [sent] values (the common case) get pure
    insertion-order tie-breaking either way. *)

val push_unit : 'a t -> time:float -> ?sent:float -> 'a -> unit
(** Like {!push} but uncancellable and handle-free — fire-and-forget
    events skip the per-entry handle allocation. Dispatch order is
    identical to {!push} (same sequence counter). *)

val pop : 'a t -> (float * 'a) option
(** [pop t] removes and returns the earliest live event, or [None] if the
    heap is empty. Cancelled entries are discarded transparently. *)

val pop_cb : 'a t -> (float -> 'a -> unit) -> bool
(** [pop_cb t k] is {!pop} in continuation style: calls [k time v] on
    the earliest live event and returns [true], or returns [false] on an
    empty queue without calling [k]. Allocates nothing — the option and
    tuple of {!pop} are measurable at millions of events per second on
    the engine dispatch loop. The event is consumed before [k] runs. *)

val pop_le : 'a t -> max_time:float -> (float * 'a) option
(** [pop_le t ~max_time] is [pop t] if the earliest live event's time is
    [<= max_time], and [None] (removing nothing live) otherwise. A single
    heap traversal — callers driving a clock toward a deadline avoid the
    peek-then-pop double descent. *)

val pop_le_cb : 'a t -> max_time:float -> (float -> 'a -> unit) -> bool
(** {!pop_le} in continuation style (see {!pop_cb}): [false] both when
    the queue is empty and when the earliest live event lies beyond
    [max_time]. *)

val peek_time : 'a t -> float option
(** [peek_time t] is the timestamp of the earliest live event, if any,
    without removing it. *)

val cancel : handle -> unit
(** [cancel h] marks the event behind [h] as dead; it will never be
    returned by {!pop} and it immediately stops counting toward {!size}.
    Cancelling twice, or cancelling an already-popped event, is
    harmless. *)

val cancelled : handle -> bool
(** Whether the handle has been cancelled (popped events don't count). *)
