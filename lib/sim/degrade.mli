(** Deterministic degradation ladder over sharded execution width.

    {!Shard.run}'s byte-identical contract makes this sound: a seeded
    simulation produces the same output at any shard count and in any
    execution mode, so a run that aborts with {!Shard.Lane_failure} can
    be transparently rebuilt and retried narrower —
    [Parallel n -> Parallel n/2 -> ... -> Sequential] — without
    changing its result. Chaos injection is gated off at one shard, so
    injected faults always complete at the bottom rung; a genuine
    deterministic bug fails every rung and surfaces as the last rung's
    failure, with full forensics.

    The caller supplies the rebuild-and-run function: a failed rung's
    hub is poisoned and its scenario state part-executed, so each
    attempt must reconstruct the simulation from its seed.

    See DESIGN.md §15 "Failure model and the degradation ladder". *)

type attempt = {
  shards : int;  (** Hub width to build at this rung. *)
  domains : int;
      (** Execution domains for this rung ([1] means sequential). *)
}

type step = {
  attempt : attempt;  (** The rung that failed. *)
  shard : int;
  round : int;
  wedged : bool;
  exn_text : string;  (** Printed origin exception. *)
  backtrace : string;
  wall_s : float;
      (** Wall time the failed rung consumed — the overhead this
          degradation step cost (zero without [clock]). *)
}

type 'a outcome = {
  value : 'a;
  attempt : attempt;  (** The rung that succeeded. *)
  steps : step list;  (** Failed rungs, in ladder order. *)
}

val plan : ?domains:int -> shards:int -> unit -> attempt list
(** The ladder for a requested width: shard counts halve down to a
    final sequential 1-shard rung; each rung's [domains] is the
    requested [domains] (default 1) clamped to its width.
    [plan ~domains:4 ~shards:4 ()] is
    [[{4;4}; {2;2}; {1;1}]]. @raise Invalid_argument on
    [shards < 1] or [domains < 1]. *)

val run :
  ?enabled:bool ->
  ?clock:(unit -> float) ->
  ?report:(step -> unit) ->
  plan:attempt list ->
  (attempt -> 'a) ->
  'a outcome
(** [run ~plan f] applies [f] to each rung in turn, catching only
    {!Shard.Lane_failure}: any other exception — including a guard
    timeout escaping on the calling domain — propagates immediately.
    Each caught failure is counted in the per-domain tally, passed to
    [report], and recorded as a {!step}; the last rung's failure is
    never caught, so an exhausted ladder re-raises it. [enabled]
    (default {!fallback_enabled}) set to [false] disables the ladder
    entirely — the first failure propagates, which is what the CLI's
    [--no-fallback] wants. @raise Invalid_argument on an empty plan. *)

val set_fallback : bool -> unit
(** Process-wide default for [run]'s [enabled] (initially [true]);
    the CLI's [--no-fallback] clears it. *)

val fallback_enabled : unit -> bool

val take_tally : unit -> int
(** Degradation steps recorded on the calling domain since the last
    call, and reset the counter — the supervisor brackets each task
    with this to account it as [degraded]. *)
