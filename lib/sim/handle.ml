(* Cancellation handle shared by every scheduler backend.

   state: 0 = pending (queued), 1 = cancelled, 2 = popped. [live]
   aliases the owning queue's exact live-entry counter so [cancel] —
   which has no queue argument — can keep that count exact without a
   back-pointer to the queue itself. Both Event_heap and Timing_wheel
   store handles of this one type, which is what lets Engine expose a
   single [timer] type independent of the selected scheduler. *)

type t = { mutable state : int; live : int ref }

let make live = { state = 0; live }

let cancel h =
  if h.state = 0 then begin
    h.state <- 1;
    decr h.live
  end

let cancelled h = h.state = 1
