(* Slot pool with per-slot reusable event closures.

   The simulator's packet paths used to allocate one closure (and, via
   [Engine.schedule_in], one cancellation handle) per packet per hop:
   [fun () -> receiver p] captures a fresh environment every send. This
   pool inverts the capture. Each slot owns one closure, allocated when
   the slot first exists, that reads the slot's *current* payload and
   releases the slot before firing the pool's action. Checking a value
   in ([event]) is then a couple of array stores, and a steady-state
   simulation — where the number of in-flight packets per component is
   bounded by bandwidth-delay products — allocates nothing at all on
   the per-packet path after warm-up.

   Discipline: every closure returned by [event] must be run exactly
   once. Running it twice would fire a later packet's payload (or the
   dummy); never running it leaks the slot until [clear]. Scheduling it
   via {!Engine.post}/{!Engine.post_in} satisfies this — posted events
   cannot be cancelled and run exactly once.

   The fire action is mutable ([set_fire]) because receivers are wired
   after construction (see {!Delay_line.set_receiver}); the per-slot
   closures read it at fire time through the pool record. *)

exception Double_release
exception Cross_domain_release

let () =
  Printexc.register_printer (function
    | Double_release ->
      Some
        "Pool.Double_release: a pooled event closure ran twice (its slot \
         was already free)"
    | Cross_domain_release ->
      Some
        "Pool.Cross_domain_release: a pooled event fired on a domain that \
         does not own the pool (missing Pool.adopt / Engine.adopt_owned?)"
    | _ -> None)

type 'a t = {
  dummy : 'a;
  mutable fire : 'a -> unit;
  mutable slots : 'a array;
  mutable events : (unit -> unit) array;
  mutable live : bool array;  (* per-slot: currently checked out *)
  mutable free : int array;  (* stack of free slot indices *)
  mutable free_top : int;  (* number of valid entries in [free] *)
  mutable in_use : int;
  mutable owner : Domain.id;
      (* The domain whose engine dispatches this pool's events. Checkout
         ([event]) from another domain is the documented hand-off (the
         sharded coordinator injects boundary packets between windows,
         while every engine is parked at a barrier); the *fire* must
         happen on the owner. *)
}

let create ~dummy () =
  {
    dummy;
    fire = (fun _ -> failwith "Pool: no fire action installed");
    slots = [||];
    events = [||];
    live = [||];
    free = [||];
    free_top = 0;
    in_use = 0;
    owner = Domain.self ();
  }

let set_fire t f = t.fire <- f
let adopt t = t.owner <- Domain.self ()

let make_event t i () =
  if Domain.self () <> t.owner then raise Cross_domain_release;
  if not t.live.(i) then raise Double_release;
  t.live.(i) <- false;
  let v = t.slots.(i) in
  t.slots.(i) <- t.dummy;
  t.free.(t.free_top) <- i;
  t.free_top <- t.free_top + 1;
  t.in_use <- t.in_use - 1;
  t.fire v

let grow t =
  let cap = Array.length t.slots in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nslots = Array.make ncap t.dummy in
  let nevents = Array.make ncap ignore in
  let nlive = Array.make ncap false in
  let nfree = Array.make ncap 0 in
  Array.blit t.slots 0 nslots 0 cap;
  Array.blit t.events 0 nevents 0 cap;
  Array.blit t.live 0 nlive 0 cap;
  Array.blit t.free 0 nfree 0 t.free_top;
  t.slots <- nslots;
  t.events <- nevents;
  t.live <- nlive;
  t.free <- nfree;
  for i = ncap - 1 downto cap do
    nevents.(i) <- make_event t i;
    nfree.(t.free_top) <- i;
    t.free_top <- t.free_top + 1
  done

let event t v =
  if t.free_top = 0 then grow t;
  t.free_top <- t.free_top - 1;
  let i = t.free.(t.free_top) in
  t.slots.(i) <- v;
  t.live.(i) <- true;
  t.in_use <- t.in_use + 1;
  t.events.(i)

let in_use t = t.in_use
let capacity t = Array.length t.slots

let clear t =
  let cap = Array.length t.slots in
  Array.fill t.slots 0 cap t.dummy;
  Array.fill t.live 0 cap false;
  t.free_top <- 0;
  for i = cap - 1 downto 0 do
    t.free.(t.free_top) <- i;
    t.free_top <- t.free_top + 1
  done;
  t.in_use <- 0
