(* Binary min-heap on parallel arrays.

   [times] and [sents] are plain [float array]s so the hot comparison
   path reads unboxed floats straight out of the arrays; [cells]
   carries the sequence number (final tie-break), the cancellation
   handle and the payload. A mixed record holding the key would box the
   floats and cost a pointer chase per comparison — with the key split
   out, sift loops touch [cells] only to break exact double ties.

   The key is (time, sent, seq): [sent] is the simulated instant the
   event was posted (the engine clock at push). For a single engine
   pushing with its own clock the extra component is inert — posts
   happen in clock order, so (time, seq) and (time, sent, seq) agree —
   but it lets a cross-engine injector (Shard's barrier loop) place a
   boundary event exactly where the event would have sorted had it been
   posted locally at its source-side send instant. See Engine.post_from.

   Cancellation stays lazy (dead entries surface and are dropped at the
   root), but the heap maintains an exact live count so [size] and
   [is_empty] are O(1) and never over-report buried dead entries. *)

type handle = Handle.t

type 'a cell = { seq : int; h : handle; v : 'a }

type 'a t = {
  mutable times : float array;
  mutable sents : float array;
  mutable cells : 'a cell array;
  mutable len : int;  (* slots used, including dead entries *)
  mutable next_seq : int;
  live : int ref;  (* pending (non-cancelled, non-popped) entries *)
}

let create () =
  {
    times = [||];
    sents = [||];
    cells = [||];
    len = 0;
    next_seq = 0;
    live = ref 0;
  }

let is_empty t = !(t.live) = 0
let size t = !(t.live)

(* Is key (time, sent, c) strictly before slot [j]? *)
let before_slot t time sent (c : 'a cell) j =
  time < t.times.(j)
  || (time = t.times.(j)
      && (sent < t.sents.(j)
          || (sent = t.sents.(j) && c.seq < t.cells.(j).seq)))

(* Is slot [i] strictly before slot [j]? *)
let slot_before t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j)
      && (t.sents.(i) < t.sents.(j)
          || (t.sents.(i) = t.sents.(j) && t.cells.(i).seq < t.cells.(j).seq)))

let ensure_capacity t time sent c =
  let cap = Array.length t.cells in
  if t.len >= cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    (* Unused slots are seeded with the entry being inserted; they are
       never read before being overwritten. *)
    let ntimes = Array.make ncap time in
    let nsents = Array.make ncap sent in
    let ncells = Array.make ncap c in
    Array.blit t.times 0 ntimes 0 t.len;
    Array.blit t.sents 0 nsents 0 t.len;
    Array.blit t.cells 0 ncells 0 t.len;
    t.times <- ntimes;
    t.sents <- nsents;
    t.cells <- ncells
  end

(* Move the hole at [i] up until (time, sent, c) fits, then place it.
   One write per visited level instead of a four-write swap. *)
let sift_up t i time sent c =
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before_slot t time sent c parent then begin
      t.times.(!i) <- t.times.(parent);
      t.sents.(!i) <- t.sents.(parent);
      t.cells.(!i) <- t.cells.(parent);
      i := parent
    end
    else continue := false
  done;
  t.times.(!i) <- time;
  t.sents.(!i) <- sent;
  t.cells.(!i) <- c

(* Move the hole at [i] down until (time, sent, c) fits, then place it. *)
let sift_down t i time sent c =
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= t.len then continue := false
    else begin
      let r = l + 1 in
      let child = if r < t.len && slot_before t r l then r else l in
      (* Distinct seqs make the order total, so child < key is exactly
         [not (key < child)]. *)
      if not (before_slot t time sent c child) then begin
        t.times.(!i) <- t.times.(child);
        t.sents.(!i) <- t.sents.(child);
        t.cells.(!i) <- t.cells.(child);
        i := child
      end
      else continue := false
    end
  done;
  t.times.(!i) <- time;
  t.sents.(!i) <- sent;
  t.cells.(!i) <- c

let push t ~time ?(sent = neg_infinity) v =
  let h = Handle.make t.live in
  let c = { seq = t.next_seq; h; v } in
  t.next_seq <- t.next_seq + 1;
  ensure_capacity t time sent c;
  t.len <- t.len + 1;
  incr t.live;
  sift_up t (t.len - 1) time sent c;
  h

(* A single always-pending handle shared by every uncancellable entry;
   pop recognizes it physically and skips the state write. *)
let unit_handle : handle = Handle.make (ref 0)

let push_unit t ~time ?(sent = neg_infinity) v =
  let c = { seq = t.next_seq; h = unit_handle; v } in
  t.next_seq <- t.next_seq + 1;
  ensure_capacity t time sent c;
  t.len <- t.len + 1;
  incr t.live;
  sift_up t (t.len - 1) time sent c

(* Remove the root, refilling the hole from the last slot. *)
let remove_root t =
  t.len <- t.len - 1;
  if t.len > 0 then begin
    let time = t.times.(t.len)
    and sent = t.sents.(t.len)
    and c = t.cells.(t.len) in
    sift_down t 0 time sent c
  end

let rec pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) and c = t.cells.(0) in
    remove_root t;
    if c.h.Handle.state = 0 then begin
      if c.h != unit_handle then c.h.Handle.state <- 2;
      decr t.live;
      Some (time, c.v)
    end
    else pop t
  end

let rec pop_cb t k =
  if t.len = 0 then false
  else begin
    let time = t.times.(0) and c = t.cells.(0) in
    remove_root t;
    if c.h.Handle.state = 0 then begin
      if c.h != unit_handle then c.h.Handle.state <- 2;
      decr t.live;
      k time c.v;
      true
    end
    else pop_cb t k
  end

let rec pop_le t ~max_time =
  if t.len = 0 then None
  else if t.cells.(0).h.Handle.state <> 0 then begin
    (* Dead root: discard it even if it lies beyond [max_time]. *)
    remove_root t;
    pop_le t ~max_time
  end
  else if t.times.(0) > max_time then None
  else begin
    let time = t.times.(0) and c = t.cells.(0) in
    remove_root t;
    if c.h != unit_handle then c.h.Handle.state <- 2;
    decr t.live;
    Some (time, c.v)
  end

let rec pop_le_cb t ~max_time k =
  if t.len = 0 then false
  else if t.cells.(0).h.Handle.state <> 0 then begin
    remove_root t;
    pop_le_cb t ~max_time k
  end
  else if t.times.(0) > max_time then false
  else begin
    let time = t.times.(0) and c = t.cells.(0) in
    remove_root t;
    if c.h != unit_handle then c.h.Handle.state <- 2;
    decr t.live;
    k time c.v;
    true
  end

let rec peek_time t =
  if t.len = 0 then None
  else if t.cells.(0).h.Handle.state <> 0 then begin
    remove_root t;
    peek_time t
  end
  else Some t.times.(0)

let cancel = Handle.cancel
let cancelled = Handle.cancelled
