(* Binary min-heap on two parallel arrays.

   [times] is a plain [float array] so the hot comparison path reads
   unboxed floats straight out of the array; [cells] carries the
   sequence number (FIFO tie-break), the cancellation handle and the
   payload. A mixed record holding the key would box the float and cost
   a pointer chase per comparison — with the key split out, sift loops
   touch [cells] only to break exact ties.

   Cancellation stays lazy (dead entries surface and are dropped at the
   root), but the heap maintains an exact live count so [size] and
   [is_empty] are O(1) and never over-report buried dead entries. *)

type handle = Handle.t

type 'a cell = { seq : int; h : handle; v : 'a }

type 'a t = {
  mutable times : float array;
  mutable cells : 'a cell array;
  mutable len : int;  (* slots used, including dead entries *)
  mutable next_seq : int;
  live : int ref;  (* pending (non-cancelled, non-popped) entries *)
}

let create () =
  { times = [||]; cells = [||]; len = 0; next_seq = 0; live = ref 0 }

let is_empty t = !(t.live) = 0
let size t = !(t.live)

(* Is key (time, c) strictly before slot [j]? *)
let before_slot t time (c : 'a cell) j =
  time < t.times.(j) || (time = t.times.(j) && c.seq < t.cells.(j).seq)

let ensure_capacity t time c =
  let cap = Array.length t.cells in
  if t.len >= cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    (* Unused slots are seeded with the entry being inserted; they are
       never read before being overwritten. *)
    let ntimes = Array.make ncap time in
    let ncells = Array.make ncap c in
    Array.blit t.times 0 ntimes 0 t.len;
    Array.blit t.cells 0 ncells 0 t.len;
    t.times <- ntimes;
    t.cells <- ncells
  end

(* Move the hole at [i] up until (time, c) fits, then place it. One
   write per visited level instead of a three-write swap. *)
let sift_up t i time c =
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before_slot t time c parent then begin
      t.times.(!i) <- t.times.(parent);
      t.cells.(!i) <- t.cells.(parent);
      i := parent
    end
    else continue := false
  done;
  t.times.(!i) <- time;
  t.cells.(!i) <- c

(* Move the hole at [i] down until (time, c) fits, then place it. *)
let sift_down t i time c =
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= t.len then continue := false
    else begin
      let r = l + 1 in
      let child =
        if
          r < t.len
          && (t.times.(r) < t.times.(l)
             || (t.times.(r) = t.times.(l)
                && t.cells.(r).seq < t.cells.(l).seq))
        then r
        else l
      in
      if
        t.times.(child) < time
        || (t.times.(child) = time && t.cells.(child).seq < c.seq)
      then begin
        t.times.(!i) <- t.times.(child);
        t.cells.(!i) <- t.cells.(child);
        i := child
      end
      else continue := false
    end
  done;
  t.times.(!i) <- time;
  t.cells.(!i) <- c

let push t ~time v =
  let h = Handle.make t.live in
  let c = { seq = t.next_seq; h; v } in
  t.next_seq <- t.next_seq + 1;
  ensure_capacity t time c;
  t.len <- t.len + 1;
  incr t.live;
  sift_up t (t.len - 1) time c;
  h

(* A single always-pending handle shared by every uncancellable entry;
   pop recognizes it physically and skips the state write. *)
let unit_handle : handle = Handle.make (ref 0)

let push_unit t ~time v =
  let c = { seq = t.next_seq; h = unit_handle; v } in
  t.next_seq <- t.next_seq + 1;
  ensure_capacity t time c;
  t.len <- t.len + 1;
  incr t.live;
  sift_up t (t.len - 1) time c

(* Remove the root, refilling the hole from the last slot. *)
let remove_root t =
  t.len <- t.len - 1;
  if t.len > 0 then begin
    let time = t.times.(t.len) and c = t.cells.(t.len) in
    sift_down t 0 time c
  end

let rec pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) and c = t.cells.(0) in
    remove_root t;
    if c.h.Handle.state = 0 then begin
      if c.h != unit_handle then c.h.Handle.state <- 2;
      decr t.live;
      Some (time, c.v)
    end
    else pop t
  end

let rec pop_cb t k =
  if t.len = 0 then false
  else begin
    let time = t.times.(0) and c = t.cells.(0) in
    remove_root t;
    if c.h.Handle.state = 0 then begin
      if c.h != unit_handle then c.h.Handle.state <- 2;
      decr t.live;
      k time c.v;
      true
    end
    else pop_cb t k
  end

let rec pop_le t ~max_time =
  if t.len = 0 then None
  else if t.cells.(0).h.Handle.state <> 0 then begin
    (* Dead root: discard it even if it lies beyond [max_time]. *)
    remove_root t;
    pop_le t ~max_time
  end
  else if t.times.(0) > max_time then None
  else begin
    let time = t.times.(0) and c = t.cells.(0) in
    remove_root t;
    if c.h != unit_handle then c.h.Handle.state <- 2;
    decr t.live;
    Some (time, c.v)
  end

let rec pop_le_cb t ~max_time k =
  if t.len = 0 then false
  else if t.cells.(0).h.Handle.state <> 0 then begin
    remove_root t;
    pop_le_cb t ~max_time k
  end
  else if t.times.(0) > max_time then false
  else begin
    let time = t.times.(0) and c = t.cells.(0) in
    remove_root t;
    if c.h != unit_handle then c.h.Handle.state <- 2;
    decr t.live;
    k time c.v;
    true
  end

let rec peek_time t =
  if t.len = 0 then None
  else if t.cells.(0).h.Handle.state <> 0 then begin
    remove_root t;
    peek_time t
  end
  else Some t.times.(0)

let cancel = Handle.cancel
let cancelled = Handle.cancelled
