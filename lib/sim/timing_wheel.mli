(** Hierarchical timing wheel: O(1) schedule, near-O(1) dispatch.

    Drop-in alternative to {!Event_heap} with the same interface and —
    crucially — the same exact dispatch order: events come out in
    [(time, sent, sequence)] order (time ties breaking on the posting
    instant, then in insertion order — see {!Event_heap}), bit-for-bit
    identical to the heap's. Internally events live in a
    flat structure-of-arrays arena chained into 3 levels of 65536 slots
    (1 µs ticks, 2^48 ticks ≈ 8.9 simulated years of horizon); same-tick
    events
    are totally ordered through a small ready-heap keyed on the exact
    float time, which is what upholds the contract despite tick
    quantization. Events beyond the horizon wait in an overflow heap.

    Complexity: push is O(1) (amortized; a far-future push may later
    pay its O(levels) cascade), pop is O(1 + slot-scan) amortized, and
    neither depends on the number of pending events — at a million
    pending timers the heap's O(log n) pointer-chasing sift loops are
    the difference (see the [scheduler] micro-bench). Cancellation is
    lazy with an exact live count, like the heap's; a cancel-heavy
    workload triggers an amortized sweep so dead entries cannot strand
    more than half the arena. *)

type 'a t
(** A wheel carrying payloads of type ['a]. *)

type handle = Handle.t
(** Shared with {!Event_heap}, so {!Engine} exposes one timer type. *)

val tick_seconds : float
(** Tick granularity (1 µs). Events less than a tick apart may share a
    slot; the ready-heap restores their exact relative order. *)

val create : dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty wheel. [dummy] is a throwaway value
    of the payload type used to seed the flat payload arena and to
    scrub freed slots (so the wheel never pins a dispatched payload);
    it is never returned. Storing payloads unboxed keeps {!push} free
    of minor-heap allocation. *)

val is_empty : 'a t -> bool

val size : 'a t -> int
(** Live (non-cancelled) entries; exact, O(1). *)

val push : 'a t -> time:float -> ?sent:float -> 'a -> handle
(** See {!Event_heap.push} for the [(time, sent)] key contract. *)

val push_unit : 'a t -> time:float -> ?sent:float -> 'a -> unit
(** Like {!push} but uncancellable: no handle is allocated or stored,
    which keeps the dominant fire-and-forget events (packet deliveries)
    allocation-free. Dispatch order is identical to {!push} — both draw
    from the same sequence counter. *)

val pop : 'a t -> (float * 'a) option
(** Earliest live event in exact [(time, sent, seq)] order. *)

val pop_cb : 'a t -> (float -> 'a -> unit) -> bool
(** {!pop} in continuation style: calls [k time v] on the earliest live
    event and returns [true], or returns [false] on an empty wheel
    without calling [k]. Allocates nothing (no option/tuple), which is
    measurable on the engine dispatch loop. The event is consumed — and
    its arena slot freed — before [k] runs, so [k] may push. *)

val pop_le : 'a t -> max_time:float -> (float * 'a) option
(** [pop] only if the earliest live event fires at or before
    [max_time]; [None] removes nothing live. *)

val pop_le_cb : 'a t -> max_time:float -> (float -> 'a -> unit) -> bool
(** {!pop_le} in continuation style (see {!pop_cb}): [false] both when
    the wheel is empty and when the earliest live event lies beyond
    [max_time]. *)

val peek_time : 'a t -> float option
val cancel : handle -> unit
val cancelled : handle -> bool

val stats : 'a t -> int * int * int * int * int
(** [(arena_capacity, arena_in_use, ready_len, overflow_len,
    wheel_resident)] — introspection for tests and benchmarks. *)
