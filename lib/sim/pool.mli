(** Slot pool with per-slot reusable event closures.

    Eliminates per-packet closure and handle allocation on hot packet
    paths: each slot allocates one closure when the slot first exists,
    and {!event} re-binds that closure to a new payload with a couple
    of array stores. After warm-up (pool capacity reaches the
    steady-state in-flight count) the per-packet path allocates
    nothing.

    Discipline: a closure returned by {!event} must be run exactly
    once — running it a second time raises {!Double_release}, never
    running it leaks the slot. Scheduling it with {!Engine.post} /
    {!Engine.post_in} (which run each posted event exactly once and
    admit no cancellation) satisfies this by construction.

    {b Domain ownership.} A pool belongs to the domain that created it
    (re-assignable with {!adopt}); firing a pooled event from any other
    domain raises {!Cross_domain_release}. Checking a payload {e in}
    ({!event}) from a foreign domain is the one sanctioned hand-off: the
    sharded coordinator injects boundary packets between windows, while
    every engine is parked at a barrier, and the event then fires later
    on the owner domain. See {!Shard} and DESIGN.md §13. *)

type 'a t

exception Double_release
(** A pooled event closure ran twice: its slot was already free. Always
    a bug in the caller (the exactly-once discipline was violated). *)

exception Cross_domain_release
(** A pooled event fired on a domain that does not own the pool —
    usually a missing {!adopt} / {!Engine.adopt_owned} when moving an
    engine's dispatch onto a worker domain. *)

val create : dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty pool. [dummy] seeds the payload
    array and scrubs released slots (so the pool never pins a fired
    payload); it is never passed to the fire action. *)

val set_fire : 'a t -> ('a -> unit) -> unit
(** Install the action the slot closures run on their payload.
    Mutable because receivers are typically wired after construction;
    closures read the current action at fire time. *)

val event : 'a t -> 'a -> unit -> unit
(** [event t v] checks [v] into a slot and returns the slot's reusable
    closure: running it releases the slot and applies the fire action
    to [v]. Amortized allocation-free (slots and their closures are
    allocated only when the pool grows).
    @raise Double_release if the closure runs a second time.
    @raise Cross_domain_release if the closure runs on a domain that
    does not own the pool. *)

val adopt : 'a t -> unit
(** Make the calling domain the pool's owner. Only safe while no other
    domain can concurrently fire this pool's events — in practice, at a
    sharded barrier or before any parallel run starts. *)

val in_use : 'a t -> int
(** Slots currently checked out (events scheduled but not yet run). *)

val capacity : 'a t -> int

val clear : 'a t -> unit
(** Release every slot and scrub payloads. Only safe when no checked-out
    closure can still run (e.g. the owning engine was discarded). *)
