(** Slot pool with per-slot reusable event closures.

    Eliminates per-packet closure and handle allocation on hot packet
    paths: each slot allocates one closure when the slot first exists,
    and {!event} re-binds that closure to a new payload with a couple
    of array stores. After warm-up (pool capacity reaches the
    steady-state in-flight count) the per-packet path allocates
    nothing.

    Discipline: a closure returned by {!event} must be run exactly
    once — running it twice fires a later payload, never running it
    leaks the slot. Scheduling it with {!Engine.post} / {!Engine.post_in}
    (which run each posted event exactly once and admit no
    cancellation) satisfies this by construction. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty pool. [dummy] seeds the payload
    array and scrubs released slots (so the pool never pins a fired
    payload); it is never passed to the fire action. *)

val set_fire : 'a t -> ('a -> unit) -> unit
(** Install the action the slot closures run on their payload.
    Mutable because receivers are typically wired after construction;
    closures read the current action at fire time. *)

val event : 'a t -> 'a -> unit -> unit
(** [event t v] checks [v] into a slot and returns the slot's reusable
    closure: running it releases the slot and applies the fire action
    to [v]. Amortized allocation-free (slots and their closures are
    allocated only when the pool grows). *)

val in_use : 'a t -> int
(** Slots currently checked out (events scheduled but not yet run). *)

val capacity : 'a t -> int

val clear : 'a t -> unit
(** Release every slot and scrub payloads. Only safe when no checked-out
    closure can still run (e.g. the owning engine was discarded). *)
