(** Scheduler-independent cancellation handles.

    A handle is issued by whichever event queue ({!Event_heap} or
    {!Timing_wheel}) an {!Engine} runs on; cancellation is lazy — the
    queue drops dead entries when they surface — but the shared live
    counter keeps queue sizes exact the instant a handle is cancelled. *)

type t = { mutable state : int; live : int ref }
(** [state]: 0 pending, 1 cancelled, 2 popped. [live] aliases the owning
    queue's live-entry counter. The representation is exposed so queue
    implementations in this library can flip states without a call; code
    outside the schedulers should treat it as abstract and use
    {!cancel}/{!cancelled}. *)

val make : int ref -> t
(** [make live] is a fresh pending handle accounted against [live]. *)

val cancel : t -> unit
(** Mark pending → cancelled and decrement the live counter. Cancelling
    an already-cancelled or already-popped handle is a no-op. *)

val cancelled : t -> bool
(** Whether the handle is in the cancelled state (popped ≠ cancelled). *)
