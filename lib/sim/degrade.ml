(* Deterministic degradation ladder over sharded execution width.

   Shard.run's byte-identical contract — a seeded simulation produces
   the same output at any shard count and in Sequential or Parallel
   mode — means a run that dies with a Lane_failure can be transparently
   rebuilt and retried narrower without changing its result. The ladder
   halves the width each rung down to a 1-shard sequential run; chaos
   injection is gated off at one shard (Shard.chaos_raise), so injected
   faults always terminate at the bottom rung, while a genuine
   deterministic bug fails every rung and surfaces as the final rung's
   Lane_failure — the correct outcome, with full forensics.

   The per-domain step tally lets the supervisor account a task as
   "degraded" without threading a reporter through every task closure:
   the ladder bumps the calling domain's counter once per step, and the
   supervisor reads-and-resets it around each task. *)

type attempt = { shards : int; domains : int }

type step = {
  attempt : attempt;  (* the rung that failed *)
  shard : int;
  round : int;
  wedged : bool;
  exn_text : string;
  backtrace : string;
  wall_s : float;  (* wall time lost to the failed rung (0 w/o clock) *)
}

type 'a outcome = {
  value : 'a;
  attempt : attempt;  (* the rung that succeeded *)
  steps : step list;  (* failed rungs, in ladder order *)
}

let plan ?domains ~shards () =
  if shards < 1 then invalid_arg "Degrade.plan: shards must be >= 1";
  let dmax =
    match domains with
    | None -> 1
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Degrade.plan: domains must be >= 1"
  in
  let rec widths w acc =
    if w <= 1 then List.rev (1 :: acc) else widths (w / 2) (w :: acc)
  in
  let widths = if shards = 1 then [ 1 ] else widths shards [] in
  List.map
    (fun w -> { shards = w; domains = (if w = 1 then 1 else min dmax w) })
    widths

(* Process-wide default, toggled by --no-fallback on the CLI (the same
   pattern as Engine.set_default_scheduler: the ladder runs deep inside
   experiment tasks, so the switch flows through ambient state). *)
let fallback_cell = Atomic.make true
let set_fallback enabled = Atomic.set fallback_cell enabled
let fallback_enabled () = Atomic.get fallback_cell

let tally_key = Domain.DLS.new_key (fun () -> ref 0)

let take_tally () =
  let r = Domain.DLS.get tally_key in
  let v = !r in
  r := 0;
  v

let run ?enabled ?(clock = fun () -> 0.) ?(report = fun _ -> ()) ~plan f =
  let enabled =
    match enabled with Some e -> e | None -> fallback_enabled ()
  in
  match plan with
  | [] -> invalid_arg "Degrade.run: empty plan"
  | first :: rest ->
    let rec attempt a rest steps =
      let t0 = clock () in
      match f a with
      | value -> { value; attempt = a; steps = List.rev steps }
      | exception
          Shard.Lane_failure { shard; round; wedged; origin; backtrace }
        when enabled && rest <> [] ->
        let step =
          {
            attempt = a;
            shard;
            round;
            wedged;
            exn_text = Printexc.to_string origin;
            backtrace;
            wall_s = clock () -. t0;
          }
        in
        incr (Domain.DLS.get tally_key);
        report step;
        (match rest with
        | a' :: rest' -> attempt a' rest' (step :: steps)
        | [] -> assert false)
    in
    attempt first rest []
