(** Deterministic pseudo-random number generation.

    A from-scratch splitmix64 generator. Every stochastic component of the
    simulator (channel loss, monitor-interval lengths, randomized controlled
    trials, workload arrivals) draws from its own stream, obtained with
    {!split}, so that changing one component's consumption pattern does not
    perturb the others and every experiment is reproducible from a seed. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] is a fresh generator deterministically derived from
    [seed]. Equal seeds yield identical streams. *)

val split : t -> t
(** [split t] derives a new generator whose future output is independent of
    [t]'s (in the splitmix sense); both generators remain usable. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy replays the same
    stream. *)

val state : t -> int64
(** The complete generator state, for explicit checkpointing (see
    {!Persist}). [of_state (state t)] replays [t]'s future stream
    exactly. *)

val of_state : int64 -> t
(** Rebuild a generator from a {!state} capture. Unlike {!create}, the
    value is used verbatim (no seeding mix). *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given [mean]. @raise Invalid_argument if [mean <= 0]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** [gaussian t ~mean ~stddev] draws from a normal distribution
    (Box–Muller). *)

val pareto : t -> shape:float -> scale:float -> float
(** [pareto t ~shape ~scale] draws from a Pareto distribution, used for
    heavy-tailed flow sizes. @raise Invalid_argument if [shape <= 0.] or
    [scale <= 0.]. *)

val log_uniform : t -> float -> float -> float
(** [log_uniform t lo hi] is distributed so that its logarithm is uniform in
    [\[log lo, log hi)] — used to draw Internet-path BDPs spanning three
    orders of magnitude. @raise Invalid_argument unless [0 < lo <= hi]. *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly random element of [a].
    @raise Invalid_argument if [a] is empty. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
