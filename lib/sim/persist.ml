(* Versioned, explicit binary serialization for checkpoint state.

   Everything written is a primitive (ints as zig-zag varints, floats
   as IEEE bit patterns, strings length-prefixed) composed field by
   field — never [Marshal], so no closure can leak into a checkpoint
   and a corrupt or foreign file fails with {!Corrupt} instead of a
   segfault. A blob opens with a caller-chosen magic string and a
   format version; readers reject the wrong magic and report the
   version so callers can gate compatibility explicitly. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

module Writer = struct
  type t = { buf : Buffer.t }

  let u8 t v = Buffer.add_char t.buf (Char.chr (v land 0xff))

  (* LEB128 over the zig-zag encoding, so small magnitudes of either
     sign stay short. *)
  let int t v =
    let z = (v lsl 1) lxor (v asr (Sys.int_size - 1)) in
    let rec go z =
      if z land lnot 0x7f = 0 then u8 t z
      else begin
        u8 t (0x80 lor (z land 0x7f));
        go (z lsr 7)
      end
    in
    go z

  let int64 t v =
    for i = 0 to 7 do
      u8 t (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
    done

  let float t v = int64 t (Int64.bits_of_float v)
  let bool t v = u8 t (if v then 1 else 0)

  let string t s =
    int t (String.length s);
    Buffer.add_string t.buf s

  let option t f = function
    | None -> bool t false
    | Some v ->
      bool t true;
      f t v

  let list t f l =
    int t (List.length l);
    List.iter (f t) l

  let create ~magic ~version =
    let t = { buf = Buffer.create 256 } in
    string t magic;
    int t version;
    t

  let contents t = Buffer.contents t.buf
end

module Reader = struct
  type t = { data : string; mutable pos : int; version : int }

  let u8_raw d =
    if d.pos >= String.length d.data then corrupt "truncated (at byte %d)" d.pos;
    let c = Char.code d.data.[d.pos] in
    d.pos <- d.pos + 1;
    c

  let int d =
    let rec go shift acc =
      if shift > 63 then corrupt "varint too long (at byte %d)" d.pos;
      let b = u8_raw d in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    let z = go 0 0 in
    (z lsr 1) lxor (-(z land 1))

  let u8 = u8_raw

  let int64 d =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (u8_raw d)) (8 * i))
    done;
    !v

  let float d = Int64.float_of_bits (int64 d)

  let bool d =
    match u8_raw d with
    | 0 -> false
    | 1 -> true
    | b -> corrupt "invalid bool tag %d (at byte %d)" b (d.pos - 1)

  let string d =
    let n = int d in
    if n < 0 || d.pos + n > String.length d.data then
      corrupt "bad string length %d (at byte %d)" n d.pos;
    let s = String.sub d.data d.pos n in
    d.pos <- d.pos + n;
    s

  let option d f = if bool d then Some (f d) else None

  let list d f =
    let n = int d in
    if n < 0 then corrupt "negative list length (at byte %d)" d.pos;
    List.init n (fun _ -> f d)

  let of_string ~magic data =
    let d = { data; pos = 0; version = 0 } in
    let m = try string d with Corrupt _ -> corrupt "not a %s blob" magic in
    if not (String.equal m magic) then
      corrupt "bad magic %S (wanted %S)" m magic;
    { d with version = int d }

  let version d = d.version
  let at_end d = d.pos >= String.length d.data
end
