type report = {
  label : string;
  start : float;
  stop : float;
  baseline : float;
  depth : float;
  time_to_recover : float option;
}

let mean_in series t0 t1 =
  let sum = ref 0. and n = ref 0 in
  Array.iter
    (fun (t, v) ->
      if t >= t0 && t < t1 then begin
        sum := !sum +. v;
        incr n
      end)
    series;
  if !n = 0 then None else Some (!sum /. float_of_int !n)

let min_in series t0 t1 =
  let m = ref infinity in
  Array.iter (fun (t, v) -> if t >= t0 && t < t1 then m := Float.min !m v) series;
  if !m = infinity then None else Some !m

let analyze_one ~threshold ~baseline_window ~sustain ~series ~horizon
    (label, start, stop) =
  let baseline =
    match mean_in series (start -. baseline_window) start with
    | Some b -> b
    | None -> ( (* fault before the first full window: use whatever exists *)
      match mean_in series 0. start with Some b -> b | None -> 0.)
  in
  (* Depth: how far throughput fell while the fault was active (extended by
     one sustain window, so damage that lands just after restoration — e.g.
     timeouts from a blackout — still counts). *)
  let depth =
    if baseline <= 0. then 0.
    else
      match min_in series start (Float.min horizon (stop +. sustain)) with
      | None -> 0.
      | Some lowest -> Float.max 0. (Float.min 1. (1. -. (lowest /. baseline)))
  in
  (* Time to recover: first sample time >= stop from which the mean over
     the next [sustain] seconds is back above threshold x baseline, scanned
     only up to [horizon] (the next fault's onset or the end of data). *)
  let time_to_recover =
    if baseline <= 0. then None
    else begin
      let target = threshold *. baseline in
      let found = ref None in
      Array.iter
        (fun (t, _) ->
          if !found = None && t >= stop && t +. sustain <= horizon then
            match mean_in series t (t +. sustain) with
            | Some m when m >= target -> found := Some (t -. stop)
            | _ -> ())
        series;
      !found
    end
  in
  { label; start; stop; baseline; depth; time_to_recover }

let analyze ?(threshold = 0.9) ?(baseline_window = 5.) ?(sustain = 2.) ~series
    faults =
  let faults =
    List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) faults
  in
  let data_end =
    if Array.length series = 0 then 0. else fst series.(Array.length series - 1)
  in
  let rec go = function
    | [] -> []
    | fault :: rest ->
      let horizon =
        match rest with
        | (_, next_start, _) :: _ -> next_start
        | [] -> data_end +. sustain
      in
      analyze_one ~threshold ~baseline_window ~sustain ~series ~horizon fault
      :: go rest
  in
  go faults

let pp_report fmt r =
  let ttr =
    match r.time_to_recover with
    | Some s -> Printf.sprintf "%6.2fs" s
    | None -> "  never"
  in
  Format.fprintf fmt "%-28s %7.2fs %6.2fs %9.2f Mbps %5.0f%% %s" r.label
    r.start (r.stop -. r.start) (r.baseline /. 1e6) (r.depth *. 100.) ttr

let pp_table fmt reports =
  Format.fprintf fmt "%-28s %8s %7s %14s %6s %7s@." "fault" "start" "dur"
    "baseline" "depth" "ttr";
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_report r) reports
