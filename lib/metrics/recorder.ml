open Pcc_sim

type t = {
  engine : Engine.t;
  interval : float;
  probe : unit -> float;
  mutable acc : (float * float) list;  (* reversed *)
  mutable count : int;
  mutable running : bool;
}

let rec tick t () =
  if t.running then begin
    let now = Engine.now t.engine in
    t.acc <- (now, t.probe ()) :: t.acc;
    t.count <- t.count + 1;
    Engine.post_in t.engine ~after:t.interval (tick t)
  end

let create engine ?(interval = 1.0) probe =
  if interval <= 0. then invalid_arg "Recorder.create: interval must be positive";
  let t = { engine; interval; probe; acc = []; count = 0; running = true } in
  Engine.post_in engine ~after:interval (tick t);
  t

let stop t = t.running <- false

let samples t =
  let a = Array.make t.count (0., 0.) in
  let i = ref (t.count - 1) in
  List.iter
    (fun s ->
      a.(!i) <- s;
      decr i)
    t.acc;
  a

let rates t =
  let s = samples t in
  if Array.length s < 2 then [||]
  else
    Array.init
      (Array.length s - 1)
      (fun i ->
        let t1, v1 = s.(i + 1) and _, v0 = s.(i) in
        (t1, (v1 -. v0) /. t.interval))

let rates_bps t = Array.map (fun (time, v) -> (time, v *. 8.)) (rates t)

let values_between series t0 t1 =
  Array.of_list
    (Array.to_list series
    |> List.filter_map (fun (time, v) ->
           if time >= t0 && time < t1 then Some v else None))
