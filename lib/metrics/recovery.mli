(** Recovery metrics for fault-injection runs.

    The paper's dynamics claims (Fig. 11: "PCC returns to full rate within
    a few monitor intervals of the network healing") need two numbers per
    injected fault: how deep throughput fell, and how long after the fault
    cleared it took to come back. Both are computed from a windowed
    throughput series (e.g. {!Recorder.rates_bps}) plus the fault's
    [(start, stop)] window — this module knows nothing about fault kinds,
    so it composes with [Pcc_scenario.Fault.windows] without a dependency
    cycle. *)

type report = {
  label : string;
  start : float;  (** Fault onset (seconds). *)
  stop : float;  (** Fault cleared. *)
  baseline : float;
      (** Mean series value over the [baseline_window] before onset —
          pre-fault throughput in the series' own unit. *)
  depth : float;
      (** Degradation depth in [\[0,1\]]: [1 - lowest/baseline] while the
          fault was active (plus one [sustain] window, so post-restoration
          damage such as blackout timeouts still counts). 0 when the
          baseline itself is 0. *)
  time_to_recover : float option;
      (** Seconds after [stop] until the series first sustains
          [threshold * baseline] for [sustain] seconds; [None] if it never
          does before the next fault (or the data ends). *)
}

val analyze :
  ?threshold:float ->
  ?baseline_window:float ->
  ?sustain:float ->
  series:(float * float) array ->
  (string * float * float) list ->
  report list
(** [analyze ~series faults] with [series] a time-ordered [(time, value)]
    sequence and [faults] a [(label, start, stop)] list: one {!report} per
    fault, sorted by onset. Recovery for each fault is only sought up to
    the next fault's onset, so overlapping aftermaths don't credit one
    fault with another's recovery. Defaults: [threshold = 0.9] (the ≥90%
    of pre-fault throughput criterion), [baseline_window = 5.],
    [sustain = 2.]. *)

val pp_report : Format.formatter -> report -> unit

val pp_table : Format.formatter -> report list -> unit
(** Render reports as an aligned table with a header row. *)
