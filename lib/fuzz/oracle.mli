(** The oracle suite: what makes a generated scenario a {e test}.

    A scenario run has no hand-written expected output, so correctness is
    judged by properties that must hold for {e every} valid scenario:

    {b Semantic invariants} (checked on a single run)
    - the runtime {!Pcc_scenario.Invariant} checker's sweeps: per-link
      packet conservation, queue occupancy within the discipline's
      advertised capacity, clock monotonicity, delivered bytes bounded by
      the capacity integral, per-flow goodput monotonicity;
    - end-to-end byte conservation: no receiver accepts more payload than
      its sender transmitted; cumulative acks never exceed transmission;
    - sized transfers never deliver more than their size, and a recorded
      flow-completion time lies in [(0, duration]];
    - sender rate estimates and smoothed RTTs stay finite and
      non-negative;
    - the engine terminates within its event budget (no livelock) and
      its clock ends at [duration].

    {b Differential oracles} (two executions that must agree bit-for-bit)
    - same-seed determinism: two runs of the same scenario value produce
      identical digests (per-flow byte/packet counters, srtt/rate bit
      patterns, event counts);
    - serialization: [of_string (to_string s)] is structurally equal to
      [s] and runs to an identical digest;
    - scheduler equivalence: re-running the scenario on the event-queue
      backend the base run did {e not} use (binary heap vs hierarchical
      timing wheel — see {!Pcc_sim.Engine.scheduler}) must produce an
      identical digest, upholding the engine's exact [(time, seq)]
      dispatch-order contract;
    - wrapper equivalence: a scenario expressible through the flat
      {!Pcc_scenario.Path} (single dumbbell link) or
      {!Pcc_scenario.Multihop} (droptail chain) wrappers must run
      bit-identically through them;
    - supervised execution: running the scenario as a
      {!Pcc_experiments.Supervisor} task at [jobs = 1] and [jobs = 2]
      yields identical digests;
    - checkpoint transport: a digest written through
      {!Pcc_experiments.Checkpoint} loads back verbatim;
    - sharded execution: rebuilding the scenario on a 1-shard and an
      N-shard {!Pcc_sim.Shard} hub produces bit-identical digests (hub
      runs attach no invariant checker, so this compares hub-vs-hub and
      polices the conservative-parallel protocol itself);
    - chaos ladder: an N-shard hub run with an injected deterministic
      lane crash must complete via the {!Pcc_sim.Degrade} ladder with a
      digest bit-identical to a clean 1-shard run — degraded results
      are trustworthy results.

    The digest deliberately includes float bit patterns ([%h]) so "close
    enough" drift counts as a failure. *)

type failure = { oracle : string; detail : string }
(** [oracle] names the property that failed (e.g. ["invariant:occupancy"],
    ["determinism"], ["wrapper-path"]); the shrinker preserves it while
    minimizing. *)

type stats = { events : int; digest : string }

val digest : Pcc_sim.Engine.t -> Pcc_scenario.Topology.t -> string
(** The exact-match run summary the differential oracles compare. *)

val run_once :
  ?scheduler:Pcc_sim.Engine.scheduler ->
  Pcc_scenario.Scenario.t ->
  (stats, failure) result
(** Build and run the scenario once under the invariant checker and the
    semantic sweeps. Never raises: build errors, livelocks and event
    crashes come back as failures. [scheduler] pins the event-queue
    backend (default: the engine's process default — whatever
    [PCC_SCHEDULER] or {!Pcc_sim.Engine.set_default_scheduler} says). *)

val run_hub :
  shards:int -> Pcc_scenario.Scenario.t -> (stats, failure) result
(** Build and run the scenario on a fresh [shards]-shard hub
    ({!Pcc_scenario.Scenario.build_sharded}) with no invariant checker
    attached. Never raises: build rejections ("shard-build"), livelocks
    ("shard-livelock") and event crashes ("shard-crash") come back as
    failures. The digest's event count is the hub-wide
    {!Pcc_sim.Shard.executed}. *)

val shard_check :
  shards:int -> Pcc_scenario.Scenario.t -> failure option
(** The sharded differential: run the scenario on a 1-shard hub and a
    [shards]-shard hub and require bit-identical digests (oracle
    ["shard-differential"]). Returns [None] without running anything when
    [shards < 2] or the scenario is not
    {!Pcc_scenario.Scenario.shard_applicable} (link dynamics mutate cut
    delays mid-run, which would invalidate the partition's lookahead). *)

val chaos_ladder_check :
  shards:int -> Pcc_scenario.Scenario.t -> failure option
(** The chaos-ladder differential (oracle ["chaos-ladder"]): inject a
    crash on shard 1 at barrier round 2 into the [shards]-shard hub run
    and require {!Pcc_sim.Degrade.run} to walk the ladder down to the
    chaos-free sequential rung with a digest bit-identical to a clean
    1-shard run. Vacuously passes when the scenario quiesces before the
    crash round; applicability gating as {!shard_check}. *)

val test :
  ?synth:(Pcc_scenario.Scenario.t -> string option) ->
  ?deep:bool ->
  ?shard:bool ->
  ?chaos:bool ->
  ?shards:int ->
  Pcc_scenario.Scenario.t ->
  failure option
(** Run the full oracle suite; [None] means every oracle passed. [synth]
    is a synthetic-failure hook (the fuzzer wires [PCC_FUZZ_SYNTH]
    through it): returning [Some detail] yields an ["synthetic"] failure
    — how CI exercises the shrink-and-repro pipeline without a real bug.
    [deep] (default [true]) additionally runs the supervisor jobs-1/2
    and checkpoint differentials, which spawn domains and touch the
    filesystem; the fuzz loop only enables it on a deterministic subset
    of runs. [shard] (default [false]) additionally runs
    {!shard_check} at [shards] (default 4); the fuzz loop enables it
    every [shard_every]-th run. [chaos] (default [false]) additionally
    runs {!chaos_ladder_check} at the same width; the fuzz loop enables
    it every [chaos_every]-th run. *)
