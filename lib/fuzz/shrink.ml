open Pcc_scenario

let drop_nth l n = List.filteri (fun i _ -> i <> n) l
let first_half l = List.filteri (fun i _ -> i < List.length l / 2) l
let second_half l = List.filteri (fun i _ -> i >= List.length l / 2) l

let flow_extra (f : Scenario.flow) =
  (if f.Scenario.stop_at <> None then 2 else 0)
  + (if f.Scenario.size <> None then 2 else 0)
  + (if f.Scenario.rev_route <> None then 4 else 0)
  + (if f.Scenario.start_at <> 0. then 1 else 0)
  + if f.Scenario.extra_rtt <> 0. then 1 else 0

let link_extra (l : Scenario.link) =
  (if l.Scenario.loss <> 0. then 1 else 0)
  + (if l.Scenario.jitter <> 0. then 1 else 0)
  + if l.Scenario.queue <> Topology.Droptail then 2 else 0

(* Weights keep the measure well-founded under every pass: a structural
   drop (flow 40, link 30) always outweighs the value extras it carries
   (at most 10 resp. 4), and halving the duration drops its integer
   part. *)
let size (s : Scenario.t) =
  (40 * List.length s.Scenario.flows)
  + (30 * List.length s.Scenario.links)
  + (8 * List.length s.Scenario.faults)
  + (20 * List.length s.Scenario.cross)
  + (match s.Scenario.dynamics with Some _ -> 20 | None -> 0)
  + int_of_float s.Scenario.duration
  + List.fold_left (fun acc f -> acc + flow_extra f) 0 s.Scenario.flows
  + List.fold_left (fun acc l -> acc + link_extra l) 0 s.Scenario.links

(* ---------------------------------------------------------------- *)
(* Candidate passes, largest reductions first. Every candidate is
   strictly smaller than its parent under [size]; structural validity
   is not guaranteed — the acceptance check rejects candidates whose
   failure changes oracle (including [build] rejections). *)

let with_flows s flows = { s with Scenario.flows }
let with_faults s faults = { s with Scenario.faults }

let drop_flows_half (s : Scenario.t) =
  if List.length s.Scenario.flows < 2 then []
  else
    [
      with_flows s (first_half s.Scenario.flows);
      with_flows s (second_half s.Scenario.flows);
    ]

let drop_flow_one (s : Scenario.t) =
  List.mapi (fun i _ -> with_flows s (drop_nth s.Scenario.flows i)) s.Scenario.flows

let drop_faults (s : Scenario.t) =
  match s.Scenario.faults with
  | [] -> []
  | [ _ ] -> [ with_faults s [] ]
  | fs ->
    (with_faults s [] :: with_faults s (first_half fs)
    :: with_faults s (second_half fs) :: [])
    @ List.mapi (fun i _ -> with_faults s (drop_nth fs i)) fs

let drop_cross (s : Scenario.t) =
  List.mapi
    (fun i _ -> { s with Scenario.cross = drop_nth s.Scenario.cross i })
    s.Scenario.cross

let drop_dynamics (s : Scenario.t) =
  match s.Scenario.dynamics with
  | None -> []
  | Some _ -> [ { s with Scenario.dynamics = None } ]

let round2 v = Float.round (v *. 100.) /. 100.

let halve_duration (s : Scenario.t) =
  if s.Scenario.duration < 1. then []
  else [ { s with Scenario.duration = round2 (s.Scenario.duration /. 2.) } ]

let rec route_edges = function
  | a :: (b :: _ as rest) -> (a, b) :: route_edges rest
  | _ -> []

let used_edges (s : Scenario.t) =
  List.concat_map
    (fun (f : Scenario.flow) ->
      route_edges f.Scenario.route
      @ (match f.Scenario.rev_route with Some r -> route_edges r | None -> []))
    s.Scenario.flows

let drop_links (s : Scenario.t) =
  if List.length s.Scenario.links < 2 then []
  else
    let used = used_edges s in
    List.concat
      (List.mapi
         (fun i (l : Scenario.link) ->
           let referenced =
             List.mem (l.Scenario.src, l.Scenario.dst) used
             || List.exists (fun c -> c.Scenario.cross_link = i) s.Scenario.cross
             || (match s.Scenario.dynamics with
                | Some d -> d.Scenario.dyn_link = i
                | None -> false)
             || List.exists
                  (fun (e : Fault.event) ->
                    match e.Fault.kind with
                    | Fault.Partition { hop; _ } -> hop = i
                    | _ -> false)
                  s.Scenario.faults
           in
           if referenced then []
           else
             let remap j = if j > i then j - 1 else j in
             [
               {
                 s with
                 Scenario.links = drop_nth s.Scenario.links i;
                 cross =
                   List.map
                     (fun c ->
                       { c with Scenario.cross_link = remap c.Scenario.cross_link })
                     s.Scenario.cross;
                 dynamics =
                   Option.map
                     (fun d ->
                       { d with Scenario.dyn_link = remap d.Scenario.dyn_link })
                     s.Scenario.dynamics;
                 faults =
                   List.map
                     (fun (e : Fault.event) ->
                       match e.Fault.kind with
                       | Fault.Partition { duration; hop } ->
                         {
                           e with
                           Fault.kind =
                             Fault.Partition { duration; hop = remap hop };
                         }
                       | _ -> e)
                     s.Scenario.faults;
               };
             ])
         s.Scenario.links)

let simplify_flows (s : Scenario.t) =
  List.concat
    (List.mapi
       (fun i (f : Scenario.flow) ->
         let put f' = with_flows s (List.mapi (fun j g -> if j = i then f' else g) s.Scenario.flows) in
         List.concat
           [
             (match f.Scenario.rev_route with
             | Some _ -> [ put { f with Scenario.rev_route = None } ]
             | None -> []);
             (match f.Scenario.stop_at with
             | Some _ -> [ put { f with Scenario.stop_at = None } ]
             | None -> []);
             (match f.Scenario.size with
             | Some _ -> [ put { f with Scenario.size = None } ]
             | None -> []);
             (if f.Scenario.start_at <> 0. then
                [ put { f with Scenario.start_at = 0. } ]
              else []);
             (if f.Scenario.extra_rtt <> 0. then
                [ put { f with Scenario.extra_rtt = 0. } ]
              else []);
           ])
       s.Scenario.flows)

let simplify_links (s : Scenario.t) =
  List.concat
    (List.mapi
       (fun i (l : Scenario.link) ->
         let put l' =
           {
             s with
             Scenario.links =
               List.mapi (fun j m -> if j = i then l' else m) s.Scenario.links;
           }
         in
         List.concat
           [
             (if l.Scenario.queue <> Topology.Droptail then
                [ put { l with Scenario.queue = Topology.Droptail } ]
              else []);
             (if l.Scenario.loss <> 0. then
                [ put { l with Scenario.loss = 0. } ]
              else []);
             (if l.Scenario.jitter <> 0. then
                [ put { l with Scenario.jitter = 0. } ]
              else []);
           ])
       s.Scenario.links)

let passes =
  [
    drop_flows_half;
    drop_flow_one;
    drop_faults;
    drop_cross;
    drop_dynamics;
    halve_duration;
    drop_links;
    simplify_flows;
    simplify_links;
  ]

let minimize ?(budget = 300) ~check ~oracle s0 =
  let checks = ref 0 in
  let cur = ref s0 in
  let accepts c =
    size c < size !cur
    && !checks < budget
    && begin
      incr checks;
      match check c with
      | Some (f : Oracle.failure) -> f.Oracle.oracle = oracle
      | None -> false
      | exception _ -> false
    end
  in
  let progress = ref true in
  while !progress && !checks < budget do
    progress := false;
    List.iter
      (fun pass ->
        if not !progress then
          match List.find_opt accepts (pass !cur) with
          | Some c ->
            cur := c;
            progress := true
          | None -> ())
      passes
  done;
  (!cur, !checks)
