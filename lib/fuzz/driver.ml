open Pcc_sim
open Pcc_scenario

type failure_report = {
  run : int;
  failure : Oracle.failure;
  shrunk : Scenario.t;
  shrink_checks : int;
  repro_path : string option;
}

type summary = { runs : int; failed : failure_report list }

let deep_oracle = function "supervisor-jobs" | "checkpoint" -> true | _ -> false

let shard_oracle = function
  | "shard-differential" | "shard-build" | "shard-livelock" | "shard-crash"
  | "chaos-ladder" ->
    true
  | _ -> false

let chaos_oracle = function "chaos-ladder" -> true | _ -> false

let fuzz ?(synth = fun _ -> None) ?(deep_every = 8) ?(shard_every = 4)
    ?(chaos_every = 4) ?(shards = 4) ?(shrink_budget = 300) ?corpus_dir ?menu
    ?(log = fun _ -> ()) ~runs ~seed () =
  let failed = ref [] in
  for run = 0 to runs - 1 do
    let run_seed = Pcc_experiments.Runner.derive_seed ~master:seed ~index:run in
    let rng = Rng.create run_seed in
    let scenario = Scenario.generate ?menu ~rng () in
    let deep = deep_every > 0 && run mod deep_every = 0 in
    let shard = shard_every > 0 && run mod shard_every = 0 in
    let chaos = chaos_every > 0 && run mod chaos_every = 0 in
    match Oracle.test ~synth ~deep ~shard ~chaos ~shards scenario with
    | None -> ()
    | Some failure ->
      log
        (Printf.sprintf "run %d: %s FAILED %s: %s" run
           (Scenario.describe scenario) failure.Oracle.oracle
           failure.Oracle.detail);
      let deep_shrink = deep_oracle failure.Oracle.oracle in
      let shard_shrink = shard_oracle failure.Oracle.oracle in
      let chaos_shrink = chaos_oracle failure.Oracle.oracle in
      (* A sharded-differential failure only reproduces while the
         candidate still spans more than one shard: a shrink step that
         collapses the topology onto a single shard makes the N-shard
         run degenerate to the 1-shard run and the bug vanishes, so
         reject such candidates before spending an oracle run on them. *)
      let check cand =
        if shard_shrink && Scenario.shard_preview ~shards cand < 2 then None
        else
          Oracle.test ~synth ~deep:deep_shrink ~shard:shard_shrink
            ~chaos:chaos_shrink ~shards cand
      in
      let shrunk, shrink_checks =
        Shrink.minimize ~budget:shrink_budget ~check
          ~oracle:failure.Oracle.oracle scenario
      in
      log
        (Printf.sprintf "run %d: shrunk to %s (%d checks, size %d -> %d)" run
           (Scenario.describe shrunk) shrink_checks (Shrink.size scenario)
           (Shrink.size shrunk));
      (* Re-derive the detail from the minimized scenario so the repro's
         header matches its own payload. *)
      let final_detail =
        match
          Oracle.test ~synth ~deep:deep_shrink ~shard:shard_shrink
            ~chaos:chaos_shrink ~shards shrunk
        with
        | Some f when f.Oracle.oracle = failure.Oracle.oracle ->
          f.Oracle.detail
        | _ -> failure.Oracle.detail
      in
      let repro_path =
        Option.map
          (fun dir ->
            let path =
              Corpus.save ~dir
                {
                  Corpus.oracle = failure.Oracle.oracle;
                  detail = final_detail;
                  scenario = shrunk;
                }
            in
            log (Printf.sprintf "run %d: repro written to %s" run path);
            path)
          corpus_dir
      in
      failed := { run; failure; shrunk; shrink_checks; repro_path } :: !failed
  done;
  let failed = List.rev !failed in
  log
    (Printf.sprintf "fuzz: %d/%d runs passed, %d failure%s"
       (runs - List.length failed) runs (List.length failed)
       (if List.length failed = 1 then "" else "s"));
  { runs; failed }

let replay ?(synth = fun _ -> None) ?(shards = 4) path =
  let r = Corpus.load path in
  match
    Oracle.test ~synth ~deep:true ~shard:true ~chaos:true ~shards
      r.Corpus.scenario
  with
  | None -> Ok ()
  | Some f -> Error f

let replay_dir ?synth ?(shards = 4) ?(log = fun _ -> ()) dir =
  List.filter_map
    (fun (path, (r : Corpus.repro)) ->
      match
        Oracle.test ?synth ~deep:true ~shard:true ~chaos:true ~shards
          r.Corpus.scenario
      with
      | None ->
        log (Printf.sprintf "replay %s: ok (was %s)" path r.Corpus.oracle);
        None
      | Some f ->
        log
          (Printf.sprintf "replay %s: FAILED %s: %s" path f.Oracle.oracle
             f.Oracle.detail);
        Some (path, f))
    (Corpus.load_dir dir)

(* ---------------------------------------------------------------- *)

let synth_of_spec spec =
  let fail () =
    invalid_arg
      (Printf.sprintf
         "bad PCC_FUZZ_SYNTH %S (want 'always' or <field><op><n>, e.g. \
          'flows>=2')"
         spec)
  in
  if spec = "always" then fun _ -> Some "synthetic failure: always"
  else begin
    let field_of s =
      match s with
      | "flows" -> fun (x : Scenario.t) -> List.length x.Scenario.flows
      | "links" -> fun (x : Scenario.t) -> List.length x.Scenario.links
      | "faults" -> fun (x : Scenario.t) -> List.length x.Scenario.faults
      | "cross" -> fun (x : Scenario.t) -> List.length x.Scenario.cross
      | _ -> fail ()
    in
    let split op =
      match String.index_opt spec op.[0] with
      | Some i
        when i + String.length op <= String.length spec
             && String.sub spec i (String.length op) = op ->
        Some
          ( String.sub spec 0 i,
            String.sub spec
              (i + String.length op)
              (String.length spec - i - String.length op) )
      | _ -> None
    in
    let field, cmp, n =
      match (split ">=", split "<=", split "=") with
      | Some (f, n), _, _ -> (f, ( >= ), n)
      | None, Some (f, n), _ -> (f, ( <= ), n)
      | None, None, Some (f, n) -> (f, ( = ), n)
      | None, None, None -> fail ()
    in
    let n = match int_of_string_opt n with Some n -> n | None -> fail () in
    let get = field_of field in
    fun s ->
      let v = get s in
      if cmp v n then
        Some (Printf.sprintf "synthetic failure: %s (%s=%d)" spec field v)
      else None
  end

let synth_of_env () =
  match Sys.getenv_opt "PCC_FUZZ_SYNTH" with
  | None | Some "" -> None
  | Some spec -> Some (synth_of_spec spec)
